# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench bench-rewrite clean

all: build

build:
	dune build

test:
	dune runtest

check: ## build everything, run the full test suite, every example, and the rewrite-driver sanity gate
	dune build && dune runtest
	@for src in examples/*.ml; do \
	  name=$$(basename $$src .ml); \
	  echo "example $$name"; \
	  dune exec examples/$$name.exe > /dev/null || exit 1; \
	done
	$(MAKE) bench-rewrite

bench:
	dune exec bench/main.exe

bench-rewrite: ## worklist vs sweep comparison; fails unless patterns fired and outputs agree
	dune exec bench/main.exe -- --rewrite --quick

clean:
	dune clean
