# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench bench-rewrite bench-interp clean

all: build

build:
	dune build

test:
	dune runtest

check: ## build everything, run the full test suite, every example, and the rewrite-driver sanity gate
	dune build && dune runtest
	@for src in examples/*.ml; do \
	  name=$$(basename $$src .ml); \
	  echo "example $$name"; \
	  dune exec examples/$$name.exe > /dev/null || exit 1; \
	done
	$(MAKE) bench-rewrite
	$(MAKE) bench-interp

bench:
	dune exec bench/main.exe

bench-rewrite: ## worklist vs sweep comparison; fails unless patterns fired and outputs agree
	dune exec bench/main.exe -- --rewrite --quick

bench-interp: ## tree-walker vs closure-compiled interpreter; fails unless outputs agree and compiled is >= 3x faster
	dune exec bench/main.exe -- --interp --quick

clean:
	dune clean
