# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

check: ## build everything, run the full test suite, then every example
	dune build && dune runtest
	@for src in examples/*.ml; do \
	  name=$$(basename $$src .ml); \
	  echo "example $$name"; \
	  dune exec examples/$$name.exe > /dev/null || exit 1; \
	done

bench:
	dune exec bench/main.exe

clean:
	dune clean
