# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench bench-rewrite bench-compile bench-interp bench-fault bench-profile bench-backend bench-sched bench-chaos clean

all: build

build:
	dune build

test:
	dune runtest

check: ## build everything, run the full test suite, every example, and the rewrite-driver sanity gate
	dune build && dune runtest
	@for src in examples/*.ml; do \
	  name=$$(basename $$src .ml); \
	  echo "example $$name"; \
	  dune exec examples/$$name.exe > /dev/null || exit 1; \
	done
	$(MAKE) bench-rewrite
	$(MAKE) bench-compile
	$(MAKE) bench-interp
	$(MAKE) bench-fault
	$(MAKE) bench-profile
	$(MAKE) bench-backend
	$(MAKE) bench-sched
	$(MAKE) bench-chaos

bench:
	dune exec bench/main.exe

bench-rewrite: ## worklist vs sweep comparison; fails unless patterns fired, outputs agree and the worklist wins on wall clock on every case
	dune exec bench/main.exe -- --rewrite --quick

bench-compile: ## domain-parallel pipeline gate; fails unless artifacts are byte-identical across domain counts (and >= 1.5x d4 speedup on >= 4-core machines)
	dune exec bench/main.exe -- --compile --quick

bench-interp: ## tree-walker vs closure-compiled interpreter; fails unless outputs agree and compiled is >= 3x faster
	dune exec bench/main.exe -- --interp --quick

bench-fault: ## fault-free vs fault-injected runs; fails unless outputs agree and recovery/fallback behave
	dune exec bench/main.exe -- --faults --quick

bench-profile: ## profiling on vs off; fails unless output is byte-identical, overhead <= 5% and profile data was recorded
	dune exec bench/main.exe -- --profile --quick

bench-backend: ## vitis vs rv differential; fails unless all four programs produce byte-identical output on every backend
	dune exec bench/main.exe -- --backends --quick

bench-sched: ## 1000-job queue on 1 vs 4 devices; fails unless zero drops, byte-identical output and >= 2x makespan speedup, plus drain/fallback fault runs
	dune exec bench/main.exe -- --sched --quick

bench-chaos: ## seeded chaos campaign on the resilience layer; fails unless jobs are conserved, clean runs are transparent, chaos runs are deterministic and p99 stays bounded
	dune exec bench/main.exe -- --chaos --quick

clean:
	dune clean
