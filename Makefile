# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

check: ## build everything, then run the full test suite
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
