examples/data_regions.ml: Array Core Executor Fmt Ftn_linpack Ftn_runtime List Option Printf Trace
