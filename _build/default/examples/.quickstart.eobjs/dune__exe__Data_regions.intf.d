examples/data_regions.mli:
