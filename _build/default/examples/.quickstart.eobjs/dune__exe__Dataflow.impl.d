examples/dataflow.ml: Array Ftn_linpack Ftn_runtime Printf Sys
