examples/dataflow.mli:
