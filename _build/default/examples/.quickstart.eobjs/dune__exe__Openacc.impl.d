examples/openacc.ml: Array Core Fmt Ftn_frontend Ftn_hlsim Ftn_ir Ftn_linpack Ftn_runtime List Option Printf
