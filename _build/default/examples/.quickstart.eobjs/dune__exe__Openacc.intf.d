examples/openacc.mli:
