examples/quickstart.ml: Array Core Ftn_hlsim Ftn_ir List Printf
