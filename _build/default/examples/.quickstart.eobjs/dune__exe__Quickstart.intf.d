examples/quickstart.mli:
