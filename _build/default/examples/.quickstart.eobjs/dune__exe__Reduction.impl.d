examples/reduction.ml: Array Core Float Ftn_ir Ftn_linpack Option Printf Sys
