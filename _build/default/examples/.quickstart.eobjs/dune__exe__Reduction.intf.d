examples/reduction.mli:
