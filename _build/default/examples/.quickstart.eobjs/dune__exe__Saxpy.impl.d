examples/saxpy.ml: Array Core Float Fmt Ftn_hlsim Ftn_linpack Ftn_runtime Option Printf Sys
