examples/saxpy.mli:
