examples/sgesl.ml: Array Core Executor Float Ftn_linpack Ftn_runtime List Option Printf Sys Trace
