examples/sgesl.mli:
