examples/solver.ml: Array Core Ftn_linpack Ftn_runtime Printf String Sys
