examples/solver.mli:
