examples/stencil.ml: Array Core Float Ftn_linpack Ftn_runtime Option Printf Sys
