examples/stencil.mli:
