(* Nested OpenMP data regions (the paper's Listing 1): an enclosing
   `target data map(from:a)` region with an inner `target` whose implicit
   tofrom map of `a` must NOT re-transfer because the reference-counted
   data environment already holds it.

     dune exec examples/data_regions.exe *)

open Ftn_runtime

let () =
  let n = 64 in
  let run = Core.Run.run (Ftn_linpack.Fortran_sources.data_regions ~n) in

  print_endline "event trace (note: a is copied back exactly once, at the";
  print_endline "end of the outer data region; the inner implicit map of a";
  print_endline "transfers nothing because the counter is already positive):";
  Fmt.pr "%a@." Trace.pp run.Core.Run.exec.Executor.trace;

  let transfers =
    List.filter
      (function Trace.Transfer _ -> true | _ -> false)
      (Trace.events run.Core.Run.exec.Executor.trace)
  in
  Printf.printf "total transfers: %d (b in, a out)\n" (List.length transfers);
  let a = Option.get (Core.Run.device_floats run ~name:"a") in
  Printf.printf "a(n) = %g (expected %g) -> %s\n" a.(n - 1)
    (2.0 *. float_of_int n)
    (if a.(n - 1) = 2.0 *. float_of_int n then "PASS" else "FAIL")
