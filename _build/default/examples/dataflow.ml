(* Dataflow kernels: Section 2 of the paper notes that to get the best
   performance "programmers must still make significant algorithmic changes
   in order to convert these to a dataflow form". This example shows the
   same three-stage kernel (read -> scale -> write through on-chip hls
   streams) with and without the hls.dataflow directive: with it, the
   stages overlap and the kernel is bound by the slowest stage; without it
   they run back to back.

     dune exec examples/dataflow.exe [-- N] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  let a = 2.5 in
  let run dataflow =
    Ftn_linpack.Hls_baselines.run_scale_dataflow ~dataflow ~n ~a ()
  in
  let with_df = run true in
  let without_df = run false in
  let kt (r : Ftn_linpack.Hls_baselines.baseline_run) =
    r.Ftn_linpack.Hls_baselines.result.Ftn_runtime.Executor.kernel_time_s
  in
  Printf.printf "three-stage scale kernel, N = %d\n" n;
  Printf.printf "  without hls.dataflow : %8.3f ms (stages run back to back)\n"
    (kt without_df *. 1e3);
  Printf.printf "  with    hls.dataflow : %8.3f ms (stages overlap)\n"
    (kt with_df *. 1e3);
  Printf.printf "  overlap speedup      : %.2fx\n"
    (kt without_df /. kt with_df);
  (* both compute the same values *)
  let ok = ref true in
  Array.iteri
    (fun i v ->
      let expect =
        Ftn_linpack.References.to_f32
          (Ftn_linpack.References.to_f32 a *. float_of_int (i + 1))
      in
      if v <> expect then ok := false;
      if v <> without_df.Ftn_linpack.Hls_baselines.values.(i) then ok := false)
    with_df.Ftn_linpack.Hls_baselines.values;
  Printf.printf "  results identical and correct: %s\n"
    (if !ok then "PASS" else "FAIL");
  if not !ok then exit 1
