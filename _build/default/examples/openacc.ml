(* OpenACC offload — the integration the paper's conclusions name as
   further work. The same SAXPY written with !$acc directives flows
   through the acc dialect, is lowered structurally onto the omp dialect
   (Ftn_passes.Lower_acc_to_omp), and reuses the entire device pipeline:
   the generated kernel is identical to the OpenMP version.

     dune exec examples/openacc.exe *)

let n = 1024

let acc_src =
  Printf.sprintf
    {|program acc_saxpy
  implicit none
  integer, parameter :: n = %d
  real :: x(n), y(n)
  real :: a
  integer :: i
  a = 2.0
  do i = 1, n
    x(i) = real(i) * 0.5
    y(i) = real(n - i) * 0.25
  end do
  !$acc parallel loop copyin(x) copy(y) vector_length(10)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
  !$acc end parallel loop
  print *, 'acc', y(1), y(n)
end program acc_saxpy
|}
    n

let () =
  (* the frontend produces acc dialect ops ... *)
  let fir = Ftn_frontend.Frontend.to_fir acc_src in
  Printf.printf "acc-dialect ops at the Flang level: %d\n"
    (Ftn_ir.Op.count (fun o -> Ftn_ir.Op.dialect o = "acc") fir);

  (* ... and the standard pipeline handles the rest *)
  let run = Core.Run.run acc_src in
  Printf.printf "device time %.3f ms, %d launch(es)\n"
    (Core.Run.device_time run *. 1e3)
    run.Core.Run.exec.Ftn_runtime.Executor.kernel_launches;

  (* identical to the OpenMP flow, numerically and in resources *)
  let omp_run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n) in
  let res r =
    (List.hd r.Core.Run.bitstream.Ftn_hlsim.Bitstream.kernels)
      .Ftn_hlsim.Bitstream.kd_resources
  in
  Printf.printf "acc kernel: %s\n"
    (Fmt.str "%a" Ftn_hlsim.Resources.pp (res run));
  Printf.printf "omp kernel: %s\n"
    (Fmt.str "%a" Ftn_hlsim.Resources.pp (res omp_run));
  let acc_y = Option.get (Core.Run.device_floats run ~name:"y") in
  let omp_y = Option.get (Core.Run.device_floats omp_run ~name:"y") in
  let same = Array.for_all2 (fun a b -> a = b) acc_y omp_y in
  Printf.printf "acc and omp results identical: %s\n"
    (if same then "PASS" else "FAIL");
  if not same then exit 1
