(* Quickstart: compile a Fortran vector-add (the paper's Listing 3) through
   the full MLIR pipeline, inspect the generated device IR, synthesise a
   bitstream for the simulated U280, run it, and check the result.

     dune exec examples/quickstart.exe *)

let source = {|
program vecadd
  implicit none
  integer, parameter :: n = 100
  real :: a(n), b(n), c(n)
  integer :: i

  do i = 1, n
    a(i) = real(i)
    b(i) = real(2 * i)
  end do

  !$omp target parallel do map(to:a, b) map(from:c)
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
  !$omp end target parallel do

  print *, 'c(1) =', c(1), ' c(n) =', c(n)
end program vecadd
|}

let () =
  (* 1. Compile: Fortran -> FIR -> core+omp -> device dialect -> HLS. *)
  let artifacts = Core.Compiler.compile source in

  print_endline "=== device module (hls dialect), paper Listing 4 level ===";
  (match artifacts.Core.Compiler.device_hls with
  | Some d -> print_endline (Ftn_ir.Printer.to_string d)
  | None -> print_endline "(no offloaded region)");

  (* 2. Synthesise the kernels into a (simulated) bitstream. *)
  let bitstream = Core.Compiler.synthesise artifacts in
  List.iter print_endline bitstream.Ftn_hlsim.Bitstream.build_log;

  (* 3. Execute the host program against the simulated FPGA. *)
  let run = Core.Run.run source in
  print_endline "=== run report ===";
  print_string (Core.Report.summary run);

  (* 4. The kernel really computed c = a + b. *)
  match Core.Run.device_floats run ~name:"c" with
  | Some c ->
    let ok = ref true in
    Array.iteri
      (fun i v -> if v <> float_of_int (3 * (i + 1)) then ok := false)
      c;
    Printf.printf "verification: %s\n" (if !ok then "PASS" else "FAIL");
    if not !ok then exit 1
  | None ->
    print_endline "verification: FAIL (no device buffer)";
    exit 1
