(* Reduction offload: `target parallel do simd reduction(+:total)`. The
   pipeline rewrites the accumulator into n round-robin copies (combined
   after the loop) so consecutive iterations do not stall on the f32 add
   latency — the transformation described in Section 3 of the paper.

     dune exec examples/reduction.exe [-- N] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10_000 in
  let src = Ftn_linpack.Fortran_sources.dot_product ~n ~simdlen:4 in

  (* show the rewritten kernel *)
  let artifacts = Core.Compiler.compile src in
  (match artifacts.Core.Compiler.device_hls with
  | Some d ->
    let copies =
      Ftn_ir.Op.count
        (fun o -> Ftn_ir.Op.name o = "hls.array_partition")
        d
    in
    Printf.printf "kernel uses %d partitioned copy buffer(s) for the reduction\n"
      copies
  | None -> ());

  let run = Core.Run.run src in
  let x, y = Ftn_linpack.References.dot_inputs ~n in
  let expect = Ftn_linpack.References.dot ~x ~y in
  let total = (Option.get (Core.Run.device_floats run ~name:"total")).(0) in
  Printf.printf "dot product: device %.6f, reference %.6f (rel err %.2e)\n"
    total expect
    (Float.abs (total -. expect) /. Float.abs expect);
  Printf.printf "device time: %.3f ms\n" (Core.Run.device_time run *. 1e3);
  if Float.abs (total -. expect) /. Float.abs expect > 1e-4 then exit 1
