(* SAXPY (paper Listing 5): the LINPACK/LAPACK level-1 kernel offloaded
   with `target parallel do simd simdlen(10)`, compared against the
   hand-written Vitis HLS baseline — the core comparison of the paper's
   Tables 1, 3 and 5.

     dune exec examples/saxpy.exe [-- N] *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000
  in
  Printf.printf "SAXPY, N = %d\n%!" n;

  (* Fortran OpenMP flow *)
  let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n) in
  let ftn_time = Core.Run.device_time run in

  (* Hand-written HLS baseline *)
  let hand = Ftn_linpack.Hls_baselines.run_saxpy ~n () in
  let hand_time =
    hand.Ftn_linpack.Hls_baselines.result.Ftn_runtime.Executor.device_time_s
  in

  Printf.printf "  Fortran OpenMP   : %8.3f ms\n" (ftn_time *. 1e3);
  Printf.printf "  Hand-written HLS : %8.3f ms\n" (hand_time *. 1e3);
  Printf.printf "  difference       : %+.2f%%\n"
    (100.0 *. (hand_time -. ftn_time) /. ftn_time);

  (match run.Core.Run.bitstream.Ftn_hlsim.Bitstream.kernels with
  | k :: _ ->
    Printf.printf "  resources        : %s\n"
      (Fmt.str "%a" Ftn_hlsim.Resources.pp k.Ftn_hlsim.Bitstream.kd_resources)
  | [] -> ());

  (* numerical check against the reference *)
  let x, y = Ftn_linpack.References.saxpy_inputs ~n in
  Ftn_linpack.References.saxpy ~a:2.0 ~x ~y;
  let got = Option.get (Core.Run.device_floats run ~name:"y") in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i v -> max_err := Float.max !max_err (Float.abs (v -. y.(i))))
    got;
  Printf.printf "  max error vs reference: %g -> %s\n" !max_err
    (if !max_err = 0.0 then "PASS" else "FAIL");
  if !max_err > 0.0 then exit 1
