(* SGESL (paper Listing 6): the LINPACK solve-update loop, offloaded once
   per outer iteration with `target parallel do`. Shows the per-launch
   data-environment behaviour (buffers allocated once, transfers each
   iteration) and the Fortran-vs-hand-written comparison of Table 2.

     dune exec examples/sgesl.exe [-- N] *)

open Ftn_runtime

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 256 in
  Printf.printf "SGESL update loop, N = %d (%d kernel launches)\n%!" n (n - 1);

  let run = Core.Run.run (Ftn_linpack.Fortran_sources.sgesl ~n) in
  let hand = Ftn_linpack.Hls_baselines.run_sgesl ~n () in

  Printf.printf "  Fortran OpenMP   : %8.3f ms (%d launches, %d bytes moved)\n"
    (Core.Run.device_time run *. 1e3)
    run.Core.Run.exec.Executor.kernel_launches
    run.Core.Run.exec.Executor.bytes_transferred;
  Printf.printf "  Hand-written HLS : %8.3f ms (%d launches, %d bytes moved)\n"
    (hand.Ftn_linpack.Hls_baselines.result.Executor.device_time_s *. 1e3)
    hand.Ftn_linpack.Hls_baselines.result.Executor.kernel_launches
    hand.Ftn_linpack.Hls_baselines.result.Executor.bytes_transferred;

  (* The data environment allocated each buffer exactly once. *)
  let allocs =
    List.filter
      (function Trace.Alloc _ -> true | _ -> false)
      (Trace.events run.Core.Run.exec.Executor.trace)
  in
  Printf.printf "  device allocations: %d (reused across %d launches)\n"
    (List.length allocs) (n - 1);

  (* correctness *)
  let a, b, ipvt = Ftn_linpack.References.sgesl_inputs ~n in
  Ftn_linpack.References.sgesl_update ~n ~a ~b ~ipvt;
  let got = Option.get (Core.Run.device_floats run ~name:"b") in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i v -> max_err := Float.max !max_err (Float.abs (v -. b.(i))))
    got;
  Printf.printf "  max error vs reference: %g -> %s\n" !max_err
    (if !max_err = 0.0 then "PASS" else "FAIL");
  if !max_err > 0.0 then exit 1
