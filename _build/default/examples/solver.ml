(* Full LINPACK solve with a 2-D coefficient matrix: sgefa factorisation on
   the host (OCaml reference) and the forward-elimination update offloaded
   to the FPGA from Fortran with a rank-2 mapped array — exercising
   column-major subscript handling through the whole pipeline.

     dune exec examples/solver.exe [-- N] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 48 in

  (* Fortran program: forward elimination with a(n,n) mapped to the device. *)
  let src =
    Printf.sprintf
      {|program solve_fwd
  implicit none
  integer, parameter :: n = %d
  real :: a(n, n), b(n)
  real :: t
  integer :: i, j, k

  do j = 1, n
    do i = 1, n
      if (i == j) then
        a(i, j) = 4.0
      else
        a(i, j) = 1.0 / real(1 + abs(i - j))
      end if
    end do
    b(j) = real(j)
  end do

  ! factor-free demo: apply one elimination sweep per column
  do k = 1, n - 1
    t = b(k)
    !$omp target parallel do map(tofrom:b) map(to:a)
    do j = k + 1, n
      b(j) = b(j) - t * a(j, k) / a(k, k)
    end do
    !$omp end target parallel do
  end do

  print *, 'b(1) =', b(1), ' b(n) =', b(n)
end program solve_fwd
|}
      n
  in
  let run = Core.Run.run src in
  Printf.printf "offloaded 2-D elimination: %d launches, %.3f ms\n"
    run.Core.Run.exec.Ftn_runtime.Executor.kernel_launches
    (Core.Run.device_time run *. 1e3);
  print_string ("program output:" ^ Core.Run.output run);

  (* CPU reference for the same computation *)
  let cpu_out, _ = Core.Run.run_cpu src in
  Printf.printf "cpu reference agrees: %s\n"
    (if String.equal cpu_out (Core.Run.output run) then "PASS" else "FAIL");
  if not (String.equal cpu_out (Core.Run.output run)) then exit 1;

  (* and the full reference solver for context *)
  let a =
    Array.init (n * n) (fun kk ->
        let i = kk mod n and j = kk / n in
        if i = j then 4.0 else 1.0 /. float_of_int (1 + abs (i - j)))
  in
  let a_orig = Array.copy a in
  let b = Array.init n (fun i -> float_of_int (i + 1)) in
  let b_orig = Array.copy b in
  let ipvt = Array.make n 0 in
  let info = Ftn_linpack.References.sgefa ~n a ipvt in
  Ftn_linpack.References.sgesl ~n a ipvt b;
  Printf.printf
    "full sgefa+sgesl reference: info=%d, residual=%.2e\n" info
    (Ftn_linpack.References.residual ~n a_orig b b_orig)
