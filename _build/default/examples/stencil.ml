(* 1-D heat-diffusion stencil: the workload family of Stencil-HMLS [20],
   whose hls dialect this pipeline builds on. The sweep loop is offloaded
   each timestep inside an enclosing `target data` region, so the grids
   stay resident on the device and only the final state is copied back —
   the same data-environment machinery as the paper's Listing 1, exercised
   across many kernel launches.

     dune exec examples/stencil.exe [-- N STEPS] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 256 in
  let steps = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 50 in
  let src =
    Printf.sprintf
      {|program heat
  implicit none
  integer, parameter :: n = %d
  integer, parameter :: steps = %d
  real :: u(n), v(n)
  integer :: i, t

  do i = 1, n
    u(i) = 0.0
    v(i) = 0.0
  end do
  u(1) = 100.0
  u(n) = 100.0

  !$omp target data map(tofrom:u) map(alloc:v)
  do t = 1, steps
    !$omp target parallel do
    do i = 2, n - 1
      v(i) = u(i) + 0.25 * (u(i - 1) - 2.0 * u(i) + u(i + 1))
    end do
    !$omp end target parallel do
    !$omp target parallel do
    do i = 2, n - 1
      u(i) = v(i)
    end do
    !$omp end target parallel do
  end do
  !$omp end target data

  print *, 'u(2) =', u(2), ' u(n/2) =', u(n / 2)
end program heat
|}
      n steps
  in
  let run = Core.Run.run src in
  Printf.printf "heat diffusion: N=%d, %d timesteps, %d kernel launches\n" n
    steps run.Core.Run.exec.Ftn_runtime.Executor.kernel_launches;
  Printf.printf "device time %.3f ms (%d bytes moved — grids stay resident)\n"
    (Core.Run.device_time run *. 1e3)
    run.Core.Run.exec.Ftn_runtime.Executor.bytes_transferred;
  print_string ("output:" ^ Core.Run.output run);

  (* OCaml reference *)
  let u = Array.make n 0.0 and v = Array.make n 0.0 in
  u.(0) <- 100.0;
  u.(n - 1) <- 100.0;
  let f32 = Ftn_linpack.References.to_f32 in
  for _ = 1 to steps do
    for i = 1 to n - 2 do
      v.(i) <-
        f32 (u.(i) +. f32 (0.25 *. f32 (f32 (u.(i - 1) -. f32 (2.0 *. u.(i))) +. u.(i + 1))))
    done;
    for i = 1 to n - 2 do
      u.(i) <- v.(i)
    done
  done;
  let got = Option.get (Core.Run.device_floats run ~name:"u") in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i g -> max_err := Float.max !max_err (Float.abs (g -. u.(i))))
    got;
  Printf.printf "max error vs reference: %g -> %s\n" !max_err
    (if !max_err < 1e-4 then "PASS" else "FAIL");
  if !max_err >= 1e-4 then exit 1
