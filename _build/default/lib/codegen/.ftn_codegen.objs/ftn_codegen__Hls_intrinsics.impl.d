lib/codegen/hls_intrinsics.ml: Attr Ftn_ir List Op Option Pass String
