lib/codegen/hls_intrinsics.mli: Ftn_ir
