lib/codegen/host_cpp.ml: Attr Buffer Fmt Ftn_dialects Ftn_ir Func_d Hashtbl List Op Option Scf String Types Value
