lib/codegen/host_cpp.mli: Ftn_ir
