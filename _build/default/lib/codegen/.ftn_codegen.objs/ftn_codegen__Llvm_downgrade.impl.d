lib/codegen/llvm_downgrade.ml: Buffer List String
