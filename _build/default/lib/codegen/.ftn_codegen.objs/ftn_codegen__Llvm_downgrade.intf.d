lib/codegen/llvm_downgrade.mli:
