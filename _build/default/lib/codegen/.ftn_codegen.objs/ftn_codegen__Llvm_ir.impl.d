lib/codegen/llvm_ir.ml: Attr Buffer Float Fmt Ftn_dialects Ftn_ir Hashtbl Int64 List Llvm_d Op Option String Types Value
