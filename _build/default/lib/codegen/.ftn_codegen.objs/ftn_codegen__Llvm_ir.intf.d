lib/codegen/llvm_ir.mli: Ftn_ir
