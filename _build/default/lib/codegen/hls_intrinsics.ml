(* AMD HLS intrinsic mapping (after Fortran-HLS [19]): rewrites the
   directive calls produced by the hls-to-func lowering into the variadic
   _ssdm_op_* primitives AMD's Vitis HLS LLVM backend recognises, and marks
   them (and their declarations) variadic so the emitter prints the
   `call void (...)` form the backend expects. *)

open Ftn_ir

(* callee -> Vitis primitive *)
let mapping =
  [
    ("_ssdm_op_SpecInterface", "_ssdm_op_SpecInterface");
    ("_ssdm_op_SpecPipeline", "_ssdm_op_SpecPipeline");
    ("_ssdm_op_SpecUnroll", "_ssdm_op_SpecLoopTripCount_Unroll");
    ("_ssdm_op_SpecArrayPartition", "_ssdm_op_SpecArrayPartition");
    ("_ssdm_op_SpecDataflow", "_ssdm_op_SpecDataflowPipeline");
  ]

let is_spec_call op =
  String.equal (Op.name op) "llvm.call"
  &&
  match Op.symbol_attr op "callee" with
  | Some callee -> List.mem_assoc callee mapping
  | None -> false

let run m =
  let rec walk op =
    let op =
      {
        op with
        Op.regions =
          List.map
            (fun blocks ->
              List.map
                (fun blk -> { blk with Op.body = List.map walk blk.Op.body })
                blocks)
            op.Op.regions;
      }
    in
    if is_spec_call op then begin
      let callee = Option.get (Op.symbol_attr op "callee") in
      let op = Op.set_attr op "callee" (Attr.Symbol (List.assoc callee mapping)) in
      Op.set_attr op "variadic" (Attr.Bool true)
    end
    else if
      String.equal (Op.name op) "llvm.func"
      &&
      match Op.symbol_attr op "sym_name" with
      | Some n -> List.mem_assoc n mapping
      | None -> false
    then begin
      let n = Option.get (Op.symbol_attr op "sym_name") in
      let op = Op.set_attr op "sym_name" (Attr.Symbol (List.assoc n mapping)) in
      Op.set_attr op "variadic" (Attr.Bool true)
    end
    else op
  in
  walk m

let pass = Pass.make "map-amd-hls-intrinsics" run
