(** AMD HLS intrinsic mapping (after Fortran-HLS [19]): renames the
    directive calls from the hls-to-func lowering onto the variadic
    [_ssdm_op_*] primitives the Vitis HLS LLVM backend recognises, marking
    calls and declarations variadic for the emitter. *)

val mapping : (string * string) list
val is_spec_call : Ftn_ir.Op.t -> bool
val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
