(** Host code printer: C++ with OpenCL from the host module (the paper's
    host printer). SSA values map onto single-assignment C++ locals; the
    device dialect maps onto a small [ftn::] helper layer (buffer cache,
    reference counters, HBM bank selection) emitted as a prelude. *)

exception Cpp_error of string

val cpp_scalar_type : Ftn_ir.Types.t -> string
val prelude : string

val emit_module : ?xclbin:string -> Ftn_ir.Op.t -> string
(** Emit a complete host program from the module's [ftn.main] function. *)
