(* LLVM version downgrade (after Fortran-HLS [19]): AMD's open-sourced HLS
   backend is built on LLVM 7, while a modern Flang emits current LLVM-IR.
   This pass rewrites the emitted textual IR into LLVM-7-compatible form
   and reports which rewrites fired. The emitter already avoids most
   post-7 constructs (opaque pointers, fneg); this pass catches the rest
   and stamps the header. *)

type rewrite = {
  rw_name : string;
  rw_applied : int;
}

type result = {
  text : string;
  rewrites : rewrite list;
}

(* Replace all occurrences of [pat] (plain string) by [rep]; counts hits. *)
let replace_all ~pat ~rep text =
  let buf = Buffer.create (String.length text) in
  let plen = String.length pat in
  let n = String.length text in
  let count = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + plen <= n && String.sub text !i plen = pat then begin
      Buffer.add_string buf rep;
      incr count;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  (Buffer.contents buf, !count)

let rewrites_table =
  [
    (* post-LLVM-7 attributes and keywords the backend rejects *)
    ("strip noundef", " noundef", "");
    ("strip mustprogress", "mustprogress ", "");
    ("strip willreturn", "willreturn ", "");
    ("strip nofree", "nofree ", "");
    ("strip nosync", "nosync ", "");
    (* fneg instruction (LLVM 8+) -> fsub from negative zero *)
    ("rewrite fneg", " fneg ", " fsub -0.000000e+00, ");
    (* freeze instruction (LLVM 10+) has no LLVM-7 equivalent; drop to a
       plain copy via bitcast-free alias is not expressible textually, so
       reject it loudly instead. *)
  ]

let version_stamp = "; downgraded for AMD HLS backend (LLVM 7 compatible)\n"

let run text =
  let text, rewrites =
    List.fold_left
      (fun (text, acc) (rw_name, pat, rep) ->
        let text, n = replace_all ~pat ~rep text in
        (text, { rw_name; rw_applied = n } :: acc))
      (text, []) rewrites_table
  in
  if
    String.length text > 0
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains text "freeze "
  then failwith "llvm_downgrade: freeze instruction cannot be downgraded";
  { text = version_stamp ^ text; rewrites = List.rev rewrites }
