(** LLVM version downgrade (after Fortran-HLS [19]): rewrites emitted
    textual IR into LLVM-7-compatible form (the version AMD's open-sourced
    HLS backend is built on) and reports which rewrites fired. *)

type rewrite = {
  rw_name : string;
  rw_applied : int;  (** Occurrences rewritten. *)
}

type result = {
  text : string;  (** Stamped, downgraded IR. *)
  rewrites : rewrite list;
}

val replace_all : pat:string -> rep:string -> string -> string * int
val version_stamp : string

val run : string -> result
(** Raises [Failure] on constructs with no LLVM-7 equivalent (freeze). *)
