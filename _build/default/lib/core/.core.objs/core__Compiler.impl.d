lib/core/compiler.ml: Ftn_codegen Ftn_frontend Ftn_hlsim Ftn_ir Ftn_passes Op Option Options Pass Verifier
