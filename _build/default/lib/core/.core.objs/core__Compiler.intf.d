lib/core/compiler.mli: Ftn_hlsim Ftn_ir Options
