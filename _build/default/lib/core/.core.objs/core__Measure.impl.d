lib/core/measure.ml: Float Int64 List
