lib/core/measure.mli:
