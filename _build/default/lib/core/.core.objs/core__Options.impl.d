lib/core/options.ml: Ftn_hlsim Ftn_passes
