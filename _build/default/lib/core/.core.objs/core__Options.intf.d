lib/core/options.mli: Ftn_hlsim Ftn_passes
