lib/core/report.ml: Bitstream Executor Fmt Ftn_hlsim Ftn_ir Ftn_runtime List Resources Run String
