lib/core/report.mli: Format Ftn_hlsim Ftn_ir Ftn_runtime Run
