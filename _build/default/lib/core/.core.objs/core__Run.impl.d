lib/core/run.ml: Bitstream Compiler Data_env Executor Fpga_spec Ftn_frontend Ftn_hlsim Ftn_interp Ftn_runtime Options Power
