lib/core/run.mli: Compiler Ftn_hlsim Ftn_runtime Options
