(* Measurement harness: the paper reports median ± standard deviation over
   10 runs. The simulator is deterministic, so run-to-run variability is
   modelled with a seeded jitter process at the magnitude observed in the
   paper's tables (an additive, roughly size-independent ~25 us scatter —
   queue and clock-domain noise, not workload noise). *)

(* SplitMix64: small, seedable, reproducible. *)
type rng = { mutable state : int64 }

let rng_create seed = { state = Int64.of_int seed }

let next_int64 r =
  let open Int64 in
  r.state <- add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform r =
  (* in (0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 r) 11 in
  (Int64.to_float bits +. 1.0) /. 9007199254740994.0

let gaussian r =
  let u1 = uniform r and u2 = uniform r in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

type sample = {
  median : float;
  std : float;
  runs : float list;
}

let median_of runs =
  let sorted = List.sort Float.compare runs in
  let n = List.length sorted in
  if n = 0 then 0.0
  else if n mod 2 = 1 then List.nth sorted (n / 2)
  else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let std_of runs =
  let n = float_of_int (List.length runs) in
  if n < 2.0 then 0.0
  else begin
    let mean = List.fold_left ( +. ) 0.0 runs /. n in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 runs
      /. (n -. 1.0)
    in
    Float.sqrt var
  end

(* Simulate [runs] measurements of a deterministic duration. *)
let measure ?(runs = 10) ?(seed = 42) ?(jitter_s = 25.0e-6) duration_s =
  let r = rng_create seed in
  let samples =
    List.init runs (fun _ ->
        Float.max 0.0 (duration_s +. (jitter_s *. gaussian r)))
  in
  { median = median_of samples; std = std_of samples; runs = samples }

(* Power measurements scatter a little more, relatively. *)
let measure_power ?(runs = 10) ?(seed = 97) ?(jitter_w = 0.35) power_w =
  let r = rng_create seed in
  let samples =
    List.init runs (fun _ -> power_w +. (jitter_w *. gaussian r))
  in
  { median = median_of samples; std = std_of samples; runs = samples }
