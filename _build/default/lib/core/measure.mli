(** Measurement harness: the paper reports median ± std over 10 runs. The
    simulator is deterministic, so run-to-run variability is modelled with
    a seeded jitter process (SplitMix64 + Box–Muller) at the magnitude of
    the paper's reported scatter. Fully reproducible per seed. *)

type rng

val rng_create : int -> rng
val uniform : rng -> float
(** A draw in (0, 1). *)

val gaussian : rng -> float
(** A standard-normal draw. *)

type sample = {
  median : float;
  std : float;
  runs : float list;
}

val median_of : float list -> float
val std_of : float list -> float
(** Sample standard deviation (n − 1). *)

val measure :
  ?runs:int -> ?seed:int -> ?jitter_s:float -> float -> sample
(** Simulate repeated measurements of a deterministic duration with
    additive Gaussian jitter (default σ = 25 µs, 10 runs). *)

val measure_power :
  ?runs:int -> ?seed:int -> ?jitter_w:float -> float -> sample
