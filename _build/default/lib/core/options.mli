(** Compilation and simulation options for the end-to-end flow. *)

type t = {
  pipeline : Ftn_passes.Pipeline.options;
  spec : Ftn_hlsim.Fpga_spec.t;  (** Target device model. *)
  frontend : Ftn_hlsim.Resources.frontend;
      (** Frontend idiom the simulated backend sees; [Mlir_flow] for the
          Fortran flow, [Clang_hls] for hand-written baselines. *)
  emit_llvm : bool;
  emit_cpp : bool;
  xclbin_name : string;
}

val default : t
