(** Human-readable reports for compiled and executed programs. *)

val pp_stages : Format.formatter -> Ftn_ir.Pass.stage_record list -> unit
val pp_bitstream : Format.formatter -> Ftn_hlsim.Bitstream.t -> unit
val pp_exec : Format.formatter -> Ftn_runtime.Executor.result -> unit
val pp_run : Format.formatter -> Run.t -> unit

val summary : Run.t -> string
(** Bitstream, timing breakdown and program output as one string. *)
