lib/dialects/acc.ml: Attr Builder Dialect Ftn_ir List Omp Op Option String Types Value
