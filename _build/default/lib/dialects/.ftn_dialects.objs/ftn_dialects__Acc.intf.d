lib/dialects/acc.mli: Builder Ftn_ir Omp Op Value
