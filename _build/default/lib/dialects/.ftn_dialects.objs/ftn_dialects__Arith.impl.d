lib/dialects/arith.ml: Attr Builder Dialect Float Ftn_ir List Op Option String Types Value
