lib/dialects/arith.mli: Attr Builder Ftn_ir Op Types Value
