lib/dialects/builtin.ml: Attr Builder Dialect Ftn_ir Op Option
