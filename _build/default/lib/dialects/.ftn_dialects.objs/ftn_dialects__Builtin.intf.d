lib/dialects/builtin.mli: Attr Builder Ftn_ir Op Types Value
