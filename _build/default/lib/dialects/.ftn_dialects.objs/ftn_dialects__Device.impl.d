lib/dialects/device.ml: Attr Builder Dialect Ftn_ir Op Option String Types Value
