lib/dialects/device.mli: Builder Ftn_ir Op Types Value
