lib/dialects/fir.ml: Attr Builder Dialect Ftn_ir List Op String Types Value
