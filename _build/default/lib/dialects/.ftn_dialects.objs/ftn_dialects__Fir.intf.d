lib/dialects/fir.mli: Builder Ftn_ir Op Types Value
