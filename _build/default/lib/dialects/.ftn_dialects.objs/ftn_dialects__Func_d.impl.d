lib/dialects/func_d.ml: Attr Builder Dialect Ftn_ir List Op String Types Value
