lib/dialects/func_d.mli: Attr Builder Ftn_ir Op Types Value
