lib/dialects/hls.ml: Attr Builder Dialect Ftn_ir Op String Types Value
