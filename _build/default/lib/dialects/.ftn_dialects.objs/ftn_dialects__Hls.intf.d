lib/dialects/hls.mli: Builder Ftn_ir Op Types Value
