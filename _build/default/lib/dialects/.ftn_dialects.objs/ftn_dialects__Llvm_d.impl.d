lib/dialects/llvm_d.ml: Attr Builder Dialect Ftn_ir List Op Option String Types Value
