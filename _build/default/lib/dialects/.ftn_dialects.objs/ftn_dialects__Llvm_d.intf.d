lib/dialects/llvm_d.mli: Attr Builder Ftn_ir Op Types Value
