lib/dialects/math_d.ml: Builder Dialect Float Ftn_ir List Value
