lib/dialects/math_d.mli: Builder Ftn_ir Op Value
