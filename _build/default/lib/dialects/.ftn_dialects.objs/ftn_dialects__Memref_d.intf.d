lib/dialects/memref_d.mli: Attr Builder Ftn_ir Op Types Value
