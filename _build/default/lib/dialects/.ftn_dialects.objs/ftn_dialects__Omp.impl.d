lib/dialects/omp.ml: Attr Builder Dialect Ftn_ir List Op Option String Types Value
