lib/dialects/omp.mli: Builder Ftn_ir Op Value
