lib/dialects/registry.ml: Acc Arith Builtin Device Fir Func_d Hls Llvm_d Math_d Memref_d Omp Scf
