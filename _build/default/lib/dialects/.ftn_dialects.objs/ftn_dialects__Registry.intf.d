lib/dialects/registry.mli:
