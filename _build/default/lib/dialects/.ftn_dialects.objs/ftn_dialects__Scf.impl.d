lib/dialects/scf.ml: Builder Dialect Ftn_ir List Op String Types Value
