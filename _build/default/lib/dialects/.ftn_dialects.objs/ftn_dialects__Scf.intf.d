lib/dialects/scf.mli: Builder Ftn_ir Op Types Value
