(* acc dialect: the OpenACC operations needed for directive-based offload —
   the integration the paper names as further work ("OpenACC ... also has a
   corresponding MLIR dialect"). Structurally parallel to the omp dialect:
   acc.copy_info mirrors omp.map_info, acc.parallel mirrors omp.target,
   acc.loop mirrors omp.parallel_do — which is what makes the one-to-one
   lowering in Ftn_passes.Lower_acc_to_omp a few dozen lines. *)

open Ftn_ir

type copy_kind =
  | Copyin
  | Copyout
  | Copy
  | Create

let string_of_copy_kind = function
  | Copyin -> "copyin"
  | Copyout -> "copyout"
  | Copy -> "copy"
  | Create -> "create"

let copy_kind_of_string = function
  | "copyin" -> Some Copyin
  | "copyout" -> Some Copyout
  | "copy" -> Some Copy
  | "create" -> Some Create
  | _ -> None

(* acc.copy_info: declares how one variable moves to/from the device.
   Result is the device-side view, as with omp.map_info. *)
let copy_info b ~var ~var_name ~kind ?(implicit = false) () =
  Builder.op1 b "acc.copy_info" ~operands:[ var ]
    ~attrs:
      [
        ("var_name", Attr.String var_name);
        ("copy_kind", Attr.String (string_of_copy_kind kind));
        ("implicit", Attr.Bool implicit);
      ]
    (Value.ty var)

let is_copy_info op = String.equal (Op.name op) "acc.copy_info"

type copy_parts = {
  var : Value.t;
  var_name : string;
  kind : copy_kind;
  implicit : bool;
  result : Value.t;
}

let copy_parts op =
  if not (is_copy_info op) then None
  else
    match (Op.operands op, Op.results op) with
    | [ var ], [ result ] ->
      let var_name = Option.value ~default:"" (Op.string_attr op "var_name") in
      let kind =
        Option.bind (Op.string_attr op "copy_kind") copy_kind_of_string
        |> Option.value ~default:Copy
      in
      let implicit = Option.value ~default:false (Op.bool_attr op "implicit") in
      Some { var; var_name; kind; implicit; result }
    | _ -> None

(* acc.parallel: compute region offloaded to the accelerator. Operands are
   acc.copy_info results, re-bound as entry block arguments. *)
let parallel b ~data_operands make_body =
  let args = List.map (fun v -> Builder.fresh b (Value.ty v)) data_operands in
  Op.make "acc.parallel" ~operands:data_operands
    ~regions:[ Op.region ~args (make_body args) ]

let is_parallel op = String.equal (Op.name op) "acc.parallel"

(* acc.loop: the loop construct inside a parallel region. Bounds follow
   OpenACC/Fortran semantics (inclusive upper bound). The vector clause
   carries the vector length (= simd width). *)
let loop b ~lbs ~ubs ~steps ?vector_length ?(reductions = []) make_body =
  let n = List.length lbs in
  if List.length ubs <> n || List.length steps <> n then
    invalid_arg "Acc.loop: bounds rank mismatch";
  let ivs = List.init n (fun _ -> Builder.fresh b Types.Index) in
  let bound_operands =
    List.concat
      (List.map2 (fun (lb, ub) step -> [ lb; ub; step ])
         (List.combine lbs ubs) steps)
  in
  let red_operands = List.map snd reductions in
  let attrs =
    [ ("collapse", Attr.i32 n) ]
    @ (match vector_length with
      | Some k -> [ ("vector_length", Attr.i32 k) ]
      | None -> [])
    @
    match reductions with
    | [] -> []
    | rs ->
      [
        ( "reductions",
          Attr.Array
            (List.map
               (fun (kind, _) ->
                 Attr.String (Omp.string_of_reduction_kind kind))
               rs) );
      ]
  in
  Op.make "acc.loop"
    ~operands:(bound_operands @ red_operands)
    ~attrs
    ~regions:[ Op.region ~args:ivs (make_body ivs) ]

let is_loop op = String.equal (Op.name op) "acc.loop"

(* Structured and unstructured data regions. *)
let data ~data_operands body =
  Op.make "acc.data" ~operands:data_operands ~regions:[ Op.region body ]

let enter_data ~data_operands = Op.make "acc.enter_data" ~operands:data_operands
let exit_data ~data_operands = Op.make "acc.exit_data" ~operands:data_operands

let update ~direction ~data_operands =
  Op.make "acc.update" ~operands:data_operands
    ~attrs:[ ("direction", Attr.String direction) ]

let yield ?(operands = []) () = Op.make "acc.yield" ~operands
let terminator () = Op.make "acc.terminator"

let register () =
  let open Dialect in
  Dialect.register "acc.copy_info" ~summary:"device data movement clause"
    ~verify:(fun op ->
      let* () = expect_operands op 1 in
      let* () = expect_results op 1 in
      let* () = expect_attr op "copy_kind" in
      expect_attr op "var_name");
  Dialect.register "acc.parallel" ~summary:"offloaded compute region"
    ~verify:(fun op ->
      let* () = expect_regions op 1 in
      let blk = Op.region_block op 0 in
      check
        (List.length blk.Op.args = List.length (Op.operands op))
        "acc.parallel block args must match data operands");
  Dialect.register "acc.loop" ~summary:"accelerated loop" ~verify:(fun op ->
      let* () = expect_regions op 1 in
      let collapse = Option.value ~default:1 (Op.int_attr op "collapse") in
      check
        (List.length (Op.operands op) >= 3 * collapse)
        "acc.loop needs lb, ub, step per collapsed dimension");
  Dialect.register "acc.data" ~summary:"structured data region"
    ~verify:(fun op -> expect_regions op 1);
  Dialect.register "acc.enter_data";
  Dialect.register "acc.exit_data";
  Dialect.register "acc.update" ~verify:(fun op -> expect_attr op "direction");
  Dialect.register "acc.yield";
  Dialect.register "acc.terminator"
