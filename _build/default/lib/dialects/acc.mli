(** acc dialect: OpenACC operations for directive-based offload (the
    paper's further-work integration), structurally parallel to the omp
    dialect so {!Ftn_passes.Lower_acc_to_omp} is a one-to-one mapping. *)

open Ftn_ir

type copy_kind =
  | Copyin
  | Copyout
  | Copy
  | Create

val string_of_copy_kind : copy_kind -> string
val copy_kind_of_string : string -> copy_kind option

val copy_info :
  Builder.t ->
  var:Value.t ->
  var_name:string ->
  kind:copy_kind ->
  ?implicit:bool ->
  unit ->
  Op.t

val is_copy_info : Op.t -> bool

type copy_parts = {
  var : Value.t;
  var_name : string;
  kind : copy_kind;
  implicit : bool;
  result : Value.t;
}

val copy_parts : Op.t -> copy_parts option

val parallel :
  Builder.t -> data_operands:Value.t list -> (Value.t list -> Op.t list) -> Op.t

val is_parallel : Op.t -> bool

val loop :
  Builder.t ->
  lbs:Value.t list ->
  ubs:Value.t list ->
  steps:Value.t list ->
  ?vector_length:int ->
  ?reductions:(Omp.reduction_kind * Value.t) list ->
  (Value.t list -> Op.t list) ->
  Op.t
(** Loop construct with inclusive bounds; [vector_length] plays simdlen. *)

val is_loop : Op.t -> bool
val data : data_operands:Value.t list -> Op.t list -> Op.t
val enter_data : data_operands:Value.t list -> Op.t
val exit_data : data_operands:Value.t list -> Op.t
val update : direction:string -> data_operands:Value.t list -> Op.t
val yield : ?operands:Value.t list -> unit -> Op.t
val terminator : unit -> Op.t
val register : unit -> unit
