(* arith dialect: integer/float arithmetic, comparisons and casts. *)

open Ftn_ir

(* --- constants --- *)

let constant b attr ty = Builder.op1 b "arith.constant" ~attrs:[ ("value", attr) ] ty
let const_int b n ty = constant b (Attr.Int (n, ty)) ty
let const_index b n = const_int b n Types.Index
let const_i32 b n = const_int b n Types.I32
let const_i64 b n = const_int b n Types.I64
let const_float b x ty = constant b (Attr.Float (x, ty)) ty
let const_f32 b x = const_float b x Types.F32
let const_f64 b x = const_float b x Types.F64
let const_bool b v = const_int b (if v then 1 else 0) Types.I1

let is_constant op = String.equal (Op.name op) "arith.constant"

let constant_value op =
  if is_constant op then Op.find_attr op "value" else None

let constant_int op = Option.bind (constant_value op) Attr.as_int
let constant_float op = Option.bind (constant_value op) Attr.as_float

(* --- binary ops --- *)

let binop b name lhs rhs =
  Builder.op1 b name ~operands:[ lhs; rhs ] (Value.ty lhs)

let addi b = binop b "arith.addi"
let subi b = binop b "arith.subi"
let muli b = binop b "arith.muli"
let divsi b = binop b "arith.divsi"
let remsi b = binop b "arith.remsi"
let maxsi b = binop b "arith.maxsi"
let minsi b = binop b "arith.minsi"
let andi b = binop b "arith.andi"
let ori b = binop b "arith.ori"
let xori b = binop b "arith.xori"

let float_binop b name ?(fastmath = false) lhs rhs =
  let attrs = if fastmath then [ ("fastmath", Attr.String "contract") ] else [] in
  Builder.op1 b name ~operands:[ lhs; rhs ] ~attrs (Value.ty lhs)

let addf b ?fastmath = float_binop b "arith.addf" ?fastmath
let subf b ?fastmath = float_binop b "arith.subf" ?fastmath
let mulf b ?fastmath = float_binop b "arith.mulf" ?fastmath
let divf b ?fastmath = float_binop b "arith.divf" ?fastmath
let maxf b ?fastmath = float_binop b "arith.maximumf" ?fastmath
let minf b ?fastmath = float_binop b "arith.minimumf" ?fastmath

let negf b v = Builder.op1 b "arith.negf" ~operands:[ v ] (Value.ty v)

(* --- comparisons --- *)

type int_pred = Eq | Ne | Slt | Sle | Sgt | Sge

let string_of_int_pred = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"

let int_pred_of_string = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | "sgt" -> Some Sgt
  | "sge" -> Some Sge
  | _ -> None

let cmpi b pred lhs rhs =
  Builder.op1 b "arith.cmpi" ~operands:[ lhs; rhs ]
    ~attrs:[ ("predicate", Attr.String (string_of_int_pred pred)) ]
    Types.I1

type float_pred = Oeq | One | Olt | Ole | Ogt | Oge

let string_of_float_pred = function
  | Oeq -> "oeq"
  | One -> "one"
  | Olt -> "olt"
  | Ole -> "ole"
  | Ogt -> "ogt"
  | Oge -> "oge"

let float_pred_of_string = function
  | "oeq" -> Some Oeq
  | "one" -> Some One
  | "olt" -> Some Olt
  | "ole" -> Some Ole
  | "ogt" -> Some Ogt
  | "oge" -> Some Oge
  | _ -> None

let cmpf b pred lhs rhs =
  Builder.op1 b "arith.cmpf" ~operands:[ lhs; rhs ]
    ~attrs:[ ("predicate", Attr.String (string_of_float_pred pred)) ]
    Types.I1

(* --- casts and select --- *)

let index_cast b v ty = Builder.op1 b "arith.index_cast" ~operands:[ v ] ty
let sitofp b v ty = Builder.op1 b "arith.sitofp" ~operands:[ v ] ty
let fptosi b v ty = Builder.op1 b "arith.fptosi" ~operands:[ v ] ty
let extf b v ty = Builder.op1 b "arith.extf" ~operands:[ v ] ty
let truncf b v ty = Builder.op1 b "arith.truncf" ~operands:[ v ] ty
let extsi b v ty = Builder.op1 b "arith.extsi" ~operands:[ v ] ty
let trunci b v ty = Builder.op1 b "arith.trunci" ~operands:[ v ] ty

let select b cond t f =
  Builder.op1 b "arith.select" ~operands:[ cond; t; f ] (Value.ty t)

(* Integer fold table used by canonicalisation. *)
let fold_int_binop name x y =
  match name with
  | "arith.addi" -> Some (x + y)
  | "arith.subi" -> Some (x - y)
  | "arith.muli" -> Some (x * y)
  | "arith.divsi" -> if y = 0 then None else Some (x / y)
  | "arith.remsi" -> if y = 0 then None else Some (x mod y)
  | "arith.maxsi" -> Some (max x y)
  | "arith.minsi" -> Some (min x y)
  | "arith.andi" -> Some (x land y)
  | "arith.ori" -> Some (x lor y)
  | "arith.xori" -> Some (x lxor y)
  | _ -> None

let fold_float_binop name x y =
  match name with
  | "arith.addf" -> Some (x +. y)
  | "arith.subf" -> Some (x -. y)
  | "arith.mulf" -> Some (x *. y)
  | "arith.divf" -> Some (x /. y)
  | "arith.maximumf" -> Some (Float.max x y)
  | "arith.minimumf" -> Some (Float.min x y)
  | _ -> None

let eval_int_pred pred x y =
  match pred with
  | Eq -> x = y
  | Ne -> x <> y
  | Slt -> x < y
  | Sle -> x <= y
  | Sgt -> x > y
  | Sge -> x >= y

let eval_float_pred pred x y =
  match pred with
  | Oeq -> x = y
  | One -> x <> y
  | Olt -> x < y
  | Ole -> x <= y
  | Ogt -> x > y
  | Oge -> x >= y

let int_binop_names =
  [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.divsi"; "arith.remsi";
    "arith.maxsi"; "arith.minsi"; "arith.andi"; "arith.ori"; "arith.xori" ]

let float_binop_names =
  [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf";
    "arith.maximumf"; "arith.minimumf" ]

let register () =
  let open Dialect in
  let verify_binop op =
    let* () = expect_operands op 2 in
    let* () = expect_results op 1 in
    same_type_operands op
  in
  Dialect.register "arith.constant" ~summary:"integer or float constant"
    ~verify:(fun op ->
      let* () = expect_operands op 0 in
      let* () = expect_results op 1 in
      expect_attr op "value");
  List.iter
    (fun name -> Dialect.register name ~summary:"binary op" ~verify:verify_binop)
    (int_binop_names @ float_binop_names);
  Dialect.register "arith.negf" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_results op 1);
  List.iter
    (fun name ->
      Dialect.register name ~summary:"comparison" ~verify:(fun op ->
          let* () = expect_operands op 2 in
          let* () = expect_results op 1 in
          let* () = expect_attr op "predicate" in
          same_type_operands op))
    [ "arith.cmpi"; "arith.cmpf" ];
  List.iter
    (fun name ->
      Dialect.register name ~summary:"cast" ~verify:(fun op ->
          let* () = expect_operands op 1 in
          expect_results op 1))
    [ "arith.index_cast"; "arith.sitofp"; "arith.fptosi"; "arith.extf";
      "arith.truncf"; "arith.extsi"; "arith.trunci" ];
  Dialect.register "arith.select" ~verify:(fun op ->
      let* () = expect_operands op 3 in
      let* () = expect_results op 1 in
      expect_operand_type op 0 Types.I1)
