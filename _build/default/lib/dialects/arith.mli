(** arith dialect: integer/float arithmetic, comparisons and casts, plus
    the fold tables shared by canonicalisation and the interpreter. *)

open Ftn_ir

(** {2 Constants} *)

val constant : Builder.t -> Attr.t -> Types.t -> Op.t
val const_int : Builder.t -> int -> Types.t -> Op.t
val const_index : Builder.t -> int -> Op.t
val const_i32 : Builder.t -> int -> Op.t
val const_i64 : Builder.t -> int -> Op.t
val const_float : Builder.t -> float -> Types.t -> Op.t
val const_f32 : Builder.t -> float -> Op.t
val const_f64 : Builder.t -> float -> Op.t
val const_bool : Builder.t -> bool -> Op.t
val is_constant : Op.t -> bool
val constant_value : Op.t -> Attr.t option
val constant_int : Op.t -> int option
val constant_float : Op.t -> float option

(** {2 Integer and float binary operations} *)

val binop : Builder.t -> string -> Value.t -> Value.t -> Op.t
val addi : Builder.t -> Value.t -> Value.t -> Op.t
val subi : Builder.t -> Value.t -> Value.t -> Op.t
val muli : Builder.t -> Value.t -> Value.t -> Op.t
val divsi : Builder.t -> Value.t -> Value.t -> Op.t
val remsi : Builder.t -> Value.t -> Value.t -> Op.t
val maxsi : Builder.t -> Value.t -> Value.t -> Op.t
val minsi : Builder.t -> Value.t -> Value.t -> Op.t
val andi : Builder.t -> Value.t -> Value.t -> Op.t
val ori : Builder.t -> Value.t -> Value.t -> Op.t
val xori : Builder.t -> Value.t -> Value.t -> Op.t

val float_binop :
  Builder.t -> string -> ?fastmath:bool -> Value.t -> Value.t -> Op.t

val addf : Builder.t -> ?fastmath:bool -> Value.t -> Value.t -> Op.t
val subf : Builder.t -> ?fastmath:bool -> Value.t -> Value.t -> Op.t
val mulf : Builder.t -> ?fastmath:bool -> Value.t -> Value.t -> Op.t
val divf : Builder.t -> ?fastmath:bool -> Value.t -> Value.t -> Op.t
val maxf : Builder.t -> ?fastmath:bool -> Value.t -> Value.t -> Op.t
val minf : Builder.t -> ?fastmath:bool -> Value.t -> Value.t -> Op.t
val negf : Builder.t -> Value.t -> Op.t

(** {2 Comparisons} *)

type int_pred = Eq | Ne | Slt | Sle | Sgt | Sge

val string_of_int_pred : int_pred -> string
val int_pred_of_string : string -> int_pred option
val cmpi : Builder.t -> int_pred -> Value.t -> Value.t -> Op.t

type float_pred = Oeq | One | Olt | Ole | Ogt | Oge

val string_of_float_pred : float_pred -> string
val float_pred_of_string : string -> float_pred option
val cmpf : Builder.t -> float_pred -> Value.t -> Value.t -> Op.t

(** {2 Casts and select} *)

val index_cast : Builder.t -> Value.t -> Types.t -> Op.t
val sitofp : Builder.t -> Value.t -> Types.t -> Op.t
val fptosi : Builder.t -> Value.t -> Types.t -> Op.t
val extf : Builder.t -> Value.t -> Types.t -> Op.t
val truncf : Builder.t -> Value.t -> Types.t -> Op.t
val extsi : Builder.t -> Value.t -> Types.t -> Op.t
val trunci : Builder.t -> Value.t -> Types.t -> Op.t
val select : Builder.t -> Value.t -> Value.t -> Value.t -> Op.t

(** {2 Fold tables} *)

val fold_int_binop : string -> int -> int -> int option
(** [None] on unfoldable ops (division by zero, unknown name). *)

val fold_float_binop : string -> float -> float -> float option
val eval_int_pred : int_pred -> int -> int -> bool
val eval_float_pred : float_pred -> float -> float -> bool
val int_binop_names : string list
val float_binop_names : string list

val register : unit -> unit
