(* builtin dialect: modules and the unrealized conversion cast used while
   mixing partially-lowered dialects. *)

open Ftn_ir

let module_op = Op.module_op
let is_module = Op.is_module

(* Module with the paper's `target = "fpga"` attribute marking device code. *)
let device_module ?(target = "fpga") body =
  Op.module_op ~attrs:[ ("target", Attr.String target) ] body

let module_target m = Op.string_attr m "target"

let is_device_module m =
  Op.is_module m && Option.is_some (module_target m)

let unrealized_cast b v ty =
  Builder.op1 b "builtin.unrealized_conversion_cast" ~operands:[ v ] ty

let register () =
  Dialect.register "builtin.module" ~summary:"top-level container"
    ~verify:(fun op ->
      let open Dialect in
      let* () = expect_operands op 0 in
      let* () = expect_results op 0 in
      expect_regions op 1);
  Dialect.register "builtin.unrealized_conversion_cast"
    ~summary:"temporary materialization between dialects"
