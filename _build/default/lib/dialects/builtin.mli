(** builtin dialect: modules and the unrealized conversion cast. *)

open Ftn_ir

val module_op : ?attrs:(string * Attr.t) list -> Op.t list -> Op.t
val is_module : Op.t -> bool

val device_module : ?target:string -> Op.t list -> Op.t
(** A module carrying the paper's [target = "fpga"] attribute. *)

val module_target : Op.t -> string option
val is_device_module : Op.t -> bool

val unrealized_cast : Builder.t -> Value.t -> Types.t -> Op.t
(** Temporary materialisation between partially-lowered dialects. *)

val register : unit -> unit
