(* fir dialect: a compact stand-in for Flang's FIR. The frontend lowers
   Fortran into these ops; the fir-to-core pass (mirroring [Brown, SC24-W])
   then rewrites them onto memref/scf/arith. References are modelled with
   memref types directly, which keeps the IR single-typed while preserving
   the staged-lowering structure of the paper's Figure 1. *)

open Ftn_ir

(* fir.alloca: storage for a local variable. [bindc_name] records the
   Fortran source name. *)
let alloca b ~bindc_name ?(dynamic_sizes = []) mr_ty =
  Builder.op1 b "fir.alloca" ~operands:dynamic_sizes
    ~attrs:[ ("bindc_name", Attr.String bindc_name) ]
    mr_ty

(* fir.declare: associates a variable with its source-level name, the FIR
   equivalent of hlfir.declare. *)
let declare b ~uniq_name var =
  Builder.op1 b "fir.declare" ~operands:[ var ]
    ~attrs:[ ("uniq_name", Attr.String uniq_name) ]
    (Value.ty var)

let load b ref_ indices =
  let elt =
    match Value.ty ref_ with
    | Types.Memref { elt; _ } -> elt
    | _ -> invalid_arg "Fir.load: not a reference"
  in
  Builder.op1 b "fir.load" ~operands:(ref_ :: indices) elt

let store ~value ~ref_ indices =
  Op.make "fir.store" ~operands:(value :: ref_ :: indices)

(* fir.do_loop: Fortran do-loop, inclusive upper bound. *)
let do_loop b ~lb ~ub ~step ?(unordered = false) make_body =
  let iv = Builder.fresh b Types.Index in
  Op.make "fir.do_loop" ~operands:[ lb; ub; step ]
    ~attrs:[ ("unordered", Attr.Bool unordered) ]
    ~regions:[ Op.region ~args:[ iv ] (make_body iv) ]

let if_ ~cond ~then_ops ?(else_ops = []) () =
  let regions =
    if else_ops = [] then [ Op.region then_ops ]
    else [ Op.region then_ops; Op.region else_ops ]
  in
  Op.make "fir.if" ~operands:[ cond ] ~regions

let convert b v ty = Builder.op1 b "fir.convert" ~operands:[ v ] ty

let result ?(operands = []) () = Op.make "fir.result" ~operands

let call b ~callee ~operands ~result_tys =
  let results = List.map (Builder.fresh b) result_tys in
  Op.make "fir.call" ~operands ~results
    ~attrs:[ ("callee", Attr.Symbol callee) ]

let is_alloca op = String.equal (Op.name op) "fir.alloca"
let is_declare op = String.equal (Op.name op) "fir.declare"
let is_load op = String.equal (Op.name op) "fir.load"
let is_store op = String.equal (Op.name op) "fir.store"
let is_do_loop op = String.equal (Op.name op) "fir.do_loop"
let is_if op = String.equal (Op.name op) "fir.if"
let is_convert op = String.equal (Op.name op) "fir.convert"
let is_result op = String.equal (Op.name op) "fir.result"

let register () =
  let open Dialect in
  Dialect.register "fir.alloca" ~summary:"local variable storage"
    ~verify:(fun op ->
      let* () = expect_results op 1 in
      expect_attr op "bindc_name");
  Dialect.register "fir.declare" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      let* () = expect_results op 1 in
      expect_attr op "uniq_name");
  Dialect.register "fir.load" ~verify:(fun op ->
      let* () = expect_results op 1 in
      check (List.length (Op.operands op) >= 1) "fir.load needs a reference");
  Dialect.register "fir.store" ~verify:(fun op ->
      check (List.length (Op.operands op) >= 2) "fir.store needs value and reference");
  Dialect.register "fir.do_loop" ~summary:"Fortran do loop" ~verify:(fun op ->
      let* () = expect_operands op 3 in
      expect_regions op 1);
  Dialect.register "fir.if" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      check
        (List.length (Op.regions op) >= 1 && List.length (Op.regions op) <= 2)
        "fir.if takes one or two regions");
  Dialect.register "fir.convert" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_results op 1);
  Dialect.register "fir.result";
  Dialect.register "fir.call" ~verify:(fun op -> expect_attr op "callee")
