(** fir dialect: a compact stand-in for Flang's FIR. The frontend lowers
    Fortran onto these ops; {!Ftn_frontend.Fir_to_core} then rewrites them
    onto memref/scf/arith, preserving the staged-lowering structure of the
    paper's Figure 1. References are modelled directly with memref types. *)

open Ftn_ir

val alloca :
  Builder.t ->
  bindc_name:string ->
  ?dynamic_sizes:Value.t list ->
  Types.t ->
  Op.t

val declare : Builder.t -> uniq_name:string -> Value.t -> Op.t
val load : Builder.t -> Value.t -> Value.t list -> Op.t
val store : value:Value.t -> ref_:Value.t -> Value.t list -> Op.t

val do_loop :
  Builder.t ->
  lb:Value.t ->
  ub:Value.t ->
  step:Value.t ->
  ?unordered:bool ->
  (Value.t -> Op.t list) ->
  Op.t
(** Fortran do-loop: inclusive upper bound. *)

val if_ : cond:Value.t -> then_ops:Op.t list -> ?else_ops:Op.t list -> unit -> Op.t
val convert : Builder.t -> Value.t -> Types.t -> Op.t
val result : ?operands:Value.t list -> unit -> Op.t

val call :
  Builder.t ->
  callee:string ->
  operands:Value.t list ->
  result_tys:Types.t list ->
  Op.t

val is_alloca : Op.t -> bool
val is_declare : Op.t -> bool
val is_load : Op.t -> bool
val is_store : Op.t -> bool
val is_do_loop : Op.t -> bool
val is_if : Op.t -> bool
val is_convert : Op.t -> bool
val is_result : Op.t -> bool
val register : unit -> unit
