(* func dialect: functions, calls, returns. *)

open Ftn_ir

let func ~sym_name ~args ~result_tys ?(attrs = []) body =
  let fn_ty = Types.Func (List.map Value.ty args, result_tys) in
  Op.make "func.func"
    ~attrs:
      ([ ("sym_name", Attr.Symbol sym_name); ("function_type", Attr.Type fn_ty) ]
      @ attrs)
    ~regions:[ Op.region ~args body ]

(* Declaration without a body (external function). *)
let func_decl ~sym_name ~arg_tys ~result_tys ?(attrs = []) () =
  Op.make "func.func"
    ~attrs:
      ([
         ("sym_name", Attr.Symbol sym_name);
         ("function_type", Attr.Type (Types.Func (arg_tys, result_tys)));
         ("sym_visibility", Attr.String "private");
       ]
      @ attrs)

let return ?(operands = []) () = Op.make "func.return" ~operands

let call b ~callee ~operands ~result_tys =
  let results = List.map (Builder.fresh b) result_tys in
  Op.make "func.call" ~operands ~results
    ~attrs:[ ("callee", Attr.Symbol callee) ]

let is_func op = String.equal (Op.name op) "func.func"
let is_return op = String.equal (Op.name op) "func.return"
let is_call op = String.equal (Op.name op) "func.call"

let func_name op = Op.symbol_attr op "sym_name"

let func_type op =
  match Op.find_attr op "function_type" with
  | Some (Attr.Type (Types.Func (args, results))) -> Some (args, results)
  | _ -> None

let callee op = Op.symbol_attr op "callee"

let has_body op =
  is_func op && List.length (Op.regions op) > 0

let body op = Op.region_body op 0
let params op = (Op.region_block op 0).Op.args

let register () =
  let open Dialect in
  Dialect.register "func.func" ~summary:"function definition" ~verify:(fun op ->
      let* () = expect_attr op "sym_name" in
      let* () = expect_attr op "function_type" in
      match Op.regions op with
      | [] -> Ok ()
      | [ _ ] -> (
        match func_type op with
        | Some (arg_tys, _) ->
          let param_tys = List.map Value.ty (params op) in
          check
            (Types.equal_list arg_tys param_tys)
            "func.func: entry block args must match function type"
        | None -> Error "func.func: bad function_type attribute")
      | _ -> Error "func.func: at most one region");
  Dialect.register "func.return" ~summary:"function terminator";
  Dialect.register "func.call" ~summary:"direct call" ~verify:(fun op ->
      expect_attr op "callee")
