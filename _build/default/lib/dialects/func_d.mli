(** func dialect: functions, calls and returns. *)

open Ftn_ir

val func :
  sym_name:string ->
  args:Value.t list ->
  result_tys:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  Op.t list ->
  Op.t

val func_decl :
  sym_name:string ->
  arg_tys:Types.t list ->
  result_tys:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  unit ->
  Op.t
(** Bodyless external declaration. *)

val return : ?operands:Value.t list -> unit -> Op.t

val call :
  Builder.t ->
  callee:string ->
  operands:Value.t list ->
  result_tys:Types.t list ->
  Op.t

val is_func : Op.t -> bool
val is_return : Op.t -> bool
val is_call : Op.t -> bool
val func_name : Op.t -> string option
val func_type : Op.t -> (Types.t list * Types.t list) option
val callee : Op.t -> string option
val has_body : Op.t -> bool
val body : Op.t -> Op.t list
val params : Op.t -> Value.t list
val register : unit -> unit
