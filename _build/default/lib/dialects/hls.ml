(* hls dialect (after Stencil-HMLS): High-Level Synthesis directives that
   Vitis understands — interface mapping of kernel arguments onto AXI
   ports, loop pipelining/unrolling, array partitioning and dataflow. *)

open Ftn_ir

type protocol_kind = M_axi | S_axilite | Ap_none

let int_of_protocol = function M_axi -> 0 | S_axilite -> 1 | Ap_none -> 2

let protocol_of_int = function
  | 0 -> Some M_axi
  | 1 -> Some S_axilite
  | 2 -> Some Ap_none
  | _ -> None

let string_of_protocol = function
  | M_axi -> "m_axi"
  | S_axilite -> "s_axilite"
  | Ap_none -> "ap_none"

(* hls.axi_protocol: materialises a protocol token from its integer kind,
   as in the paper's Listing 4. *)
let axi_protocol b kind_value =
  Builder.op1 b "hls.axi_protocol" ~operands:[ kind_value ] Types.Axi_protocol

(* hls.interface: binds a kernel argument to a named port bundle. *)
let interface ~arg ~protocol ~bundle =
  Op.make "hls.interface" ~operands:[ arg; protocol ]
    ~attrs:[ ("bundle", Attr.String bundle) ]

(* hls.pipeline: marks the enclosing loop as pipelined with the given
   initiation interval (operand, i32). *)
let pipeline ii = Op.make "hls.pipeline" ~operands:[ ii ]

(* hls.unroll: replicates the enclosing loop body [factor] times. *)
let unroll factor = Op.make "hls.unroll" ~operands:[ factor ]

(* hls.array_partition: splits a local array across registers/BRAMs so the
   unrolled copies can access it concurrently. *)
let array_partition ~array ~kind ~factor =
  Op.make "hls.array_partition" ~operands:[ array ]
    ~attrs:[ ("kind", Attr.String kind); ("factor", Attr.i32 factor) ]

let dataflow () = Op.make "hls.dataflow"

(* hls.stream_create: an on-chip FIFO connecting dataflow stages. *)
let stream_create b ?(depth = 2) elt =
  Builder.op1 b "hls.stream_create"
    ~attrs:[ ("depth", Attr.i32 depth) ]
    (Types.Stream elt)

let stream_read b stream =
  let elt =
    match Value.ty stream with
    | Types.Stream t -> t
    | _ -> invalid_arg "Hls.stream_read: not a stream"
  in
  Builder.op1 b "hls.stream_read" ~operands:[ stream ] elt

let stream_write ~stream ~value =
  Op.make "hls.stream_write" ~operands:[ stream; value ]

let is_interface op = String.equal (Op.name op) "hls.interface"
let is_pipeline op = String.equal (Op.name op) "hls.pipeline"
let is_unroll op = String.equal (Op.name op) "hls.unroll"
let is_axi_protocol op = String.equal (Op.name op) "hls.axi_protocol"

let interface_bundle op = Op.string_attr op "bundle"

let register () =
  let open Dialect in
  Dialect.register "hls.axi_protocol" ~summary:"AXI protocol token"
    ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_results op 1);
  Dialect.register "hls.interface" ~summary:"argument-to-port binding"
    ~verify:(fun op ->
      let* () = expect_operands op 2 in
      let* () = expect_attr op "bundle" in
      match Op.operands op with
      | [ _; proto ] ->
        check
          (Types.equal (Value.ty proto) Types.Axi_protocol)
          "hls.interface: second operand must be an axi protocol"
      | _ -> assert false);
  Dialect.register "hls.pipeline" ~summary:"pipeline the enclosing loop"
    ~verify:(fun op -> expect_operands op 1);
  Dialect.register "hls.unroll" ~summary:"unroll the enclosing loop"
    ~verify:(fun op -> expect_operands op 1);
  Dialect.register "hls.array_partition" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      let* () = expect_attr op "kind" in
      expect_attr op "factor");
  Dialect.register "hls.dataflow";
  Dialect.register "hls.stream_create" ~verify:(fun op ->
      let* () = expect_results op 1 in
      check
        (match Value.ty (Op.result op 0) with
        | Types.Stream _ -> true
        | _ -> false)
        "hls.stream_create must return a stream");
  Dialect.register "hls.stream_read" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_results op 1);
  Dialect.register "hls.stream_write" ~verify:(fun op ->
      expect_operands op 2)
