(** hls dialect (after Stencil-HMLS): High-Level Synthesis directives —
    AXI interface bindings, loop pipelining/unrolling, array partitioning,
    dataflow regions and on-chip streams. *)

open Ftn_ir

type protocol_kind = M_axi | S_axilite | Ap_none

val int_of_protocol : protocol_kind -> int
val protocol_of_int : int -> protocol_kind option
val string_of_protocol : protocol_kind -> string

val axi_protocol : Builder.t -> Value.t -> Op.t
(** Materialises a protocol token from its integer kind (paper Listing 4). *)

val interface : arg:Value.t -> protocol:Value.t -> bundle:string -> Op.t
(** Binds a kernel argument to a named port bundle. *)

val pipeline : Value.t -> Op.t
(** Marks the enclosing loop pipelined with the given II operand. *)

val unroll : Value.t -> Op.t
val array_partition : array:Value.t -> kind:string -> factor:int -> Op.t
val dataflow : unit -> Op.t
(** Marks the enclosing function's top-level stages as overlapping. *)

val stream_create : Builder.t -> ?depth:int -> Types.t -> Op.t
val stream_read : Builder.t -> Value.t -> Op.t
val stream_write : stream:Value.t -> value:Value.t -> Op.t

val is_interface : Op.t -> bool
val is_pipeline : Op.t -> bool
val is_unroll : Op.t -> bool
val is_axi_protocol : Op.t -> bool
val interface_bundle : Op.t -> string option
val register : unit -> unit
