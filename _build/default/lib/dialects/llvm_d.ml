(* llvm dialect: the lowest MLIR level before LLVM-IR emission. Unlike the
   structured dialects this uses explicit CFG form: llvm.func regions hold
   multiple blocks, and branch ops name their successors through block-label
   attributes (block arguments play the role of phi nodes). *)

open Ftn_ir

let func ~sym_name ~blocks ~fn_ty ?(attrs = []) () =
  Op.make "llvm.func"
    ~attrs:
      ([ ("sym_name", Attr.Symbol sym_name); ("function_type", Attr.Type fn_ty) ]
      @ attrs)
    ~regions:[ blocks ]

let func_decl ~sym_name ~fn_ty () =
  Op.make "llvm.func"
    ~attrs:
      [
        ("sym_name", Attr.Symbol sym_name);
        ("function_type", Attr.Type fn_ty);
        ("linkage", Attr.String "external");
      ]

let return ?(operands = []) () = Op.make "llvm.return" ~operands

let constant b attr ty =
  Builder.op1 b "llvm.mlir.constant" ~attrs:[ ("value", attr) ] ty

let binop b name lhs rhs =
  Builder.op1 b ("llvm." ^ name) ~operands:[ lhs; rhs ] (Value.ty lhs)

let icmp b pred lhs rhs =
  Builder.op1 b "llvm.icmp" ~operands:[ lhs; rhs ]
    ~attrs:[ ("predicate", Attr.String pred) ]
    Types.I1

let fcmp b pred lhs rhs =
  Builder.op1 b "llvm.fcmp" ~operands:[ lhs; rhs ]
    ~attrs:[ ("predicate", Attr.String pred) ]
    Types.I1

(* llvm.br: unconditional jump; operands feed the successor's block args. *)
let br ~dest ?(operands = []) () =
  Op.make "llvm.br" ~operands ~attrs:[ ("dest", Attr.String dest) ]

(* llvm.cond_br: [true_operand_count] splits the trailing operands between
   the two successors' block arguments. *)
let cond_br ~cond ~true_dest ?(true_operands = []) ~false_dest
    ?(false_operands = []) () =
  Op.make "llvm.cond_br"
    ~operands:((cond :: true_operands) @ false_operands)
    ~attrs:
      [
        ("true_dest", Attr.String true_dest);
        ("false_dest", Attr.String false_dest);
        ("true_operand_count", Attr.i32 (List.length true_operands));
      ]

let getelementptr b ~base ~indices ~elem_ty =
  Builder.op1 b "llvm.getelementptr" ~operands:(base :: indices)
    ~attrs:[ ("elem_type", Attr.Type elem_ty) ]
    (Value.ty base)

let load b ptr elt_ty = Builder.op1 b "llvm.load" ~operands:[ ptr ] elt_ty
let store ~value ~ptr = Op.make "llvm.store" ~operands:[ value; ptr ]

let alloca b ~count elt_ty =
  Builder.op1 b "llvm.alloca" ~operands:[ count ]
    ~attrs:[ ("elem_type", Attr.Type elt_ty) ]
    (Types.Ptr elt_ty)

let call b ~callee ~operands ~result_tys =
  let results = List.map (Builder.fresh b) result_tys in
  Op.make "llvm.call" ~operands ~results
    ~attrs:[ ("callee", Attr.Symbol callee) ]

let cast b name v ty = Builder.op1 b ("llvm." ^ name) ~operands:[ v ] ty

let is_func op = String.equal (Op.name op) "llvm.func"
let is_br op = String.equal (Op.name op) "llvm.br"
let is_cond_br op = String.equal (Op.name op) "llvm.cond_br"
let is_return op = String.equal (Op.name op) "llvm.return"

let cond_br_parts op =
  if not (is_cond_br op) then None
  else
    match Op.operands op with
    | cond :: rest ->
      let n = Option.value ~default:0 (Op.int_attr op "true_operand_count") in
      let rec split i acc = function
        | rest when i = 0 -> (List.rev acc, rest)
        | x :: rest -> split (i - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let true_operands, false_operands = split n [] rest in
      Some
        ( cond,
          Option.value ~default:"" (Op.string_attr op "true_dest"),
          true_operands,
          Option.value ~default:"" (Op.string_attr op "false_dest"),
          false_operands )
    | [] -> None

let arith_op_names =
  [ "llvm.add"; "llvm.sub"; "llvm.mul"; "llvm.sdiv"; "llvm.srem";
    "llvm.fadd"; "llvm.fsub"; "llvm.fmul"; "llvm.fdiv"; "llvm.and";
    "llvm.or"; "llvm.xor" ]

let cast_op_names =
  [ "llvm.sitofp"; "llvm.fptosi"; "llvm.sext"; "llvm.trunc"; "llvm.fpext";
    "llvm.fptrunc"; "llvm.bitcast"; "llvm.fneg" ]

let register () =
  let open Dialect in
  Dialect.register "llvm.func" ~summary:"LLVM function" ~verify:(fun op ->
      let* () = expect_attr op "sym_name" in
      expect_attr op "function_type");
  Dialect.register "llvm.return";
  Dialect.register "llvm.mlir.constant" ~verify:(fun op ->
      let* () = expect_results op 1 in
      expect_attr op "value");
  List.iter
    (fun name ->
      Dialect.register name ~verify:(fun op ->
          let* () = expect_operands op 2 in
          expect_results op 1))
    arith_op_names;
  List.iter
    (fun name ->
      Dialect.register name ~verify:(fun op ->
          let* () = expect_operands op 1 in
          expect_results op 1))
    cast_op_names;
  List.iter
    (fun name ->
      Dialect.register name ~verify:(fun op ->
          let* () = expect_operands op 2 in
          let* () = expect_attr op "predicate" in
          expect_results op 1))
    [ "llvm.icmp"; "llvm.fcmp" ];
  Dialect.register "llvm.br" ~verify:(fun op -> expect_attr op "dest");
  Dialect.register "llvm.cond_br" ~verify:(fun op ->
      let* () = expect_attr op "true_dest" in
      let* () = expect_attr op "false_dest" in
      check
        (List.length (Op.operands op) >= 1)
        "llvm.cond_br needs a condition");
  Dialect.register "llvm.getelementptr" ~verify:(fun op ->
      let* () = expect_results op 1 in
      expect_attr op "elem_type");
  Dialect.register "llvm.load" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_results op 1);
  Dialect.register "llvm.store" ~verify:(fun op -> expect_operands op 2);
  Dialect.register "llvm.alloca" ~verify:(fun op ->
      let* () = expect_results op 1 in
      expect_attr op "elem_type");
  Dialect.register "llvm.call" ~verify:(fun op -> expect_attr op "callee");
  Dialect.register "llvm.select" ~verify:(fun op ->
      let* () = expect_operands op 3 in
      expect_results op 1)
