(** llvm dialect: the lowest MLIR level before LLVM-IR emission. Uses
    explicit CFG form — llvm.func regions hold multiple blocks; branch ops
    name successors through block-label attributes, with block arguments
    as phi nodes. *)

open Ftn_ir

val func :
  sym_name:string ->
  blocks:Op.region ->
  fn_ty:Types.t ->
  ?attrs:(string * Attr.t) list ->
  unit ->
  Op.t

val func_decl : sym_name:string -> fn_ty:Types.t -> unit -> Op.t
val return : ?operands:Value.t list -> unit -> Op.t
val constant : Builder.t -> Attr.t -> Types.t -> Op.t

val binop : Builder.t -> string -> Value.t -> Value.t -> Op.t
(** [binop b "add" x y] builds [llvm.add]. *)

val icmp : Builder.t -> string -> Value.t -> Value.t -> Op.t
val fcmp : Builder.t -> string -> Value.t -> Value.t -> Op.t

val br : dest:string -> ?operands:Value.t list -> unit -> Op.t
(** Unconditional jump; operands feed the successor's block arguments. *)

val cond_br :
  cond:Value.t ->
  true_dest:string ->
  ?true_operands:Value.t list ->
  false_dest:string ->
  ?false_operands:Value.t list ->
  unit ->
  Op.t

val getelementptr :
  Builder.t -> base:Value.t -> indices:Value.t list -> elem_ty:Types.t -> Op.t

val load : Builder.t -> Value.t -> Types.t -> Op.t
val store : value:Value.t -> ptr:Value.t -> Op.t
val alloca : Builder.t -> count:Value.t -> Types.t -> Op.t

val call :
  Builder.t ->
  callee:string ->
  operands:Value.t list ->
  result_tys:Types.t list ->
  Op.t

val cast : Builder.t -> string -> Value.t -> Types.t -> Op.t
(** [cast b "sext" v ty] and friends. *)

val is_func : Op.t -> bool
val is_br : Op.t -> bool
val is_cond_br : Op.t -> bool
val is_return : Op.t -> bool

val cond_br_parts :
  Op.t -> (Value.t * string * Value.t list * string * Value.t list) option
(** (condition, true dest, true operands, false dest, false operands). *)

val arith_op_names : string list
val cast_op_names : string list
val register : unit -> unit
