(* math dialect: elementary floating-point functions. *)

open Ftn_ir

let unary b name v = Builder.op1 b name ~operands:[ v ] (Value.ty v)

let sqrt b = unary b "math.sqrt"
let exp b = unary b "math.exp"
let log b = unary b "math.log"
let sin b = unary b "math.sin"
let cos b = unary b "math.cos"
let tanh b = unary b "math.tanh"
let absf b = unary b "math.absf"

let powf b base expo =
  Builder.op1 b "math.powf" ~operands:[ base; expo ] (Value.ty base)

let unary_names =
  [ "math.sqrt"; "math.exp"; "math.log"; "math.sin"; "math.cos";
    "math.tanh"; "math.absf" ]

let eval_unary name x =
  match name with
  | "math.sqrt" -> Some (Float.sqrt x)
  | "math.exp" -> Some (Float.exp x)
  | "math.log" -> Some (Float.log x)
  | "math.sin" -> Some (Float.sin x)
  | "math.cos" -> Some (Float.cos x)
  | "math.tanh" -> Some (Float.tanh x)
  | "math.absf" -> Some (Float.abs x)
  | _ -> None

let register () =
  let open Dialect in
  List.iter
    (fun name ->
      Dialect.register name ~summary:"elementary function" ~verify:(fun op ->
          let* () = expect_operands op 1 in
          expect_results op 1))
    unary_names;
  Dialect.register "math.powf" ~verify:(fun op ->
      let* () = expect_operands op 2 in
      let* () = expect_results op 1 in
      same_type_operands op)
