(* memref dialect: allocation, access and host<->device DMA transfers. *)

open Ftn_ir

let alloc b ?(dynamic_sizes = []) mr_ty =
  Builder.op1 b "memref.alloc" ~operands:dynamic_sizes mr_ty

let alloca b ?(dynamic_sizes = []) mr_ty =
  Builder.op1 b "memref.alloca" ~operands:dynamic_sizes mr_ty

let dealloc mr = Op.make "memref.dealloc" ~operands:[ mr ]

let elt_type v =
  match Value.ty v with
  | Types.Memref { elt; _ } -> elt
  | _ -> invalid_arg "Memref_d.elt_type: not a memref"

let load b mr indices =
  Builder.op1 b "memref.load" ~operands:(mr :: indices) (elt_type mr)

let store value mr indices =
  Op.make "memref.store" ~operands:(value :: mr :: indices)

let dim b mr index =
  Builder.op1 b "memref.dim" ~operands:[ mr; index ] Types.Index

let copy ~src ~dst = Op.make "memref.copy" ~operands:[ src; dst ]

let cast b mr ty = Builder.op1 b "memref.cast" ~operands:[ mr ] ty

(* DMA between host and device memrefs, as used by the paper's data
   movement lowering. The tag distinguishes concurrent transfers. *)
let dma_start ?(tag = 0) ~src ~dst () =
  Op.make "memref.dma_start" ~operands:[ src; dst ]
    ~attrs:[ ("tag", Attr.i32 tag) ]

let dma_wait ?(tag = 0) () =
  Op.make "memref.dma_wait" ~attrs:[ ("tag", Attr.i32 tag) ]

let global ~sym_name ~ty ?init () =
  let attrs =
    [ ("sym_name", Attr.Symbol sym_name); ("type", Attr.Type ty) ]
    @ match init with Some a -> [ ("initial_value", a) ] | None -> []
  in
  Op.make "memref.global" ~attrs

let get_global b ~sym_name ty =
  Builder.op1 b "memref.get_global"
    ~attrs:[ ("name", Attr.Symbol sym_name) ]
    ty

let is_load op = String.equal (Op.name op) "memref.load"
let is_store op = String.equal (Op.name op) "memref.store"

let store_parts op =
  match Op.operands op with
  | value :: mr :: indices when is_store op -> Some (value, mr, indices)
  | _ -> None

let load_parts op =
  match Op.operands op with
  | mr :: indices when is_load op -> Some (mr, indices)
  | _ -> None

let register () =
  let open Dialect in
  let verify_alloc op =
    let* () = expect_results op 1 in
    match Value.ty (Op.result op 0) with
    | Types.Memref mi ->
      let dynamic =
        List.length (List.filter (fun d -> d = Types.Dynamic) mi.shape)
      in
      check
        (List.length (Op.operands op) = dynamic)
        "memref.alloc: operand count must match dynamic dimensions"
    | _ -> Error "memref.alloc result must be a memref"
  in
  Dialect.register "memref.alloc" ~summary:"heap allocation" ~verify:verify_alloc;
  Dialect.register "memref.alloca" ~summary:"stack allocation" ~verify:verify_alloc;
  Dialect.register "memref.dealloc" ~verify:(fun op -> expect_operands op 1);
  Dialect.register "memref.load" ~summary:"indexed read" ~verify:(fun op ->
      let* () = expect_results op 1 in
      match Op.operands op with
      | mr :: indices -> (
        match Value.ty mr with
        | Types.Memref mi ->
          check
            (List.length indices = Types.memref_rank mi)
            "memref.load: index count must equal rank"
        | _ -> Error "memref.load: first operand must be a memref")
      | [] -> Error "memref.load: missing memref operand");
  Dialect.register "memref.store" ~summary:"indexed write" ~verify:(fun op ->
      let* () = expect_results op 0 in
      match Op.operands op with
      | _value :: mr :: indices -> (
        match Value.ty mr with
        | Types.Memref mi ->
          check
            (List.length indices = Types.memref_rank mi)
            "memref.store: index count must equal rank"
        | _ -> Error "memref.store: second operand must be a memref")
      | _ -> Error "memref.store: needs value and memref operands");
  Dialect.register "memref.dim" ~verify:(fun op ->
      let* () = expect_operands op 2 in
      expect_results op 1);
  Dialect.register "memref.copy" ~verify:(fun op -> expect_operands op 2);
  Dialect.register "memref.cast" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_results op 1);
  Dialect.register "memref.dma_start" ~summary:"asynchronous host/device copy"
    ~verify:(fun op ->
      let* () = expect_operands op 2 in
      expect_attr op "tag");
  Dialect.register "memref.dma_wait" ~summary:"wait for a DMA transfer"
    ~verify:(fun op -> expect_attr op "tag");
  Dialect.register "memref.global";
  Dialect.register "memref.get_global" ~verify:(fun op ->
      let* () = expect_results op 1 in
      expect_attr op "name")
