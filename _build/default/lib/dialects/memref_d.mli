(** memref dialect: allocation, access and host/device DMA transfers. *)

open Ftn_ir

val alloc : Builder.t -> ?dynamic_sizes:Value.t list -> Types.t -> Op.t
val alloca : Builder.t -> ?dynamic_sizes:Value.t list -> Types.t -> Op.t
val dealloc : Value.t -> Op.t

val elt_type : Value.t -> Types.t
(** Element type of a memref-typed value; raises otherwise. *)

val load : Builder.t -> Value.t -> Value.t list -> Op.t
val store : Value.t -> Value.t -> Value.t list -> Op.t
(** [store value memref indices]. *)

val dim : Builder.t -> Value.t -> Value.t -> Op.t
val copy : src:Value.t -> dst:Value.t -> Op.t
val cast : Builder.t -> Value.t -> Types.t -> Op.t

val dma_start : ?tag:int -> src:Value.t -> dst:Value.t -> unit -> Op.t
(** Asynchronous host/device copy, as used by the data-movement lowering. *)

val dma_wait : ?tag:int -> unit -> Op.t

val global : sym_name:string -> ty:Types.t -> ?init:Attr.t -> unit -> Op.t
val get_global : Builder.t -> sym_name:string -> Types.t -> Op.t

val is_load : Op.t -> bool
val is_store : Op.t -> bool
val store_parts : Op.t -> (Value.t * Value.t * Value.t list) option
val load_parts : Op.t -> (Value.t * Value.t list) option
val register : unit -> unit
