(* omp dialect: the subset of OpenMP operations the paper's flow consumes —
   target offload with explicit data-mapping information, and loop
   worksharing with simd/reduction clauses. *)

open Ftn_ir

type map_type =
  | To
  | From
  | Tofrom
  | Alloc
  | Release
  | Delete

let string_of_map_type = function
  | To -> "to"
  | From -> "from"
  | Tofrom -> "tofrom"
  | Alloc -> "alloc"
  | Release -> "release"
  | Delete -> "delete"

let map_type_of_string = function
  | "to" -> Some To
  | "from" -> Some From
  | "tofrom" -> Some Tofrom
  | "alloc" -> Some Alloc
  | "release" -> Some Release
  | "delete" -> Some Delete
  | _ -> None

(* omp.bounds_info: loop/array section bounds attached to a mapping.
   Operands: lower, upper (inclusive), both index-typed. *)
let bounds_info b ~lower ~upper =
  Builder.op1 b "omp.bounds_info" ~operands:[ lower; upper ] Types.I64

(* omp.map_info: declares how one variable is mapped onto the device.
   The result is the device-side view of the variable. *)
let map_info b ~var ~var_name ~map_type ?(implicit = false) ?(bounds = []) ()
    =
  Builder.op1 b "omp.map_info"
    ~operands:(var :: bounds)
    ~attrs:
      [
        ("var_name", Attr.String var_name);
        ("map_type", Attr.String (string_of_map_type map_type));
        ("implicit", Attr.Bool implicit);
      ]
    (Value.ty var)

let is_map_info op = String.equal (Op.name op) "omp.map_info"

type map_parts = {
  var : Value.t;
  bounds : Value.t list;
  var_name : string;
  map_type : map_type;
  implicit : bool;
  result : Value.t;
}

let map_parts op =
  if not (is_map_info op) then None
  else
    match (Op.operands op, Op.results op) with
    | var :: bounds, [ result ] ->
      let var_name = Option.value ~default:"" (Op.string_attr op "var_name") in
      let map_type =
        Option.bind (Op.string_attr op "map_type") map_type_of_string
        |> Option.value ~default:Tofrom
      in
      let implicit = Option.value ~default:false (Op.bool_attr op "implicit") in
      Some { var; bounds; var_name; map_type; implicit; result }
    | _ -> None

(* omp.target: offloaded region. Operands are omp.map_info results; the
   entry block re-binds them as arguments (the device-side values). *)
let target b ~map_operands make_body =
  let args = List.map (fun v -> Builder.fresh b (Value.ty v)) map_operands in
  Op.make "omp.target" ~operands:map_operands
    ~regions:[ Op.region ~args (make_body args) ]

let is_target op = String.equal (Op.name op) "omp.target"

(* omp.target_data: structured data region. *)
let target_data ~map_operands body =
  Op.make "omp.target_data" ~operands:map_operands
    ~regions:[ Op.region body ]

let target_enter_data ~map_operands =
  Op.make "omp.target_enter_data" ~operands:map_operands

let target_exit_data ~map_operands =
  Op.make "omp.target_exit_data" ~operands:map_operands

let target_update ~motion ~map_operands =
  Op.make "omp.target_update" ~operands:map_operands
    ~attrs:[ ("motion", Attr.String motion) ]

let is_target_data op = String.equal (Op.name op) "omp.target_data"

(* Reduction clause: kind plus the memref<1xT> accumulator it reduces
   into. The accumulator is passed as a trailing operand. *)
type reduction_kind = Red_add | Red_mul | Red_max | Red_min

let string_of_reduction_kind = function
  | Red_add -> "add"
  | Red_mul -> "mul"
  | Red_max -> "max"
  | Red_min -> "min"

let reduction_kind_of_string = function
  | "add" -> Some Red_add
  | "mul" -> Some Red_mul
  | "max" -> Some Red_max
  | "min" -> Some Red_min
  | _ -> None

(* omp.parallel_do: worksharing loop. Operands: per collapsed dimension a
   (lb, ub, step) triple (index), then reduction accumulators. The region
   block takes one induction variable per collapsed dimension. Bounds
   follow Fortran do-loop semantics: ub is inclusive. *)
let parallel_do b ~lbs ~ubs ~steps ?(simd = false) ?simdlen
    ?(reductions = []) make_body =
  let n = List.length lbs in
  if List.length ubs <> n || List.length steps <> n then
    invalid_arg "Omp.parallel_do: bounds rank mismatch";
  let ivs = List.init n (fun _ -> Builder.fresh b Types.Index) in
  let bound_operands =
    List.concat (List.map2 (fun (lb, ub) step -> [ lb; ub; step ])
                   (List.combine lbs ubs) steps)
  in
  let red_operands = List.map snd reductions in
  let attrs =
    [ ("collapse", Attr.i32 n); ("simd", Attr.Bool simd) ]
    @ (match simdlen with Some k -> [ ("simdlen", Attr.i32 k) ] | None -> [])
    @
    match reductions with
    | [] -> []
    | rs ->
      [
        ( "reductions",
          Attr.Array
            (List.map
               (fun (kind, _) -> Attr.String (string_of_reduction_kind kind))
               rs) );
      ]
  in
  Op.make "omp.parallel_do"
    ~operands:(bound_operands @ red_operands)
    ~attrs
    ~regions:[ Op.region ~args:ivs (make_body ivs) ]

let is_parallel_do op = String.equal (Op.name op) "omp.parallel_do"

type loop_parts = {
  lbs : Value.t list;
  ubs : Value.t list;
  steps : Value.t list;
  reduction_accs : (reduction_kind * Value.t) list;
  simd : bool;
  simdlen : int option;
  ivs : Value.t list;
  loop_body : Op.t list;
}

let loop_parts op =
  if not (is_parallel_do op) then None
  else
    let collapse = Option.value ~default:1 (Op.int_attr op "collapse") in
    let operands = Op.operands op in
    if List.length operands < 3 * collapse then None
    else
      let rec split_bounds i ops (lbs, ubs, steps) =
        if i = collapse then (List.rev lbs, List.rev ubs, List.rev steps, ops)
        else
          match ops with
          | lb :: ub :: step :: rest ->
            split_bounds (i + 1) rest (lb :: lbs, ub :: ubs, step :: steps)
          | _ -> assert false
      in
      let lbs, ubs, steps, red_ops = split_bounds 0 operands ([], [], []) in
      let kinds =
        match Op.find_attr op "reductions" with
        | Some (Attr.Array ks) ->
          List.filter_map
            (fun a ->
              Option.bind (Attr.as_string a) reduction_kind_of_string)
            ks
        | _ -> []
      in
      if List.length kinds <> List.length red_ops then None
      else
        let blk = Op.region_block op 0 in
        Some
          {
            lbs;
            ubs;
            steps;
            reduction_accs = List.combine kinds red_ops;
            simd = Option.value ~default:false (Op.bool_attr op "simd");
            simdlen = Op.int_attr op "simdlen";
            ivs = blk.Op.args;
            loop_body = blk.Op.body;
          }

let yield ?(operands = []) () = Op.make "omp.yield" ~operands
let terminator () = Op.make "omp.terminator"

let register () =
  let open Dialect in
  Dialect.register "omp.bounds_info" ~summary:"array section bounds"
    ~verify:(fun op ->
      let* () = expect_operands op 2 in
      expect_results op 1);
  Dialect.register "omp.map_info" ~summary:"device data mapping"
    ~verify:(fun op ->
      let* () = expect_results op 1 in
      let* () = expect_attr op "map_type" in
      let* () = expect_attr op "var_name" in
      check
        (List.length (Op.operands op) >= 1)
        "omp.map_info needs the mapped variable");
  Dialect.register "omp.target" ~summary:"offloaded region" ~verify:(fun op ->
      let* () = expect_regions op 1 in
      let blk = Op.region_block op 0 in
      check
        (List.length blk.Op.args = List.length (Op.operands op))
        "omp.target block args must match map operands");
  Dialect.register "omp.target_data" ~summary:"structured data region"
    ~verify:(fun op -> expect_regions op 1);
  Dialect.register "omp.target_enter_data";
  Dialect.register "omp.target_exit_data";
  Dialect.register "omp.target_update" ~verify:(fun op ->
      expect_attr op "motion");
  Dialect.register "omp.parallel_do" ~summary:"worksharing loop"
    ~verify:(fun op ->
      let* () = expect_regions op 1 in
      match loop_parts op with
      | Some parts ->
        check
          (List.length parts.ivs
          = Option.value ~default:1 (Op.int_attr op "collapse"))
          "omp.parallel_do: induction variables must match collapse"
      | None -> Error "omp.parallel_do: malformed bounds/reductions");
  Dialect.register "omp.yield";
  Dialect.register "omp.terminator"
