(** omp dialect: the OpenMP subset the paper's flow consumes — target
    offload with explicit data-mapping information, and worksharing loops
    with simd/reduction clauses. *)

open Ftn_ir

type map_type =
  | To
  | From
  | Tofrom
  | Alloc
  | Release
  | Delete

val string_of_map_type : map_type -> string
val map_type_of_string : string -> map_type option

val bounds_info : Builder.t -> lower:Value.t -> upper:Value.t -> Op.t
(** Array-section bounds attached to a mapping (inclusive upper bound). *)

val map_info :
  Builder.t ->
  var:Value.t ->
  var_name:string ->
  map_type:map_type ->
  ?implicit:bool ->
  ?bounds:Value.t list ->
  unit ->
  Op.t
(** Declares how one variable maps onto the device; the result is the
    device-side view. *)

val is_map_info : Op.t -> bool

type map_parts = {
  var : Value.t;
  bounds : Value.t list;
  var_name : string;
  map_type : map_type;
  implicit : bool;
  result : Value.t;
}

val map_parts : Op.t -> map_parts option

val target :
  Builder.t -> map_operands:Value.t list -> (Value.t list -> Op.t list) -> Op.t
(** Offloaded region; the entry block re-binds the mapped values as
    arguments (the device-side values). *)

val is_target : Op.t -> bool
val target_data : map_operands:Value.t list -> Op.t list -> Op.t
val target_enter_data : map_operands:Value.t list -> Op.t
val target_exit_data : map_operands:Value.t list -> Op.t
val target_update : motion:string -> map_operands:Value.t list -> Op.t
val is_target_data : Op.t -> bool

type reduction_kind = Red_add | Red_mul | Red_max | Red_min

val string_of_reduction_kind : reduction_kind -> string
val reduction_kind_of_string : string -> reduction_kind option

val parallel_do :
  Builder.t ->
  lbs:Value.t list ->
  ubs:Value.t list ->
  steps:Value.t list ->
  ?simd:bool ->
  ?simdlen:int ->
  ?reductions:(reduction_kind * Value.t) list ->
  (Value.t list -> Op.t list) ->
  Op.t
(** Worksharing loop with Fortran do-loop semantics (inclusive upper
    bound); one (lb, ub, step) triple per collapsed dimension. Reduction
    accumulators are rank-0 memrefs passed as trailing operands. *)

val is_parallel_do : Op.t -> bool

type loop_parts = {
  lbs : Value.t list;
  ubs : Value.t list;
  steps : Value.t list;
  reduction_accs : (reduction_kind * Value.t) list;
  simd : bool;
  simdlen : int option;
  ivs : Value.t list;
  loop_body : Op.t list;
}

val loop_parts : Op.t -> loop_parts option
val yield : ?operands:Value.t list -> unit -> Op.t
val terminator : unit -> Op.t
val register : unit -> unit
