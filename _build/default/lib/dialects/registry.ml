(* One-shot registration of every dialect in this library. Idempotent. *)

let registered = ref false

let register_all () =
  if not !registered then begin
    registered := true;
    Builtin.register ();
    Arith.register ();
    Math_d.register ();
    Scf.register ();
    Memref_d.register ();
    Func_d.register ();
    Omp.register ();
    Fir.register ();
    Device.register ();
    Hls.register ();
    Llvm_d.register ();
    Acc.register ()
  end
