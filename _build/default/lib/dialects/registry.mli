(** One-shot registration of every dialect in this library (idempotent).
    Call before verifying or running pipelines. *)

val register_all : unit -> unit
