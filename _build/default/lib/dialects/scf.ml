(* scf dialect: structured control flow (for / if / while + yield). *)

open Ftn_ir

let yield ?(operands = []) () = Op.make "scf.yield" ~operands

(* scf.for: operands are lb, ub, step followed by initial values of the
   iteration arguments. The region's single block takes the induction
   variable then the iter args; results carry the final iter args. *)
let for_ b ~lb ~ub ~step ?(iter_args = []) make_body =
  let iv = Builder.fresh b Types.Index in
  let region_args =
    iv :: List.map (fun v -> Builder.fresh b (Value.ty v)) iter_args
  in
  let body =
    match region_args with
    | iv :: rest -> make_body iv rest
    | [] -> assert false
  in
  let results = List.map (fun v -> Builder.fresh b (Value.ty v)) iter_args in
  Op.make "scf.for"
    ~operands:(lb :: ub :: step :: iter_args)
    ~results
    ~regions:[ Op.region ~args:region_args body ]

let is_for op = String.equal (Op.name op) "scf.for"

type for_parts = {
  lb : Value.t;
  ub : Value.t;
  step : Value.t;
  iter_inits : Value.t list;
  induction : Value.t;
  iter_args : Value.t list;
  body : Op.t list;
}

let for_parts op =
  if not (is_for op) then None
  else
    match (Op.operands op, Op.region_block op 0) with
    | lb :: ub :: step :: iter_inits, { Op.args = induction :: iter_args; body; _ } ->
      Some { lb; ub; step; iter_inits; induction; iter_args; body }
    | _ -> None

(* scf.if: operand is the condition; region 0 is then, region 1 is else. *)
let if_ b ~cond ?(result_tys = []) ~then_ops ?(else_ops = []) () =
  let results = List.map (Builder.fresh b) result_tys in
  let regions =
    if else_ops = [] && result_tys = [] then [ Op.region then_ops ]
    else [ Op.region then_ops; Op.region else_ops ]
  in
  Op.make "scf.if" ~operands:[ cond ] ~results ~regions

let is_if op = String.equal (Op.name op) "scf.if"

let if_then_ops op = Op.region_body op 0

let if_else_ops op =
  if List.length (Op.regions op) > 1 then Op.region_body op 1 else []

(* scf.while: region 0 computes the condition and forwards values through
   scf.condition; region 1 is the loop body ending in scf.yield. *)
let while_ b ~inits ~make_before ~make_after =
  let tys = List.map Value.ty inits in
  let before_args = List.map (Builder.fresh b) tys in
  let after_args = List.map (Builder.fresh b) tys in
  let results = List.map (Builder.fresh b) tys in
  Op.make "scf.while" ~operands:inits ~results
    ~regions:
      [
        Op.region ~args:before_args (make_before before_args);
        Op.region ~args:after_args (make_after after_args);
      ]

let condition ~cond ~operands = Op.make "scf.condition" ~operands:(cond :: operands)

let is_while op = String.equal (Op.name op) "scf.while"
let is_yield op = String.equal (Op.name op) "scf.yield"

let register () =
  let open Dialect in
  Dialect.register "scf.for" ~summary:"counted loop" ~verify:(fun op ->
      let* () = expect_regions op 1 in
      let* () =
        check
          (List.length (Op.operands op) >= 3)
          "scf.for needs lb, ub, step"
      in
      let iter_count = List.length (Op.operands op) - 3 in
      let* () = expect_results op iter_count in
      let blk = Op.region_block op 0 in
      check
        (List.length blk.Op.args = iter_count + 1)
        "scf.for region must take induction variable plus iter args");
  Dialect.register "scf.if" ~summary:"conditional" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      let* () = expect_operand_type op 0 Types.I1 in
      check
        (List.length (Op.regions op) >= 1 && List.length (Op.regions op) <= 2)
        "scf.if takes one or two regions");
  Dialect.register "scf.while" ~summary:"general loop" ~verify:(fun op ->
      expect_regions op 2);
  Dialect.register "scf.yield" ~summary:"region terminator";
  Dialect.register "scf.condition" ~summary:"while condition terminator"
    ~verify:(fun op ->
      check
        (List.length (Op.operands op) >= 1)
        "scf.condition needs a condition operand")
