(** scf dialect: structured control flow (for / if / while + yield). *)

open Ftn_ir

val yield : ?operands:Value.t list -> unit -> Op.t

val for_ :
  Builder.t ->
  lb:Value.t ->
  ub:Value.t ->
  step:Value.t ->
  ?iter_args:Value.t list ->
  (Value.t -> Value.t list -> Op.t list) ->
  Op.t
(** Counted loop with exclusive upper bound. The body builder receives the
    induction variable and the region's iteration arguments; with
    [iter_args] the loop carries values and returns their final state. *)

val is_for : Op.t -> bool

type for_parts = {
  lb : Value.t;
  ub : Value.t;
  step : Value.t;
  iter_inits : Value.t list;
  induction : Value.t;
  iter_args : Value.t list;
  body : Op.t list;
}

val for_parts : Op.t -> for_parts option

val if_ :
  Builder.t ->
  cond:Value.t ->
  ?result_tys:Types.t list ->
  then_ops:Op.t list ->
  ?else_ops:Op.t list ->
  unit ->
  Op.t
(** Conditional; the else region is omitted when empty and resultless. *)

val is_if : Op.t -> bool
val if_then_ops : Op.t -> Op.t list
val if_else_ops : Op.t -> Op.t list

val while_ :
  Builder.t ->
  inits:Value.t list ->
  make_before:(Value.t list -> Op.t list) ->
  make_after:(Value.t list -> Op.t list) ->
  Op.t
(** General loop: the before region ends in {!condition}, the after region
    in {!yield}. *)

val condition : cond:Value.t -> operands:Value.t list -> Op.t
val is_while : Op.t -> bool
val is_yield : Op.t -> bool
val register : unit -> unit
