lib/fortran/acc_parser.ml: Ast List Omp_parser String
