lib/fortran/acc_parser.mli: Ast
