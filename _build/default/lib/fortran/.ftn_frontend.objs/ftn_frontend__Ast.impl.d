lib/fortran/ast.ml: List Option String
