lib/fortran/fir_to_core.ml: Arith Builder Fmt Ftn_dialects Ftn_ir Hashtbl List Op Pass Types Value
