lib/fortran/fir_to_core.mli: Ftn_ir
