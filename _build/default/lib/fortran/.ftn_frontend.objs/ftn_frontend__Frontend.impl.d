lib/fortran/frontend.ml: Fir_to_core Fmt Ftn_dialects Ftn_ir Lower_fir Omp_parser Sema Src_lexer Src_parser
