lib/fortran/frontend.mli: Ast Ftn_ir Sema
