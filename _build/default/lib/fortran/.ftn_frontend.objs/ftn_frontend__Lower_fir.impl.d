lib/fortran/lower_fir.ml: Acc Arith Ast Attr Builder Fir Ftn_dialects Ftn_ir Func_d List Math_d Memref_d Omp Op Scf Sema String Types Value
