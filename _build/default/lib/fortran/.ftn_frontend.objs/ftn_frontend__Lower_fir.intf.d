lib/fortran/lower_fir.mli: Ftn_ir Sema
