lib/fortran/omp_parser.ml: Ast Fmt List String
