lib/fortran/omp_parser.mli: Ast
