lib/fortran/sema.ml: Ast Fmt Hashtbl List Map Option String
