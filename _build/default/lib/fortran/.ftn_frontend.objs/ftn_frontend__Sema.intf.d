lib/fortran/sema.mli: Ast Map
