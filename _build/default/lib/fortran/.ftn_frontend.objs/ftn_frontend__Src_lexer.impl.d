lib/fortran/src_lexer.ml: Buffer Char Fmt List String
