lib/fortran/src_lexer.mli:
