lib/fortran/src_parser.ml: Acc_parser Array Ast Fmt List Omp_parser Src_lexer String
