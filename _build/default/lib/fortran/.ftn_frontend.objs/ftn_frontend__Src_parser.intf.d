lib/fortran/src_parser.mli: Ast
