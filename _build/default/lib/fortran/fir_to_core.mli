(** FIR -> core dialect lowering, mirroring the flow of the paper's
    reference [3]: fir.alloca/load/store become memref ops,
    fir.do_loop/if become scf ops (converting Fortran's inclusive upper
    bound), fir.declare folds away and fir.convert expands to arith casts.
    omp and acc operations pass through untouched. *)

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
