(* Frontend driver: Fortran source text -> FIR+omp module -> core-dialect
   module. Collects the stage results so tools can inspect each level, as
   mlir-opt would between passes. *)

exception Frontend_error of string

let () = Ftn_dialects.Registry.register_all ()

let wrap_errors f =
  try f () with
  | Src_lexer.Lex_error (msg, line) ->
    raise (Frontend_error (Fmt.str "lexical error at line %d: %s" line msg))
  | Src_parser.Parse_error (msg, line) ->
    raise (Frontend_error (Fmt.str "syntax error at line %d: %s" line msg))
  | Omp_parser.Omp_error msg ->
    raise (Frontend_error (Fmt.str "OpenMP directive error: %s" msg))
  | Sema.Sema_error (msg, line) ->
    raise (Frontend_error (Fmt.str "semantic error at line %d: %s" line msg))
  | Lower_fir.Lower_error (msg, line) ->
    raise (Frontend_error (Fmt.str "lowering error at line %d: %s" line msg))

let parse source = wrap_errors (fun () -> Src_parser.parse source)

let check source = wrap_errors (fun () -> Sema.check (Src_parser.parse source))

(* Fortran source -> FIR + omp dialect module (Flang's output level). *)
let to_fir source = wrap_errors (fun () -> Lower_fir.lower (check source))

(* Fortran source -> core dialects + omp (the level the paper's device
   passes consume, after the lowering of [3]). *)
let to_core source = Fir_to_core.run (to_fir source)

let to_core_verified source =
  let m = to_core source in
  Ftn_ir.Verifier.verify_exn m;
  m
