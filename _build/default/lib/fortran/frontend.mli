(** Frontend driver: Fortran source text to IR, mirroring Flang's stages.
    All frontend exceptions are normalised into {!Frontend_error} with
    line information in the message. *)

exception Frontend_error of string

val parse : string -> Ast.program
val check : string -> Sema.checked

val to_fir : string -> Ftn_ir.Op.t
(** Source -> FIR + omp dialect module (Flang's output level). *)

val to_core : string -> Ftn_ir.Op.t
(** Source -> core dialects + omp (the level the device passes consume,
    after the lowering of [3]). *)

val to_core_verified : string -> Ftn_ir.Op.t
(** [to_core] followed by IR verification. *)
