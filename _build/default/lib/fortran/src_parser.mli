(** Recursive-descent parser for the Fortran subset. Directive tokens from
    the lexer are parsed by {!Omp_parser} / {!Acc_parser}; this module
    pairs begin/end directives with the statements they enclose. *)

exception Parse_error of string * int
(** Message and source line. *)

val parse : string -> Ast.program
