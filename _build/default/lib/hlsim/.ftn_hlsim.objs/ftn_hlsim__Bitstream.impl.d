lib/hlsim/bitstream.ml: Ftn_ir List Resources Schedule String
