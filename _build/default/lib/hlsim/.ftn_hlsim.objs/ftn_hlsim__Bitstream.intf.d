lib/hlsim/bitstream.mli: Ftn_ir Resources Schedule
