lib/hlsim/bitstream_io.ml: Bitstream Buffer Fmt Fpga_spec Ftn_ir List Option Resources String Synth
