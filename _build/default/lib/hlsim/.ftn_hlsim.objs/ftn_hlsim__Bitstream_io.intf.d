lib/hlsim/bitstream_io.mli: Bitstream Fpga_spec
