lib/hlsim/dse.ml: Float Fmt Fpga_spec List Resources Schedule
