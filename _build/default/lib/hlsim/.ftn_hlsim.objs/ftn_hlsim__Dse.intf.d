lib/hlsim/dse.mli: Format Fpga_spec Resources Schedule
