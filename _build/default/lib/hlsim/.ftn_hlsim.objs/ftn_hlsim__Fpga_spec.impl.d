lib/hlsim/fpga_spec.ml:
