lib/hlsim/fpga_spec.mli:
