lib/hlsim/power.ml: Float Fpga_spec Option Resources
