lib/hlsim/power.mli: Fpga_spec Resources
