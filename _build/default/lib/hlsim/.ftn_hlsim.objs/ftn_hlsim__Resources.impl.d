lib/hlsim/resources.ml: Float Fmt Fpga_spec List Schedule
