lib/hlsim/resources.mli: Format Fpga_spec Schedule
