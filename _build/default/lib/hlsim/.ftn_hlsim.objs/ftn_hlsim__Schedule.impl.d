lib/hlsim/schedule.ml: Arith Fmt Fpga_spec Ftn_dialects Ftn_ir Func_d Hashtbl Hls List Op Option Scf String Types Value
