lib/hlsim/schedule.mli: Format Fpga_spec Ftn_ir
