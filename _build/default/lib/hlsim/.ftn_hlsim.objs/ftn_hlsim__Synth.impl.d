lib/hlsim/synth.ml: Bitstream Fmt Fpga_spec Ftn_dialects Ftn_ir Func_d List Op Resources Schedule
