lib/hlsim/synth.mli: Bitstream Fpga_spec Ftn_ir Resources
