lib/hlsim/timing.ml: Float Fpga_spec Hashtbl List Option Schedule
