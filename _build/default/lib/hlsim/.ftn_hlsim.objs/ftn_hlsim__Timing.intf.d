lib/hlsim/timing.mli: Fpga_spec Hashtbl Schedule
