(* Bitstream (de)serialisation: the simulated xclbin. The container is a
   small sectioned text format holding the build metadata and the device
   module's kernels as printed IR; loading re-parses the IR and re-runs
   scheduling and resource estimation (both deterministic), so a loaded
   bitstream is indistinguishable from a freshly synthesised one. *)

exception Format_error of string

let magic = "FTN-XCLBIN v1"

let save (bs : Bitstream.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "name: %s" bs.Bitstream.xclbin_name;
  line "device: %s" bs.Bitstream.device_name;
  line "frontend: %s"
    (match bs.Bitstream.frontend with
    | Resources.Clang_hls -> "clang"
    | Resources.Mlir_flow -> "mlir");
  List.iter (fun l -> line "log: %s" l) bs.Bitstream.build_log;
  line "=== MODULE ===";
  let device_module =
    Ftn_ir.Op.module_op
      ~attrs:[ ("target", Ftn_ir.Attr.String "fpga") ]
      (List.map (fun k -> k.Bitstream.kd_function) bs.Bitstream.kernels)
  in
  Buffer.add_string buf (Ftn_ir.Printer.to_string device_module);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let save_file bs path =
  let oc = open_out_bin path in
  output_string oc (save bs);
  close_out oc

let load ?(spec = Fpga_spec.u280) text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _ when String.trim first = magic -> ()
  | _ -> raise (Format_error "not a simulated xclbin (bad magic)"));
  let prefixed p l =
    let l = String.trim l in
    if String.length l > String.length p && String.sub l 0 (String.length p) = p
    then Some (String.sub l (String.length p) (String.length l - String.length p))
    else None
  in
  let field p =
    List.find_map (fun l -> prefixed p l) lines
  in
  let name = Option.value ~default:"kernel.xclbin" (field "name: ") in
  let frontend =
    match field "frontend: " with
    | Some "clang" -> Resources.Clang_hls
    | _ -> Resources.Mlir_flow
  in
  let module_text =
    match String.index_opt text '=' with
    | Some _ -> (
      let marker = "=== MODULE ===" in
      let rec find i =
        if i + String.length marker > String.length text then
          raise (Format_error "missing module section")
        else if String.sub text i (String.length marker) = marker then
          String.sub text
            (i + String.length marker)
            (String.length text - i - String.length marker)
        else find (i + 1)
      in
      find 0)
    | None -> raise (Format_error "missing module section")
  in
  let device_module =
    try Ftn_ir.Ir_parser.parse_module module_text
    with Ftn_ir.Ir_parser.Parse_error (msg, pos) ->
      raise (Format_error (Fmt.str "bad kernel IR at offset %d: %s" pos msg))
  in
  Synth.synthesise ~frontend ~spec ~xclbin_name:name device_module

let load_file ?spec path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  load ?spec text
