(** Bitstream (de)serialisation — the simulated xclbin container. Saving
    writes build metadata plus the kernels as printed IR; loading re-parses
    and re-synthesises (deterministically), so a loaded bitstream behaves
    exactly like a fresh one. *)

exception Format_error of string

val magic : string
val save : Bitstream.t -> string
val save_file : Bitstream.t -> string -> unit
val load : ?spec:Fpga_spec.t -> string -> Bitstream.t
val load_file : ?spec:Fpga_spec.t -> string -> Bitstream.t
