(* Device description and model constants for the simulated AMD Xilinx
   Alveo U280, standing in for Vitis HLS synthesis and the real card.

   The structural numbers (LUT/BRAM/DSP totals, HBM banks) are the public
   U280 specifications. The behavioural constants (AXI sharing cost,
   unresolved read-modify-write chain latency, transfer overheads, power
   coefficients) are calibrated once against the shapes reported in the
   paper's evaluation and documented in EXPERIMENTS.md; they are honest
   free parameters of an analytic model, not per-benchmark fudge factors:
   every kernel is costed by the same rules. *)

type t = {
  name : string;
  (* --- device resources --- *)
  total_luts : int;
  total_ffs : int;
  total_brams : int;  (** BRAM36 blocks. *)
  total_urams : int;
  total_dsps : int;
  hbm_banks : int;
  ddr_banks : int;
  clock_mhz : float;  (** Kernel clock. *)
  (* --- static shell region (platform logic, HBM controllers, PCIe) --- *)
  shell_luts : int;
  shell_ffs : int;
  shell_brams : int;
  shell_dsps : int;
  (* --- per-construct resource costs --- *)
  lut_m_axi_port : int;
  lut_s_axilite_port : int;
  lut_control_base : int;  (** FSM + loop control per kernel. *)
  lut_control_per_unroll : int;
  unroll_share_factor : float;
      (** Marginal LUT cost of each replicated datapath copy beyond the
          first, as a fraction of the first copy (unrolled replicas share
          control, operand muxing and much of the routing). *)
  lut_fmul_f32 : int;  (** LUT-mapped f32 multiplier. *)
  lut_fadd_f32 : int;
  lut_fmul_f64 : int;
  lut_fadd_f64 : int;
  lut_int_op : int;
  lut_fused_mac : int;  (** Glue when the MAC lands in DSPs. *)
  dsp_fused_mac : int;  (** DSP slices per recognised MAC. *)
  bram_bytes : int;  (** Usable bytes per BRAM36. *)
  (* --- timing model --- *)
  axi_share_cycles : int;
      (** Amortised cycles per m_axi beat when accesses on a port
          serialise under pipelining. *)
  burst_inference : bool;
      (** When true, models the memory optimisation the paper leaves to
          future work: contiguous accesses are coalesced into AXI bursts
          (cheap beats) and the read/write streams are disambiguated, so
          the RMW chain bound disappears. Off by default — neither flow in
          the paper achieves burst inference. *)
  burst_beat_cycles : int;  (** Amortised cycles per beat within a burst. *)
  rmw_chain_cycles : int;
      (** Initiation interval when Vitis cannot disambiguate a
          read-modify-write through the same port and serialises
          iterations on the full AXI round trip. *)
  pipeline_depth_cycles : int;  (** Fill/flush cost per loop entry. *)
  kernel_launch_overhead_s : float;
  buffer_alloc_overhead_s : float;  (** First allocation of a named buffer. *)
  dma_fixed_overhead_s : float;
  dma_bandwidth_bytes_per_s : float;
  (* --- power model --- *)
  static_power_w : float;  (** Shell + HBM idle draw. *)
  dynamic_power_full_w : float;  (** Added draw at full kernel activity. *)
  activity_tau_s : float;  (** Activity saturation time constant. *)
  cpu_static_power_w : float;
  cpu_active_power_w : float;
}

let u280 =
  {
    name = "AMD Xilinx Alveo U280";
    total_luts = 1_303_680;
    total_ffs = 2_607_360;
    total_brams = 2_016;
    total_urams = 960;
    total_dsps = 9_024;
    hbm_banks = 32;
    ddr_banks = 2;
    clock_mhz = 300.0;
    shell_luts = 97_791;
    shell_ffs = 141_000;
    shell_brams = 203;
    shell_dsps = 9;
    lut_m_axi_port = 3_650;
    lut_s_axilite_port = 420;
    lut_control_base = 760;
    lut_control_per_unroll = 11;
    unroll_share_factor = 0.15;
    lut_fmul_f32 = 450;
    lut_fadd_f32 = 247;
    lut_fmul_f64 = 1_040;
    lut_fadd_f64 = 620;
    lut_int_op = 8;
    lut_fused_mac = 40;
    dsp_fused_mac = 12;
    bram_bytes = 4_608;
    axi_share_cycles = 16;
    burst_inference = false;
    burst_beat_cycles = 2;
    rmw_chain_cycles = 183;
    pipeline_depth_cycles = 100;
    kernel_launch_overhead_s = 1.0e-6;
    buffer_alloc_overhead_s = 50.0e-6;
    dma_fixed_overhead_s = 0.3e-6;
    dma_bandwidth_bytes_per_s = 12.0e9;
    static_power_w = 20.9;
    dynamic_power_full_w = 4.3;
    activity_tau_s = 2.0e-3;
    cpu_static_power_w = 50.2;
    cpu_active_power_w = 4.9;
  }

let clock_period_s spec = 1.0 /. (spec.clock_mhz *. 1.0e6)

let cycles_to_seconds spec cycles = float_of_int cycles *. clock_period_s spec

let pct part total = 100.0 *. float_of_int part /. float_of_int total
