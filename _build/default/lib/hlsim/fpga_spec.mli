(** Device description and model constants for the simulated AMD Xilinx
    Alveo U280, standing in for Vitis HLS synthesis and the real card.

    Structural numbers (resource totals, HBM banks) are public U280
    specifications; behavioural constants (AXI sharing cost, RMW chain
    latency, transfer overheads, power coefficients) are calibrated once
    against the shapes in the paper's evaluation and documented in
    EXPERIMENTS.md. All kernels are costed by the same rules. *)

type t = {
  name : string;
  total_luts : int;
  total_ffs : int;
  total_brams : int;  (** BRAM36 blocks. *)
  total_urams : int;
  total_dsps : int;
  hbm_banks : int;
  ddr_banks : int;
  clock_mhz : float;  (** Kernel clock. *)
  shell_luts : int;  (** Static region: platform logic, HBM ctrl, PCIe. *)
  shell_ffs : int;
  shell_brams : int;
  shell_dsps : int;
  lut_m_axi_port : int;
  lut_s_axilite_port : int;
  lut_control_base : int;
  lut_control_per_unroll : int;
  unroll_share_factor : float;
      (** Marginal cost of each replicated datapath copy beyond the first,
          as a fraction of the first copy. *)
  lut_fmul_f32 : int;
  lut_fadd_f32 : int;
  lut_fmul_f64 : int;
  lut_fadd_f64 : int;
  lut_int_op : int;
  lut_fused_mac : int;  (** Glue LUTs when a MAC lands in DSPs. *)
  dsp_fused_mac : int;  (** DSP slices per recognised MAC. *)
  bram_bytes : int;
  axi_share_cycles : int;
      (** Amortised cycles per m_axi beat when a port serialises under
          pipelining. *)
  burst_inference : bool;
      (** Model the future-work memory optimisation: coalesced AXI bursts
          and read/write stream disambiguation (removes the RMW bound). *)
  burst_beat_cycles : int;
  rmw_chain_cycles : int;
      (** Initiation interval when HLS cannot disambiguate a
          read-modify-write through one port and serialises iterations. *)
  pipeline_depth_cycles : int;
  kernel_launch_overhead_s : float;
  buffer_alloc_overhead_s : float;
  dma_fixed_overhead_s : float;
  dma_bandwidth_bytes_per_s : float;
  static_power_w : float;
  dynamic_power_full_w : float;
  activity_tau_s : float;
  cpu_static_power_w : float;
  cpu_active_power_w : float;
}

val u280 : t
(** The calibrated U280 model used throughout the evaluation. *)

val clock_period_s : t -> float
val cycles_to_seconds : t -> int -> float

val pct : int -> int -> float
(** [pct part total] as a percentage. *)
