(* Power model. FPGA draw is a static shell/HBM floor plus a dynamic
   component scaled by the kernel duty cycle over the measurement window —
   the window includes bitstream programming and host setup
   (power_window_setup_s), so short-running problems leave the card mostly
   idle and draw near the floor, while long-running ones approach
   floor + full dynamic. This reproduces the growth across problem sizes in
   the paper's Tables 5 and 6 for both the single-launch SAXPY pattern and
   the many-small-launches SGESL pattern. The CPU single-core baseline is a
   package-power model roughly twice the FPGA draw. *)

let power_window_setup_s = 0.15

(* Fraction of the dynamic power drawn even while kernels are idle
   (clock trees, HBM refresh, AXI monitors keep toggling). *)
let idle_dynamic_fraction = 0.3

let duty ~kernel_time_s ~device_time_s =
  let total = Float.max device_time_s kernel_time_s +. power_window_setup_s in
  if total <= 0.0 then 0.0 else Float.min 1.0 (kernel_time_s /. total)

let activity ~kernel_time_s ~device_time_s =
  idle_dynamic_fraction
  +. ((1.0 -. idle_dynamic_fraction) *. duty ~kernel_time_s ~device_time_s)

(* Utilisation scaling: a kernel using more fabric toggles more of it. *)
let utilisation_factor (r : Resources.report) =
  0.85 +. (0.015 *. r.Resources.lut_pct)

let fpga_power_w spec (r : Resources.report) ~kernel_time_s ?device_time_s ()
    =
  let open Fpga_spec in
  let device_time_s = Option.value ~default:kernel_time_s device_time_s in
  spec.static_power_w
  +. (spec.dynamic_power_full_w
     *. activity ~kernel_time_s ~device_time_s
     *. utilisation_factor r)

let cpu_power_w spec ~kernel_time_s =
  let open Fpga_spec in
  ignore kernel_time_s;
  spec.cpu_static_power_w +. spec.cpu_active_power_w
