(** Power model: a static shell/HBM floor plus a dynamic component scaled
    by the kernel duty cycle over the measurement window (which includes
    bitstream programming and host setup). Reproduces the growth across
    problem sizes in the paper's Tables 5 and 6. *)

val power_window_setup_s : float
(** Setup portion of the power-measurement window (bitstream programming,
    host initialisation). *)

val idle_dynamic_fraction : float
(** Fraction of dynamic power drawn while kernels are idle. *)

val duty : kernel_time_s:float -> device_time_s:float -> float
val activity : kernel_time_s:float -> device_time_s:float -> float

val fpga_power_w :
  Fpga_spec.t ->
  Resources.report ->
  kernel_time_s:float ->
  ?device_time_s:float ->
  unit ->
  float
(** Modelled card draw in watts. [device_time_s] defaults to
    [kernel_time_s]. *)

val cpu_power_w : Fpga_spec.t -> kernel_time_s:float -> float
(** Single-core CPU package power baseline. *)
