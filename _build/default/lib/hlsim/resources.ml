(* Resource estimation: maps a kernel schedule onto LUT/FF/BRAM/DSP usage
   of the U280, including the shell's static region.

   The MAC-fusion rule reproduces the backend behaviour the paper observed
   (Section 4, Tables 3 and 4): the Vitis backend recognises the
   multiply-accumulate pattern only in IR shaped like its own Clang
   frontend's output, and only when the expression tree is not rewritten by
   unrolling — a recognised MAC maps onto DSP slices, an unrecognised one
   is built from LUTs. *)

type frontend =
  | Clang_hls  (** Hand-written Vitis HLS C, AMD's own frontend. *)
  | Mlir_flow  (** This paper's Fortran/MLIR flow. *)

let string_of_frontend = function
  | Clang_hls -> "Hand-written HLS"
  | Mlir_flow -> "Fortran OpenMP"

type usage = {
  luts : int;
  ffs : int;
  brams : int;
  dsps : int;
}

type report = {
  kernel : usage;  (** Kernel region only. *)
  total : usage;  (** Including the shell. *)
  lut_pct : float;
  bram_pct : float;
  dsp_pct : float;
  fused_macs : int;
  lut_macs : int;
}

let zero = { luts = 0; ffs = 0; brams = 0; dsps = 0 }

let add a b =
  {
    luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    brams = a.brams + b.brams;
    dsps = a.dsps + b.dsps;
  }

(* MAC fusion needs the Clang frontend and an un-rewritten (non-unrolled)
   expression tree. Returns (fused macs, lut macs) counted per iteration —
   unroll replication is costed with the sharing factor separately. *)
let loop_macs ~frontend (l : Schedule.loop_info) =
  match frontend with
  | Clang_hls when l.Schedule.unroll = 1 -> (l.Schedule.macs, 0)
  | Clang_hls | Mlir_flow -> (0, l.Schedule.macs)

(* Cost of [per_iter] copies of a construct replicated [unroll] times:
   the first copy is full price, replicas share logic. *)
let replicated_cost spec ~per_iter ~unroll ~unit_cost =
  let open Fpga_spec in
  let copies =
    1.0 +. (float_of_int (max 0 (unroll - 1)) *. spec.unroll_share_factor)
  in
  int_of_float
    (Float.round (float_of_int (per_iter * unit_cost) *. copies))

let f64_kernel _ks = false
(* The evaluation kernels are single precision; a full implementation
   would inspect element types per operation. Kept as a hook. *)

let estimate ?(frontend = Mlir_flow) spec (ks : Schedule.kernel_schedule) =
  let open Fpga_spec in
  let loops = Schedule.flatten_loops ks.Schedule.loops in
  let is_f64 = f64_kernel ks in
  let mac_lut_cost =
    if is_f64 then spec.lut_fmul_f64 + spec.lut_fadd_f64
    else spec.lut_fmul_f32 + spec.lut_fadd_f32
  in
  let fp_unit = if is_f64 then spec.lut_fadd_f64 else spec.lut_fadd_f32 in
  let fused_macs, lut_macs, datapath_luts, unroll_total =
    List.fold_left
      (fun (f, lm, luts, u) (l : Schedule.loop_info) ->
        let fused, unfused = loop_macs ~frontend l in
        let unroll = l.Schedule.unroll in
        let other_fp = max 0 (l.Schedule.fp_ops - (2 * l.Schedule.macs)) in
        let luts =
          luts
          + replicated_cost spec ~per_iter:unfused ~unroll
              ~unit_cost:mac_lut_cost
          + (fused * spec.lut_fused_mac)
          + replicated_cost spec ~per_iter:other_fp ~unroll ~unit_cost:fp_unit
          + replicated_cost spec ~per_iter:l.Schedule.int_ops ~unroll
              ~unit_cost:spec.lut_int_op
        in
        ( f + fused,
          lm + (unfused * unroll),
          luts,
          u + unroll ))
      (0, 0, 0, 0) loops
  in
  let control =
    spec.lut_control_base + (spec.lut_control_per_unroll * unroll_total)
  in
  let luts =
    (List.length ks.Schedule.m_axi_bundles * spec.lut_m_axi_port)
    + (ks.Schedule.s_axilite_args * spec.lut_s_axilite_port)
    + control + datapath_luts
  in
  let brams =
    (ks.Schedule.local_buffer_bytes + spec.bram_bytes - 1) / spec.bram_bytes
  in
  let dsps = fused_macs * spec.dsp_fused_mac in
  let kernel = { luts; ffs = luts * 3 / 2; brams; dsps } in
  let shell =
    {
      luts = spec.shell_luts;
      ffs = spec.shell_ffs;
      brams = spec.shell_brams;
      dsps = spec.shell_dsps;
    }
  in
  let total = add kernel shell in
  {
    kernel;
    total;
    lut_pct = pct total.luts spec.total_luts;
    bram_pct = pct total.brams spec.total_brams;
    dsp_pct = pct total.dsps spec.total_dsps;
    fused_macs;
    lut_macs;
  }

let pp fmt r =
  Fmt.pf fmt
    "LUT %.2f%% (%d)  BRAM %.2f%% (%d)  DSP %.2f%% (%d)  [MACs: %d dsp / %d lut]"
    r.lut_pct r.total.luts r.bram_pct r.total.brams r.dsp_pct r.total.dsps
    r.fused_macs r.lut_macs
