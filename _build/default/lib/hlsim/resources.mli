(** Resource estimation: maps a kernel schedule onto LUT/FF/BRAM/DSP usage
    of the U280 including the shell's static region.

    MAC-fusion rule (paper, Section 4): the Vitis backend recognises the
    multiply-accumulate pattern only in IR shaped like its own Clang
    frontend's output and only when the expression tree is not rewritten by
    unrolling; a recognised MAC maps onto DSP slices, an unrecognised one
    is built from LUTs — the source of the Table 4 divergence. *)

type frontend =
  | Clang_hls  (** Hand-written Vitis HLS C, AMD's own frontend. *)
  | Mlir_flow  (** The paper's Fortran/MLIR flow. *)

val string_of_frontend : frontend -> string

type usage = {
  luts : int;
  ffs : int;
  brams : int;
  dsps : int;
}

type report = {
  kernel : usage;  (** Kernel region only. *)
  total : usage;  (** Including the shell. *)
  lut_pct : float;
  bram_pct : float;
  dsp_pct : float;
  fused_macs : int;  (** MACs mapped onto DSP slices. *)
  lut_macs : int;  (** MACs built from LUTs (after unroll replication). *)
}

val zero : usage
val add : usage -> usage -> usage

val estimate :
  ?frontend:frontend -> Fpga_spec.t -> Schedule.kernel_schedule -> report
(** Estimate resources for one synthesised kernel ([frontend] defaults to
    [Mlir_flow]). *)

val pp : Format.formatter -> report -> unit
