(* HLS scheduling model: analyses a kernel function (hls-dialect level) and
   assigns each loop an initiation interval, pipeline depth and unroll
   factor following the simulator's cost rules:

   - A pipelined loop is bound by the busiest m_axi port: with unroll U and
     A accesses per original iteration on that port, the port serialises
     U*A beats at axi_share_cycles each.
   - A loop that reads and writes through the same m_axi port and is NOT
     unrolled is additionally bound by the unresolved read-modify-write
     dependence chain (rmw_chain_cycles): HLS cannot disambiguate the
     pointers and conservatively serialises iterations on the full AXI
     round trip. Unrolling exposes U independent chains that overlap, so
     the port bound takes over — this is why the paper's simd(10) SAXPY
     sustains ~32 cycles/element while the non-unrolled SGESL inner loop
     pays ~187 cycles/iteration.
   - Non-pipelined loops execute their body latency sequentially. *)

open Ftn_ir
open Ftn_dialects

type loop_info = {
  loop_key : int;  (** Induction variable id — stable across analysis/run. *)
  pipelined : bool;
  ii_directive : int;
  unroll : int;
  depth : int;
  port_accesses : (string * int * int) list;
      (** bundle, reads, writes per original iteration. *)
  rmw_port : bool;
  cycles_per_iteration : float;
  static_trip : int option;
  macs : int;  (** Multiply-accumulate pairs per original iteration. *)
  fp_ops : int;
  int_ops : int;
  nested : loop_info list;
}

type kernel_schedule = {
  fn_name : string;
  m_axi_bundles : string list;
  s_axilite_args : int;
  loops : loop_info list;
  local_buffer_bytes : int;
  toplevel_macs : int;
  dataflow : bool;
      (** hls.dataflow present: top-level stages overlap, so the kernel is
          bound by its slowest stage instead of the sum. *)
}

(* --- helpers --- *)

let defs_table fn =
  let t : (int, Op.t) Hashtbl.t = Hashtbl.create 64 in
  Op.walk
    (fun op -> List.iter (fun r -> Hashtbl.replace t (Value.id r) op) (Op.results op))
    fn;
  t

let const_int defs v =
  match Hashtbl.find_opt defs (Value.id v) with
  | Some op -> Arith.constant_int op
  | None -> None

(* bundle assignment: arg value id -> bundle name *)
let bundle_map fn =
  let t : (int, string) Hashtbl.t = Hashtbl.create 8 in
  Op.walk
    (fun op ->
      if Hls.is_interface op then
        match (Op.operands op, Hls.interface_bundle op) with
        | arg :: _, Some bundle when not (String.equal bundle "control") ->
          Hashtbl.replace t (Value.id arg) bundle
        | _ -> ())
    fn;
  t

let count_ops_in body pred =
  List.fold_left
    (fun acc op -> acc + Op.count pred op)
    0 body

(* MAC pairs: an addf/subf with a mulf-defined operand. *)
let count_macs defs body =
  count_ops_in body (fun op ->
      match Op.name op with
      | "arith.addf" | "arith.subf" ->
        List.exists
          (fun v ->
            match Hashtbl.find_opt defs (Value.id v) with
            | Some d -> String.equal (Op.name d) "arith.mulf"
            | None -> false)
          (Op.operands op)
      | _ -> false)

let is_float_op op =
  List.mem (Op.name op)
    [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf"; "arith.negf";
      "arith.maximumf"; "arith.minimumf"; "math.sqrt"; "math.exp";
      "math.log"; "math.sin"; "math.cos"; "math.tanh"; "math.absf";
      "math.powf" ]

let is_int_op op =
  List.mem (Op.name op)
    [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.divsi";
      "arith.remsi"; "arith.maxsi"; "arith.minsi"; "arith.andi";
      "arith.ori"; "arith.xori"; "arith.cmpi"; "arith.index_cast" ]

(* Direct ops of a body, not descending into nested scf.for. *)
let direct_ops body =
  let acc = ref [] in
  let rec go op =
    acc := op :: !acc;
    if not (Scf.is_for op) then
      List.iter
        (fun blocks ->
          List.iter (fun blk -> List.iter go blk.Op.body) blocks)
        op.Op.regions
  in
  List.iter go body;
  List.rev !acc

let port_accesses bundles ops =
  let table : (string, int * int) Hashtbl.t = Hashtbl.create 4 in
  let add bundle is_write =
    let r, w = Option.value ~default:(0, 0) (Hashtbl.find_opt table bundle) in
    Hashtbl.replace table bundle
      (if is_write then (r, w + 1) else (r + 1, w))
  in
  List.iter
    (fun op ->
      match Op.name op with
      | "memref.load" -> (
        match Op.operands op with
        | mr :: _ -> (
          match Hashtbl.find_opt bundles (Value.id mr) with
          | Some bundle -> add bundle false
          | None -> ())
        | [] -> ())
      | "memref.store" -> (
        match Op.operands op with
        | _ :: mr :: _ -> (
          match Hashtbl.find_opt bundles (Value.id mr) with
          | Some bundle -> add bundle true
          | None -> ())
        | _ -> ())
      | _ -> ())
    ops;
  Hashtbl.fold (fun bundle (r, w) acc -> (bundle, r, w) :: acc) table []
  |> List.sort compare

(* --- loop analysis --- *)

(* Topmost scf.for loops in an op list, looking through other regions. *)
let rec topmost_loops ops =
  List.concat_map
    (fun op ->
      if Scf.is_for op then [ op ]
      else
        List.concat_map
          (fun blocks ->
            List.concat_map (fun blk -> topmost_loops blk.Op.body) blocks)
          op.Op.regions)
    ops

let rec analyse_loop spec defs bundles op =
  match Scf.for_parts op with
  | None -> None
  | Some parts ->
    let body = parts.Scf.body in
    let dir_ops = direct_ops body in
    let find_directive name =
      List.find_map
        (fun o ->
          if String.equal (Op.name o) name then
            match Op.operands o with
            | [ v ] -> const_int defs v
            | _ -> None
          else None)
        dir_ops
    in
    let pipelined = List.exists Hls.is_pipeline dir_ops in
    let ii_directive = Option.value ~default:1 (find_directive "hls.pipeline") in
    let unroll = Option.value ~default:1 (find_directive "hls.unroll") in
    let ports = port_accesses bundles dir_ops in
    let busiest =
      List.fold_left (fun acc (_, r, w) -> max acc (r + w)) 0 ports
    in
    let rmw_port = List.exists (fun (_, r, w) -> r > 0 && w > 0) ports in
    let macs = count_macs defs body in
    let fp_ops = count_ops_in body is_float_op in
    let int_ops = count_ops_in body is_int_op in
    let nested =
      List.filter_map (analyse_loop spec defs bundles) (topmost_loops body)
    in
    let cycles_per_iteration =
      if pipelined then begin
        let open Fpga_spec in
        let beat =
          if spec.burst_inference then spec.burst_beat_cycles
          else spec.axi_share_cycles
        in
        let serial = unroll * busiest * beat in
        let chain =
          if rmw_port && not spec.burst_inference then spec.rmw_chain_cycles
          else 0
        in
        let ii_total = max (max serial chain) (unroll * ii_directive) in
        float_of_int (max ii_total 1) /. float_of_int unroll
      end
      else begin
        (* sequential: body latency per iteration *)
        let open Fpga_spec in
        let mem = busiest * spec.axi_share_cycles * 3 in
        let compute = (fp_ops * 8) + (int_ops * 1) in
        float_of_int (max (mem + compute + 10) 1)
      end
    in
    let static_trip =
      match (const_int defs parts.Scf.lb, const_int defs parts.Scf.ub,
             const_int defs parts.Scf.step)
      with
      | Some lb, Some ub, Some step when step > 0 ->
        Some (max 0 ((ub - lb + step - 1) / step))
      | _ -> None
    in
    Some
      {
        loop_key = Value.id parts.Scf.induction;
        pipelined;
        ii_directive;
        unroll;
        depth = spec.Fpga_spec.pipeline_depth_cycles;
        port_accesses = ports;
        rmw_port;
        cycles_per_iteration;
        static_trip;
        macs;
        fp_ops;
        int_ops;
        nested;
      }

let rec flatten_loops infos =
  List.concat_map (fun l -> l :: flatten_loops l.nested) infos

(* --- kernel analysis --- *)

let analyse_kernel spec fn =
  let defs = defs_table fn in
  let bundles = bundle_map fn in
  let body = if Func_d.has_body fn then Func_d.body fn else [] in
  let m_axi_bundles =
    Hashtbl.fold (fun _ b acc -> b :: acc) bundles []
    |> List.sort_uniq String.compare
  in
  let s_axilite_args =
    Op.fold
      (fun acc op ->
        if
          Hls.is_interface op
          && Hls.interface_bundle op = Some "control"
        then acc + 1
        else acc)
      0 fn
  in
  let loops =
    List.filter_map (analyse_loop spec defs bundles) (topmost_loops body)
  in
  let local_buffer_bytes =
    Op.fold
      (fun acc op ->
        if String.equal (Op.name op) "memref.alloca" then
          match Value.ty (Op.result1 op) with
          | Types.Memref mi -> (
            try
              acc
              + Types.memref_num_elements mi * Types.byte_size mi.Types.elt
            with Invalid_argument _ -> acc)
          | _ -> acc
        else acc)
      0 fn
  in
  let toplevel_macs = count_macs defs body in
  let dataflow =
    List.exists (fun o -> String.equal (Op.name o) "hls.dataflow") body
  in
  {
    fn_name = Option.value ~default:"kernel" (Func_d.func_name fn);
    m_axi_bundles;
    s_axilite_args;
    loops;
    local_buffer_bytes;
    toplevel_macs;
    dataflow;
  }

let pp_loop fmt l =
  Fmt.pf fmt
    "loop@%d: %s II=%d unroll=%d cyc/iter=%.2f rmw=%b ports=[%a]%s"
    l.loop_key
    (if l.pipelined then "pipelined" else "sequential")
    l.ii_directive l.unroll l.cycles_per_iteration l.rmw_port
    (Fmt.list ~sep:(Fmt.any ", ") (fun fmt (b, r, w) ->
         Fmt.pf fmt "%s:r%d/w%d" b r w))
    l.port_accesses
    (match l.static_trip with
    | Some t -> Fmt.str " trip=%d" t
    | None -> "")

let pp fmt ks =
  Fmt.pf fmt "kernel %s: m_axi=[%a] axilite=%d local_bytes=%d@."
    ks.fn_name
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    ks.m_axi_bundles ks.s_axilite_args ks.local_buffer_bytes;
  List.iter
    (fun l -> Fmt.pf fmt "  %a@." pp_loop l)
    (flatten_loops ks.loops)
