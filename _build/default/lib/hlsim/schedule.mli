(** HLS scheduling model: assigns each loop of a kernel an initiation
    interval, pipeline depth and unroll factor.

    Cost rules: a pipelined loop is bound by its busiest m_axi port
    (serialising [unroll * accesses] beats at [axi_share_cycles] each); a
    non-unrolled loop that reads and writes the same port is additionally
    bound by the unresolved read-modify-write chain ([rmw_chain_cycles]) —
    unrolling overlaps the independent chains, which is why the paper's
    simd(10) SAXPY sustains ~32 cycles/element while the non-unrolled SGESL
    inner loop pays the full AXI round trip per iteration. *)

type loop_info = {
  loop_key : int;
      (** Induction-variable value id: stable between static analysis and
          the interpreter's loop-statistics callback. *)
  pipelined : bool;
  ii_directive : int;
  unroll : int;
  depth : int;  (** Fill/flush cycles charged per loop entry. *)
  port_accesses : (string * int * int) list;
      (** bundle, reads, writes per original iteration. *)
  rmw_port : bool;
  cycles_per_iteration : float;
  static_trip : int option;  (** Compile-time trip count when known. *)
  macs : int;  (** Multiply-accumulate pairs per iteration. *)
  fp_ops : int;
  int_ops : int;
  nested : loop_info list;
}

type kernel_schedule = {
  fn_name : string;
  m_axi_bundles : string list;
  s_axilite_args : int;
  loops : loop_info list;  (** Topmost loops; inner loops nest. *)
  local_buffer_bytes : int;  (** On-chip alloca storage. *)
  toplevel_macs : int;
  dataflow : bool;
      (** hls.dataflow present: top-level stages overlap, so the kernel is
          bound by its slowest stage instead of the sum. *)
}

val analyse_kernel : Fpga_spec.t -> Ftn_ir.Op.t -> kernel_schedule
(** Analyse a kernel [func.func] at the hls-dialect level. *)

val flatten_loops : loop_info list -> loop_info list
(** Pre-order flattening of a loop forest. *)

val pp_loop : Format.formatter -> loop_info -> unit
val pp : Format.formatter -> kernel_schedule -> unit
