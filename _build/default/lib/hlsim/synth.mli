(** Simulated v++ flow: schedules and estimates every kernel function of a
    device module and packages the result as a {!Bitstream.t}. *)

exception Synthesis_error of string

val synthesise :
  ?frontend:Resources.frontend ->
  ?spec:Fpga_spec.t ->
  ?xclbin_name:string ->
  Ftn_ir.Op.t ->
  Bitstream.t
(** [synthesise device_module] runs the simulated HLS + link + place +
    route flow. Raises {!Synthesis_error} if the module is not a
    builtin.module or contains no kernel functions. *)
