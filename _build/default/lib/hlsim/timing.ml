(* Timing model: converts a kernel schedule plus observed loop statistics
   (entries and iterations per loop, gathered during functional execution)
   into cycles and seconds, and costs DMA transfers, kernel launches and
   first-touch buffer allocations. *)

type loop_stats = {
  entries : (int, int) Hashtbl.t;  (** loop_key -> times entered *)
  iterations : (int, int) Hashtbl.t;  (** loop_key -> total iterations *)
}

let make_stats () = { entries = Hashtbl.create 8; iterations = Hashtbl.create 8 }

let record_loop stats ~loop_key ~iters =
  let bump t k v =
    Hashtbl.replace t k (v + Option.value ~default:0 (Hashtbl.find_opt t k))
  in
  bump stats.entries loop_key 1;
  bump stats.iterations loop_key iters

let merge_into ~src ~dst =
  Hashtbl.iter
    (fun k v ->
      Hashtbl.replace dst.entries k
        (v + Option.value ~default:0 (Hashtbl.find_opt dst.entries k)))
    src.entries;
  Hashtbl.iter
    (fun k v ->
      Hashtbl.replace dst.iterations k
        (v + Option.value ~default:0 (Hashtbl.find_opt dst.iterations k)))
    src.iterations

(* Cycles contributed by one loop (and its nested loops). *)
let loop_cycles_observed stats (l : Schedule.loop_info) =
  let rec go (l : Schedule.loop_info) =
    let entries =
      Option.value ~default:0 (Hashtbl.find_opt stats.entries l.Schedule.loop_key)
    in
    let iters =
      Option.value ~default:0
        (Hashtbl.find_opt stats.iterations l.Schedule.loop_key)
    in
    let fill = if l.Schedule.pipelined then entries * l.Schedule.depth else 0 in
    float_of_int fill
    +. (float_of_int iters *. l.Schedule.cycles_per_iteration)
    +. List.fold_left (fun acc n -> acc +. go n) 0.0 l.Schedule.nested
  in
  go l

(* Cycles for one kernel execution given observed loop statistics. In a
   dataflow kernel the top-level stages overlap: the slowest stage bounds
   the kernel instead of the stage sum. *)
let kernel_cycles (ks : Schedule.kernel_schedule) stats =
  let per_stage =
    List.map (loop_cycles_observed stats) ks.Schedule.loops
  in
  if ks.Schedule.dataflow then
    List.fold_left Float.max 0.0 per_stage
  else List.fold_left ( +. ) 0.0 per_stage

let kernel_time_s spec ks stats =
  kernel_cycles ks stats *. Fpga_spec.clock_period_s spec

(* Static estimate using compile-time trip counts where available; loops
   with dynamic trips are assumed to run [assumed_trip] iterations. *)
let static_kernel_cycles ?(assumed_trip = 0) (ks : Schedule.kernel_schedule) =
  let rec loop_cycles outer_trip (l : Schedule.loop_info) =
    let trip =
      match l.Schedule.static_trip with
      | Some t -> t
      | None -> assumed_trip
    in
    let own =
      (if l.Schedule.pipelined then float_of_int l.Schedule.depth else 0.0)
      +. (float_of_int trip *. l.Schedule.cycles_per_iteration)
    in
    let nested =
      List.fold_left
        (fun acc n -> acc +. loop_cycles (outer_trip * trip) n)
        0.0 l.Schedule.nested
    in
    (own *. float_of_int outer_trip) +. nested
  in
  List.fold_left
    (fun acc l -> acc +. loop_cycles 1 l)
    0.0 ks.Schedule.loops

let transfer_time_s spec ~bytes =
  let open Fpga_spec in
  spec.dma_fixed_overhead_s
  +. (float_of_int bytes /. spec.dma_bandwidth_bytes_per_s)

let launch_overhead_s spec = spec.Fpga_spec.kernel_launch_overhead_s
let alloc_overhead_s spec = spec.Fpga_spec.buffer_alloc_overhead_s
