(** Timing model: converts a kernel schedule plus observed loop statistics
    into cycles/seconds, and costs DMA transfers, kernel launches and
    first-touch buffer allocations. *)

type loop_stats = {
  entries : (int, int) Hashtbl.t;  (** loop_key -> times entered. *)
  iterations : (int, int) Hashtbl.t;  (** loop_key -> total iterations. *)
}

val make_stats : unit -> loop_stats

val record_loop : loop_stats -> loop_key:int -> iters:int -> unit
(** Record one completed execution of a loop. *)

val merge_into : src:loop_stats -> dst:loop_stats -> unit

val kernel_cycles : Schedule.kernel_schedule -> loop_stats -> float
(** Cycles for one kernel execution given the loops' observed entry and
    iteration counts. *)

val kernel_time_s : Fpga_spec.t -> Schedule.kernel_schedule -> loop_stats -> float

val static_kernel_cycles :
  ?assumed_trip:int -> Schedule.kernel_schedule -> float
(** Compile-time estimate using static trip counts; loops with dynamic
    bounds are assumed to run [assumed_trip] iterations (default 0). *)

val transfer_time_s : Fpga_spec.t -> bytes:int -> float
val launch_overhead_s : Fpga_spec.t -> float
val alloc_overhead_s : Fpga_spec.t -> float
