lib/interp/interp.ml: Arith Attr Float Fmt Ftn_dialects Ftn_ir Func_d Hashtbl List Math_d Omp Op Option Queue Rtval Scf String Types Value
