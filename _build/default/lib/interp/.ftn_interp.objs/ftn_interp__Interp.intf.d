lib/interp/interp.mli: Ftn_ir Rtval
