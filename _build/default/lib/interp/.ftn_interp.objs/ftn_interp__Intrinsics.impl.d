lib/interp/intrinsics.ml: Buffer Float Fmt Ftn_ir Interp Op Option Rtval
