lib/interp/intrinsics.mli: Interp
