lib/interp/rtval.ml: Array Fmt Ftn_ir Int32 List Queue Types
