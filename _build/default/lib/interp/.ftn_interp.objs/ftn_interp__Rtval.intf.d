lib/interp/rtval.mli: Format Ftn_ir Queue
