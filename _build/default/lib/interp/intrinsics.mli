(** Runtime-library intrinsics: the print routines Fortran's [print *]
    lowers onto, and the device runtime-library helpers (type conversion,
    directive no-ops). Output is captured in a sink for inspection. *)

type sink

val make_sink : ?echo:bool -> unit -> sink
(** [echo] also writes to stdout. *)

val output : sink -> string -> unit
val contents : sink -> string
val clear : sink -> unit
val format_float : float -> string

val print_handler : sink -> Interp.handler
(** Handles the [ftn_print_*] call family. *)

val runtime_library_handler : Interp.handler
(** Handles [_hls_*] conversions and [_ssdm_op_*] directive calls. *)
