lib/ir/attr.ml: Buffer Float Fmt Format List String Types
