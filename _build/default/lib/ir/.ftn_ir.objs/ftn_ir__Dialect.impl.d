lib/ir/dialect.ml: Fmt Hashtbl List Op String Types Value
