lib/ir/dialect.mli: Op Types
