lib/ir/ir_parser.ml: Attr Buffer Fmt List Op String Types Value
