lib/ir/ir_parser.mli: Op Types
