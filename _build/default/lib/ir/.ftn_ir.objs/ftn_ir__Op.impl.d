lib/ir/op.ml: Attr Fmt List Option String Value
