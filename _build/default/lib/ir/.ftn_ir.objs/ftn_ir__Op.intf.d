lib/ir/op.mli: Attr Value
