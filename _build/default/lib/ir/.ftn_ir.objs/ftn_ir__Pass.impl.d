lib/ir/pass.ml: Fmt List Op Unix Verifier
