lib/ir/pass.mli: Format Op
