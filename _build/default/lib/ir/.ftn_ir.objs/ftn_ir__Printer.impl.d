lib/ir/printer.ml: Attr Buffer Fmt Format List Op String Types Value
