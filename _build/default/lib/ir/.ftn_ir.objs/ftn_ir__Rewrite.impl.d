lib/ir/rewrite.ml: Builder Hashtbl List Op Value
