lib/ir/rewrite.mli: Builder Op Value
