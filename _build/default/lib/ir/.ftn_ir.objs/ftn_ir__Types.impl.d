lib/ir/types.ml: Buffer Fmt Format List
