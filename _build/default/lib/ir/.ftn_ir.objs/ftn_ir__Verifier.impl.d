lib/ir/verifier.ml: Dialect Fmt Hashtbl List Op Value
