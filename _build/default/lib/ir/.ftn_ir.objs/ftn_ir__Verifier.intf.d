lib/ir/verifier.mli: Format Op
