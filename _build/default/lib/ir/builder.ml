(* Fresh-value allocation context. A builder is threaded through lowering
   code so SSA ids stay unique within a compilation unit. *)

type t = { mutable next_id : int }

let create ?(first_id = 0) () = { next_id = first_id }

let fresh b ty =
  let v = Value.make b.next_id ty in
  b.next_id <- b.next_id + 1;
  v

let fresh_list b tys = List.map (fresh b) tys
let next_id b = b.next_id

let reserve_above b id = if id >= b.next_id then b.next_id <- id + 1

(* Build a builder that will not collide with any value in [op]. *)
let for_op op =
  let max_id = ref (-1) in
  let see v = if Value.id v > !max_id then max_id := Value.id v in
  Op.walk
    (fun o ->
      List.iter see o.Op.operands;
      List.iter see o.Op.results;
      List.iter
        (fun blocks ->
          List.iter (fun b -> List.iter see b.Op.args) blocks)
        o.Op.regions)
    op;
  create ~first_id:(!max_id + 1) ()

(* Common op-building helpers used by dialects: build an op with [n]
   results of the given types. *)
let op1 b name ?(operands = []) ?(attrs = []) ?(regions = []) result_ty =
  let r = fresh b result_ty in
  Op.make name ~operands ~results:[ r ] ~attrs ~regions

let op0 name ?(operands = []) ?(attrs = []) ?(regions = []) () =
  Op.make name ~operands ~attrs ~regions

(* Clone an op tree with fresh result/block-arg values, remapping internal
   uses; external uses are remapped through [init] if provided. Returns the
   cloned op and the mapping from old to new values. *)
let clone b ?(init = Value.Map.empty) op =
  let mapping = ref init in
  let remap_def v =
    let v' = fresh b (Value.ty v) in
    mapping := Value.Map.add v v' !mapping;
    v'
  in
  let rec go op =
    let operands =
      List.map
        (fun v ->
          match Value.Map.find_opt v !mapping with
          | Some v' -> v'
          | None -> v)
        op.Op.operands
    in
    let results = List.map remap_def op.Op.results in
    let regions =
      List.map
        (fun blocks ->
          List.map
            (fun blk ->
              let args = List.map remap_def blk.Op.args in
              let body = List.map go blk.Op.body in
              { blk with Op.args; body })
            blocks)
        op.Op.regions
    in
    { op with Op.operands; results; regions }
  in
  let cloned = go op in
  (cloned, !mapping)
