(** Fresh SSA value allocation, threaded through lowering passes. *)

type t

val create : ?first_id:int -> unit -> t
val fresh : t -> Types.t -> Value.t
val fresh_list : t -> Types.t list -> Value.t list
val next_id : t -> int
val reserve_above : t -> int -> unit

val for_op : Op.t -> t
(** A builder guaranteed not to collide with any value appearing in [op]. *)

val op1 :
  t ->
  string ->
  ?operands:Value.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  Types.t ->
  Op.t
(** Build an op with a single fresh result of the given type. *)

val op0 :
  string ->
  ?operands:Value.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  unit ->
  Op.t
(** Build an op with no results. *)

val clone :
  t -> ?init:Value.t Value.Map.t -> Op.t -> Op.t * Value.t Value.Map.t
(** Deep-copy an op tree with fresh definitions. Internal uses are remapped;
    free values are remapped through [init] when present. Returns the clone
    and the old-to-new mapping. *)
