(* Registry of known operations. Dialect libraries register op descriptors
   at module-initialisation time; the verifier consults the registry for
   per-op structural checks. Unregistered ops are tolerated (MLIR's
   "unregistered dialect" behaviour) unless the verifier is run in strict
   mode. *)

type op_info = {
  op_name : string;
  summary : string;
  verify : Op.t -> (unit, string) result;
}

let registry : (string, op_info) Hashtbl.t = Hashtbl.create 128

let register ?(summary = "") ?(verify = fun _ -> Ok ()) op_name =
  Hashtbl.replace registry op_name { op_name; summary; verify }

let lookup op_name = Hashtbl.find_opt registry op_name
let is_registered op_name = Hashtbl.mem registry op_name

let registered_ops () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry []
  |> List.sort String.compare

let registered_dialects () =
  registered_ops ()
  |> List.filter_map (fun name ->
         match String.index_opt name '.' with
         | Some i -> Some (String.sub name 0 i)
         | None -> None)
  |> List.sort_uniq String.compare

(* Common verifier combinators used by dialect definitions. *)

let check cond msg = if cond then Ok () else Error msg

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let expect_operands op n =
  check
    (List.length (Op.operands op) = n)
    (Fmt.str "%s expects %d operands, got %d" (Op.name op) n
       (List.length (Op.operands op)))

let expect_results op n =
  check
    (List.length (Op.results op) = n)
    (Fmt.str "%s expects %d results, got %d" (Op.name op) n
       (List.length (Op.results op)))

let expect_regions op n =
  check
    (List.length (Op.regions op) = n)
    (Fmt.str "%s expects %d regions, got %d" (Op.name op) n
       (List.length (Op.regions op)))

let expect_attr op key =
  check (Op.has_attr op key)
    (Fmt.str "%s missing attribute %S" (Op.name op) key)

let expect_operand_type op i ty =
  match Op.operand_opt op i with
  | Some v ->
    check
      (Types.equal (Value.ty v) ty)
      (Fmt.str "%s operand %d: expected %s, got %s" (Op.name op) i
         (Types.to_string ty)
         (Types.to_string (Value.ty v)))
  | None -> Error (Fmt.str "%s has no operand %d" (Op.name op) i)

let same_type_operands op =
  match Op.operands op with
  | [] | [ _ ] -> Ok ()
  | v :: rest ->
    check
      (List.for_all (fun u -> Types.equal (Value.ty u) (Value.ty v)) rest)
      (Fmt.str "%s operands must all have the same type" (Op.name op))
