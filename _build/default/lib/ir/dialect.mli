(** Registry of known operations.

    Dialect libraries register operation descriptors at initialisation time;
    {!Verifier} consults the registry for per-op checks. Unregistered ops
    are tolerated unless strict verification is requested. *)

type op_info = {
  op_name : string;
  summary : string;
  verify : Op.t -> (unit, string) result;
}

val register :
  ?summary:string -> ?verify:(Op.t -> (unit, string) result) -> string -> unit

val lookup : string -> op_info option
val is_registered : string -> bool
val registered_ops : unit -> string list
val registered_dialects : unit -> string list

(** {2 Verifier combinators for dialect definitions} *)

val check : bool -> string -> (unit, string) result
val ( let* ) : (unit, string) result -> (unit -> (unit, string) result) -> (unit, string) result
val expect_operands : Op.t -> int -> (unit, string) result
val expect_results : Op.t -> int -> (unit, string) result
val expect_regions : Op.t -> int -> (unit, string) result
val expect_attr : Op.t -> string -> (unit, string) result
val expect_operand_type : Op.t -> int -> Types.t -> (unit, string) result
val same_type_operands : Op.t -> (unit, string) result
