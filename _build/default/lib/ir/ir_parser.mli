(** Parser for the generic-operation textual syntax emitted by {!Printer}.

    Values are reconstructed with the integer ids appearing in the text, so
    parsing printed IR yields a structurally identical tree. *)

exception Parse_error of string * int
(** Message and character offset. *)

val parse_ops : string -> Op.t list
(** Parse a sequence of top-level operations. *)

val parse_module : string -> Op.t
(** Parse and wrap into a [builtin.module] if the text is not already one. *)

val parse_type_string : string -> Types.t
(** Parse a single type, e.g. ["memref<100xf64, 1 : i32>"]. *)
