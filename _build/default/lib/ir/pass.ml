(* Pass manager: named module-to-module transformations with optional
   inter-pass verification, per-pass timing and IR dump hooks (the
   equivalent of mlir-opt's -pass-pipeline driver). *)

type t = {
  pass_name : string;
  run : Op.t -> Op.t;
}

type stage_record = {
  stage_name : string;
  elapsed_s : float;
  op_count : int;
}

let make pass_name run = { pass_name; run }
let name p = p.pass_name
let run p m = p.run m

let count_ops m = Op.count (fun _ -> true) m

let run_pipeline ?(verify_between = false) ?on_stage passes m =
  let records = ref [] in
  let notify stage_name elapsed_s m =
    let r = { stage_name; elapsed_s; op_count = count_ops m } in
    records := r :: !records;
    match on_stage with Some f -> f r m | None -> ()
  in
  notify "input" 0.0 m;
  let result =
    List.fold_left
      (fun m p ->
        let t0 = Unix.gettimeofday () in
        let m' = p.run m in
        let elapsed = Unix.gettimeofday () -. t0 in
        if verify_between then Verifier.verify_exn m';
        notify p.pass_name elapsed m';
        m')
      m passes
  in
  (result, List.rev !records)

let run_pipeline_exn ?verify_between ?on_stage passes m =
  fst (run_pipeline ?verify_between ?on_stage passes m)

let pp_stage fmt r =
  Fmt.pf fmt "%-28s %6.2f ms  %5d ops" r.stage_name (r.elapsed_s *. 1000.)
    r.op_count
