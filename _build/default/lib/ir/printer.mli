(** Textual IR output in MLIR's generic-operation syntax. The output is
    accepted by {!Ir_parser}, so [parse (print m)] round-trips. *)

val pp : Format.formatter -> Op.t -> unit
val pp_ops : Format.formatter -> Op.t list -> unit
val to_string : Op.t -> string
val ops_to_string : Op.t list -> string
