(** Greedy pattern-rewrite driver (MLIR's
    [applyPatternsAndFoldGreedily] analogue). Patterns are applied
    bottom-up over the op tree until fixpoint or an iteration cap. *)

type outcome = {
  new_ops : Op.t list;  (** Replacement ops (empty to erase). *)
  replacements : (Value.t * Value.t) list;
      (** Redirections: uses of the first value become the second. *)
}

type pattern = {
  pat_name : string;
  match_and_rewrite : Builder.t -> Op.t -> outcome option;
}

val pattern : string -> (Builder.t -> Op.t -> outcome option) -> pattern

val replace_with :
  ?replacements:(Value.t * Value.t) list -> Op.t list -> outcome

val erase : outcome
(** Drop the op entirely (only valid for ops whose results are unused). *)

val apply : ?max_iterations:int -> pattern list -> Op.t -> Op.t
