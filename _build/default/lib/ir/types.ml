(* MLIR-style type system: builtin scalar/aggregate types plus the opaque
   dialect types used by the device and hls dialects. *)

type dim =
  | Static of int
  | Dynamic

type t =
  | I1
  | I8
  | I16
  | I32
  | I64
  | Index
  | F16
  | F32
  | F64
  | Vector of int * t
  | Memref of memref_info
  | Tuple of t list
  | Func of t list * t list
  | Kernel_handle
  | Axi_protocol
  | Stream of t
  | Ptr of t

and memref_info = {
  shape : dim list;
  elt : t;
  memory_space : int;
}

let memref ?(memory_space = 0) shape elt = Memref { shape; elt; memory_space }

let memref_static ?memory_space dims elt =
  memref ?memory_space (List.map (fun d -> Static d) dims) elt

let memref_dynamic ?memory_space rank elt =
  memref ?memory_space (List.init rank (fun _ -> Dynamic)) elt

let rec equal a b =
  match a, b with
  | I1, I1 | I8, I8 | I16, I16 | I32, I32 | I64, I64 | Index, Index
  | F16, F16 | F32, F32 | F64, F64
  | Kernel_handle, Kernel_handle | Axi_protocol, Axi_protocol ->
    true
  | Vector (n, u), Vector (m, v) -> n = m && equal u v
  | Stream u, Stream v | Ptr u, Ptr v -> equal u v
  | Memref mi, Memref mj ->
    mi.shape = mj.shape && equal mi.elt mj.elt
    && mi.memory_space = mj.memory_space
  | Tuple us, Tuple vs -> equal_list us vs
  | Func (ua, ur), Func (va, vr) -> equal_list ua va && equal_list ur vr
  | ( I1 | I8 | I16 | I32 | I64 | Index | F16 | F32 | F64 | Vector _
    | Memref _ | Tuple _ | Func _ | Kernel_handle | Axi_protocol
    | Stream _ | Ptr _ ), _ ->
    false

and equal_list us vs =
  List.length us = List.length vs && List.for_all2 equal us vs

let is_integer = function
  | I1 | I8 | I16 | I32 | I64 | Index -> true
  | F16 | F32 | F64 | Vector _ | Memref _ | Tuple _ | Func _
  | Kernel_handle | Axi_protocol | Stream _ | Ptr _ ->
    false

let is_float = function
  | F16 | F32 | F64 -> true
  | I1 | I8 | I16 | I32 | I64 | Index | Vector _ | Memref _ | Tuple _
  | Func _ | Kernel_handle | Axi_protocol | Stream _ | Ptr _ ->
    false

let is_memref = function Memref _ -> true | _ -> false

let bitwidth = function
  | I1 -> 1
  | I8 -> 8
  | I16 | F16 -> 16
  | I32 | F32 -> 32
  | I64 | F64 | Index -> 64
  | Vector _ | Memref _ | Tuple _ | Func _ | Kernel_handle | Axi_protocol
  | Stream _ | Ptr _ ->
    invalid_arg "Types.bitwidth: not a scalar type"

let byte_size ty = (bitwidth ty + 7) / 8

(* Number of elements of a statically-shaped memref; raises on dynamic. *)
let memref_num_elements mi =
  List.fold_left
    (fun acc d ->
      match d with
      | Static n -> acc * n
      | Dynamic -> invalid_arg "Types.memref_num_elements: dynamic dim")
    1 mi.shape

let memref_rank mi = List.length mi.shape

let rec pp fmt ty =
  match ty with
  | I1 -> Fmt.string fmt "i1"
  | I8 -> Fmt.string fmt "i8"
  | I16 -> Fmt.string fmt "i16"
  | I32 -> Fmt.string fmt "i32"
  | I64 -> Fmt.string fmt "i64"
  | Index -> Fmt.string fmt "index"
  | F16 -> Fmt.string fmt "f16"
  | F32 -> Fmt.string fmt "f32"
  | F64 -> Fmt.string fmt "f64"
  | Vector (n, elt) -> Fmt.pf fmt "vector<%dx%a>" n pp elt
  | Memref { shape; elt; memory_space } ->
    let pp_dim fmt = function
      | Static n -> Fmt.pf fmt "%dx" n
      | Dynamic -> Fmt.string fmt "?x"
    in
    Fmt.pf fmt "memref<%a%a" (Fmt.list ~sep:Fmt.nop pp_dim) shape pp elt;
    if memory_space <> 0 then Fmt.pf fmt ", %d : i32" memory_space;
    Fmt.string fmt ">"
  | Tuple tys -> Fmt.pf fmt "tuple<%a>" (Fmt.list ~sep:(Fmt.any ", ") pp) tys
  | Func (args, results) ->
    Fmt.pf fmt "(%a) -> (%a)"
      (Fmt.list ~sep:(Fmt.any ", ") pp) args
      (Fmt.list ~sep:(Fmt.any ", ") pp) results
  | Kernel_handle -> Fmt.string fmt "!device.kernelhandle"
  | Axi_protocol -> Fmt.string fmt "!hls.axi_protocol"
  | Stream elt -> Fmt.pf fmt "!hls.stream<%a>" pp elt
  | Ptr elt -> Fmt.pf fmt "!llvm.ptr<%a>" pp elt

let to_string x =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  pp fmt x;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

