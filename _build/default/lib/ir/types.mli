(** MLIR-style type system.

    Covers the builtin scalar, vector, memref and function types used by the
    core dialects, plus the opaque dialect types ([!device.kernelhandle],
    [!hls.axi_protocol], [!hls.stream<T>]) introduced by the paper's device
    and hls dialects. *)

type dim =
  | Static of int  (** Compile-time constant dimension. *)
  | Dynamic  (** Printed as [?]; size supplied at runtime. *)

type t =
  | I1
  | I8
  | I16
  | I32
  | I64
  | Index
  | F16
  | F32
  | F64
  | Vector of int * t
  | Memref of memref_info
  | Tuple of t list
  | Func of t list * t list
  | Kernel_handle
  | Axi_protocol
  | Stream of t
  | Ptr of t

and memref_info = {
  shape : dim list;
  elt : t;
  memory_space : int;  (** Device memory space; 0 is host/default. *)
}

val memref : ?memory_space:int -> dim list -> t -> t
(** [memref shape elt] builds a memref type (default memory space 0). *)

val memref_static : ?memory_space:int -> int list -> t -> t
(** Memref with all-static dimensions. *)

val memref_dynamic : ?memory_space:int -> int -> t -> t
(** [memref_dynamic rank elt] builds a memref of [rank] dynamic dims. *)

val equal : t -> t -> bool
val equal_list : t list -> t list -> bool
val is_integer : t -> bool
val is_float : t -> bool
val is_memref : t -> bool

val bitwidth : t -> int
(** Width of a scalar type in bits; raises [Invalid_argument] otherwise. *)

val byte_size : t -> int
(** Width of a scalar type in bytes, rounded up. *)

val memref_num_elements : memref_info -> int
(** Element count of a statically-shaped memref; raises on dynamic dims. *)

val memref_rank : memref_info -> int

val pp : Format.formatter -> t -> unit
(** Prints MLIR syntax, e.g. [memref<100xf64, 1 : i32>]. *)

val to_string : t -> string
