(* SSA values. Identity is the integer id; the type is carried for
   convenience so consumers never need a side table. *)

type t = {
  id : int;
  ty : Types.t;
}

let make id ty = { id; ty }
let id v = v.id
let ty v = v.ty
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash v = v.id
let pp fmt v = Fmt.pf fmt "%%%d" v.id
let pp_typed fmt v = Fmt.pf fmt "%%%d : %a" v.id Types.pp v.ty
let to_string v = Fmt.str "%a" pp v

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
