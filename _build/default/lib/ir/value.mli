(** SSA values. A value is identified by a unique integer id allocated by
    {!Builder} and carries its type. *)

type t = private {
  id : int;
  ty : Types.t;
}

val make : int -> Types.t -> t
(** Used by {!Builder} and the parser; prefer [Builder.fresh]. *)

val id : t -> int
val ty : t -> Types.t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_typed : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
