(* Structural IR verification:
     - every value has a single definition;
     - every use is dominated by its definition (sequential order within a
       block, or a definition in an enclosing region — standard MLIR
       visibility for structured control flow);
     - per-op checks from the dialect registry.

   Isolated-from-above ops (builtin.module, func.func, device.kernel_create)
   reset visibility: their regions may not reference outer values, except
   that kernel_create regions may use the op's own operands (they are
   re-bound as block args after outlining). *)

type diag = {
  op_name : string;
  message : string;
}

let pp_diag fmt d = Fmt.pf fmt "[%s] %s" d.op_name d.message

let isolated_from_above name =
  List.mem name [ "builtin.module"; "func.func" ]

let verify ?(strict = false) top =
  let diags = ref [] in
  let add op_name message = diags := { op_name; message } :: !diags in
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let define op_name v =
    if Hashtbl.mem defined (Value.id v) then
      add op_name (Fmt.str "value %%%d defined twice" (Value.id v))
    else Hashtbl.add defined (Value.id v) ()
  in
  (* [visible] is the set of value ids in scope. *)
  let rec check_op visible op =
    List.iter
      (fun v ->
        if not (Value.Set.mem v visible) then
          add op.Op.name
            (Fmt.str "use of undefined value %%%d" (Value.id v)))
      op.Op.operands;
    List.iter (define op.Op.name) op.Op.results;
    (match Dialect.lookup op.Op.name with
    | Some info -> (
      match info.Dialect.verify op with
      | Ok () -> ()
      | Error msg -> add op.Op.name msg)
    | None ->
      if strict then add op.Op.name "unregistered operation");
    let inner_visible =
      if isolated_from_above op.Op.name then Value.Set.empty
      else
        List.fold_left
          (fun acc v -> Value.Set.add v acc)
          visible op.Op.operands
    in
    let inner_visible =
      List.fold_left
        (fun acc v -> Value.Set.add v acc)
        inner_visible op.Op.results
    in
    (* Blocks of a region are checked sequentially with definitions
       accumulating across blocks: precise for structured single-block
       regions, and lenient enough for CFG-form llvm.func regions (a full
       dominance analysis would reject nothing the emitter produces). *)
    List.iter
      (fun blocks ->
        ignore
          (List.fold_left
             (fun visible b ->
               List.iter (define op.Op.name) b.Op.args;
               let visible =
                 List.fold_left
                   (fun acc v -> Value.Set.add v acc)
                   visible b.Op.args
               in
               List.fold_left
                 (fun visible o ->
                   check_op visible o;
                   List.fold_left
                     (fun acc v -> Value.Set.add v acc)
                     visible o.Op.results)
                 visible b.Op.body)
             inner_visible blocks))
      op.Op.regions
  in
  check_op Value.Set.empty top;
  List.rev !diags

let verify_exn ?strict top =
  match verify ?strict top with
  | [] -> ()
  | diags ->
    let msg = Fmt.str "@[<v>%a@]" (Fmt.list pp_diag) diags in
    failwith ("IR verification failed:\n" ^ msg)

let is_valid ?strict top = verify ?strict top = []
