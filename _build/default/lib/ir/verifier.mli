(** Structural IR verification: single definitions, def-before-use with
    MLIR's enclosing-region visibility, and per-op checks registered in the
    {!Dialect} registry. *)

type diag = {
  op_name : string;
  message : string;
}

val pp_diag : Format.formatter -> diag -> unit

val verify : ?strict:bool -> Op.t -> diag list
(** Returns all diagnostics; empty means valid. [strict] also flags
    unregistered operations. *)

val verify_exn : ?strict:bool -> Op.t -> unit
(** Raises [Failure] with the collected diagnostics if invalid. *)

val is_valid : ?strict:bool -> Op.t -> bool
