lib/linpack/fortran_sources.ml: Fmt
