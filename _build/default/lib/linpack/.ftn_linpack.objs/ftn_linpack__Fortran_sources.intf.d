lib/linpack/fortran_sources.mli:
