lib/linpack/hls_baselines.mli: Ftn_hlsim Ftn_ir Ftn_runtime Op
