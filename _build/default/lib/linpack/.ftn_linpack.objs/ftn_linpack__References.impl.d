lib/linpack/references.ml: Array Float Int32
