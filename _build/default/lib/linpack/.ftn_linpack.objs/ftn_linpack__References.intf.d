lib/linpack/references.mli:
