(** Hand-written HLS baselines: the kernels a Vitis HLS programmer would
    write in C with pragmas, expressed at the hls-dialect level as AMD's
    Clang frontend emits them, plus hand-written host drivers over the
    runtime's OpenCL-level API. Synthesised with [frontend = Clang_hls] so
    the backend's MAC pattern matcher sees Clang-shaped IR. *)

open Ftn_ir

val saxpy_device : n:int -> Op.t
(** SAXPY kernel, pipelined and unrolled by 10. *)

val sgesl_device : n:int -> Op.t
(** SGESL update kernel: pipelined, not unrolled — its MAC is recognised
    and lands in DSPs (Table 4). *)

val scale_dataflow_device : ?dataflow:bool -> n:int -> unit -> Op.t
(** Three-stage read/scale/write kernel through on-chip streams; with
    [dataflow] the stages overlap. *)

type baseline_run = {
  result : Ftn_runtime.Executor.result;
  bitstream : Ftn_hlsim.Bitstream.t;
  values : float array;  (** The output vector after the run. *)
}

val run_saxpy : ?spec:Ftn_hlsim.Fpga_spec.t -> n:int -> unit -> baseline_run
val run_sgesl : ?spec:Ftn_hlsim.Fpga_spec.t -> n:int -> unit -> baseline_run

val run_scale_dataflow :
  ?spec:Ftn_hlsim.Fpga_spec.t ->
  ?dataflow:bool ->
  n:int ->
  a:float ->
  unit ->
  baseline_run
