(* OCaml reference implementations of the evaluation kernels (for
   numerical verification of the compiled pipelines) plus the full
   single-precision LINPACK factor/solve pair the benchmarks originate
   from. Floating arithmetic is done in double and rounded to single at
   each store, mirroring Fortran REAL semantics closely enough for
   element-wise comparison. *)

let to_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* y(i) = y(i) + a * x(i) *)
let saxpy ~a ~x ~y =
  Array.iteri (fun i xi -> y.(i) <- to_f32 (y.(i) +. to_f32 (a *. xi))) x

(* The benchmark initialisation of Fortran_sources.saxpy. *)
let saxpy_inputs ~n =
  let x = Array.init n (fun i -> to_f32 (float_of_int (i + 1) *. 0.5)) in
  let y = Array.init n (fun i -> to_f32 (float_of_int (n - (i + 1)) *. 0.25)) in
  (x, y)

(* The paper's SGESL update loop (Listing 6), sequential reference. *)
let sgesl_update ~n ~a ~b ~ipvt =
  for k = 1 to n - 1 do
    let l = ipvt.(k - 1) in
    let t = b.(l - 1) in
    if l <> k then begin
      b.(l - 1) <- b.(k - 1);
      b.(k - 1) <- t
    end;
    for j = k + 1 to n do
      b.(j - 1) <- to_f32 (b.(j - 1) +. to_f32 (t *. a.(j - 1)))
    done
  done

(* Benchmark initialisation of Fortran_sources.sgesl. *)
let sgesl_inputs ~n =
  let a =
    Array.init n (fun i -> to_f32 (0.001 *. float_of_int (((i + 1) mod 7) + 1)))
  in
  let b =
    Array.init n (fun i -> to_f32 (float_of_int ((i + 1) mod 13) *. 0.5))
  in
  let ipvt = Array.init n (fun i -> i + 1) in
  (a, b, ipvt)

let dot ~x ~y =
  let acc = ref 0.0 in
  Array.iteri (fun i xi -> acc := to_f32 (!acc +. to_f32 (xi *. y.(i)))) x;
  !acc

let dot_inputs ~n =
  let x = Array.init n (fun i -> to_f32 (float_of_int ((i + 1) mod 9) *. 0.125)) in
  let y = Array.init n (fun i -> to_f32 (float_of_int ((i + 1) mod 5) *. 0.25)) in
  (x, y)

(* --- full LINPACK single-precision factor and solve --- *)

(* Column-major n*n matrix stored as a.(j).(i) = A(i+1, j+1)? We keep a
   flat array with column-major layout: a.((j * n) + i) = A(i+1, j+1). *)

let idx n i j = (j * n) + i

(* sgefa: LU factorisation with partial pivoting. Returns info (0 = ok). *)
let sgefa ~n a ipvt =
  let info = ref 0 in
  for k = 0 to n - 2 do
    (* find pivot *)
    let l = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(idx n i k) > Float.abs a.(idx n !l k) then l := i
    done;
    ipvt.(k) <- !l + 1;
    if a.(idx n !l k) = 0.0 then info := k + 1
    else begin
      if !l <> k then begin
        let t = a.(idx n !l k) in
        a.(idx n !l k) <- a.(idx n k k);
        a.(idx n k k) <- t
      end;
      let t = to_f32 (-1.0 /. a.(idx n k k)) in
      for i = k + 1 to n - 1 do
        a.(idx n i k) <- to_f32 (a.(idx n i k) *. t)
      done;
      for j = k + 1 to n - 1 do
        let t = a.(idx n !l j) in
        if !l <> k then begin
          a.(idx n !l j) <- a.(idx n k j);
          a.(idx n k j) <- t
        end;
        for i = k + 1 to n - 1 do
          a.(idx n i j) <- to_f32 (a.(idx n i j) +. to_f32 (t *. a.(idx n i k)))
        done
      done
    end
  done;
  ipvt.(n - 1) <- n;
  if a.(idx n (n - 1) (n - 1)) = 0.0 then info := n;
  !info

(* sgesl: solves A x = b using the factors from sgefa (job = 0). *)
let sgesl ~n a ipvt b =
  (* forward elimination *)
  for k = 0 to n - 2 do
    let l = ipvt.(k) - 1 in
    let t = b.(l) in
    if l <> k then begin
      b.(l) <- b.(k);
      b.(k) <- t
    end;
    for i = k + 1 to n - 1 do
      b.(i) <- to_f32 (b.(i) +. to_f32 (t *. a.(idx n i k)))
    done
  done;
  (* back substitution *)
  for kb = 0 to n - 1 do
    let k = n - 1 - kb in
    b.(k) <- to_f32 (b.(k) /. a.(idx n k k));
    let t = to_f32 (-.b.(k)) in
    for i = 0 to k - 1 do
      b.(i) <- to_f32 (b.(i) +. to_f32 (t *. a.(idx n i k)))
    done
  done

(* Residual || A x - b ||_inf for testing the solver. *)
let residual ~n a_orig x b_orig =
  let r = ref 0.0 in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for j = 0 to n - 1 do
      s := !s +. (a_orig.(idx n i j) *. x.(j))
    done;
    r := Float.max !r (Float.abs (!s -. b_orig.(i)))
  done;
  !r
