(** OCaml reference implementations of the evaluation kernels, the matching
    workload initialisations, and the full single-precision LINPACK
    factor/solve pair. Arithmetic rounds to f32 at each operation, so the
    pipeline's results can be compared bit-for-bit. *)

val to_f32 : float -> float

val saxpy : a:float -> x:float array -> y:float array -> unit
(** In-place y := y + a*x with f32 rounding. *)

val saxpy_inputs : n:int -> float array * float array
(** The initial x and y of [Fortran_sources.saxpy]. *)

val sgesl_update : n:int -> a:float array -> b:float array -> ipvt:int array -> unit
(** The paper's Listing 6 loop nest, sequential. *)

val sgesl_inputs : n:int -> float array * float array * int array
val dot : x:float array -> y:float array -> float
val dot_inputs : n:int -> float array * float array

val idx : int -> int -> int -> int
(** Column-major flat index: [idx n i j] addresses A(i+1, j+1). *)

val sgefa : n:int -> float array -> int array -> int
(** LU factorisation with partial pivoting; returns info (0 = ok). *)

val sgesl : n:int -> float array -> int array -> float array -> unit
(** Solve using sgefa's factors (job = 0). *)

val residual : n:int -> float array -> float array -> float array -> float
(** ||A x - b||_inf for checking the solver. *)
