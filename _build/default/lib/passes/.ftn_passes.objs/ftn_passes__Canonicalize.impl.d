lib/passes/canonicalize.ml: Arith Attr Builder Fmt Ftn_dialects Ftn_ir Hashtbl List Op Pass String Types Value
