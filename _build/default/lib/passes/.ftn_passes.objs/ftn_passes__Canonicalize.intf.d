lib/passes/canonicalize.mli: Ftn_ir
