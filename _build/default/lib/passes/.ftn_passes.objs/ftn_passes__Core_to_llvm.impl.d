lib/passes/core_to_llvm.ml: Attr Builder Fmt Ftn_dialects Ftn_ir Func_d Hashtbl List Llvm_d Op Option Pass Scf String Types Value
