lib/passes/core_to_llvm.mli: Ftn_ir
