lib/passes/hls_to_func.ml: Attr Builder Ftn_dialects Ftn_ir Func_d Hashtbl List Op Pass Types Value
