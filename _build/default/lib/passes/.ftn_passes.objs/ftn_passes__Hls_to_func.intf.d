lib/passes/hls_to_func.mli: Ftn_ir
