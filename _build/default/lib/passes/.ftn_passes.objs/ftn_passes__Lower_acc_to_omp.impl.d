lib/passes/lower_acc_to_omp.ml: Acc Attr Ftn_dialects Ftn_ir List Omp Op Option Pass
