lib/passes/lower_acc_to_omp.mli: Ftn_ir
