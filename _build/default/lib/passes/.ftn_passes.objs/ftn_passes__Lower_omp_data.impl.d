lib/passes/lower_omp_data.ml: Arith Builder Device Ftn_dialects Ftn_ir Hashtbl List Memref_d Omp Op Option Pass Scf String Types Value
