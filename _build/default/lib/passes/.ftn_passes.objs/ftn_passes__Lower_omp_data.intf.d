lib/passes/lower_omp_data.mli: Ftn_ir
