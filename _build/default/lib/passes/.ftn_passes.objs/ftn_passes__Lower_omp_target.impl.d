lib/passes/lower_omp_target.ml: Attr Builder Builtin Device Fmt Ftn_dialects Ftn_ir Func_d List Omp Op Option Pass String Types Value
