lib/passes/lower_omp_target.mli: Ftn_ir
