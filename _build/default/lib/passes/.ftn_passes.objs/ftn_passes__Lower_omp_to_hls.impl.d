lib/passes/lower_omp_to_hls.ml: Arith Attr Builder Float Fmt Ftn_dialects Ftn_ir Func_d Hls List Memref_d Omp Op Pass Scf String Types Value
