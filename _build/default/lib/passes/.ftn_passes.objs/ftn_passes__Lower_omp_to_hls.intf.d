lib/passes/lower_omp_to_hls.mli: Ftn_ir
