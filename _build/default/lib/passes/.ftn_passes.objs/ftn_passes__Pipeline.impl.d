lib/passes/pipeline.ml: Canonicalize Core_to_llvm Ftn_ir Hls_to_func Lower_acc_to_omp Lower_omp_data Lower_omp_target Lower_omp_to_hls Op Pass Split_modules
