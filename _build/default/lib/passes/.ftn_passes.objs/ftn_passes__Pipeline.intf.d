lib/passes/pipeline.mli: Ftn_ir Lower_omp_data Lower_omp_to_hls
