lib/passes/split_modules.ml: Builtin Ftn_dialects Ftn_ir List Op
