lib/passes/split_modules.mli: Ftn_ir
