(** Canonicalisation: constant folding, per-block CSE of pure ops,
    store-to-load forwarding on scalar allocas (the paper's "simple
    canonicalisation to remove dependencies between loop iterations"),
    dead-code and dead-allocation elimination. The individual sweeps are
    exposed for testing and ablation. *)

val fold_constants : Ftn_ir.Op.t -> Ftn_ir.Op.t
val cse : Ftn_ir.Op.t -> Ftn_ir.Op.t
val forward_stores : Ftn_ir.Op.t -> Ftn_ir.Op.t
val dce : Ftn_ir.Op.t -> Ftn_ir.Op.t
val dead_alloca_elimination : Ftn_ir.Op.t -> Ftn_ir.Op.t

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
(** All sweeps, in order, with a final DCE. *)

val pass : Ftn_ir.Pass.t
