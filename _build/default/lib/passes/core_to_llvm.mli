(** Core dialects -> llvm dialect (mlir-opt's role in the paper's flow):
    structured control flow flattens into CFG blocks with block arguments
    as phis, memrefs become pointers with explicit row-major linearisation,
    index widens to i64, math ops become libm calls. Applied to the device
    module before LLVM-IR emission. *)

exception Unsupported of string

val convert_ty : Ftn_ir.Types.t -> Ftn_ir.Types.t

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
