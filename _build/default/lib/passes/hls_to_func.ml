(* "lower HLS to func call" (after Stencil-HMLS [20]): operations of the
   hls dialect become func.call operations on well-known intrinsic symbols.
   mlir-opt can then lower the module to the llvm dialect, and the AMD
   backend integration of [19] maps these calls onto Vitis HLS LLVM-IR
   primitives. The protocol token materialised by hls.axi_protocol folds
   into its integer kind operand. *)

open Ftn_ir
open Ftn_dialects

let spec_interface = "_ssdm_op_SpecInterface"
let spec_pipeline = "_ssdm_op_SpecPipeline"
let spec_unroll = "_ssdm_op_SpecUnroll"
let spec_array_partition = "_ssdm_op_SpecArrayPartition"
let spec_dataflow = "_ssdm_op_SpecDataflow"
let stream_read = "_hls_stream_read"
let stream_write = "_hls_stream_write"

let run m =
  let b = Builder.for_op m in
  let used = ref [] in
  let use name arg_tys =
    if not (List.mem_assoc name !used) then used := (name, arg_tys) :: !used
  in
  (* protocol token -> underlying i32 kind value *)
  let proto_subst : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let resolve v =
    match Hashtbl.find_opt proto_subst (Value.id v) with
    | Some v' -> v'
    | None -> v
  in
  let rec walk_op op =
    let op = { op with Op.operands = List.map resolve op.Op.operands } in
    let op =
      {
        op with
        Op.regions =
          List.map
            (fun blocks ->
              List.map
                (fun blk ->
                  { blk with Op.body = List.concat_map walk_op blk.Op.body })
                blocks)
            op.Op.regions;
      }
    in
    match Op.name op with
    | "hls.axi_protocol" ->
      Hashtbl.replace proto_subst
        (Value.id (Op.result1 op))
        (List.hd (Op.operands op));
      []
    | "hls.interface" ->
      use spec_interface [];
      [
        Op.make "func.call" ~operands:(Op.operands op)
          ~attrs:
            (("callee", Attr.Symbol spec_interface) :: Op.attrs op);
      ]
    | "hls.pipeline" ->
      use spec_pipeline [ Types.I32 ];
      [
        Op.make "func.call" ~operands:(Op.operands op)
          ~attrs:[ ("callee", Attr.Symbol spec_pipeline) ];
      ]
    | "hls.unroll" ->
      use spec_unroll [ Types.I32 ];
      [
        Op.make "func.call" ~operands:(Op.operands op)
          ~attrs:[ ("callee", Attr.Symbol spec_unroll) ];
      ]
    | "hls.array_partition" ->
      use spec_array_partition [];
      [
        Op.make "func.call" ~operands:(Op.operands op)
          ~attrs:
            (("callee", Attr.Symbol spec_array_partition) :: Op.attrs op);
      ]
    | "hls.dataflow" ->
      use spec_dataflow [];
      [
        Op.make "func.call"
          ~attrs:[ ("callee", Attr.Symbol spec_dataflow) ];
      ]
    | "hls.stream_read" ->
      use stream_read [];
      [
        Op.make "func.call" ~operands:(Op.operands op)
          ~results:(Op.results op)
          ~attrs:[ ("callee", Attr.Symbol stream_read) ];
      ]
    | "hls.stream_write" ->
      use stream_write [];
      [
        Op.make "func.call" ~operands:(Op.operands op)
          ~attrs:[ ("callee", Attr.Symbol stream_write) ];
      ]
    | _ -> [ op ]
  in
  ignore b;
  match walk_op m with
  | [ m' ] ->
    if Op.is_module m' && !used <> [] then begin
      let decls =
        List.map
          (fun (name, arg_tys) ->
            Func_d.func_decl ~sym_name:name ~arg_tys ~result_tys:[] ())
          (List.rev !used)
      in
      Op.with_module_body m' (decls @ Op.module_body m')
    end
    else m'
  | _ -> invalid_arg "hls_to_func: module vanished"

let pass = Pass.make "lower-hls-to-func-call" run
