(** "lower HLS to func call" (after Stencil-HMLS [20]): hls-dialect
    operations become func.call on intrinsic symbols (declarations are
    added to the module); hls.axi_protocol tokens fold into their integer
    kind operands. The AMD backend mapping of [19] later renames these to
    the Vitis [_ssdm_op_*] primitives. *)

val spec_interface : string
val spec_pipeline : string
val spec_unroll : string
val spec_array_partition : string
val spec_dataflow : string
val stream_read : string
val stream_write : string

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
