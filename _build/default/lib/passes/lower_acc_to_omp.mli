(** OpenACC -> OpenMP lowering: structurally converts the acc dialect onto
    the omp dialect (copyin=to, copyout=from, copy=tofrom, create=alloc;
    acc.parallel -> omp.target; acc.loop -> omp.parallel_do with
    vector_length as simd simdlen) so the entire existing device pipeline
    applies unchanged — the OpenACC integration the paper's conclusions
    name as further work. A no-op on acc-free modules. *)

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
