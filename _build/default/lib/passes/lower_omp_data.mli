(** "lower omp mapped data" (paper, Section 3): rewrites omp.map_info /
    omp.bounds_info and the data-region operations into device dialect
    operations plus DMA transfers, with the reference-counting scheme that
    makes nested regions and implicit [tofrom] maps transfer only on the
    outermost entry/exit. *)

type options = {
  memory_space : int;  (** First memory space for mapped data (1 = HBM bank 0). *)
  hbm_banks : int;
      (** When > 1, distinct identifiers spread round-robin over this many
          consecutive memory spaces (the U280's separate HBM banks). *)
}

val default_options : options

val run : ?options:options -> Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : ?options:options -> unit -> Ftn_ir.Pass.t
