(* "lower omp target region" (paper, Section 3): rewrites each omp.target
   into device.kernel_create / device.kernel_launch / device.kernel_wait,
   which map closely onto the OpenCL host API and give the flexibility to
   schedule kernels asynchronously.

   A second step outlines the kernel region into a func.func placed in a
   nested builtin.module carrying the attribute target = "fpga" (Listing 2
   of the paper); the kernel_create op is left with an empty region and a
   device_function symbol naming the outlined function. *)

open Ftn_ir
open Ftn_dialects

let kernel_counter = ref 0

let fresh_kernel_name enclosing =
  incr kernel_counter;
  Fmt.str "%s_kernel_%d" enclosing !kernel_counter

(* --- step 1: omp.target -> device.kernel_* --- *)

let to_kernel_ops m =
  let b = Builder.for_op m in
  let rec walk_op ~enclosing op =
    let enclosing =
      if Func_d.is_func op then
        Option.value ~default:enclosing (Func_d.func_name op)
      else enclosing
    in
    let op =
      {
        op with
        Op.regions =
          List.map
            (fun blocks ->
              List.map
                (fun blk ->
                  {
                    blk with
                    Op.body =
                      List.concat_map (walk_op ~enclosing) blk.Op.body;
                  })
                blocks)
            op.Op.regions;
      }
    in
    if Omp.is_target op then begin
      let name = fresh_kernel_name enclosing in
      let blk = Op.region_block op 0 in
      (* strip the omp.terminator; the outlined function will return *)
      let body =
        List.filter
          (fun o -> not (String.equal (Op.name o) "omp.terminator"))
          blk.Op.body
      in
      let create =
        Builder.op1 b "device.kernel_create" ~operands:(Op.operands op)
          ~attrs:[ ("device_function", Attr.Symbol name) ]
          ~regions:[ [ { blk with Op.body = body } ] ]
          Types.Kernel_handle
      in
      let handle = Op.result1 create in
      [ create; Device.kernel_launch handle; Device.kernel_wait handle ]
    end
    else [ op ]
  in
  match walk_op ~enclosing:"kernel" m with
  | [ m' ] -> m'
  | _ -> invalid_arg "lower_omp_target: module vanished"

(* --- step 2: outline kernel regions into a device module --- *)

let outline m =
  let b = Builder.for_op m in
  let device_funcs = ref [] in
  let rec walk_op op =
    let op =
      {
        op with
        Op.regions =
          List.map
            (fun blocks ->
              List.map
                (fun blk ->
                  { blk with Op.body = List.concat_map walk_op blk.Op.body })
                blocks)
            op.Op.regions;
      }
    in
    if Device.is_kernel_create op && Op.regions op <> [] then
      match Op.regions op with
      | [ [ blk ] ] when blk.Op.body <> [] ->
        let name =
          match Device.kernel_function op with
          | Some n -> n
          | None -> fresh_kernel_name "kernel"
        in
        (* Any free values used by the region beyond its block args become
           extra kernel arguments. *)
        let free =
          Value.Set.diff
            (Op.free_values_of_ops blk.Op.body)
            (Value.Set.of_list blk.Op.args)
        in
        let extra = Value.Set.elements free in
        let extra_args = List.map (fun v -> Builder.fresh b (Value.ty v)) extra in
        let subst =
          List.fold_left2
            (fun acc old_v new_v -> Value.Map.add old_v new_v acc)
            Value.Map.empty extra extra_args
        in
        let body =
          List.map (Op.substitute_map subst) blk.Op.body
          @ [ Func_d.return () ]
        in
        let fn =
          Func_d.func ~sym_name:name
            ~args:(blk.Op.args @ extra_args)
            ~result_tys:[] body
        in
        (* uniquify the outlined function's values *)
        let fn, _ = Builder.clone b fn in
        device_funcs := fn :: !device_funcs;
        [
          {
            op with
            Op.operands = Op.operands op @ extra;
            regions = [ Op.region [] ];
          };
        ]
      | _ -> [ op ]
    else [ op ]
  in
  let m' =
    match walk_op m with
    | [ m' ] -> m'
    | _ -> invalid_arg "outline: module vanished"
  in
  if !device_funcs = [] then m'
  else begin
    let device_module = Builtin.device_module (List.rev !device_funcs) in
    Op.with_module_body m' (Op.module_body m' @ [ device_module ])
  end

let run m = outline (to_kernel_ops m)

let pass = Pass.make "lower-omp-target-region" run
