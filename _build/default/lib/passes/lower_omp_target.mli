(** "lower omp target region" (paper, Section 3): rewrites omp.target into
    device.kernel_create / kernel_launch / kernel_wait and outlines each
    kernel region into a func.func inside a nested builtin.module with
    [target = "fpga"] (the paper's Listing 2). Free values of the region
    beyond its block arguments become extra kernel arguments. *)

val to_kernel_ops : Ftn_ir.Op.t -> Ftn_ir.Op.t
(** Step 1 only: omp.target -> device.kernel_* with the region in place. *)

val outline : Ftn_ir.Op.t -> Ftn_ir.Op.t
(** Step 2 only: move kernel regions into the device module. *)

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
