(** "lower omp loops to HLS" (paper, Section 3), run on the device module:
    inserts hls.interface port bindings (one m_axi bundle per array
    argument, s_axilite for scalars), turns omp.parallel_do into pipelined
    scf.for nests (hls.pipeline, plus hls.unroll for [simd simdlen(n)]),
    and rewrites [reduction] accumulators into n round-robin copies
    combined after the loop. *)

type options = {
  pipeline_ii : int;  (** Initiation interval passed to hls.pipeline. *)
  copies_f32 : int;  (** Reduction copies per datatype (chosen to cover *)
  copies_f64 : int;  (** the FP add latency, as in the paper). *)
  copies_int : int;
}

val default_options : options

val run : ?options:options -> Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : ?options:options -> unit -> Ftn_ir.Pass.t
