(* Separates the combined module produced by outlining into the host module
   (compiled to C++ with OpenCL by the host printer) and the device module
   (attribute target = "fpga", sent down the HLS path), as in the paper's
   Listing 2. *)

open Ftn_ir
open Ftn_dialects

type split = {
  host : Op.t;
  device : Op.t option;
}

let run m =
  if not (Op.is_module m) then invalid_arg "split_modules: not a module";
  let host_ops, device_modules =
    List.partition
      (fun op -> not (Builtin.is_device_module op))
      (Op.module_body m)
  in
  let host = Op.with_module_body m host_ops in
  let device =
    match device_modules with
    | [] -> None
    | [ d ] -> Some d
    | many ->
      (* merge multiple device modules into one *)
      let body = List.concat_map Op.module_body many in
      Some (Builtin.device_module body)
  in
  { host; device }

let device_exn split =
  match split.device with
  | Some d -> d
  | None -> invalid_arg "split_modules: no device module (no omp target?)"
