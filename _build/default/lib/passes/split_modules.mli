(** Separates the combined module produced by outlining into the host
    module (for the C++/OpenCL printer) and the device module
    ([target = "fpga"], for the HLS path) — the split of the paper's
    Listing 2. *)

type split = {
  host : Ftn_ir.Op.t;
  device : Ftn_ir.Op.t option;
}

val run : Ftn_ir.Op.t -> split
val device_exn : split -> Ftn_ir.Op.t
