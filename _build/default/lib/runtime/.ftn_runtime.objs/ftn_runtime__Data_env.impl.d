lib/runtime/data_env.ml: Fmt Ftn_interp Ftn_ir Hashtbl List Rtval String
