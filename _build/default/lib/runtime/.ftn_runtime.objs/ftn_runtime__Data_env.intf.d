lib/runtime/data_env.mli: Ftn_interp Ftn_ir
