lib/runtime/executor.ml: Bitstream Data_env Fmt Fpga_spec Ftn_hlsim Ftn_interp Ftn_ir Fun Hashtbl Interp Intrinsics List Op Option Rtval Timing Trace Types Value
