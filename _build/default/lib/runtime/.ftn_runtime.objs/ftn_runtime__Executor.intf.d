lib/runtime/executor.mli: Data_env Ftn_hlsim Ftn_interp Ftn_ir Trace
