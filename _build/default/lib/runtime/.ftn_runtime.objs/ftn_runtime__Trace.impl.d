lib/runtime/trace.ml: Fmt List
