lib/runtime/trace.mli: Format
