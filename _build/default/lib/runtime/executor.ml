(* Host-module executor: interprets the host module produced by the
   pipeline, giving the device dialect its runtime semantics against the
   simulated FPGA. Kernels named by device.kernel_create are executed
   functionally through the interpreter (so results are real numbers) while
   the timing model charges the simulated device timeline for transfers,
   launches, allocations and kernel cycles. *)

open Ftn_ir
open Ftn_interp
open Ftn_hlsim

exception Runtime_error of string

type kernel_handle = {
  kh_design : Bitstream.kernel_design;
  kh_args : Rtval.t list;
}

type context = {
  spec : Fpga_spec.t;
  bitstream : Bitstream.t;
  data : Data_env.t;
  trace : Trace.t;
  handles : (int, kernel_handle) Hashtbl.t;
  mutable next_handle : int;
  mutable device_time_s : float;  (** Simulated device-related time. *)
  mutable kernel_time_s : float;
  mutable transfer_time_s : float;
  mutable overhead_time_s : float;
  mutable kernel_state : Interp.state option;
      (** Lazily-created interpreter used when kernels are launched through
          the host API rather than from an interpreted host module. *)
  sink : Intrinsics.sink;
}

type result = {
  output : string;
  device_time_s : float;
  kernel_time_s : float;
  transfer_time_s : float;
  overhead_time_s : float;
  kernel_launches : int;
  bytes_transferred : int;
  trace : Trace.t;
  data : Data_env.t;
}

let create_context ?(spec = Fpga_spec.u280) ?(echo = false) bitstream =
  {
    spec;
    bitstream;
    data = Data_env.create ();
    trace = Trace.create ();
    handles = Hashtbl.create 8;
    next_handle = 0;
    device_time_s = 0.0;
    kernel_time_s = 0.0;
    transfer_time_s = 0.0;
    overhead_time_s = 0.0;
    kernel_state = None;
    sink = Intrinsics.make_sink ~echo ();
  }

let charge_overhead (ctx : context) t =
  ctx.device_time_s <- ctx.device_time_s +. t;
  ctx.overhead_time_s <- ctx.overhead_time_s +. t

let charge_transfer (ctx : context) t =
  ctx.device_time_s <- ctx.device_time_s +. t;
  ctx.transfer_time_s <- ctx.transfer_time_s +. t

let charge_kernel (ctx : context) t =
  ctx.device_time_s <- ctx.device_time_s +. t;
  ctx.kernel_time_s <- ctx.kernel_time_s +. t

let name_and_space op =
  match Op.string_attr op "name" with
  | Some name ->
    (name, Option.value ~default:0 (Op.int_attr op "memory_space"))
  | None -> raise (Runtime_error (Op.name op ^ " without a name attribute"))

let resolve_shape mi dynamic =
  let rec go shape dynamic =
    match (shape, dynamic) with
    | [], _ -> []
    | Types.Static n :: rest, dynamic -> n :: go rest dynamic
    | Types.Dynamic :: rest, d :: dynamic -> d :: go rest dynamic
    | Types.Dynamic :: _, [] ->
      raise (Runtime_error "missing dynamic size for device.alloc")
  in
  go mi.Types.shape dynamic

(* Execute one kernel: run its function body in the interpreter with loop
   statistics recording, then convert the statistics to cycles. *)
let execute_kernel (ctx : context) state (design : Bitstream.kernel_design) args =
  let stats = Timing.make_stats () in
  let saved = state.Interp.on_loop in
  state.Interp.on_loop <-
    Some (fun ~loop_key ~iters -> Timing.record_loop stats ~loop_key ~iters);
  Fun.protect
    ~finally:(fun () -> state.Interp.on_loop <- saved)
    (fun () ->
      ignore (Interp.call_function state design.Bitstream.kd_function args));
  let t = Timing.kernel_time_s ctx.spec design.Bitstream.kd_schedule stats in
  let overhead = Timing.launch_overhead_s ctx.spec in
  charge_kernel ctx t;
  charge_overhead ctx overhead;
  Trace.record ctx.trace
    (Trace.Launch
       {
         kernel = design.Bitstream.kd_name;
         kernel_time_s = t;
         overhead_s = overhead;
       })

(* --- host API: the OpenCL-level operations a (hand-written) host
   program performs against the simulated device. The interpreter handler
   below routes the device dialect through these same functions. --- *)

let api_alloc (ctx : context) ~name ~memory_space ~elt ~shape =
  let buffer, fresh =
    Data_env.alloc ctx.data ~name ~memory_space ~elt ~shape
  in
  if fresh then begin
    charge_overhead ctx (Timing.alloc_overhead_s ctx.spec);
    Trace.record ctx.trace
      (Trace.Alloc
         {
           name;
           bytes = Rtval.byte_size buffer;
           time_s = Timing.alloc_overhead_s ctx.spec;
         })
  end;
  buffer

let api_transfer (ctx : context) ~src ~dst =
  if src.Rtval.memory_space <> dst.Rtval.memory_space then begin
    let bytes = min (Rtval.byte_size src) (Rtval.byte_size dst) in
    let t = Timing.transfer_time_s ctx.spec ~bytes in
    charge_transfer ctx t;
    let direction =
      if dst.Rtval.memory_space > 0 then Trace.Host_to_device
      else Trace.Device_to_host
    in
    Trace.record ctx.trace
      (Trace.Transfer { name = ""; direction; bytes; time_s = t })
  end;
  Rtval.copy_into ~src ~dst

let kernel_interp_state (ctx : context) =
  match ctx.kernel_state with
  | Some s -> s
  | None ->
    let device_module =
      Op.module_op
        (List.map
           (fun k -> k.Bitstream.kd_function)
           ctx.bitstream.Bitstream.kernels)
    in
    let s =
      Interp.make
        ~handlers:
          [ Intrinsics.print_handler ctx.sink;
            Intrinsics.runtime_library_handler ]
        [ device_module ]
    in
    ctx.kernel_state <- Some s;
    s

let api_launch (ctx : context) ~kernel args =
  match Bitstream.find_kernel ctx.bitstream kernel with
  | Some design -> execute_kernel ctx (kernel_interp_state ctx) design args
  | None ->
    raise
      (Runtime_error
         (Fmt.str "kernel %s not found in bitstream %s" kernel
            ctx.bitstream.Bitstream.xclbin_name))

let summary (ctx : context) =
  ( ctx.device_time_s,
    ctx.kernel_time_s,
    ctx.transfer_time_s,
    ctx.overhead_time_s )

(* The interpreter handler implementing device.* ops and intercepting DMA
   transfers that touch device memory. *)
let device_handler (ctx : context) : Interp.handler =
 fun state _frame op operands ->
  match Op.name op with
  | "device.alloc" ->
    let name, memory_space = name_and_space op in
    (match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let shape = resolve_shape mi (List.map Rtval.as_int operands) in
      let buffer =
        api_alloc ctx ~name ~memory_space ~elt:mi.Types.elt ~shape
      in
      Some [ Rtval.Buf buffer ]
    | _ -> raise (Runtime_error "device.alloc must produce a memref"))
  | "device.lookup" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Buf (Data_env.lookup_exn ctx.data ~name ~memory_space) ]
  | "device.data_check_exists" ->
    let name, memory_space = name_and_space op in
    Some [ Rtval.Bool (Data_env.exists ctx.data ~name ~memory_space) ]
  | "device.data_acquire" ->
    let name, memory_space = name_and_space op in
    Data_env.acquire ctx.data ~name ~memory_space;
    Some []
  | "device.data_release" ->
    let name, memory_space = name_and_space op in
    Data_env.release ctx.data ~name ~memory_space;
    Some []
  | "device.counter_get" ->
    let name, memory_space = (Option.value ~default:"" (Op.string_attr op "name"), 1) in
    Some [ Rtval.Int (Data_env.refcount ctx.data ~name ~memory_space) ]
  | "device.kernel_create" -> (
    match Op.symbol_attr op "device_function" with
    | Some fname -> (
      match Bitstream.find_kernel ctx.bitstream fname with
      | Some design ->
        let h = ctx.next_handle in
        ctx.next_handle <- h + 1;
        Hashtbl.replace ctx.handles h { kh_design = design; kh_args = operands };
        Some [ Rtval.Handle h ]
      | None ->
        raise
          (Runtime_error
             (Fmt.str "kernel %s not found in bitstream %s" fname
                ctx.bitstream.Bitstream.xclbin_name)))
    | None ->
      raise (Runtime_error "device.kernel_create without device_function"))
  | "device.kernel_launch" -> (
    match operands with
    | [ Rtval.Handle h ] ->
      (match Hashtbl.find_opt ctx.handles h with
      | Some kh -> execute_kernel ctx state kh.kh_design kh.kh_args
      | None -> raise (Runtime_error "launch of unknown kernel handle"));
      Some []
    | _ -> raise (Runtime_error "device.kernel_launch expects a handle"))
  | "device.kernel_wait" -> Some []
  | "memref.dma_start" -> (
    match operands with
    | [ src; dst ] ->
      api_transfer ctx ~src:(Rtval.as_buffer src) ~dst:(Rtval.as_buffer dst);
      Some []
    | _ -> None)
  | _ -> None

(* Run the host module's main (or a named entry) against a bitstream. *)
let run ?spec ?(echo = false) ?entry ?(args = []) ~host ~bitstream () =
  let ctx = create_context ?spec ~echo bitstream in
  let handlers =
    [
      device_handler ctx;
      Intrinsics.print_handler ctx.sink;
      Intrinsics.runtime_library_handler;
    ]
  in
  let state = Interp.make ~handlers [ host ] in
  (match entry with
  | Some entry -> ignore (Interp.run state ~entry ~args)
  | None -> (
    match Interp.main_function host with
    | Some fn -> ignore (Interp.call_function state fn args)
    | None -> raise (Runtime_error "host module has no main program")));
  {
    output = Intrinsics.contents ctx.sink;
    device_time_s = ctx.device_time_s;
    kernel_time_s = ctx.kernel_time_s;
    transfer_time_s = ctx.transfer_time_s;
    overhead_time_s = ctx.overhead_time_s;
    kernel_launches = Trace.count_launches ctx.trace;
    bytes_transferred = Trace.bytes_transferred ctx.trace;
    trace = ctx.trace;
    data = ctx.data;
  }

(* Build a result record from an API-driven context (hand-written host). *)
let result_of_context (ctx : context) =
  {
    output = Intrinsics.contents ctx.sink;
    device_time_s = ctx.device_time_s;
    kernel_time_s = ctx.kernel_time_s;
    transfer_time_s = ctx.transfer_time_s;
    overhead_time_s = ctx.overhead_time_s;
    kernel_launches = Trace.count_launches ctx.trace;
    bytes_transferred = Trace.bytes_transferred ctx.trace;
    trace = ctx.trace;
    data = ctx.data;
  }

(* CPU reference: run the core-level module with sequential OpenMP
   semantics (no device). *)
let run_cpu ?(echo = false) ?entry ?(args = []) core_module =
  let sink = Intrinsics.make_sink ~echo () in
  let handlers =
    [ Intrinsics.print_handler sink; Intrinsics.runtime_library_handler ]
  in
  let state = Interp.make ~handlers [ core_module ] in
  (match entry with
  | Some entry -> ignore (Interp.run state ~entry ~args)
  | None -> (
    match Interp.main_function core_module with
    | Some fn -> ignore (Interp.call_function state fn args)
    | None -> raise (Runtime_error "module has no main program")));
  (Intrinsics.contents sink, state.Interp.steps)
