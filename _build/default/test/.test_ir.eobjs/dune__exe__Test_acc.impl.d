test/test_acc.ml: Acc_parser Alcotest Array Ast Astring_like Core Frontend Ftn_frontend Ftn_hlsim Ftn_ir Ftn_linpack Ftn_passes List Op Option Printf Verifier
