test/test_acc.mli:
