test/test_codegen.ml: Alcotest Astring_like Core Filename Ftn_codegen Ftn_linpack Lazy List Llvm_downgrade Option Printf Sys
