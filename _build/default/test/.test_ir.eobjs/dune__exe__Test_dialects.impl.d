test/test_dialects.ml: Alcotest Arith Attr Builder Device Dialect Fir Ftn_dialects Ftn_ir Func_d Hls List Llvm_d Memref_d Omp Op Registry Scf Types Value
