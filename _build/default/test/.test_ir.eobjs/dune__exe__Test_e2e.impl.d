test/test_e2e.ml: Alcotest Array Astring_like Core Executor Float Ftn_frontend Ftn_hlsim Ftn_ir Ftn_linpack Ftn_passes Ftn_runtime List Option Printf Trace
