test/test_frontend.ml: Alcotest Ast Astring_like Attr Frontend Ftn_frontend Ftn_ir Ftn_runtime List Omp_parser Op Sema Src_lexer Src_parser Types Value
