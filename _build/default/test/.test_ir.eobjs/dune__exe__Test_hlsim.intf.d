test/test_hlsim.mli:
