test/test_interp.ml: Alcotest Arith Astring_like Builder Float Ftn_dialects Ftn_frontend Ftn_interp Ftn_ir Ftn_runtime Func_d Interp List Math_d Memref_d Op Rtval Scf Types Verifier
