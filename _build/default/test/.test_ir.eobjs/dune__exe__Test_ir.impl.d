test/test_ir.ml: Alcotest Attr Builder Fmt Ftn_dialects Ftn_ir Ir_parser List Op Pass Printer Rewrite Types Value Verifier
