test/test_linpack.ml: Alcotest Array Astring_like Float Fortran_sources Ftn_dialects Ftn_frontend Ftn_ir Ftn_linpack Hls_baselines List References
