test/test_linpack.mli:
