test/test_runtime.ml: Alcotest Array Astring_like Core Data_env Executor Float Ftn_hlsim Ftn_interp Ftn_ir Ftn_linpack Ftn_runtime List Option Rtval String Synth Trace
