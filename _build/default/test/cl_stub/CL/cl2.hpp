// Minimal OpenCL C++ binding stub: just enough surface for syntax-checking
// the host code emitted by Ftn_codegen.Host_cpp (no real OpenCL needed).
#pragma once
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#define CL_DEVICE_TYPE_ACCELERATOR 1
#define CL_MEM_READ_WRITE 1
#define CL_MEM_EXT_PTR_XILINX 2
#define CL_TRUE 1
#define CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE 1
#define XCL_MEM_DDR_BANK0 0u
#define CL_MEM_SIZE 0x1102

typedef struct {
  unsigned flags;
  void *obj;
  void *param;
} cl_mem_ext_ptr_t;

namespace cl {

class Device {
public:
  Device() = default;
};

class Platform {
public:
  static void get(std::vector<Platform> *) {}
  void getDevices(int, std::vector<Device> *) {}
};

class Context {
public:
  Context() = default;
  explicit Context(const Device &) {}
};

class Buffer {
public:
  Buffer() = default;
  Buffer(const Context &, int, size_t, cl_mem_ext_ptr_t *) {}
  template <int I> size_t getInfo() const { return 0; }
};

class Program {
public:
  using Binaries = std::vector<std::pair<const unsigned char *, size_t>>;
  Program() = default;
  Program(const Context &, const std::vector<Device> &, const Binaries &) {}
};

class Kernel {
public:
  Kernel() = default;
  Kernel(const Program &, const char *) {}
  template <typename T> void setArg(int, const T &) {}
};

class Event {
public:
  void wait() {}
};

class CommandQueue {
public:
  CommandQueue() = default;
  CommandQueue(const Context &, const Device &, int = 0) {}
  void enqueueWriteBuffer(const Buffer &, int, size_t, size_t, const void *) {}
  void enqueueReadBuffer(const Buffer &, int, size_t, size_t, void *) {}
  void enqueueCopyBuffer(const Buffer &, const Buffer &, size_t, size_t, size_t) {}
  void enqueueTask(const Kernel &, void *, Event *) {}
  void finish() {}
};

} // namespace cl
