(* Tests for the OpenACC path: directive parsing, acc dialect lowering,
   the acc-to-omp conversion, and end-to-end equivalence with OpenMP. *)

open Ftn_frontend
open Ftn_ir

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let count name m = Op.count (fun o -> Op.name o = name) m

let parser_tests =
  [
    tc "parallel loop with clauses" (fun () ->
        match Acc_parser.parse "parallel loop copyin(x) copy(y) vector_length(8)" with
        | Acc_parser.Parallel_loop
            [ Ast.Cl_map (Ast.Map_to, [ "x" ]);
              Ast.Cl_map (Ast.Map_tofrom, [ "y" ]); Ast.Cl_simdlen 8 ] ->
          ()
        | _ -> Alcotest.fail "clauses");
    tc "copyout and create map kinds" (fun () ->
        match Acc_parser.parse "data copyout(a) create(tmp)" with
        | Acc_parser.Data
            [ Ast.Cl_map (Ast.Map_from, [ "a" ]);
              Ast.Cl_map (Ast.Map_alloc, [ "tmp" ]) ] ->
          ()
        | _ -> Alcotest.fail "data clauses");
    tc "schedule words are accepted and ignored" (fun () ->
        match Acc_parser.parse "parallel loop gang vector copy(y)" with
        | Acc_parser.Parallel_loop [ Ast.Cl_map (Ast.Map_tofrom, [ "y" ]) ] -> ()
        | _ -> Alcotest.fail "gang/vector");
    tc "reduction clause" (fun () ->
        match Acc_parser.parse "parallel loop reduction(+:s)" with
        | Acc_parser.Parallel_loop [ Ast.Cl_reduction (Ast.Red_add, [ "s" ]) ] -> ()
        | _ -> Alcotest.fail "reduction");
    tc "update host and device" (fun () ->
        (match Acc_parser.parse "update host(a)" with
        | Acc_parser.Update [ Ast.Cl_from [ "a" ] ] -> ()
        | _ -> Alcotest.fail "host");
        match Acc_parser.parse "update device(b)" with
        | Acc_parser.Update [ Ast.Cl_to [ "b" ] ] -> ()
        | _ -> Alcotest.fail "device");
    tc "enter and exit data" (fun () ->
        (match Acc_parser.parse "enter data copyin(a)" with
        | Acc_parser.Enter_data _ -> ()
        | _ -> Alcotest.fail "enter");
        match Acc_parser.parse "exit data copyout(a)" with
        | Acc_parser.Exit_data _ -> ()
        | _ -> Alcotest.fail "exit");
    tc "end directives" (fun () ->
        match Acc_parser.parse "end parallel loop" with
        | Acc_parser.End_directive "parallel loop" -> ()
        | _ -> Alcotest.fail "end");
    tc "unknown clause rejected" (fun () ->
        try
          ignore (Acc_parser.parse "parallel loop async(1)");
          Alcotest.fail "expected error"
        with Acc_parser.Acc_error _ -> ());
    tc "kernels loop is an alias" (fun () ->
        match Acc_parser.parse "kernels loop copy(y)" with
        | Acc_parser.Parallel_loop _ -> ()
        | _ -> Alcotest.fail "kernels loop");
  ]

let acc_saxpy n =
  Printf.sprintf
    "program p\nreal :: x(%d), y(%d)\nreal :: a\ninteger :: i\na = 2.0\ndo i = 1, %d\nx(i) = real(i) * 0.5\ny(i) = real(%d - i) * 0.25\nend do\n!$acc parallel loop copyin(x) copy(y) vector_length(4)\ndo i = 1, %d\ny(i) = y(i) + a * x(i)\nend do\n!$acc end parallel loop\nend program"
    n n n n n

let lowering_tests =
  [
    tc "frontend emits acc dialect ops" (fun () ->
        let fir = Frontend.to_fir (acc_saxpy 16) in
        check Alcotest.int "copy_info" 3 (count "acc.copy_info" fir);
        check Alcotest.int "parallel" 1 (count "acc.parallel" fir);
        check Alcotest.int "loop" 1 (count "acc.loop" fir);
        Verifier.verify_exn (Frontend.to_core (acc_saxpy 16)));
    tc "implicit scalar capture" (fun () ->
        (* a is not named in any clause but used in the region *)
        let fir = Frontend.to_fir (acc_saxpy 16) in
        let infos = Op.collect (fun o -> Op.name o = "acc.copy_info") fir in
        let implicit =
          List.filter (fun o -> Op.bool_attr o "implicit" = Some true) infos
        in
        check Alcotest.int "one implicit" 1 (List.length implicit);
        check (Alcotest.option Alcotest.string) "it is a" (Some "a")
          (Op.string_attr (List.hd implicit) "var_name"));
    tc "acc-to-omp conversion is structural" (fun () ->
        let core = Frontend.to_core (acc_saxpy 16) in
        let m = Ftn_passes.Lower_acc_to_omp.run core in
        check Alcotest.int "no acc left" 0
          (Op.count (fun o -> Op.dialect o = "acc") m);
        check Alcotest.int "maps" 3 (count "omp.map_info" m);
        check Alcotest.int "target" 1 (count "omp.target" m);
        check Alcotest.int "parallel_do" 1 (count "omp.parallel_do" m);
        Verifier.verify_exn m;
        (* vector_length became simd simdlen *)
        let pd = List.hd (Op.collect (fun o -> Op.name o = "omp.parallel_do") m) in
        check (Alcotest.option Alcotest.bool) "simd" (Some true)
          (Op.bool_attr pd "simd");
        check (Alcotest.option Alcotest.int) "simdlen" (Some 4)
          (Op.int_attr pd "simdlen"));
    tc "acc data region lowers to target data" (fun () ->
        let src =
          "program p\nreal :: a(8)\ninteger :: i\n!$acc data copyout(a)\n!$acc parallel loop\ndo i = 1, 8\na(i) = 1.0\nend do\n!$acc end parallel loop\n!$acc end data\nend program"
        in
        let m = Ftn_passes.Lower_acc_to_omp.run (Frontend.to_core src) in
        check Alcotest.int "target_data" 1 (count "omp.target_data" m));
    tc "acc update lowers with motion" (fun () ->
        let src =
          "program p\nreal :: a(4)\ninteger :: i\n!$acc data copyout(a)\n!$acc parallel loop\ndo i = 1, 4\na(i) = 2.0\nend do\n!$acc end parallel loop\n!$acc update host(a)\n!$acc end data\nend program"
        in
        let m = Ftn_passes.Lower_acc_to_omp.run (Frontend.to_core src) in
        let upd = List.hd (Op.collect (fun o -> Op.name o = "omp.target_update") m) in
        check (Alcotest.option Alcotest.string) "motion" (Some "from")
          (Op.string_attr upd "motion"));
  ]

let e2e_tests =
  [
    tc "acc saxpy equals omp saxpy bit for bit" (fun () ->
        let n = 64 in
        let acc_run = Core.Run.run (acc_saxpy n) in
        let x, y = Ftn_linpack.References.saxpy_inputs ~n in
        Ftn_linpack.References.saxpy ~a:2.0 ~x ~y;
        let got = Option.get (Core.Run.device_floats acc_run ~name:"y") in
        Array.iteri
          (fun i v ->
            if v <> y.(i) then Alcotest.failf "y(%d): %f vs %f" i v y.(i))
          got);
    tc "acc kernel synthesises with identical resources" (fun () ->
        let acc_run = Core.Run.run (acc_saxpy 64) in
        let r =
          (List.hd acc_run.Core.Run.bitstream.Ftn_hlsim.Bitstream.kernels)
            .Ftn_hlsim.Bitstream.kd_resources
        in
        (* simdlen 4: fewer unrolled MACs than the simdlen-10 table value *)
        check Alcotest.bool "plausible LUT" true
          (r.Ftn_hlsim.Resources.lut_pct > 7.5
          && r.Ftn_hlsim.Resources.lut_pct < 9.0));
    tc "acc reduction works end to end" (fun () ->
        let src =
          "program p\nreal :: x(32)\nreal :: s\ninteger :: i\ndo i = 1, 32\nx(i) = real(i)\nend do\ns = 0.0\n!$acc parallel loop reduction(+:s)\ndo i = 1, 32\ns = s + x(i)\nend do\n!$acc end parallel loop\nprint *, s\nend program"
        in
        let run = Core.Run.run src in
        check Alcotest.bool "sum 528" true
          (Astring_like.contains (Core.Run.output run) "528"));
    tc "cpu semantics also cover acc" (fun () ->
        let out, _ = Core.Run.run_cpu (acc_saxpy 16) in
        check Alcotest.string "no output expected, runs clean" "" out);
  ]

let () =
  Alcotest.run "acc"
    [
      ("parser", parser_tests);
      ("lowering", lowering_tests);
      ("e2e", e2e_tests);
    ]
