(* Tests for the code generators: LLVM-IR emission (instructions, phi
   construction, constants), the AMD intrinsic mapping, the LLVM-7
   downgrade and the C++/OpenCL host printer. *)

open Ftn_codegen

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let contains = Astring_like.contains

let saxpy_art =
  lazy (Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:64))

let sgesl_art =
  lazy (Core.Compiler.compile (Ftn_linpack.Fortran_sources.sgesl ~n:16))

let llvm_text art = Option.get (Lazy.force art).Core.Compiler.llvm_ir

let llvm_tests =
  [
    tc "module header targets the AMD backend" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "triple" true (contains t "fpga64-xilinx-none");
        check Alcotest.bool "datalayout" true (contains t "target datalayout"));
    tc "kernel defined with typed pointer params" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "define" true (contains t "define void @saxpy");
        check Alcotest.bool "float ptr" true (contains t "float*"));
    tc "loop becomes phi + icmp + br" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "phi" true (contains t " = phi i64 ");
        check Alcotest.bool "icmp" true (contains t "icmp slt");
        check Alcotest.bool "cond br" true (contains t "br i1 ");
        check Alcotest.bool "back edge" true (contains t "br label %for_cond"));
    tc "memory access via getelementptr" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "gep" true (contains t "getelementptr float, float*");
        check Alcotest.bool "load" true (contains t "load float, float*");
        check Alcotest.bool "store" true (contains t "store float"));
    tc "fastmath arithmetic survives" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "fmul contract" true (contains t "fmul contract float");
        check Alcotest.bool "fadd contract" true (contains t "fadd contract float"));
    tc "intrinsic declarations are variadic after mapping" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "pipeline decl" true
          (contains t "declare void @_ssdm_op_SpecPipeline(...)");
        check Alcotest.bool "variadic call" true
          (contains t "call void (...) @_ssdm_op_SpecPipeline"));
    tc "unroll maps to the Vitis primitive name" (fun () ->
        let t = llvm_text saxpy_art in
        check Alcotest.bool "renamed" true
          (contains t "_ssdm_op_SpecLoopTripCount_Unroll"));
    tc "if statements produce merge blocks (sgesl host has none on device)"
      (fun () ->
        (* the sgesl device kernel is a single loop; use a kernel with a
           conditional to exercise emit_if *)
        let art =
          Core.Compiler.compile
            "program p\nreal :: a(8)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 8\nif (a(i) > 0.0) then\na(i) = a(i) * 2.0\nelse\na(i) = 0.0\nend if\nend do\n!$omp end target parallel do\nend program"
        in
        let t = Option.get art.Core.Compiler.llvm_ir in
        check Alcotest.bool "then label" true (contains t "if_then");
        check Alcotest.bool "merge label" true (contains t "if_merge"));
    tc "float constants fold inline in accepted forms" (fun () ->
        let art =
          Core.Compiler.compile
            "program p\nreal :: a(8)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 8\na(i) = a(i) * 2.5\nend do\n!$omp end target parallel do\nend program"
        in
        let t = Option.get art.Core.Compiler.llvm_ir in
        check Alcotest.bool "inline constant" true
          (contains t "2.500000e+00" || contains t "0x");
        (* no separate constant instruction exists in LLVM *)
        check Alcotest.bool "no mlir.constant" false (contains t "mlir.constant"));
  ]

let downgrade_tests =
  [
    tc "stamps the version header" (fun () ->
        let r = Llvm_downgrade.run "define void @f() {\nentry:\n  ret void\n}\n" in
        check Alcotest.bool "stamp" true
          (contains r.Llvm_downgrade.text "LLVM 7 compatible"));
    tc "strips post-7 attributes" (fun () ->
        let r =
          Llvm_downgrade.run
            "define void @f(i32 noundef %x) mustprogress willreturn {\n}"
        in
        check Alcotest.bool "noundef gone" false
          (contains r.Llvm_downgrade.text "noundef");
        check Alcotest.bool "mustprogress gone" false
          (contains r.Llvm_downgrade.text "mustprogress");
        let applied =
          List.filter (fun rw -> rw.Llvm_downgrade.rw_applied > 0) r.Llvm_downgrade.rewrites
        in
        check Alcotest.bool "rewrites recorded" true (List.length applied >= 2));
    tc "rewrites fneg" (fun () ->
        let r = Llvm_downgrade.run "  %1 = fneg float %0\n" in
        check Alcotest.bool "fsub" true
          (contains r.Llvm_downgrade.text "fsub -0.000000e+00"));
    tc "freeze cannot be downgraded" (fun () ->
        try
          ignore (Llvm_downgrade.run "  %1 = freeze i32 %0\n");
          Alcotest.fail "expected failure"
        with Failure _ -> ());
    tc "full pipeline text downgrades cleanly" (fun () ->
        let art = Lazy.force saxpy_art in
        match art.Core.Compiler.llvm_ir_downgraded with
        | Some t -> check Alcotest.bool "stamped" true (contains t "LLVM 7")
        | None -> Alcotest.fail "no downgraded IR");
  ]

let host_cpp_text art = Option.get (Lazy.force art).Core.Compiler.host_cpp

let host_cpp_tests =
  [
    tc "opencl boilerplate present" (fun () ->
        let t = host_cpp_text saxpy_art in
        check Alcotest.bool "include" true (contains t "#include <CL/cl2.hpp>");
        check Alcotest.bool "platform" true (contains t "cl::Platform::get");
        check Alcotest.bool "program binaries" true (contains t "cl::Program::Binaries"));
    tc "device data helpers emitted" (fun () ->
        let t = host_cpp_text saxpy_art in
        check Alcotest.bool "acquire" true (contains t "ftn::data_acquire");
        check Alcotest.bool "release" true (contains t "ftn::data_release");
        check Alcotest.bool "counter map" true (contains t "std::map<std::string, int> counters"));
    tc "buffers, transfers and kernel calls" (fun () ->
        let t = host_cpp_text saxpy_art in
        check Alcotest.bool "alloc" true (contains t "ftn::device_alloc(context, \"x\"");
        check Alcotest.bool "write" true (contains t "enqueueWriteBuffer");
        check Alcotest.bool "read" true (contains t "enqueueReadBuffer");
        check Alcotest.bool "kernel" true (contains t "cl::Kernel");
        check Alcotest.bool "setArg" true (contains t ".setArg(0, ");
        check Alcotest.bool "enqueueTask" true (contains t "enqueueTask");
        check Alcotest.bool "wait" true (contains t ".wait()"));
    tc "host loops become for statements" (fun () ->
        let t = host_cpp_text saxpy_art in
        check Alcotest.bool "for" true (contains t "for (int64_t "));
    tc "sgesl host keeps the outer loop and pivot logic" (fun () ->
        let t = host_cpp_text sgesl_art in
        check Alcotest.bool "if" true (contains t "if (");
        check Alcotest.bool "kernel name" true (contains t "sgesl_bench_kernel"));
    tc "print maps to cout" (fun () ->
        let t = host_cpp_text saxpy_art in
        check Alcotest.bool "cout" true (contains t "std::cout"));
    tc "xclbin name is configurable" (fun () ->
        let art =
          Core.Compiler.compile
            ~options:{ Core.Options.default with Core.Options.xclbin_name = "custom.xclbin" }
            (Ftn_linpack.Fortran_sources.saxpy ~n:8)
        in
        check Alcotest.bool "name used" true
          (contains (Option.get art.Core.Compiler.host_cpp) "custom.xclbin"));
  ]

(* Compile the generated host programs with a real C++ compiler against a
   stub OpenCL header (syntax/type checking only). Skipped when g++ is not
   on PATH. *)
let gpp_available =
  lazy (Sys.command "g++ --version > /dev/null 2>&1" = 0)

(* Alcotest chdirs into its log directory while running tests; resolve the
   stub include path eagerly at module initialisation. Under `dune runtest`
   the stub is materialised next to the executable; under `dune exec` the
   cwd is the project root. *)
let cl_stub_dir =
  let cwd = Sys.getcwd () in
  let candidates =
    [ Filename.concat cwd "cl_stub";
      Filename.concat cwd "test/cl_stub";
      Filename.concat (Filename.dirname Sys.executable_name) "cl_stub" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Filename.concat cwd "cl_stub"

let syntax_check_cpp name text =
  if not (Lazy.force gpp_available) then ()
  else begin
    let src_path = Filename.temp_file ("host_" ^ name) ".cpp" in
    let oc = open_out src_path in
    output_string oc text;
    close_out oc;
    let cmd =
      Printf.sprintf
        "g++ -std=c++17 -fsyntax-only -I %s %s 2> %s.err"
        (Filename.quote cl_stub_dir) (Filename.quote src_path)
        (Filename.quote src_path)
    in
    let rc = Sys.command cmd in
    if rc <> 0 then begin
      let ic = open_in (src_path ^ ".err") in
      let err = really_input_string ic (min 2000 (in_channel_length ic)) in
      close_in ic;
      Alcotest.failf "g++ rejected %s host code:\n%s" name err
    end
  end

let gpp_tests =
  [
    tc "generated saxpy host code is valid C++" (fun () ->
        syntax_check_cpp "saxpy" (host_cpp_text saxpy_art));
    tc "generated sgesl host code is valid C++" (fun () ->
        syntax_check_cpp "sgesl" (host_cpp_text sgesl_art));
    tc "generated data-regions host code is valid C++" (fun () ->
        let art =
          Core.Compiler.compile (Ftn_linpack.Fortran_sources.data_regions ~n:16)
        in
        syntax_check_cpp "regions" (Option.get art.Core.Compiler.host_cpp));
    tc "generated reduction host code is valid C++" (fun () ->
        let art =
          Core.Compiler.compile
            (Ftn_linpack.Fortran_sources.dot_product ~n:32 ~simdlen:4)
        in
        syntax_check_cpp "dot" (Option.get art.Core.Compiler.host_cpp));
  ]

let () =
  Alcotest.run "codegen"
    [
      ("llvm-ir", llvm_tests);
      ("downgrade", downgrade_tests);
      ("host-cpp", host_cpp_tests);
      ("host-cpp-gpp", gpp_tests);
    ]
