(* Tests for the dialect definitions: builders produce well-formed ops,
   matchers decompose them, and registered verifiers reject malformed IR. *)

open Ftn_ir
open Ftn_dialects

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let verify_ok op =
  match Dialect.lookup (Op.name op) with
  | Some info -> (
    match info.Dialect.verify op with
    | Ok () -> ()
    | Error msg -> Alcotest.fail (Op.name op ^ ": " ^ msg))
  | None -> Alcotest.fail ("unregistered op " ^ Op.name op)

let verify_err op =
  match Dialect.lookup (Op.name op) with
  | Some info -> (
    match info.Dialect.verify op with
    | Ok () -> Alcotest.fail (Op.name op ^ ": expected verifier error")
    | Error _ -> ())
  | None -> Alcotest.fail ("unregistered op " ^ Op.name op)

(* --- arith --- *)

let arith_tests =
  [
    tc "constants carry typed values" (fun () ->
        let b = Builder.create () in
        let c = Arith.const_i32 b 5 in
        check (Alcotest.option Alcotest.int) "int" (Some 5) (Arith.constant_int c);
        let f = Arith.const_f64 b 1.25 in
        check
          (Alcotest.option (Alcotest.float 0.0))
          "float" (Some 1.25) (Arith.constant_float f);
        verify_ok c;
        verify_ok f);
    tc "binops keep the operand type" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.F32 in
        let y = Builder.fresh b Types.F32 in
        let add = Arith.addf b x y in
        check Alcotest.bool "f32 result" true
          (Types.equal Types.F32 (Value.ty (Op.result1 add)));
        verify_ok add);
    tc "fastmath flag" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.F32 in
        let m = Arith.mulf b ~fastmath:true x x in
        check (Alcotest.option Alcotest.string) "flag" (Some "contract")
          (Op.string_attr m "fastmath");
        let m2 = Arith.mulf b x x in
        check Alcotest.bool "absent" false (Op.has_attr m2 "fastmath"));
    tc "comparisons produce i1" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.Index in
        let c = Arith.cmpi b Arith.Slt x x in
        check Alcotest.bool "i1" true (Types.equal Types.I1 (Value.ty (Op.result1 c)));
        check (Alcotest.option Alcotest.string) "pred" (Some "slt")
          (Op.string_attr c "predicate");
        verify_ok c);
    tc "predicate string round trips" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.bool "roundtrip" true
              (Arith.int_pred_of_string (Arith.string_of_int_pred p) = Some p))
          [ Arith.Eq; Arith.Ne; Arith.Slt; Arith.Sle; Arith.Sgt; Arith.Sge ];
        List.iter
          (fun p ->
            check Alcotest.bool "roundtrip" true
              (Arith.float_pred_of_string (Arith.string_of_float_pred p) = Some p))
          [ Arith.Oeq; Arith.One; Arith.Olt; Arith.Ole; Arith.Ogt; Arith.Oge ]);
    tc "fold tables" (fun () ->
        check (Alcotest.option Alcotest.int) "addi" (Some 7)
          (Arith.fold_int_binop "arith.addi" 3 4);
        check (Alcotest.option Alcotest.int) "div0" None
          (Arith.fold_int_binop "arith.divsi" 3 0);
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "mulf" (Some 1.5)
          (Arith.fold_float_binop "arith.mulf" 0.5 3.0);
        check Alcotest.bool "pred eval" true (Arith.eval_int_pred Arith.Slt 1 2));
    tc "verifier rejects operand mismatch" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        verify_err (Op.make "arith.addi" ~operands:[ x ]
                      ~results:[ Builder.fresh b Types.I32 ]);
        let y = Builder.fresh b Types.F32 in
        verify_err
          (Op.make "arith.addi" ~operands:[ x; y ]
             ~results:[ Builder.fresh b Types.I32 ]));
    tc "select verifier wants i1 condition" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        verify_err
          (Op.make "arith.select" ~operands:[ x; x; x ]
             ~results:[ Builder.fresh b Types.I32 ]));
  ]

(* --- scf --- *)

let scf_tests =
  [
    tc "for loop structure" (fun () ->
        let b = Builder.create () in
        let z = Arith.const_index b 0 in
        let n = Arith.const_index b 8 in
        let one = Arith.const_index b 1 in
        let loop =
          Scf.for_ b ~lb:(Op.result1 z) ~ub:(Op.result1 n)
            ~step:(Op.result1 one) (fun _iv _ -> [ Scf.yield () ])
        in
        verify_ok loop;
        match Scf.for_parts loop with
        | Some parts ->
          check Alcotest.bool "iv is index" true
            (Types.equal Types.Index (Value.ty parts.Scf.induction));
          check Alcotest.int "no iter args" 0 (List.length parts.Scf.iter_args)
        | None -> Alcotest.fail "for_parts failed");
    tc "for loop with iter args" (fun () ->
        let b = Builder.create () in
        let z = Arith.const_index b 0 in
        let acc0 = Arith.const_f32 b 0.0 in
        let loop =
          Scf.for_ b ~lb:(Op.result1 z) ~ub:(Op.result1 z)
            ~step:(Op.result1 z)
            ~iter_args:[ Op.result1 acc0 ]
            (fun _iv args -> [ Scf.yield ~operands:args () ])
        in
        check Alcotest.int "one result" 1 (List.length (Op.results loop));
        check Alcotest.bool "result is f32" true
          (Types.equal Types.F32 (Value.ty (Op.result1 loop)));
        verify_ok loop);
    tc "if with results uses two regions" (fun () ->
        let b = Builder.create () in
        let c = Arith.const_bool b true in
        let t = Arith.const_i32 b 1 in
        let f = Arith.const_i32 b 2 in
        let if_op =
          Scf.if_ b ~cond:(Op.result1 c) ~result_tys:[ Types.I32 ]
            ~then_ops:[ t; Scf.yield ~operands:[ Op.result1 t ] () ]
            ~else_ops:[ f; Scf.yield ~operands:[ Op.result1 f ] () ]
            ()
        in
        check Alcotest.int "regions" 2 (List.length (Op.regions if_op));
        verify_ok if_op);
    tc "if without else collapses to one region" (fun () ->
        let b = Builder.create () in
        let c = Arith.const_bool b false in
        let if_op =
          Scf.if_ b ~cond:(Op.result1 c) ~then_ops:[ Scf.yield () ] ()
        in
        check Alcotest.int "regions" 1 (List.length (Op.regions if_op)));
    tc "for verifier checks region args" (fun () ->
        let b = Builder.create () in
        let z = Builder.fresh b Types.Index in
        verify_err
          (Op.make "scf.for" ~operands:[ z; z; z ]
             ~regions:[ Op.region [ Scf.yield () ] ]));
  ]

(* --- memref --- *)

let memref_tests =
  [
    tc "alloc dynamic sizes must match" (fun () ->
        let b = Builder.create () in
        let alloc_static = Memref_d.alloc b (Types.memref_static [ 4 ] Types.F32) in
        verify_ok alloc_static;
        let alloc_bad =
          Op.make "memref.alloc"
            ~results:[ Builder.fresh b (Types.memref_dynamic 1 Types.F32) ]
        in
        verify_err alloc_bad);
    tc "load/store index counts" (fun () ->
        let b = Builder.create () in
        let mr = Builder.fresh b (Types.memref_static [ 4; 4 ] Types.F32) in
        let i = Builder.fresh b Types.Index in
        let good = Memref_d.load b mr [ i; i ] in
        verify_ok good;
        verify_err
          (Op.make "memref.load" ~operands:[ mr; i ]
             ~results:[ Builder.fresh b Types.F32 ]);
        let v = Builder.fresh b Types.F32 in
        verify_ok (Memref_d.store v mr [ i; i ]);
        verify_err (Op.make "memref.store" ~operands:[ v; mr; i ]));
    tc "load result has element type" (fun () ->
        let b = Builder.create () in
        let mr = Builder.fresh b (Types.memref_static [ 4 ] Types.F64) in
        let i = Builder.fresh b Types.Index in
        check Alcotest.bool "f64" true
          (Types.equal Types.F64 (Value.ty (Op.result1 (Memref_d.load b mr [ i ])))));
    tc "store/load parts" (fun () ->
        let b = Builder.create () in
        let mr = Builder.fresh b (Types.memref_static [ 4 ] Types.F32) in
        let i = Builder.fresh b Types.Index in
        let v = Builder.fresh b Types.F32 in
        (match Memref_d.store_parts (Memref_d.store v mr [ i ]) with
        | Some (v', mr', [ i' ]) ->
          check Alcotest.bool "v" true (Value.equal v v');
          check Alcotest.bool "mr" true (Value.equal mr mr');
          check Alcotest.bool "i" true (Value.equal i i')
        | _ -> Alcotest.fail "store_parts");
        match Memref_d.load_parts (Memref_d.load b mr [ i ]) with
        | Some (mr', [ _ ]) -> check Alcotest.bool "mr" true (Value.equal mr mr')
        | _ -> Alcotest.fail "load_parts");
    tc "dma ops carry tags" (fun () ->
        let b = Builder.create () in
        let src = Builder.fresh b (Types.memref_static [ 4 ] Types.F32) in
        let dst =
          Builder.fresh b (Types.memref_static ~memory_space:1 [ 4 ] Types.F32)
        in
        let dma = Memref_d.dma_start ~tag:3 ~src ~dst () in
        check (Alcotest.option Alcotest.int) "tag" (Some 3) (Op.int_attr dma "tag");
        verify_ok dma;
        verify_ok (Memref_d.dma_wait ~tag:3 ()));
  ]

(* --- func --- *)

let func_tests =
  [
    tc "function type matches args" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b Types.F32 in
        let fn =
          Func_d.func ~sym_name:"f" ~args:[ arg ] ~result_tys:[ Types.F32 ]
            [ Func_d.return ~operands:[ arg ] () ]
        in
        verify_ok fn;
        check (Alcotest.option Alcotest.string) "name" (Some "f")
          (Func_d.func_name fn);
        match Func_d.func_type fn with
        | Some ([ t ], [ r ]) ->
          check Alcotest.bool "arg" true (Types.equal Types.F32 t);
          check Alcotest.bool "res" true (Types.equal Types.F32 r)
        | _ -> Alcotest.fail "func_type");
    tc "declaration has no body" (fun () ->
        let decl =
          Func_d.func_decl ~sym_name:"ext" ~arg_tys:[ Types.I32 ]
            ~result_tys:[] ()
        in
        check Alcotest.bool "no body" false (Func_d.has_body decl);
        verify_ok decl);
    tc "mismatched entry block is rejected" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b Types.F32 in
        let fn =
          Func_d.func ~sym_name:"f" ~args:[ arg ] ~result_tys:[]
            [ Func_d.return () ]
        in
        let bad =
          Op.set_attr fn "function_type" (Attr.Type (Types.Func ([], [])))
        in
        verify_err bad);
    tc "call builder" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        let call = Func_d.call b ~callee:"g" ~operands:[ x ] ~result_tys:[ Types.I32 ] in
        check (Alcotest.option Alcotest.string) "callee" (Some "g")
          (Func_d.callee call);
        verify_ok call);
  ]

(* --- omp --- *)

let omp_tests =
  [
    tc "map_info parts round trip" (fun () ->
        let b = Builder.create () in
        let var = Builder.fresh b (Types.memref_static [ 10 ] Types.F32) in
        let mi =
          Omp.map_info b ~var ~var_name:"a" ~map_type:Omp.From ~implicit:true ()
        in
        verify_ok mi;
        match Omp.map_parts mi with
        | Some parts ->
          check Alcotest.string "name" "a" parts.Omp.var_name;
          check Alcotest.bool "kind" true (parts.Omp.map_type = Omp.From);
          check Alcotest.bool "implicit" true parts.Omp.implicit;
          check Alcotest.bool "var" true (Value.equal var parts.Omp.var)
        | None -> Alcotest.fail "map_parts");
    tc "map types round trip" (fun () ->
        List.iter
          (fun k ->
            check Alcotest.bool "roundtrip" true
              (Omp.map_type_of_string (Omp.string_of_map_type k) = Some k))
          [ Omp.To; Omp.From; Omp.Tofrom; Omp.Alloc; Omp.Release; Omp.Delete ]);
    tc "target block args mirror operands" (fun () ->
        let b = Builder.create () in
        let var = Builder.fresh b (Types.memref_static [ 10 ] Types.F32) in
        let mi = Omp.map_info b ~var ~var_name:"a" ~map_type:Omp.Tofrom () in
        let t =
          Omp.target b ~map_operands:[ Op.result1 mi ] (fun args ->
              check Alcotest.int "one arg" 1 (List.length args);
              [ Omp.terminator () ])
        in
        verify_ok t);
    tc "parallel_do loop parts" (fun () ->
        let b = Builder.create () in
        let z = Builder.fresh b Types.Index in
        let pd =
          Omp.parallel_do b ~lbs:[ z ] ~ubs:[ z ] ~steps:[ z ] ~simd:true
            ~simdlen:10 (fun ivs ->
              check Alcotest.int "one iv" 1 (List.length ivs);
              [ Omp.yield () ])
        in
        verify_ok pd;
        match Omp.loop_parts pd with
        | Some parts ->
          check Alcotest.bool "simd" true parts.Omp.simd;
          check (Alcotest.option Alcotest.int) "simdlen" (Some 10) parts.Omp.simdlen;
          check Alcotest.int "rank" 1 (List.length parts.Omp.lbs)
        | None -> Alcotest.fail "loop_parts");
    tc "parallel_do with reduction" (fun () ->
        let b = Builder.create () in
        let z = Builder.fresh b Types.Index in
        let acc = Builder.fresh b (Types.memref [] Types.F32) in
        let pd =
          Omp.parallel_do b ~lbs:[ z ] ~ubs:[ z ] ~steps:[ z ]
            ~reductions:[ (Omp.Red_add, acc) ]
            (fun _ -> [ Omp.yield () ])
        in
        verify_ok pd;
        match Omp.loop_parts pd with
        | Some parts -> (
          match parts.Omp.reduction_accs with
          | [ (Omp.Red_add, v) ] ->
            check Alcotest.bool "acc" true (Value.equal acc v)
          | _ -> Alcotest.fail "reduction_accs")
        | None -> Alcotest.fail "loop_parts");
    tc "collapse-2 bounds split" (fun () ->
        let b = Builder.create () in
        let z = Builder.fresh b Types.Index in
        let pd =
          Omp.parallel_do b ~lbs:[ z; z ] ~ubs:[ z; z ] ~steps:[ z; z ]
            (fun ivs ->
              check Alcotest.int "two ivs" 2 (List.length ivs);
              [ Omp.yield () ])
        in
        match Omp.loop_parts pd with
        | Some parts -> check Alcotest.int "two" 2 (List.length parts.Omp.ubs)
        | None -> Alcotest.fail "loop_parts");
    tc "rank mismatch raises" (fun () ->
        let b = Builder.create () in
        let z = Builder.fresh b Types.Index in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Omp.parallel_do: bounds rank mismatch") (fun () ->
            ignore
              (Omp.parallel_do b ~lbs:[ z; z ] ~ubs:[ z ] ~steps:[ z ]
                 (fun _ -> []))));
  ]

(* --- device --- *)

let device_tests =
  [
    tc "alloc forces memory space onto result type" (fun () ->
        let b = Builder.create () in
        let alloc =
          Device.alloc b ~name:"a" ~memory_space:1
            (Types.memref_static [ 100 ] Types.F64)
        in
        verify_ok alloc;
        (match Value.ty (Op.result1 alloc) with
        | Types.Memref mi -> check Alcotest.int "space" 1 mi.Types.memory_space
        | _ -> Alcotest.fail "not a memref");
        check (Alcotest.option Alcotest.string) "name" (Some "a")
          (Device.op_name_attr alloc);
        check Alcotest.int "space attr" 1 (Device.op_memory_space alloc));
    tc "data ops verify name attributes" (fun () ->
        verify_ok (Device.data_acquire ~name:"x" ~memory_space:1);
        verify_ok (Device.data_release ~name:"x" ~memory_space:1);
        verify_err (Op.make "device.data_acquire"));
    tc "kernel_create returns a handle" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b (Types.memref_static ~memory_space:1 [ 4 ] Types.F32) in
        let kc = Device.kernel_create b ~args:[ arg ] ~device_function:"k" () in
        verify_ok kc;
        check Alcotest.bool "handle type" true
          (Types.equal Types.Kernel_handle (Value.ty (Op.result1 kc)));
        check (Alcotest.option Alcotest.string) "fn" (Some "k")
          (Device.kernel_function kc);
        verify_ok (Device.kernel_launch (Op.result1 kc));
        verify_ok (Device.kernel_wait (Op.result1 kc)));
    tc "launch rejects non-handle operands" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        verify_err (Op.make "device.kernel_launch" ~operands:[ x ]));
  ]

(* --- hls --- *)

let hls_tests =
  [
    tc "interface checks protocol operand" (fun () ->
        let b = Builder.create () in
        let arg = Builder.fresh b (Types.memref_static [ 4 ] Types.F32) in
        let kind = Arith.const_i32 b (Hls.int_of_protocol Hls.M_axi) in
        let proto = Hls.axi_protocol b (Op.result1 kind) in
        let iface =
          Hls.interface ~arg ~protocol:(Op.result1 proto) ~bundle:"gmem0"
        in
        verify_ok iface;
        check (Alcotest.option Alcotest.string) "bundle" (Some "gmem0")
          (Hls.interface_bundle iface);
        let not_proto = Builder.fresh b Types.I32 in
        verify_err
          (Op.make "hls.interface" ~operands:[ arg; not_proto ]
             ~attrs:[ ("bundle", Attr.String "gmem0") ]));
    tc "protocol kinds round trip" (fun () ->
        List.iter
          (fun k ->
            check Alcotest.bool "roundtrip" true
              (Hls.protocol_of_int (Hls.int_of_protocol k) = Some k))
          [ Hls.M_axi; Hls.S_axilite; Hls.Ap_none ]);
    tc "pipeline and unroll take one operand" (fun () ->
        let b = Builder.create () in
        let ii = Arith.const_i32 b 1 in
        verify_ok (Hls.pipeline (Op.result1 ii));
        verify_ok (Hls.unroll (Op.result1 ii));
        verify_err (Op.make "hls.pipeline"));
    tc "array partition" (fun () ->
        let b = Builder.create () in
        let arr = Builder.fresh b (Types.memref_static [ 8 ] Types.F32) in
        let ap = Hls.array_partition ~array:arr ~kind:"complete" ~factor:8 in
        verify_ok ap;
        check (Alcotest.option Alcotest.string) "kind" (Some "complete")
          (Op.string_attr ap "kind"));
    tc "stream read yields element type" (fun () ->
        let b = Builder.create () in
        let s = Builder.fresh b (Types.Stream Types.F32) in
        let r = Hls.stream_read b s in
        check Alcotest.bool "f32" true
          (Types.equal Types.F32 (Value.ty (Op.result1 r)));
        verify_ok r;
        let v = Builder.fresh b Types.F32 in
        verify_ok (Hls.stream_write ~stream:s ~value:v));
  ]

(* --- fir and llvm --- *)

let fir_llvm_tests =
  [
    tc "fir builders" (fun () ->
        let b = Builder.create () in
        let st = Fir.alloca b ~bindc_name:"x" (Types.memref [] Types.F32) in
        verify_ok st;
        let d = Fir.declare b ~uniq_name:"x" (Op.result1 st) in
        verify_ok d;
        let v = Fir.load b (Op.result1 st) [] in
        verify_ok v;
        verify_ok (Fir.store ~value:(Op.result1 v) ~ref_:(Op.result1 st) []));
    tc "fir do_loop" (fun () ->
        let b = Builder.create () in
        let z = Builder.fresh b Types.Index in
        let loop = Fir.do_loop b ~lb:z ~ub:z ~step:z (fun _ -> [ Fir.result () ]) in
        verify_ok loop);
    tc "llvm cond_br operand split" (fun () ->
        let b = Builder.create () in
        let c = Builder.fresh b Types.I1 in
        let x = Builder.fresh b Types.I64 in
        let y = Builder.fresh b Types.I64 in
        let br =
          Llvm_d.cond_br ~cond:c ~true_dest:"t" ~true_operands:[ x ]
            ~false_dest:"f" ~false_operands:[ y ] ()
        in
        match Llvm_d.cond_br_parts br with
        | Some (c', "t", [ x' ], "f", [ y' ]) ->
          check Alcotest.bool "c" true (Value.equal c c');
          check Alcotest.bool "x" true (Value.equal x x');
          check Alcotest.bool "y" true (Value.equal y y')
        | _ -> Alcotest.fail "cond_br_parts");
    tc "llvm func decl" (fun () ->
        let decl =
          Llvm_d.func_decl ~sym_name:"sqrtf"
            ~fn_ty:(Types.Func ([ Types.F32 ], [ Types.F32 ]))
            ()
        in
        verify_ok decl;
        check (Alcotest.option Alcotest.string) "linkage" (Some "external")
          (Op.string_attr decl "linkage"));
    tc "llvm getelementptr keeps pointer type" (fun () ->
        let b = Builder.create () in
        let p = Builder.fresh b (Types.Ptr Types.F32) in
        let i = Builder.fresh b Types.I64 in
        let gep = Llvm_d.getelementptr b ~base:p ~indices:[ i ] ~elem_ty:Types.F32 in
        check Alcotest.bool "ptr" true
          (Types.equal (Types.Ptr Types.F32) (Value.ty (Op.result1 gep)));
        verify_ok gep);
  ]

let registry_tests =
  [
    tc "all expected dialects registered" (fun () ->
        let dialects = Dialect.registered_dialects () in
        List.iter
          (fun d ->
            Alcotest.check Alcotest.bool (d ^ " registered") true
              (List.mem d dialects))
          [ "arith"; "builtin"; "device"; "fir"; "func"; "hls"; "llvm";
            "math"; "memref"; "omp"; "scf" ]);
    tc "registration is idempotent" (fun () ->
        let before = List.length (Dialect.registered_ops ()) in
        Registry.register_all ();
        Registry.register_all ();
        check Alcotest.int "same count" before
          (List.length (Dialect.registered_ops ())));
  ]

let () =
  Registry.register_all ();
  Alcotest.run "dialects"
    [
      ("arith", arith_tests);
      ("scf", scf_tests);
      ("memref", memref_tests);
      ("func", func_tests);
      ("omp", omp_tests);
      ("device", device_tests);
      ("hls", hls_tests);
      ("fir-llvm", fir_llvm_tests);
      ("registry", registry_tests);
    ]
