(* Tests for the benchmark substrate: reference implementations, workload
   generators and the embedded Fortran sources. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
open Ftn_linpack

let references_tests =
  [
    tc "to_f32 rounds like single precision" (fun () ->
        check Alcotest.bool "0.1 rounds" true (References.to_f32 0.1 <> 0.1);
        check (Alcotest.float 0.0) "exact halves survive" 0.5
          (References.to_f32 0.5));
    tc "saxpy identity with a = 0" (fun () ->
        let x, y = References.saxpy_inputs ~n:16 in
        let y0 = Array.copy y in
        References.saxpy ~a:0.0 ~x ~y;
        check Alcotest.bool "unchanged" true (y = y0));
    tc "saxpy is additive in a for exact inputs" (fun () ->
        let n = 8 in
        let x = Array.init n (fun i -> float_of_int i) in
        let y1 = Array.make n 0.0 and y2 = Array.make n 0.0 in
        References.saxpy ~a:3.0 ~x ~y:y1;
        References.saxpy ~a:1.0 ~x ~y:y2;
        References.saxpy ~a:2.0 ~x ~y:y2;
        check Alcotest.bool "same" true (y1 = y2));
    tc "sgesl_update is a no-op for zero rhs" (fun () ->
        let n = 12 in
        let a, _, ipvt = References.sgesl_inputs ~n in
        let b = Array.make n 0.0 in
        References.sgesl_update ~n ~a ~b ~ipvt;
        check Alcotest.bool "still zero" true (Array.for_all (( = ) 0.0) b));
    tc "dot of orthogonal indicator vectors is zero" (fun () ->
        let x = [| 1.0; 0.0; 1.0; 0.0 |] in
        let y = [| 0.0; 2.0; 0.0; 2.0 |] in
        check (Alcotest.float 0.0) "zero" 0.0 (References.dot ~x ~y));
    tc "column-major idx addresses columns contiguously" (fun () ->
        check Alcotest.int "A(2,1)" 1 (References.idx 4 1 0);
        check Alcotest.int "A(1,2)" 4 (References.idx 4 0 1));
    tc "sgefa detects singular matrices" (fun () ->
        let n = 4 in
        let a = Array.make (n * n) 0.0 in
        let ipvt = Array.make n 0 in
        check Alcotest.bool "info nonzero" true (References.sgefa ~n a ipvt <> 0));
    tc "sgefa+sgesl solve diagonally dominant systems" (fun () ->
        List.iter
          (fun n ->
            let a =
              Array.init (n * n) (fun k ->
                  let i = k mod n and j = k / n in
                  if i = j then 10.0 else 1.0 /. float_of_int (1 + i + j))
            in
            let a_orig = Array.copy a in
            let b = Array.init n (fun i -> Float.sin (float_of_int i)) in
            let b_orig = Array.copy b in
            let ipvt = Array.make n 0 in
            check Alcotest.int "nonsingular" 0 (References.sgefa ~n a ipvt);
            References.sgesl ~n a ipvt b;
            check Alcotest.bool "residual small" true
              (References.residual ~n a_orig b b_orig < 1e-3))
          [ 4; 16; 40 ]);
    tc "workload inputs are deterministic" (fun () ->
        let x1, y1 = References.saxpy_inputs ~n:32 in
        let x2, y2 = References.saxpy_inputs ~n:32 in
        check Alcotest.bool "same" true (x1 = x2 && y1 = y2));
  ]

let sources_tests =
  [
    tc "all embedded sources parse and verify" (fun () ->
        List.iter
          (fun src ->
            ignore (Ftn_frontend.Frontend.to_core_verified src))
          [
            Fortran_sources.saxpy ~n:64;
            Fortran_sources.sgesl ~n:16;
            Fortran_sources.dot_product ~n:32 ~simdlen:4;
            Fortran_sources.data_regions ~n:16;
          ]);
    tc "saxpy source contains the paper's directive" (fun () ->
        check Alcotest.bool "simdlen(10)" true
          (Astring_like.contains (Fortran_sources.saxpy ~n:10)
             "target parallel do simd simdlen(10)"));
    tc "sgesl source offloads per outer iteration" (fun () ->
        let src = Fortran_sources.sgesl ~n:8 in
        check Alcotest.bool "plain parallel do" true
          (Astring_like.contains src "!$omp target parallel do\n"));
    tc "sizes splice into the parameter constant" (fun () ->
        check Alcotest.bool "n = 12345" true
          (Astring_like.contains (Fortran_sources.saxpy ~n:12345) "n = 12345"));
  ]

let baseline_tests =
  [
    tc "baseline kernels verify as IR" (fun () ->
        Ftn_dialects.Registry.register_all ();
        Ftn_ir.Verifier.verify_exn (Hls_baselines.saxpy_device ~n:16);
        Ftn_ir.Verifier.verify_exn (Hls_baselines.sgesl_device ~n:16);
        Ftn_ir.Verifier.verify_exn
          (Hls_baselines.scale_dataflow_device ~n:16 ()));
    tc "baseline kernel names match their drivers" (fun () ->
        let has_fn m name = Ftn_ir.Op.find_function m name <> None in
        check Alcotest.bool "saxpy_hw" true
          (has_fn (Hls_baselines.saxpy_device ~n:8) "saxpy_hw");
        check Alcotest.bool "sgesl_hw" true
          (has_fn (Hls_baselines.sgesl_device ~n:8) "sgesl_hw"));
  ]

let () =
  Alcotest.run "linpack"
    [
      ("references", references_tests);
      ("sources", sources_tests);
      ("baselines", baseline_tests);
    ]
