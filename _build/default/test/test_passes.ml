(* Tests for the transformation passes: canonicalisation, the paper's two
   device lowering passes, module splitting, the HLS loop lowering with
   simd/reduction handling, hls-to-func and the llvm conversion. *)

open Ftn_ir
open Ftn_dialects
open Ftn_passes

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let count name m = Op.count (fun o -> Op.name o = name) m

let wrap_fn ?(args = []) body =
  Op.module_op
    [ Func_d.func ~sym_name:"f" ~args ~result_tys:[]
        (body @ [ Func_d.return () ]) ]

(* --- canonicalize --- *)

let canonicalize_tests =
  [
    tc "constant folding collapses arithmetic" (fun () ->
        let b = Builder.create () in
        let c1 = Arith.const_i32 b 2 in
        let c2 = Arith.const_i32 b 3 in
        let add = Arith.addi b (Op.result1 c1) (Op.result1 c2) in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 add ] in
        let m = Canonicalize.run (wrap_fn [ c1; c2; add; keep ]) in
        check Alcotest.int "no addi" 0 (count "arith.addi" m);
        let consts = Op.collect Arith.is_constant m in
        check Alcotest.bool "5 materialised" true
          (List.exists (fun c -> Arith.constant_int c = Some 5) consts));
    tc "cmp folding" (fun () ->
        let b = Builder.create () in
        let c1 = Arith.const_index b 1 in
        let c2 = Arith.const_index b 2 in
        let cmp = Arith.cmpi b Arith.Slt (Op.result1 c1) (Op.result1 c2) in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 cmp ] in
        let m = Canonicalize.run (wrap_fn [ c1; c2; cmp; keep ]) in
        check Alcotest.int "no cmpi" 0 (count "arith.cmpi" m));
    tc "select with constant condition folds away" (fun () ->
        let b = Builder.create () in
        let c = Arith.const_bool b true in
        let x = Arith.const_i32 b 10 in
        let y = Arith.const_i32 b 20 in
        let sel = Arith.select b (Op.result1 c) (Op.result1 x) (Op.result1 y) in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 sel ] in
        let m = Canonicalize.run (wrap_fn [ c; x; y; sel; keep ]) in
        check Alcotest.int "no select" 0 (count "arith.select" m);
        let keep' = List.hd (Op.collect (fun o -> Op.name o = "test.keep") m) in
        check Alcotest.bool "kept x" true
          (Value.equal (Op.result1 x) (Op.operand keep' 0)));
    tc "cse merges identical pure ops" (fun () ->
        let b = Builder.create () in
        let x = Builder.fresh b Types.I32 in
        let a1 = Arith.addi b x x in
        let a2 = Arith.addi b x x in
        let keep =
          Op.make "test.keep" ~operands:[ Op.result1 a1; Op.result1 a2 ]
        in
        let m = Canonicalize.cse (wrap_fn ~args:[ x ] [ a1; a2; keep ]) in
        check Alcotest.int "one addi" 1 (count "arith.addi" m);
        let keep' = List.hd (Op.collect (fun o -> Op.name o = "test.keep") m) in
        check Alcotest.bool "both operands same" true
          (Value.equal (Op.operand keep' 0) (Op.operand keep' 1)));
    tc "cse does not merge across attrs" (fun () ->
        let b = Builder.create () in
        let c1 = Arith.const_i32 b 1 in
        let c2 = Arith.const_i32 b 2 in
        let keep =
          Op.make "test.keep" ~operands:[ Op.result1 c1; Op.result1 c2 ]
        in
        let m = Canonicalize.cse (wrap_fn [ c1; c2; keep ]) in
        check Alcotest.int "two constants" 2 (count "arith.constant" m));
    tc "store-to-load forwarding on scalar allocas" (fun () ->
        let b = Builder.create () in
        let slot = Memref_d.alloca b (Types.memref [] Types.F32) in
        let v = Arith.const_f32 b 1.0 in
        let st = Memref_d.store (Op.result1 v) (Op.result1 slot) [] in
        let ld = Memref_d.load b (Op.result1 slot) [] in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 ld ] in
        let m = Canonicalize.forward_stores (wrap_fn [ slot; v; st; ld; keep ]) in
        check Alcotest.int "load gone" 0 (count "memref.load" m);
        let keep' = List.hd (Op.collect (fun o -> Op.name o = "test.keep") m) in
        check Alcotest.bool "forwarded" true
          (Value.equal (Op.result1 v) (Op.operand keep' 0)));
    tc "forwarding stops at calls" (fun () ->
        let b = Builder.create () in
        let slot = Memref_d.alloca b (Types.memref [] Types.F32) in
        let v = Arith.const_f32 b 1.0 in
        let st = Memref_d.store (Op.result1 v) (Op.result1 slot) [] in
        let call = Func_d.call b ~callee:"g" ~operands:[ Op.result1 slot ] ~result_tys:[] in
        let ld = Memref_d.load b (Op.result1 slot) [] in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 ld ] in
        let m =
          Canonicalize.forward_stores (wrap_fn [ slot; v; st; call; ld; keep ])
        in
        check Alcotest.int "load kept" 1 (count "memref.load" m));
    tc "dce removes unused pure ops" (fun () ->
        let b = Builder.create () in
        let dead = Arith.const_i32 b 5 in
        let live = Arith.const_i32 b 6 in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 live ] in
        let m = Canonicalize.dce (wrap_fn [ dead; live; keep ]) in
        check Alcotest.int "one constant" 1 (count "arith.constant" m));
    tc "dce keeps stores and calls" (fun () ->
        let b = Builder.create () in
        let slot = Memref_d.alloca b (Types.memref [] Types.F32) in
        let v = Arith.const_f32 b 1.0 in
        let st = Memref_d.store (Op.result1 v) (Op.result1 slot) [] in
        let ld = Memref_d.load b (Op.result1 slot) [] in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 ld ] in
        let m = Canonicalize.dce (wrap_fn [ slot; v; st; ld; keep ]) in
        check Alcotest.int "store kept" 1 (count "memref.store" m));
    tc "store-only allocas are removed" (fun () ->
        let b = Builder.create () in
        let slot = Memref_d.alloca b (Types.memref [] Types.I32) in
        let v = Arith.const_i32 b 1 in
        let st = Memref_d.store (Op.result1 v) (Op.result1 slot) [] in
        let m = Canonicalize.run (wrap_fn [ slot; v; st ]) in
        check Alcotest.int "alloca gone" 0 (count "memref.alloca" m);
        check Alcotest.int "store gone" 0 (count "memref.store" m));
    tc "cse does not merge across block boundaries" (fun () ->
        let b = Builder.create () in
        let cond = Builder.fresh b Types.I1 in
        let mk () = Arith.const_i32 b 7 in
        let c_then = mk () and c_else = mk () in
        let if_op =
          Scf.if_ b ~cond ~result_tys:[ Types.I32 ]
            ~then_ops:[ c_then; Scf.yield ~operands:[ Op.result1 c_then ] () ]
            ~else_ops:[ c_else; Scf.yield ~operands:[ Op.result1 c_else ] () ]
            ()
        in
        let keep = Op.make "test.keep" ~operands:[ Op.result1 if_op ] in
        let m =
          Canonicalize.cse (wrap_fn ~args:[ cond ] [ if_op; keep ])
        in
        (* each branch keeps its own constant: values may not float across
           regions *)
        check Alcotest.int "two constants" 2 (count "arith.constant" m));
    tc "full pipeline cleans the loop-var pattern" (fun () ->
        (* iv -> store to alloca -> load in same block: should fold to
           direct uses of the iv and drop the alloca *)
        let m =
          Ftn_frontend.Frontend.to_core
            "program p\nreal :: a(8)\ninteger :: i\ndo i = 1, 8\na(i) = real(i)\nend do\nend program"
        in
        let m' = Canonicalize.run m in
        check Alcotest.int "loads eliminated in loop" 0 (count "memref.load" m'));
  ]

(* --- lower_omp_data --- *)

let saxpy_core () =
  Ftn_frontend.Frontend.to_core
    "program p\nreal :: x(8), y(8)\nreal :: a\ninteger :: i\na = 2.0\n!$omp target parallel do simd simdlen(4) map(to:x) map(tofrom:y)\ndo i = 1, 8\ny(i) = y(i) + a * x(i)\nend do\n!$omp end target parallel do simd\nend program"

let data_regions_core () =
  Ftn_frontend.Frontend.to_core (Ftn_linpack.Fortran_sources.data_regions ~n:8)

let omp_data_tests =
  [
    tc "map_info becomes device data management" (fun () ->
        let m = Lower_omp_data.run (saxpy_core ()) in
        check Alcotest.int "no map_info" 0 (count "omp.map_info" m);
        check Alcotest.int "no bounds" 0 (count "omp.bounds_info" m);
        check Alcotest.int "acquires" 3 (count "device.data_acquire" m);
        check Alcotest.int "releases" 3 (count "device.data_release" m);
        check Alcotest.int "allocs" 3 (count "device.alloc" m);
        check Alcotest.int "lookups" 3 (count "device.lookup" m);
        Verifier.verify_exn m);
    tc "copy directions follow map types" (fun () ->
        let m = Lower_omp_data.run (saxpy_core ()) in
        (* x: to, y: tofrom, a: implicit to -> 3 h2d conditionals; only y
           copies back -> dma_starts: 3 in + 1 out = 4 *)
        check Alcotest.int "dma count" 4 (count "memref.dma_start" m));
    tc "target operands become device memrefs" (fun () ->
        let m = Lower_omp_data.run (saxpy_core ()) in
        let target = List.hd (Op.collect Omp.is_target m) in
        List.iter
          (fun v ->
            match Value.ty v with
            | Types.Memref mi ->
              check Alcotest.int "space 1" 1 mi.Types.memory_space
            | _ -> Alcotest.fail "not a memref")
          (Op.operands target);
        (* block args follow *)
        let blk = Op.region_block target 0 in
        List.iter
          (fun v ->
            match Value.ty v with
            | Types.Memref mi -> check Alcotest.int "arg space" 1 mi.Types.memory_space
            | _ -> Alcotest.fail "arg not memref")
          blk.Op.args);
    tc "memory space is configurable" (fun () ->
        let m =
          Lower_omp_data.run
            ~options:{ Lower_omp_data.memory_space = 2; hbm_banks = 1 }
            (saxpy_core ())
        in
        let alloc = List.hd (Op.collect Device.is_alloc m) in
        check Alcotest.int "space 2" 2 (Device.op_memory_space alloc));
    tc "nested data region keeps single data ops per construct" (fun () ->
        let m = Lower_omp_data.run (data_regions_core ()) in
        (* target data maps a; inner target maps b + implicit a ->
           acquires: 1 (outer a) + 2 (inner b, a) = 3 *)
        check Alcotest.int "acquires" 3 (count "device.data_acquire" m);
        check Alcotest.int "releases" 3 (count "device.data_release" m);
        check Alcotest.int "no target_data left" 0 (count "omp.target_data" m);
        Verifier.verify_exn m);
    tc "enter/exit data lower to entry/exit sequences" (fun () ->
        let m =
          Ftn_frontend.Frontend.to_core
            "program p\nreal :: a(4)\ninteger :: i\ndo i = 1, 4\na(i) = 0.0\nend do\n!$omp target enter data map(to:a)\n!$omp target exit data map(from:a)\nend program"
        in
        let m = Lower_omp_data.run m in
        check Alcotest.int "acquire" 1 (count "device.data_acquire" m);
        check Alcotest.int "release" 1 (count "device.data_release" m);
        check Alcotest.int "none left" 0
          (count "omp.target_enter_data" m + count "omp.target_exit_data" m));
    tc "hbm banks assigned round-robin and stably" (fun () ->
        let m =
          Lower_omp_data.run
            ~options:{ Lower_omp_data.memory_space = 1; hbm_banks = 4 }
            (saxpy_core ())
        in
        let allocs = Op.collect Device.is_alloc m in
        let spaces =
          List.map (fun o -> (Option.get (Device.op_name_attr o),
                              Device.op_memory_space o)) allocs
          |> List.sort_uniq compare
        in
        (* three mapped names land in three distinct banks *)
        check Alcotest.int "three allocs" 3 (List.length spaces);
        let banks = List.map snd spaces |> List.sort_uniq compare in
        check Alcotest.int "distinct banks" 3 (List.length banks);
        (* acquire/release agree with the alloc's space per name *)
        Op.walk
          (fun o ->
            if Device.is_data_acquire o || Device.is_data_release o then
              let name = Option.get (Device.op_name_attr o) in
              check Alcotest.int (name ^ " space")
                (List.assoc name spaces)
                (Device.op_memory_space o))
          m;
        Verifier.verify_exn m);
    tc "target update transfers unconditionally" (fun () ->
        let m =
          Ftn_frontend.Frontend.to_core
            "program p\nreal :: a(4)\ninteger :: i\n!$omp target data map(from:a)\n!$omp target\ndo i = 1, 4\na(i) = 1.0\nend do\n!$omp end target\n!$omp target update from(a)\n!$omp end target data\nend program"
        in
        let m = Lower_omp_data.run m in
        check Alcotest.int "update gone" 0 (count "omp.target_update" m);
        check Alcotest.bool "lookup for update" true (count "device.lookup" m >= 1));
  ]

(* --- lower_omp_target + split --- *)

let full_mid_end src =
  Pipeline.run_mid_end (Ftn_frontend.Frontend.to_core src)

let omp_target_tests =
  [
    tc "target becomes kernel create/launch/wait" (fun () ->
        let m = Lower_omp_target.run (Lower_omp_data.run (saxpy_core ())) in
        check Alcotest.int "create" 1 (count "device.kernel_create" m);
        check Alcotest.int "launch" 1 (count "device.kernel_launch" m);
        check Alcotest.int "wait" 1 (count "device.kernel_wait" m);
        check Alcotest.int "no target" 0 (count "omp.target" m));
    tc "kernel region is outlined into fpga module" (fun () ->
        let m = Lower_omp_target.run (Lower_omp_data.run (saxpy_core ())) in
        let device_mods =
          Op.collect (fun o -> Builtin.is_device_module o) m
        in
        check Alcotest.int "one device module" 1 (List.length device_mods);
        let d = List.hd device_mods in
        check Alcotest.int "one kernel fn" 1 (count "func.func" d);
        (* kernel_create regions must now be empty *)
        let kc = List.hd (Op.collect Device.is_kernel_create m) in
        check Alcotest.int "empty region" 0
          (List.length (Op.region_body kc 0)));
    tc "device_function symbol links create to kernel" (fun () ->
        let r = full_mid_end
            "program p\nreal :: y(4)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 4\ny(i) = 1.0\nend do\n!$omp end target parallel do\nend program"
        in
        let kc =
          List.hd (Op.collect Device.is_kernel_create r.Pipeline.host)
        in
        let fname = Option.get (Device.kernel_function kc) in
        match r.Pipeline.device_core with
        | Some d -> check Alcotest.bool "found" true (Op.find_function d fname <> None)
        | None -> Alcotest.fail "no device module");
    tc "outlined kernel is self-contained" (fun () ->
        let r = full_mid_end
            "program p\nreal :: y(4)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 4\ny(i) = 1.0\nend do\n!$omp end target parallel do\nend program"
        in
        match r.Pipeline.device_core with
        | Some d -> Verifier.verify_exn d
        | None -> Alcotest.fail "no device module");
    tc "split separates host and device" (fun () ->
        let m = Lower_omp_target.run (Lower_omp_data.run (saxpy_core ())) in
        let split = Split_modules.run m in
        check Alcotest.bool "device exists" true (split.Split_modules.device <> None);
        check Alcotest.int "host keeps no device module" 0
          (List.length
             (List.filter Builtin.is_device_module
                (Op.module_body split.Split_modules.host))));
    tc "program without offload has no device module" (fun () ->
        let m =
          Ftn_frontend.Frontend.to_core "program p\nreal :: x\nx = 1.0\nend program"
        in
        let r = Pipeline.run_mid_end m in
        check Alcotest.bool "none" true (r.Pipeline.device_core = None));
    tc "two targets produce two kernels" (fun () ->
        let r = full_mid_end
            "program p\nreal :: y(4)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 4\ny(i) = 1.0\nend do\n!$omp end target parallel do\n!$omp target parallel do\ndo i = 1, 4\ny(i) = y(i) + 1.0\nend do\n!$omp end target parallel do\nend program"
        in
        match r.Pipeline.device_core with
        | Some d -> check Alcotest.int "two kernels" 2 (count "func.func" d)
        | None -> Alcotest.fail "no device module");
  ]

(* --- lower_omp_to_hls --- *)

let device_hls_of src =
  match (full_mid_end src).Pipeline.device_hls with
  | Some d -> d
  | None -> Alcotest.fail "no device module"

let saxpy_src =
  "program p\nreal :: x(8), y(8)\nreal :: a\ninteger :: i\na = 2.0\n!$omp target parallel do simd simdlen(4) map(to:x) map(tofrom:y)\ndo i = 1, 8\ny(i) = y(i) + a * x(i)\nend do\n!$omp end target parallel do simd\nend program"

let hls_tests =
  [
    tc "interfaces per argument with separate bundles" (fun () ->
        let d = device_hls_of saxpy_src in
        let ifaces = Op.collect Hls.is_interface d in
        let bundles = List.filter_map Hls.interface_bundle ifaces in
        check Alcotest.bool "gmem0" true (List.mem "gmem0" bundles);
        check Alcotest.bool "gmem1" true (List.mem "gmem1" bundles);
        check Alcotest.bool "control for scalar" true (List.mem "control" bundles));
    tc "parallel_do becomes pipelined scf.for" (fun () ->
        let d = device_hls_of saxpy_src in
        check Alcotest.int "no parallel_do" 0 (count "omp.parallel_do" d);
        check Alcotest.bool "scf.for" true (count "scf.for" d >= 1);
        check Alcotest.int "pipeline" 1 (count "hls.pipeline" d));
    tc "simd clause adds unroll" (fun () ->
        let d = device_hls_of saxpy_src in
        check Alcotest.int "unroll" 1 (count "hls.unroll" d);
        Verifier.verify_exn d);
    tc "non-simd loop has no unroll" (fun () ->
        let d =
          device_hls_of
            "program p\nreal :: y(4)\ninteger :: i\n!$omp target parallel do\ndo i = 1, 4\ny(i) = 1.0\nend do\n!$omp end target parallel do\nend program"
        in
        check Alcotest.int "no unroll" 0 (count "hls.unroll" d));
    tc "collapse(2) produces a nest" (fun () ->
        let d =
          device_hls_of
            "program p\nreal :: a(4, 4)\ninteger :: i, j\n!$omp target parallel do collapse(2)\ndo i = 1, 4\ndo j = 1, 4\na(i, j) = 1.0\nend do\nend do\n!$omp end target parallel do\nend program"
        in
        check Alcotest.int "two fors" 2 (count "scf.for" d);
        Verifier.verify_exn d);
    tc "reduction creates partitioned copies" (fun () ->
        let d =
          device_hls_of
            "program p\nreal :: x(8)\nreal :: s\ninteger :: i\ns = 0.0\n!$omp target parallel do reduction(+:s)\ndo i = 1, 8\ns = s + x(i)\nend do\n!$omp end target parallel do\nend program"
        in
        check Alcotest.int "partition directive" 1 (count "hls.array_partition" d);
        (* copies array allocated with the f32 copy count *)
        let allocas = Op.collect (fun o -> Op.name o = "memref.alloca") d in
        let has_copies =
          List.exists
            (fun o ->
              match Value.ty (Op.result1 o) with
              | Types.Memref { shape = [ Types.Static n ]; _ } ->
                n = Lower_omp_to_hls.default_options.Lower_omp_to_hls.copies_f32
              | _ -> false)
            allocas
        in
        check Alcotest.bool "copy buffer" true has_copies;
        Verifier.verify_exn d);
    tc "reduction rewrites accumulator accesses round robin" (fun () ->
        let d =
          device_hls_of
            "program p\nreal :: x(8)\nreal :: s\ninteger :: i\ns = 0.0\n!$omp target parallel do reduction(+:s)\ndo i = 1, 8\ns = s + x(i)\nend do\n!$omp end target parallel do\nend program"
        in
        (* inside the loop body a remsi computes iv mod n *)
        let fors = Op.collect Scf.is_for d in
        let body_has_rem =
          List.exists (fun f -> Op.exists (fun o -> Op.name o = "arith.remsi") f) fors
        in
        check Alcotest.bool "mod indexing" true body_has_rem);
    tc "pipeline II comes from options" (fun () ->
        let m = Ftn_frontend.Frontend.to_core saxpy_src in
        let r =
          Pipeline.run_mid_end
            ~options:
              {
                Pipeline.default_options with
                Pipeline.hls =
                  { Lower_omp_to_hls.default_options with Lower_omp_to_hls.pipeline_ii = 2 };
              }
            m
        in
        match r.Pipeline.device_hls with
        | Some d ->
          let pipeline_op = List.hd (Op.collect Hls.is_pipeline d) in
          (* the II operand is a constant 2 *)
          let ii_op = Op.operand pipeline_op 0 in
          let consts = Op.collect Arith.is_constant d in
          let def =
            List.find (fun c -> Value.equal (Op.result1 c) ii_op) consts
          in
          check (Alcotest.option Alcotest.int) "ii" (Some 2) (Arith.constant_int def)
        | None -> Alcotest.fail "no device");
  ]

(* --- hls_to_func + core_to_llvm --- *)

let llvm_tests =
  [
    tc "hls ops become intrinsic calls with declarations" (fun () ->
        let d = device_hls_of saxpy_src in
        let f = Hls_to_func.run d in
        check Alcotest.int "no hls left" 0
          (Op.count (fun o -> Op.dialect o = "hls") f);
        let calls = Op.collect (fun o -> Op.name o = "func.call") f in
        let callees = List.filter_map (fun o -> Op.symbol_attr o "callee") calls in
        check Alcotest.bool "pipeline intrinsic" true
          (List.mem Hls_to_func.spec_pipeline callees);
        check Alcotest.bool "interface intrinsic" true
          (List.mem Hls_to_func.spec_interface callees);
        (* declarations hoisted *)
        check Alcotest.bool "decl present" true
          (Op.find_function f Hls_to_func.spec_pipeline <> None));
    tc "interface bundle survives as call attribute" (fun () ->
        let d = device_hls_of saxpy_src in
        let f = Hls_to_func.run d in
        let calls = Op.collect (fun o -> Op.name o = "func.call") f in
        check Alcotest.bool "bundle kept" true
          (List.exists (fun o -> Op.string_attr o "bundle" = Some "gmem0") calls));
    tc "llvm conversion produces CFG" (fun () ->
        let d = Hls_to_func.run (device_hls_of saxpy_src) in
        let l = Core_to_llvm.run d in
        check Alcotest.int "no scf" 0 (Op.count (fun o -> Op.dialect o = "scf") l);
        check Alcotest.int "no memref" 0
          (Op.count (fun o -> Op.dialect o = "memref") l);
        check Alcotest.bool "cond_br" true (count "llvm.cond_br" l >= 1);
        check Alcotest.bool "gep" true (count "llvm.getelementptr" l >= 1);
        Verifier.verify_exn l);
    tc "llvm function signature uses pointers" (fun () ->
        let d = Hls_to_func.run (device_hls_of saxpy_src) in
        let l = Core_to_llvm.run d in
        let fn =
          List.find (fun o -> Op.name o = "llvm.func" && Op.regions o <> [])
            (Op.module_body l)
        in
        match Op.find_attr fn "function_type" with
        | Some (Attr.Type (Types.Func (args, _))) ->
          check Alcotest.bool "all pointers" true
            (List.for_all (function Types.Ptr _ -> true | _ -> false) args)
        | _ -> Alcotest.fail "function_type");
    tc "multi-dim static memrefs linearise" (fun () ->
        let d =
          device_hls_of
            "program p\nreal :: a(4, 4)\ninteger :: i, j\n!$omp target parallel do collapse(2)\ndo i = 1, 4\ndo j = 1, 4\na(i, j) = 1.0\nend do\nend do\n!$omp end target parallel do\nend program"
        in
        let l = Core_to_llvm.run (Hls_to_func.run d) in
        check Alcotest.bool "mul for linearisation" true (count "llvm.mul" l >= 1));
  ]

let () =
  Registry.register_all ();
  Alcotest.run "passes"
    [
      ("canonicalize", canonicalize_tests);
      ("lower-omp-data", omp_data_tests);
      ("lower-omp-target", omp_target_tests);
      ("lower-omp-to-hls", hls_tests);
      ("llvm", llvm_tests);
    ]
