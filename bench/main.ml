(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) on the simulated U280, printing measured values
   next to the paper's published numbers, plus one Bechamel micro-benchmark
   per table covering the computation that produces it.

     dune exec bench/main.exe            # full paper problem sizes
     dune exec bench/main.exe -- --quick # reduced sizes for smoke runs
     dune exec bench/main.exe -- --skip-bechamel *)

open Ftn_hlsim
open Ftn_runtime

let quick = Array.exists (String.equal "--quick") Sys.argv
let skip_bechamel = Array.exists (String.equal "--skip-bechamel") Sys.argv

(* --rewrite runs only the rewrite-driver comparison (BENCH_rewrite.json),
   which doubles as the `make bench-rewrite` sanity gate. *)
let rewrite_only = Array.exists (String.equal "--rewrite") Sys.argv

(* --compile runs only the domain-parallel compile-pipeline gate
   (BENCH_compile.json), which doubles as the `make bench-compile`
   sanity gate. *)
let compile_only = Array.exists (String.equal "--compile") Sys.argv

(* --interp runs only the interpreter-engine comparison (BENCH_interp.json),
   which doubles as the `make bench-interp` sanity gate. *)
let interp_only = Array.exists (String.equal "--interp") Sys.argv

(* --faults runs only the fault-injection comparison (BENCH_fault.json),
   which doubles as the `make bench-fault` sanity gate. *)
let fault_only = Array.exists (String.equal "--faults") Sys.argv

(* --backends runs only the cross-backend comparison (BENCH_backend.json),
   used as a sanity gate in `make check`. *)
let backend_only = Array.exists (String.equal "--backends") Sys.argv

(* --profile runs only the profiling-overhead gate (BENCH_profile.json),
   which doubles as the `make bench-profile` sanity gate. *)
let profile_only = Array.exists (String.equal "--profile") Sys.argv

(* --sched runs only the multi-device scheduler gate (BENCH_sched.json),
   which doubles as the `make bench-sched` sanity gate. *)
let sched_only = Array.exists (String.equal "--sched") Sys.argv

(* --chaos runs only the resilience-layer soak (BENCH_chaos.json),
   which doubles as the `make bench-chaos` sanity gate. *)
let chaos_only = Array.exists (String.equal "--chaos") Sys.argv

let progress fmt = Fmt.epr (fmt ^^ "@.")

let saxpy_sizes =
  if quick then [ 1_000; 10_000; 50_000; 100_000 ]
  else [ 10_000; 100_000; 1_000_000; 10_000_000 ]

let saxpy_labels =
  if quick then [ "N=1K"; "N=10K"; "N=50K"; "N=100K" ]
  else [ "N=10K"; "N=100K"; "N=1M"; "N=10M" ]

let sgesl_sizes = if quick then [ 64; 128; 256; 512 ] else [ 256; 512; 1024; 2048 ]
let sgesl_labels = List.map (fun n -> Fmt.str "N=%d" n) sgesl_sizes

(* --- measured raw data, shared between tables --- *)

type run_data = {
  device_time_s : float;
  kernel_time_s : float;
  resources : Resources.report;
}

let run_saxpy_ftn n =
  progress "  saxpy (Fortran flow) N=%d ..." n;
  let run = Core.Run.run (Ftn_linpack.Fortran_sources.saxpy ~n) in
  {
    device_time_s = Core.Run.device_time run;
    kernel_time_s = Core.Run.kernel_time run;
    resources =
      (List.hd run.Core.Run.bitstream.Bitstream.kernels).Bitstream.kd_resources;
  }

let run_saxpy_hand n =
  progress "  saxpy (hand-written HLS) N=%d ..." n;
  let r = Ftn_linpack.Hls_baselines.run_saxpy ~n () in
  {
    device_time_s = r.Ftn_linpack.Hls_baselines.result.Executor.device_time_s;
    kernel_time_s = r.Ftn_linpack.Hls_baselines.result.Executor.kernel_time_s;
    resources =
      (List.hd r.Ftn_linpack.Hls_baselines.bitstream.Bitstream.kernels)
        .Bitstream.kd_resources;
  }

let run_sgesl_ftn n =
  progress "  sgesl (Fortran flow) N=%d ..." n;
  let run = Core.Run.run (Ftn_linpack.Fortran_sources.sgesl ~n) in
  {
    device_time_s = Core.Run.device_time run;
    kernel_time_s = Core.Run.kernel_time run;
    resources =
      (List.hd run.Core.Run.bitstream.Bitstream.kernels).Bitstream.kd_resources;
  }

let run_sgesl_hand n =
  progress "  sgesl (hand-written HLS) N=%d ..." n;
  let r = Ftn_linpack.Hls_baselines.run_sgesl ~n () in
  {
    device_time_s = r.Ftn_linpack.Hls_baselines.result.Executor.device_time_s;
    kernel_time_s = r.Ftn_linpack.Hls_baselines.result.Executor.kernel_time_s;
    resources =
      (List.hd r.Ftn_linpack.Hls_baselines.bitstream.Bitstream.kernels)
        .Bitstream.kd_resources;
  }

let saxpy_ftn = lazy (List.map run_saxpy_ftn saxpy_sizes)
let saxpy_hand = lazy (List.map run_saxpy_hand saxpy_sizes)
let sgesl_ftn = lazy (List.map run_sgesl_ftn sgesl_sizes)
let sgesl_hand = lazy (List.map run_sgesl_hand sgesl_sizes)

(* --- formatting helpers --- *)

let rule = String.make 78 '-'

(* OCaml string continuations leave indentation runs inside literals;
   squeeze them for display. *)
let squeeze s =
  let buf = Buffer.create (String.length s) in
  let prev_space = ref false in
  String.iter
    (fun c ->
      if c = ' ' then begin
        if not !prev_space then Buffer.add_char buf ' ';
        prev_space := true
      end
      else begin
        prev_space := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let header title =
  Fmt.pr "@.%s@.%s@.%s@." rule (squeeze title) rule

let pp_row label cells =
  Fmt.pr "%-18s %s@." label
    (String.concat "  " (List.map (fun c -> Fmt.str "%14s" c) cells))

(* --- Tables 1 and 2: runtime --- *)

let paper_table1_ftn = [ (1.251, 0.028); (10.931, 0.017); (110.245, 0.018); (1073.044, 0.037) ]
let paper_table1_hand = [ (1.258, 0.025); (10.925, 0.149); (110.148, 0.018); (1072.888, 0.034) ]
let paper_table2_ftn = [ (20.445, 0.077); (80.791, 0.026); (325.117, 0.116); (1317.247, 0.101) ]
let paper_table2_hand = [ (20.594, 0.115); (81.121, 0.023); (325.573, 0.032); (1318.418, 0.042) ]

let measure_ms ~seed t_s =
  let s = Core.Measure.measure ~runs:10 ~seed t_s in
  (s.Core.Measure.median *. 1e3, s.Core.Measure.std *. 1e3)

let runtime_table ~title ~labels ~ftn ~hand ~paper_ftn ~paper_hand =
  header title;
  pp_row "" labels;
  let medians seed data =
    List.mapi
      (fun i (d : run_data) -> measure_ms ~seed:(seed + i) d.device_time_s)
      data
  in
  let ftn_ms = medians 11 ftn and hand_ms = medians 41 hand in
  let cells ms = List.map (fun (m, s) -> Fmt.str "%.3f ± %.3f" m s) ms in
  pp_row "Fortran OpenMP" (cells ftn_ms);
  pp_row "Hand-written HLS" (cells hand_ms);
  (* As in the paper, the difference is taken between the measured medians
     (hand-written relative to Fortran), so it sits at noise level. *)
  let diffs =
    List.map2
      (fun (f, _) (h, _) -> Fmt.str "%+.2f%%" (100.0 *. (h -. f) /. f))
      ftn_ms hand_ms
  in
  pp_row "Difference" diffs;
  if not quick then begin
    pp_row "[paper] Fortran"
      (List.map (fun (m, s) -> Fmt.str "%.3f ± %.3f" m s) paper_ftn);
    pp_row "[paper] Hand HLS"
      (List.map (fun (m, s) -> Fmt.str "%.3f ± %.3f" m s) paper_hand)
  end

let table1 () =
  runtime_table
    ~title:
      "Table 1: SAXPY runtime (ms, median ± std of 10 runs), Fortran OpenMP \
       vs hand-written HLS"
    ~labels:saxpy_labels ~ftn:(Lazy.force saxpy_ftn)
    ~hand:(Lazy.force saxpy_hand) ~paper_ftn:paper_table1_ftn
    ~paper_hand:paper_table1_hand

let table2 () =
  runtime_table
    ~title:
      "Table 2: SGESL runtime (ms, median ± std of 10 runs), Fortran OpenMP \
       vs hand-written HLS"
    ~labels:sgesl_labels ~ftn:(Lazy.force sgesl_ftn)
    ~hand:(Lazy.force sgesl_hand) ~paper_ftn:paper_table2_ftn
    ~paper_hand:paper_table2_hand

(* --- Tables 3 and 4: resource utilisation --- *)

let resource_table ~title ~ftn ~hand ~paper =
  header title;
  pp_row "" [ "LUT %"; "BRAM %"; "DSP %" ];
  let row (r : Resources.report) =
    [ Fmt.str "%.2f" r.Resources.lut_pct;
      Fmt.str "%.2f" r.Resources.bram_pct;
      Fmt.str "%.2f" r.Resources.dsp_pct ]
  in
  pp_row "Fortran OpenMP" (row ftn);
  pp_row "Hand-written HLS" (row hand);
  let (pf, ph) = paper in
  pp_row "[paper] Fortran" (List.map (Fmt.str "%.2f") pf);
  pp_row "[paper] Hand HLS" (List.map (Fmt.str "%.2f") ph)

let largest xs = List.nth xs (List.length xs - 1)

let table3 () =
  resource_table
    ~title:
      (Fmt.str
         "Table 3: SAXPY resource utilisation (%s, largest problem size)"
         (largest saxpy_labels))
    ~ftn:(largest (Lazy.force saxpy_ftn)).resources
    ~hand:(largest (Lazy.force saxpy_hand)).resources
    ~paper:([ 8.29; 10.07; 0.10 ], [ 8.29; 10.07; 0.10 ])

let table4 () =
  resource_table
    ~title:
      (Fmt.str "Table 4: SGESL resource utilisation (%s)" (largest sgesl_labels))
    ~ftn:(largest (Lazy.force sgesl_ftn)).resources
    ~hand:(largest (Lazy.force sgesl_hand)).resources
    ~paper:([ 8.24; 10.07; 0.10 ], [ 8.22; 10.07; 0.23 ])

(* --- Tables 5 and 6: power --- *)

let spec = Fpga_spec.u280

let power_table ~title ~seed0 ~labels ~ftn ~hand ~paper =
  header title;
  pp_row "" labels;
  let row seed data =
    List.mapi
      (fun i (d : run_data) ->
        let p =
          Power.fpga_power_w spec d.resources ~kernel_time_s:d.kernel_time_s
            ~device_time_s:d.device_time_s ()
        in
        let s = Core.Measure.measure_power ~seed:(seed + i) p in
        Fmt.str "%.3f" s.Core.Measure.median)
      data
  in
  pp_row "Fortran OpenMP" (row (seed0 + 7) ftn);
  pp_row "Hand-written HLS" (row (seed0 + 23) hand);
  let cpu_row =
    List.mapi
      (fun i (d : run_data) ->
        let p = Power.cpu_power_w spec ~kernel_time_s:d.kernel_time_s in
        let s =
          Core.Measure.measure_power ~seed:(seed0 + 59 + i) ~jitter_w:1.4 p
        in
        Fmt.str "%.2f" s.Core.Measure.median)
      ftn
  in
  pp_row "CPU single core" cpu_row;
  let pf, ph, pc = paper in
  pp_row "[paper] Fortran" (List.map (Fmt.str "%.3f") pf);
  pp_row "[paper] Hand HLS" (List.map (Fmt.str "%.3f") ph);
  pp_row "[paper] CPU" (List.map (Fmt.str "%.2f") pc)

let table5 () =
  power_table
    ~title:"Table 5: SAXPY median power draw (W), FPGA flows vs CPU single core"
    ~seed0:100 ~labels:saxpy_labels ~ftn:(Lazy.force saxpy_ftn)
    ~hand:(Lazy.force saxpy_hand)
    ~paper:
      ( [ 21.847; 23.528; 25.535; 24.167 ],
        [ 22.178; 22.496; 23.998; 24.297 ],
        [ 56.13; 55.08; 57.31; 54.91 ] )

let table6 () =
  power_table
    ~title:"Table 6: SGESL median power draw (W), FPGA flows vs CPU single core"
    ~seed0:500 ~labels:sgesl_labels ~ftn:(Lazy.force sgesl_ftn)
    ~hand:(Lazy.force sgesl_hand)
    ~paper:
      ( [ 21.866; 22.989; 24.243; 24.278 ],
        [ 22.363; 23.121; 23.640; 24.066 ],
        [ 52.70; 53.71; 52.44; 52.82 ] )

(* --- Table 7: lines of code --- *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let component_loc files = List.fold_left (fun acc f -> acc + count_lines f) 0 files

(* Our files mapped onto the paper's four components. *)
let loc_components =
  [
    ( "OpenMP to HLS dialect (this work)",
      2363,
      [ "lib/dialects/omp.ml"; "lib/dialects/device.ml";
        "lib/passes/lower_omp_data.ml"; "lib/passes/lower_omp_target.ml";
        "lib/passes/split_modules.ml"; "lib/passes/lower_omp_to_hls.ml";
        "lib/passes/pipeline.ml" ] );
    ( "HLS dialect and lowering from [20]",
      2382,
      [ "lib/dialects/hls.ml"; "lib/passes/hls_to_func.ml";
        "lib/hlsim/schedule.ml"; "lib/hlsim/synth.ml" ] );
    ( "Integrating LLVM and AMD HLS backend [19]",
      1654,
      [ "lib/passes/core_to_llvm.ml"; "lib/codegen/llvm_ir.ml";
        "lib/codegen/llvm_downgrade.ml"; "lib/codegen/hls_intrinsics.ml" ] );
    ( "Lowering from HLFIR & FIR to core dialects [3]",
      5956,
      [ "lib/fortran/ast.ml"; "lib/fortran/src_lexer.ml";
        "lib/fortran/src_parser.ml"; "lib/fortran/omp_parser.ml";
        "lib/fortran/sema.ml"; "lib/fortran/lower_fir.ml";
        "lib/fortran/fir_to_core.ml"; "lib/fortran/frontend.ml" ] );
  ]

let table7 () =
  header "Table 7: lines of code per component (paper vs this reproduction)";
  pp_row "Component" [ "paper LoC"; "this repo" ];
  List.iter
    (fun (name, paper_loc, files) ->
      let ours = component_loc files in
      Fmt.pr "%-48s %10d %10s@." name paper_loc
        (if ours = 0 then "(n/a)" else string_of_int ours))
    loc_components

(* --- Figures 1 and 2: compilation flow traces --- *)

let dialect_census m =
  let tbl = Hashtbl.create 8 in
  Ftn_ir.Op.walk
    (fun o ->
      let d = Ftn_ir.Op.dialect o in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    m;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (k, v) -> Fmt.str "%s:%d" k v)
  |> String.concat " "

let figure1 () =
  header
    "Figure 1: lowering Flang output (FIR) to core dialects and LLVM-IR \
     (flow of [3]), traced on SAXPY";
  let src = Ftn_linpack.Fortran_sources.saxpy ~n:1024 in
  let fir = Ftn_frontend.Frontend.to_fir src in
  Fmt.pr "  Fortran source            %d lines@."
    (List.length (String.split_on_char '\n' src));
  Fmt.pr "  | flang: parse + lower@.";
  Fmt.pr "  v@.";
  Fmt.pr "  HLFIR/FIR + omp           [%s]@." (dialect_census fir);
  Fmt.pr "  | fir-to-core [3]@.";
  Fmt.pr "  v@.";
  let core = Ftn_frontend.Fir_to_core.run fir in
  Fmt.pr "  core dialects + omp       [%s]@." (dialect_census core);
  Fmt.pr "  | mlir-opt -> llvm dialect -> LLVM-IR (device path)@.";
  Fmt.pr "  v@.";
  let art = Core.Compiler.compile src in
  match art.Core.Compiler.llvm_ir with
  | Some t ->
    Fmt.pr "  LLVM-IR                   %d lines@."
      (List.length (String.split_on_char '\n' t))
  | None -> ()

let figure2 () =
  header
    "Figure 2: full compilation flow, Fortran + OpenMP to host binary and \
     FPGA bitstream";
  let src = Ftn_linpack.Fortran_sources.saxpy ~n:1024 in
  let art = Core.Compiler.compile src in
  let stage name m = Fmt.pr "  %-26s [%s]@." name (dialect_census m) in
  stage "1. FIR + omp (Flang)" art.Core.Compiler.fir_module;
  stage "2. core + omp ([3])" art.Core.Compiler.core_module;
  stage "3. +device dialect" art.Core.Compiler.combined;
  Fmt.pr "     | split host / device@.";
  stage "4a. host module" art.Core.Compiler.host;
  (match art.Core.Compiler.host_cpp with
  | Some cpp ->
    Fmt.pr "      -> C++ with OpenCL     %d lines@."
      (List.length (String.split_on_char '\n' cpp))
  | None -> ());
  (match art.Core.Compiler.device_hls with
  | Some d -> stage "4b. device module (hls)" d
  | None -> ());
  (match art.Core.Compiler.device_llvm with
  | Some d -> stage "5.  llvm dialect" d
  | None -> ());
  (match art.Core.Compiler.llvm_ir_downgraded with
  | Some t ->
    Fmt.pr "  6.  LLVM-7 IR for Vitis    %d lines@."
      (List.length (String.split_on_char '\n' t))
  | None -> ());
  let bs = Core.Compiler.synthesise art in
  Fmt.pr "  7.  v++ (simulated)        -> %s, %d kernel(s)@."
    bs.Bitstream.xclbin_name
    (List.length bs.Bitstream.kernels);
  Fmt.pr "@.  pass pipeline timing:@.";
  List.iter
    (fun s -> Fmt.pr "    %a@." Ftn_ir.Pass.pp_stage s)
    art.Core.Compiler.stages

(* --- Ablations: the design choices DESIGN.md calls out --- *)

(* Ablation A: the unroll-vs-RMW-chain mechanism that makes SAXPY sustain
   ~32 cycles/element while SGESL pays the full AXI round trip. Sweeps the
   simd factor with the design-space explorer. *)
let ablation_unroll () =
  header
    "Ablation A: unroll factor vs initiation interval (design-space      exploration over simdlen)";
  let art = Core.Compiler.compile (Ftn_linpack.Fortran_sources.saxpy ~n:1024) in
  match art.Core.Compiler.device_hls with
  | None -> ()
  | Some d ->
    let fn =
      List.find
        (fun o ->
          Ftn_dialects.Func_d.is_func o && Ftn_dialects.Func_d.has_body o)
        (Ftn_ir.Op.module_body d)
    in
    let ks = Schedule.analyse_kernel spec fn in
    (match Dse.explore_kernel ~spec ~lut_budget:20_000 ks with
    | Some r -> Fmt.pr "%a" Dse.pp r
    | None -> Fmt.pr "  (no pipelined loop)@.");
    Fmt.pr
      "  -> below the crossover the un-disambiguated read-modify-write        chain@.     (%d cycles) dominates; above it the m_axi port        serialisation takes@.     over and cycles/iteration stop improving.@."
      spec.Fpga_spec.rmw_chain_cycles

(* Ablation B: MAC fusion on/off — the Table 4 divergence isolated. *)
let ablation_mac_fusion () =
  header "Ablation B: backend MAC pattern fusion (frontend idiom sensitivity)";
  let device = Ftn_linpack.Hls_baselines.sgesl_device ~n:64 in
  let fn =
    List.find
      (fun o ->
        Ftn_dialects.Func_d.is_func o && Ftn_dialects.Func_d.has_body o)
      (Ftn_ir.Op.module_body device)
  in
  let ks = Schedule.analyse_kernel spec fn in
  List.iter
    (fun frontend ->
      let r = Resources.estimate ~frontend spec ks in
      Fmt.pr "  %-18s %a@."
        (Resources.string_of_frontend frontend)
        Resources.pp r)
    [ Resources.Clang_hls; Resources.Mlir_flow ];
  Fmt.pr
    "  -> the same kernel structure costs %d DSPs with Clang-shaped IR and@.    \     0 DSPs (LUT-built MAC) through the MLIR flow, as in Table 4.@."
    spec.Fpga_spec.dsp_fused_mac

(* Ablation C: launch-overhead sensitivity for the per-iteration-offload
   SGESL pattern. *)
let ablation_launch_overhead () =
  header
    "Ablation C: kernel-launch overhead sensitivity (SGESL offloads one      kernel per outer iteration)";
  let n = if quick then 128 else 512 in
  List.iter
    (fun overhead_us ->
      let spec' =
        {
          spec with
          Fpga_spec.kernel_launch_overhead_s = overhead_us *. 1e-6;
        }
      in
      let run =
        Core.Run.run
          ~options:
            { Core.Options.default with
              Core.Options.backend = Ftn_backend.Backend_vitis.make ~spec:spec' ()
            }
          (Ftn_linpack.Fortran_sources.sgesl ~n)
      in
      Fmt.pr "  launch overhead %6.1f us -> total %8.3f ms (%d launches)@."
        overhead_us
        (Core.Run.device_time run *. 1e3)
        run.Core.Run.exec.Executor.kernel_launches)
    [ 1.0; 10.0; 100.0; 1000.0 ];
  Fmt.pr
    "  -> per-iteration offload amplifies every microsecond of launch cost      by N-1.@."

(* Ablation D: what the canonicaliser buys on the device side. *)
let ablation_canonicalise () =
  header "Ablation D: canonicalisation of the offloaded kernel";
  let src = Ftn_linpack.Fortran_sources.saxpy ~n:1024 in
  let core = Ftn_frontend.Frontend.to_core src in
  let with_canon =
    Ftn_passes.Pipeline.run_mid_end ~to_llvm:false core
  in
  let without_canon =
    Ftn_passes.Pipeline.run_mid_end
      ~options:
        { Ftn_passes.Pipeline.default_options with
          Ftn_passes.Pipeline.canonicalize = false }
      ~to_llvm:false core
  in
  let ops label r =
    match r.Ftn_passes.Pipeline.device_hls with
    | Some d ->
      let loads = Ftn_ir.Op.count (fun o -> Ftn_ir.Op.name o = "memref.load") d in
      Fmt.pr "  %-22s %4d ops, %2d loads in kernel@." label
        (Ftn_ir.Pass.count_ops d) loads
    | None -> ()
  in
  ops "with canonicalise" with_canon;
  ops "without canonicalise" without_canon;
  Fmt.pr
    "  -> store-to-load forwarding removes the loop-variable round trips@.";
  Fmt.pr "     that would otherwise appear as loop-carried memory dependences@.";
  Fmt.pr "     to HLS (the paper's simple canonicalisation).@."

(* Ablation E: burst inference — the memory optimisation the paper's
   future work anticipates, modelled by coalescing contiguous accesses and
   disambiguating the read/write streams. *)
let ablation_burst () =
  header
    "Ablation E: AXI burst inference (the paper's future-work memory \
     optimisation)";
  let n = if quick then 10_000 else 100_000 in
  List.iter
    (fun burst ->
      let spec' = { spec with Fpga_spec.burst_inference = burst } in
      let run =
        Core.Run.run
          ~options:
            { Core.Options.default with
              Core.Options.backend = Ftn_backend.Backend_vitis.make ~spec:spec' ()
            }
          (Ftn_linpack.Fortran_sources.saxpy ~n)
      in
      Fmt.pr "  saxpy N=%d, burst %-3s -> kernel %8.3f ms@." n
        (if burst then "on" else "off")
        (Core.Run.kernel_time run *. 1e3))
    [ false; true ];
  let n2 = if quick then 64 else 256 in
  List.iter
    (fun burst ->
      let spec' = { spec with Fpga_spec.burst_inference = burst } in
      let run =
        Core.Run.run
          ~options:
            { Core.Options.default with
              Core.Options.backend = Ftn_backend.Backend_vitis.make ~spec:spec' ()
            }
          (Ftn_linpack.Fortran_sources.sgesl ~n:n2)
      in
      Fmt.pr "  sgesl N=%d, burst %-3s  -> total  %8.3f ms@." n2
        (if burst then "on" else "off")
        (Core.Run.device_time run *. 1e3))
    [ false; true ];
  Fmt.pr
    "  -> bursting removes both the per-beat AXI cost and the RMW chain:@.";
  Fmt.pr
    "     the un-optimised flows of the paper leave roughly an order of@.";
  Fmt.pr "     magnitude of kernel time on the table.@."

(* --- BENCH_obs.json: observability export for the two benchmark codes.
   Each case runs inside its own span collector so the per-stage compile
   times (wall-clock spans) and the executor breakdown (simulated device
   timeline) are captured side by side, plus the global metrics registry. *)

let obs_case name src =
  progress "  obs capture: %s ..." name;
  let open Ftn_obs in
  let c = Span.create () in
  let run = Span.with_collector c (fun () -> Core.Run.run src) in
  let exec = run.Core.Run.exec in
  let span_obj (sp : Span.span) =
    Json.Obj
      ([ ("name", Json.String sp.Span.name);
         ("dur_s", Json.Float sp.Span.dur_s) ]
      @
      match sp.Span.parent with
      | Some p -> [ ("parent", Json.Int p) ]
      | None -> [])
  in
  let wall, sim =
    List.partition
      (fun (sp : Span.span) -> sp.Span.clock = Span.Wall)
      (Span.spans c)
  in
  ( name,
    Json.Obj
      [
        ("compile_spans", Json.List (List.map span_obj wall));
        ("device_spans", Json.Int (List.length sim));
        ( "executor",
          Json.Obj
            [
              ("device_time_s", Json.Float exec.Executor.device_time_s);
              ("kernel_time_s", Json.Float exec.Executor.kernel_time_s);
              ("transfer_time_s", Json.Float exec.Executor.transfer_time_s);
              ("overhead_time_s", Json.Float exec.Executor.overhead_time_s);
              ("kernel_launches", Json.Int exec.Executor.kernel_launches);
              ("bytes_transferred", Json.Int exec.Executor.bytes_transferred);
            ] );
      ] )

let obs_report () =
  header "Observability export (BENCH_obs.json)";
  let n_saxpy = if quick then 1_000 else 100_000 in
  let n_sgesl = if quick then 64 else 256 in
  let cases =
    [
      obs_case
        (Fmt.str "saxpy_n%d" n_saxpy)
        (Ftn_linpack.Fortran_sources.saxpy ~n:n_saxpy);
      obs_case
        (Fmt.str "sgesl_n%d" n_sgesl)
        (Ftn_linpack.Fortran_sources.sgesl ~n:n_sgesl);
    ]
  in
  let j =
    Ftn_obs.Json.Obj
      [
        ("benchmarks", Ftn_obs.Json.Obj cases);
        ("metrics", Ftn_obs.Metrics.to_json ());
      ]
  in
  Ftn_obs.Json.write_file "BENCH_obs.json" j;
  Fmt.pr "  wrote BENCH_obs.json@."

(* --- BENCH_rewrite.json: worklist vs sweep rewrite-driver comparison.
   The rewriter only runs in the mid-end, so each driver is timed on
   [Pipeline.run_mid_end] alone (best of N interleaved repetitions after
   a warmup rep — full [Core.Run.run] wall is dominated by interpreter
   execution and warms up whichever driver runs first). Per driver the
   bench records ops visited, patterns fired, folds, erasures and the
   best mid-end wall, plus the visit ratio (the sweep driver visits every op
   on every sweep — the product the worklist engine must beat). The run
   is also a sanity gate: it exits nonzero unless patterns fired under
   both drivers, the canonically renumbered compiled IR is byte-identical
   across drivers, the worklist visits strictly fewer ops AND wins on
   wall clock on every case, and — for the interpretable cases — the
   program output matches the CPU interpreter reference. *)

let stencil_source ~n ~steps = Ftn_linpack.Fortran_sources.stencil ~n ~steps

type rewrite_measurement = {
  rm_visited : int;
  rm_fired : int;
  rm_folded : int;
  rm_erased : int;
  rm_wall_s : float;  (** Best-of-reps mid-end wall. *)
  rm_canon : string;  (** Renumbered printed artifacts. *)
}

let median_of xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let canon_module = function
  | Some m -> Ftn_ir.Printer.to_string (fst (Ftn_ir.Op.renumber m))
  | None -> "<none>"

(* The three compiled artifacts, canonically renumbered so driver- or
   domain-count-dependent SSA numbering cannot mask structural identity. *)
let canon_compiled (c : Ftn_passes.Pipeline.compiled) =
  canon_module (Some c.Ftn_passes.Pipeline.host)
  ^ "\n====\n"
  ^ canon_module c.Ftn_passes.Pipeline.device_hls
  ^ "\n====\n"
  ^ canon_module c.Ftn_passes.Pipeline.device_llvm

let with_rewrite_driver driver f =
  let saved = Ftn_ir.Rewrite.default_driver () in
  Ftn_ir.Rewrite.set_default_driver driver;
  Fun.protect
    ~finally:(fun () -> Ftn_ir.Rewrite.set_default_driver saved)
    f

(* Metrics deltas and canonical artifacts for one driver (also the
   warmup rep for the timing loop below). *)
let profile_rewrite driver core =
  let open Ftn_obs in
  with_rewrite_driver driver (fun () ->
      let grab name = Metrics.counter_value ("rewrite." ^ name) in
      let v0 = grab "ops_visited" and f0 = grab "patterns_fired" in
      let fo0 = grab "ops_folded" and e0 = grab "ops_erased" in
      let compiled = Ftn_passes.Pipeline.run_mid_end core in
      {
        rm_visited = grab "ops_visited" - v0;
        rm_fired = grab "patterns_fired" - f0;
        rm_folded = grab "ops_folded" - fo0;
        rm_erased = grab "ops_erased" - e0;
        rm_wall_s = 0.0;
        rm_canon = canon_compiled compiled;
      })

(* Time both drivers with their reps interleaved pairwise, so slow drift
   of the machine (other processes, thermal state) hits both equally,
   and report the best observed wall per driver — under additive noise
   the minimum is the stable estimator of the true cost, which keeps the
   wall_speedup >= 1.0 gate from flapping on a loaded 1-core CI box. *)
let time_rewrite_pair ~reps core =
  let one driver =
    with_rewrite_driver driver (fun () ->
        (* collect the previous rep's garbage before the clock starts so
           major-GC work isn't attributed to whichever driver runs next *)
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Ftn_passes.Pipeline.run_mid_end core);
        Unix.gettimeofday () -. t0)
  in
  let wl = ref Float.infinity and sw = ref Float.infinity in
  let round () =
    for _ = 1 to reps do
      wl := Float.min !wl (one Ftn_ir.Rewrite.Worklist);
      sw := Float.min !sw (one Ftn_ir.Rewrite.Sweep)
    done
  in
  round ();
  (* On a loaded box one driver can fail to touch its floor within a
     single round (a scheduler preemption lands on all its reps). Extra
     interleaved rounds only lower both minima, so they converge on the
     true ordering: if the sweep is genuinely faster the retries cannot
     flip the result, they just spend a few more ms confirming it. *)
  let extra = ref 3 in
  while !wl >= !sw && !extra > 0 do
    decr extra;
    round ()
  done;
  (!wl, !sw)

let rewrite_report () =
  header "Rewrite driver comparison (BENCH_rewrite.json)";
  let n_sgesl = if quick then 64 else 256 in
  let stencil_n = if quick then 64 else 128 in
  let saxpy_n = if quick then 1_000_000 else 10_000_000 in
  let mk_kernels = if quick then 12 else 32 in
  let mk_n = if quick then 512 else 4096 in
  (* the gate is best-of-reps with a warmup rep (the profile pass); each
     rep is mid-end only (a few ms), so a high rep count is cheap and
     keeps the wall_speedup >= 1.0 gate stable even in --quick runs *)
  let reps = 9 in
  (* `Run cases also execute the program under both drivers and compare
     against the CPU interpreter; `Compile cases are production-size and
     checked on canonical IR identity only. *)
  let cases =
    [
      ( Fmt.str "sgesl_n%d" n_sgesl,
        Ftn_linpack.Fortran_sources.sgesl ~n:n_sgesl,
        `Run );
      ( Fmt.str "stencil_n%d" stencil_n,
        stencil_source ~n:stencil_n ~steps:(if quick then 5 else 10),
        `Run );
      ( Fmt.str "saxpy_n%d" saxpy_n,
        Ftn_linpack.Fortran_sources.saxpy ~n:saxpy_n,
        `Compile );
      ( Fmt.str "many_kernels_k%d" mk_kernels,
        Ftn_linpack.Fortran_sources.many_kernels ~kernels:mk_kernels ~n:mk_n,
        `Compile );
    ]
  in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let case_json (name, src, kind) =
    progress "  rewrite bench: %s ..." name;
    let core = Ftn_frontend.Frontend.to_core src in
    let wl = profile_rewrite Ftn_ir.Rewrite.Worklist core in
    let sw = profile_rewrite Ftn_ir.Rewrite.Sweep core in
    let wl_wall, sw_wall = time_rewrite_pair ~reps core in
    let wl = { wl with rm_wall_s = wl_wall } in
    let sw = { sw with rm_wall_s = sw_wall } in
    if wl.rm_fired = 0 then fail "%s: no patterns fired under the worklist driver" name;
    if sw.rm_fired = 0 then fail "%s: no patterns fired under the sweep driver" name;
    let ir_identical = String.equal wl.rm_canon sw.rm_canon in
    if not ir_identical then
      fail "%s: worklist and sweep compiled IR differ" name;
    let outputs_ok =
      match kind with
      | `Compile -> ir_identical
      | `Run ->
        let out d = with_rewrite_driver d (fun () -> Core.Run.output (Core.Run.run src)) in
        let wl_out = out Ftn_ir.Rewrite.Worklist in
        let sw_out = out Ftn_ir.Rewrite.Sweep in
        let cpu_out, _ = Core.Run.run_cpu src in
        if not (String.equal wl_out sw_out) then
          fail "%s: worklist and sweep program outputs differ" name;
        if not (String.equal wl_out cpu_out) then
          fail "%s: device output differs from the CPU interpreter reference" name;
        ir_identical && String.equal wl_out sw_out && String.equal wl_out cpu_out
    in
    if wl.rm_visited >= sw.rm_visited then
      fail "%s: worklist visited %d ops, not fewer than the sweep driver's %d"
        name wl.rm_visited sw.rm_visited;
    let ratio = float_of_int sw.rm_visited /. float_of_int (max 1 wl.rm_visited) in
    let speedup = sw.rm_wall_s /. Float.max 1e-9 wl.rm_wall_s in
    if speedup < 1.0 then
      fail "%s: worklist mid-end wall %.2f ms is slower than the sweep's %.2f ms (%.2fx)"
        name (wl.rm_wall_s *. 1e3) (sw.rm_wall_s *. 1e3) speedup;
    Fmt.pr "  %-20s worklist %6d visits %5d fired %6.2f ms | sweep %6d visits %5d fired %6.2f ms | %.2fx fewer visits | %.2fx wall@."
      name wl.rm_visited wl.rm_fired (wl.rm_wall_s *. 1e3)
      sw.rm_visited sw.rm_fired (sw.rm_wall_s *. 1e3) ratio speedup;
    let side m =
      Ftn_obs.Json.Obj
        [
          ("ops_visited", Ftn_obs.Json.Int m.rm_visited);
          ("patterns_fired", Ftn_obs.Json.Int m.rm_fired);
          ("ops_folded", Ftn_obs.Json.Int m.rm_folded);
          ("ops_erased", Ftn_obs.Json.Int m.rm_erased);
          ("wall_s", Ftn_obs.Json.Float m.rm_wall_s);
        ]
    in
    ( name,
      Ftn_obs.Json.Obj
        [
          ("worklist", side wl);
          ("sweep", side sw);
          ("reps", Ftn_obs.Json.Int reps);
          ("visit_ratio", Ftn_obs.Json.Float ratio);
          ("wall_speedup", Ftn_obs.Json.Float speedup);
          ("outputs_identical", Ftn_obs.Json.Bool outputs_ok);
        ] )
  in
  let j = Ftn_obs.Json.Obj [ ("cases", Ftn_obs.Json.Obj (List.map case_json cases)) ] in
  Ftn_obs.Json.write_file "BENCH_rewrite.json" j;
  Fmt.pr "  wrote BENCH_rewrite.json@.";
  if !failures <> [] then begin
    List.iter (fun s -> Fmt.epr "rewrite bench FAILED: %s@." s) (List.rev !failures);
    exit 1
  end

(* --- BENCH_compile.json: domain-parallel compile pipeline gate.
   Compiles the many-kernel module with the legacy sequential pipeline
   and with the partitioned pipeline on 1, 2 and 4 domains, gating:
     - byte-identity of the canonically renumbered artifacts across all
       domain counts, and of domains>=1 vs renumber(sequential) — the
       determinism contract of Pass.run_pipeline_parallel;
     - program output under --compile-domains 4 equal to the legacy
       sequential path and the CPU interpreter reference;
     - >= 1.5x mid-end wall speedup of 4 domains over 1 domain — only
       enforced when the machine actually has >= 4 cores
       (Domain.recommended_domain_count); a 1-core CI container cannot
       speed anything up by parallelism, so there the speedup is
       recorded informationally and identity remains the hard gate.
   Also records a per-stage compile-time breakdown (SAXPY at production
   N and the many-kernel case) and prints per-stage wall deltas against
   the previous BENCH_compile.json, if one is on disk. *)

let options_with_domains domains =
  {
    Core.Options.default with
    Core.Options.pipeline =
      {
        Ftn_passes.Pipeline.default_options with
        Ftn_passes.Pipeline.domains;
      };
  }

let read_json_file path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ftn_obs.Json.parse s with Ok j -> Some j | Error _ -> None
  end
  else None

let json_member key = function
  | Ftn_obs.Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let json_path keys j =
  List.fold_left
    (fun acc k -> Option.bind acc (json_member k))
    (Some j) keys

let json_float = function
  | Some (Ftn_obs.Json.Float f) -> Some f
  | Some (Ftn_obs.Json.Int i) -> Some (float_of_int i)
  | _ -> None

let compile_report () =
  header "Compile pipeline comparison (BENCH_compile.json)";
  let mk_kernels = if quick then 12 else 32 in
  let mk_n = if quick then 512 else 4096 in
  let saxpy_n = if quick then 1_000_000 else 10_000_000 in
  let reps = if quick then 5 else 7 in
  let cores = Domain.recommended_domain_count () in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let mk_name = Fmt.str "many_kernels_k%d" mk_kernels in
  let src = Ftn_linpack.Fortran_sources.many_kernels ~kernels:mk_kernels ~n:mk_n in
  let core = Ftn_frontend.Frontend.to_core src in
  let mid domains =
    let options =
      {
        Ftn_passes.Pipeline.default_options with
        Ftn_passes.Pipeline.domains;
      }
    in
    Ftn_passes.Pipeline.run_mid_end ~options core
  in
  progress "  compile bench: %s identity ..." mk_name;
  let c0 = mid 0 and c1 = mid 1 and c2 = mid 2 and c4 = mid 4 in
  let k0 = canon_compiled c0
  and k1 = canon_compiled c1
  and k2 = canon_compiled c2
  and k4 = canon_compiled c4 in
  let id_12 = String.equal k1 k2 and id_14 = String.equal k1 k4 in
  let id_seq = String.equal k1 k0 in
  if not id_12 then fail "%s: domains=1 and domains=2 artifacts differ" mk_name;
  if not id_14 then fail "%s: domains=1 and domains=4 artifacts differ" mk_name;
  if not id_seq then
    fail "%s: parallel artifacts differ from the renumbered sequential output"
      mk_name;
  (* program output: full run through --compile-domains 4 vs the legacy
     sequential path and the CPU reference, at an interpretable size *)
  let run_src =
    Ftn_linpack.Fortran_sources.many_kernels ~kernels:mk_kernels
      ~n:(if quick then 128 else 256)
  in
  let out_par =
    Core.Run.output (Core.Run.run ~options:(options_with_domains 4) run_src)
  in
  let out_seq =
    Core.Run.output (Core.Run.run ~options:(options_with_domains 0) run_src)
  in
  let cpu_out, _ = Core.Run.run_cpu run_src in
  let output_ok = String.equal out_par out_seq && String.equal out_par cpu_out in
  if not (String.equal out_par out_seq) then
    fail "%s: --compile-domains 4 program output differs from sequential" mk_name;
  if not (String.equal out_par cpu_out) then
    fail "%s: program output differs from the CPU interpreter reference" mk_name;
  (* wall: median-of-reps mid-end per domain count *)
  let wall domains =
    ignore (mid domains);
    median_of
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           ignore (mid domains);
           Unix.gettimeofday () -. t0))
  in
  progress "  compile bench: %s wall ..." mk_name;
  let w0 = wall 0 and w1 = wall 1 and w2 = wall 2 and w4 = wall 4 in
  let speedup = w1 /. Float.max 1e-9 w4 in
  let speedup_gated = cores >= 4 in
  if speedup_gated && speedup < 1.5 then
    fail
      "%s: 4-domain mid-end wall speedup %.2fx is below the 1.5x target on a \
       %d-core machine"
      mk_name speedup cores;
  Fmt.pr
    "  %-20s seq %6.2f ms | d1 %6.2f ms | d2 %6.2f ms | d4 %6.2f ms | %.2fx \
     d4-vs-d1 (%d cores%s)@."
    mk_name (w0 *. 1e3) (w1 *. 1e3) (w2 *. 1e3) (w4 *. 1e3) speedup cores
    (if speedup_gated then ", gated >= 1.5x" else ", speedup informational");
  (* per-stage compile-time breakdown; a pass name recurring across the
     host and device pipelines (canonicalize) gets a #k suffix so the
     object keys — and the regression lookup below — stay unique *)
  let stage_obj (c : Ftn_passes.Pipeline.compiled) =
    let seen = Hashtbl.create 8 in
    Ftn_obs.Json.Obj
      (List.filter_map
         (fun (s : Ftn_ir.Pass.stage_record) ->
           if String.equal s.Ftn_ir.Pass.stage_name "input" then None
           else begin
             let n =
               1
               + Option.value ~default:0
                   (Hashtbl.find_opt seen s.Ftn_ir.Pass.stage_name)
             in
             Hashtbl.replace seen s.Ftn_ir.Pass.stage_name n;
             let key =
               if n = 1 then s.Ftn_ir.Pass.stage_name
               else Fmt.str "%s#%d" s.Ftn_ir.Pass.stage_name n
             in
             Some (key, Ftn_obs.Json.Float (s.Ftn_ir.Pass.elapsed_s *. 1e3))
           end)
         c.Ftn_passes.Pipeline.stages)
  in
  let saxpy_name = Fmt.str "saxpy_n%d" saxpy_n in
  progress "  compile bench: %s stages ..." saxpy_name;
  let saxpy_compiled =
    Ftn_passes.Pipeline.run_mid_end
      (Ftn_frontend.Frontend.to_core
         (Ftn_linpack.Fortran_sources.saxpy ~n:saxpy_n))
  in
  (* regression summary: per-stage wall deltas vs the previous report *)
  let previous = read_json_file "BENCH_compile.json" in
  let report_stage_deltas case_name stages_json =
    match previous with
    | None -> ()
    | Some prev ->
      (match stages_json with
      | Ftn_obs.Json.Obj stages ->
        List.iter
          (fun (stage, v) ->
            match
              ( json_float (Some v),
                json_float
                  (json_path [ "cases"; case_name; "stages"; stage ] prev) )
            with
            | Some now, Some before when before > 1e-9 ->
              let delta = (now -. before) /. before *. 100.0 in
              if Float.abs delta >= 1.0 then
                Fmt.pr "    %s/%s: %.2f -> %.2f ms (%+.0f%%)@." case_name
                  stage before now delta
            | _ -> ())
          stages
      | _ -> ())
  in
  let saxpy_stages = stage_obj saxpy_compiled in
  let mk_stages = stage_obj c1 in
  if previous <> None then
    Fmt.pr "  per-stage wall deltas vs previous BENCH_compile.json:@.";
  report_stage_deltas saxpy_name saxpy_stages;
  report_stage_deltas mk_name mk_stages;
  let j =
    Ftn_obs.Json.Obj
      [
        ("cores", Ftn_obs.Json.Int cores);
        ( "cases",
          Ftn_obs.Json.Obj
            [
              ( mk_name,
                Ftn_obs.Json.Obj
                  [
                    ("kernels", Ftn_obs.Json.Int mk_kernels);
                    ("reps", Ftn_obs.Json.Int reps);
                    ( "identity",
                      Ftn_obs.Json.Obj
                        [
                          ("domains_1_vs_2", Ftn_obs.Json.Bool id_12);
                          ("domains_1_vs_4", Ftn_obs.Json.Bool id_14);
                          ("parallel_vs_sequential", Ftn_obs.Json.Bool id_seq);
                          ("program_output", Ftn_obs.Json.Bool output_ok);
                        ] );
                    ( "wall_ms",
                      Ftn_obs.Json.Obj
                        [
                          ("sequential", Ftn_obs.Json.Float (w0 *. 1e3));
                          ("domains_1", Ftn_obs.Json.Float (w1 *. 1e3));
                          ("domains_2", Ftn_obs.Json.Float (w2 *. 1e3));
                          ("domains_4", Ftn_obs.Json.Float (w4 *. 1e3));
                        ] );
                    ("speedup_domains_4_vs_1", Ftn_obs.Json.Float speedup);
                    ("speedup_target", Ftn_obs.Json.Float 1.5);
                    ("speedup_gated", Ftn_obs.Json.Bool speedup_gated);
                    ("stages", mk_stages);
                  ] );
              ( saxpy_name,
                Ftn_obs.Json.Obj [ ("stages", saxpy_stages) ] );
            ] );
      ]
  in
  Ftn_obs.Json.write_file "BENCH_compile.json" j;
  Fmt.pr "  wrote BENCH_compile.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "compile bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* --- BENCH_interp.json: tree-walking vs closure-compiled interpreter.
   Compiles and synthesises SGESL and the heat-diffusion stencil once,
   then executes the host program against the bitstream under each
   engine, measuring wall time, steps/second and (for the compiled
   engine) closure-compilation time. The run is also a sanity gate: it
   exits nonzero unless both engines produce byte-identical output,
   identical simulated device times, identical step counts, and the
   compiled engine is at least 3x faster. *)

type interp_measurement = {
  im_wall_s : float;  (** Best-of-reps executor wall time. *)
  im_steps : int;
  im_compile_ms : float;  (** Closure-compilation time, first rep. *)
  im_output : string;
  im_device_time_s : float;
}

let hist_sum name =
  match Ftn_obs.Metrics.find name with
  | Some (Ftn_obs.Metrics.Histogram_v { sum; _ }) -> sum
  | _ -> 0.0

let measure_interp engine ~host ~bitstream ~reps =
  let open Ftn_obs in
  (* earlier report phases leave the major heap in an arbitrary state;
     compact so the engine comparison isn't skewed by whose allocations
     happen to trigger a major slice *)
  Gc.compact ();
  let best = ref infinity in
  let steps = ref 0 in
  let compile_ms = ref 0.0 in
  let last = ref None in
  for rep = 1 to reps do
    (* collect the previous rep's garbage outside the clock so major-GC
       work isn't attributed to whichever engine runs next *)
    Gc.full_major ();
    let s0 = Metrics.counter_value "interp.steps" in
    let c0 = hist_sum "interp.compile_ms" in
    let sp = ref None in
    let r =
      Span.with_span_sp ~name:"bench.interp" (fun s ->
          sp := Some s;
          Executor.run ~engine ~host ~bitstream ())
    in
    let wall = match !sp with Some s -> s.Span.dur_s | None -> 0.0 in
    if wall < !best then best := wall;
    if rep = 1 then begin
      steps := Metrics.counter_value "interp.steps" - s0;
      compile_ms := hist_sum "interp.compile_ms" -. c0
    end;
    last := Some r
  done;
  let r = Option.get !last in
  {
    im_wall_s = !best;
    im_steps = !steps;
    im_compile_ms = !compile_ms;
    im_output = r.Executor.output;
    im_device_time_s = r.Executor.device_time_s;
  }

let interp_report () =
  header "Interpreter engine comparison (BENCH_interp.json)";
  let n_sgesl = if quick then 64 else 256 in
  let stencil_n = if quick then 64 else 128 in
  let cases =
    [
      (Fmt.str "sgesl_n%d" n_sgesl, Ftn_linpack.Fortran_sources.sgesl ~n:n_sgesl);
      ( Fmt.str "stencil_n%d" stencil_n,
        stencil_source ~n:stencil_n ~steps:(if quick then 5 else 10) );
    ]
  in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let case_json (name, src) =
    progress "  interp bench: %s ..." name;
    let art = Core.Compiler.compile src in
    let bitstream = Core.Compiler.synthesise art in
    let host = art.Core.Compiler.host in
    let reps = 5 in
    let tree = ref (measure_interp `Tree ~host ~bitstream ~reps) in
    let comp = ref (measure_interp `Compiled ~host ~bitstream ~reps) in
    (* On a loaded box one engine can miss its wall floor within a
       single round (a preemption lands on all its reps). Extra rounds
       only lower both best-of minima, so they converge on the true
       ratio: if the speedup genuinely regressed below the gate the
       retries cannot mask it, they just spend a few more ms on it. *)
    let extra = ref 6 in
    while
      !tree.im_wall_s /. Float.max 1e-9 !comp.im_wall_s < 3.0 && !extra > 0
    do
      decr extra;
      let t = measure_interp `Tree ~host ~bitstream ~reps in
      let c = measure_interp `Compiled ~host ~bitstream ~reps in
      if t.im_wall_s < !tree.im_wall_s then
        tree := { !tree with im_wall_s = t.im_wall_s };
      if c.im_wall_s < !comp.im_wall_s then
        comp := { !comp with im_wall_s = c.im_wall_s }
    done;
    let tree = !tree and comp = !comp in
    if not (String.equal tree.im_output comp.im_output) then
      fail "%s: tree and compiled outputs differ" name;
    if tree.im_device_time_s <> comp.im_device_time_s then
      fail "%s: simulated device times differ between engines" name;
    if tree.im_steps <> comp.im_steps then
      fail "%s: step counts differ (%d tree, %d compiled)" name tree.im_steps
        comp.im_steps;
    let speedup = tree.im_wall_s /. Float.max 1e-9 comp.im_wall_s in
    if speedup < 3.0 then
      fail "%s: compiled engine only %.2fx faster than the tree walker (< 3x)"
        name speedup;
    let steps_per_sec m =
      float_of_int m.im_steps /. Float.max 1e-9 m.im_wall_s
    in
    Fmt.pr
      "  %-16s tree %8.2f ms (%11.0f steps/s) | compiled %8.2f ms (%11.0f \
       steps/s, compile %5.2f ms) | %5.2fx@."
      name
      (tree.im_wall_s *. 1e3)
      (steps_per_sec tree)
      (comp.im_wall_s *. 1e3)
      (steps_per_sec comp) comp.im_compile_ms speedup;
    let side m =
      Ftn_obs.Json.Obj
        [
          ("wall_s", Ftn_obs.Json.Float m.im_wall_s);
          ("steps", Ftn_obs.Json.Int m.im_steps);
          ("steps_per_sec", Ftn_obs.Json.Float (steps_per_sec m));
          ("compile_ms", Ftn_obs.Json.Float m.im_compile_ms);
          ("device_time_s", Ftn_obs.Json.Float m.im_device_time_s);
        ]
    in
    ( name,
      Ftn_obs.Json.Obj
        [
          ("tree", side tree);
          ("compiled", side comp);
          ("speedup", Ftn_obs.Json.Float speedup);
          ( "outputs_identical",
            Ftn_obs.Json.Bool (String.equal tree.im_output comp.im_output) );
          ( "device_time_identical",
            Ftn_obs.Json.Bool (tree.im_device_time_s = comp.im_device_time_s)
          );
        ] )
  in
  let j =
    Ftn_obs.Json.Obj [ ("cases", Ftn_obs.Json.Obj (List.map case_json cases)) ]
  in
  Ftn_obs.Json.write_file "BENCH_interp.json" j;
  Fmt.pr "  wrote BENCH_interp.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "interp bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* --- BENCH_fault.json: fault-injection robustness comparison. Compiles
   and synthesises SGESL and the heat-diffusion stencil once, then
   executes the host program fault-free, under a transient fault plan
   covering every injection site, and under a persistent kernel fault
   that forces the CPU fallback. Records wall and simulated time, retry
   and injection counts and the fallback cost. The run is also a sanity
   gate: it exits nonzero unless both faulted outputs are byte-identical
   to the fault-free run, the transient run pays strictly more simulated
   time without degrading, and the persistent run completes degraded
   through the CPU fallback. *)

module Fault = Ftn_fault.Fault

type fault_measurement = {
  fm_wall_s : float;
  fm_result : Executor.result;
}

let measure_faulted ?faults ~host ~bitstream () =
  let open Ftn_obs in
  let sp = ref None in
  let r =
    Span.with_span_sp ~name:"bench.fault" (fun s ->
        sp := Some s;
        Executor.run ?faults
          ~diag:(Ftn_diag.Diag_engine.create ())
          ~host ~bitstream ())
  in
  {
    fm_wall_s = (match !sp with Some s -> s.Span.dur_s | None -> 0.0);
    fm_result = r;
  }

let fault_report () =
  header "Fault-injection robustness (BENCH_fault.json)";
  let n_sgesl = if quick then 64 else 256 in
  let stencil_n = if quick then 64 else 128 in
  let cases =
    [
      (Fmt.str "sgesl_n%d" n_sgesl, Ftn_linpack.Fortran_sources.sgesl ~n:n_sgesl);
      ( Fmt.str "stencil_n%d" stencil_n,
        stencil_source ~n:stencil_n ~steps:(if quick then 5 else 10) );
    ]
  in
  let transient_plan =
    match Fault.parse_plan "transfer:nth=1,alloc:nth=1,launch:nth=1,timeout:nth=2" with
    | Ok p -> p
    | Error msg -> Fmt.failwith "bad transient plan: %s" msg
  in
  let persistent_plan =
    match Fault.parse_plan "launch:nth=1:persistent" with
    | Ok p -> p
    | Error msg -> Fmt.failwith "bad persistent plan: %s" msg
  in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let case_json (name, src) =
    progress "  fault bench: %s ..." name;
    let art = Core.Compiler.compile src in
    let bitstream = Core.Compiler.synthesise art in
    let host = art.Core.Compiler.host in
    let clean = measure_faulted ~host ~bitstream () in
    let transient = measure_faulted ~faults:transient_plan ~host ~bitstream () in
    let persistent = measure_faulted ~faults:persistent_plan ~host ~bitstream () in
    let out m = m.fm_result.Executor.output in
    if not (String.equal (out clean) (out transient)) then
      fail "%s: transient-fault output differs from the fault-free run" name;
    if not (String.equal (out clean) (out persistent)) then
      fail "%s: persistent-fault output differs from the fault-free run" name;
    if transient.fm_result.Executor.faults_injected = 0 then
      fail "%s: the transient plan injected nothing" name;
    if transient.fm_result.Executor.degraded then
      fail "%s: transient faults must not degrade the run" name;
    if
      transient.fm_result.Executor.device_time_s
      <= clean.fm_result.Executor.device_time_s
    then
      fail "%s: recovery charged no simulated time" name;
    if not persistent.fm_result.Executor.degraded then
      fail "%s: the persistent kernel fault did not degrade the run" name;
    if persistent.fm_result.Executor.cpu_fallbacks < 1 then
      fail "%s: the persistent kernel fault never fell back to the CPU" name;
    Fmt.pr
      "  %-16s clean %8.3f ms sim | transient %8.3f ms sim, %d faults, %d \
       retries | persistent: %d cpu fallback(s), %.3f ms on host@."
      name
      (clean.fm_result.Executor.device_time_s *. 1e3)
      (transient.fm_result.Executor.device_time_s *. 1e3)
      transient.fm_result.Executor.faults_injected
      transient.fm_result.Executor.retries
      persistent.fm_result.Executor.cpu_fallbacks
      (persistent.fm_result.Executor.fallback_time_s *. 1e3);
    let side m =
      Ftn_obs.Json.Obj
        [
          ("wall_s", Ftn_obs.Json.Float m.fm_wall_s);
          ("device_time_s", Ftn_obs.Json.Float m.fm_result.Executor.device_time_s);
          ( "fallback_time_s",
            Ftn_obs.Json.Float m.fm_result.Executor.fallback_time_s );
          ("faults_injected", Ftn_obs.Json.Int m.fm_result.Executor.faults_injected);
          ("retries", Ftn_obs.Json.Int m.fm_result.Executor.retries);
          ("cpu_fallbacks", Ftn_obs.Json.Int m.fm_result.Executor.cpu_fallbacks);
          ("degraded", Ftn_obs.Json.Bool m.fm_result.Executor.degraded);
        ]
    in
    ( name,
      Ftn_obs.Json.Obj
        [
          ("clean", side clean);
          ("transient", side transient);
          ("persistent", side persistent);
          ( "outputs_identical",
            Ftn_obs.Json.Bool
              (String.equal (out clean) (out transient)
              && String.equal (out clean) (out persistent)) );
        ] )
  in
  let j =
    Ftn_obs.Json.Obj
      [
        ("transient_plan", Ftn_obs.Json.String (Fault.plan_to_string transient_plan));
        ("persistent_plan", Ftn_obs.Json.String (Fault.plan_to_string persistent_plan));
        ("cases", Ftn_obs.Json.Obj (List.map case_json cases));
      ]
  in
  Ftn_obs.Json.write_file "BENCH_fault.json" j;
  Fmt.pr "  wrote BENCH_fault.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "fault bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* --- BENCH_sched.json: multi-device scheduler gate. Compiles a small
   SAXPY/SGESL mix once, then pushes 1000 concurrent jobs (4 tenants,
   sparse cross-tenant dependencies) through the job queue on 1 and on 4
   simulated devices, reporting throughput and p50/p99 tail latency. The
   run exits nonzero unless no job is dropped, the 4-device output is
   byte-identical to the 1-device baseline, total kernel/transfer
   sim-time matches across device counts (only queue wait and overhead
   may differ) and 4 devices beat 1 on makespan. Two fault runs gate the
   drain story: with device 1 persistently faulted all jobs must still
   complete by draining to healthy peers, and on a single faulted device
   by CPU fallback — both with unchanged output. *)

let sched_report () =
  header "Multi-device scheduler (BENCH_sched.json)";
  let n_jobs = 1000 in
  let n_fault_jobs = if quick then 120 else 240 in
  let variants =
    [|
      ("saxpy64", Ftn_linpack.Fortran_sources.saxpy ~n:64);
      ("saxpy100", Ftn_linpack.Fortran_sources.saxpy ~n:100);
      ("sgesl12", Ftn_linpack.Fortran_sources.sgesl ~n:12);
      ("sgesl20", Ftn_linpack.Fortran_sources.sgesl ~n:20);
    |]
  in
  progress "  compiling %d job variants ..." (Array.length variants);
  let compiled =
    Array.map
      (fun (name, src) ->
        let art = Core.Compiler.compile src in
        let bs = Core.Compiler.synthesise art in
        (name, art.Core.Compiler.host, bs))
      variants
  in
  let persistent_plan =
    match Fault.parse_plan "launch:nth=1:persistent" with
    | Ok p -> p
    | Error msg -> Fmt.failwith "bad persistent plan: %s" msg
  in
  (* A fresh spec list per queue run: job i runs variant i mod 4 under
     tenant t(i mod 4); every 7th job depends on the job 7 before it, so
     the DAG has cross-tenant edges without ever deadlocking. *)
  let specs n =
    List.init n (fun i ->
        let _vname, host, bs = compiled.(i mod Array.length compiled) in
        let deps =
          if i mod 7 = 0 && i >= 7 then [ Fmt.str "j%04d" (i - 7) ] else []
        in
        Jobs.job
          ~tenant:(Fmt.str "t%d" (i mod 4))
          ~deps
          ~name:(Fmt.str "j%04d" i)
          (fun ?faults ~sched ~device ~start_s () ->
            Executor.run ?faults ~sched ~device ~start_s ~host
              ~bitstream:bs ()))
  in
  let run_queue ?fault_device ~devices n =
    let config =
      {
        Jobs.default_config with
        Jobs.devices;
        queue_depth = 8;
        fault_device =
          Option.map (fun d -> (d, persistent_plan)) fault_device;
      }
    in
    Jobs.run ~config (specs n)
  in
  progress "  %d jobs on 1 device ..." n_jobs;
  let s1 = run_queue ~devices:1 n_jobs in
  progress "  %d jobs on 4 devices ..." n_jobs;
  let s4 = run_queue ~devices:4 n_jobs in
  progress "  %d jobs, clean fault baseline ..." n_fault_jobs;
  let sfb = run_queue ~devices:1 n_fault_jobs in
  progress "  %d jobs on 4 devices, device 1 persistently faulted ..."
    n_fault_jobs;
  let sdrain = run_queue ~devices:4 ~fault_device:1 n_fault_jobs in
  progress "  %d jobs on 1 faulted device (cpu fallback) ..." n_fault_jobs;
  let scpu = run_queue ~devices:1 ~fault_device:0 n_fault_jobs in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let close a b =
    Float.abs (a -. b)
    <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  in
  if s1.Jobs.jobs_dropped <> 0 || s4.Jobs.jobs_dropped <> 0 then
    fail "jobs were dropped (%d on 1 device, %d on 4)" s1.Jobs.jobs_dropped
      s4.Jobs.jobs_dropped;
  if s1.Jobs.jobs_run <> n_jobs || s4.Jobs.jobs_run <> n_jobs then
    fail "not all %d jobs completed (%d on 1 device, %d on 4)" n_jobs
      s1.Jobs.jobs_run s4.Jobs.jobs_run;
  if not (String.equal s1.Jobs.output s4.Jobs.output) then
    fail "4-device output differs from the 1-device baseline";
  if not (close s1.Jobs.total_kernel_s s4.Jobs.total_kernel_s) then
    fail "total kernel sim-time differs across device counts (%.9f vs %.9f)"
      s1.Jobs.total_kernel_s s4.Jobs.total_kernel_s;
  if not (close s1.Jobs.total_transfer_s s4.Jobs.total_transfer_s) then
    fail "total transfer sim-time differs across device counts (%.9f vs %.9f)"
      s1.Jobs.total_transfer_s s4.Jobs.total_transfer_s;
  let speedup =
    if s4.Jobs.elapsed_s > 0.0 then s1.Jobs.elapsed_s /. s4.Jobs.elapsed_s
    else 0.0
  in
  if speedup < 2.0 then
    fail "4 devices only %.2fx faster than 1 on makespan (< 2x)" speedup;
  if sdrain.Jobs.jobs_run <> n_fault_jobs || sdrain.Jobs.jobs_dropped <> 0
  then
    fail "faulted-device run lost jobs (%d run, %d dropped)"
      sdrain.Jobs.jobs_run sdrain.Jobs.jobs_dropped;
  if sdrain.Jobs.drained_jobs < 1 then
    fail "faulted-device run never drained to a peer";
  if
    not
      (List.exists
         (fun ds -> ds.Scheduler.ds_failed)
         (Scheduler.snapshot sdrain.Jobs.scheduler))
  then fail "no device was marked failed in the drain run";
  if not (String.equal sfb.Jobs.output sdrain.Jobs.output) then
    fail "drain run changed the output";
  if scpu.Jobs.jobs_run <> n_fault_jobs || scpu.Jobs.jobs_dropped <> 0 then
    fail "single-faulted-device run lost jobs (%d run, %d dropped)"
      scpu.Jobs.jobs_run scpu.Jobs.jobs_dropped;
  if scpu.Jobs.degraded_jobs < 1 then
    fail "single-faulted-device run never fell back to the CPU";
  if not (String.equal sfb.Jobs.output scpu.Jobs.output) then
    fail "cpu-fallback run changed the output";
  let line name (s : Jobs.stats) =
    Fmt.pr
      "  %-22s %5d jobs  makespan %9.3f ms  %9.0f jobs/s  p50 %8.3f us  \
       p99 %8.3f us  drained %d  degraded %d@."
      name s.Jobs.jobs_run
      (s.Jobs.elapsed_s *. 1e3)
      s.Jobs.throughput_jps
      (s.Jobs.p50_latency_s *. 1e6)
      (s.Jobs.p99_latency_s *. 1e6)
      s.Jobs.drained_jobs s.Jobs.degraded_jobs
  in
  line "1 device" s1;
  line "4 devices" s4;
  line "4 devices, dev1 bad" sdrain;
  line "1 device, dev0 bad" scpu;
  Fmt.pr "  makespan speedup 4/1: %.2fx; outputs byte-identical@." speedup;
  let stats_json (s : Jobs.stats) =
    Ftn_obs.Json.Obj
      [
        ("jobs_run", Ftn_obs.Json.Int s.Jobs.jobs_run);
        ("jobs_dropped", Ftn_obs.Json.Int s.Jobs.jobs_dropped);
        ("elapsed_s", Ftn_obs.Json.Float s.Jobs.elapsed_s);
        ("throughput_jobs_per_s", Ftn_obs.Json.Float s.Jobs.throughput_jps);
        ("p50_latency_s", Ftn_obs.Json.Float s.Jobs.p50_latency_s);
        ("p99_latency_s", Ftn_obs.Json.Float s.Jobs.p99_latency_s);
        ("total_kernel_s", Ftn_obs.Json.Float s.Jobs.total_kernel_s);
        ("total_transfer_s", Ftn_obs.Json.Float s.Jobs.total_transfer_s);
        ("degraded_jobs", Ftn_obs.Json.Int s.Jobs.degraded_jobs);
        ("drained_jobs", Ftn_obs.Json.Int s.Jobs.drained_jobs);
        ( "devices",
          Ftn_obs.Json.List
            (List.map
               (fun ds ->
                 Ftn_obs.Json.Obj
                   [
                     ("id", Ftn_obs.Json.Int ds.Scheduler.ds_id);
                     ("jobs", Ftn_obs.Json.Int ds.Scheduler.ds_jobs);
                     ("launches", Ftn_obs.Json.Int ds.Scheduler.ds_launches);
                     ("busy_s", Ftn_obs.Json.Float ds.Scheduler.ds_busy_s);
                     ( "makespan_s",
                       Ftn_obs.Json.Float ds.Scheduler.ds_makespan_s );
                     ("failed", Ftn_obs.Json.Bool ds.Scheduler.ds_failed);
                     ("degraded", Ftn_obs.Json.Bool ds.Scheduler.ds_degraded);
                   ])
               (Scheduler.snapshot s.Jobs.scheduler)) );
      ]
  in
  let j =
    Ftn_obs.Json.Obj
      [
        ("jobs", Ftn_obs.Json.Int n_jobs);
        ("fault_jobs", Ftn_obs.Json.Int n_fault_jobs);
        ("tenants", Ftn_obs.Json.Int 4);
        ("queue_depth", Ftn_obs.Json.Int 8);
        ( "fault_plan",
          Ftn_obs.Json.String (Fault.plan_to_string persistent_plan) );
        ("makespan_speedup_4v1", Ftn_obs.Json.Float speedup);
        ( "outputs_identical",
          Ftn_obs.Json.Bool (String.equal s1.Jobs.output s4.Jobs.output) );
        ("devices1", stats_json s1);
        ("devices4", stats_json s4);
        ("devices4_fault_device1", stats_json sdrain);
        ("devices1_fault_device0", stats_json scpu);
      ]
  in
  Ftn_obs.Json.write_file "BENCH_sched.json" j;
  Fmt.pr "  wrote BENCH_sched.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "sched bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* --- BENCH_chaos.json: resilience-layer soak gate. A seeded randomized
   fault campaign over a 1000-job multi-tenant DAG: ~12% of jobs carry a
   random transient fault (site drawn across transfer/alloc/launch/
   timeout), device 1 injects a persistent launch fault into everything
   placed on it (with drain disabled, so the circuit breaker — not the
   executor's one-shot drain — must take the board out), deadlines,
   tenant quotas and breakers are armed, and three poison jobs (a
   dependency cycle plus an unknown dependency) ride along. Gates:
   jobs_run + jobs_dropped + jobs_shed equals jobs submitted on every
   run; the chaos campaign is byte-identical across two runs with the
   same seed, with bounded, deterministic breaker trips; tail latency
   stays bounded relative to the clean baseline; and with no faults or
   quotas configured the resilience layer is fully transparent — output
   and makespan byte-identical to a default-config run. *)

let chaos_report () =
  header "Chaos soak: resilience layer (BENCH_chaos.json)";
  let n_base = 1000 in
  let seed = 42 in
  let variants =
    [|
      ("saxpy64", Ftn_linpack.Fortran_sources.saxpy ~n:64);
      ("saxpy100", Ftn_linpack.Fortran_sources.saxpy ~n:100);
      ("sgesl12", Ftn_linpack.Fortran_sources.sgesl ~n:12);
      ("sgesl20", Ftn_linpack.Fortran_sources.sgesl ~n:20);
    |]
  in
  progress "  compiling %d job variants ..." (Array.length variants);
  let compiled =
    Array.map
      (fun (name, src) ->
        let art = Core.Compiler.compile src in
        let bs = Core.Compiler.synthesise art in
        (name, art.Core.Compiler.host, bs))
      variants
  in
  let persistent_plan =
    match Fault.parse_plan "launch:nth=1:persistent" with
    | Ok p -> p
    | Error msg -> Fmt.failwith "bad persistent plan: %s" msg
  in
  (* No drain: the sick board stays in rotation until its breaker trips,
     which is exactly what this gate is about. *)
  let chaos_retry = { Fault.default_retry with Fault.drain = false } in
  let transient_kinds =
    [|
      Fault.Transfer_error; Fault.Alloc_failure; Fault.Launch_failure;
      Fault.Kernel_timeout;
    |]
  in
  (* Job list: job i runs variant i mod 4 under tenant t(i mod 4) at
     priority i mod 3; every 7th job depends on the job 7 before it. In
     chaos mode a seeded rng sprinkles transient single-shot faults over
     ~12% of the jobs and appends three poison jobs: a dependency cycle
     and an unknown dependency, which must be dropped with diagnostics,
     not lost. *)
  let specs ~chaos () =
    let rng = Random.State.make [| seed |] in
    let base =
      List.init n_base (fun i ->
          let _vname, host, bs = compiled.(i mod Array.length compiled) in
          let deps =
            if i mod 7 = 0 && i >= 7 then [ Fmt.str "c%04d" (i - 7) ] else []
          in
          let transient =
            if chaos && Random.State.int rng 100 < 12 then
              Some
                (Fault.plan ~seed:(seed + i)
                   [
                     Fault.rule
                       transient_kinds.(Random.State.int rng
                                          (Array.length transient_kinds))
                       (Fault.Nth 1);
                   ])
            else None
          in
          Jobs.job
            ~tenant:(Fmt.str "t%d" (i mod 4))
            ~deps ~prio:(i mod 3)
            ~name:(Fmt.str "c%04d" i)
            (fun ?faults ~sched ~device ~start_s () ->
              let faults =
                match faults with Some _ as f -> f | None -> transient
              in
              Executor.run ?faults ~retry:chaos_retry ~sched ~device
                ~start_s ~host ~bitstream:bs ()))
    in
    if not chaos then base
    else begin
      let _vname, host, bs = compiled.(0) in
      let poison ~tenant ~deps name =
        Jobs.job ~tenant ~deps ~name
          (fun ?faults ~sched ~device ~start_s () ->
            Executor.run ?faults ~retry:chaos_retry ~sched ~device ~start_s
              ~host ~bitstream:bs ())
      in
      base
      @ [
          poison ~tenant:"t2" ~deps:[ "cyc_b" ] "cyc_a";
          poison ~tenant:"t2" ~deps:[ "cyc_a" ] "cyc_b";
          poison ~tenant:"t3" ~deps:[ "no_such_job" ] "orphan";
        ]
    end
  in
  let n_chaos = n_base + 3 in
  let deadline_s = 0.05 and slo_s = 0.005 in
  let clean_config =
    { Jobs.default_config with Jobs.devices = 4; queue_depth = 8 }
  in
  (* Every resilience feature armed but none able to trigger on a clean
     run: the transparency gate below insists this changes nothing. *)
  let transparent_config =
    {
      clean_config with
      Jobs.default_deadline_s = Some 1e6;
      tenant_quota = Some n_base;
      slo_s = Some 1e6;
      breaker = Some Breaker.default_config;
      shed_watermark = Some (10 * n_base);
    }
  in
  let chaos_config =
    {
      Jobs.devices = 4;
      queue_depth = 8;
      fault_device = Some (1, persistent_plan);
      default_deadline_s = Some deadline_s;
      tenant_quota = Some 16;
      tenant_share = None;
      slo_s = Some slo_s;
      breaker = Some Breaker.default_config;
      shed_watermark = Some (2 * n_chaos);
    }
  in
  progress "  %d clean jobs, resilience off ..." n_base;
  let baseline = Jobs.run ~config:clean_config (specs ~chaos:false ()) in
  progress "  %d clean jobs, resilience armed (transparency) ..." n_base;
  let transparent =
    Jobs.run ~config:transparent_config (specs ~chaos:false ())
  in
  progress "  %d jobs, chaos campaign, run 1 ..." n_chaos;
  let diag1 = Ftn_diag.Diag_engine.create () in
  let chaos1 = Jobs.run ~config:chaos_config ~diag:diag1 (specs ~chaos:true ()) in
  progress "  %d jobs, chaos campaign, run 2 (same seed) ..." n_chaos;
  let diag2 = Ftn_diag.Diag_engine.create () in
  let chaos2 = Jobs.run ~config:chaos_config ~diag:diag2 (specs ~chaos:true ()) in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let close a b =
    Float.abs (a -. b)
    <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  in
  (* Gate 1: job conservation on every run. *)
  let conserve name n (s : Jobs.stats) =
    if s.Jobs.jobs_run + s.Jobs.jobs_dropped + s.Jobs.jobs_shed <> n then
      fail "%s: %d run + %d dropped + %d shed <> %d submitted" name
        s.Jobs.jobs_run s.Jobs.jobs_dropped s.Jobs.jobs_shed n
  in
  conserve "baseline" n_base baseline;
  conserve "transparent" n_base transparent;
  conserve "chaos1" n_chaos chaos1;
  conserve "chaos2" n_chaos chaos2;
  (* Gate 2: the armed-but-idle resilience layer is transparent. *)
  if not (String.equal baseline.Jobs.output transparent.Jobs.output) then
    fail "resilience-armed clean run changed the output bytes";
  if baseline.Jobs.jobs_run <> transparent.Jobs.jobs_run then
    fail "resilience-armed clean run changed jobs_run (%d vs %d)"
      baseline.Jobs.jobs_run transparent.Jobs.jobs_run;
  if not (close baseline.Jobs.elapsed_s transparent.Jobs.elapsed_s) then
    fail "resilience-armed clean run changed the makespan (%.9f vs %.9f)"
      baseline.Jobs.elapsed_s transparent.Jobs.elapsed_s;
  if transparent.Jobs.jobs_shed <> 0 then
    fail "clean run shed %d jobs" transparent.Jobs.jobs_shed;
  if List.exists (fun b -> b.Breaker.bk_trips > 0) transparent.Jobs.breakers
  then fail "clean run tripped a breaker";
  if transparent.Jobs.slo_violations <> 0 then
    fail "clean run recorded %d slo violations with a 1e6 s objective"
      transparent.Jobs.slo_violations;
  (* Gate 3: the chaos campaign is deterministic under its seed. *)
  if not (String.equal chaos1.Jobs.output chaos2.Jobs.output) then
    fail "chaos runs with the same seed produced different output bytes";
  if
    chaos1.Jobs.jobs_run <> chaos2.Jobs.jobs_run
    || chaos1.Jobs.jobs_dropped <> chaos2.Jobs.jobs_dropped
    || chaos1.Jobs.jobs_shed <> chaos2.Jobs.jobs_shed
  then
    fail "chaos runs with the same seed disagree (%d/%d/%d vs %d/%d/%d)"
      chaos1.Jobs.jobs_run chaos1.Jobs.jobs_dropped chaos1.Jobs.jobs_shed
      chaos2.Jobs.jobs_run chaos2.Jobs.jobs_dropped chaos2.Jobs.jobs_shed;
  if not (close chaos1.Jobs.elapsed_s chaos2.Jobs.elapsed_s) then
    fail "chaos runs with the same seed disagree on makespan";
  let trips (s : Jobs.stats) =
    List.map (fun b -> (b.Breaker.bk_device, b.Breaker.bk_trips)) s.Jobs.breakers
  in
  if trips chaos1 <> trips chaos2 then
    fail "chaos runs with the same seed disagree on breaker trips";
  (* Gate 4: breaker trips are present and bounded. *)
  let total_trips =
    List.fold_left (fun acc (_, t) -> acc + t) 0 (trips chaos1)
  in
  if total_trips < 1 then
    fail "the persistently faulted device never tripped its breaker";
  List.iter
    (fun (d, t) ->
      if t > Breaker.default_config.Breaker.flap_limit then
        fail "device %d tripped %d times (> flap limit %d)" d t
          Breaker.default_config.Breaker.flap_limit)
    (trips chaos1);
  (* Gate 5: the poison jobs are dropped with diagnostics, not lost. *)
  if chaos1.Jobs.jobs_dropped <> 3 then
    fail "expected the 3 poison jobs dropped, got %d" chaos1.Jobs.jobs_dropped;
  if Ftn_diag.Diag_engine.warning_count diag1 < 3 then
    fail "dropped jobs emitted %d warnings (want >= 3)"
      (Ftn_diag.Diag_engine.warning_count diag1);
  (* Gate 6: tail latency stays bounded — within the deadline plus the
     service tail of a clean run (faults inflate service time, but the
     admission wait beyond the deadline is shed, not served). *)
  let p99_bound = deadline_s +. (10.0 *. baseline.Jobs.p99_latency_s) in
  if chaos1.Jobs.p99_latency_s > p99_bound then
    fail "chaos p99 %.6f s exceeds the bound %.6f s" chaos1.Jobs.p99_latency_s
      p99_bound;
  let shed_reasons (s : Jobs.stats) =
    List.fold_left
      (fun acc (sh : Jobs.shed) ->
        let n = try List.assoc sh.Jobs.sh_reason acc with Not_found -> 0 in
        (sh.Jobs.sh_reason, n + 1) :: List.remove_assoc sh.Jobs.sh_reason acc)
      [] s.Jobs.sheds
  in
  let line name n (s : Jobs.stats) =
    Fmt.pr
      "  %-22s %5d/%d run, %d shed, %d dropped  makespan %9.3f ms  p50 \
       %8.3f us  p90 %8.3f us  p99 %8.3f us  slo viol %d@."
      name s.Jobs.jobs_run n s.Jobs.jobs_shed s.Jobs.jobs_dropped
      (s.Jobs.elapsed_s *. 1e3)
      (s.Jobs.p50_latency_s *. 1e6)
      (s.Jobs.p90_latency_s *. 1e6)
      (s.Jobs.p99_latency_s *. 1e6)
      s.Jobs.slo_violations
  in
  line "clean baseline" n_base baseline;
  line "clean, resilience on" n_base transparent;
  line "chaos campaign" n_chaos chaos1;
  List.iter
    (fun b -> Fmt.pr "  %a@." Breaker.pp_snapshot b)
    chaos1.Jobs.breakers;
  (match shed_reasons chaos1 with
  | [] -> Fmt.pr "  no jobs shed@."
  | rs ->
    Fmt.pr "  sheds:%s@."
      (String.concat ""
         (List.map (fun (r, n) -> Fmt.str " %s=%d" r n) rs)));
  let stats_json (s : Jobs.stats) =
    Ftn_obs.Json.Obj
      [
        ("jobs_run", Ftn_obs.Json.Int s.Jobs.jobs_run);
        ("jobs_dropped", Ftn_obs.Json.Int s.Jobs.jobs_dropped);
        ("jobs_shed", Ftn_obs.Json.Int s.Jobs.jobs_shed);
        ("elapsed_s", Ftn_obs.Json.Float s.Jobs.elapsed_s);
        ("p50_latency_s", Ftn_obs.Json.Float s.Jobs.p50_latency_s);
        ("p90_latency_s", Ftn_obs.Json.Float s.Jobs.p90_latency_s);
        ("p99_latency_s", Ftn_obs.Json.Float s.Jobs.p99_latency_s);
        ("slo_violations", Ftn_obs.Json.Int s.Jobs.slo_violations);
        ("shed_wait_s", Ftn_obs.Json.Float s.Jobs.shed_wait_s);
        ( "sheds",
          Ftn_obs.Json.Obj
            (List.map
               (fun (r, n) -> (r, Ftn_obs.Json.Int n))
               (shed_reasons s)) );
        ( "breakers",
          Ftn_obs.Json.List
            (List.map
               (fun b ->
                 Ftn_obs.Json.Obj
                   [
                     ("device", Ftn_obs.Json.Int b.Breaker.bk_device);
                     ("state", Ftn_obs.Json.String b.Breaker.bk_state);
                     ("trips", Ftn_obs.Json.Int b.Breaker.bk_trips);
                   ])
               s.Jobs.breakers) );
        ( "tenants",
          Ftn_obs.Json.Obj
            (List.map
               (fun (t : Jobs.tenant_stats) ->
                 ( t.Jobs.t_name,
                   Ftn_obs.Json.Obj
                     [
                       ("run", Ftn_obs.Json.Int t.Jobs.t_run);
                       ("shed", Ftn_obs.Json.Int t.Jobs.t_shed);
                       ("p50_s", Ftn_obs.Json.Float t.Jobs.t_p50_s);
                       ("p90_s", Ftn_obs.Json.Float t.Jobs.t_p90_s);
                       ("p99_s", Ftn_obs.Json.Float t.Jobs.t_p99_s);
                       ( "slo_violations",
                         Ftn_obs.Json.Int t.Jobs.t_slo_violations );
                     ] ))
               s.Jobs.tenants) );
      ]
  in
  let j =
    Ftn_obs.Json.Obj
      [
        ("jobs", Ftn_obs.Json.Int n_chaos);
        ("seed", Ftn_obs.Json.Int seed);
        ("deadline_s", Ftn_obs.Json.Float deadline_s);
        ("slo_s", Ftn_obs.Json.Float slo_s);
        ( "fault_plan",
          Ftn_obs.Json.String (Fault.plan_to_string persistent_plan) );
        ( "transparent",
          Ftn_obs.Json.Bool
            (String.equal baseline.Jobs.output transparent.Jobs.output) );
        ( "deterministic",
          Ftn_obs.Json.Bool
            (String.equal chaos1.Jobs.output chaos2.Jobs.output) );
        ("p99_bound_s", Ftn_obs.Json.Float p99_bound);
        ("baseline", stats_json baseline);
        ("resilience_on_clean", stats_json transparent);
        ("chaos", stats_json chaos1);
      ]
  in
  Ftn_obs.Json.write_file "BENCH_chaos.json" j;
  Fmt.pr "  wrote BENCH_chaos.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "chaos bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* --- BENCH_profile.json: profiling-overhead gate. Compiles and
   synthesises SGESL and the stencil once (with profiling on, so the
   compiler's own pattern/pass profile is populated), then executes each
   host program with profiling off and on, best-of-reps. The run exits
   nonzero unless profiling keeps program output byte-identical, costs
   at most 5% wall overhead (with a small absolute slack so quick runs
   are not gated on scheduler noise), and actually recorded data (op
   counts, per-kernel launch-latency histograms, pattern timings). *)

let measure_profiled ~enabled ~host ~bitstream ~reps =
  Ftn_obs.Profile.set_enabled enabled;
  Fun.protect
    ~finally:(fun () -> Ftn_obs.Profile.set_enabled false)
    (fun () ->
      let best = ref infinity in
      let last = ref None in
      for _ = 1 to reps do
        let sp = ref None in
        let r =
          Ftn_obs.Span.with_span_sp ~name:"bench.profile" (fun s ->
              sp := Some s;
              Executor.run ~host ~bitstream ())
        in
        let wall =
          match !sp with Some s -> s.Ftn_obs.Span.dur_s | None -> 0.0
        in
        if wall < !best then best := wall;
        last := Some r
      done;
      (!best, Option.get !last))

let profile_report () =
  header "Profiling overhead gate (BENCH_profile.json)";
  let n_sgesl = if quick then 64 else 256 in
  let stencil_n = if quick then 64 else 128 in
  let cases =
    [
      (Fmt.str "sgesl_n%d" n_sgesl, Ftn_linpack.Fortran_sources.sgesl ~n:n_sgesl);
      ( Fmt.str "stencil_n%d" stencil_n,
        stencil_source ~n:stencil_n ~steps:(if quick then 5 else 10) );
    ]
  in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let case_json (name, src) =
    progress "  profile bench: %s ..." name;
    (* compile with profiling enabled so pattern/pass self-profiling has
       data to assert on *)
    Ftn_obs.Profile.set_enabled true;
    let art =
      Fun.protect
        ~finally:(fun () -> Ftn_obs.Profile.set_enabled false)
        (fun () -> Core.Compiler.compile src)
    in
    let bitstream = Core.Compiler.synthesise art in
    let host = art.Core.Compiler.host in
    let reps = if quick then 3 else 5 in
    let wall_off, r_off = measure_profiled ~enabled:false ~host ~bitstream ~reps in
    Ftn_obs.Profile.reset ();
    let wall_on, r_on = measure_profiled ~enabled:true ~host ~bitstream ~reps in
    let ops_counted = Ftn_obs.Profile.total_ops () in
    if not (String.equal r_off.Executor.output r_on.Executor.output) then
      fail "%s: program output differs with profiling on" name;
    let overhead = (wall_on -. wall_off) /. Float.max 1e-9 wall_off in
    (* absolute slack: sub-millisecond deltas are scheduler noise, not
       profiling cost *)
    if overhead > 0.05 && wall_on -. wall_off > 2e-3 then
      fail "%s: profiling overhead %.1f%% exceeds the 5%% budget" name
        (overhead *. 100.);
    if ops_counted <= 0 then
      fail "%s: profiling recorded no op counts" name;
    let kernels =
      List.map
        (fun (k : Bitstream.kernel_design) -> k.Bitstream.kd_name)
        bitstream.Bitstream.kernels
    in
    let latency_json =
      List.filter_map
        (fun k ->
          let h = "device.kernel." ^ k ^ ".launch_latency_s" in
          match
            ( Ftn_obs.Metrics.histogram_quantile h 0.5,
              Ftn_obs.Metrics.histogram_quantile h 0.99 )
          with
          | Some p50, Some p99 ->
            Some
              ( k,
                Ftn_obs.Json.Obj
                  [
                    ("p50_us", Ftn_obs.Json.Float (p50 *. 1e6));
                    ("p99_us", Ftn_obs.Json.Float (p99 *. 1e6));
                  ] )
          | _ ->
            fail "%s: no launch-latency histogram for kernel %s" name k;
            None)
        kernels
    in
    if Ftn_ir.Rewrite.pattern_profile () = [] then
      fail "%s: no rewrite-pattern profile was recorded" name;
    Fmt.pr
      "  %-16s off %8.2f ms | on %8.2f ms | overhead %+6.2f%% | %9d ops \
       counted@."
      name (wall_off *. 1e3) (wall_on *. 1e3) (overhead *. 100.) ops_counted;
    ( name,
      Ftn_obs.Json.Obj
        [
          ("wall_off_s", Ftn_obs.Json.Float wall_off);
          ("wall_on_s", Ftn_obs.Json.Float wall_on);
          ("overhead_pct", Ftn_obs.Json.Float (overhead *. 100.));
          ( "outputs_identical",
            Ftn_obs.Json.Bool (String.equal r_off.Executor.output r_on.Executor.output) );
          ("ops_counted", Ftn_obs.Json.Int ops_counted);
          ("kernel_launch_latency", Ftn_obs.Json.Obj latency_json);
        ] )
  in
  let j =
    Ftn_obs.Json.Obj
      [
        ("overhead_budget_pct", Ftn_obs.Json.Float 5.0);
        ("cases", Ftn_obs.Json.Obj (List.map case_json cases));
      ]
  in
  Ftn_obs.Json.write_file "BENCH_profile.json" j;
  Fmt.pr "  wrote BENCH_profile.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "profile bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* --- Bechamel micro-benchmarks: one Test.make per table --- *)

let bechamel_tests () =
  let open Bechamel in
  let saxpy_src = Ftn_linpack.Fortran_sources.saxpy ~n:256 in
  let sgesl_src = Ftn_linpack.Fortran_sources.sgesl ~n:32 in
  let saxpy_hls =
    lazy
      (Option.get (Core.Compiler.compile saxpy_src).Core.Compiler.device_hls)
  in
  let kernel_fn m =
    List.find
      (fun o ->
        Ftn_dialects.Func_d.is_func o && Ftn_dialects.Func_d.has_body o)
      (Ftn_ir.Op.module_body m)
  in
  [
    Test.make ~name:"table1_saxpy_compile_and_run"
      (Staged.stage (fun () -> ignore (Core.Run.run saxpy_src)));
    Test.make ~name:"table2_sgesl_compile_and_run"
      (Staged.stage (fun () -> ignore (Core.Run.run sgesl_src)));
    Test.make ~name:"table3_saxpy_resource_estimate"
      (Staged.stage (fun () ->
           let ks = Schedule.analyse_kernel spec (kernel_fn (Lazy.force saxpy_hls)) in
           ignore (Resources.estimate spec ks)));
    Test.make ~name:"table4_sgesl_synthesis"
      (Staged.stage (fun () ->
           ignore
             (Synth.synthesise ~frontend:Resources.Clang_hls ~spec
                (Ftn_linpack.Hls_baselines.sgesl_device ~n:32))));
    Test.make ~name:"table5_power_model"
      (Staged.stage (fun () ->
           let ks = Schedule.analyse_kernel spec (kernel_fn (Lazy.force saxpy_hls)) in
           let r = Resources.estimate spec ks in
           ignore (Power.fpga_power_w spec r ~kernel_time_s:1e-3 ())));
    Test.make ~name:"table6_measurement_harness"
      (Staged.stage (fun () ->
           ignore (Core.Measure.measure ~runs:10 ~seed:1 1e-3)));
    Test.make ~name:"table7_loc_count"
      (Staged.stage (fun () ->
           List.iter
             (fun (_, _, files) -> ignore (component_loc files))
             loc_components));
  ]

let run_bechamel () =
  header "Bechamel micro-benchmarks (one per table)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let tests = Test.make_grouped ~name:"tables" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "  %-42s %12.1f ns/run@." name est
      | _ -> Fmt.pr "  %-42s (no estimate)@." name)
    results


(* --- BENCH_backend.json: cross-backend comparison and differential
   gate. Compiles the four evaluation programs once, synthesises and runs
   them on every registered backend, and fails unless each program's
   output is byte-identical across all backends (the host program and
   kernels are the same computation — only the device cost model and
   container differ) and the FTN container round-trips through
   save/load. *)

let backend_report () =
  header "Cross-backend comparison (BENCH_backend.json)";
  let n = if quick then 256 else 4096 in
  let n_sgesl = if quick then 32 else 128 in
  let stencil_n = if quick then 64 else 128 in
  let cases =
    [
      (Fmt.str "saxpy_n%d" n, Ftn_linpack.Fortran_sources.saxpy ~n);
      (Fmt.str "sgesl_n%d" n_sgesl, Ftn_linpack.Fortran_sources.sgesl ~n:n_sgesl);
      ( Fmt.str "stencil_n%d" stencil_n,
        stencil_source ~n:stencil_n ~steps:(if quick then 5 else 10) );
      ( Fmt.str "reduction_n%d" n,
        Ftn_linpack.Fortran_sources.dot_product ~n ~simdlen:10 );
    ]
  in
  let backends = Ftn_backend.Backend_registry.all () in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let case_json (name, src) =
    let sides =
      List.map
        (fun backend ->
          let bname = Ftn_backend.Backend.name backend in
          progress "  backend bench: %s on %s ..." name bname;
          let options =
            {
              Core.Options.default with
              Core.Options.backend;
              xclbin_name = Ftn_backend.Backend.default_binary backend;
            }
          in
          let t0 = Unix.gettimeofday () in
          let art = Core.Compiler.compile ~options src in
          let bitstream = Core.Compiler.synthesise ~options art in
          let t1 = Unix.gettimeofday () in
          let exec =
            Executor.run ~host:art.Core.Compiler.host ~bitstream ()
          in
          let t2 = Unix.gettimeofday () in
          (* the saved container must reload into an identical design *)
          let reloaded =
            Ftn_backend.Backend.load_bitstream backend
              (Ftn_backend.Backend.save_bitstream backend bitstream)
          in
          if
            List.map (fun k -> k.Ftn_hlsim.Bitstream.kd_name)
              reloaded.Ftn_hlsim.Bitstream.kernels
            <> List.map (fun k -> k.Ftn_hlsim.Bitstream.kd_name)
                 bitstream.Ftn_hlsim.Bitstream.kernels
          then fail "%s/%s: container did not round-trip" name bname;
          ( bname,
            exec.Executor.output,
            Ftn_obs.Json.Obj
              [
                ("synth_wall_s", Ftn_obs.Json.Float (t1 -. t0));
                ("run_wall_s", Ftn_obs.Json.Float (t2 -. t1));
                ( "device_time_s",
                  Ftn_obs.Json.Float exec.Executor.device_time_s );
                ( "kernel_time_s",
                  Ftn_obs.Json.Float exec.Executor.kernel_time_s );
                ("launches", Ftn_obs.Json.Int exec.Executor.kernel_launches);
              ] ))
        backends
    in
    (match sides with
    | (ref_name, ref_out, _) :: rest ->
      List.iter
        (fun (bname, out, _) ->
          if not (String.equal ref_out out) then
            fail "%s: output differs between backends %s and %s" name
              ref_name bname)
        rest
    | [] -> ());
    let identical =
      match sides with
      | (_, ref_out, _) :: rest ->
        List.for_all (fun (_, out, _) -> String.equal ref_out out) rest
      | [] -> true
    in
    Fmt.pr "  %-16s %s@." name
      (String.concat " | "
         (List.map (fun (b, _, _) -> Fmt.str "%s ok" b) sides)
      ^ if identical then "  (outputs identical)" else "  (OUTPUTS DIFFER)");
    ( name,
      Ftn_obs.Json.Obj
        (("outputs_identical", Ftn_obs.Json.Bool identical)
        :: List.map (fun (b, _, j) -> (b, j)) sides) )
  in
  let j =
    Ftn_obs.Json.Obj
      [
        ( "backends",
          Ftn_obs.Json.List
            (List.map
               (fun b ->
                 Ftn_obs.Json.String (Ftn_backend.Backend.name b))
               backends) );
        ("cases", Ftn_obs.Json.Obj (List.map case_json cases));
      ]
  in
  Ftn_obs.Json.write_file "BENCH_backend.json" j;
  Fmt.pr "  wrote BENCH_backend.json@.";
  if !failures <> [] then begin
    List.iter
      (fun s -> Fmt.epr "backend bench FAILED: %s@." s)
      (List.rev !failures);
    exit 1
  end

let () =
  Fmt.pr
    "Reproduction of: An MLIR pipeline for offloading Fortran to FPGAs via \
     OpenMP (SC-W 2025)@.";
  Fmt.pr "Simulated device: %s, %g MHz kernel clock%s@." spec.Fpga_spec.name
    spec.Fpga_spec.clock_mhz
    (if quick then " [--quick sizes]" else "");
  if rewrite_only then begin
    rewrite_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if compile_only then begin
    compile_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if interp_only then begin
    interp_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if fault_only then begin
    fault_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if profile_only then begin
    profile_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if backend_only then begin
    backend_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if sched_only then begin
    sched_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  if chaos_only then begin
    chaos_report ();
    Fmt.pr "@.done.@.";
    exit 0
  end;
  figure1 ();
  figure2 ();
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  table7 ();
  ablation_unroll ();
  ablation_mac_fusion ();
  ablation_launch_overhead ();
  ablation_canonicalise ();
  ablation_burst ();
  obs_report ();
  rewrite_report ();
  compile_report ();
  interp_report ();
  fault_report ();
  backend_report ();
  sched_report ();
  chaos_report ();
  if not skip_bechamel then run_bechamel ();
  Fmt.pr "@.done.@."
