(* ftnc: command-line driver for the Fortran -> OpenMP accelerator
   offload pipeline. Mirrors the paper's toolchain: compile
   Fortran+OpenMP, dump any intermediate stage, synthesise the (simulated)
   device binary and run the program on the selected simulated
   accelerator (--backend vitis | rv).

     ftnc compile prog.f90 --emit hls
     ftnc run prog.f90 --report --backend rv
     ftnc synth prog.f90
     ftnc stages prog.f90
     ftnc --list-backends *)

open Cmdliner

let read_source path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Caret rendering reads the offending line back from the file named in
   the diagnostic's location. *)
let disk_source : Ftn_diag.Diag.source_lookup =
 fun name ->
  if name <> "" && Sys.file_exists name then Some (read_source name) else None

let handle_errors f =
  try
    let r = f () in
    (* Warnings accumulated during a successful run (e.g. non-converging
       rewrites) render with the same caret format. *)
    (match Ftn_diag.Diag_engine.warnings Ftn_diag.Diag_engine.default with
    | [] -> ()
    | ws -> Fmt.epr "%s@." (Ftn_diag.Diag.render_all ~source:disk_source ws));
    r
  with
  | Ftn_diag.Diag.Diag_failure diags ->
    Fmt.epr "%s@." (Ftn_diag.Diag.render_all ~source:disk_source diags);
    let errors = List.filter Ftn_diag.Diag.is_error diags in
    if List.length errors > 1 then
      Fmt.epr "%d errors generated.@." (List.length errors);
    exit 1
  | Ftn_hlsim.Synth.Synthesis_error msg ->
    Fmt.epr "synthesis error: %s@." msg;
    exit 1
  | Ftn_hlsim.Bitstream_io.Backend_mismatch { expected; found; format } ->
    Fmt.epr
      "error: device binary belongs to backend '%s' but '%s' is selected \
       (container %s)@.note: rebuild with --backend %s or load it with the \
       matching backend@."
      found expected format found;
    exit 1
  | Ftn_fault.Fault.Error (e, loc) ->
    (* Structured runtime errors render like compile-time diagnostics,
       caret and all, pointing at the launching op's source line. *)
    Fmt.epr "%s@."
      (Ftn_diag.Diag.render ~source:disk_source
         (Ftn_diag.Diag.error ~loc
            (Fmt.str "[%s] %s%s"
               (Ftn_fault.Fault.error_code e)
               (Ftn_fault.Fault.message e)
               (Ftn_fault.Fault.flight_note ()))));
    exit 1
  | Ftn_passes.Core_to_llvm.Unsupported msg ->
    Fmt.epr
      "error: the offloaded region uses a construct the device backend \
       cannot lower (%s)@."
      msg;
    exit 1
  | Failure msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | e ->
    (* never leak a raw backtrace to the user *)
    Fmt.epr "internal error: %s@." (Printexc.to_string e);
    exit 1

(* --- observability options, shared by every command --- *)

type obs_opts = {
  trace_out : string option;
  metrics : bool;
  metrics_format : [ `Text | `Json | `Openmetrics ] option;
      (* an explicit --metrics-format implies printing the registry *)
  profile : bool;
  flight_size : int option;
  log_level : Ftn_obs.Log.level option;
  max_errors : int;
  interp_engine : Ftn_interp.Interp.engine option;
}

let obs_term =
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file (loadable in Perfetto or \
             chrome://tracing) covering compile-stage spans, kernel \
             executions and DMA transfers.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (counters, gauges, histograms).")
  in
  let metrics_format_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("text", `Text); ("json", `Json);
                  ("openmetrics", `Openmetrics) ]))
          None
      & info [ "metrics-format" ] ~docv:"FORMAT"
          ~doc:
            "Metrics output format: $(b,text) (the default), $(b,json) or \
             $(b,openmetrics) (Prometheus exposition text). Giving this \
             flag implies $(b,--metrics).")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Enable the profiler and print a report: hot interpreter ops, \
             hottest rewrite patterns, per-pass wall/alloc deltas, \
             per-kernel launch-latency quantiles, compute-unit occupancy \
             and a device-utilization timeline.")
  in
  let flight_size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "flight-size" ] ~docv:"N"
          ~doc:
            "Capacity of the flight recorder (the ring buffer of recent \
             device events dumped when a fault escapes; default 256).")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Log verbosity: debug, info, warn or error.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Shorthand for --log-level debug.")
  in
  let max_errors_arg =
    Arg.(
      value & opt int 20
      & info [ "max-errors" ] ~docv:"N"
          ~doc:
            "Stop after reporting $(docv) errors (semantic analysis keeps \
             going past the first error up to this limit).")
  in
  let interp_engine_arg =
    Arg.(
      value
      & opt (some (enum [ ("tree", `Tree); ("compiled", `Compiled) ])) None
      & info [ "interp-engine" ] ~docv:"ENGINE"
          ~doc:
            "Interpreter execution engine: $(b,compiled) (the default; \
             functions are compiled to closures once and reused) or \
             $(b,tree) (the reference tree-walker).")
  in
  let make trace_out metrics metrics_format profile flight_size log_level
      verbose max_errors interp_engine =
    let log_level =
      match (log_level, verbose) with
      | Some s, _ -> (
        match Ftn_obs.Log.level_of_string s with
        | Some l -> Some l
        | None ->
          Fmt.epr "error: unknown log level %S@." s;
          exit 1)
      | None, true -> Some Ftn_obs.Log.Debug
      | None, false -> None
    in
    (match flight_size with
    | Some n when n < 1 ->
      Fmt.epr "error: --flight-size must be at least 1@.";
      exit 1
    | _ -> ());
    {
      trace_out;
      metrics;
      metrics_format;
      profile;
      flight_size;
      log_level;
      max_errors;
      interp_engine;
    }
  in
  Term.(
    const make $ trace_out_arg $ metrics_arg $ metrics_format_arg
    $ profile_arg $ flight_size_arg $ log_level_arg $ verbose_arg
    $ max_errors_arg $ interp_engine_arg)

(* Run [f] with logging configured, then emit the requested trace and
   metrics dumps from the ambient span collector and default registry. *)
let with_obs opts f =
  (match opts.log_level with
  | Some l -> Ftn_obs.Log.set_level l
  | None -> ());
  Ftn_diag.Diag_engine.set_max_errors Ftn_diag.Diag_engine.default
    opts.max_errors;
  (match opts.interp_engine with
  | Some e -> Ftn_interp.Interp.set_default_engine e
  | None -> ());
  if opts.profile then Ftn_obs.Profile.set_enabled true;
  (match opts.flight_size with
  | Some n -> Ftn_obs.Flight.set_capacity n
  | None -> ());
  let r = f () in
  (match opts.trace_out with
  | Some path ->
    Ftn_obs.Chrome_trace.write_file ~metrics:Ftn_obs.Metrics.default
      (Ftn_obs.Span.current ()) path;
    Fmt.epr "wrote trace to %s@." path
  | None -> ());
  if opts.metrics || opts.metrics_format <> None then begin
    match Option.value ~default:`Text opts.metrics_format with
    | `Text -> Fmt.pr "%a@." Ftn_obs.Metrics.pp Ftn_obs.Metrics.default
    | `Json ->
      Fmt.pr "%s@." (Ftn_obs.Json.to_string (Ftn_obs.Metrics.to_json ()))
    | `Openmetrics -> print_string (Ftn_obs.Openmetrics.render ())
  end;
  r

(* --- backend selection, shared by every command --- *)

let backend_term =
  let backend_arg =
    Arg.(
      value & opt string "vitis"
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "Accelerator backend to compile for: $(b,vitis) (the paper's \
             Vitis HLS / Alveo U280 flow, the default) or $(b,rv) (a \
             RISC-V accelerator cluster). See $(b,--list-backends).")
  in
  let make name =
    (* unknown names error through the diagnostic engine with a
       did-you-mean note; rendering happens in handle_errors *)
    handle_errors (fun () ->
        Ftn_backend.Backend_registry.find_exn
          ~diag:Ftn_diag.Diag_engine.default name)
  in
  Term.(const make $ backend_arg)

let domains_term =
  let arg =
    Arg.(
      value & opt int 0
      & info [ "compile-domains" ] ~docv:"N"
          ~doc:
            "Fan independent per-kernel pass runs across $(docv) OCaml \
             domains in the device pipelines. The partitioned pipeline's \
             output is deterministic and byte-identical for every \
             $(docv) >= 1; 0 (the default) keeps the legacy sequential \
             pipeline.")
  in
  let make n =
    if n < 0 then begin
      Fmt.epr "error: --compile-domains must be >= 0@.";
      exit 1
    end;
    n
  in
  Term.(const make $ arg)

let options_for ?(domains = 0) backend =
  let default = Core.Options.default in
  {
    default with
    Core.Options.backend;
    xclbin_name = Ftn_backend.Backend.default_binary backend;
    pipeline =
      { default.Core.Options.pipeline with Ftn_passes.Pipeline.domains };
  }

(* --- arguments --- *)

let source_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SOURCE" ~doc:"Fortran source file (free form).")

let emit_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("fir", `Fir); ("core", `Core); ("host", `Host);
             ("device", `Device); ("hls", `Hls); ("llvm-dialect", `Llvm_dialect);
             ("llvm", `Llvm); ("llvm7", `Llvm7); ("cpp", `Cpp) ])
        `Hls
    & info [ "emit" ] ~docv:"STAGE"
        ~doc:
          "Which artifact to print: fir, core, host, device, hls, \
           llvm-dialect, llvm, llvm7 or cpp.")

let report_arg =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the full run report.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the device event trace.")

let cpu_arg =
  Arg.(
    value & flag
    & info [ "cpu" ] ~doc:"Execute with sequential OpenMP on the host only.")

(* --- fault-injection options for the run command --- *)

let fault_term =
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Inject deterministic device faults. $(docv) is a \
             comma-separated rule list; each rule is \
             $(i,kind)[@kernel][:nth=N|:p=P][:transient|:persistent] with \
             kind one of $(b,alloc), $(b,transfer), $(b,launch) or \
             $(b,timeout); e.g. \
             $(b,transfer:nth=2,timeout\\@saxpy_hw:persistent).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed for probabilistic fault triggers (p=...).")
  in
  let retries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-retries" ] ~docv:"N"
          ~doc:
            "Retry budget per faulted operation (total attempts including \
             the first; default 4).")
  in
  let make plan seed retries =
    let fault_plan =
      match plan with
      | None -> None
      | Some s -> (
        match Ftn_fault.Fault.parse_plan ?seed s with
        | Ok p -> Some p
        | Error msg ->
          Fmt.epr "error: invalid --fault-plan: %s@." msg;
          exit 1)
    in
    let retry =
      match retries with
      | None -> Ftn_fault.Fault.default_retry
      | Some n ->
        if n < 1 then begin
          Fmt.epr "error: --fault-retries must be at least 1@.";
          exit 1
        end;
        { Ftn_fault.Fault.default_retry with Ftn_fault.Fault.max_attempts = n }
    in
    (fault_plan, retry)
  in
  Term.(const make $ plan_arg $ seed_arg $ retries_arg)

(* --- scheduler options for the run command --- *)

let sched_term =
  let devices_arg =
    Arg.(
      value & opt int 1
      & info [ "devices" ] ~docv:"N"
          ~doc:
            "Simulate $(docv) accelerator devices behind one scheduler \
             (default 1). Job placement is least-loaded-first; output is \
             byte-identical whatever the device count.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"K"
          ~doc:
            "Submit $(docv) concurrent copies of the program through the \
             job queue (default 1 = plain single run), spread round-robin \
             over 4 tenants; prints queue throughput and p50/p99 latency \
             with $(b,--report).")
  in
  let fault_device_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-device" ] ~docv:"D"
          ~doc:
            "Apply $(b,--fault-plan) only to jobs placed on device \
             $(docv), modelling one persistently bad board; with multiple \
             devices its queue drains to healthy peers.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Shed any queued job whose admission wait would exceed \
             $(docv) of simulated time instead of running it; shed jobs \
             are charged only their wait and reported in the scheduler \
             summary.")
  in
  let tenant_quota_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tenant-quota" ] ~docv:"K"
          ~doc:
            "Cap each tenant at $(docv) in-flight jobs; at the cap a \
             tenant's next admission waits for its own oldest completion, \
             whatever the device backlog.")
  in
  let breaker_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "breaker" ] ~docv:"SPEC"
          ~doc:
            "Enable per-device circuit breakers: $(b,on) for the \
             defaults, or $(b,trip=N,cooldown=S,flap=N) to override. A \
             device with N consecutive bad jobs stops taking work for \
             the cooldown, re-admits one probe, and is quarantined after \
             flapping too often.")
  in
  let shed_watermark_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shed-watermark" ] ~docv:"W"
          ~doc:
            "Shed the lowest-priority, furthest-past-deadline queued \
             jobs whenever more than $(docv) are waiting, keeping tail \
             latency bounded under overload.")
  in
  let make devices jobs fault_device deadline tenant_quota breaker
      shed_watermark =
    if devices < 1 then begin
      Fmt.epr "error: --devices must be at least 1@.";
      exit 1
    end;
    if jobs < 1 then begin
      Fmt.epr "error: --jobs must be at least 1@.";
      exit 1
    end;
    (match fault_device with
    | Some d when d < 0 || d >= devices ->
      Fmt.epr "error: --fault-device %d is outside 0..%d@." d (devices - 1);
      exit 1
    | _ -> ());
    (match deadline with
    | Some d when d <= 0.0 ->
      Fmt.epr "error: --deadline must be positive@.";
      exit 1
    | _ -> ());
    (match tenant_quota with
    | Some q when q < 1 ->
      Fmt.epr "error: --tenant-quota must be at least 1@.";
      exit 1
    | _ -> ());
    (match shed_watermark with
    | Some w when w < 1 ->
      Fmt.epr "error: --shed-watermark must be at least 1@.";
      exit 1
    | _ -> ());
    let breaker =
      match breaker with
      | None -> None
      | Some spec -> (
        match Ftn_runtime.Breaker.parse_config spec with
        | Ok cfg -> Some cfg
        | Error msg ->
          Fmt.epr "error: --breaker: %s@." msg;
          exit 1)
    in
    (devices, jobs, fault_device, deadline, tenant_quota, breaker,
     shed_watermark)
  in
  Term.(
    const make $ devices_arg $ jobs_arg $ fault_device_arg $ deadline_arg
    $ tenant_quota_arg $ breaker_arg $ shed_watermark_arg)

(* --- commands --- *)

let compile_cmd =
  let run source emit backend domains obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let artifacts =
          Core.Compiler.compile ~options:(options_for ~domains backend)
            ~file:source
            ~engine:Ftn_diag.Diag_engine.default (read_source source) in
        let print_module name m_opt =
          match m_opt with
          | Some m -> print_endline (Ftn_ir.Printer.to_string m)
          | None ->
            Fmt.epr "no %s artifact (program has no omp target region)@." name;
            exit 1
        in
        match emit with
        | `Fir -> print_endline (Ftn_ir.Printer.to_string artifacts.Core.Compiler.fir_module)
        | `Core -> print_endline (Ftn_ir.Printer.to_string artifacts.Core.Compiler.core_module)
        | `Host -> print_endline (Ftn_ir.Printer.to_string artifacts.Core.Compiler.host)
        | `Device -> print_module "device" artifacts.Core.Compiler.device_core
        | `Hls -> print_module "hls" artifacts.Core.Compiler.device_hls
        | `Llvm_dialect -> print_module "llvm dialect" artifacts.Core.Compiler.device_llvm
        | `Llvm -> (
          match artifacts.Core.Compiler.llvm_ir with
          | Some t -> print_string t
          | None -> exit 1)
        | `Llvm7 -> (
          match artifacts.Core.Compiler.llvm_ir_downgraded with
          | Some t -> print_string t
          | None -> exit 1)
        | `Cpp -> (
          match artifacts.Core.Compiler.host_cpp with
          | Some t -> print_string t
          | None -> exit 1))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and print an intermediate artifact.")
    Term.(
      const run $ source_arg $ emit_arg $ backend_term $ domains_term
      $ obs_term)

let stages_cmd =
  let run source backend domains obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let artifacts =
          Core.Compiler.compile ~options:(options_for ~domains backend)
            ~file:source
            ~engine:Ftn_diag.Diag_engine.default (read_source source) in
        List.iter
          (fun s -> Fmt.pr "%a@." Ftn_ir.Pass.pp_stage s)
          artifacts.Core.Compiler.stages)
  in
  Cmd.v
    (Cmd.info "stages" ~doc:"Show per-pass timing and op counts.")
    Term.(const run $ source_arg $ backend_term $ domains_term $ obs_term)

let synth_cmd =
  let run source output backend domains obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let options = options_for ~domains backend in
        let artifacts = Core.Compiler.compile ~options ~file:source
            ~engine:Ftn_diag.Diag_engine.default (read_source source) in
        let bs = Core.Compiler.synthesise ~options artifacts in
        List.iter print_endline bs.Ftn_hlsim.Bitstream.build_log;
        match output with
        | Some path ->
          Ftn_backend.Backend.save_bitstream_file backend bs path;
          Fmt.pr "wrote %s@." path
        | None -> ())
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the simulated device binary to FILE.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Run the selected backend's synthesis flow.")
    Term.(
      const run $ source_arg $ output_arg $ backend_term $ domains_term
      $ obs_term)

let run_term =
  let run source report trace cpu xclbin backend domains (fault_plan, retry)
      (devices, jobs, fault_device, deadline_s, tenant_quota, breaker,
       shed_watermark) obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let options =
          { (options_for ~domains backend) with
            Core.Options.fault_plan; retry; devices; jobs; deadline_s;
            tenant_quota; breaker; shed_watermark }
        in
        let src = read_source source in
        if cpu then begin
          let out, steps =
            Core.Run.run_cpu ~file:source
              ~engine:Ftn_diag.Diag_engine.default src
          in
          print_string out;
          Fmt.pr "(cpu mode, %d interpreter steps)@." steps
        end
        else if jobs > 1 then begin
          if xclbin <> None then begin
            Fmt.epr "error: --jobs cannot be combined with --xclbin@.";
            exit 1
          end;
          let _artifacts, _bitstream, stats =
            Core.Run.run_jobs ~options ~file:source
              ~engine:Ftn_diag.Diag_engine.default ?fault_device src
          in
          print_string stats.Ftn_runtime.Jobs.output;
          if report then print_string (Core.Report.sched_summary stats)
        end
        else begin
          let r =
            match xclbin with
            | Some path ->
              (* execute the host program against a prebuilt bitstream *)
              let artifacts =
                Core.Compiler.compile ~options ~file:source
                  ~engine:Ftn_diag.Diag_engine.default src
              in
              let bitstream =
                Ftn_backend.Backend.load_bitstream_file backend path
              in
              let exec =
                Ftn_runtime.Executor.run ?faults:fault_plan ~retry
                  ~host:artifacts.Core.Compiler.host ~bitstream ()
              in
              { Core.Run.artifacts; bitstream; exec }
            | None ->
              Core.Run.run ~options ~file:source
                ~engine:Ftn_diag.Diag_engine.default src
          in
          print_string (Core.Run.output r);
          if report then print_string (Core.Report.summary r);
          if obs.profile then print_string (Core.Report.profile_summary r);
          if trace then
            Fmt.pr "%a@." Ftn_runtime.Trace.pp
              r.Core.Run.exec.Ftn_runtime.Executor.trace
        end)
  in
  let xclbin_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "xclbin" ] ~docv:"FILE"
          ~doc:"Program the device from a saved simulated device binary \
                (xclbin / rvbin, matching the selected backend) instead of \
                synthesising.")
  in
  Term.(
    const run $ source_arg $ report_arg $ trace_arg $ cpu_arg $ xclbin_arg
    $ backend_term $ domains_term $ fault_term $ sched_term $ obs_term)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile, synthesise and execute on the selected simulated \
             accelerator.")
    run_term

let dse_cmd =
  let run source budget backend domains obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let spec =
          match Ftn_backend.Backend.fpga_spec backend with
          | Some spec -> spec
          | None ->
            Fmt.epr
              "error: backend '%s' has no FPGA device spec; design-space \
               exploration needs an HLS backend@."
              (Ftn_backend.Backend.name backend);
            exit 1
        in
        let artifacts =
          Core.Compiler.compile ~options:(options_for ~domains backend)
            ~file:source
            ~engine:Ftn_diag.Diag_engine.default (read_source source) in
        match artifacts.Core.Compiler.device_hls with
        | None ->
          Fmt.epr "no offloaded region@.";
          exit 1
        | Some d ->
          List.iter
            (fun op ->
              if
                Ftn_dialects.Func_d.is_func op
                && Ftn_dialects.Func_d.has_body op
              then begin
                let ks = Ftn_hlsim.Schedule.analyse_kernel spec op in
                Fmt.pr "kernel %s:@." ks.Ftn_hlsim.Schedule.fn_name;
                match
                  Ftn_hlsim.Dse.explore_kernel ~spec ?lut_budget:budget
                    ~domains ks
                with
                | Some r -> Fmt.pr "%a" Ftn_hlsim.Dse.pp r
                | None -> Fmt.pr "  (no pipelined loop)@."
              end)
            (Ftn_ir.Op.module_body d))
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "lut-budget" ] ~docv:"LUTS"
          ~doc:"Kernel LUT budget constraining the chosen unroll factor.")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Explore the unroll design space of each kernel's pipelined loop.")
    Term.(
      const run $ source_arg $ budget_arg $ backend_term $ domains_term
      $ obs_term)

let backends_cmd =
  let run () =
    List.iter
      (fun b ->
        Fmt.pr "%-8s %-45s %s@."
          (Ftn_backend.Backend.name b)
          (Ftn_backend.Backend.device b)
          (String.concat ", "
             (List.map Ftn_backend.Backend.capability_name
                (Ftn_backend.Backend.capabilities b))))
      (Ftn_backend.Backend_registry.all ())
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:"List the registered backends (name, device, capabilities).")
    Term.(const run $ const ())

let main =
  (* [ftnc prog.f90 ...] with no subcommand behaves like [ftnc run]. *)
  Cmd.group
    ~default:run_term
    (Cmd.info "ftnc" ~version:"1.0.0"
       ~doc:
         "Fortran + OpenMP accelerator offload compiler (MLIR pipeline, \
          simulated Vitis/U280 and RISC-V backends).")
    [ compile_cmd; stages_cmd; synth_cmd; run_cmd; dse_cmd; backends_cmd ]

(* Cmdliner only uses the default term when no positional is present, so
   [ftnc prog.f90 ...] needs the implied "run" spliced in by hand; the
   conventional [--list-backends] spelling maps onto the backends
   subcommand the same way. *)
let argv =
  let argv = Sys.argv in
  let subcommands =
    [ "compile"; "stages"; "synth"; "run"; "dse"; "backends" ]
  in
  if Array.length argv > 1 && argv.(1) = "--list-backends" then
    [| argv.(0); "backends" |]
  else if
    Array.length argv > 1
    && (not (List.mem argv.(1) subcommands))
    && Sys.file_exists argv.(1)
  then
    Array.append [| argv.(0); "run" |] (Array.sub argv 1 (Array.length argv - 1))
  else argv

let () = exit (Cmd.eval ~argv main)
