(* First-class backend descriptor (ROADMAP's "Backend Interface" layer):
   everything below the omp/device dialects that is target-specific —
   device spec, codegen emitters, synthesis + timing/resource model,
   bitstream container, host-code printer — packaged as one module value.
   The pipeline, driver, runtime and bench select a backend once and go
   through the descriptor; nothing outside lib/backend names a concrete
   device. *)

type capability =
  | Dse  (** Design-space exploration over unroll factors. *)
  | Dataflow  (** Overlapped top-level stages (hls.dataflow). *)
  | Fault_tolerance  (** Works under the fault-injection runtime. *)
  | Profiling  (** Works under the kernel-level profiler. *)
  | Power_model  (** Can estimate device power draw. *)

let capability_name = function
  | Dse -> "dse"
  | Dataflow -> "dataflow"
  | Fault_tolerance -> "fault-tolerance"
  | Profiling -> "profiling"
  | Power_model -> "power-model"

module type S = sig
  val name : string
  (** Registry name, as given to [--backend] and stamped into bitstream
      containers. *)

  val device : string
  (** Human-readable device the backend models. *)

  val description : string
  val capabilities : capability list

  val fpga_spec : Ftn_hlsim.Fpga_spec.t option
  (** The FPGA device spec when the backend is an HLS flow ([None] for
      non-FPGA targets); gates spec-driven features such as DSE. *)

  val model : Ftn_hlsim.Device_model.t
  (** Timing model the executor charges against; also carried inside
      every bitstream this backend synthesises. *)

  val default_binary : string
  (** Default device-binary file name (e.g. kernel.xclbin, kernel.rvbin). *)

  val synthesise :
    ?frontend:Ftn_hlsim.Resources.frontend ->
    ?binary_name:string ->
    Ftn_ir.Op.t ->
    Ftn_hlsim.Bitstream.t
  (** Run the backend's synthesis flow over a device module at the
      hls-dialect level. Raises {!Ftn_hlsim.Synth.Synthesis_error}. *)

  val lower_device : Ftn_ir.Op.t -> Ftn_ir.Op.t
  (** Backend-specific lowering of the llvm-dialect device module
      (intrinsic mapping / erasure). *)

  val emit_kernel_ir : Ftn_ir.Op.t -> string
  (** Emit the lowered device module as target-flavoured LLVM-IR text. *)

  val emit_kernel_compat : string -> string option
  (** Optional compatibility rewrite of the emitted IR (the Vitis LLVM-7
      downgrade); [None] when the target toolchain needs none. *)

  val emit_host : ?binary:string -> Ftn_ir.Op.t -> string
  (** Print the host program for this backend's runtime API; [binary]
      names the device binary the generated setup code loads. *)

  val save_bitstream : Ftn_hlsim.Bitstream.t -> string
  val save_bitstream_file : Ftn_hlsim.Bitstream.t -> string -> unit

  val load_bitstream : string -> Ftn_hlsim.Bitstream.t
  (** Parse this backend's container format. Raises
      {!Ftn_hlsim.Bitstream_io.Backend_mismatch} on a valid FTN container
      owned by another backend and {!Ftn_hlsim.Bitstream_io.Format_error}
      on unreadable input. *)

  val load_bitstream_file : string -> Ftn_hlsim.Bitstream.t

  val power_w :
    Ftn_hlsim.Resources.report ->
    kernel_time_s:float ->
    device_time_s:float ->
    float
  (** Modelled device draw in watts over the measurement window. *)
end

type t = (module S)

let name (b : t) =
  let module B = (val b) in
  B.name

let device (b : t) =
  let module B = (val b) in
  B.device

let description (b : t) =
  let module B = (val b) in
  B.description

let capabilities (b : t) =
  let module B = (val b) in
  B.capabilities

let has_capability (b : t) c = List.mem c (capabilities b)

let fpga_spec (b : t) =
  let module B = (val b) in
  B.fpga_spec

let model (b : t) =
  let module B = (val b) in
  B.model

let default_binary (b : t) =
  let module B = (val b) in
  B.default_binary

let synthesise (b : t) ?frontend ?binary_name m =
  let module B = (val b) in
  B.synthesise ?frontend ?binary_name m

let lower_device (b : t) m =
  let module B = (val b) in
  B.lower_device m

let emit_kernel_ir (b : t) m =
  let module B = (val b) in
  B.emit_kernel_ir m

let emit_kernel_compat (b : t) text =
  let module B = (val b) in
  B.emit_kernel_compat text

let emit_host (b : t) ?binary m =
  let module B = (val b) in
  B.emit_host ?binary m

let save_bitstream (b : t) bs =
  let module B = (val b) in
  B.save_bitstream bs

let save_bitstream_file (b : t) bs path =
  let module B = (val b) in
  B.save_bitstream_file bs path

let load_bitstream (b : t) text =
  let module B = (val b) in
  B.load_bitstream text

let load_bitstream_file (b : t) path =
  let module B = (val b) in
  B.load_bitstream_file path

let power_w (b : t) report ~kernel_time_s ~device_time_s =
  let module B = (val b) in
  B.power_w report ~kernel_time_s ~device_time_s

let pp fmt (b : t) =
  Fmt.pf fmt "%s (%s): %s [%s]" (name b) (device b) (description b)
    (String.concat ", " (List.map capability_name (capabilities b)))
