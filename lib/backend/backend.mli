(** First-class backend descriptor: everything target-specific below the
    omp/device dialects — device spec, codegen emitters, synthesis and
    timing/resource model, bitstream container, host printer — packaged as
    one module value. Select a backend once (registry lookup by name) and
    go through the descriptor; nothing outside lib/backend names a
    concrete device. *)

type capability =
  | Dse
  | Dataflow
  | Fault_tolerance
  | Profiling
  | Power_model

val capability_name : capability -> string

module type S = sig
  val name : string
  val device : string
  val description : string
  val capabilities : capability list
  val fpga_spec : Ftn_hlsim.Fpga_spec.t option
  val model : Ftn_hlsim.Device_model.t
  val default_binary : string

  val synthesise :
    ?frontend:Ftn_hlsim.Resources.frontend ->
    ?binary_name:string ->
    Ftn_ir.Op.t ->
    Ftn_hlsim.Bitstream.t

  val lower_device : Ftn_ir.Op.t -> Ftn_ir.Op.t
  val emit_kernel_ir : Ftn_ir.Op.t -> string
  val emit_kernel_compat : string -> string option
  val emit_host : ?binary:string -> Ftn_ir.Op.t -> string
  val save_bitstream : Ftn_hlsim.Bitstream.t -> string
  val save_bitstream_file : Ftn_hlsim.Bitstream.t -> string -> unit
  val load_bitstream : string -> Ftn_hlsim.Bitstream.t
  val load_bitstream_file : string -> Ftn_hlsim.Bitstream.t

  val power_w :
    Ftn_hlsim.Resources.report ->
    kernel_time_s:float ->
    device_time_s:float ->
    float
end

type t = (module S)

(** {2 Accessors over the packed module} *)

val name : t -> string
val device : t -> string
val description : t -> string
val capabilities : t -> capability list
val has_capability : t -> capability -> bool
val fpga_spec : t -> Ftn_hlsim.Fpga_spec.t option
val model : t -> Ftn_hlsim.Device_model.t
val default_binary : t -> string

val synthesise :
  t ->
  ?frontend:Ftn_hlsim.Resources.frontend ->
  ?binary_name:string ->
  Ftn_ir.Op.t ->
  Ftn_hlsim.Bitstream.t

val lower_device : t -> Ftn_ir.Op.t -> Ftn_ir.Op.t
val emit_kernel_ir : t -> Ftn_ir.Op.t -> string
val emit_kernel_compat : t -> string -> string option
val emit_host : t -> ?binary:string -> Ftn_ir.Op.t -> string
val save_bitstream : t -> Ftn_hlsim.Bitstream.t -> string
val save_bitstream_file : t -> Ftn_hlsim.Bitstream.t -> string -> unit
val load_bitstream : t -> string -> Ftn_hlsim.Bitstream.t
val load_bitstream_file : t -> string -> Ftn_hlsim.Bitstream.t

val power_w :
  t ->
  Ftn_hlsim.Resources.report ->
  kernel_time_s:float ->
  device_time_s:float ->
  float

val pp : Format.formatter -> t -> unit
