(* Backend registry: lookup by name with a did-you-mean suggestion on
   unknown names. Lives in its own module (rather than Backend) so the
   built-in backends are forced to link and register: referencing
   Backend_vitis/Backend_rv here defeats OCaml's lazy module
   initialisation dropping them. *)

let registry : (string, Backend.t) Hashtbl.t = Hashtbl.create 4

let register (b : Backend.t) = Hashtbl.replace registry (Backend.name b) b

let () =
  register Backend_vitis.backend;
  register Backend_rv.backend

let default = Backend_vitis.backend

let all () =
  Hashtbl.fold (fun _ b acc -> b :: acc) registry []
  |> List.sort (fun a b -> String.compare (Backend.name a) (Backend.name b))

let names () = List.map Backend.name (all ())

let find name = Hashtbl.find_opt registry name

(* Standard Levenshtein distance, for the did-you-mean suggestion. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

let suggestion name =
  let scored =
    List.map (fun n -> (edit_distance name n, n)) (names ())
  in
  match List.sort compare scored with
  | (d, n) :: _ when d <= max 2 (String.length name / 2) -> Some n
  | _ -> None

let find_exn ?(diag = Ftn_diag.Diag_engine.default) ?loc name =
  match find name with
  | Some b -> b
  | None ->
    let note s = (Ftn_diag.Loc.unknown, s) in
    let notes =
      (match suggestion name with
      | Some s -> [ note (Fmt.str "did you mean '%s'?" s) ]
      | None -> [])
      @ [
          note
            (Fmt.str "available backends: %s" (String.concat ", " (names ())));
        ]
    in
    Ftn_diag.Diag_engine.error diag ?loc ~notes
      (Fmt.str "unknown backend '%s'" name);
    Ftn_diag.Diag_engine.fail_if_errors diag;
    (* unreachable: the lookup error was just emitted *)
    assert false
