(** Backend registry: the built-in backends ([vitis], [rv]) registered at
    link time, lookup by name, and a did-you-mean suggestion for the
    driver's [--backend] flag. *)

val register : Backend.t -> unit
(** Register (or replace) a backend under its own name — how a third
    target plugs in. *)

val default : Backend.t
(** The paper's Vitis/U280 flow. *)

val all : unit -> Backend.t list
(** Sorted by name. *)

val names : unit -> string list
val find : string -> Backend.t option

val suggestion : string -> string option
(** Closest registered name by edit distance, when close enough to be a
    plausible typo. *)

val find_exn :
  ?diag:Ftn_diag.Diag_engine.t -> ?loc:Ftn_diag.Loc.t -> string -> Backend.t
(** Lookup that reports unknown names through the diagnostic engine (with
    the did-you-mean note and the available list) and raises
    {!Ftn_diag.Diag.Diag_failure}. *)

val edit_distance : string -> string -> int
