(* RISC-V accelerator backend (after arXiv:2510.02170): consumes the same
   omp/device IR as the Vitis flow, but the device module is "compiled"
   into a flat binary image for the cluster's instruction memory instead
   of synthesised into fabric. The schedule analysis is shared with the
   HLS flow — only its structural outputs (op counts, beats, unroll,
   trip counts) are consumed; Rv_model prices them with RISC-V rules.

   Container format: FTN-RVBIN v1, a flat image with length-prefixed
   kernel records —

     FTN-RVBIN v1
     backend: rv
     name: kernel.rvbin
     device: ...
     frontend: mlir
     log: ...
     === IMAGE ===
     .kernel <name> <bytes>
     <exactly that many bytes of printed kernel IR>
     .kernel ...

   Loading re-parses each record and re-runs the analysis, mirroring the
   xclbin contract: a loaded image is indistinguishable from a fresh
   build. Cross-backend containers (e.g. an xclbin) are rejected with the
   structured Bitstream_io.Backend_mismatch. *)

open Ftn_ir
open Ftn_dialects
open Ftn_hlsim

let registry_name = "rv"
let format_name = "RVBIN"
let format_version = 1
let magic = Fmt.str "FTN-%s v%d" format_name format_version

let spec = Rv_spec.srv64
let model = Rv_model.model spec

(* The shared scheduler needs an FPGA spec to price its (Vitis-specific)
   cycles_per_iteration column; only the structural columns — op counts,
   port beats, unroll, static trips, nesting — are read by Rv_model, and
   those are spec-independent. *)
let structural_spec = Fpga_spec.u280

let synthesise ?(frontend = Resources.Mlir_flow) ?(binary_name = "kernel.rvbin")
    device_module =
  Ftn_obs.Span.with_span ~name:"synth.rv"
    ~attrs:[ ("image", binary_name) ]
    (fun () ->
  if not (Op.is_module device_module) then
    raise (Synth.Synthesis_error "device code must be a builtin.module");
  let log = ref [] in
  let say fmt = Fmt.kstr (fun s -> log := s :: !log) fmt in
  say "rvcc -march=rv64gcv --target=%s (simulated)" spec.Rv_spec.name;
  let kernels =
    List.filter_map
      (fun op ->
        if Func_d.is_func op && Func_d.has_body op then begin
          let ks = Schedule.analyse_kernel structural_spec op in
          let res = Rv_model.estimate spec ks in
          if res.Resources.lut_pct > 100.0 then
            raise
              (Synth.Synthesis_error
                 (Fmt.str "kernel image for %s exceeds instruction memory"
                    ks.Schedule.fn_name));
          Ftn_obs.Metrics.incr "synth.kernels";
          say "compile: %s (%d insn words, %.2f%% imem)"
            ks.Schedule.fn_name res.Resources.kernel.Resources.luts
            res.Resources.lut_pct;
          List.iter
            (fun (l : Schedule.loop_info) ->
              say "  loop@%d: %.1f cycles/iter (%s)" l.Schedule.loop_key
                (Rv_model.cycles_per_iteration spec l)
                (if Rv_model.vectorised l then
                   Fmt.str "vectorised, VL=%d"
                     (min l.Schedule.unroll spec.Rv_spec.vector_lanes)
                 else "scalar"))
            (Schedule.flatten_loops ks.Schedule.loops);
          Some
            {
              Bitstream.kd_name = ks.Schedule.fn_name;
              kd_schedule = ks;
              kd_resources = res;
              kd_function = op;
            }
        end
        else None)
      (Op.module_body device_module)
  in
  if kernels = [] then
    raise (Synth.Synthesis_error "device module contains no kernel functions");
  say "link: flat image %s" binary_name;
  {
    Bitstream.xclbin_name = binary_name;
    backend = registry_name;
    device_name = spec.Rv_spec.name;
    model;
    frontend;
    kernels;
    build_log = List.rev !log;
  })

(* --- FTN-RVBIN container --- *)

let save (bs : Bitstream.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "backend: %s" bs.Bitstream.backend;
  line "name: %s" bs.Bitstream.xclbin_name;
  line "device: %s" bs.Bitstream.device_name;
  line "frontend: %s"
    (match bs.Bitstream.frontend with
    | Resources.Clang_hls -> "clang"
    | Resources.Mlir_flow -> "mlir");
  List.iter (fun l -> line "log: %s" l) bs.Bitstream.build_log;
  line "=== IMAGE ===";
  List.iter
    (fun k ->
      let text =
        Printer.to_string
          (Op.module_op
             ~attrs:[ ("target", Attr.String "rv") ]
             [ k.Bitstream.kd_function ])
      in
      line ".kernel %s %d" k.Bitstream.kd_name (String.length text);
      Buffer.add_string buf text)
    bs.Bitstream.kernels;
  Buffer.contents buf

let save_file bs path =
  let oc = open_out_bin path in
  output_string oc (save bs);
  close_out oc

let load text =
  (match Bitstream_io.sniff text with
  | Some (fmt, ver) when fmt = format_name && ver = format_version -> ()
  | Some (fmt, ver) ->
    let found =
      match Bitstream_io.sniff_backend text with
      | Some b -> b
      | None -> Fmt.str "%s v%d" fmt ver
    in
    raise
      (Bitstream_io.Backend_mismatch
         {
           expected = registry_name;
           found;
           format = Fmt.str "FTN-%s v%d" fmt ver;
         })
  | None ->
    raise (Bitstream_io.Format_error "not a simulated rv image (bad magic)"));
  let lines = String.split_on_char '\n' text in
  let field p =
    List.find_map
      (fun l ->
        let l = String.trim l in
        if
          String.length l > String.length p
          && String.sub l 0 (String.length p) = p
        then
          Some
            (String.sub l (String.length p) (String.length l - String.length p))
        else None)
      lines
  in
  (match field "backend: " with
  | Some b when b <> registry_name ->
    raise
      (Bitstream_io.Backend_mismatch
         { expected = registry_name; found = b; format = magic })
  | _ -> ());
  let name = Option.value ~default:"kernel.rvbin" (field "name: ") in
  let frontend =
    match field "frontend: " with
    | Some "clang" -> Resources.Clang_hls
    | _ -> Resources.Mlir_flow
  in
  let marker = "=== IMAGE ===\n" in
  let image_start =
    let rec find i =
      if i + String.length marker > String.length text then
        raise (Bitstream_io.Format_error "missing image section")
      else if String.sub text i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    find 0
  in
  (* length-prefixed kernel records *)
  let funcs = ref [] in
  let pos = ref image_start in
  while !pos < String.length text do
    let eol =
      match String.index_from_opt text !pos '\n' with
      | Some i -> i
      | None -> String.length text
    in
    let header = String.trim (String.sub text !pos (eol - !pos)) in
    if header = "" then pos := eol + 1
    else begin
      (match String.split_on_char ' ' header with
      | [ ".kernel"; kname; len ] -> (
        match int_of_string_opt len with
        | Some len when eol + 1 + len <= String.length text ->
          let body = String.sub text (eol + 1) len in
          let m =
            try Ir_parser.parse_module body
            with Ir_parser.Parse_error (msg, p) ->
              raise
                (Bitstream_io.Format_error
                   (Fmt.str "bad kernel IR for %s at offset %d: %s" kname p msg))
          in
          List.iter (fun op -> funcs := op :: !funcs) (Op.module_body m);
          pos := eol + 1 + len
        | _ ->
          raise
            (Bitstream_io.Format_error
               (Fmt.str "truncated kernel record for %s" kname)))
      | _ ->
        raise
          (Bitstream_io.Format_error ("bad image record: " ^ header)))
    end
  done;
  let device_module =
    Op.module_op ~attrs:[ ("target", Attr.String "rv") ] (List.rev !funcs)
  in
  synthesise ~frontend ~binary_name:name device_module

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  load text

let backend : Backend.t =
  (module struct
    let name = registry_name
    let device = spec.Rv_spec.name

    let description =
      "RISC-V accelerator cluster, flat-binary offload (after \
       arXiv:2510.02170)"

    let capabilities =
      Backend.[ Fault_tolerance; Profiling; Power_model ]

    let fpga_spec = None
    let model = model
    let default_binary = "kernel.rvbin"
    let synthesise ?frontend ?binary_name m = synthesise ?frontend ?binary_name m
    let lower_device = Ftn_codegen.Rv_intrinsics.run

    let emit_kernel_ir m =
      Ftn_codegen.Llvm_ir.emit_module
        ~header:Ftn_codegen.Llvm_ir.rv_target_header m

    let emit_kernel_compat _ = None

    let emit_host ?binary m =
      Ftn_codegen.Host_cpp.emit_module ~target:Ftn_codegen.Host_cpp.Rv
        ?xclbin:binary m

    let save_bitstream = save
    let save_bitstream_file = save_file
    let load_bitstream = load
    let load_bitstream_file = load_file

    let power_w report ~kernel_time_s ~device_time_s =
      Rv_model.power_w spec report ~kernel_time_s ~device_time_s
  end)
