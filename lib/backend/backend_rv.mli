(** RISC-V accelerator backend (after arXiv:2510.02170): the same
    omp/device IR retargeted onto a simulated RV64GCV cluster — flat
    binary image instead of a bitstream, driver-API host code instead of
    OpenCL, Rv_model timing instead of HLS scheduling. *)

val magic : string
(** The FTN-RVBIN container header line. *)

val spec : Rv_spec.t

val synthesise :
  ?frontend:Ftn_hlsim.Resources.frontend ->
  ?binary_name:string ->
  Ftn_ir.Op.t ->
  Ftn_hlsim.Bitstream.t
(** Compile a device module into a flat kernel image. Raises
    {!Ftn_hlsim.Synth.Synthesis_error} (including when the image exceeds
    the cluster's instruction memory). *)

val save : Ftn_hlsim.Bitstream.t -> string
val save_file : Ftn_hlsim.Bitstream.t -> string -> unit

val load : string -> Ftn_hlsim.Bitstream.t
(** Parse an FTN-RVBIN image. Raises
    {!Ftn_hlsim.Bitstream_io.Backend_mismatch} on a foreign FTN container
    and {!Ftn_hlsim.Bitstream_io.Format_error} on unreadable input. *)

val load_file : string -> Ftn_hlsim.Bitstream.t

val backend : Backend.t
(** The descriptor registered as ["rv"]. *)
