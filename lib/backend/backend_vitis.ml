(* The paper's flow packaged as a backend descriptor: Vitis HLS codegen
   (AMD intrinsic mapping, LLVM-7 downgrade), the simulated v++ synthesis
   against the Alveo U280, the xclbin container and the C++/OpenCL host
   printer. This module is the only place outside device tables where
   Fpga_spec.u280 is named. *)

open Ftn_hlsim

let make ?(spec = Fpga_spec.u280) () : Backend.t =
  (module struct
    let name = "vitis"
    let device = spec.Fpga_spec.name

    let description =
      "Vitis HLS flow onto a simulated Alveo U280 (the paper's pipeline)"

    let capabilities =
      Backend.
        [ Dse; Dataflow; Fault_tolerance; Profiling; Power_model ]

    let fpga_spec = Some spec
    let model = Device_model.of_fpga_spec spec
    let default_binary = "kernel.xclbin"

    let synthesise ?frontend ?binary_name m =
      Synth.synthesise ?frontend ~backend:name ~spec
        ?xclbin_name:binary_name m

    let lower_device = Ftn_codegen.Hls_intrinsics.run
    let emit_kernel_ir m = Ftn_codegen.Llvm_ir.emit_module m

    let emit_kernel_compat text =
      Some (Ftn_codegen.Llvm_downgrade.run text).Ftn_codegen.Llvm_downgrade.text

    let emit_host ?binary m =
      Ftn_codegen.Host_cpp.emit_module ~target:Ftn_codegen.Host_cpp.Opencl
        ?xclbin:binary m

    let save_bitstream = Bitstream_io.save
    let save_bitstream_file = Bitstream_io.save_file
    let load_bitstream text = Bitstream_io.load ~expect_backend:name ~spec text

    let load_bitstream_file path =
      Bitstream_io.load_file ~expect_backend:name ~spec path

    let power_w report ~kernel_time_s ~device_time_s =
      Power.fpga_power_w spec report ~kernel_time_s ~device_time_s ()
  end)

let backend = make ()
