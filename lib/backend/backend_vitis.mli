(** The paper's Vitis HLS / Alveo U280 flow as a backend descriptor. *)

val make : ?spec:Ftn_hlsim.Fpga_spec.t -> unit -> Backend.t
(** Build a Vitis backend over a (possibly ablated) device spec — bench's
    model ablations construct modified U280 specs this way. *)

val backend : Backend.t
(** The default U280 instance, registered as ["vitis"]. *)
