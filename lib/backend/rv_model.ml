(* Timing and footprint model for the RISC-V accelerator. It consumes the
   same kernel schedule the HLS scheduler produces but reads only its
   structural outputs — op counts, port beats, unroll factors, observed
   trip counts — and prices them with RISC-V rules: scalar loops pay
   issue-width-limited compute plus full-latency DRAM beats; a loop the
   directives asked to unroll maps onto the vector unit instead
   (VL = min(unroll, lanes) element groups, amortised unit-stride beats,
   fused vfmacc MACs); omp parallel-do iterations of top-level loops are
   work-shared across the harts. *)

open Ftn_hlsim

let beats_per_iteration (l : Schedule.loop_info) =
  List.fold_left (fun acc (_, r, w) -> acc + r + w) 0 l.Schedule.port_accesses

let vectorised (l : Schedule.loop_info) = l.Schedule.unroll > 1

(* Cycles per original loop iteration. *)
let cycles_per_iteration (spec : Rv_spec.t) (l : Schedule.loop_info) =
  let beats = float_of_int (beats_per_iteration l) in
  let macs = l.Schedule.macs in
  let fp_plain = max 0 (l.Schedule.fp_ops - (2 * macs)) in
  let compute =
    (float_of_int l.Schedule.int_ops /. float_of_int spec.Rv_spec.issue_width
    *. spec.Rv_spec.int_op_cycles)
    +. (float_of_int fp_plain *. spec.Rv_spec.fp_op_cycles)
    +. (float_of_int macs *. spec.Rv_spec.fused_mac_cycles)
  in
  if vectorised l then
    let vl = float_of_int (min l.Schedule.unroll spec.Rv_spec.vector_lanes) in
    (compute /. vl) +. (beats *. spec.Rv_spec.vector_beat_cycles)
  else compute +. (beats *. spec.Rv_spec.scalar_beat_cycles)

(* Observed cycles for one loop nest. Top-level loops are the omp
   parallel-do work-sharing region: their iteration work is divided
   across the harts; nested loops run whole on one hart. *)
let rec loop_cycles spec stats ~top (l : Schedule.loop_info) =
  let find t k = Option.value ~default:0 (Hashtbl.find_opt t k) in
  let entries = find stats.Timing.entries l.Schedule.loop_key in
  let iters = find stats.Timing.iterations l.Schedule.loop_key in
  let share = if top then float_of_int spec.Rv_spec.harts else 1.0 in
  (float_of_int entries *. spec.Rv_spec.loop_overhead_cycles)
  +. (float_of_int iters *. cycles_per_iteration spec l /. share)
  +. List.fold_left
       (fun acc n -> acc +. loop_cycles spec stats ~top:false n)
       0.0 l.Schedule.nested

(* The cluster has no dataflow fabric: top-level stages always serialise. *)
let kernel_cycles spec (ks : Schedule.kernel_schedule) stats =
  List.fold_left
    (fun acc l -> acc +. loop_cycles spec stats ~top:true l)
    0.0 ks.Schedule.loops

let kernel_time_s spec ks stats =
  kernel_cycles spec ks stats *. Rv_spec.clock_period_s spec

let transfer_time_s spec ~bytes =
  spec.Rv_spec.dma_fixed_overhead_s
  +. (float_of_int bytes /. spec.Rv_spec.dma_bandwidth_bytes_per_s)

let model (spec : Rv_spec.t) : Device_model.t =
  {
    Device_model.device_name = spec.Rv_spec.name;
    clock_mhz = spec.Rv_spec.clock_mhz;
    kernel_time_s = (fun ks stats -> kernel_time_s spec ks stats);
    transfer_time_s = (fun ~bytes -> transfer_time_s spec ~bytes);
    launch_overhead_s = spec.Rv_spec.kernel_launch_overhead_s;
    alloc_overhead_s = spec.Rv_spec.buffer_alloc_overhead_s;
  }

(* Footprint estimate, reported through the shared Resources.report shape
   with a documented reinterpretation: luts ≙ instruction words in the
   kernel image, ffs ≙ architectural registers live across the loops,
   brams ≙ 4 KiB scratchpad pages, dsps ≙ vector MAC slots engaged.
   Percentages are against imem, scratchpad and lane capacity. *)
let estimate (spec : Rv_spec.t) (ks : Schedule.kernel_schedule) =
  let loops = Schedule.flatten_loops ks.Schedule.loops in
  let insns_of_loop (l : Schedule.loop_info) =
    (* compute + memory + induction/branch bookkeeping, once per loop:
       vectorisation changes timing, not static code size *)
    l.Schedule.int_ops + l.Schedule.fp_ops + beats_per_iteration l + 4
  in
  let insn_words =
    16 (* prologue: argument unmarshal + doorbell handshake *)
    + (8 * ks.Schedule.s_axilite_args)
    + List.fold_left (fun acc l -> acc + insns_of_loop l) 0 loops
  in
  let image_bytes = insn_words * spec.Rv_spec.bytes_per_insn in
  let pages = (ks.Schedule.local_buffer_bytes + 4095) / 4096 in
  let vector_macs =
    List.fold_left
      (fun acc l -> if vectorised l then acc + l.Schedule.macs else acc)
      0 loops
  in
  let scalar_macs =
    List.fold_left
      (fun acc l -> if vectorised l then acc else acc + l.Schedule.macs)
      0 loops
  in
  let mac_slots = min vector_macs spec.Rv_spec.vector_lanes in
  let live_regs =
    List.fold_left
      (fun acc l -> acc + beats_per_iteration l + 2)
      (2 * ks.Schedule.s_axilite_args)
      loops
  in
  let kernel =
    {
      Resources.luts = insn_words;
      ffs = live_regs;
      brams = pages;
      dsps = mac_slots;
    }
  in
  {
    Resources.kernel;
    total = kernel;
    lut_pct =
      100.0 *. float_of_int image_bytes /. float_of_int spec.Rv_spec.imem_bytes;
    bram_pct =
      100.0
      *. float_of_int ks.Schedule.local_buffer_bytes
      /. float_of_int spec.Rv_spec.scratchpad_bytes;
    dsp_pct =
      100.0 *. float_of_int mac_slots
      /. float_of_int spec.Rv_spec.vector_lanes;
    fused_macs = vector_macs;
    lut_macs = scalar_macs;
  }

(* Static cluster floor plus dynamic draw scaled by the kernel duty cycle
   over the device-active window — same duty definition as the FPGA
   power model, different coefficients. *)
let power_w (spec : Rv_spec.t) (_ : Resources.report) ~kernel_time_s
    ~device_time_s =
  let duty = Power.duty ~kernel_time_s ~device_time_s in
  spec.Rv_spec.static_power_w +. (spec.Rv_spec.dynamic_power_full_w *. duty)
