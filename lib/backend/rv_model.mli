(** Timing and footprint model for the simulated RISC-V accelerator:
    prices the structural outputs of the shared kernel scheduler (op
    counts, beats, unroll, observed trips) with RISC-V rules — scalar
    loops are issue-width and DRAM-latency bound, directive-unrolled
    loops vectorise (VL = min(unroll, lanes), amortised beats, fused
    vfmacc), top-level omp loops work-share across harts. *)

open Ftn_hlsim

val vectorised : Schedule.loop_info -> bool
(** True when the loop's unroll directive maps it onto the vector unit. *)

val cycles_per_iteration : Rv_spec.t -> Schedule.loop_info -> float
val kernel_cycles : Rv_spec.t -> Schedule.kernel_schedule -> Timing.loop_stats -> float
val kernel_time_s : Rv_spec.t -> Schedule.kernel_schedule -> Timing.loop_stats -> float
val transfer_time_s : Rv_spec.t -> bytes:int -> float

val model : Rv_spec.t -> Device_model.t

val estimate : Rv_spec.t -> Schedule.kernel_schedule -> Resources.report
(** Footprint through the shared report shape — documented
    reinterpretation: luts ≙ instruction words, ffs ≙ live registers,
    brams ≙ scratchpad pages, dsps ≙ vector MAC slots. *)

val power_w :
  Rv_spec.t ->
  Resources.report ->
  kernel_time_s:float ->
  device_time_s:float ->
  float
