(* Device description for the simulated RISC-V accelerator (after
   "Programming RISC-V accelerators via Fortran", arXiv:2510.02170): a
   memory-mapped cluster of in-order RV64GCV harts with a shared
   scratchpad, fed by host DMA. As with Fpga_spec, the behavioural
   constants are honest free parameters of an analytic model — every
   kernel is costed by the same rules. *)

type t = {
  name : string;
  (* --- cluster shape --- *)
  harts : int;  (** Worker harts; omp parallel-do iterations are shared. *)
  vector_lanes : int;  (** f32 lanes per hart's vector unit. *)
  issue_width : int;  (** Scalar instructions issued per cycle. *)
  clock_mhz : float;
  imem_bytes : int;  (** Instruction memory the kernel image loads into. *)
  scratchpad_bytes : int;  (** Shared on-cluster data scratchpad. *)
  (* --- per-op cycle costs (per original loop iteration) --- *)
  int_op_cycles : float;
  fp_op_cycles : float;  (** Unfused f32 add/mul through the FPU. *)
  fused_mac_cycles : float;  (** vfmacc: one fused multiply-accumulate. *)
  scalar_beat_cycles : float;  (** One scalar load/store beat to DRAM. *)
  vector_beat_cycles : float;
      (** Amortised per-element cost of a unit-stride vector load/store. *)
  loop_overhead_cycles : float;  (** Bookkeeping per loop entry. *)
  (* --- host-visible overheads --- *)
  kernel_launch_overhead_s : float;  (** Doorbell + argument staging. *)
  buffer_alloc_overhead_s : float;
  dma_fixed_overhead_s : float;
  dma_bandwidth_bytes_per_s : float;
  (* --- power model --- *)
  static_power_w : float;
  dynamic_power_full_w : float;
  (* --- footprint model --- *)
  bytes_per_insn : int;
}

let srv64 =
  {
    name = "SRV64 RISC-V accelerator cluster (simulated)";
    harts = 8;
    vector_lanes = 8;
    issue_width = 2;
    clock_mhz = 1_000.0;
    imem_bytes = 256 * 1024;
    scratchpad_bytes = 4 * 1024 * 1024;
    int_op_cycles = 1.0;
    fp_op_cycles = 4.0;
    fused_mac_cycles = 4.0;
    scalar_beat_cycles = 12.0;
    vector_beat_cycles = 1.5;
    loop_overhead_cycles = 6.0;
    kernel_launch_overhead_s = 3.0e-6;
    buffer_alloc_overhead_s = 8.0e-6;
    dma_fixed_overhead_s = 0.5e-6;
    dma_bandwidth_bytes_per_s = 8.0e9;
    static_power_w = 3.5;
    dynamic_power_full_w = 9.0;
    bytes_per_insn = 4;
  }

let clock_period_s spec = 1.0 /. (spec.clock_mhz *. 1.0e6)
