(** Device description for the simulated RISC-V accelerator cluster
    (after arXiv:2510.02170): in-order RV64GCV harts with vector units and
    a shared scratchpad, fed by host DMA. *)

type t = {
  name : string;
  harts : int;
  vector_lanes : int;
  issue_width : int;
  clock_mhz : float;
  imem_bytes : int;
  scratchpad_bytes : int;
  int_op_cycles : float;
  fp_op_cycles : float;
  fused_mac_cycles : float;
  scalar_beat_cycles : float;
  vector_beat_cycles : float;
  loop_overhead_cycles : float;
  kernel_launch_overhead_s : float;
  buffer_alloc_overhead_s : float;
  dma_fixed_overhead_s : float;
  dma_bandwidth_bytes_per_s : float;
  static_power_w : float;
  dynamic_power_full_w : float;
  bytes_per_insn : int;
}

val srv64 : t
(** The default simulated cluster: 8 harts, 8 f32 lanes, 1 GHz. *)

val clock_period_s : t -> float
