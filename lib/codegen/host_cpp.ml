(* Host code printer: generates C++ with OpenCL from the host module (the
   paper's "printer that we developed which generates C++ with OpenCL that
   is then compiled by Clang for the host").

   SSA values map onto single-assignment C++ locals; the device dialect
   maps onto a small ftn:: helper layer over the OpenCL C++ bindings
   (buffer cache keyed by identifier name, reference counters, HBM bank
   selection) that is emitted as a prelude into the same file.

   The printer is target-parametric: the shared core (arith/math/memref/
   scf/func, ~everything control flow) is emitted identically for every
   backend, while the device-dialect arms, prelude and setup section
   switch on the [target]. [Opencl] is the paper's Vitis/XRT flow; [Rv]
   emits the memory-mapped driver API of a RISC-V accelerator (after
   arXiv:2510.02170), where the "bitstream" is a flat binary image loaded
   into the accelerator's instruction memory. *)

open Ftn_ir
open Ftn_dialects

exception Cpp_error of string

let cpp_scalar_type ty =
  match ty with
  | Types.I1 -> "bool"
  | Types.I8 -> "int8_t"
  | Types.I16 -> "int16_t"
  | Types.I32 -> "int32_t"
  | Types.I64 | Types.Index -> "int64_t"
  | Types.F32 -> "float"
  | Types.F64 -> "double"
  | other -> raise (Cpp_error ("no C++ scalar type for " ^ Types.to_string other))

type buffer_info = {
  bi_elt : Types.t;
  bi_dims : string list;  (** C++ expressions for each dimension extent. *)
  bi_device : bool;
}

type target = Opencl | Rv

type ctx = {
  buf : Buffer.t;
  target : target;
  mutable indent : int;
  exprs : (int, string) Hashtbl.t;  (** value id -> C++ expression *)
  buffers : (int, buffer_info) Hashtbl.t;
  mutable event_count : int;
}

let line ctx fmt =
  Fmt.kstr
    (fun s ->
      Buffer.add_string ctx.buf (String.make (ctx.indent * 2) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let expr ctx v =
  match Hashtbl.find_opt ctx.exprs (Value.id v) with
  | Some e -> e
  | None -> Fmt.str "v%d" (Value.id v)

let bind ctx v e = Hashtbl.replace ctx.exprs (Value.id v) e

let var v = Fmt.str "v%d" (Value.id v)

let buffer_info ctx v =
  match Hashtbl.find_opt ctx.buffers (Value.id v) with
  | Some bi -> bi
  | None -> raise (Cpp_error ("value is not a known buffer: " ^ var v))

let elt_of_memref v =
  match Value.ty v with
  | Types.Memref mi -> mi.Types.elt
  | _ -> raise (Cpp_error "expected memref value")

let byte_expr ctx v =
  let bi = buffer_info ctx v in
  let elems =
    match bi.bi_dims with [] -> "1" | ds -> String.concat " * " ds
  in
  Fmt.str "(%s) * sizeof(%s)" elems (cpp_scalar_type bi.bi_elt)

(* Linearised index expression (row-major). *)
let index_expr ctx dims indices =
  match (dims, indices) with
  | [], [] -> "0"
  | _ ->
    let rec go acc dims indices =
      match (dims, indices) with
      | [], [] -> acc
      | d :: dims, i :: indices ->
        go (Fmt.str "(%s) * (%s) + (%s)" acc d (expr ctx i)) dims indices
      | _ -> raise (Cpp_error "subscript rank mismatch")
    in
    (match (dims, indices) with
    | _ :: dims, i0 :: indices -> go (expr ctx i0) dims indices
    | _ -> raise (Cpp_error "subscript rank mismatch"))

(* C++ float literals need a decimal point or exponent before the suffix:
   %g alone prints 2.0 as "2". *)
let float_literal ?(single = false) x =
  let repr = if single then Fmt.str "%.9g" x else Fmt.str "%.17g" x in
  let needs_dot =
    not
      (String.exists
         (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i')
         repr)
  in
  let repr = if needs_dot then repr ^ ".0" else repr in
  if single then repr ^ "f" else repr

let binop_cpp = function
  | "arith.addi" | "arith.addf" -> Some "+"
  | "arith.subi" | "arith.subf" -> Some "-"
  | "arith.muli" | "arith.mulf" -> Some "*"
  | "arith.divsi" | "arith.divf" -> Some "/"
  | "arith.remsi" -> Some "%"
  | "arith.andi" -> Some "&"
  | "arith.ori" -> Some "|"
  | "arith.xori" -> Some "^"
  | _ -> None

let cmp_cpp = function
  | "eq" | "oeq" -> "=="
  | "ne" | "one" -> "!="
  | "slt" | "olt" -> "<"
  | "sle" | "ole" -> "<="
  | "sgt" | "ogt" -> ">"
  | "sge" | "oge" -> ">="
  | p -> raise (Cpp_error ("unknown predicate " ^ p))

let ns ctx = match ctx.target with Opencl -> "ftn" | Rv -> "ftn_rv"

let rec emit_ops ctx ops = List.iter (emit_op ctx) ops

and emit_op ctx op =
  let name = Op.name op in
  match name with
  | "arith.constant" -> (
    match Op.find_attr op "value" with
    | Some (Attr.Int (n, Types.I1)) ->
      bind ctx (Op.result1 op) (if n <> 0 then "true" else "false")
    | Some (Attr.Int (n, _)) -> bind ctx (Op.result1 op) (string_of_int n)
    | Some (Attr.Float (x, Types.F32)) ->
      bind ctx (Op.result1 op) (float_literal ~single:true x)
    | Some (Attr.Float (x, _)) -> bind ctx (Op.result1 op) (float_literal x)
    | _ -> raise (Cpp_error "constant without value"))
  | _ when binop_cpp name <> None -> (
    match (Op.operands op, binop_cpp name) with
    | [ a; b ], Some sym ->
      let r = Op.result1 op in
      line ctx "%s %s = %s %s %s;"
        (cpp_scalar_type (Value.ty r))
        (var r) (expr ctx a) sym (expr ctx b);
      bind ctx r (var r)
    | _ -> raise (Cpp_error (name ^ " malformed")))
  | "arith.maxsi" | "arith.maximumf" | "arith.minsi" | "arith.minimumf" -> (
    match Op.operands op with
    | [ a; b ] ->
      let r = Op.result1 op in
      let f =
        if name = "arith.maxsi" || name = "arith.maximumf" then "std::max"
        else "std::min"
      in
      line ctx "%s %s = %s(%s, %s);"
        (cpp_scalar_type (Value.ty r))
        (var r) f (expr ctx a) (expr ctx b);
      bind ctx r (var r)
    | _ -> raise (Cpp_error (name ^ " malformed")))
  | "arith.negf" -> (
    match Op.operands op with
    | [ a ] ->
      bind ctx (Op.result1 op) (Fmt.str "(-(%s))" (expr ctx a))
    | _ -> raise (Cpp_error "negf malformed"))
  | "arith.cmpi" | "arith.cmpf" -> (
    match (Op.operands op, Op.string_attr op "predicate") with
    | [ a; b ], Some p ->
      bind ctx (Op.result1 op)
        (Fmt.str "((%s) %s (%s))" (expr ctx a) (cmp_cpp p) (expr ctx b))
    | _ -> raise (Cpp_error "cmp malformed"))
  | "arith.select" -> (
    match Op.operands op with
    | [ c; t; f ] ->
      bind ctx (Op.result1 op)
        (Fmt.str "((%s) ? (%s) : (%s))" (expr ctx c) (expr ctx t) (expr ctx f))
    | _ -> raise (Cpp_error "select malformed"))
  | "arith.index_cast" | "arith.extsi" | "arith.trunci" | "arith.sitofp"
  | "arith.fptosi" | "arith.extf" | "arith.truncf" -> (
    match Op.operands op with
    | [ a ] ->
      bind ctx (Op.result1 op)
        (Fmt.str "((%s)(%s))"
           (cpp_scalar_type (Value.ty (Op.result1 op)))
           (expr ctx a))
    | _ -> raise (Cpp_error "cast malformed"))
  | "math.sqrt" | "math.exp" | "math.log" | "math.sin" | "math.cos"
  | "math.tanh" | "math.absf" -> (
    match Op.operands op with
    | [ a ] ->
      let f =
        match name with
        | "math.absf" -> "std::fabs"
        | _ -> "std::" ^ String.sub name 5 (String.length name - 5)
      in
      bind ctx (Op.result1 op) (Fmt.str "%s(%s)" f (expr ctx a))
    | _ -> raise (Cpp_error (name ^ " malformed")))
  | "math.powf" -> (
    match Op.operands op with
    | [ a; b ] ->
      bind ctx (Op.result1 op)
        (Fmt.str "std::pow(%s, %s)" (expr ctx a) (expr ctx b))
    | _ -> raise (Cpp_error "powf malformed"))
  | "memref.alloca" | "memref.alloc" -> (
    match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let r = Op.result1 op in
      let dyn = ref (List.map (expr ctx) (Op.operands op)) in
      let dims =
        List.map
          (fun d ->
            match d with
            | Types.Static n -> string_of_int n
            | Types.Dynamic -> (
              match !dyn with
              | e :: rest ->
                dyn := rest;
                e
              | [] -> raise (Cpp_error "missing dynamic size")))
          mi.Types.shape
      in
      Hashtbl.replace ctx.buffers (Value.id r)
        { bi_elt = mi.Types.elt; bi_dims = dims; bi_device = false };
      if dims = [] then
        line ctx "%s %s = %s;"
          (cpp_scalar_type mi.Types.elt)
          (var r)
          (if Types.is_float mi.Types.elt then "0.0f" else "0")
      else
        line ctx "std::vector<%s> %s(%s);"
          (cpp_scalar_type mi.Types.elt)
          (var r)
          (String.concat " * " dims);
      bind ctx r (var r)
    | _ -> raise (Cpp_error "alloca of non-memref"))
  | "memref.load" -> (
    match Op.operands op with
    | mr :: indices ->
      let bi = buffer_info ctx mr in
      let r = Op.result1 op in
      if bi.bi_dims = [] then bind ctx r (expr ctx mr)
      else
        bind ctx r
          (Fmt.str "%s[%s]" (expr ctx mr) (index_expr ctx bi.bi_dims indices))
    | [] -> raise (Cpp_error "load malformed"))
  | "memref.store" -> (
    match Op.operands op with
    | value :: mr :: indices ->
      let bi = buffer_info ctx mr in
      if bi.bi_dims = [] then
        line ctx "%s = %s;" (expr ctx mr) (expr ctx value)
      else
        line ctx "%s[%s] = %s;" (expr ctx mr)
          (index_expr ctx bi.bi_dims indices)
          (expr ctx value)
    | _ -> raise (Cpp_error "store malformed"))
  | "memref.dim" -> (
    match Op.operands op with
    | [ mr; idx ] ->
      let bi = buffer_info ctx mr in
      let i =
        try int_of_string (expr ctx idx)
        with Failure _ -> raise (Cpp_error "memref.dim needs constant index")
      in
      (match List.nth_opt bi.bi_dims i with
      | Some d -> bind ctx (Op.result1 op) (Fmt.str "((int64_t)(%s))" d)
      | None -> raise (Cpp_error "memref.dim out of range"))
    | _ -> raise (Cpp_error "dim malformed"))
  | "memref.dma_start" -> (
    match Op.operands op with
    | [ src; dst ] ->
      let sb = buffer_info ctx src and db = buffer_info ctx dst in
      let host_ptr side_bi side_expr =
        if side_bi.bi_dims = [] then Fmt.str "&%s" side_expr
        else Fmt.str "%s.data()" side_expr
      in
      (match (sb.bi_device, db.bi_device, ctx.target) with
      | false, true, Opencl ->
        line ctx "queue.enqueueWriteBuffer(%s, CL_TRUE, 0, %s, %s);"
          (expr ctx dst) (byte_expr ctx src)
          (host_ptr sb (expr ctx src))
      | true, false, Opencl ->
        line ctx "queue.enqueueReadBuffer(%s, CL_TRUE, 0, %s, %s);"
          (expr ctx src) (byte_expr ctx dst)
          (host_ptr db (expr ctx dst))
      | _, _, Opencl ->
        line ctx "ftn::device_copy(queue, %s, %s);" (expr ctx src)
          (expr ctx dst)
      | false, true, Rv ->
        line ctx "dev.dma_write(%s, %s, %s);" (expr ctx dst)
          (host_ptr sb (expr ctx src))
          (byte_expr ctx src)
      | true, false, Rv ->
        line ctx "dev.dma_read(%s, %s, %s);" (expr ctx src)
          (host_ptr db (expr ctx dst))
          (byte_expr ctx dst)
      | _, _, Rv ->
        line ctx "ftn_rv::device_copy(dev, %s, %s);" (expr ctx src)
          (expr ctx dst))
    | _ -> raise (Cpp_error "dma_start malformed"))
  | "memref.dma_wait" -> (
    match ctx.target with
    | Opencl -> line ctx "queue.finish();"
    | Rv -> line ctx "dev.dma_barrier();")
  | "device.alloc" -> (
    match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let r = Op.result1 op in
      let name_attr = Option.value ~default:"buf" (Op.string_attr op "name") in
      let space = Option.value ~default:1 (Op.int_attr op "memory_space") in
      let dyn = ref (List.map (expr ctx) (Op.operands op)) in
      let dims =
        List.map
          (fun d ->
            match d with
            | Types.Static n -> string_of_int n
            | Types.Dynamic -> (
              match !dyn with
              | e :: rest ->
                dyn := rest;
                e
              | [] -> raise (Cpp_error "missing dynamic size")))
          mi.Types.shape
      in
      Hashtbl.replace ctx.buffers (Value.id r)
        { bi_elt = mi.Types.elt; bi_dims = dims; bi_device = true };
      let elems =
        match dims with [] -> "1" | ds -> String.concat " * " ds
      in
      (match ctx.target with
      | Opencl ->
        line ctx
          "cl::Buffer %s = ftn::device_alloc(context, \"%s\", %d, (%s) * sizeof(%s));"
          (var r) name_attr space elems
          (cpp_scalar_type mi.Types.elt)
      | Rv ->
        line ctx
          "ftn_rv::Buffer %s = ftn_rv::device_alloc(dev, \"%s\", %d, (%s) * sizeof(%s));"
          (var r) name_attr space elems
          (cpp_scalar_type mi.Types.elt));
      bind ctx r (var r)
    | _ -> raise (Cpp_error "device.alloc malformed"))
  | "device.lookup" -> (
    match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let r = Op.result1 op in
      let name_attr = Option.value ~default:"buf" (Op.string_attr op "name") in
      let space = Option.value ~default:1 (Op.int_attr op "memory_space") in
      let dims =
        List.map
          (function
            | Types.Static n -> string_of_int n
            | Types.Dynamic -> "0" (* extent tracked by the helper layer *))
          mi.Types.shape
      in
      Hashtbl.replace ctx.buffers (Value.id r)
        { bi_elt = mi.Types.elt; bi_dims = dims; bi_device = true };
      (match ctx.target with
      | Opencl ->
        line ctx "cl::Buffer %s = ftn::device_lookup(\"%s\", %d);" (var r)
          name_attr space
      | Rv ->
        line ctx "ftn_rv::Buffer %s = ftn_rv::device_lookup(\"%s\", %d);"
          (var r) name_attr space);
      bind ctx r (var r)
    | _ -> raise (Cpp_error "device.lookup malformed"))
  | "device.data_check_exists" ->
    let name_attr = Option.value ~default:"buf" (Op.string_attr op "name") in
    bind ctx (Op.result1 op)
      (Fmt.str "%s::data_exists(\"%s\")" (ns ctx) name_attr)
  | "device.data_acquire" ->
    line ctx "%s::data_acquire(\"%s\");" (ns ctx)
      (Option.value ~default:"buf" (Op.string_attr op "name"))
  | "device.data_release" ->
    line ctx "%s::data_release(\"%s\");" (ns ctx)
      (Option.value ~default:"buf" (Op.string_attr op "name"))
  | "device.kernel_create" -> (
    match Op.symbol_attr op "device_function" with
    | Some fname ->
      let r = Op.result1 op in
      (match ctx.target with
      | Opencl ->
        line ctx "cl::Kernel %s(program, \"%s\");" (var r) fname;
        List.iteri
          (fun i arg -> line ctx "%s.setArg(%d, %s);" (var r) i (expr ctx arg))
          (Op.operands op)
      | Rv ->
        line ctx "ftn_rv::Kernel %s = dev.kernel(\"%s\");" (var r) fname;
        List.iteri
          (fun i arg -> line ctx "%s.set_arg(%d, %s);" (var r) i (expr ctx arg))
          (Op.operands op));
      bind ctx r (var r)
    | None -> raise (Cpp_error "kernel_create without device_function"))
  | "device.kernel_launch" -> (
    match Op.operands op with
    | [ h ] ->
      ctx.event_count <- ctx.event_count + 1;
      let ev = Fmt.str "event%d" ctx.event_count in
      (match ctx.target with
      | Opencl ->
        line ctx "cl::Event %s;" ev;
        line ctx "queue.enqueueTask(%s, nullptr, &%s);" (expr ctx h) ev
      | Rv ->
        line ctx "uint64_t %s = dev.launch(%s);" ev (expr ctx h));
      (* remember the event for the matching wait *)
      bind ctx h (expr ctx h);
      Hashtbl.replace ctx.exprs (-Value.id h) ev
    | _ -> raise (Cpp_error "kernel_launch malformed"))
  | "device.kernel_wait" -> (
    match Op.operands op with
    | [ h ] -> (
      match (Hashtbl.find_opt ctx.exprs (-Value.id h), ctx.target) with
      | Some ev, Opencl -> line ctx "%s.wait();" ev
      | Some ev, Rv -> line ctx "dev.wait(%s);" ev
      | None, Opencl -> line ctx "queue.finish();"
      | None, Rv -> line ctx "dev.barrier();")
    | _ -> raise (Cpp_error "kernel_wait malformed"))
  | "scf.for" -> (
    match Scf.for_parts op with
    | Some parts when parts.Scf.iter_inits = [] ->
      let iv = parts.Scf.induction in
      line ctx "for (int64_t %s = %s; %s < %s; %s += %s) {" (var iv)
        (expr ctx parts.Scf.lb) (var iv) (expr ctx parts.Scf.ub) (var iv)
        (expr ctx parts.Scf.step);
      bind ctx iv (var iv);
      ctx.indent <- ctx.indent + 1;
      emit_ops ctx
        (List.filter (fun o -> not (Scf.is_yield o)) parts.Scf.body);
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
    | Some parts ->
      (* loop-carried values become mutable locals *)
      let iv = parts.Scf.induction in
      List.iter2
        (fun arg init ->
          line ctx "%s %s = %s;"
            (cpp_scalar_type (Value.ty arg))
            (var arg) (expr ctx init);
          bind ctx arg (var arg))
        parts.Scf.iter_args parts.Scf.iter_inits;
      line ctx "for (int64_t %s = %s; %s < %s; %s += %s) {" (var iv)
        (expr ctx parts.Scf.lb) (var iv) (expr ctx parts.Scf.ub) (var iv)
        (expr ctx parts.Scf.step);
      bind ctx iv (var iv);
      ctx.indent <- ctx.indent + 1;
      let body, yield =
        List.partition (fun o -> not (Scf.is_yield o)) parts.Scf.body
      in
      emit_ops ctx body;
      (match yield with
      | [ y ] ->
        List.iter2
          (fun arg v -> line ctx "%s = %s;" (var arg) (expr ctx v))
          parts.Scf.iter_args (Op.operands y)
      | _ -> ());
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      List.iter2
        (fun res arg -> bind ctx res (var arg))
        (Op.results op) parts.Scf.iter_args
    | None -> raise (Cpp_error "malformed scf.for"))
  | "scf.if" ->
    let cond = List.hd (Op.operands op) in
    (* results become pre-declared locals assigned in each branch *)
    List.iter
      (fun r ->
        match Value.ty r with
        | Types.Memref _ ->
          Hashtbl.replace ctx.buffers (Value.id r)
            {
              bi_elt = elt_of_memref r;
              bi_dims =
                (match Value.ty r with
                | Types.Memref mi ->
                  List.map
                    (function
                      | Types.Static n -> string_of_int n
                      | Types.Dynamic -> "0")
                    mi.Types.shape
                | _ -> []);
              bi_device = true;
            };
          (match ctx.target with
          | Opencl -> line ctx "cl::Buffer %s;" (var r)
          | Rv -> line ctx "ftn_rv::Buffer %s;" (var r));
          bind ctx r (var r)
        | ty ->
          line ctx "%s %s{};" (cpp_scalar_type ty) (var r);
          bind ctx r (var r))
      (Op.results op);
    let emit_branch ops =
      ctx.indent <- ctx.indent + 1;
      let body, yield = List.partition (fun o -> not (Scf.is_yield o)) ops in
      emit_ops ctx body;
      (match yield with
      | [ y ] ->
        List.iter2
          (fun r v -> line ctx "%s = %s;" (var r) (expr ctx v))
          (Op.results op) (Op.operands y)
      | _ -> ());
      ctx.indent <- ctx.indent - 1
    in
    line ctx "if (%s) {" (expr ctx cond);
    emit_branch (Op.region_body op 0);
    if List.length (Op.regions op) > 1 then begin
      line ctx "} else {";
      emit_branch (Op.region_body op 1)
    end;
    line ctx "}"
  | "func.call" -> (
    match Op.symbol_attr op "callee" with
    | Some "ftn_print_str" ->
      line ctx "std::cout << \" %s\";"
        (Option.value ~default:"" (Op.string_attr op "text"))
    | Some ("ftn_print_i32" | "ftn_print_f32" | "ftn_print_f64" | "ftn_print_i1")
      -> (
      match Op.operands op with
      | [ v ] -> line ctx "std::cout << \" \" << %s;" (expr ctx v)
      | _ -> raise (Cpp_error "print call malformed"))
    | Some "ftn_print_newline" -> line ctx "std::cout << std::endl;"
    | Some callee ->
      let args = String.concat ", " (List.map (expr ctx) (Op.operands op)) in
      (match Op.results op with
      | [] -> line ctx "%s(%s);" callee args
      | [ r ] ->
        line ctx "auto %s = %s(%s);" (var r) callee args;
        bind ctx r (var r)
      | _ -> raise (Cpp_error "multi-result call"))
    | None -> raise (Cpp_error "call without callee"))
  | "func.return" -> line ctx "return;"
  | other -> raise (Cpp_error ("host printer cannot emit " ^ other))

let prelude =
  {|// Generated host code: Fortran OpenMP -> FPGA offload (OpenCL).
#include <CL/cl2.hpp>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace ftn {
// Reference-counted device data environment (paper, Section 3): data
// identifiers map to cached cl::Buffers; an integer counter per identifier
// implements data_acquire / data_release / data_check_exists.
static std::map<std::string, cl::Buffer> buffers;
static std::map<std::string, int> counters;

inline cl::Buffer device_alloc(cl::Context &context, const std::string &name,
                               int memory_space, size_t bytes) {
  auto it = buffers.find(name);
  if (it != buffers.end()) return it->second;
  cl_mem_ext_ptr_t ext;
  ext.flags = memory_space == 1 ? (unsigned)name.size() % 32 : XCL_MEM_DDR_BANK0;
  ext.obj = nullptr;
  ext.param = 0;
  cl::Buffer buf(context, CL_MEM_READ_WRITE | CL_MEM_EXT_PTR_XILINX, bytes,
                 &ext);
  buffers.emplace(name, buf);
  return buf;
}
inline cl::Buffer device_lookup(const std::string &name, int) {
  return buffers.at(name);
}
inline bool data_exists(const std::string &name) {
  auto it = counters.find(name);
  return it != counters.end() && it->second > 0;
}
inline void data_acquire(const std::string &name) { counters[name]++; }
inline void data_release(const std::string &name) {
  auto it = counters.find(name);
  if (it != counters.end() && it->second > 0) it->second--;
}
inline void device_copy(cl::CommandQueue &queue, cl::Buffer &src,
                        cl::Buffer &dst) {
  size_t bytes = src.getInfo<CL_MEM_SIZE>();
  queue.enqueueCopyBuffer(src, dst, 0, 0, bytes);
}
} // namespace ftn

|}

let rv_prelude =
  {|// Generated host code: Fortran OpenMP -> RISC-V accelerator offload.
// Driver model after "Programming RISC-V accelerators via Fortran": the
// accelerator is a memory-mapped compute cluster; the host loads a flat
// binary image into its instruction memory, stages data over DMA and
// dispatches kernels to hart groups through doorbell registers.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace ftn_rv {
struct Buffer {
  uint64_t addr = 0;  // device scratchpad / DRAM address
  size_t bytes = 0;
};
struct Kernel {
  uint32_t entry = 0;               // image entry point
  std::vector<uint64_t> args;       // argument registers a0..a7 spill
  void set_arg(int i, const Buffer &b) {
    if ((int)args.size() <= i) args.resize(i + 1);
    args[i] = b.addr;
  }
  template <typename T> void set_arg(int i, T v) {
    if ((int)args.size() <= i) args.resize(i + 1);
    uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof(T) < 8 ? sizeof(T) : 8);
    args[i] = raw;
  }
};
struct Device {
  std::map<std::string, uint32_t> entries;  // kernel name -> entry point
  uint64_t next_ticket = 0;
  void load_image(const std::string &path) {
    std::ifstream f(path, std::ifstream::binary);
    std::vector<char> image(std::istreambuf_iterator<char>(f), {});
    (void)image;  // written to the accelerator's instruction memory
  }
  Kernel kernel(const std::string &name) {
    Kernel k;
    k.entry = entries.count(name) ? entries[name] : 0;
    return k;
  }
  void dma_write(Buffer &dst, const void *src, size_t bytes) {
    (void)dst; (void)src; (void)bytes;  // host -> device DMA descriptor
  }
  void dma_read(Buffer &src, void *dst, size_t bytes) {
    (void)src; (void)dst; (void)bytes;  // device -> host DMA descriptor
  }
  void dma_barrier() {}
  uint64_t launch(Kernel &k) {
    (void)k;  // ring the doorbell with the entry point + args
    return ++next_ticket;
  }
  void wait(uint64_t ticket) { (void)ticket; }
  void barrier() {}
};
// Reference-counted device data environment — identical contract to the
// OpenCL flow, keyed by data identifier name.
static std::map<std::string, Buffer> buffers;
static std::map<std::string, int> counters;
static uint64_t bump_addr = 0x8000'0000ull;

inline Buffer device_alloc(Device &, const std::string &name, int,
                           size_t bytes) {
  auto it = buffers.find(name);
  if (it != buffers.end()) return it->second;
  Buffer b;
  b.addr = bump_addr;
  b.bytes = bytes;
  bump_addr += (bytes + 63) & ~63ull;  // cache-line aligned bump allocator
  buffers.emplace(name, b);
  return b;
}
inline Buffer device_lookup(const std::string &name, int) {
  return buffers.at(name);
}
inline bool data_exists(const std::string &name) {
  auto it = counters.find(name);
  return it != counters.end() && it->second > 0;
}
inline void data_acquire(const std::string &name) { counters[name]++; }
inline void data_release(const std::string &name) {
  auto it = counters.find(name);
  if (it != counters.end() && it->second > 0) it->second--;
}
inline void device_copy(Device &dev, Buffer &src, Buffer &dst) {
  (void)dev; (void)src; (void)dst;  // device-local DMA
}
} // namespace ftn_rv

|}

let rv_setup image =
  Fmt.str
    {|  // RISC-V accelerator setup: map the device, load the kernel image.
  ftn_rv::Device dev;
  dev.load_image("%s");

|}
    image

let opencl_setup xclbin =
  Fmt.str
    {|  // OpenCL setup: platform, device, program from the FPGA bitstream.
  std::vector<cl::Platform> platforms;
  cl::Platform::get(&platforms);
  std::vector<cl::Device> devices;
  platforms.at(0).getDevices(CL_DEVICE_TYPE_ACCELERATOR, &devices);
  cl::Device device = devices.at(0);
  cl::Context context(device);
  cl::CommandQueue queue(context, device,
                         CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE);
  std::ifstream bin_file("%s", std::ifstream::binary);
  std::vector<unsigned char> bin(std::istreambuf_iterator<char>(bin_file), {});
  cl::Program::Binaries bins{{bin.data(), bin.size()}};
  cl::Program program(context, {device}, bins);

|}
    xclbin

(* Emit the whole host program from the host module's main function. *)
let emit_module ?(target = Opencl) ?(xclbin = "kernel.xclbin") host =
  let main =
    match
      List.find_opt
        (fun op ->
          Func_d.is_func op
          && (Op.bool_attr op "ftn.main" = Some true)
          && Func_d.has_body op)
        (Op.module_body host)
    with
    | Some f -> f
    | None -> raise (Cpp_error "host module has no main program")
  in
  let ctx =
    {
      buf = Buffer.create 4096;
      target;
      indent = 1;
      exprs = Hashtbl.create 64;
      buffers = Hashtbl.create 16;
      event_count = 0;
    }
  in
  emit_ops ctx
    (List.filter
       (fun o -> not (Func_d.is_return o))
       (Func_d.body main));
  line ctx "return 0;";
  let prelude, setup =
    match target with
    | Opencl -> (prelude, opencl_setup xclbin)
    | Rv -> (rv_prelude, rv_setup xclbin)
  in
  prelude ^ "int main() {\n" ^ setup ^ Buffer.contents ctx.buf ^ "}\n"
