(** Host code printer: C++ with OpenCL from the host module (the paper's
    host printer). SSA values map onto single-assignment C++ locals; the
    device dialect maps onto a small [ftn::] helper layer (buffer cache,
    reference counters, HBM bank selection) emitted as a prelude.

    The printer is target-parametric: the control-flow/arith core is
    shared, while the device-dialect arms, prelude and setup switch on
    {!target} — [Opencl] for the Vitis/XRT flow, [Rv] for the
    memory-mapped driver API of a RISC-V accelerator (after
    arXiv:2510.02170). *)

exception Cpp_error of string

type target = Opencl | Rv

val cpp_scalar_type : Ftn_ir.Types.t -> string
val prelude : string
val rv_prelude : string

val emit_module : ?target:target -> ?xclbin:string -> Ftn_ir.Op.t -> string
(** Emit a complete host program from the module's [ftn.main] function.
    [xclbin] names the device binary the setup section loads (an xclbin
    for [Opencl], a flat [.rvbin] image for [Rv]). *)
