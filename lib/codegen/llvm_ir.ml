(* LLVM-IR text emission from the llvm-dialect module. Emits typed-pointer
   IR (the format AMD's LLVM-7-based HLS backend consumes). Block arguments
   are converted to phi nodes by collecting the incoming edges of every
   branch. Constants fold inline into operand positions, as LLVM requires. *)

open Ftn_ir
open Ftn_dialects

exception Emit_error of string

let rec llvm_type ty =
  match ty with
  | Types.I1 -> "i1"
  | Types.I8 -> "i8"
  | Types.I16 -> "i16"
  | Types.I32 -> "i32"
  | Types.I64 | Types.Index -> "i64"
  | Types.F16 -> "half"
  | Types.F32 -> "float"
  | Types.F64 -> "double"
  | Types.Ptr elt -> llvm_type elt ^ "*"
  | other -> raise (Emit_error ("type has no LLVM form: " ^ Types.to_string other))

let float_lit x =
  (* LLVM accepts scientific notation for exactly-representable doubles;
     hex form is always safe. *)
  if Float.is_integer x && Float.abs x < 1e15 then Fmt.str "%.6e" x
  else Fmt.str "0x%LX" (Int64.bits_of_float x)

type fn_ctx = {
  names : (int, string) Hashtbl.t;  (** value id -> printed operand *)
  buf : Buffer.t;
  mutable tmp : int;
}

let operand ctx v =
  match Hashtbl.find_opt ctx.names (Value.id v) with
  | Some s -> s
  | None -> Fmt.str "%%v%d" (Value.id v)

let typed_operand ctx v = Fmt.str "%s %s" (llvm_type (Value.ty v)) (operand ctx v)

let def ctx v =
  let s = Fmt.str "%%v%d" (Value.id v) in
  Hashtbl.replace ctx.names (Value.id v) s;
  s

let line ctx fmt = Fmt.kstr (fun s -> Buffer.add_string ctx.buf ("  " ^ s ^ "\n")) fmt

(* --- phi construction: map block label -> (pred label, incoming values) --- *)

let collect_edges blocks =
  let edges : (string, (string * Value.t list) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let add dest edge =
    Hashtbl.replace edges dest
      (edge :: Option.value ~default:[] (Hashtbl.find_opt edges dest))
  in
  List.iter
    (fun blk ->
      List.iter
        (fun op ->
          if Llvm_d.is_br op then
            match Op.string_attr op "dest" with
            | Some dest -> add dest (blk.Op.label, Op.operands op)
            | None -> ()
          else if Llvm_d.is_cond_br op then
            match Llvm_d.cond_br_parts op with
            | Some (_c, t_dest, t_ops, f_dest, f_ops) ->
              add t_dest (blk.Op.label, t_ops);
              add f_dest (blk.Op.label, f_ops)
            | None -> ())
        blk.Op.body)
    blocks;
  edges

(* --- instruction emission --- *)

let binop_mnemonic = function
  | "llvm.add" -> "add"
  | "llvm.sub" -> "sub"
  | "llvm.mul" -> "mul"
  | "llvm.sdiv" -> "sdiv"
  | "llvm.srem" -> "srem"
  | "llvm.and" -> "and"
  | "llvm.or" -> "or"
  | "llvm.xor" -> "xor"
  | "llvm.fadd" -> "fadd"
  | "llvm.fsub" -> "fsub"
  | "llvm.fmul" -> "fmul"
  | "llvm.fdiv" -> "fdiv"
  | other -> raise (Emit_error ("unknown binop " ^ other))

let cast_mnemonic = function
  | "llvm.sext" -> "sext"
  | "llvm.trunc" -> "trunc"
  | "llvm.sitofp" -> "sitofp"
  | "llvm.fptosi" -> "fptosi"
  | "llvm.fpext" -> "fpext"
  | "llvm.fptrunc" -> "fptrunc"
  | "llvm.bitcast" -> "bitcast"
  | other -> raise (Emit_error ("unknown cast " ^ other))

let emit_instruction ctx op =
  let name = Op.name op in
  match name with
  | "llvm.mlir.constant" -> (
    (* no instruction: the constant text substitutes for the value *)
    let r = Op.result1 op in
    match Op.find_attr op "value" with
    | Some (Attr.Int (n, _)) ->
      Hashtbl.replace ctx.names (Value.id r) (string_of_int n)
    | Some (Attr.Float (x, _)) ->
      Hashtbl.replace ctx.names (Value.id r) (float_lit x)
    | Some (Attr.Bool b) ->
      Hashtbl.replace ctx.names (Value.id r) (if b then "1" else "0")
    | _ -> raise (Emit_error "constant without value"))
  | "llvm.add" | "llvm.sub" | "llvm.mul" | "llvm.sdiv" | "llvm.srem"
  | "llvm.and" | "llvm.or" | "llvm.xor" | "llvm.fadd" | "llvm.fsub"
  | "llvm.fmul" | "llvm.fdiv" -> (
    match Op.operands op with
    | [ a; b ] ->
      let fast =
        match name with
        | "llvm.fadd" | "llvm.fsub" | "llvm.fmul" | "llvm.fdiv" ->
          "contract "
        | _ -> ""
      in
      line ctx "%s = %s %s%s %s, %s"
        (def ctx (Op.result1 op))
        (binop_mnemonic name) fast
        (llvm_type (Value.ty a))
        (operand ctx a) (operand ctx b)
    | _ -> raise (Emit_error (name ^ " expects two operands")))
  | "llvm.fneg" -> (
    (* LLVM 7 has no fneg instruction: emit the fsub identity instead *)
    match Op.operands op with
    | [ a ] ->
      line ctx "%s = fsub %s %s, %s"
        (def ctx (Op.result1 op))
        (llvm_type (Value.ty a))
        (if Types.equal (Value.ty a) Types.F64 then "-0.000000e+00"
         else "-0.000000e+00")
        (operand ctx a)
    | _ -> raise (Emit_error "fneg expects one operand"))
  | "llvm.icmp" | "llvm.fcmp" -> (
    match Op.operands op with
    | [ a; b ] ->
      line ctx "%s = %s %s %s %s, %s"
        (def ctx (Op.result1 op))
        (if name = "llvm.icmp" then "icmp" else "fcmp")
        (Option.value ~default:"eq" (Op.string_attr op "predicate"))
        (llvm_type (Value.ty a))
        (operand ctx a) (operand ctx b)
    | _ -> raise (Emit_error "cmp expects two operands"))
  | "llvm.select" -> (
    match Op.operands op with
    | [ c; t; f ] ->
      line ctx "%s = select i1 %s, %s, %s"
        (def ctx (Op.result1 op))
        (operand ctx c) (typed_operand ctx t) (typed_operand ctx f)
    | _ -> raise (Emit_error "select expects three operands"))
  | "llvm.sext" | "llvm.trunc" | "llvm.sitofp" | "llvm.fptosi"
  | "llvm.fpext" | "llvm.fptrunc" | "llvm.bitcast" -> (
    match Op.operands op with
    | [ a ] ->
      line ctx "%s = %s %s to %s"
        (def ctx (Op.result1 op))
        (cast_mnemonic name) (typed_operand ctx a)
        (llvm_type (Value.ty (Op.result1 op)))
    | _ -> raise (Emit_error (name ^ " expects one operand")))
  | "llvm.getelementptr" -> (
    match Op.operands op with
    | base :: indices ->
      let elem =
        match Op.find_attr op "elem_type" with
        | Some (Attr.Type t) -> llvm_type t
        | _ -> raise (Emit_error "getelementptr without elem_type")
      in
      line ctx "%s = getelementptr %s, %s%s"
        (def ctx (Op.result1 op))
        elem (typed_operand ctx base)
        (String.concat ""
           (List.map (fun i -> ", " ^ typed_operand ctx i) indices))
    | [] -> raise (Emit_error "getelementptr without base"))
  | "llvm.load" -> (
    match Op.operands op with
    | [ p ] ->
      let ty = llvm_type (Value.ty (Op.result1 op)) in
      line ctx "%s = load %s, %s, align 4"
        (def ctx (Op.result1 op))
        ty (typed_operand ctx p)
    | _ -> raise (Emit_error "load expects one operand"))
  | "llvm.store" -> (
    match Op.operands op with
    | [ v; p ] ->
      line ctx "store %s, %s, align 4" (typed_operand ctx v)
        (typed_operand ctx p)
    | _ -> raise (Emit_error "store expects two operands"))
  | "llvm.alloca" -> (
    match Op.operands op with
    | [ n ] ->
      let elem =
        match Op.find_attr op "elem_type" with
        | Some (Attr.Type t) -> llvm_type t
        | _ -> raise (Emit_error "alloca without elem_type")
      in
      line ctx "%s = alloca %s, %s"
        (def ctx (Op.result1 op))
        elem (typed_operand ctx n)
    | _ -> raise (Emit_error "alloca expects a count"))
  | "llvm.call" -> (
    let callee = Option.value ~default:"f" (Op.symbol_attr op "callee") in
    let args =
      String.concat ", " (List.map (typed_operand ctx) (Op.operands op))
    in
    let variadic = Op.bool_attr op "variadic" = Some true in
    let call_sig = if variadic then "void (...) " else "void " in
    match Op.results op with
    | [] ->
      if variadic then
        line ctx "call %s@%s(%s)" call_sig callee args
      else line ctx "call void @%s(%s)" callee args
    | [ r ] ->
      line ctx "%s = call %s @%s(%s)" (def ctx r)
        (llvm_type (Value.ty r))
        callee args
    | _ -> raise (Emit_error "multi-result call"))
  | "llvm.br" -> (
    match Op.string_attr op "dest" with
    | Some dest -> line ctx "br label %%%s" dest
    | None -> raise (Emit_error "br without dest"))
  | "llvm.cond_br" -> (
    match Llvm_d.cond_br_parts op with
    | Some (c, t, _, f, _) ->
      line ctx "br i1 %s, label %%%s, label %%%s" (operand ctx c) t f
    | None -> raise (Emit_error "malformed cond_br"))
  | "llvm.return" -> (
    match Op.operands op with
    | [] -> line ctx "ret void"
    | [ v ] -> line ctx "ret %s" (typed_operand ctx v)
    | _ -> raise (Emit_error "multi-value return"))
  | other -> raise (Emit_error ("cannot emit " ^ other))

let emit_function buf fn =
  let name = Option.value ~default:"f" (Op.symbol_attr fn "sym_name") in
  let fn_ty =
    match Op.find_attr fn "function_type" with
    | Some (Attr.Type (Types.Func (args, results))) -> (args, results)
    | _ -> ([], [])
  in
  let ret_ty =
    match snd fn_ty with [] -> "void" | [ t ] -> llvm_type t | _ -> "void"
  in
  match Op.regions fn with
  | [] ->
    let variadic = Op.bool_attr fn "variadic" = Some true in
    let params =
      if variadic then "..."
      else String.concat ", " (List.map llvm_type (fst fn_ty))
    in
    Buffer.add_string buf (Fmt.str "declare %s @%s(%s)\n\n" ret_ty name params)
  | [ blocks ] ->
    let ctx = { names = Hashtbl.create 64; buf; tmp = 0 } in
    ignore ctx.tmp;
    let entry_args =
      match blocks with
      | b :: _ -> b.Op.args
      | [] -> []
    in
    let params =
      String.concat ", "
        (List.map
           (fun v -> Fmt.str "%s %s" (llvm_type (Value.ty v)) (def ctx v))
           entry_args)
    in
    Buffer.add_string buf (Fmt.str "define %s @%s(%s) {\n" ret_ty name params);
    let edges = collect_edges blocks in
    List.iteri
      (fun i blk ->
        Buffer.add_string buf (Fmt.str "%s:\n" blk.Op.label);
        (* phi nodes for non-entry block args *)
        if i > 0 then begin
          let incoming =
            Option.value ~default:[] (Hashtbl.find_opt edges blk.Op.label)
          in
          List.iteri
            (fun arg_i arg ->
              let parts =
                List.filter_map
                  (fun (pred, vals) ->
                    match List.nth_opt vals arg_i with
                    | Some v ->
                      Some (Fmt.str "[ %s, %%%s ]" (operand ctx v) pred)
                    | None -> None)
                  incoming
              in
              if parts <> [] then
                line ctx "%s = phi %s %s" (def ctx arg)
                  (llvm_type (Value.ty arg))
                  (String.concat ", " parts))
            blk.Op.args
        end;
        List.iter (emit_instruction ctx) blk.Op.body)
      blocks;
    Buffer.add_string buf "}\n\n"
  | _ -> raise (Emit_error "llvm.func with multiple regions")

let target_header =
  "; ModuleID = 'ftn-fpga-kernel'\n\
   source_filename = \"ftn-fpga-kernel\"\n\
   target datalayout = \
   \"e-m:e-i64:64-i128:128-i256:256-i512:512-i1024:1024-i2048:2048-i4096:4096-n8:16:32:64-S128-v16:16-v24:32-v32:32-v48:64-v96:128-v192:256-v256:256-v512:512-v1024:1024\"\n\
   target triple = \"fpga64-xilinx-none\"\n\n"

let rv_target_header =
  "; ModuleID = 'ftn-rv-kernel'\n\
   source_filename = \"ftn-rv-kernel\"\n\
   target datalayout = \"e-m:e-p:64:64-i64:64-i128:128-n32:64-S128\"\n\
   target triple = \"riscv64-unknown-elf\"\n\n"

let emit_module ?(header = target_header) m =
  if not (Op.is_module m) then raise (Emit_error "expected builtin.module");
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  List.iter
    (fun op ->
      if String.equal (Op.name op) "llvm.func" then emit_function buf op)
    (Op.module_body m);
  Buffer.contents buf
