(** LLVM-IR text emission from the llvm-dialect module. Emits
    typed-pointer IR (the format AMD's LLVM-7-based HLS backend consumes);
    block arguments become phi nodes, constants fold inline into operand
    positions, fneg lowers to an fsub identity. *)

exception Emit_error of string

val llvm_type : Ftn_ir.Types.t -> string
val float_lit : float -> string

val target_header : string
(** ModuleID, datalayout and the [fpga64-xilinx-none] triple. *)

val rv_target_header : string
(** ModuleID, datalayout and the [riscv64-unknown-elf] triple, for the
    RISC-V accelerator backend. *)

val emit_module : ?header:string -> Ftn_ir.Op.t -> string
(** Emit a whole builtin.module of llvm.func ops as .ll text. [header]
    selects the target preamble (default {!target_header}). *)
