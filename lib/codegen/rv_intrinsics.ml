(* RISC-V accelerator intrinsic lowering (after arXiv:2510.02170): the
   RISC-V target has no HLS directive primitives, so the _ssdm_op_Spec*
   directive calls produced by the hls-to-func lowering — and their
   declarations — are erased from the device module. The information they
   carried (pipelining, unroll, partitioning) already lives in the loop
   attributes the scheduler reads; on RISC-V it steers vectorisation in
   the timing model instead of HLS synthesis. *)

open Ftn_ir

let is_spec_name n =
  String.length n >= 9 && String.sub n 0 9 = "_ssdm_op_"

let is_spec_call op =
  String.equal (Op.name op) "llvm.call"
  &&
  match Op.symbol_attr op "callee" with
  | Some callee -> is_spec_name callee
  | None -> false

let is_spec_decl op =
  String.equal (Op.name op) "llvm.func"
  &&
  match Op.symbol_attr op "sym_name" with
  | Some n -> is_spec_name n
  | None -> false

let run m =
  let rec walk op =
    {
      op with
      Op.regions =
        List.map
          (fun blocks ->
            List.map
              (fun blk ->
                {
                  blk with
                  Op.body =
                    List.filter_map
                      (fun o ->
                        if is_spec_call o || is_spec_decl o then None
                        else Some (walk o))
                      blk.Op.body;
                })
              blocks)
          op.Op.regions;
    }
  in
  walk m

let pass = Pass.make "erase-hls-intrinsics-for-rv" run
