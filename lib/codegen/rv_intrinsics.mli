(** RISC-V accelerator intrinsic lowering: erases the [_ssdm_op_*] HLS
    directive calls and declarations from a device module — the RISC-V
    target consumes the same omp/device IR but has no HLS primitives; the
    directives' intent (unroll, pipeline) steers the RV timing model via
    loop attributes instead. *)

val is_spec_call : Ftn_ir.Op.t -> bool
val is_spec_decl : Ftn_ir.Op.t -> bool
val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
val pass : Ftn_ir.Pass.t
