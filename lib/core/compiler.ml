(* End-to-end compiler driver: Fortran source through every stage of the
   paper's Figure 2, collecting the intermediate artifacts for inspection
   (the per-stage dumps mlir-opt would produce). *)

open Ftn_ir

type artifacts = {
  source : string;
  fir_module : Op.t;  (** Flang level: FIR + omp. *)
  core_module : Op.t;  (** Core dialects + omp ([3]'s output). *)
  combined : Op.t;  (** After data/target lowering, host + nested fpga. *)
  host : Op.t;  (** Host module with device dialect. *)
  device_core : Op.t option;  (** Outlined kernels, core + omp level. *)
  device_hls : Op.t option;  (** After lower-omp-loops-to-hls. *)
  device_llvm : Op.t option;  (** llvm dialect with AMD intrinsics mapped. *)
  llvm_ir : string option;  (** Emitted LLVM-IR text. *)
  llvm_ir_downgraded : string option;  (** LLVM-7-compatible text. *)
  host_cpp : string option;  (** C++ with OpenCL host program. *)
  stages : Pass.stage_record list;
}

let compile ?(options = Options.default) ?file ?engine source =
  Ftn_obs.Span.with_span ~name:"compile" (fun () ->
  let span name f = Ftn_obs.Span.with_span ~name f in
  let fir_module =
    span "frontend.to_fir" (fun () ->
        Ftn_frontend.Frontend.to_fir ?file ?engine source)
  in
  let core_module =
    span "frontend.fir_to_core" (fun () ->
        Ftn_frontend.Fir_to_core.run fir_module)
  in
  span "verify.core" (fun () -> Verifier.verify_exn core_module);
  let r =
    span "mid_end" (fun () ->
        Ftn_passes.Pipeline.run_mid_end ~options:options.Options.pipeline
          core_module)
  in
  let backend = options.Options.backend in
  let device_llvm =
    Option.map
      (fun m ->
        span "codegen.lower_device" (fun () ->
            Ftn_backend.Backend.lower_device backend m))
      r.Ftn_passes.Pipeline.device_llvm
  in
  let llvm_ir =
    if options.Options.emit_llvm then
      Option.map
        (fun m ->
          span "codegen.emit_llvm_ir" (fun () ->
              Ftn_backend.Backend.emit_kernel_ir backend m))
        device_llvm
    else None
  in
  let llvm_ir_downgraded =
    Option.bind llvm_ir (fun text ->
        span "codegen.llvm_compat" (fun () ->
            Ftn_backend.Backend.emit_kernel_compat backend text))
  in
  let host_cpp =
    if options.Options.emit_cpp && r.Ftn_passes.Pipeline.device_core <> None
    then
      Some
        (span "codegen.host" (fun () ->
             Ftn_backend.Backend.emit_host backend
               ~binary:options.Options.xclbin_name r.Ftn_passes.Pipeline.host))
    else None
  in
  Ftn_obs.Metrics.incr "compile.runs";
  Ftn_obs.Log.infof "compiled %d source lines through %d pipeline stages"
    (List.length (String.split_on_char '\n' source))
    (List.length r.Ftn_passes.Pipeline.stages);
  {
    source;
    fir_module;
    core_module;
    combined = r.Ftn_passes.Pipeline.combined;
    host = r.Ftn_passes.Pipeline.host;
    device_core = r.Ftn_passes.Pipeline.device_core;
    device_hls = r.Ftn_passes.Pipeline.device_hls;
    device_llvm;
    llvm_ir;
    llvm_ir_downgraded;
    host_cpp;
    stages = r.Ftn_passes.Pipeline.stages;
  })

(* Synthesise the compiled device module into a device binary through the
   selected backend's flow. *)
let synthesise ?(options = Options.default) artifacts =
  match artifacts.device_hls with
  | Some d ->
    Ftn_backend.Backend.synthesise options.Options.backend
      ~frontend:options.Options.frontend
      ~binary_name:options.Options.xclbin_name d
  | None ->
    raise
      (Ftn_hlsim.Synth.Synthesis_error
         "program has no offloaded regions (no omp target)")
