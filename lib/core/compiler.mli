(** End-to-end compiler driver: Fortran source through every stage of the
    paper's Figure 2, collecting intermediate artifacts for inspection. *)

type artifacts = {
  source : string;
  fir_module : Ftn_ir.Op.t;  (** Flang level: FIR + omp dialects. *)
  core_module : Ftn_ir.Op.t;  (** Core dialects + omp (the level of [3]). *)
  combined : Ftn_ir.Op.t;  (** After data/target lowering, pre-split. *)
  host : Ftn_ir.Op.t;  (** Host module with device dialect. *)
  device_core : Ftn_ir.Op.t option;  (** Outlined kernels, core level. *)
  device_hls : Ftn_ir.Op.t option;  (** After lower-omp-loops-to-hls. *)
  device_llvm : Ftn_ir.Op.t option;  (** llvm dialect, AMD intrinsics mapped. *)
  llvm_ir : string option;  (** Emitted LLVM-IR text. *)
  llvm_ir_downgraded : string option;  (** LLVM-7-compatible text. *)
  host_cpp : string option;  (** C++ with OpenCL host program. *)
  stages : Ftn_ir.Pass.stage_record list;  (** Per-pass timing/op counts. *)
}

val compile :
  ?options:Options.t ->
  ?file:string ->
  ?engine:Ftn_diag.Diag_engine.t ->
  string ->
  artifacts
(** Raises [Ftn_diag.Diag.Diag_failure] with located diagnostics on bad
    source ([file] names the source in them; [engine] accumulates multiple
    semantic errors). The device-side artifacts are [None] when the
    program has no omp target. *)

val synthesise : ?options:Options.t -> artifacts -> Ftn_hlsim.Bitstream.t
(** Simulated v++ over the compiled device module; raises
    [Ftn_hlsim.Synth.Synthesis_error] when there is none. *)
