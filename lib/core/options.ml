(* Compilation and simulation options for the end-to-end flow. *)

type t = {
  pipeline : Ftn_passes.Pipeline.options;
  backend : Ftn_backend.Backend.t;
      (** Selected accelerator backend; device spec, codegen emitters and
          bitstream format all flow from the descriptor. *)
  frontend : Ftn_hlsim.Resources.frontend;
      (** Which frontend idiom the simulated backend sees; the Fortran
          flow is [Mlir_flow], hand-written baselines use [Clang_hls]. *)
  emit_llvm : bool;  (** Produce LLVM-IR text (and its LLVM-7 downgrade). *)
  emit_cpp : bool;  (** Produce the C++/OpenCL host program. *)
  xclbin_name : string;
  fault_plan : Ftn_fault.Fault.plan option;
      (** Deterministic fault-injection plan for the device runtime. *)
  retry : Ftn_fault.Fault.retry_policy;
      (** Recovery policy (retry budget, backoff, watchdog, fallback cost). *)
  devices : int;
      (** Simulated devices the runtime scheduler manages (>= 1). *)
  jobs : int;
      (** Concurrent copies of the program submitted through the job
          queue; 1 means a plain single run. *)
  deadline_s : float option;
      (** Queue-wide admission deadline: a job waiting longer than this
          is shed instead of run. *)
  tenant_quota : int option;  (** Max in-flight jobs per tenant. *)
  breaker : Ftn_runtime.Breaker.config option;
      (** Per-device circuit breaker configuration for the job queue. *)
  shed_watermark : int option;
      (** Aggregate queue depth above which overload shedding starts. *)
}

let default =
  {
    pipeline = Ftn_passes.Pipeline.default_options;
    backend = Ftn_backend.Backend_registry.default;
    frontend = Ftn_hlsim.Resources.Mlir_flow;
    emit_llvm = true;
    emit_cpp = true;
    xclbin_name = "kernel.xclbin";
    fault_plan = None;
    retry = Ftn_fault.Fault.default_retry;
    devices = 1;
    jobs = 1;
    deadline_s = None;
    tenant_quota = None;
    breaker = None;
    shed_watermark = None;
  }
