(** Compilation and simulation options for the end-to-end flow. *)

type t = {
  pipeline : Ftn_passes.Pipeline.options;
  backend : Ftn_backend.Backend.t;
      (** Selected accelerator backend; device spec, codegen emitters and
          bitstream format all flow from the descriptor. *)
  frontend : Ftn_hlsim.Resources.frontend;
      (** Frontend idiom the simulated backend sees; [Mlir_flow] for the
          Fortran flow, [Clang_hls] for hand-written baselines. *)
  emit_llvm : bool;
  emit_cpp : bool;
  xclbin_name : string;
  fault_plan : Ftn_fault.Fault.plan option;
      (** Deterministic fault-injection plan for the device runtime;
          [None] disables injection. *)
  retry : Ftn_fault.Fault.retry_policy;
      (** Recovery policy (retry budget, backoff, watchdog, fallback cost). *)
  devices : int;
      (** Simulated devices the runtime scheduler manages (>= 1). *)
  jobs : int;
      (** Concurrent copies of the program submitted through the job
          queue; 1 means a plain single run. *)
  deadline_s : float option;
      (** Queue-wide admission deadline: a job waiting longer than this
          is shed instead of run. *)
  tenant_quota : int option;  (** Max in-flight jobs per tenant. *)
  breaker : Ftn_runtime.Breaker.config option;
      (** Per-device circuit breaker configuration for the job queue. *)
  shed_watermark : int option;
      (** Aggregate queue depth above which overload shedding starts. *)
}

val default : t
