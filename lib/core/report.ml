(* Human-readable reports for compiled and executed programs. *)

open Ftn_hlsim
open Ftn_runtime

let pp_stages fmt stages =
  Fmt.pf fmt "@[<v>%a@]" (Fmt.list Ftn_ir.Pass.pp_stage) stages

let pp_bitstream fmt (bs : Bitstream.t) =
  Fmt.pf fmt "bitstream %s for %s (%s frontend)@."
    bs.Bitstream.xclbin_name bs.Bitstream.device_name
    (Resources.string_of_frontend bs.Bitstream.frontend);
  List.iter
    (fun (k : Bitstream.kernel_design) ->
      Fmt.pf fmt "  kernel %s: %a@." k.Bitstream.kd_name Resources.pp
        k.Bitstream.kd_resources)
    bs.Bitstream.kernels

let pp_exec fmt (r : Executor.result) =
  Fmt.pf fmt
    "device time %.3f ms (kernel %.3f ms, transfers %.3f ms, overheads %.3f \
     ms); %d launches, %d bytes moved"
    (r.Executor.device_time_s *. 1e3)
    (r.Executor.kernel_time_s *. 1e3)
    (r.Executor.transfer_time_s *. 1e3)
    (r.Executor.overhead_time_s *. 1e3)
    r.Executor.kernel_launches r.Executor.bytes_transferred;
  (* Fault-injection runs report their recovery story; fault-free runs
     keep the historic one-line format. *)
  if
    r.Executor.faults_injected > 0 || r.Executor.retries > 0
    || r.Executor.degraded
  then
    Fmt.pf fmt
      "@.faults: %d injected, %d retries, %d cpu fallback%s (%.3f ms on \
       host)%s"
      r.Executor.faults_injected r.Executor.retries r.Executor.cpu_fallbacks
      (if r.Executor.cpu_fallbacks = 1 then "" else "s")
      (r.Executor.fallback_time_s *. 1e3)
      (if r.Executor.degraded then " — run degraded" else "")

let pp_run fmt (run : Run.t) =
  pp_bitstream fmt run.Run.bitstream;
  Fmt.pf fmt "%a@." pp_exec run.Run.exec;
  if String.length run.Run.exec.Executor.output > 0 then
    Fmt.pf fmt "program output:%s@." run.Run.exec.Executor.output

let summary run = Fmt.str "%a" pp_run run
