(* Human-readable reports for compiled and executed programs. *)

open Ftn_hlsim
open Ftn_runtime

let pp_stages fmt stages =
  Fmt.pf fmt "@[<v>%a@]" (Fmt.list Ftn_ir.Pass.pp_stage) stages

let pp_bitstream fmt (bs : Bitstream.t) =
  Fmt.pf fmt "bitstream %s for %s (%s frontend)@."
    bs.Bitstream.xclbin_name bs.Bitstream.device_name
    (Resources.string_of_frontend bs.Bitstream.frontend);
  List.iter
    (fun (k : Bitstream.kernel_design) ->
      Fmt.pf fmt "  kernel %s: %a@." k.Bitstream.kd_name Resources.pp
        k.Bitstream.kd_resources)
    bs.Bitstream.kernels

let pp_exec fmt (r : Executor.result) =
  Fmt.pf fmt
    "device time %.3f ms (kernel %.3f ms, transfers %.3f ms, overheads %.3f \
     ms); %d launches, %d bytes moved"
    (r.Executor.device_time_s *. 1e3)
    (r.Executor.kernel_time_s *. 1e3)
    (r.Executor.transfer_time_s *. 1e3)
    (r.Executor.overhead_time_s *. 1e3)
    r.Executor.kernel_launches r.Executor.bytes_transferred;
  (* Fault-injection runs report their recovery story; fault-free runs
     keep the historic one-line format. *)
  if
    r.Executor.faults_injected > 0 || r.Executor.retries > 0
    || r.Executor.degraded
  then
    Fmt.pf fmt
      "@.faults: %d injected, %d retries, %d cpu fallback%s (%.3f ms on \
       host)%s"
      r.Executor.faults_injected r.Executor.retries r.Executor.cpu_fallbacks
      (if r.Executor.cpu_fallbacks = 1 then "" else "s")
      (r.Executor.fallback_time_s *. 1e3)
      (if r.Executor.degraded then " — run degraded" else "")

(* --- scheduler report (ftnc --jobs) --- *)

let pp_sched fmt (stats : Jobs.stats) =
  Fmt.pf fmt "== scheduler ==@.%a@." Jobs.pp_stats stats;
  Fmt.pf fmt "devices:@.";
  List.iter
    (fun ds -> Fmt.pf fmt "  %a@." Scheduler.pp_device_snapshot ds)
    (Scheduler.snapshot stats.Jobs.scheduler);
  if List.length stats.Jobs.tenants > 1 then begin
    Fmt.pf fmt "tenants:@.";
    List.iter
      (fun (t : Jobs.tenant_stats) ->
        Fmt.pf fmt
          "  %-8s %4d run, %3d shed, p50 %.3f us, p90 %.3f us, p99 %.3f us%s@."
          t.Jobs.t_name t.Jobs.t_run t.Jobs.t_shed
          (t.Jobs.t_p50_s *. 1e6)
          (t.Jobs.t_p90_s *. 1e6)
          (t.Jobs.t_p99_s *. 1e6)
          (if t.Jobs.t_slo_violations > 0 then
             Fmt.str ", %d slo violations" t.Jobs.t_slo_violations
           else ""))
      stats.Jobs.tenants
  end;
  if stats.Jobs.breakers <> [] then begin
    Fmt.pf fmt "breakers:@.";
    List.iter
      (fun b -> Fmt.pf fmt "  %a@." Ftn_runtime.Breaker.pp_snapshot b)
      stats.Jobs.breakers
  end;
  if stats.Jobs.sheds <> [] then begin
    Fmt.pf fmt "sheds:@.";
    List.iter
      (fun (s : Jobs.shed) ->
        Fmt.pf fmt "  %-12s tenant %s, %s, waited %.3f us@." s.Jobs.sh_job
          s.Jobs.sh_tenant s.Jobs.sh_reason
          (s.Jobs.sh_wait_s *. 1e6))
      stats.Jobs.sheds
  end

let sched_summary stats = Fmt.str "%a" pp_sched stats

(* --- profiling report (ftnc --profile) --- *)

let quantile_us name q =
  match Ftn_obs.Metrics.histogram_quantile name q with
  | Some v -> Fmt.str "%8.3f" (v *. 1e6)
  | None -> Fmt.str "%8s" "-"

let hist_count name =
  match Ftn_obs.Metrics.find name with
  | Some (Ftn_obs.Metrics.Histogram_v { count; _ }) -> count
  | _ -> 0

(* One character per bin of the device-active window, labelled by the
   track that dominates the bin: K kernel, T transfer, O overhead,
   F cpu-fallback, '.' idle. Built from the ambient collector's
   sim-clock spans, so it must run before the collector is cleared. *)
let utilization_timeline ?(bins = 60) () =
  let sim =
    List.filter
      (fun (sp : Ftn_obs.Span.span) -> sp.Ftn_obs.Span.clock = Ftn_obs.Span.Sim)
      (Ftn_obs.Span.spans (Ftn_obs.Span.current ()))
  in
  match sim with
  | [] -> None
  | _ ->
    let t_end =
      List.fold_left
        (fun acc (sp : Ftn_obs.Span.span) ->
          Float.max acc (sp.Ftn_obs.Span.start_s +. sp.Ftn_obs.Span.dur_s))
        0.0 sim
    in
    if t_end <= 0.0 then None
    else begin
      (* busy.(bin).(track): simulated seconds of each track inside the
         bin; the dominant track labels the bin. *)
      let tracks = [| "kernel"; "transfer"; "overhead"; "fallback" |] in
      let chars = [| 'K'; 'T'; 'O'; 'F' |] in
      let busy = Array.make_matrix bins (Array.length tracks) 0.0 in
      let bin_w = t_end /. float_of_int bins in
      List.iter
        (fun (sp : Ftn_obs.Span.span) ->
          match Ftn_obs.Span.attr sp "track" with
          | None -> ()
          | Some track -> (
            let ti = ref (-1) in
            Array.iteri
              (fun i t -> if String.equal t track then ti := i)
              tracks;
            match !ti with
            | -1 -> ()
            | ti ->
              let s = sp.Ftn_obs.Span.start_s in
              let e = s +. sp.Ftn_obs.Span.dur_s in
              let b0 = max 0 (int_of_float (s /. bin_w)) in
              let b1 = min (bins - 1) (int_of_float (e /. bin_w)) in
              for b = b0 to b1 do
                let lo = Float.max s (float_of_int b *. bin_w) in
                let hi = Float.min e (float_of_int (b + 1) *. bin_w) in
                if hi > lo then busy.(b).(ti) <- busy.(b).(ti) +. (hi -. lo)
              done))
        sim;
      let line =
        String.init bins (fun b ->
            let best = ref (-1) and best_t = ref 0.0 in
            Array.iteri
              (fun ti t ->
                if t > !best_t then begin
                  best := ti;
                  best_t := t
                end)
              busy.(b);
            if !best < 0 then '.' else chars.(!best))
      in
      Some (line, t_end)
    end

let pp_profile fmt (run : Run.t) =
  let exec = run.Run.exec in
  Fmt.pf fmt "== profile ==@.";
  (* hot ops: interpreter dispatch counts, device + host combined *)
  let total = Ftn_obs.Profile.total_ops () in
  (match Ftn_obs.Profile.top_ops 12 with
  | [] -> Fmt.pf fmt "@.hot ops: none recorded (profiling off?)@."
  | tops ->
    Fmt.pf fmt "@.hot ops (%d executed):@." total;
    List.iter
      (fun (name, n) ->
        Fmt.pf fmt "  %-28s %9d  %5.1f%%@." name n
          (100.0 *. float_of_int n /. float_of_int (max 1 total)))
      tops);
  (* hottest rewrite patterns, by attributed time *)
  (match Ftn_ir.Rewrite.pattern_profile () with
  | [] -> ()
  | profile ->
    Fmt.pf fmt "@.hottest rewrite patterns:@.";
    List.iteri
      (fun i (name, attempts, fired, time_s) ->
        if i < 10 then
          Fmt.pf fmt "  %-32s %7.3f ms  %6d fired / %6d attempts@." name
            (time_s *. 1e3) fired attempts)
      profile);
  (* per-pass wall time, op counts and allocation *)
  Fmt.pf fmt "@.passes:@.";
  List.iter
    (fun r -> Fmt.pf fmt "  %a@." Ftn_ir.Pass.pp_stage r)
    run.Run.artifacts.Compiler.stages;
  (* per-kernel launch-latency quantiles *)
  let kernels = run.Run.bitstream.Bitstream.kernels in
  if kernels <> [] then begin
    Fmt.pf fmt "@.kernel launch latency (us):@.";
    Fmt.pf fmt "  %-20s %8s %8s %8s %8s@." "kernel" "launches" "p50" "p90"
      "p99";
    List.iter
      (fun (k : Bitstream.kernel_design) ->
        let h = "device.kernel." ^ k.Bitstream.kd_name ^ ".launch_latency_s" in
        Fmt.pf fmt "  %-20s %8d %s %s %s@." k.Bitstream.kd_name (hist_count h)
          (quantile_us h 0.5) (quantile_us h 0.9) (quantile_us h 0.99))
      kernels
  end;
  (* compute-unit occupancy *)
  if exec.Executor.cus <> [] then begin
    Fmt.pf fmt "@.compute units:@.";
    List.iter
      (fun cu -> Fmt.pf fmt "  %a@." Cu_stats.pp_snapshot cu)
      exec.Executor.cus
  end;
  (* device utilization timeline *)
  (match utilization_timeline () with
  | None -> ()
  | Some (line, t_end) ->
    Fmt.pf fmt
      "@.device timeline (%.3f ms; K kernel, T transfer, O overhead, F \
       fallback, . idle):@.  |%s|@."
      (t_end *. 1e3) line);
  (* transfer-vs-compute roofline summary *)
  let kt = exec.Executor.kernel_time_s
  and tt = exec.Executor.transfer_time_s in
  let bytes = exec.Executor.bytes_transferred in
  Fmt.pf fmt "@.roofline: %d bytes moved in %.3f ms (%.2f GB/s), compute \
              %.3f ms — %s@."
    bytes (tt *. 1e3)
    (if tt > 0.0 then float_of_int bytes /. tt /. 1e9 else 0.0)
    (kt *. 1e3)
    (if tt > kt then
       Fmt.str "transfer-bound (%.1fx compute)" (tt /. Float.max kt 1e-12)
     else if kt > 0.0 then
       Fmt.str "compute-bound (%.1fx transfer)" (kt /. Float.max tt 1e-12)
     else "no device work")

let profile_summary run = Fmt.str "%a" pp_profile run

let pp_run fmt (run : Run.t) =
  pp_bitstream fmt run.Run.bitstream;
  Fmt.pf fmt "%a@." pp_exec run.Run.exec;
  if String.length run.Run.exec.Executor.output > 0 then
    Fmt.pf fmt "program output:%s@." run.Run.exec.Executor.output

let summary run = Fmt.str "%a" pp_run run
