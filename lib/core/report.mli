(** Human-readable reports for compiled and executed programs. *)

val pp_stages : Format.formatter -> Ftn_ir.Pass.stage_record list -> unit
val pp_bitstream : Format.formatter -> Ftn_hlsim.Bitstream.t -> unit
val pp_exec : Format.formatter -> Ftn_runtime.Executor.result -> unit
val pp_run : Format.formatter -> Run.t -> unit

val summary : Run.t -> string
(** Bitstream, timing breakdown and program output as one string. *)

val pp_sched : Format.formatter -> Ftn_runtime.Jobs.stats -> unit
(** The [--jobs] report: queue statistics (throughput, p50/p99 latency,
    drops, drains) plus one line per simulated device. *)

val sched_summary : Ftn_runtime.Jobs.stats -> string

val pp_profile : Format.formatter -> Run.t -> unit
(** The [--profile] report: top hot ops (interpreter dispatch counts),
    hottest rewrite patterns by attributed time, per-pass wall/alloc
    table, per-kernel launch-latency quantiles, per-CU occupancy, an
    ASCII device-utilization timeline (from the ambient collector's sim
    spans — render before clearing it) and a transfer-vs-compute
    roofline summary. *)

val profile_summary : Run.t -> string
