(* Compile + synthesise + execute a Fortran program on the simulated FPGA,
   returning numerical results alongside the simulated measurements. *)

open Ftn_hlsim
open Ftn_runtime

type t = {
  artifacts : Compiler.artifacts;
  bitstream : Bitstream.t;
  exec : Executor.result;
}

let run ?(options = Options.default) ?(echo = false) ?file ?engine source =
  let artifacts = Compiler.compile ~options ?file ?engine source in
  let bitstream = Compiler.synthesise ~options artifacts in
  let exec =
    Executor.run ~echo ?diag:engine
      ?faults:options.Options.fault_plan ~retry:options.Options.retry
      ~host:artifacts.Compiler.host ~bitstream ()
  in
  { artifacts; bitstream; exec }

(* CPU reference execution: sequential OpenMP semantics, no device. *)
let run_cpu ?(echo = false) ?file ?engine source =
  let core = Ftn_frontend.Frontend.to_core ?file ?engine source in
  Executor.run_cpu ~echo core

(* Read back a device buffer by its mapped identifier (memory space 1). *)
let device_floats run ~name =
  match Data_env.lookup run.exec.Executor.data ~name ~memory_space:1 with
  | Some buf -> Some (Ftn_interp.Rtval.float_buffer buf)
  | None -> None

let device_time run = run.exec.Executor.device_time_s
let kernel_time run = run.exec.Executor.kernel_time_s
let output run = run.exec.Executor.output

let fpga_power ?(backend = Ftn_backend.Backend_registry.default) run =
  match run.bitstream.Bitstream.kernels with
  | k :: _ ->
    Ftn_backend.Backend.power_w backend k.Bitstream.kd_resources
      ~kernel_time_s:run.exec.Executor.kernel_time_s
      ~device_time_s:run.exec.Executor.device_time_s
  | [] ->
    Ftn_backend.Backend.power_w backend
      {
        Resources.kernel = Resources.zero;
        total = Resources.zero;
        lut_pct = 0.0;
        bram_pct = 0.0;
        dsp_pct = 0.0;
        fused_macs = 0;
        lut_macs = 0;
      }
      ~kernel_time_s:0.0 ~device_time_s:0.0
