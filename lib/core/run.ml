(* Compile + synthesise + execute a Fortran program on the simulated FPGA,
   returning numerical results alongside the simulated measurements. *)

open Ftn_hlsim
open Ftn_runtime

type t = {
  artifacts : Compiler.artifacts;
  bitstream : Bitstream.t;
  exec : Executor.result;
}

let run ?(options = Options.default) ?(echo = false) ?file ?engine source =
  let artifacts = Compiler.compile ~options ?file ?engine source in
  let bitstream = Compiler.synthesise ~options artifacts in
  let sched =
    if options.Options.devices > 1 then
      Some (Scheduler.create ~devices:options.Options.devices ())
    else None
  in
  let exec =
    Executor.run ~echo ?diag:engine
      ?faults:options.Options.fault_plan ~retry:options.Options.retry
      ?sched ~host:artifacts.Compiler.host ~bitstream ()
  in
  { artifacts; bitstream; exec }

(* Submit [options.jobs] copies of the program through the job queue,
   spread round-robin over [tenants], on [options.devices] simulated
   devices. Compiles and synthesises once; every job interprets the same
   host module against the shared bitstream on its assigned device.
   [fault_device] pairs the options' fault plan with one device id,
   modelling a persistently bad board whose queue drains to peers; with
   no [fault_device] the plan (if any) applies to every job. *)
let run_jobs ?(options = Options.default) ?(echo = false) ?file ?engine
    ?fault_device ?(queue_depth = 8)
    ?(tenants = [ "t0"; "t1"; "t2"; "t3" ]) source =
  let artifacts = Compiler.compile ~options ?file ?engine source in
  let bitstream = Compiler.synthesise ~options artifacts in
  let tenant_arr = Array.of_list tenants in
  let n_tenants = max 1 (Array.length tenant_arr) in
  let specs =
    List.init (max 1 options.Options.jobs) (fun i ->
        Jobs.job
          ~tenant:tenant_arr.(i mod n_tenants)
          ~name:(Fmt.str "job%05d" i)
          (fun ?faults ~sched ~device ~start_s () ->
            let faults =
              match faults with
              | Some _ as f -> f
              | None ->
                if fault_device = None then options.Options.fault_plan
                else None
            in
            Executor.run ~echo ?diag:engine ?faults
              ~retry:options.Options.retry ~sched ~device ~start_s
              ~host:artifacts.Compiler.host ~bitstream ()))
  in
  let config =
    {
      Jobs.devices = max 1 options.Options.devices;
      queue_depth;
      fault_device =
        (match (fault_device, options.Options.fault_plan) with
        | Some d, Some p -> Some (d, p)
        | _ -> None);
      default_deadline_s = options.Options.deadline_s;
      tenant_quota = options.Options.tenant_quota;
      tenant_share = None;
      slo_s = None;
      breaker = options.Options.breaker;
      shed_watermark = options.Options.shed_watermark;
    }
  in
  (artifacts, bitstream, Jobs.run ~config ?diag:engine specs)

(* CPU reference execution: sequential OpenMP semantics, no device. *)
let run_cpu ?(echo = false) ?file ?engine source =
  let core = Ftn_frontend.Frontend.to_core ?file ?engine source in
  Executor.run_cpu ~echo core

(* Read back a device buffer by its mapped identifier (memory space 1). *)
let device_floats run ~name =
  match Data_env.lookup run.exec.Executor.data ~name ~memory_space:1 with
  | Some buf -> Some (Ftn_interp.Rtval.float_buffer buf)
  | None -> None

let device_time run = run.exec.Executor.device_time_s
let kernel_time run = run.exec.Executor.kernel_time_s
let output run = run.exec.Executor.output

let fpga_power ?(backend = Ftn_backend.Backend_registry.default) run =
  match run.bitstream.Bitstream.kernels with
  | k :: _ ->
    Ftn_backend.Backend.power_w backend k.Bitstream.kd_resources
      ~kernel_time_s:run.exec.Executor.kernel_time_s
      ~device_time_s:run.exec.Executor.device_time_s
  | [] ->
    Ftn_backend.Backend.power_w backend
      {
        Resources.kernel = Resources.zero;
        total = Resources.zero;
        lut_pct = 0.0;
        bram_pct = 0.0;
        dsp_pct = 0.0;
        fused_macs = 0;
        lut_macs = 0;
      }
      ~kernel_time_s:0.0 ~device_time_s:0.0
