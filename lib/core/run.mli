(** Compile + synthesise + execute a Fortran program on the simulated
    FPGA, returning numerical results alongside simulated measurements. *)

type t = {
  artifacts : Compiler.artifacts;
  bitstream : Ftn_hlsim.Bitstream.t;
  exec : Ftn_runtime.Executor.result;
}

val run :
  ?options:Options.t ->
  ?echo:bool ->
  ?file:string ->
  ?engine:Ftn_diag.Diag_engine.t ->
  string ->
  t

val run_jobs :
  ?options:Options.t ->
  ?echo:bool ->
  ?file:string ->
  ?engine:Ftn_diag.Diag_engine.t ->
  ?fault_device:int ->
  ?queue_depth:int ->
  ?tenants:string list ->
  string ->
  Compiler.artifacts * Ftn_hlsim.Bitstream.t * Ftn_runtime.Jobs.stats
(** Submit [options.jobs] copies of the program through the job queue on
    [options.devices] simulated devices, round-robin over [tenants]
    (default 4). Compiles and synthesises once. [fault_device] pairs the
    options' fault plan with one device id (a persistently bad board
    whose queue drains to peers); without it the plan applies to every
    job. *)

val run_cpu :
  ?echo:bool ->
  ?file:string ->
  ?engine:Ftn_diag.Diag_engine.t ->
  string ->
  string * int
(** CPU reference execution (sequential OpenMP, no device); returns
    (captured output, interpreter steps). *)

val device_floats : t -> name:string -> float array option
(** Read back a device buffer by mapped identifier (memory space 1). *)

val device_time : t -> float
val kernel_time : t -> float
val output : t -> string

val fpga_power : ?backend:Ftn_backend.Backend.t -> t -> float
(** Modelled card draw for this run's kernel/duty profile. *)
