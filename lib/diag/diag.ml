(* Structured diagnostics with clang-style caret rendering. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

exception Diag_failure of t list

let error ?(loc = Loc.unknown) ?(notes = []) message =
  { severity = Error; loc; message; notes }

let warning ?(loc = Loc.unknown) ?(notes = []) message =
  { severity = Warning; loc; message; notes }

let note ?(loc = Loc.unknown) message =
  { severity = Note; loc; message; notes = [] }

let add_note ?(loc = Loc.unknown) d message =
  { d with notes = d.notes @ [ (loc, message) ] }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let is_error d = d.severity = Error
let fail ?loc ?notes message = raise (Diag_failure [ error ?loc ?notes message ])

let pp_header fmt d =
  if Loc.is_known d.loc then
    Fmt.pf fmt "%a: %s: %s" Loc.pp_plain d.loc (severity_string d.severity)
      d.message
  else Fmt.pf fmt "%s: %s" (severity_string d.severity) d.message

type source_lookup = string -> string option

(* The driver compiles a single file, so serve [text] for any name the
   diagnostics mention (locations synthesised without a file name included). *)
let source_of_string ?file:_ text = fun _name -> Some text

let no_source (_ : string) = None

(* nth source line, 1-based, tolerating files without trailing newline *)
let source_line text n =
  let lines = String.split_on_char '\n' text in
  List.nth_opt lines (n - 1)

let caret_lines source loc =
  if not (Loc.is_known loc) then []
  else
    match source loc.Loc.file with
    | None -> []
    | Some text -> (
      match source_line text loc.Loc.line with
      | None -> []
      | Some line ->
        let text_line = "  " ^ line in
        if loc.Loc.col <= 0 then [ text_line ]
        else begin
          let width = max 1 (loc.Loc.end_col - loc.Loc.col) in
          let width = min width (max 1 (String.length line - loc.Loc.col + 1)) in
          let underline =
            "  " ^ String.make (loc.Loc.col - 1) ' ' ^ "^"
            ^ String.make (max 0 (width - 1)) '~'
          in
          [ text_line; underline ]
        end)

let render ?(source = no_source) d =
  let buf = Buffer.create 128 in
  let one severity loc message =
    Buffer.add_string buf
      (Fmt.str "%a"
         pp_header
         { severity; loc; message; notes = [] });
    Buffer.add_char buf '\n';
    List.iter
      (fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      (caret_lines source loc)
  in
  one d.severity d.loc d.message;
  List.iter (fun (loc, msg) -> one Note loc msg) d.notes;
  Buffer.contents buf

let render_all ?source ds = String.concat "" (List.map (render ?source) ds)
