(** Structured compiler diagnostics: severity + location + message, with
    attached notes, and clang-style caret rendering against the original
    source text. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

exception Diag_failure of t list
(** Carried by every layer of the compiler when located errors abort a
    stage. The list is in emission order. *)

val error : ?loc:Loc.t -> ?notes:(Loc.t * string) list -> string -> t
val warning : ?loc:Loc.t -> ?notes:(Loc.t * string) list -> string -> t
val note : ?loc:Loc.t -> string -> t

val add_note : ?loc:Loc.t -> t -> string -> t
(** Appends a note (used to attach pass / rewrite-pattern context). *)

val severity_string : severity -> string
val is_error : t -> bool

val fail : ?loc:Loc.t -> ?notes:(Loc.t * string) list -> string -> 'a
(** Raise [Diag_failure] with a single error diagnostic. *)

val pp_header : Format.formatter -> t -> unit
(** One-line form: [f.f90:3:7: error: message]. *)

type source_lookup = string -> string option
(** Maps a file name to its full source text, for caret rendering. *)

val source_of_string : ?file:string -> string -> source_lookup
(** Lookup serving [text] for [file] (and, as a fallback, for any file). *)

val no_source : source_lookup

val render : ?source:source_lookup -> t -> string
(** Multi-line rendering: header, offending source line, caret underline
    ([^~~~] spanning the location), then notes (each rendered the same
    way). Without source (or for unknown locations) only headers print. *)

val render_all : ?source:source_lookup -> t list -> string
