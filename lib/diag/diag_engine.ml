(* Accumulating diagnostic engine with a --max-errors cap. *)

type t = {
  mutable diags : Diag.t list; (* reversed *)
  mutable errors : int;
  mutable warnings : int;
  mutable max_errors : int;
  mutable on_emit : Diag.t -> unit;
}

let create ?(max_errors = 20) () =
  { diags = []; errors = 0; warnings = 0; max_errors; on_emit = ignore }

let default = create ()
let set_max_errors t n = t.max_errors <- max 1 n
let set_on_emit t f = t.on_emit <- f
let diagnostics t = List.rev t.diags

let warnings t =
  List.filter (fun d -> d.Diag.severity = Diag.Warning) (diagnostics t)

let error_count t = t.errors
let warning_count t = t.warnings
let has_errors t = t.errors > 0

(* Emission is serialised: passes running on worker domains may warn
   (e.g. rewrite nonconvergence) while the main domain compiles. *)
let emit_mu = Mutex.create ()

let emit t d =
  Mutex.protect emit_mu @@ fun () ->
  t.diags <- d :: t.diags;
  (match d.Diag.severity with
  | Diag.Error ->
    t.errors <- t.errors + 1;
    Ftn_obs.Metrics.incr "diag.errors"
  | Diag.Warning ->
    t.warnings <- t.warnings + 1;
    Ftn_obs.Metrics.incr "diag.warnings";
    Ftn_obs.Log.warnf "%a" Diag.pp_header d
  | Diag.Note -> ());
  t.on_emit d;
  if t.errors >= t.max_errors then begin
    t.diags <-
      Diag.note
        (Fmt.str "too many errors emitted, stopping now (--max-errors=%d)"
           t.max_errors)
      :: t.diags;
    raise (Diag.Diag_failure (diagnostics t))
  end

let error t ?loc ?notes msg = emit t (Diag.error ?loc ?notes msg)
let warning t ?loc ?notes msg = emit t (Diag.warning ?loc ?notes msg)
let note t ?loc msg = emit t (Diag.note ?loc msg)

let fail_if_errors t =
  if has_errors t then raise (Diag.Diag_failure (diagnostics t))

let reset t =
  t.diags <- [];
  t.errors <- 0;
  t.warnings <- 0
