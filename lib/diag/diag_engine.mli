(** Diagnostic engine: accumulates diagnostics instead of failing on the
    first error, up to a configurable cap (the driver's [--max-errors]).

    Every emitted error/warning bumps the [diag.errors] / [diag.warnings]
    metrics counters and warnings are mirrored into {!Ftn_obs.Log}; an
    optional [on_emit] hook lets the driver render diagnostics eagerly. *)

type t

val create : ?max_errors:int -> unit -> t
(** [max_errors] defaults to 20. *)

val default : t
(** Shared engine used by the compiler pipeline. *)

val set_max_errors : t -> int -> unit
val set_on_emit : t -> (Diag.t -> unit) -> unit

val emit : t -> Diag.t -> unit
(** Records the diagnostic. When the error count exceeds [max_errors] a
    final "too many errors emitted" note is appended and
    {!Diag.Diag_failure} is raised with everything accumulated so far. *)

val error : t -> ?loc:Loc.t -> ?notes:(Loc.t * string) list -> string -> unit
val warning : t -> ?loc:Loc.t -> ?notes:(Loc.t * string) list -> string -> unit
val note : t -> ?loc:Loc.t -> string -> unit

val diagnostics : t -> Diag.t list
(** In emission order. *)

val warnings : t -> Diag.t list
val error_count : t -> int
val warning_count : t -> int
val has_errors : t -> bool

val fail_if_errors : t -> unit
(** Raises {!Diag.Diag_failure} with everything accumulated (errors and
    warnings alike) if at least one error was emitted. *)

val reset : t -> unit
(** Drops accumulated diagnostics and counts; keeps [max_errors] and the
    [on_emit] hook. *)
