(* Source locations (file/line/col spans), 1-based, line 0 = unknown. *)

type t = {
  file : string;
  line : int;
  col : int;
  end_col : int;
}

let unknown = { file = ""; line = 0; col = 0; end_col = 0 }

let make ?end_col ~file ~line ~col () =
  let end_col = match end_col with Some e when e > col -> e | _ -> col in
  { file; line; col; end_col }

let line_only ?(file = "") line = { file; line; col = 0; end_col = 0 }
let is_known l = l.line > 0

let equal a b =
  String.equal a.file b.file
  && a.line = b.line && a.col = b.col && a.end_col = b.end_col

(* MLIR attribute form. [max col 1]: whole-line locations (col 0) still
   print a valid column so the form round-trips through Ir_parser. *)
let pp fmt l =
  if not (is_known l) then Fmt.string fmt "unknown"
  else if l.end_col > l.col then
    Fmt.pf fmt "\"%s\":%d:%d to :%d:%d" l.file l.line (max l.col 1) l.line
      l.end_col
  else Fmt.pf fmt "\"%s\":%d:%d" l.file l.line (max l.col 1)

let pp_plain fmt l =
  if not (is_known l) then Fmt.string fmt "<unknown>"
  else if l.col > 0 then Fmt.pf fmt "%s:%d:%d" l.file l.line l.col
  else Fmt.pf fmt "%s:%d" l.file l.line

let to_string l = Fmt.str "%a" pp_plain l
