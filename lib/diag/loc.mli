(** Source locations: a file / line / column span, mirroring MLIR's
    FileLineColLoc. Lines and columns are 1-based; [end_col] is the column
    one past the last character of the span (so a single-character token at
    column 5 has [col = 5] and [end_col = 6]). A location with [line = 0]
    is unknown. *)

type t = {
  file : string;
  line : int;
  col : int;
  end_col : int;
}

val unknown : t

val make : ?end_col:int -> file:string -> line:int -> col:int -> unit -> t
(** [end_col] defaults to [col], i.e. a point location. *)

val line_only : ?file:string -> int -> t
(** Location covering a whole line (column unknown, printed as col 1). *)

val is_known : t -> bool
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** MLIR attribute form: ["f.f90":12:3], with [ to :12:7] appended when the
    span covers more than one column. Unknown prints as [unknown]. *)

val pp_plain : Format.formatter -> t -> unit
(** Diagnostic-header form without quotes: [f.f90:12:3]. *)

val to_string : t -> string
