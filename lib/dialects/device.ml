(* device dialect — the paper's contribution. Abstracts host/device
   interaction: named device allocations in explicit memory spaces, a
   reference-counted data environment, and kernel create/launch/wait
   handles that map closely onto the OpenCL host API. *)

open Ftn_ir

let name_attrs ~name ~memory_space =
  [ ("name", Attr.String name); ("memory_space", Attr.i32 memory_space) ]

(* device.alloc: allocates device memory for identifier [name] in
   [memory_space]; dynamic sizes are operands. Result is a memref in that
   memory space. *)
let alloc b ~name ~memory_space ?(dynamic_sizes = []) mr_ty =
  let mr_ty =
    match mr_ty with
    | Types.Memref mi -> Types.Memref { mi with memory_space }
    | _ -> invalid_arg "Device.alloc: result must be a memref type"
  in
  Builder.op1 b "device.alloc" ~operands:dynamic_sizes
    ~attrs:(name_attrs ~name ~memory_space)
    mr_ty

(* device.lookup: retrieves the memref registered under [name]. *)
let lookup b ~name ~memory_space mr_ty =
  Builder.op1 b "device.lookup" ~attrs:(name_attrs ~name ~memory_space) mr_ty

(* device.data_check_exists: i1, true when [name] is live on the device. *)
let data_check_exists b ~name ~memory_space =
  Builder.op1 b "device.data_check_exists"
    ~attrs:(name_attrs ~name ~memory_space)
    Types.I1

let data_acquire ~name ~memory_space =
  Op.make "device.data_acquire" ~attrs:(name_attrs ~name ~memory_space)

let data_release ~name ~memory_space =
  Op.make "device.data_release" ~attrs:(name_attrs ~name ~memory_space)

(* device.kernel_create: defines a kernel from a region (before outlining)
   or a named device function (after outlining; the region is left empty).
   Operands are the kernel arguments. *)
let kernel_create b ~args ?device_function ?(body = []) () =
  let attrs =
    match device_function with
    | Some f -> [ ("device_function", Attr.Symbol f) ]
    | None -> []
  in
  Builder.op1 b "device.kernel_create" ~operands:args ~attrs
    ~regions:[ Op.region body ]
    Types.Kernel_handle

let kernel_launch handle = Op.make "device.kernel_launch" ~operands:[ handle ]
let kernel_wait handle = Op.make "device.kernel_wait" ~operands:[ handle ]

(* Explicit reference-counter ops, produced when lowering the data
   environment for host code generation: each identifier gets an integer
   counter; acquire increments, release decrements, check tests > 0. *)
let counter_get b ~name ~memory_space =
  Builder.op1 b "device.counter_get"
    ~attrs:(name_attrs ~name ~memory_space)
    Types.I32

let counter_set ~name v =
  Op.make "device.counter_set" ~operands:[ v ]
    ~attrs:[ ("name", Attr.String name) ]

let op_name_attr op = Op.string_attr op "name"
let op_memory_space op = Option.value ~default:0 (Op.int_attr op "memory_space")

let is_alloc op = String.equal (Op.name op) "device.alloc"
let is_lookup op = String.equal (Op.name op) "device.lookup"
let is_kernel_create op = String.equal (Op.name op) "device.kernel_create"
let is_kernel_launch op = String.equal (Op.name op) "device.kernel_launch"
let is_kernel_wait op = String.equal (Op.name op) "device.kernel_wait"
let is_data_acquire op = String.equal (Op.name op) "device.data_acquire"
let is_data_release op = String.equal (Op.name op) "device.data_release"

let kernel_function op = Op.symbol_attr op "device_function"

let register () =
  let open Dialect in
  let named_verify op =
    let* () = expect_attr op "name" in
    expect_attr op "memory_space"
  in
  Dialect.register "device.alloc" ~summary:"named device allocation"
    ~verify:(fun op ->
      let* () = named_verify op in
      let* () = expect_results op 1 in
      match Value.ty (Op.result op 0) with
      | Types.Memref _ -> Ok ()
      | _ -> Error "device.alloc result must be a memref");
  Dialect.register "device.lookup" ~summary:"retrieve device allocation"
    ~verify:(fun op ->
      let* () = named_verify op in
      expect_results op 1);
  Dialect.register "device.data_check_exists" ~verify:(fun op ->
      let* () = named_verify op in
      expect_results op 1);
  Dialect.register "device.data_acquire" ~verify:named_verify;
  Dialect.register "device.data_release" ~verify:named_verify;
  Dialect.register "device.kernel_create" ~summary:"define a kernel"
    ~verify:(fun op ->
      let* () = expect_results op 1 in
      let* () = expect_regions op 1 in
      check
        (Types.equal (Value.ty (Op.result op 0)) Types.Kernel_handle)
        "device.kernel_create must return a kernel handle");
  Dialect.register "device.kernel_launch" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_operand_type op 0 Types.Kernel_handle);
  Dialect.register "device.kernel_wait" ~verify:(fun op ->
      let* () = expect_operands op 1 in
      expect_operand_type op 0 Types.Kernel_handle);
  Dialect.register "device.counter_get" ~verify:(fun op ->
      let* () = named_verify op in
      expect_results op 1);
  Dialect.register "device.counter_set" ~verify:(fun op ->
      let* () = expect_attr op "name" in
      expect_operands op 1)
