(** device dialect — the paper's contribution: named device allocations in
    explicit memory spaces, a reference-counted data environment, and
    kernel create/launch/wait handles mapping closely onto the OpenCL host
    API (Section 3 of the paper). *)

open Ftn_ir

val alloc :
  Builder.t ->
  name:string ->
  memory_space:int ->
  ?dynamic_sizes:Value.t list ->
  Types.t ->
  Op.t
(** Allocates device memory for identifier [name]; the result memref is
    forced into [memory_space]. *)

val lookup : Builder.t -> name:string -> memory_space:int -> Types.t -> Op.t
val data_check_exists : Builder.t -> name:string -> memory_space:int -> Op.t
val data_acquire : name:string -> memory_space:int -> Op.t
val data_release : name:string -> memory_space:int -> Op.t

val kernel_create :
  Builder.t ->
  args:Value.t list ->
  ?device_function:string ->
  ?body:Op.t list ->
  unit ->
  Op.t
(** Defines a kernel; before outlining the region holds the kernel body,
    afterwards it is empty and [device_function] names the outlined
    function (the paper's Listing 2). *)

val kernel_launch : Value.t -> Op.t
val kernel_wait : Value.t -> Op.t
val counter_get : Builder.t -> name:string -> memory_space:int -> Op.t
val counter_set : name:string -> Value.t -> Op.t

val op_name_attr : Op.t -> string option
val op_memory_space : Op.t -> int
val is_alloc : Op.t -> bool
val is_lookup : Op.t -> bool
val is_kernel_create : Op.t -> bool
val is_kernel_launch : Op.t -> bool
val is_kernel_wait : Op.t -> bool
val is_data_acquire : Op.t -> bool
val is_data_release : Op.t -> bool
val kernel_function : Op.t -> string option
val register : unit -> unit
