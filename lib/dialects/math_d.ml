(* math dialect: elementary floating-point functions. *)

open Ftn_ir

let unary b name v = Builder.op1 b name ~operands:[ v ] (Value.ty v)

let sqrt b = unary b "math.sqrt"
let exp b = unary b "math.exp"
let log b = unary b "math.log"
let sin b = unary b "math.sin"
let cos b = unary b "math.cos"
let tanh b = unary b "math.tanh"
let absf b = unary b "math.absf"

let powf b base expo =
  Builder.op1 b "math.powf" ~operands:[ base; expo ] (Value.ty base)

let unary_names =
  [ "math.sqrt"; "math.exp"; "math.log"; "math.sin"; "math.cos";
    "math.tanh"; "math.absf" ]

let unary_fn name =
  match name with
  | "math.sqrt" -> Some Float.sqrt
  | "math.exp" -> Some Float.exp
  | "math.log" -> Some Float.log
  | "math.sin" -> Some Float.sin
  | "math.cos" -> Some Float.cos
  | "math.tanh" -> Some Float.tanh
  | "math.absf" -> Some Float.abs
  | _ -> None

let eval_unary name x =
  match unary_fn name with Some f -> Some (f x) | None -> None

let register () =
  let open Dialect in
  List.iter
    (fun name ->
      Dialect.register name ~summary:"elementary function" ~verify:(fun op ->
          let* () = expect_operands op 1 in
          expect_results op 1))
    unary_names;
  Dialect.register "math.powf" ~verify:(fun op ->
      let* () = expect_operands op 2 in
      let* () = expect_results op 1 in
      same_type_operands op)
