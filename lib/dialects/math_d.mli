(** math dialect: elementary floating-point functions. *)

open Ftn_ir

val unary : Builder.t -> string -> Value.t -> Op.t
val sqrt : Builder.t -> Value.t -> Op.t
val exp : Builder.t -> Value.t -> Op.t
val log : Builder.t -> Value.t -> Op.t
val sin : Builder.t -> Value.t -> Op.t
val cos : Builder.t -> Value.t -> Op.t
val tanh : Builder.t -> Value.t -> Op.t
val absf : Builder.t -> Value.t -> Op.t
val powf : Builder.t -> Value.t -> Value.t -> Op.t
val unary_names : string list

val unary_fn : string -> (float -> float) option
(** Resolve a [math.*] op name to its evaluation function, so callers can
    hoist the name dispatch out of hot loops. *)

val eval_unary : string -> float -> float option
(** Evaluation table shared with the interpreter. *)

val register : unit -> unit
