(* Fault model for the simulated device runtime.

   Real OpenCL-on-FPGA deployments hit allocation failures, DMA errors
   and kernel hangs; the blanket `Runtime_error of string` the executor
   used to raise could neither classify nor recover from any of them.
   This module defines the structured taxonomy shared by the injector,
   the executor's retry/fallback machinery and the CLI: fault kinds per
   device-interaction site, transient/persistent lifetimes, deterministic
   seeded injection plans, and the retry policy that governs recovery. *)

type site =
  | Alloc
  | Transfer
  | Launch

type persistence =
  | Transient
  | Persistent

type kind =
  | Alloc_failure
  | Transfer_error
  | Kernel_timeout
  | Launch_failure

let site_of_kind = function
  | Alloc_failure -> Alloc
  | Transfer_error -> Transfer
  | Kernel_timeout | Launch_failure -> Launch

let kind_code = function
  | Alloc_failure -> "alloc_failure"
  | Transfer_error -> "transfer_error"
  | Kernel_timeout -> "kernel_timeout"
  | Launch_failure -> "launch_failure"

let site_code = function
  | Alloc -> "alloc"
  | Transfer -> "transfer"
  | Launch -> "launch"

let persistence_code = function
  | Transient -> "transient"
  | Persistent -> "persistent"

type fault = {
  kind : kind;
  persistence : persistence;
  occurrence : int;
      (** 1-based index of the faulted operation among those matching the
          rule that fired. *)
  kernel : string option;  (** Kernel name for launch-site faults. *)
  attempt : int;  (** Attempt number that observed this fault (1-based). *)
}

let describe_fault f =
  Fmt.str "%s %s%s (occurrence %d, attempt %d)"
    (persistence_code f.persistence)
    (kind_code f.kind)
    (match f.kernel with Some k -> " of kernel " ^ k | None -> "")
    f.occurrence f.attempt

(* --- error taxonomy --- *)

type error =
  | Retries_exhausted of {
      fault : fault;
      attempts : int;
    }
  | Transfer_mismatch of {
      src_elt : string;
      dst_elt : string;
      src_bytes : int;
      dst_bytes : int;
    }
  | Missing_kernel of {
      kernel : string;
      xclbin : string;
    }
  | Invalid_host of {
      op : string;
      reason : string;
    }

exception Error of error * Ftn_diag.Loc.t

let message = function
  | Retries_exhausted { fault; attempts } ->
    Fmt.str "device operation failed permanently after %d attempt%s: %s"
      attempts
      (if attempts = 1 then "" else "s")
      (describe_fault fault)
  | Transfer_mismatch { src_elt; dst_elt; src_bytes; dst_bytes } ->
    Fmt.str
      "transfer between incompatible buffers: source is %s (%d bytes), \
       destination is %s (%d bytes)"
      src_elt src_bytes dst_elt dst_bytes
  | Missing_kernel { kernel; xclbin } ->
    Fmt.str "kernel %s not found in bitstream %s" kernel xclbin
  | Invalid_host { op; reason } -> Fmt.str "%s: %s" op reason

let error_code = function
  | Retries_exhausted _ -> "retries_exhausted"
  | Transfer_mismatch _ -> "transfer_mismatch"
  | Missing_kernel _ -> "missing_kernel"
  | Invalid_host _ -> "invalid_host"

let fail ?(loc = Ftn_diag.Loc.unknown) err = raise (Error (err, loc))

(* Flight-recorder context for an escaping or degrading fault: the last
   events from the default recorder, ready to append to an error or
   warning message. "" when nothing was recorded. *)
let flight_note ?(limit = 16) () =
  match Ftn_obs.Flight.excerpt ~limit () with
  | "" -> ""
  | ex ->
    let n = min limit (Ftn_obs.Flight.length ()) in
    Fmt.str "\nflight recorder (last %d event%s):\n%s" n
      (if n = 1 then "" else "s")
      ex

let () =
  Printexc.register_printer (function
    | Error (e, loc) ->
      Some
        (if Ftn_diag.Loc.is_known loc then
           Fmt.str "device runtime error at %s: %s" (Ftn_diag.Loc.to_string loc)
             (message e)
         else "device runtime error: " ^ message e)
    | _ -> None)

(* --- retry policy --- *)

type retry_policy = {
  max_attempts : int;  (** Total attempts per operation, including the first. *)
  backoff_base_s : float;
      (** Simulated backoff charged before the first retry. *)
  backoff_factor : float;  (** Exponential growth per further retry. *)
  timeout_s : float;
      (** Simulated time a hung kernel consumes before the watchdog
          declares a {!Kernel_timeout}. *)
  cpu_step_s : float;
      (** Simulated host seconds per interpreter step, costing the CPU
          fallback path of a permanently failing kernel. *)
  drain : bool;
      (** When a kernel faults persistently and a healthy peer device
          exists, migrate the work there (charging the re-staging
          transfer) instead of degrading to the host CPU. *)
}

let default_retry =
  {
    max_attempts = 4;
    backoff_base_s = 1e-5;
    backoff_factor = 2.0;
    timeout_s = 1e-3;
    cpu_step_s = 2e-9;
    drain = true;
  }

let backoff_s p ~attempt =
  p.backoff_base_s *. (p.backoff_factor ** float_of_int (attempt - 1))

(* --- injection plans --- *)

type trigger =
  | Nth of int  (** Fire on the Nth operation matching the rule (1-based). *)
  | Probability of float  (** Fire on each match with seeded probability. *)

type rule = {
  r_kind : kind;
  r_kernel : string option;
      (** Restrict launch-site rules to one kernel name. *)
  r_trigger : trigger;
  r_persistence : persistence;
}

type plan = {
  rules : rule list;
  seed : int;  (** Seeds the probability draws; plans are deterministic. *)
}

let plan ?(seed = 0) rules = { rules; seed }
let empty_plan = { rules = []; seed = 0 }

let rule ?kernel ?(persistence = Transient) kind trigger =
  { r_kind = kind; r_kernel = kernel; r_trigger = trigger; r_persistence = persistence }

let trigger_to_string = function
  | Nth n -> Fmt.str "nth=%d" n
  | Probability p -> Fmt.str "p=%g" p

let rule_to_string r =
  let kind_s =
    match r.r_kind with
    | Alloc_failure -> "alloc"
    | Transfer_error -> "transfer"
    | Launch_failure -> "launch"
    | Kernel_timeout -> "timeout"
  in
  Fmt.str "%s%s:%s:%s" kind_s
    (match r.r_kernel with Some k -> "@" ^ k | None -> "")
    (trigger_to_string r.r_trigger)
    (persistence_code r.r_persistence)

let plan_to_string p = String.concat "," (List.map rule_to_string p.rules)

(* Plan syntax (the ftnc --fault-plan argument):

     plan  := rule (',' rule)*
     rule  := kind ('@' kernel)? (':' part)*
     kind  := 'alloc' | 'transfer' | 'launch' | 'timeout'
     part  := 'nth=' INT | 'p=' FLOAT | 'transient' | 'persistent'

   The trigger defaults to nth=1 and the persistence to transient, so
   "transfer" alone means "the first DMA fails once". *)
let parse_rule s =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Result.error "empty fault rule"
  | head :: parts ->
    let kind_s, kernel =
      match String.index_opt head '@' with
      | Some i ->
        ( String.sub head 0 i,
          Some (String.sub head (i + 1) (String.length head - i - 1)) )
      | None -> (head, None)
    in
    let* kind =
      match kind_s with
      | "alloc" -> Result.ok Alloc_failure
      | "transfer" -> Result.ok Transfer_error
      | "launch" -> Result.ok Launch_failure
      | "timeout" -> Result.ok Kernel_timeout
      | other ->
        Result.error
          (Fmt.str
             "unknown fault kind %S (expected alloc, transfer, launch or \
              timeout)"
             other)
    in
    let* () =
      if kernel <> None && site_of_kind kind <> Launch then
        Result.error
          (Fmt.str "@%s: only launch and timeout faults take a kernel name"
             (Option.get kernel))
      else Result.ok ()
    in
    let parse_part (trigger, persistence) part =
      if part = "transient" then Result.ok (trigger, Some Transient)
      else if part = "persistent" then Result.ok (trigger, Some Persistent)
      else if String.length part > 4 && String.sub part 0 4 = "nth=" then
        match int_of_string_opt (String.sub part 4 (String.length part - 4)) with
        | Some n when n >= 1 -> Result.ok (Some (Nth n), persistence)
        | _ -> Result.error (Fmt.str "bad occurrence in %S" part)
      else if String.length part > 2 && String.sub part 0 2 = "p=" then
        match float_of_string_opt (String.sub part 2 (String.length part - 2)) with
        | Some p when p >= 0.0 && p <= 1.0 -> Result.ok (Some (Probability p), persistence)
        | _ -> Result.error (Fmt.str "bad probability in %S (want [0,1])" part)
      else Result.error (Fmt.str "unknown fault rule part %S" part)
    in
    let* trigger, persistence =
      List.fold_left
        (fun acc part -> Result.bind acc (fun tp -> parse_part tp part))
        (Result.ok (None, None))
        (List.filter (fun p -> p <> "") parts)
    in
    Result.ok
      {
        r_kind = kind;
        r_kernel = kernel;
        r_trigger = Option.value ~default:(Nth 1) trigger;
        r_persistence = Option.value ~default:Transient persistence;
      }

(* The injector arms at most one rule per logical operation and the
   first match wins, so a second rule for the same kind and kernel can
   never fire — reject the plan instead of silently shadowing it. *)
let check_duplicates rules =
  let rec go seen = function
    | [] -> Result.ok ()
    | r :: rest ->
      let key = (r.r_kind, r.r_kernel) in
      if List.mem key seen then
        Result.error
          (Fmt.str
             "duplicate fault rule for %s site%s: a %S rule is already \
              armed and the later one would never fire"
             (site_code (site_of_kind r.r_kind))
             (match r.r_kernel with
             | Some k -> Fmt.str " (kernel %S)" k
             | None -> "")
             (rule_to_string r))
      else go (key :: seen) rest
  in
  go [] rules

let parse_plan ?(seed = 0) s =
  let rec go acc = function
    | [] ->
      let rules = List.rev acc in
      Result.map (fun () -> { rules; seed }) (check_duplicates rules)
    | r :: rest -> (
      match parse_rule r with
      | Result.Ok rule -> go (rule :: acc) rest
      | Result.Error _ as e -> e)
  in
  match List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' s) with
  | [] -> Result.error "empty fault plan"
  | rules -> go [] rules
