(** Fault model for the simulated device runtime: a structured error
    taxonomy (replacing the executor's old [Runtime_error of string]),
    deterministic seeded injection plans, and the retry policy governing
    recovery.

    Every fault classifies a host/device interaction site — buffer
    allocation, DMA transfer, or kernel launch — and is either transient
    (clears on retry) or persistent (survives every retry; kernels then
    degrade to host CPU execution, other sites fail with
    {!Retries_exhausted}). *)

(** {2 Taxonomy} *)

type site =
  | Alloc
  | Transfer
  | Launch

type persistence =
  | Transient  (** Clears on the first retry. *)
  | Persistent  (** Survives every retry. *)

type kind =
  | Alloc_failure  (** Device buffer allocation failed (OOM-like). *)
  | Transfer_error  (** DMA transfer aborted. *)
  | Kernel_timeout  (** Kernel hung; detected after [timeout_s]. *)
  | Launch_failure  (** Launch rejected before execution. *)

val site_of_kind : kind -> site
val kind_code : kind -> string
val site_code : site -> string
val persistence_code : persistence -> string

type fault = {
  kind : kind;
  persistence : persistence;
  occurrence : int;
      (** 1-based index of the faulted operation among those matching the
          rule that fired. *)
  kernel : string option;  (** Kernel name for launch-site faults. *)
  attempt : int;  (** Attempt number that observed this fault (1-based). *)
}

val describe_fault : fault -> string

(** {2 Structured errors} *)

type error =
  | Retries_exhausted of {
      fault : fault;
      attempts : int;
    }  (** A persistent alloc/transfer fault outlived the retry budget. *)
  | Transfer_mismatch of {
      src_elt : string;
      dst_elt : string;
      src_bytes : int;
      dst_bytes : int;
    }  (** Transfer endpoints disagree on element type or byte size. *)
  | Missing_kernel of {
      kernel : string;
      xclbin : string;
    }
  | Invalid_host of {
      op : string;
      reason : string;
    }  (** Malformed host-module IR reaching the runtime. *)

exception Error of error * Ftn_diag.Loc.t
(** Raised by the executor. The location names the launching op when the
    error escapes an interpreted host module (the interpreter attaches it;
    see handler error propagation), [Loc.unknown] from the raw host API. *)

val message : error -> string
val error_code : error -> string

val fail : ?loc:Ftn_diag.Loc.t -> error -> 'a
(** Raise {!Error}; [loc] defaults to unknown so the interpreter can
    attach the executing op's location. *)

(** {2 Retry policy} *)

type retry_policy = {
  max_attempts : int;  (** Total attempts per operation, including the first. *)
  backoff_base_s : float;
      (** Simulated backoff charged before the first retry. *)
  backoff_factor : float;  (** Exponential growth per further retry. *)
  timeout_s : float;
      (** Simulated time a hung kernel consumes before the watchdog
          declares a {!Kernel_timeout}. *)
  cpu_step_s : float;
      (** Simulated host seconds per interpreter step, costing the CPU
          fallback of a permanently failing kernel. *)
  drain : bool;
      (** When a kernel faults persistently and a healthy peer device
          exists, migrate the work there (charging the re-staging
          transfer to simulated time) instead of degrading to the host
          CPU. Single-device runs are unaffected. *)
}

val flight_note : ?limit:int -> unit -> string
(** The last [limit] (default 16) events from the default
    {!Ftn_obs.Flight} recorder, rendered as an indented block headed
    ["flight recorder (last N events):"] with a leading newline — ready
    to append to an escaping error or degradation warning. [""] when the
    recorder is empty. *)

val default_retry : retry_policy
(** 4 attempts, 10 us base backoff doubling per retry, 1 ms kernel
    watchdog, 2 ns per interpreter step on the fallback path, peer
    drain enabled. *)

val backoff_s : retry_policy -> attempt:int -> float
(** Simulated backoff charged after failed attempt [attempt] (1-based):
    [backoff_base_s * backoff_factor^(attempt-1)]. *)

(** {2 Injection plans} *)

type trigger =
  | Nth of int  (** Fire on the Nth operation matching the rule (1-based). *)
  | Probability of float  (** Fire on each match with seeded probability. *)

type rule = {
  r_kind : kind;
  r_kernel : string option;
      (** Restrict launch-site rules to one kernel name. *)
  r_trigger : trigger;
  r_persistence : persistence;
}

type plan = {
  rules : rule list;
  seed : int;  (** Seeds the probability draws; plans are deterministic. *)
}

val plan : ?seed:int -> rule list -> plan
val empty_plan : plan
val rule : ?kernel:string -> ?persistence:persistence -> kind -> trigger -> rule

val parse_plan : ?seed:int -> string -> (plan, string) result
(** Parse the [--fault-plan] syntax:
    [rule (',' rule)*] where [rule] is
    [kind('@'kernel)?(':'nth=N|':'p=P)?(':'transient|':'persistent)?] and
    [kind] is [alloc], [transfer], [launch] or [timeout]. The trigger
    defaults to [nth=1], the persistence to [transient]; e.g.
    ["transfer:nth=2,timeout@saxpy_hw:persistent"]. Two rules with the
    same kind and kernel are rejected: the injector arms the first
    match per operation, so the later rule could never fire. *)

val plan_to_string : plan -> string
val rule_to_string : rule -> string
val trigger_to_string : trigger -> string
