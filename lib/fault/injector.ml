(* Deterministic fault injector: evaluates a Fault.plan against the
   stream of device operations the executor performs.

   The executor arms the injector once per *logical* operation (so a
   retry of the same transfer is the same occurrence, not a new one),
   then asks per attempt whether that attempt fails. Probability
   triggers draw from a splitmix64 generator seeded by the plan, and
   every matching rule's counter and draw advances on every arm whether
   or not an earlier rule already fired — so a given plan, seed and
   operation stream always produces the same injections, which is what
   makes differential fault testing possible. *)

(* splitmix64: tiny, fast, and stable across platforms — we must not
   depend on Stdlib.Random's global state or algorithm. *)
type rng = { mutable s : int64 }

let next_u64 rng =
  rng.s <- Int64.add rng.s 0x9E3779B97F4A7C15L;
  let z = rng.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0,1): the top 53 bits scaled by 2^-53. *)
let float01 rng =
  Int64.to_float (Int64.shift_right_logical (next_u64 rng) 11)
  /. 9007199254740992.0

type rule_state = {
  rule : Fault.rule;
  mutable matches : int;  (** Operations so far matching this rule's filter. *)
}

type t = {
  rules : rule_state list;
  rng : rng;
  mutable injected : int;
}

type token = {
  inj : t;
  mutable armed : (Fault.rule * int) option;
      (** The rule that fired for this operation and its occurrence index. *)
  kernel : string option;
  mutable cured : bool;
}

let create (plan : Fault.plan) =
  {
    rules = List.map (fun rule -> { rule; matches = 0 }) plan.Fault.rules;
    rng = { s = Int64.of_int plan.Fault.seed };
    injected = 0;
  }

let injected t = t.injected

let matches (r : Fault.rule) ~site ~kernel =
  Fault.site_of_kind r.Fault.r_kind = site
  &&
  match r.Fault.r_kernel with
  | None -> true
  | Some k -> kernel = Some k

let arm t ~site ?kernel () =
  let armed =
    List.fold_left
      (fun armed rs ->
        if not (matches rs.rule ~site ~kernel) then armed
        else begin
          rs.matches <- rs.matches + 1;
          let fires =
            match rs.rule.Fault.r_trigger with
            | Fault.Nth n -> rs.matches = n
            | Fault.Probability p ->
              (* Always draw, even if an earlier rule fired: rule
                 evaluation must not depend on what else is in the plan. *)
              float01 t.rng < p
          in
          match armed with
          | Some _ -> armed
          | None -> if fires then Some (rs.rule, rs.matches) else None
        end)
      None t.rules
  in
  { inj = t; armed; kernel; cured = false }

let fire token ~attempt =
  match token.armed with
  | None -> None
  | Some _ when token.cured -> None
  | Some (rule, occurrence) ->
    if rule.Fault.r_persistence = Fault.Transient && attempt > 1 then None
    else begin
      token.inj.injected <- token.inj.injected + 1;
      Some
        {
          Fault.kind = rule.Fault.r_kind;
          persistence = rule.Fault.r_persistence;
          occurrence;
          kernel = token.kernel;
          attempt;
        }
    end

let cure token = token.cured <- true
