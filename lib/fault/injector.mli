(** Deterministic fault injector: evaluates a {!Fault.plan} against the
    stream of device operations the executor performs.

    Arm once per {e logical} operation (a retry of the same operation is
    the same occurrence), then ask per attempt whether that attempt
    fails. A given plan, seed and operation stream always produces the
    same injections — probability triggers draw from a private
    splitmix64 generator, and every matching rule advances on every arm
    regardless of what else fired. *)

type t

val create : Fault.plan -> t

val injected : t -> int
(** Faults fired so far (counting each failing attempt). *)

type token
(** One armed operation: remembers which rule (if any) fires for it. *)

val arm : t -> site:Fault.site -> ?kernel:string -> unit -> token
(** Advance every rule matching [site] (and [kernel], for rules that name
    one) and capture the first rule that fires. Call exactly once per
    logical operation, before the first attempt. *)

val fire : token -> attempt:int -> Fault.fault option
(** Does attempt [attempt] (1-based) of the armed operation fail?
    Transient faults fail only the first attempt; persistent faults fail
    every attempt until {!cure}. *)

val cure : token -> unit
(** Recovery succeeded out of band (e.g. buffers were evicted after an
    allocation failure): stop failing this operation's attempts. *)
