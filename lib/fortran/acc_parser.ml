(* Parser for '!$acc ...' directive text: the OpenACC subset mirroring the
   OpenMP support (the integration the paper names as further work).
   Clauses are represented with the shared map-kind encoding:
   copyin = to, copyout = from, copy = tofrom, create = alloc. *)

exception Acc_error of string * Ftn_diag.Loc.t

let current_loc = ref Ftn_diag.Loc.unknown
let error msg = raise (Acc_error (msg, !current_loc))

type directive =
  | Parallel_loop of Ast.omp_clause list
  | Data of Ast.omp_clause list
  | Enter_data of Ast.omp_clause list
  | Exit_data of Ast.omp_clause list
  | Update of Ast.omp_clause list
  | End_directive of string

(* Reuse the omp directive scanner: same token shapes. *)
let scan = Omp_parser.scan

let parse_name_list toks =
  let rec go acc = function
    | Omp_parser.Word w :: Omp_parser.Comma :: rest -> go (w :: acc) rest
    | Omp_parser.Word w :: Omp_parser.Rp :: rest -> (List.rev (w :: acc), rest)
    | _ -> error "expected variable list"
  in
  go [] toks

let parse_clauses toks =
  let open Omp_parser in
  let rec go acc = function
    | [] -> List.rev acc
    | Word (("copyin" | "copyout" | "copy" | "create" | "present_or_copy") as kw)
      :: Lp :: rest ->
      let kind =
        match kw with
        | "copyin" -> Ast.Map_to
        | "copyout" -> Ast.Map_from
        | "create" -> Ast.Map_alloc
        | _ -> Ast.Map_tofrom
      in
      let names, rest = parse_name_list rest in
      go (Ast.Cl_map (kind, names) :: acc) rest
    | Word "vector_length" :: Lp :: Num k :: Rp :: rest ->
      go (Ast.Cl_simdlen k :: acc) rest
    | Word "collapse" :: Lp :: Num k :: Rp :: rest ->
      go (Ast.Cl_collapse k :: acc) rest
    | Word "reduction" :: Lp :: op :: Colon :: rest ->
      let red =
        match op with
        | Plus -> Ast.Red_add
        | Star -> Ast.Red_mul
        | Word "max" -> Ast.Red_max
        | Word "min" -> Ast.Red_min
        | _ -> error "unknown reduction operator"
      in
      let names, rest = parse_name_list rest in
      go (Ast.Cl_reduction (red, names) :: acc) rest
    | Word "private" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_private names :: acc) rest
    | Word "firstprivate" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_firstprivate names :: acc) rest
    | Word "host" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_from names :: acc) rest
    | Word "device" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_to names :: acc) rest
    (* gang/worker/vector/seq without arguments are accepted and ignored:
       the backend derives the schedule from the loop structure *)
    | Word ("gang" | "worker" | "vector" | "seq" | "independent") :: rest ->
      go acc rest
    | Word w :: _ -> error ("unknown OpenACC clause " ^ w)
    | _ -> error "malformed clause list"
  in
  go [] toks

let parse ?(loc = Ftn_diag.Loc.unknown) text : directive =
  current_loc := loc;
  match scan text with
  | Omp_parser.Word "end" :: rest ->
    let words =
      List.filter_map
        (function Omp_parser.Word w -> Some w | _ -> None)
        rest
    in
    End_directive (String.concat " " words)
  | Omp_parser.Word "parallel" :: Omp_parser.Word "loop" :: rest ->
    Parallel_loop (parse_clauses rest)
  | Omp_parser.Word "kernels" :: Omp_parser.Word "loop" :: rest ->
    Parallel_loop (parse_clauses rest)
  | Omp_parser.Word "data" :: rest -> Data (parse_clauses rest)
  | Omp_parser.Word "enter" :: Omp_parser.Word "data" :: rest ->
    Enter_data (parse_clauses rest)
  | Omp_parser.Word "exit" :: Omp_parser.Word "data" :: rest ->
    Exit_data (parse_clauses rest)
  | Omp_parser.Word "update" :: rest -> Update (parse_clauses rest)
  | Omp_parser.Word w :: _ ->
    error ("unsupported OpenACC directive " ^ w)
  | _ -> error "empty OpenACC directive"
