(** Parser for '!$acc' directive text: the OpenACC subset mirroring the
    OpenMP support. Clauses use the shared map-kind encoding
    (copyin = to, copyout = from, copy = tofrom, create = alloc). *)

exception Acc_error of string * Ftn_diag.Loc.t

type directive =
  | Parallel_loop of Ast.omp_clause list
  | Data of Ast.omp_clause list
  | Enter_data of Ast.omp_clause list
  | Exit_data of Ast.omp_clause list
  | Update of Ast.omp_clause list
  | End_directive of string

val parse : ?loc:Ftn_diag.Loc.t -> string -> directive
(** [loc] (the directive's source location) is attached to any error. *)
