(* Abstract syntax for the Fortran subset the pipeline accepts: free-form
   programs/subroutines/functions with integer/real/logical scalars and
   arrays, do-loops, if-chains, assignments and calls — plus the OpenMP
   directives the paper uses (target, target data, enter/exit data, update,
   parallel do, simd, reduction, collapse). *)

type base_type =
  | Ty_integer
  | Ty_real
  | Ty_double
  | Ty_logical

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not

type expr =
  | Int_lit of int
  | Real_lit of float * base_type
  | Logical_lit of bool
  | Var of string
  (* Array element reference or (before semantic analysis) a function
     call — Fortran syntax cannot distinguish them. *)
  | Index of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  (* Intrinsic function application, resolved during semantic analysis. *)
  | Intrinsic of string * expr list
  (* User-defined function call; the result type is filled in by semantic
     analysis from the function's program unit. *)
  | User_call of string * base_type * expr list

type intent =
  | Intent_in
  | Intent_out
  | Intent_inout
  | Intent_none

type decl = {
  d_name : string;
  d_type : base_type;
  d_dims : expr list;  (** Empty for scalars; one extent expr per dim. *)
  d_intent : intent;
  d_parameter : expr option;  (** [parameter :: n = e] named constants. *)
  d_loc : Ftn_diag.Loc.t;
}

(* --- OpenMP directives --- *)

type map_kind =
  | Map_to
  | Map_from
  | Map_tofrom
  | Map_alloc

type reduction_op =
  | Red_add
  | Red_mul
  | Red_max
  | Red_min

type omp_clause =
  | Cl_map of map_kind * string list
  | Cl_simdlen of int
  | Cl_safelen of int
  | Cl_reduction of reduction_op * string list
  | Cl_collapse of int
  | Cl_from of string list  (** target update from(...) *)
  | Cl_to of string list  (** target update to(...) *)
  | Cl_private of string list
  | Cl_firstprivate of string list

type stmt = {
  s_loc : Ftn_diag.Loc.t;
  s_kind : stmt_kind;
}

and stmt_kind =
  | Assign of expr * expr  (** lhs (Var or Index), rhs *)
  | Do of do_loop
  | Do_while of expr * stmt list
  | If of (expr * stmt list) list * stmt list
      (** if/elseif arms and the else body. *)
  | Call of string * expr list
  | Print of expr list
  | Exit_stmt
  | Cycle_stmt
  | Omp_target of omp_clause list * stmt list
  | Omp_target_data of omp_clause list * stmt list
  | Omp_target_enter_data of omp_clause list
  | Omp_target_exit_data of omp_clause list
  | Omp_target_update of omp_clause list
  | Omp_parallel_do of parallel_do
  (* OpenACC (paper Section 5 further work): clauses reuse the map-kind
     representation (copyin=to, copyout=from, copy=tofrom, create=alloc). *)
  | Acc_parallel_loop of acc_parallel_loop
  | Acc_data of omp_clause list * stmt list
  | Acc_enter_data of omp_clause list
  | Acc_exit_data of omp_clause list
  | Acc_update of omp_clause list

and acc_parallel_loop = {
  apl_clauses : omp_clause list;
  apl_loop : do_loop;
  apl_loc : Ftn_diag.Loc.t;
}

and do_loop = {
  do_var : string;
  do_lb : expr;
  do_ub : expr;
  do_step : expr option;
  do_body : stmt list;
}

and parallel_do = {
  pd_simd : bool;
  pd_clauses : omp_clause list;
  pd_loop : do_loop;
  pd_loc : Ftn_diag.Loc.t;
}

type program_unit = {
  u_kind : unit_kind;
  u_name : string;
  u_params : string list;  (** Dummy argument names, in order. *)
  u_decls : decl list;
  u_body : stmt list;
  u_loc : Ftn_diag.Loc.t;
}

and unit_kind =
  | Main_program
  | Subroutine
  | Function of base_type  (** Result type. *)

type program = program_unit list

(* --- helpers --- *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Real_lit _ | Logical_lit _ | Var _ -> acc
  | Index (_, es) | Intrinsic (_, es) | User_call (_, _, es) ->
    List.fold_left (fold_expr f) acc es
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) -> fold_expr f acc a

(* Every variable name referenced in an expression, including array bases. *)
let expr_vars e =
  fold_expr
    (fun acc e ->
      match e with
      | Var v | Index (v, _) -> v :: acc
      | Int_lit _ | Real_lit _ | Logical_lit _ | Binop _ | Unop _
      | Intrinsic _ | User_call _ ->
        acc)
    [] e
  |> List.sort_uniq String.compare

let rec fold_stmts f acc stmts = List.fold_left (fold_stmt f) acc stmts

and fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt.s_kind with
  | Assign _ | Call _ | Print _ | Exit_stmt | Cycle_stmt
  | Omp_target_enter_data _ | Omp_target_exit_data _ | Omp_target_update _
  | Acc_enter_data _ | Acc_exit_data _ | Acc_update _ ->
    acc
  | Do { do_body; _ } -> fold_stmts f acc do_body
  | Do_while (_, body) -> fold_stmts f acc body
  | If (arms, else_body) ->
    let acc =
      List.fold_left (fun acc (_, body) -> fold_stmts f acc body) acc arms
    in
    fold_stmts f acc else_body
  | Omp_target (_, body) | Omp_target_data (_, body) | Acc_data (_, body) ->
    fold_stmts f acc body
  | Omp_parallel_do { pd_loop; _ } -> fold_stmts f acc pd_loop.do_body
  | Acc_parallel_loop { apl_loop; _ } -> fold_stmts f acc apl_loop.do_body

(* Variables read or written anywhere in a statement list; used to compute
   implicit device mappings. *)
let stmts_vars stmts =
  let exprs_of_stmt stmt =
    match stmt.s_kind with
    | Assign (lhs, rhs) -> [ lhs; rhs ]
    | Do { do_var; do_lb; do_ub; do_step; _ } ->
      Var do_var :: do_lb :: do_ub :: Option.to_list do_step
    | Do_while (cond, _) -> [ cond ]
    | If (arms, _) -> List.map fst arms
    | Call (_, args) | Print args -> args
    | Exit_stmt | Cycle_stmt -> []
    | Omp_target _ | Omp_target_data _ | Omp_target_enter_data _
    | Omp_target_exit_data _ | Omp_target_update _ | Acc_data _
    | Acc_enter_data _ | Acc_exit_data _ | Acc_update _ ->
      []
    | Omp_parallel_do { pd_loop = { do_var; do_lb; do_ub; do_step; _ }; _ }
    | Acc_parallel_loop { apl_loop = { do_var; do_lb; do_ub; do_step; _ }; _ }
      ->
      Var do_var :: do_lb :: do_ub :: Option.to_list do_step
  in
  fold_stmts
    (fun acc stmt ->
      List.fold_left
        (fun acc e -> List.rev_append (expr_vars e) acc)
        acc (exprs_of_stmt stmt))
    [] stmts
  |> List.sort_uniq String.compare

(* private / firstprivate names from the clauses of a construct and of
   the loop constructs nested in [stmts]. *)
let clause_privacy stmts extra_clauses =
  let of_clauses clauses =
    List.fold_left
      (fun (priv, fpriv) c ->
        match c with
        | Cl_private names -> (names @ priv, fpriv)
        | Cl_firstprivate names -> (priv, names @ fpriv)
        | _ -> (priv, fpriv))
      ([], []) clauses
  in
  let from_stmts =
    fold_stmts
      (fun acc s ->
        match s.s_kind with
        | Omp_parallel_do { pd_clauses; _ } -> pd_clauses @ acc
        | Acc_parallel_loop { apl_clauses; _ } -> apl_clauses @ acc
        | _ -> acc)
      [] stmts
  in
  let priv, fpriv = of_clauses (extra_clauses @ from_stmts) in
  (List.sort_uniq String.compare priv, List.sort_uniq String.compare fpriv)

(* Scalar variables assigned anywhere in a statement list (array element
   writes target the array, which is already mapped tofrom). *)
let assigned_scalars stmts =
  fold_stmts
    (fun acc s ->
      match s.s_kind with
      | Assign (Var name, _) -> name :: acc
      | _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

(* Variables named in reduction clauses of loops inside [stmts]. *)
let reduction_vars stmts =
  fold_stmts
    (fun acc s ->
      let clause_reds clauses =
        List.concat_map
          (function Cl_reduction (_, names) -> names | _ -> [])
          clauses
      in
      match s.s_kind with
      | Omp_parallel_do { pd_clauses; _ } -> clause_reds pd_clauses @ acc
      | Acc_parallel_loop { apl_clauses; _ } -> clause_reds apl_clauses @ acc
      | _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

let string_of_base_type = function
  | Ty_integer -> "integer"
  | Ty_real -> "real"
  | Ty_double -> "double precision"
  | Ty_logical -> "logical"

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> ".and."
  | Or -> ".or."

let string_of_map_kind = function
  | Map_to -> "to"
  | Map_from -> "from"
  | Map_tofrom -> "tofrom"
  | Map_alloc -> "alloc"

let string_of_reduction_op = function
  | Red_add -> "+"
  | Red_mul -> "*"
  | Red_max -> "max"
  | Red_min -> "min"
