(* FIR -> core dialect lowering, mirroring the flow of [Brown, SC24-W]
   ("Fully integrating the Flang Fortran compiler with standard MLIR"):
   fir.alloca/load/store become memref ops, fir.do_loop/if become scf ops
   (converting Fortran's inclusive upper bound), fir.declare folds away and
   fir.convert expands to the matching arith casts. omp operations pass
   through untouched, as in the paper. *)

open Ftn_ir
open Ftn_dialects

let lookup subst v =
  match Hashtbl.find_opt subst (Value.id v) with
  | Some v' -> Some v'
  | None -> None

let resolve subst v = match lookup subst v with Some v' -> v' | None -> v

(* Emit the arith ops converting [v] to [ty]; returns (ops, result). *)
let build_convert b v ty =
  let src = Value.ty v in
  if Types.equal src ty then ([], v)
  else
    let one name =
      let op = Builder.op1 b name ~operands:[ v ] ty in
      ([ op ], Op.result1 op)
    in
    match (src, ty) with
    | Types.Index, (Types.I32 | Types.I64) | (Types.I32 | Types.I64), Types.Index
      ->
      one "arith.index_cast"
    | Types.I1, (Types.I32 | Types.I64) -> one "arith.extsi"
    | Types.I32, Types.I64 -> one "arith.extsi"
    | Types.I64, Types.I32 -> one "arith.trunci"
    | (Types.I32 | Types.I64), (Types.F32 | Types.F64) -> one "arith.sitofp"
    | Types.Index, (Types.F32 | Types.F64) ->
      let cast = Builder.op1 b "arith.index_cast" ~operands:[ v ] Types.I64 in
      let conv =
        Builder.op1 b "arith.sitofp" ~operands:[ Op.result1 cast ] ty
      in
      ([ cast; conv ], Op.result1 conv)
    | (Types.F32 | Types.F64), (Types.I32 | Types.I64) -> one "arith.fptosi"
    | (Types.F32 | Types.F64), Types.Index ->
      let conv = Builder.op1 b "arith.fptosi" ~operands:[ v ] Types.I64 in
      let cast =
        Builder.op1 b "arith.index_cast" ~operands:[ Op.result1 conv ] ty
      in
      ([ conv; cast ], Op.result1 cast)
    | Types.F32, Types.F64 -> one "arith.extf"
    | Types.F64, Types.F32 -> one "arith.truncf"
    | _ ->
      invalid_arg
        (Fmt.str "fir.convert: unsupported conversion %s -> %s"
           (Types.to_string src) (Types.to_string ty))

let rec transform_ops b subst ops = List.concat_map (transform_op b subst) ops

and transform_regions b subst op =
  {
    op with
    Op.regions =
      List.map
        (fun blocks ->
          List.map
            (fun blk -> { blk with Op.body = transform_ops b subst blk.Op.body })
            blocks)
        op.Op.regions;
  }

and transform_op b subst op =
  let op =
    { op with Op.operands = List.map (resolve subst) op.Op.operands }
  in
  match Op.name op with
  | "fir.declare" ->
    (* identity at this level: forward the operand *)
    Hashtbl.replace subst (Value.id (Op.result1 op)) (List.hd (Op.operands op));
    []
  | "fir.alloca" ->
    [ Op.set_loc { op with Op.name = "memref.alloca"; attrs = [] } (Op.loc op) ]
  | "fir.load" -> [ { op with Op.name = "memref.load" } ]
  | "fir.store" -> [ { op with Op.name = "memref.store" } ]
  | "fir.result" -> [ { op with Op.name = "scf.yield" } ]
  | "fir.call" -> [ transform_regions b subst { op with Op.name = "func.call" } ]
  | "fir.convert" ->
    let v = List.hd (Op.operands op) in
    let ty = Value.ty (Op.result1 op) in
    let ops, result = build_convert b v ty in
    Hashtbl.replace subst (Value.id (Op.result1 op)) result;
    List.map (fun o -> Op.set_loc o (Op.loc op)) ops
  | "fir.do_loop" -> (
    let op = transform_regions b subst op in
    match Op.operands op with
    | [ lb; ub; step ] ->
      let loc = Op.loc op in
      let one = Op.set_loc (Arith.const_index b 1) loc in
      let ub_excl =
        Op.set_loc
          (Builder.op1 b "arith.addi"
             ~operands:[ ub; Op.result1 one ]
             Types.Index)
          loc
      in
      [
        one;
        ub_excl;
        Op.set_loc
          {
            op with
            Op.name = "scf.for";
            operands = [ lb; Op.result1 ub_excl; step ];
            attrs = [];
          }
          loc;
      ]
    | _ -> invalid_arg "fir.do_loop must have 3 operands")
  | "fir.if" -> [ transform_regions b subst { op with Op.name = "scf.if" } ]
  | _ -> [ transform_regions b subst op ]

let run m =
  let b = Builder.for_op m in
  let subst = Hashtbl.create 64 in
  match transform_op b subst m with
  | [ m' ] -> m'
  | _ -> invalid_arg "Fir_to_core.run: module was not preserved"

let pass = Pass.make "fir-to-core" run
