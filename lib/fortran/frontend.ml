(* Frontend driver: Fortran source text -> FIR+omp module -> core-dialect
   module. Collects the stage results so tools can inspect each level, as
   mlir-opt would between passes. *)

let () = Ftn_dialects.Registry.register_all ()

(* Normalise the per-stage exceptions into structured, located
   diagnostics so every consumer (ftnc, tests, library users) sees one
   error shape. *)
let wrap_errors f =
  let fail loc msg =
    raise (Ftn_diag.Diag.Diag_failure [ Ftn_diag.Diag.error ~loc msg ])
  in
  try f () with
  | Src_lexer.Lex_error (msg, loc) -> fail loc ("lexical error: " ^ msg)
  | Src_parser.Parse_error (msg, loc) -> fail loc ("syntax error: " ^ msg)
  | Omp_parser.Omp_error (msg, loc) ->
    fail loc ("OpenMP directive error: " ^ msg)
  | Acc_parser.Acc_error (msg, loc) ->
    fail loc ("OpenACC directive error: " ^ msg)
  | Sema.Sema_error (msg, loc) -> fail loc ("semantic error: " ^ msg)
  | Lower_fir.Lower_error (msg, loc) -> fail loc ("lowering error: " ^ msg)

let parse ?file source = wrap_errors (fun () -> Src_parser.parse ?file source)

let check ?file ?engine source =
  wrap_errors (fun () -> Sema.check ?engine (Src_parser.parse ?file source))

(* Fortran source -> FIR + omp dialect module (Flang's output level). *)
let to_fir ?file ?engine source =
  wrap_errors (fun () -> Lower_fir.lower (check ?file ?engine source))

(* Fortran source -> core dialects + omp (the level the paper's device
   passes consume, after the lowering of [3]). *)
let to_core ?file ?engine source = Fir_to_core.run (to_fir ?file ?engine source)

let to_core_verified ?file ?engine source =
  let m = to_core ?file ?engine source in
  Ftn_ir.Verifier.verify_exn m;
  m
