(** Frontend driver: Fortran source text to IR, mirroring Flang's stages.
    Every per-stage exception (lexer, parser, directive parsers, sema,
    lowering) is normalised into {!Ftn_diag.Diag.Diag_failure} carrying
    located, severity-tagged diagnostics.

    [file] is recorded in every source location (and thus in the IR's
    [loc(...)] attributes). [engine] enables multi-error accumulation in
    semantic analysis: errors are collected up to the engine's limit and
    raised together. *)

val parse : ?file:string -> string -> Ast.program
val check :
  ?file:string -> ?engine:Ftn_diag.Diag_engine.t -> string -> Sema.checked

val to_fir :
  ?file:string -> ?engine:Ftn_diag.Diag_engine.t -> string -> Ftn_ir.Op.t
(** Source -> FIR + omp dialect module (Flang's output level). *)

val to_core :
  ?file:string -> ?engine:Ftn_diag.Diag_engine.t -> string -> Ftn_ir.Op.t
(** Source -> core dialects + omp (the level the device passes consume,
    after the lowering of [3]). *)

val to_core_verified :
  ?file:string -> ?engine:Ftn_diag.Diag_engine.t -> string -> Ftn_ir.Op.t
(** [to_core] followed by IR verification. *)
