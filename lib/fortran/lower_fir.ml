(* Lowering from the checked Fortran AST into FIR + omp dialect IR, the
   stage Flang performs in the paper's Figure 1.

   Storage model: every Fortran variable lives in a memref —
     - scalars in rank-0 memrefs,
     - arrays in memrefs whose dimensions are the *reverse* of the Fortran
       shape so that column-major adjacency maps onto the fastest-varying
       (last) memref dimension; subscripts are reversed and shifted to
       0-based accordingly.
   Dummy arguments are passed as memrefs (Fortran by-reference semantics).

   OpenMP: target/target data/enter/exit/update become omp.map_info plus
   the corresponding omp ops, with implicit maps synthesised for variables
   used inside a target region but not explicitly mapped (arrays: tofrom,
   scalars: to) exactly as described in Section 3 of the paper. *)

open Ftn_ir
open Ftn_dialects

exception Lower_error of string * Ftn_diag.Loc.t

let error loc msg = raise (Lower_error (msg, loc))

module Env = Sema.Env

type ctx = {
  b : Builder.t;
  symbols : Sema.symbol Env.t;
  mutable bindings : Value.t Env.t;  (** var name -> storage memref *)
  mutable out : Op.t list;  (** current block, reversed *)
  mutable cur_loc : Ftn_diag.Loc.t;
      (** Source location of the statement being lowered; stamped onto
          every emitted op. *)
}

let emit ctx op = ctx.out <- Op.set_loc op ctx.cur_loc :: ctx.out

let emit_get ctx op =
  emit ctx op;
  Op.result1 op

(* Run [f] with a fresh op buffer; returns the ops it emitted. Bindings
   changes made inside are rolled back. *)
let in_block ctx f =
  let saved_out = ctx.out in
  let saved_bind = ctx.bindings in
  ctx.out <- [];
  f ();
  let ops = List.rev ctx.out in
  ctx.out <- saved_out;
  ctx.bindings <- saved_bind;
  ops

let scalar_type = function
  | Ast.Ty_integer -> Types.I32
  | Ast.Ty_real -> Types.F32
  | Ast.Ty_double -> Types.F64
  | Ast.Ty_logical -> Types.I1

(* Memref type of a symbol's storage (dims reversed, see header). *)
let storage_type sym =
  let elt = scalar_type sym.Sema.sym_type in
  let dims =
    List.rev_map
      (function
        | Sema.Dim_const n -> Types.Static n
        | Sema.Dim_expr _ -> Types.Dynamic)
      sym.Sema.sym_dims
  in
  Types.memref dims elt

let storage ctx loc name =
  match Env.find_opt name ctx.bindings with
  | Some v -> v
  | None -> error loc ("no storage for variable " ^ name)

let symbol ctx loc name =
  match Env.find_opt name ctx.symbols with
  | Some s -> s
  | None -> error loc ("unknown symbol " ^ name)

(* --- conversions --- *)

let convert ctx v ty =
  if Types.equal (Value.ty v) ty then v
  else emit_get ctx (Fir.convert ctx.b v ty)

let to_index ctx v = convert ctx v Types.Index

(* --- expressions --- *)

let rec lower_expr ctx loc e =
  match e with
  | Ast.Int_lit n -> emit_get ctx (Arith.const_i32 ctx.b n)
  | Ast.Real_lit (x, Ast.Ty_double) -> emit_get ctx (Arith.const_f64 ctx.b x)
  | Ast.Real_lit (x, _) -> emit_get ctx (Arith.const_f32 ctx.b x)
  | Ast.Logical_lit v -> emit_get ctx (Arith.const_bool ctx.b v)
  | Ast.Var name -> (
    let sym = symbol ctx loc name in
    match sym.Sema.sym_constant with
    | Some c -> lower_expr ctx loc c
    | None ->
      let st = storage ctx loc name in
      emit_get ctx (Fir.load ctx.b st []))
  | Ast.Index (name, subscripts) ->
    let st = storage ctx loc name in
    let indices = lower_subscripts ctx loc name subscripts in
    emit_get ctx (Fir.load ctx.b st indices)
  | Ast.Binop (op, a, bx) -> lower_binop ctx loc op a bx
  | Ast.Unop (Ast.Neg, a) ->
    let v = lower_expr ctx loc a in
    if Types.is_float (Value.ty v) then emit_get ctx (Arith.negf ctx.b v)
    else
      let zero = emit_get ctx (Arith.const_int ctx.b 0 (Value.ty v)) in
      emit_get ctx (Arith.subi ctx.b zero v)
  | Ast.Unop (Ast.Not, a) ->
    let v = lower_expr ctx loc a in
    let one = emit_get ctx (Arith.const_int ctx.b 1 Types.I1) in
    emit_get ctx (Arith.xori ctx.b v one)
  | Ast.Intrinsic (name, args) -> lower_intrinsic ctx loc name args
  | Ast.User_call (name, ret_ty, args) ->
    let operands = List.map (lower_call_arg ctx loc) args in
    emit_get ctx
      (Fir.call ctx.b ~callee:name ~operands
         ~result_tys:[ scalar_type ret_ty ])

(* Fortran passes arguments by reference: named variables pass their
   storage, other expressions pass a temporary. *)
and lower_call_arg ctx loc a =
  match a with
  | Ast.Var vn when (symbol ctx loc vn).Sema.sym_constant = None ->
    storage ctx loc vn
  | _ ->
    let v = lower_expr ctx loc a in
    let tmp_ty = Types.memref [] (Value.ty v) in
    let tmp = emit_get ctx (Fir.alloca ctx.b ~bindc_name:"tmp" tmp_ty) in
    emit ctx (Fir.store ~value:v ~ref_:tmp []);
    tmp

(* 0-based, order-reversed subscript list for memref access. *)
and lower_subscripts ctx loc name subscripts =
  ignore name;
  let lowered =
    List.map
      (fun e ->
        let v = lower_expr ctx loc e in
        let v = to_index ctx v in
        let one = emit_get ctx (Arith.const_index ctx.b 1) in
        emit_get ctx (Arith.subi ctx.b v one))
      subscripts
  in
  List.rev lowered

and binary_result_type a b =
  let ta = Value.ty a and tb = Value.ty b in
  match (ta, tb) with
  | Types.F64, _ | _, Types.F64 -> Types.F64
  | Types.F32, _ | _, Types.F32 -> Types.F32
  | _ -> ta

and lower_binop ctx loc op a_e b_e =
  let a = lower_expr ctx loc a_e in
  let b = lower_expr ctx loc b_e in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    let ty = binary_result_type a b in
    let a = convert ctx a ty and b = convert ctx b ty in
    let build =
      if Types.is_float ty then
        match op with
        | Ast.Add -> Arith.addf ctx.b ~fastmath:true
        | Ast.Sub -> Arith.subf ctx.b ~fastmath:true
        | Ast.Mul -> Arith.mulf ctx.b ~fastmath:true
        | Ast.Div -> Arith.divf ctx.b ~fastmath:true
        | _ -> assert false
      else
        match op with
        | Ast.Add -> Arith.addi ctx.b
        | Ast.Sub -> Arith.subi ctx.b
        | Ast.Mul -> Arith.muli ctx.b
        | Ast.Div -> Arith.divsi ctx.b
        | _ -> assert false
    in
    emit_get ctx (build a b)
  | Ast.Pow -> lower_pow ctx loc a b b_e
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let ty = binary_result_type a b in
    let a = convert ctx a ty and b = convert ctx b ty in
    if Types.is_float ty then
      let pred =
        match op with
        | Ast.Eq -> Arith.Oeq
        | Ast.Ne -> Arith.One
        | Ast.Lt -> Arith.Olt
        | Ast.Le -> Arith.Ole
        | Ast.Gt -> Arith.Ogt
        | Ast.Ge -> Arith.Oge
        | _ -> assert false
      in
      emit_get ctx (Arith.cmpf ctx.b pred a b)
    else
      let pred =
        match op with
        | Ast.Eq -> Arith.Eq
        | Ast.Ne -> Arith.Ne
        | Ast.Lt -> Arith.Slt
        | Ast.Le -> Arith.Sle
        | Ast.Gt -> Arith.Sgt
        | Ast.Ge -> Arith.Sge
        | _ -> assert false
      in
      emit_get ctx (Arith.cmpi ctx.b pred a b)
  | Ast.And -> emit_get ctx (Arith.andi ctx.b a b)
  | Ast.Or -> emit_get ctx (Arith.ori ctx.b a b)

and lower_pow ctx loc base expo expo_ast =
  (* Integer constant exponents expand to multiplications (the common
     Fortran idiom x**2); everything else goes through math.powf. *)
  match expo_ast with
  | Ast.Int_lit n when n >= 1 && n <= 8 ->
    let rec go acc i =
      if i = n then acc
      else
        let acc =
          if Types.is_float (Value.ty base) then
            emit_get ctx (Arith.mulf ctx.b ~fastmath:true acc base)
          else emit_get ctx (Arith.muli ctx.b acc base)
        in
        go acc (i + 1)
    in
    go base 1
  | _ ->
    let fbase =
      if Types.is_float (Value.ty base) then base
      else convert ctx base Types.F32
    in
    let fexpo = convert ctx expo (Value.ty fbase) in
    let r = emit_get ctx (Math_d.powf ctx.b fbase fexpo) in
    ignore loc;
    r

and lower_intrinsic ctx loc name args =
  let unary build =
    match args with
    | [ a ] ->
      let v = lower_expr ctx loc a in
      let v =
        if Types.is_float (Value.ty v) then v else convert ctx v Types.F32
      in
      emit_get ctx (build v)
    | _ -> error loc (name ^ " expects one argument")
  in
  match name with
  | "sqrt" -> unary (Math_d.sqrt ctx.b)
  | "exp" -> unary (Math_d.exp ctx.b)
  | "log" -> unary (Math_d.log ctx.b)
  | "sin" -> unary (Math_d.sin ctx.b)
  | "cos" -> unary (Math_d.cos ctx.b)
  | "tanh" -> unary (Math_d.tanh ctx.b)
  | "abs" -> (
    match args with
    | [ a ] ->
      let v = lower_expr ctx loc a in
      if Types.is_float (Value.ty v) then emit_get ctx (Math_d.absf ctx.b v)
      else begin
        let zero = emit_get ctx (Arith.const_int ctx.b 0 (Value.ty v)) in
        let neg = emit_get ctx (Arith.subi ctx.b zero v) in
        let is_neg = emit_get ctx (Arith.cmpi ctx.b Arith.Slt v zero) in
        emit_get ctx (Arith.select ctx.b is_neg neg v)
      end
    | _ -> error loc "abs expects one argument")
  | "mod" -> (
    match args with
    | [ a; b ] ->
      let va = lower_expr ctx loc a in
      let vb = lower_expr ctx loc b in
      if Types.is_float (Value.ty va) || Types.is_float (Value.ty vb) then
        error loc "mod on reals is not supported"
      else emit_get ctx (Arith.remsi ctx.b va vb)
    | _ -> error loc "mod expects two arguments")
  | "max" | "min" -> (
    match List.map (lower_expr ctx loc) args with
    | [] | [ _ ] -> error loc (name ^ " expects at least two arguments")
    | v0 :: rest ->
      let ty =
        List.fold_left
          (fun acc v -> binary_result_type_v acc (Value.ty v))
          (Value.ty v0) rest
      in
      let fold acc v =
        let acc = convert ctx acc ty and v = convert ctx v ty in
        if Types.is_float ty then
          if name = "max" then emit_get ctx (Arith.maxf ctx.b acc v)
          else emit_get ctx (Arith.minf ctx.b acc v)
        else if name = "max" then emit_get ctx (Arith.maxsi ctx.b acc v)
        else emit_get ctx (Arith.minsi ctx.b acc v)
      in
      List.fold_left fold v0 rest)
  | "real" | "float" -> (
    match args with
    | [ a ] -> convert ctx (lower_expr ctx loc a) Types.F32
    | _ -> error loc "real expects one argument")
  | "dble" -> (
    match args with
    | [ a ] -> convert ctx (lower_expr ctx loc a) Types.F64
    | _ -> error loc "dble expects one argument")
  | "int" | "nint" -> (
    match args with
    | [ a ] -> convert ctx (lower_expr ctx loc a) Types.I32
    | _ -> error loc "int expects one argument")
  | other -> error loc ("intrinsic " ^ other ^ " cannot be lowered")

and binary_result_type_v ta tb =
  match (ta, tb) with
  | Types.F64, _ | _, Types.F64 -> Types.F64
  | Types.F32, _ | _, Types.F32 -> Types.F32
  | _ -> ta

(* --- OpenMP mapping helpers --- *)

let map_kind_to_omp = function
  | Ast.Map_to -> Omp.To
  | Ast.Map_from -> Omp.From
  | Ast.Map_tofrom -> Omp.Tofrom
  | Ast.Map_alloc -> Omp.Alloc

(* Do-loop variables of parallel loops inside [stmts]: private, never
   mapped. *)
let private_loop_vars stmts =
  Ast.fold_stmts
    (fun acc s ->
      match s.Ast.s_kind with
      | Ast.Omp_parallel_do { pd_loop = { do_var; _ }; _ } -> do_var :: acc
      | Ast.Do { do_var; _ } -> do_var :: acc
      | _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

(* Explicit + implicit mappings for a target construct. Returns
   (name, map_type, implicit) in a deterministic order: explicit clauses
   first, then implicit captures sorted by name. *)
let compute_mappings ctx loc clauses body =
  let explicit =
    List.concat_map
      (function
        | Ast.Cl_map (kind, names) ->
          List.map (fun n -> (n, map_kind_to_omp kind, false)) names
        | _ -> [])
      clauses
  in
  let explicit_names = List.map (fun (n, _, _) -> n) explicit in
  let clause_priv, clause_fpriv = Ast.clause_privacy body clauses in
  let privates = private_loop_vars body @ clause_priv in
  (* Scalars that the region writes — including reduction variables, which
     OpenMP treats as map(tofrom) on a target construct — must copy back;
     read-only scalars default to map(to). *)
  let written = Ast.assigned_scalars body @ Ast.reduction_vars body in
  let implicit =
    Ast.stmts_vars body
    |> List.filter (fun n ->
           (not (List.mem n explicit_names))
           && (not (List.mem n privates))
           && Env.mem n ctx.symbols
           &&
           let s = Env.find n ctx.symbols in
           s.Sema.sym_constant = None)
    |> List.map (fun n ->
           let s = symbol ctx loc n in
           let kind =
             (* firstprivate: by-value copy in, never copied back *)
             if List.mem n clause_fpriv then Omp.To
             else if s.Sema.sym_dims = [] && not (List.mem n written) then
               Omp.To
             else Omp.Tofrom
           in
           (n, kind, true))
  in
  explicit @ implicit

(* Emit omp.map_info (with bounds for arrays) for each mapping; returns
   (name, map result value) pairs. *)
let emit_map_infos ctx loc mappings =
  List.map
    (fun (name, kind, implicit) ->
      let var = storage ctx loc name in
      let bounds =
        match Value.ty var with
        | Types.Memref { shape = []; _ } -> []
        | Types.Memref { shape; _ } ->
          List.map
            (fun d ->
              let extent =
                match d with
                | Types.Static n -> emit_get ctx (Arith.const_index ctx.b n)
                | Types.Dynamic ->
                  (* dynamic extent: runtime dim query *)
                  let zero = emit_get ctx (Arith.const_index ctx.b 0) in
                  emit_get ctx (Memref_d.dim ctx.b var zero)
              in
              let one = emit_get ctx (Arith.const_index ctx.b 1) in
              let upper = emit_get ctx (Arith.subi ctx.b extent one) in
              let zero = emit_get ctx (Arith.const_index ctx.b 0) in
              emit_get ctx (Omp.bounds_info ctx.b ~lower:zero ~upper))
            shape
        | _ -> []
      in
      let v =
        emit_get ctx
          (Omp.map_info ctx.b ~var ~var_name:name ~map_type:kind ~implicit
             ~bounds ())
      in
      (name, v))
    mappings

(* acc.copy_info ops for each mapping (the OpenACC analogue of
   emit_map_infos; copy kinds share the omp map-kind encoding). *)
let emit_copy_infos ctx loc mappings =
  List.map
    (fun (name, kind, implicit) ->
      let var = storage ctx loc name in
      let acc_kind =
        match kind with
        | Omp.To -> Acc.Copyin
        | Omp.From -> Acc.Copyout
        | Omp.Tofrom -> Acc.Copy
        | Omp.Alloc | Omp.Release | Omp.Delete -> Acc.Create
      in
      let v =
        emit_get ctx
          (Acc.copy_info ctx.b ~var ~var_name:name ~kind:acc_kind ~implicit ())
      in
      (name, v))
    mappings

(* --- statements --- *)

let rec lower_stmt ctx stmt =
  let loc = stmt.Ast.s_loc in
  ctx.cur_loc <- loc;
  match stmt.Ast.s_kind with
  | Ast.Assign (lhs, rhs) -> (
    let value = lower_expr ctx loc rhs in
    match lhs with
    | Ast.Var name ->
      let sym = symbol ctx loc name in
      let value = convert ctx value (scalar_type sym.Sema.sym_type) in
      emit ctx (Fir.store ~value ~ref_:(storage ctx loc name) [])
    | Ast.Index (name, subscripts) ->
      let sym = symbol ctx loc name in
      let value = convert ctx value (scalar_type sym.Sema.sym_type) in
      let indices = lower_subscripts ctx loc name subscripts in
      emit ctx (Fir.store ~value ~ref_:(storage ctx loc name) indices)
    | _ -> error loc "invalid assignment target")
  | Ast.Do loop -> lower_do ctx loc loop
  | Ast.Do_while (cond, body) ->
    (* scf.while with no carried values: the condition re-evaluates the
       variables through their storage each round *)
    let while_op =
      Scf.while_ ctx.b ~inits:[]
        ~make_before:(fun _ ->
          in_block ctx (fun () ->
              let c = lower_expr ctx loc cond in
              emit ctx (Scf.condition ~cond:c ~operands:[])))
        ~make_after:(fun _ ->
          in_block ctx (fun () ->
              lower_stmts ctx body;
              emit ctx (Scf.yield ())))
    in
    ctx.cur_loc <- loc;
    emit ctx while_op
  | Ast.If (arms, else_body) -> lower_if ctx loc arms else_body
  | Ast.Call (name, args) ->
    let operands = List.map (lower_call_arg ctx loc) args in
    emit ctx (Fir.call ctx.b ~callee:name ~operands ~result_tys:[])
  | Ast.Print items ->
    List.iter
      (fun item ->
        match item with
        | Ast.Intrinsic ("__str", [ Ast.Var text ]) ->
          emit ctx
            (Op.set_attr
               (Fir.call ctx.b ~callee:"ftn_print_str" ~operands:[]
                  ~result_tys:[])
               "text" (Attr.String text))
        | e ->
          let v = lower_expr ctx loc e in
          let callee =
            match Value.ty v with
            | Types.F32 -> "ftn_print_f32"
            | Types.F64 -> "ftn_print_f64"
            | Types.I1 -> "ftn_print_i1"
            | _ -> "ftn_print_i32"
          in
          emit ctx (Fir.call ctx.b ~callee ~operands:[ v ] ~result_tys:[]))
      items;
    emit ctx
      (Fir.call ctx.b ~callee:"ftn_print_newline" ~operands:[] ~result_tys:[])
  | Ast.Exit_stmt | Ast.Cycle_stmt ->
    error loc "exit/cycle are not supported in this subset"
  | Ast.Omp_target (clauses, body) -> lower_target ctx loc clauses body
  | Ast.Omp_target_data (clauses, body) ->
    let mappings = compute_mappings ctx loc clauses [] in
    (* target data maps only the explicit clauses *)
    let maps = emit_map_infos ctx loc mappings in
    let body_ops = in_block ctx (fun () -> lower_stmts ctx body) in
    ctx.cur_loc <- loc;
    emit ctx
      (Omp.target_data
         ~map_operands:(List.map snd maps)
         (body_ops @ [ Omp.terminator () ]))
  | Ast.Omp_target_enter_data clauses ->
    let maps = emit_map_infos ctx loc (compute_mappings ctx loc clauses []) in
    emit ctx (Omp.target_enter_data ~map_operands:(List.map snd maps))
  | Ast.Omp_target_exit_data clauses ->
    let maps = emit_map_infos ctx loc (compute_mappings ctx loc clauses []) in
    emit ctx (Omp.target_exit_data ~map_operands:(List.map snd maps))
  | Ast.Omp_target_update clauses ->
    let motion, names =
      match clauses with
      | [ Ast.Cl_from names ] -> ("from", names)
      | [ Ast.Cl_to names ] -> ("to", names)
      | _ -> error loc "target update expects a single to(...) or from(...)"
    in
    let kind = if motion = "from" then Omp.From else Omp.To in
    let maps =
      emit_map_infos ctx loc (List.map (fun n -> (n, kind, false)) names)
    in
    emit ctx (Omp.target_update ~motion ~map_operands:(List.map snd maps))
  | Ast.Omp_parallel_do pd -> lower_parallel_do ctx pd
  | Ast.Acc_parallel_loop apl -> lower_acc_parallel_loop ctx apl
  | Ast.Acc_data (clauses, body) ->
    let maps = emit_copy_infos ctx loc (compute_mappings ctx loc clauses []) in
    let body_ops = in_block ctx (fun () -> lower_stmts ctx body) in
    ctx.cur_loc <- loc;
    emit ctx
      (Acc.data
         ~data_operands:(List.map snd maps)
         (body_ops @ [ Acc.terminator () ]))
  | Ast.Acc_enter_data clauses ->
    let maps = emit_copy_infos ctx loc (compute_mappings ctx loc clauses []) in
    emit ctx (Acc.enter_data ~data_operands:(List.map snd maps))
  | Ast.Acc_exit_data clauses ->
    let maps = emit_copy_infos ctx loc (compute_mappings ctx loc clauses []) in
    emit ctx (Acc.exit_data ~data_operands:(List.map snd maps))
  | Ast.Acc_update clauses ->
    let direction, names =
      match clauses with
      | [ Ast.Cl_from names ] -> ("host", names)
      | [ Ast.Cl_to names ] -> ("device", names)
      | _ -> error loc "acc update expects a single host(...) or device(...)"
    in
    let kind = if direction = "host" then Omp.From else Omp.To in
    let maps =
      emit_copy_infos ctx loc
        (List.map (fun n -> (n, kind, false)) names)
    in
    emit ctx (Acc.update ~direction ~data_operands:(List.map snd maps))

and lower_do ctx loc loop =
  let lb = to_index ctx (lower_expr ctx loc loop.Ast.do_lb) in
  let ub = to_index ctx (lower_expr ctx loc loop.Ast.do_ub) in
  let step =
    match loop.Ast.do_step with
    | Some e -> to_index ctx (lower_expr ctx loc e)
    | None -> emit_get ctx (Arith.const_index ctx.b 1)
  in
  let var_storage = storage ctx loc loop.Ast.do_var in
  let loop_op =
    Fir.do_loop ctx.b ~lb ~ub ~step (fun iv ->
        in_block ctx (fun () ->
            let iv32 = convert ctx iv Types.I32 in
            emit ctx (Fir.store ~value:iv32 ~ref_:var_storage []);
            lower_stmts ctx loop.Ast.do_body;
            emit ctx (Fir.result ())))
  in
  ctx.cur_loc <- loc;
  emit ctx loop_op

and lower_if ctx loc arms else_body =
  match arms with
  | [] -> lower_stmts ctx else_body
  | (cond, body) :: rest ->
    let cond_v = lower_expr ctx loc cond in
    let then_ops =
      in_block ctx (fun () ->
          lower_stmts ctx body;
          emit ctx (Fir.result ()))
    in
    let else_ops =
      in_block ctx (fun () ->
          lower_if ctx loc rest else_body;
          emit ctx (Fir.result ()))
    in
    let else_ops =
      (* collapse an else branch that only holds the terminator *)
      match else_ops with [ _ ] when rest = [] && else_body = [] -> [] | ops -> ops
    in
    ctx.cur_loc <- loc;
    emit ctx (Fir.if_ ~cond:cond_v ~then_ops ~else_ops ())

and lower_target ctx loc clauses body =
  let mappings = compute_mappings ctx loc clauses body in
  let maps = emit_map_infos ctx loc mappings in
  let target_op =
    Omp.target ctx.b ~map_operands:(List.map snd maps) (fun args ->
        in_block ctx (fun () ->
            (* rebind mapped variables to the region's block arguments *)
            List.iter2
              (fun (name, _) arg ->
                ctx.bindings <- Env.add name arg ctx.bindings)
              maps args;
            (* loop variables and clause-private names get kernel-local
               storage *)
            let clause_priv, _ = Ast.clause_privacy body clauses in
            List.iter
              (fun v ->
                if not (List.mem_assoc v maps) && Env.mem v ctx.symbols then begin
                  let sym = Env.find v ctx.symbols in
                  let st =
                    emit_get ctx
                      (Fir.alloca ctx.b ~bindc_name:v (storage_type sym))
                  in
                  ctx.bindings <- Env.add v st ctx.bindings
                end)
              (List.sort_uniq String.compare
                 (private_loop_vars body @ clause_priv));
            lower_stmts ctx body;
            emit ctx (Omp.terminator ())))
  in
  ctx.cur_loc <- loc;
  emit ctx target_op

and lower_parallel_do ctx pd =
  let loc = pd.Ast.pd_loc in
  let collapse =
    List.fold_left
      (fun acc c -> match c with Ast.Cl_collapse k -> k | _ -> acc)
      1 pd.Ast.pd_clauses
  in
  let simdlen =
    List.fold_left
      (fun acc c ->
        match c with
        | Ast.Cl_simdlen k | Ast.Cl_safelen k -> Some k
        | _ -> acc)
      None pd.Ast.pd_clauses
  in
  let reductions =
    List.concat_map
      (function
        | Ast.Cl_reduction (op, names) ->
          let kind =
            match op with
            | Ast.Red_add -> Omp.Red_add
            | Ast.Red_mul -> Omp.Red_mul
            | Ast.Red_max -> Omp.Red_max
            | Ast.Red_min -> Omp.Red_min
          in
          List.map (fun n -> (kind, n)) names
        | _ -> [])
      pd.Ast.pd_clauses
  in
  (* Collect the collapsed loop nest. *)
  let rec collect_nest depth loop =
    if depth = 1 then ([ loop ], loop.Ast.do_body)
    else
      match loop.Ast.do_body with
      | [ { Ast.s_kind = Ast.Do inner; _ } ] ->
        let loops, body = collect_nest (depth - 1) inner in
        (loop :: loops, body)
      | _ -> error loc "collapse requires a perfectly nested loop"
  in
  let loops, innermost_body = collect_nest collapse pd.Ast.pd_loop in
  let bounds =
    List.map
      (fun loop ->
        let lb = to_index ctx (lower_expr ctx loc loop.Ast.do_lb) in
        let ub = to_index ctx (lower_expr ctx loc loop.Ast.do_ub) in
        let step =
          match loop.Ast.do_step with
          | Some e -> to_index ctx (lower_expr ctx loc e)
          | None -> emit_get ctx (Arith.const_index ctx.b 1)
        in
        (lb, ub, step))
      loops
  in
  let red_accs =
    List.map
      (fun (kind, name) -> (kind, storage ctx loc name))
      reductions
  in
  let op =
    Omp.parallel_do ctx.b
      ~lbs:(List.map (fun (lb, _, _) -> lb) bounds)
      ~ubs:(List.map (fun (_, ub, _) -> ub) bounds)
      ~steps:(List.map (fun (_, _, s) -> s) bounds)
      ~simd:pd.Ast.pd_simd ?simdlen ~reductions:red_accs
      (fun ivs ->
        in_block ctx (fun () ->
            (* loop variables are private: give each a local slot *)
            List.iter2
              (fun loop iv ->
                let name = loop.Ast.do_var in
                let sym = symbol ctx loc name in
                let st =
                  match Env.find_opt name ctx.bindings with
                  | Some st -> st
                  | None ->
                    emit_get ctx
                      (Fir.alloca ctx.b ~bindc_name:name (storage_type sym))
                in
                ctx.bindings <- Env.add name st ctx.bindings;
                let iv32 = convert ctx iv Types.I32 in
                emit ctx (Fir.store ~value:iv32 ~ref_:st []))
              loops ivs;
            lower_stmts ctx innermost_body;
            emit ctx (Omp.yield ())))
  in
  ctx.cur_loc <- loc;
  emit ctx op

and lower_acc_parallel_loop ctx apl =
  let loc = apl.Ast.apl_loc in
  let map_clauses, loop_clauses =
    List.partition
      (function Ast.Cl_map _ -> true | _ -> false)
      apl.Ast.apl_clauses
  in
  let body_stmt =
    { Ast.s_loc = loc; Ast.s_kind = Ast.Do apl.Ast.apl_loop }
  in
  let mappings = compute_mappings ctx loc map_clauses [ body_stmt ] in
  let maps = emit_copy_infos ctx loc mappings in
  let vector_length =
    List.fold_left
      (fun acc c -> match c with Ast.Cl_simdlen k -> Some k | _ -> acc)
      None loop_clauses
  in
  let collapse =
    List.fold_left
      (fun acc c -> match c with Ast.Cl_collapse k -> k | _ -> acc)
      1 loop_clauses
  in
  let reductions =
    List.concat_map
      (function
        | Ast.Cl_reduction (op, names) ->
          let kind =
            match op with
            | Ast.Red_add -> Omp.Red_add
            | Ast.Red_mul -> Omp.Red_mul
            | Ast.Red_max -> Omp.Red_max
            | Ast.Red_min -> Omp.Red_min
          in
          List.map (fun n -> (kind, n)) names
        | _ -> [])
      loop_clauses
  in
  let parallel_op =
    Acc.parallel ctx.b
      ~data_operands:(List.map snd maps)
      (fun args ->
        in_block ctx (fun () ->
            List.iter2
              (fun (name, _) arg ->
                ctx.bindings <- Env.add name arg ctx.bindings)
              maps args;
            List.iter
              (fun v ->
                if
                  (not (List.mem_assoc v maps)) && Env.mem v ctx.symbols
                then begin
                  let sym = Env.find v ctx.symbols in
                  let st =
                    emit_get ctx
                      (Fir.alloca ctx.b ~bindc_name:v (storage_type sym))
                  in
                  ctx.bindings <- Env.add v st ctx.bindings
                end)
              (private_loop_vars [ body_stmt ]);
            (* collect the collapsed nest *)
            let rec collect_nest depth loop =
              if depth = 1 then ([ loop ], loop.Ast.do_body)
              else
                match loop.Ast.do_body with
                | [ { Ast.s_kind = Ast.Do inner; _ } ] ->
                  let loops, body = collect_nest (depth - 1) inner in
                  (loop :: loops, body)
                | _ -> error loc "collapse requires a perfectly nested loop"
            in
            let loops, innermost_body = collect_nest collapse apl.Ast.apl_loop in
            let bounds =
              List.map
                (fun loop ->
                  let lb = to_index ctx (lower_expr ctx loc loop.Ast.do_lb) in
                  let ub = to_index ctx (lower_expr ctx loc loop.Ast.do_ub) in
                  let step =
                    match loop.Ast.do_step with
                    | Some e -> to_index ctx (lower_expr ctx loc e)
                    | None -> emit_get ctx (Arith.const_index ctx.b 1)
                  in
                  (lb, ub, step))
                loops
            in
            let red_accs =
              List.map
                (fun (kind, name) -> (kind, storage ctx loc name))
                reductions
            in
            let loop_op =
              Acc.loop ctx.b
                ~lbs:(List.map (fun (lb, _, _) -> lb) bounds)
                ~ubs:(List.map (fun (_, ub, _) -> ub) bounds)
                ~steps:(List.map (fun (_, _, s) -> s) bounds)
                ?vector_length ~reductions:red_accs
                (fun ivs ->
                  in_block ctx (fun () ->
                      List.iter2
                        (fun loop iv ->
                          let name = loop.Ast.do_var in
                          let sym = symbol ctx loc name in
                          let st =
                            match Env.find_opt name ctx.bindings with
                            | Some st -> st
                            | None ->
                              emit_get ctx
                                (Fir.alloca ctx.b ~bindc_name:name
                                   (storage_type sym))
                          in
                          ctx.bindings <- Env.add name st ctx.bindings;
                          let iv32 = convert ctx iv Types.I32 in
                          emit ctx (Fir.store ~value:iv32 ~ref_:st []))
                        loops ivs;
                      lower_stmts ctx innermost_body;
                      emit ctx (Acc.yield ())))
            in
            emit ctx loop_op;
            emit ctx (Acc.terminator ())))
  in
  ctx.cur_loc <- loc;
  emit ctx parallel_op

and lower_stmts ctx stmts = List.iter (lower_stmt ctx) stmts

(* --- program units --- *)

let lower_unit info =
  let { Sema.ui_unit = unit_; ui_symbols = symbols } = info in
  let b = Builder.create () in
  let ctx =
    { b; symbols; bindings = Env.empty; out = []; cur_loc = unit_.Ast.u_loc }
  in
  (* Dummy arguments become function parameters (memrefs). *)
  let params =
    List.map
      (fun p ->
        let sym = Env.find p symbols in
        Builder.fresh b (storage_type sym))
      unit_.Ast.u_params
  in
  List.iter2
    (fun name v -> ctx.bindings <- Env.add name v ctx.bindings)
    unit_.Ast.u_params params;
  (* Locals: alloca storage for every non-dummy, non-parameter symbol. *)
  Env.iter
    (fun name sym ->
      if (not sym.Sema.sym_is_dummy) && sym.Sema.sym_constant = None then begin
        let dynamic_sizes =
          List.rev sym.Sema.sym_dims
          |> List.filter_map (function
               | Sema.Dim_const _ -> None
               | Sema.Dim_expr e ->
                 let loc = unit_.Ast.u_loc in
                 Some (to_index ctx (lower_expr ctx loc e)))
        in
        let st =
          emit_get ctx
            (Fir.alloca ctx.b ~bindc_name:name ~dynamic_sizes
               (storage_type sym))
        in
        ctx.bindings <- Env.add name st ctx.bindings
      end)
    symbols;
  lower_stmts ctx unit_.Ast.u_body;
  let result_tys, return_op =
    match unit_.Ast.u_kind with
    | Ast.Function ty ->
      let ret_storage = storage ctx unit_.Ast.u_loc unit_.Ast.u_name in
      let v = emit_get ctx (Fir.load ctx.b ret_storage []) in
      ([ scalar_type ty ], Func_d.return ~operands:[ v ] ())
    | Ast.Main_program | Ast.Subroutine -> ([], Func_d.return ())
  in
  emit ctx return_op;
  let attrs =
    match unit_.Ast.u_kind with
    | Ast.Main_program -> [ ("ftn.main", Attr.Bool true) ]
    | Ast.Subroutine | Ast.Function _ -> []
  in
  Op.set_loc
    (Func_d.func ~sym_name:unit_.Ast.u_name ~args:params ~result_tys ~attrs
       (List.rev ctx.out))
    unit_.Ast.u_loc

(* Builder ids are per-unit; rebase so ids are unique module-wide. *)
let lower checked =
  let funcs = List.map lower_unit checked in
  let b = Builder.create () in
  let funcs =
    List.map
      (fun f ->
        let f', _ = Builder.clone b f in
        f')
      funcs
  in
  Op.module_op funcs
