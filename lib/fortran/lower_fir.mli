(** Lowering from the checked Fortran AST into FIR + omp/acc dialect IR —
    the stage Flang performs in the paper's Figure 1.

    Storage model: scalars live in rank-0 memrefs, arrays in memrefs whose
    dimensions are the reverse of the Fortran shape (so column-major
    adjacency maps onto the fastest-varying memref dimension); subscripts
    are reversed and shifted to 0-based. Dummy arguments pass as memrefs
    (by-reference semantics). Implicit device mappings follow Section 3 of
    the paper, with scalars written in a region (including reduction
    variables) mapped tofrom. *)

exception Lower_error of string * Ftn_diag.Loc.t

val lower : Sema.checked -> Ftn_ir.Op.t
(** Whole-program lowering into one [builtin.module] with module-wide
    unique SSA ids. *)
