(* Parser for the text of '!$omp ...' directives: the subset of OpenMP the
   paper's flow supports — target offload with data mapping, structured and
   unstructured data regions, update, and worksharing loops with simd /
   simdlen / reduction / collapse clauses. *)

exception Omp_error of string * Ftn_diag.Loc.t

(* Location of the directive currently being parsed; [parse ~loc] sets it
   so the deeply nested clause parsers can raise located errors without
   threading the location through every helper. *)
let current_loc = ref Ftn_diag.Loc.unknown
let error msg = raise (Omp_error (msg, !current_loc))

type directive =
  | Target of {
      clauses : Ast.omp_clause list;
      combined_loop : combined option;
          (** For combined constructs like [target parallel do simd]. *)
    }
  | Target_data of Ast.omp_clause list
  | Target_enter_data of Ast.omp_clause list
  | Target_exit_data of Ast.omp_clause list
  | Target_update of Ast.omp_clause list
  | Parallel_do of {
      simd : bool;
      clauses : Ast.omp_clause list;
    }
  | Simd of Ast.omp_clause list
  | End_directive of string
      (** Canonical construct name: "target", "target data",
          "parallel do", "target parallel do", ... *)

and combined = { c_simd : bool }

(* --- scanner over the directive text --- *)

type tok =
  | Word of string
  | Lp
  | Rp
  | Comma
  | Colon
  | Plus
  | Star
  | Num of int

let scan text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && text.[!i] >= '0' && text.[!i] <= '9' do
        incr i
      done;
      out := Num (int_of_string (String.sub text start (!i - start))) :: !out
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word text.[!i] do
        incr i
      done;
      out :=
        Word (String.lowercase_ascii (String.sub text start (!i - start)))
        :: !out
    end
    else begin
      incr i;
      match c with
      | '(' -> out := Lp :: !out
      | ')' -> out := Rp :: !out
      | ',' -> out := Comma :: !out
      | ':' -> out := Colon :: !out
      | '+' -> out := Plus :: !out
      | '*' -> out := Star :: !out
      | c -> error (Fmt.str "unexpected %C in directive" c)
    end
  done;
  List.rev !out

(* --- clause parsing --- *)

let parse_name_list toks =
  (* name {, name} ) — returns names and remaining tokens past Rp. *)
  let rec go acc = function
    | Word w :: Comma :: rest -> go (w :: acc) rest
    | Word w :: Rp :: rest -> (List.rev (w :: acc), rest)
    | _ -> error "expected variable list"
  in
  go [] toks

let parse_clauses toks =
  let rec go acc = function
    | [] -> List.rev acc
    | Word "map" :: Lp :: rest -> (
      match rest with
      | Word kind :: Colon :: rest ->
        let kind =
          match kind with
          | "to" -> Ast.Map_to
          | "from" -> Ast.Map_from
          | "tofrom" -> Ast.Map_tofrom
          | "alloc" -> Ast.Map_alloc
          | other -> error ("unknown map type " ^ other)
        in
        let names, rest = parse_name_list rest in
        go (Ast.Cl_map (kind, names) :: acc) rest
      | _ ->
        (* map(a, b) defaults to tofrom *)
        let names, rest = parse_name_list rest in
        go (Ast.Cl_map (Ast.Map_tofrom, names) :: acc) rest)
    | Word "simdlen" :: Lp :: Num k :: Rp :: rest ->
      go (Ast.Cl_simdlen k :: acc) rest
    | Word "safelen" :: Lp :: Num k :: Rp :: rest ->
      go (Ast.Cl_safelen k :: acc) rest
    | Word "collapse" :: Lp :: Num k :: Rp :: rest ->
      go (Ast.Cl_collapse k :: acc) rest
    | Word "reduction" :: Lp :: op :: Colon :: rest ->
      let red =
        match op with
        | Plus -> Ast.Red_add
        | Star -> Ast.Red_mul
        | Word "max" -> Ast.Red_max
        | Word "min" -> Ast.Red_min
        | _ -> error "unknown reduction operator"
      in
      let names, rest = parse_name_list rest in
      go (Ast.Cl_reduction (red, names) :: acc) rest
    | Word "private" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_private names :: acc) rest
    | Word "firstprivate" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_firstprivate names :: acc) rest
    | Word "from" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_from names :: acc) rest
    | Word "to" :: Lp :: rest ->
      let names, rest = parse_name_list rest in
      go (Ast.Cl_to names :: acc) rest
    | Word w :: _ -> error ("unknown clause " ^ w)
    | _ -> error "malformed clause list"
  in
  go [] toks

(* --- directive parsing --- *)

let parse ?(loc = Ftn_diag.Loc.unknown) text =
  current_loc := loc;
  match scan text with
  | Word "end" :: rest ->
    let words =
      List.filter_map (function Word w -> Some w | _ -> None) rest
    in
    End_directive (String.concat " " words)
  | Word "target" :: Word "data" :: rest -> Target_data (parse_clauses rest)
  | Word "target" :: Word "enter" :: Word "data" :: rest ->
    Target_enter_data (parse_clauses rest)
  | Word "target" :: Word "exit" :: Word "data" :: rest ->
    Target_exit_data (parse_clauses rest)
  | Word "target" :: Word "update" :: rest ->
    Target_update (parse_clauses rest)
  | Word "target" :: Word "parallel" :: Word "do" :: Word "simd" :: rest ->
    Target
      { clauses = parse_clauses rest; combined_loop = Some { c_simd = true } }
  | Word "target" :: Word "parallel" :: Word "do" :: rest ->
    Target
      { clauses = parse_clauses rest; combined_loop = Some { c_simd = false } }
  | Word "target" :: rest ->
    Target { clauses = parse_clauses rest; combined_loop = None }
  | Word "parallel" :: Word "do" :: Word "simd" :: rest ->
    Parallel_do { simd = true; clauses = parse_clauses rest }
  | Word "parallel" :: Word "do" :: rest ->
    Parallel_do { simd = false; clauses = parse_clauses rest }
  | Word "simd" :: rest -> Simd (parse_clauses rest)
  | Word w :: _ -> error ("unsupported OpenMP directive " ^ w)
  | _ -> error "empty OpenMP directive"

(* Split the clauses of a combined construct between the target part (data
   mapping) and the loop part (everything else). *)
let split_combined_clauses clauses =
  List.partition
    (function Ast.Cl_map _ -> true | _ -> false)
    clauses
