(** Parser for '!$omp' directive text: the OpenMP subset of the paper —
    target offload with data mapping, structured and unstructured data
    regions, update, and worksharing loops with simd/simdlen/reduction/
    collapse clauses. *)

exception Omp_error of string * Ftn_diag.Loc.t

type directive =
  | Target of {
      clauses : Ast.omp_clause list;
      combined_loop : combined option;
          (** Set for combined constructs like [target parallel do simd]. *)
    }
  | Target_data of Ast.omp_clause list
  | Target_enter_data of Ast.omp_clause list
  | Target_exit_data of Ast.omp_clause list
  | Target_update of Ast.omp_clause list
  | Parallel_do of {
      simd : bool;
      clauses : Ast.omp_clause list;
    }
  | Simd of Ast.omp_clause list
  | End_directive of string  (** Canonical construct name. *)

and combined = { c_simd : bool }

(** Directive-text tokens, shared with {!Acc_parser}. *)
type tok =
  | Word of string
  | Lp
  | Rp
  | Comma
  | Colon
  | Plus
  | Star
  | Num of int

val scan : string -> tok list
val parse_clauses : tok list -> Ast.omp_clause list
val parse : ?loc:Ftn_diag.Loc.t -> string -> directive
(** [loc] (the directive's source location) is attached to any error. *)

val split_combined_clauses :
  Ast.omp_clause list -> Ast.omp_clause list * Ast.omp_clause list
(** (map clauses for the target part, remaining loop clauses). *)
