(* Semantic analysis: builds per-unit symbol tables, resolves the
   array-reference / function-call ambiguity, folds named constants, and
   type-checks expressions and statements. The checked AST (with Intrinsic
   nodes resolved) plus the symbol tables feed the FIR lowering. *)

exception Sema_error of string * Ftn_diag.Loc.t

let error loc msg = raise (Sema_error (msg, loc))

type dim =
  | Dim_const of int
  | Dim_expr of Ast.expr  (** Extent known only at runtime (dummy args). *)

type symbol = {
  sym_name : string;
  sym_type : Ast.base_type;
  sym_dims : dim list;  (** Empty for scalars. *)
  sym_is_dummy : bool;
  sym_constant : Ast.expr option;  (** Folded value of named constants. *)
}

module Env = Map.Make (String)

type unit_info = {
  ui_unit : Ast.program_unit;  (** With Intrinsic nodes resolved. *)
  ui_symbols : symbol Env.t;
}

type checked = unit_info list

(* Function signatures of the program being checked (name -> result type
   and arity), collected before unit checking so calls can cross units. *)
let current_functions : (string, Ast.base_type * int) Hashtbl.t =
  Hashtbl.create 8

let intrinsics =
  [ "sqrt"; "abs"; "exp"; "log"; "sin"; "cos"; "tanh"; "mod"; "max"; "min";
    "real"; "dble"; "int"; "float"; "nint" ]

let is_intrinsic name = List.mem name intrinsics

let find env name = Env.find_opt name env

let lookup env loc name =
  match find env name with
  | Some s -> s
  | None -> error loc ("undeclared variable " ^ name)

(* --- constant folding for parameters and dimension extents --- *)

let rec fold_const env e =
  match e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ -> Some e
  | Ast.Var name -> (
    match find env name with
    | Some { sym_constant = Some c; _ } -> Some c
    | _ -> None)
  | Ast.Binop (op, a, b) -> (
    match (fold_const env a, fold_const env b) with
    | Some (Ast.Int_lit x), Some (Ast.Int_lit y) -> (
      match op with
      | Ast.Add -> Some (Ast.Int_lit (x + y))
      | Ast.Sub -> Some (Ast.Int_lit (x - y))
      | Ast.Mul -> Some (Ast.Int_lit (x * y))
      | Ast.Div -> if y = 0 then None else Some (Ast.Int_lit (x / y))
      | Ast.Pow ->
        let rec pow acc n = if n <= 0 then acc else pow (acc * x) (n - 1) in
        if y >= 0 then Some (Ast.Int_lit (pow 1 y)) else None
      | _ -> None)
    | _ -> None)
  | Ast.Unop (Ast.Neg, a) -> (
    match fold_const env a with
    | Some (Ast.Int_lit x) -> Some (Ast.Int_lit (-x))
    | Some (Ast.Real_lit (x, k)) -> Some (Ast.Real_lit (-.x, k))
    | _ -> None)
  | Ast.Unop (Ast.Not, _) | Ast.Index _ | Ast.Intrinsic _
  | Ast.User_call _ ->
    None

let const_int env e =
  match fold_const env e with Some (Ast.Int_lit n) -> Some n | _ -> None

(* --- expression typing and resolution --- *)

let promote a b =
  match (a, b) with
  | Ast.Ty_double, _ | _, Ast.Ty_double -> Ast.Ty_double
  | Ast.Ty_real, _ | _, Ast.Ty_real -> Ast.Ty_real
  | Ast.Ty_integer, Ast.Ty_integer -> Ast.Ty_integer
  | Ast.Ty_logical, Ast.Ty_logical -> Ast.Ty_logical
  | _ -> Ast.Ty_real

let intrinsic_type loc name arg_tys =
  match name with
  | "sqrt" | "exp" | "log" | "sin" | "cos" | "tanh" -> (
    match arg_tys with
    | [ (Ast.Ty_real | Ast.Ty_double) as t ] -> t
    | [ Ast.Ty_integer ] -> Ast.Ty_real
    | _ -> error loc (name ^ " expects one numeric argument"))
  | "abs" -> (
    match arg_tys with
    | [ t ] -> t
    | _ -> error loc "abs expects one argument")
  | "mod" -> (
    match arg_tys with
    | [ a; b ] -> promote a b
    | _ -> error loc "mod expects two arguments")
  | "max" | "min" ->
    if List.length arg_tys < 2 then
      error loc (name ^ " expects at least two arguments")
    else List.fold_left promote Ast.Ty_integer arg_tys
  | "real" | "float" -> Ast.Ty_real
  | "dble" -> Ast.Ty_double
  | "int" | "nint" -> Ast.Ty_integer
  | "__str" -> Ast.Ty_integer
  | _ -> error loc ("unknown intrinsic " ^ name)

(* Resolve Index nodes into array references or intrinsic calls, and
   return the rewritten expression with its type. *)
let rec check_expr env loc e =
  match e with
  | Ast.Int_lit _ -> (e, Ast.Ty_integer)
  | Ast.Real_lit (_, k) -> (e, k)
  | Ast.Logical_lit _ -> (e, Ast.Ty_logical)
  | Ast.Var name ->
    let s = lookup env loc name in
    if s.sym_dims <> [] then
      error loc ("whole-array reference to " ^ name ^ " is not supported")
    else (e, s.sym_type)
  | Ast.Index (name, args) -> (
    match find env name with
    | Some s when s.sym_dims <> [] ->
      if List.length args <> List.length s.sym_dims then
        error loc
          (Fmt.str "array %s has rank %d but %d subscripts given" name
             (List.length s.sym_dims) (List.length args));
      let args' =
        List.map
          (fun a ->
            let a', ty = check_expr env loc a in
            match ty with
            | Ast.Ty_integer -> a'
            | _ -> error loc ("subscript of " ^ name ^ " must be integer"))
          args
      in
      (Ast.Index (name, args'), s.sym_type)
    | Some _ -> error loc (name ^ " is not an array")
    | None ->
      if is_intrinsic name then begin
        let args', tys =
          List.split (List.map (check_expr env loc) args)
        in
        (Ast.Intrinsic (name, args'), intrinsic_type loc name tys)
      end
      else begin
        match Hashtbl.find_opt current_functions name with
        | Some (result_ty, arity) ->
          if List.length args <> arity then
            error loc
              (Fmt.str "function %s expects %d argument(s), got %d" name
                 arity (List.length args));
          let args' = List.map (fun a -> fst (check_expr env loc a)) args in
          (Ast.User_call (name, result_ty, args'), result_ty)
        | None -> error loc ("unknown array or function " ^ name)
      end)
  | Ast.Binop (op, a, b) -> (
    let a', ta = check_expr env loc a in
    let b', tb = check_expr env loc b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow ->
      if ta = Ast.Ty_logical || tb = Ast.Ty_logical then
        error loc "arithmetic on logical values";
      (Ast.Binop (op, a', b'), promote ta tb)
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      (Ast.Binop (op, a', b'), Ast.Ty_logical)
    | Ast.And | Ast.Or ->
      if ta <> Ast.Ty_logical || tb <> Ast.Ty_logical then
        error loc "logical operator on non-logical values";
      (Ast.Binop (op, a', b'), Ast.Ty_logical))
  | Ast.Unop (Ast.Neg, a) ->
    let a', ta = check_expr env loc a in
    if ta = Ast.Ty_logical then error loc "negation of a logical value";
    (Ast.Unop (Ast.Neg, a'), ta)
  | Ast.Unop (Ast.Not, a) ->
    let a', ta = check_expr env loc a in
    if ta <> Ast.Ty_logical then error loc ".not. on non-logical value";
    (Ast.Unop (Ast.Not, a'), Ast.Ty_logical)
  | Ast.Intrinsic (name, args) ->
    let args', tys = List.split (List.map (check_expr env loc) args) in
    (Ast.Intrinsic (name, args'), intrinsic_type loc name tys)
  | Ast.User_call (name, ty, args) ->
    let args' = List.map (fun a -> fst (check_expr env loc a)) args in
    (Ast.User_call (name, ty, args'), ty)

let expr_type env loc e = snd (check_expr env loc e)

(* --- statements --- *)

let check_clause_vars env loc clauses =
  let check_names names =
    List.iter (fun n -> ignore (lookup env loc n)) names
  in
  List.iter
    (function
      | Ast.Cl_map (_, names)
      | Ast.Cl_reduction (_, names)
      | Ast.Cl_from names
      | Ast.Cl_to names
      | Ast.Cl_private names
      | Ast.Cl_firstprivate names ->
        check_names names
      | Ast.Cl_simdlen k | Ast.Cl_safelen k | Ast.Cl_collapse k ->
        if k <= 0 then error loc "clause argument must be positive")
    clauses

let rec check_stmt env stmt =
  let loc = stmt.Ast.s_loc in
  let kind =
    match stmt.Ast.s_kind with
    | Ast.Assign (lhs, rhs) -> (
      let rhs', _rty = check_expr env loc rhs in
      match lhs with
      | Ast.Var name ->
        let s = lookup env loc name in
        if s.sym_dims <> [] then
          error loc ("assignment to whole array " ^ name);
        if s.sym_constant <> None then
          error loc ("assignment to parameter " ^ name);
        Ast.Assign (lhs, rhs')
      | Ast.Index (name, args) -> (
        let lhs', _ = check_expr env loc (Ast.Index (name, args)) in
        match lhs' with
        | Ast.Index _ -> Ast.Assign (lhs', rhs')
        | _ -> error loc ("assignment target " ^ name ^ " is not an array"))
      | _ -> error loc "invalid assignment target")
    | Ast.Do loop -> Ast.Do (check_do env loc loop)
    | Ast.Do_while (cond, body) ->
      let cond', ty = check_expr env loc cond in
      if ty <> Ast.Ty_logical then
        error loc "do while condition must be logical";
      Ast.Do_while (cond', check_stmts env body)
    | Ast.If (arms, else_body) ->
      let arms' =
        List.map
          (fun (cond, body) ->
            let cond', ty = check_expr env loc cond in
            if ty <> Ast.Ty_logical then
              error loc "if condition must be logical";
            (cond', check_stmts env body))
          arms
      in
      Ast.If (arms', check_stmts env else_body)
    | Ast.Call (name, args) ->
      let args' = List.map (fun a -> fst (check_expr_arg env loc a)) args in
      Ast.Call (name, args')
    | Ast.Print args ->
      Ast.Print (List.map (fun a -> fst (check_print_item env loc a)) args)
    | Ast.Exit_stmt -> Ast.Exit_stmt
    | Ast.Cycle_stmt -> Ast.Cycle_stmt
    | Ast.Omp_target (clauses, body) ->
      check_clause_vars env loc clauses;
      Ast.Omp_target (clauses, check_stmts env body)
    | Ast.Omp_target_data (clauses, body) ->
      check_clause_vars env loc clauses;
      Ast.Omp_target_data (clauses, check_stmts env body)
    | Ast.Omp_target_enter_data clauses ->
      check_clause_vars env loc clauses;
      Ast.Omp_target_enter_data clauses
    | Ast.Omp_target_exit_data clauses ->
      check_clause_vars env loc clauses;
      Ast.Omp_target_exit_data clauses
    | Ast.Omp_target_update clauses ->
      check_clause_vars env loc clauses;
      Ast.Omp_target_update clauses
    | Ast.Omp_parallel_do pd ->
      check_clause_vars env loc pd.Ast.pd_clauses;
      Ast.Omp_parallel_do
        { pd with Ast.pd_loop = check_do env pd.Ast.pd_loc pd.Ast.pd_loop }
    | Ast.Acc_parallel_loop apl ->
      check_clause_vars env loc apl.Ast.apl_clauses;
      Ast.Acc_parallel_loop
        { apl with Ast.apl_loop = check_do env apl.Ast.apl_loc apl.Ast.apl_loop }
    | Ast.Acc_data (clauses, body) ->
      check_clause_vars env loc clauses;
      Ast.Acc_data (clauses, check_stmts env body)
    | Ast.Acc_enter_data clauses ->
      check_clause_vars env loc clauses;
      Ast.Acc_enter_data clauses
    | Ast.Acc_exit_data clauses ->
      check_clause_vars env loc clauses;
      Ast.Acc_exit_data clauses
    | Ast.Acc_update clauses ->
      check_clause_vars env loc clauses;
      Ast.Acc_update clauses
  in
  { stmt with Ast.s_kind = kind }

and check_do env loc loop =
  let s = lookup env loc loop.Ast.do_var in
  if s.sym_type <> Ast.Ty_integer || s.sym_dims <> [] then
    error loc ("do variable " ^ loop.Ast.do_var ^ " must be an integer scalar");
  let check_int e =
    let e', ty = check_expr env loc e in
    if ty <> Ast.Ty_integer then error loc "loop bounds must be integer";
    e'
  in
  {
    loop with
    Ast.do_lb = check_int loop.Ast.do_lb;
    do_ub = check_int loop.Ast.do_ub;
    do_step = Option.map check_int loop.Ast.do_step;
    do_body = check_stmts env loop.Ast.do_body;
  }

and check_stmts env stmts = List.map (check_stmt env) stmts

(* Subroutine arguments may be whole arrays (pass-by-reference); allow a
   bare Var naming an array here, unlike in expressions. *)
and check_expr_arg env loc e =
  match e with
  | Ast.Var name ->
    let s = lookup env loc name in
    (e, s.sym_type)
  | _ -> check_expr env loc e

and check_print_item env loc e =
  match e with
  | Ast.Intrinsic ("__str", _) -> (e, Ast.Ty_integer)
  | _ -> check_expr env loc e

(* --- declarations and units --- *)

let build_symbols ?engine unit_ =
  let { Ast.u_params; u_decls; u_loc; _ } = unit_ in
  let env = ref Env.empty in
  let add_decl d =
      let loc = d.Ast.d_loc in
      if Env.mem d.Ast.d_name !env then
        error loc ("duplicate declaration of " ^ d.Ast.d_name);
      let constant =
        match d.Ast.d_parameter with
        | Some e -> (
          match fold_const !env e with
          | Some c -> Some c
          | None -> error loc ("parameter " ^ d.Ast.d_name ^ " is not constant"))
        | None -> None
      in
      let dims =
        List.map
          (fun extent ->
            match const_int !env extent with
            | Some n when n > 0 -> Dim_const n
            | Some _ -> Dim_expr extent
            | None -> Dim_expr extent)
          d.Ast.d_dims
      in
      let is_dummy = List.mem d.Ast.d_name u_params in
      env :=
        Env.add d.Ast.d_name
          {
            sym_name = d.Ast.d_name;
            sym_type = d.Ast.d_type;
            sym_dims = dims;
            sym_is_dummy = is_dummy;
            sym_constant = constant;
          }
          !env
  in
  (* With an engine, a bad declaration is reported and skipped so the rest
     of the unit can still be checked (multi-error reporting); without one,
     the first Sema_error propagates as before. *)
  List.iter
    (fun d ->
      match engine with
      | None -> add_decl d
      | Some eng -> (
        try add_decl d
        with Sema_error (msg, loc) -> Ftn_diag.Diag_engine.error eng ~loc msg))
    u_decls;
  List.iter
    (fun p ->
      if not (Env.mem p !env) then
        error u_loc ("dummy argument " ^ p ^ " is not declared"))
    u_params;
  !env

let check_unit ?engine unit_ =
  let symbols = build_symbols ?engine unit_ in
  let body =
    match engine with
    | None -> check_stmts symbols unit_.Ast.u_body
    | Some eng ->
      (* Recover per top-level statement: an error inside a statement
         reports it and moves on to the next. *)
      List.map
        (fun stmt ->
          try check_stmt symbols stmt
          with Sema_error (msg, loc) ->
            Ftn_diag.Diag_engine.error eng ~loc msg;
            stmt)
        unit_.Ast.u_body
  in
  { ui_unit = { unit_ with Ast.u_body = body }; ui_symbols = symbols }

let check ?engine program =
  Hashtbl.reset current_functions;
  List.iter
    (fun u ->
      match u.Ast.u_kind with
      | Ast.Function ty ->
        Hashtbl.replace current_functions u.Ast.u_name
          (ty, List.length u.Ast.u_params)
      | Ast.Main_program | Ast.Subroutine -> ())
    program;
  let checked = List.map (check_unit ?engine) program in
  (match engine with
  | Some eng -> Ftn_diag.Diag_engine.fail_if_errors eng
  | None -> ());
  checked
