(** Semantic analysis: per-unit symbol tables, resolution of the
    array-reference / intrinsic / user-function ambiguity, named-constant
    folding, and type checking. The checked AST plus the symbol tables
    feed the FIR lowering. *)

exception Sema_error of string * Ftn_diag.Loc.t

type dim =
  | Dim_const of int
  | Dim_expr of Ast.expr  (** Extent known only at runtime (dummy args). *)

type symbol = {
  sym_name : string;
  sym_type : Ast.base_type;
  sym_dims : dim list;  (** Empty for scalars. *)
  sym_is_dummy : bool;
  sym_constant : Ast.expr option;  (** Folded value of named constants. *)
}

module Env : Map.S with type key = string

type unit_info = {
  ui_unit : Ast.program_unit;  (** With call nodes resolved. *)
  ui_symbols : symbol Env.t;
}

type checked = unit_info list

val is_intrinsic : string -> bool
val fold_const : symbol Env.t -> Ast.expr -> Ast.expr option
val const_int : symbol Env.t -> Ast.expr -> int option
val expr_type : symbol Env.t -> Ftn_diag.Loc.t -> Ast.expr -> Ast.base_type
(** Raises {!Sema_error} on ill-typed expressions. *)

val check : ?engine:Ftn_diag.Diag_engine.t -> Ast.program -> checked
(** With [engine], semantic errors are accumulated (recovering per
    declaration and per top-level statement) and raised together as
    {!Ftn_diag.Diag.Diag_failure} at the end; without it the first error
    raises {!Sema_error}. *)
