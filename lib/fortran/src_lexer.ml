(* Lexer for free-form Fortran. Handles case-insensitivity, '!' comments,
   '&' continuations and the '!$omp' sentinel (whose directive text is
   passed through as a single token for Omp_parser). *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float * bool  (** value, is-double-precision *)
  | STRING of string
  | TRUE
  | FALSE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW
  | LPAREN
  | RPAREN
  | COMMA
  | COLONCOLON
  | COLON
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | PERCENT
  | NEWLINE
  | OMP of string  (** Directive text following the !$omp sentinel. *)
  | ACC of string  (** Directive text following the !$acc sentinel. *)
  | EOF

type spanned = {
  tok : token;
  line : int;  (** = [loc.line], kept for convenience. *)
  loc : Ftn_diag.Loc.t;
}

exception Lex_error of string * Ftn_diag.Loc.t

let error loc msg = raise (Lex_error (msg, loc))

let string_of_token = function
  | IDENT s -> Fmt.str "identifier %S" s
  | INT n -> Fmt.str "integer %d" n
  | REAL (x, _) -> Fmt.str "real %g" x
  | STRING s -> Fmt.str "string %S" s
  | TRUE -> ".true."
  | FALSE -> ".false."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | POW -> "**"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLONCOLON -> "::"
  | COLON -> ":"
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "/="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AND -> ".and."
  | OR -> ".or."
  | NOT -> ".not."
  | PERCENT -> "%"
  | NEWLINE -> "end of line"
  | OMP d -> Fmt.str "!$omp %s" d
  | ACC d -> Fmt.str "!$acc %s" d
  | EOF -> "end of input"

(* --- line-level preprocessing --- *)

type sentinel_kind =
  | Omp_line
  | Acc_line
  | Plain_line

type logical_line = {
  text : string;
  ll_line : int;  (** Source line of the first physical line. *)
  kind : sentinel_kind;
}

let is_blank s = String.trim s = ""

(* Strip a trailing '!' comment, respecting string literals. Keeps the
   '!$omp' sentinel out of this path (handled by the caller). *)
let strip_comment s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i in_string quote =
    if i >= n then Buffer.contents buf
    else
      let c = s.[i] in
      if in_string then begin
        Buffer.add_char buf c;
        go (i + 1) (c <> quote) quote
      end
      else if c = '\'' || c = '"' then begin
        Buffer.add_char buf c;
        go (i + 1) true c
      end
      else if c = '!' then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        go (i + 1) false ' '
      end
  in
  go 0 false ' '

let directive_sentinel s =
  let t = String.trim s in
  let lower = String.lowercase_ascii t in
  let strip () = String.trim (String.sub t 5 (String.length t - 5)) in
  if String.length lower >= 5 && String.sub lower 0 5 = "!$omp" then
    Some (Omp_line, strip ())
  else if String.length lower >= 5 && String.sub lower 0 5 = "!$acc" then
    Some (Acc_line, strip ())
  else None

(* Collapse continuation lines into logical lines. A '&' at the end
   continues onto the next non-blank line; a leading '&' on the
   continuation is consumed. OpenMP directives continue with '!$omp &'. *)
let logical_lines ?(file = "") source =
  let line_loc line = Ftn_diag.Loc.line_only ~file line in
  let lines = String.split_on_char '\n' source in
  let rec go acc line_no = function
    | [] -> List.rev acc
    | raw :: rest -> (
      match directive_sentinel raw with
      | Some (kind, dir) ->
        let dir = String.trim (strip_comment dir) in
        let rec continue_dir dir line_no rest =
          if String.length dir > 0 && dir.[String.length dir - 1] = '&' then
            match rest with
            | next :: rest' -> (
              match directive_sentinel next with
              | Some (kind', cont) when kind' = kind ->
                let cont = String.trim (strip_comment cont) in
                let cont =
                  if String.length cont > 0 && cont.[0] = '&' then
                    String.trim (String.sub cont 1 (String.length cont - 1))
                  else cont
                in
                let dir = String.sub dir 0 (String.length dir - 1) in
                continue_dir (String.trim dir ^ " " ^ cont) (line_no + 1) rest'
              | Some _ | None ->
                error (line_loc line_no)
                  "directive continuation must repeat the same sentinel")
            | [] ->
              error (line_loc line_no) "dangling directive continuation"
          else (dir, line_no, rest)
        in
        let dir, end_line, rest = continue_dir dir line_no rest in
        go
          ({ text = dir; ll_line = line_no; kind } :: acc)
          (end_line + 1) rest
      | None ->
        let stripped = strip_comment raw in
        if is_blank stripped then go acc (line_no + 1) rest
        else
          let rec continue_line text line_no rest =
            let t = String.trim text in
            if String.length t > 0 && t.[String.length t - 1] = '&' then
              match rest with
              | next :: rest' ->
                let next_stripped = strip_comment next in
                if is_blank next_stripped then
                  continue_line text (line_no + 1) (("" :: rest') |> List.tl)
                else
                  let cont = String.trim next_stripped in
                  let cont =
                    if String.length cont > 0 && cont.[0] = '&' then
                      String.sub cont 1 (String.length cont - 1)
                    else cont
                  in
                  let t = String.sub t 0 (String.length t - 1) in
                  continue_line (t ^ " " ^ cont) (line_no + 1) rest'
              | [] -> error (line_loc line_no) "dangling continuation '&'"
            else (text, line_no, rest)
          in
          let text, end_line, rest = continue_line stripped line_no rest in
          go
            ({ text; ll_line = line_no; kind = Plain_line } :: acc)
            (end_line + 1) rest)
  in
  go [] 1 lines

(* --- tokenizing one logical line --- *)

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let dot_operators =
  [
    (".and.", AND);
    (".or.", OR);
    (".not.", NOT);
    (".true.", TRUE);
    (".false.", FALSE);
    (".eq.", EQ);
    (".ne.", NE);
    (".lt.", LT);
    (".le.", LE);
    (".gt.", GT);
    (".ge.", GE);
  ]

let tokenize_line ?(file = "") line_no text emit =
  let n = String.length text in
  let pos = ref 0 in
  (* Span of the token currently being scanned: [start] is its first char
     (0-based), [!pos] is one past its last. Columns are 1-based. *)
  let mk_loc start =
    Ftn_diag.Loc.make ~file ~line:line_no ~col:(start + 1)
      ~end_col:(max (start + 2) (!pos + 1)) ()
  in
  let error_at start msg = error (mk_loc start) msg in
  let peek k = if !pos + k < n then Some text.[!pos + k] else None in
  let starts_with s =
    let l = String.length s in
    !pos + l <= n
    && String.lowercase_ascii (String.sub text !pos l) = s
  in
  let starts_with_dot_operator () =
    List.exists (fun (s, _) -> starts_with s) dot_operators
  in
  while !pos < n do
    let c = text.[!pos] in
    let tok_start = !pos in
    let emit_tok t = emit (mk_loc tok_start) t in
    if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = ';' then begin
      incr pos;
      emit_tok NEWLINE
    end
    else if is_digit c then begin
      (* number: integer or real; exponent letters e/d; kind suffixes like
         1.0_8 are not supported. *)
      let start = !pos in
      while !pos < n && is_digit text.[!pos] do
        incr pos
      done;
      let is_real = ref false in
      let is_double = ref false in
      (* fractional part: a '.' belongs to the number unless it starts a
         dot-operator (keeps "1.and.2" working) *)
      (if !pos < n && text.[!pos] = '.' && not (starts_with_dot_operator ())
       then begin
         is_real := true;
         incr pos;
         while !pos < n && is_digit text.[!pos] do
           incr pos
         done
       end);
      (match if !pos < n then Some (Char.lowercase_ascii text.[!pos]) else None with
      | Some ('e' | 'd') -> (
        let exp_char = Char.lowercase_ascii text.[!pos] in
        let save = !pos in
        incr pos;
        if !pos < n && (text.[!pos] = '+' || text.[!pos] = '-') then incr pos;
        if !pos < n && is_digit text.[!pos] then begin
          while !pos < n && is_digit text.[!pos] do
            incr pos
          done;
          is_real := true;
          if exp_char = 'd' then is_double := true
        end
        else pos := save)
      | _ -> ());
      let lit = String.sub text start (!pos - start) in
      if !is_real then begin
        let normalized =
          String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) lit
        in
        emit_tok (REAL (float_of_string normalized, !is_double))
      end
      else
        match int_of_string_opt lit with
        | Some n -> emit_tok (INT n)
        | None ->
          error_at start ("integer literal out of range: " ^ lit)
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_alnum text.[!pos] do
        incr pos
      done;
      emit_tok (IDENT (String.lowercase_ascii (String.sub text start (!pos - start))))
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !pos >= n then error_at tok_start "unterminated string literal"
        else if text.[!pos] = quote then
          if peek 1 = Some quote then begin
            Buffer.add_char buf quote;
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf text.[!pos];
          incr pos
        end
      done;
      emit_tok (STRING (Buffer.contents buf))
    end
    else if c = '.' then begin
      match
        List.find_opt (fun (s, _) -> starts_with s) dot_operators
      with
      | Some (s, tok) ->
        pos := !pos + String.length s;
        emit_tok tok
      | None -> error_at tok_start "unexpected '.'"
    end
    else begin
      let two = if !pos + 1 < n then String.sub text !pos 2 else "" in
      match two with
      | "**" ->
        pos := !pos + 2;
        emit_tok POW
      | "::" ->
        pos := !pos + 2;
        emit_tok COLONCOLON
      | "==" ->
        pos := !pos + 2;
        emit_tok EQ
      | "/=" ->
        pos := !pos + 2;
        emit_tok NE
      | "<=" ->
        pos := !pos + 2;
        emit_tok LE
      | ">=" ->
        pos := !pos + 2;
        emit_tok GE
      | "=>" -> error_at tok_start "pointer association is not supported"
      | _ -> (
        incr pos;
        match c with
        | '+' -> emit_tok PLUS
        | '-' -> emit_tok MINUS
        | '*' -> emit_tok STAR
        | '/' -> emit_tok SLASH
        | '(' -> emit_tok LPAREN
        | ')' -> emit_tok RPAREN
        | ',' -> emit_tok COMMA
        | ':' -> emit_tok COLON
        | '=' -> emit_tok ASSIGN
        | '<' -> emit_tok LT
        | '>' -> emit_tok GT
        | '%' -> emit_tok PERCENT
        | c -> error_at tok_start (Fmt.str "unexpected character %C" c))
    end
  done

let tokenize ?(file = "") source =
  let out = ref [] in
  let emit loc tok =
    out := { tok; line = loc.Ftn_diag.Loc.line; loc } :: !out
  in
  let line_loc line = Ftn_diag.Loc.line_only ~file line in
  let dir_loc line text =
    (* Directive tokens span the whole directive text after the sentinel. *)
    Ftn_diag.Loc.make ~file ~line ~col:1
      ~end_col:(String.length text + 1) ()
  in
  List.iter
    (fun ll ->
      (match ll.kind with
      | Omp_line -> emit (dir_loc ll.ll_line ll.text) (OMP ll.text)
      | Acc_line -> emit (dir_loc ll.ll_line ll.text) (ACC ll.text)
      | Plain_line -> tokenize_line ~file ll.ll_line ll.text emit);
      emit (line_loc ll.ll_line) NEWLINE)
    (logical_lines ~file source);
  let last_line = List.length (String.split_on_char '\n' source) in
  emit (line_loc last_line) EOF;
  List.rev !out
