(** Lexer for free-form Fortran: case-insensitive, '!' comments, '&'
    continuations, and the '!$omp' / '!$acc' sentinels (whose directive
    text passes through as single tokens for the directive parsers). *)

type token =
  | IDENT of string  (** Lower-cased. *)
  | INT of int
  | REAL of float * bool  (** value, is-double-precision *)
  | STRING of string
  | TRUE
  | FALSE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW
  | LPAREN
  | RPAREN
  | COMMA
  | COLONCOLON
  | COLON
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | PERCENT
  | NEWLINE
  | OMP of string  (** Directive text following the !$omp sentinel. *)
  | ACC of string  (** Directive text following the !$acc sentinel. *)
  | EOF

type spanned = {
  tok : token;
  line : int;  (** = [loc.line], kept for convenience. *)
  loc : Ftn_diag.Loc.t;
      (** Column span of the token within its logical line. Exact for the
          first physical line; on '&'-continued lines columns index into
          the joined logical-line text. *)
}

exception Lex_error of string * Ftn_diag.Loc.t

val string_of_token : token -> string

val tokenize : ?file:string -> string -> spanned list
(** Whole-source tokenisation; each logical line ends in [NEWLINE] and the
    stream in [EOF]. [file] is recorded in every token's location. *)
