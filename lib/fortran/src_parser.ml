(* Recursive-descent parser for the Fortran subset. Fortran has no reserved
   words, so statements are dispatched on the leading identifier. OpenMP
   directives arrive as single OMP tokens from the lexer and are parsed by
   Omp_parser; this module pairs begin/end directives with the statements
   they enclose. *)

open Src_lexer

exception Parse_error of string * Ftn_diag.Loc.t

type state = {
  toks : spanned array;
  mutable pos : int;
}

let cur_loc st =
  if st.pos < Array.length st.toks then st.toks.(st.pos).loc
  else Ftn_diag.Loc.unknown

let error st msg = raise (Parse_error (msg, cur_loc st))

let cur st = st.toks.(st.pos).tok
let peek st k =
  if st.pos + k < Array.length st.toks then st.toks.(st.pos + k).tok else EOF

let advance st = st.pos <- st.pos + 1

let accept st tok =
  if cur st = tok then begin
    advance st;
    true
  end
  else false

let expect st tok =
  if not (accept st tok) then
    error st
      (Fmt.str "expected %s, found %s" (string_of_token tok)
         (string_of_token (cur st)))

let accept_ident st name =
  match cur st with
  | IDENT s when String.equal s name ->
    advance st;
    true
  | _ -> false

let expect_ident st name =
  if not (accept_ident st name) then
    error st
      (Fmt.str "expected %S, found %s" name (string_of_token (cur st)))

let parse_name st =
  match cur st with
  | IDENT s ->
    advance st;
    s
  | tok -> error st (Fmt.str "expected a name, found %s" (string_of_token tok))

let skip_newlines st =
  while cur st = NEWLINE do
    advance st
  done

let expect_end_of_stmt st =
  match cur st with
  | NEWLINE -> skip_newlines st
  | EOF -> ()
  | tok ->
    error st (Fmt.str "unexpected %s at end of statement" (string_of_token tok))

(* --- expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st OR then Ast.Binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st AND then Ast.Binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept st NOT then Ast.Unop (Ast.Not, parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let relop =
    match cur st with
    | EQ -> Some Ast.Eq
    | NE -> Some Ast.Ne
    | LT -> Some Ast.Lt
    | LE -> Some Ast.Le
    | GT -> Some Ast.Gt
    | GE -> Some Ast.Ge
    | _ -> None
  in
  match relop with
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec go lhs =
    if accept st PLUS then go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    else if accept st MINUS then go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    else lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    if accept st STAR then go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    else if accept st SLASH then go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    else lhs
  in
  go (parse_unary st)

and parse_unary st =
  if accept st MINUS then Ast.Unop (Ast.Neg, parse_unary st)
  else if accept st PLUS then parse_unary st
  else parse_power st

and parse_power st =
  let base = parse_primary st in
  if accept st POW then Ast.Binop (Ast.Pow, base, parse_unary st) else base

and parse_primary st =
  match cur st with
  | INT n ->
    advance st;
    Ast.Int_lit n
  | REAL (x, is_double) ->
    advance st;
    Ast.Real_lit (x, if is_double then Ast.Ty_double else Ast.Ty_real)
  | TRUE ->
    advance st;
    Ast.Logical_lit true
  | FALSE ->
    advance st;
    Ast.Logical_lit false
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | IDENT name ->
    advance st;
    if accept st LPAREN then begin
      let args = parse_expr_list st in
      expect st RPAREN;
      Ast.Index (name, args)
    end
    else Ast.Var name
  | tok ->
    error st (Fmt.str "expected expression, found %s" (string_of_token tok))

and parse_expr_list st =
  let rec go acc =
    let e = parse_expr st in
    if accept st COMMA then go (e :: acc) else List.rev (e :: acc)
  in
  go []

(* --- declarations --- *)

let type_keyword st =
  match cur st with
  | IDENT "integer" -> Some Ast.Ty_integer
  | IDENT "real" -> Some Ast.Ty_real
  | IDENT "logical" -> Some Ast.Ty_logical
  | IDENT "double" -> (
    match peek st 1 with
    | IDENT "precision" -> Some Ast.Ty_double
    | _ -> None)
  | _ -> None

let is_decl_start st =
  match type_keyword st with
  | Some _ -> (
    (* Distinguish a declaration from "real function foo" and from an
       assignment to a variable that happens to be named like a type. *)
    match peek st 1 with
    | ASSIGN | LPAREN -> ( match peek st 1 with ASSIGN -> false | _ -> true)
    | _ -> true)
  | None -> ( match cur st with IDENT "implicit" -> true | _ -> false)

let parse_dims st =
  (* (e1, e2, ...) — '*' or ':' assumed-size dims map to dynamic extents. *)
  let parse_dim st =
    if accept st STAR then Ast.Int_lit (-1)
    else if accept st COLON then Ast.Int_lit (-1)
    else parse_expr st
  in
  let rec go acc =
    let d = parse_dim st in
    if accept st COMMA then go (d :: acc) else List.rev (d :: acc)
  in
  let dims = go [] in
  expect st RPAREN;
  dims

let parse_declaration st =
  if accept_ident st "implicit" then begin
    expect_ident st "none";
    expect_end_of_stmt st;
    []
  end
  else begin
    let loc = cur_loc st in
    let base =
      match type_keyword st with
      | Some Ast.Ty_double ->
        advance st;
        advance st;
        Ast.Ty_double
      | Some ty ->
        advance st;
        ty
      | None -> error st "expected type declaration"
    in
    (* kind spec like real*8 or real(8) / real(kind=8) *)
    let base =
      if accept st STAR then begin
        match cur st with
        | INT 8 ->
          advance st;
          if base = Ast.Ty_real then Ast.Ty_double else base
        | INT _ ->
          advance st;
          base
        | _ -> error st "expected kind after '*'"
      end
      else base
    in
    let intent = ref Ast.Intent_none in
    let is_parameter = ref false in
    let common_dims = ref [] in
    let rec parse_attrs () =
      if accept st COMMA then begin
        (match cur st with
        | IDENT "intent" ->
          advance st;
          expect st LPAREN;
          (match cur st with
          | IDENT "in" -> intent := Ast.Intent_in
          | IDENT "out" -> intent := Ast.Intent_out
          | IDENT "inout" -> intent := Ast.Intent_inout
          | _ -> error st "expected in, out or inout");
          advance st;
          expect st RPAREN
        | IDENT "parameter" ->
          advance st;
          is_parameter := true
        | IDENT "dimension" ->
          advance st;
          expect st LPAREN;
          common_dims := parse_dims st
        | IDENT other -> error st ("unsupported attribute " ^ other)
        | _ -> error st "expected attribute");
        parse_attrs ()
      end
    in
    parse_attrs ();
    let _ = accept st COLONCOLON in
    let parse_item () =
      let name = parse_name st in
      let dims =
        if accept st LPAREN then parse_dims st else !common_dims
      in
      let value =
        if accept st ASSIGN then Some (parse_expr st) else None
      in
      if !is_parameter && value = None then
        error st ("parameter " ^ name ^ " needs a value");
      {
        Ast.d_name = name;
        d_type = base;
        d_dims = dims;
        d_intent = !intent;
        d_parameter = (if !is_parameter then value else None);
        d_loc = loc;
      }
    in
    let rec go acc =
      let d = parse_item () in
      if accept st COMMA then go (d :: acc) else List.rev (d :: acc)
    in
    let decls = go [] in
    expect_end_of_stmt st;
    decls
  end

(* --- statements --- *)

(* Does the current position hold an OpenMP end-directive matching
   [construct]? *)
let at_omp_end st construct =
  match cur st with
  | OMP text -> (
    match Omp_parser.parse text with
    | Omp_parser.End_directive name -> String.equal name construct
    | _ -> false
    | exception Omp_parser.Omp_error _ -> false)
  | _ -> false

let at_acc_end st construct =
  match cur st with
  | ACC text -> (
    match Acc_parser.parse text with
    | Acc_parser.End_directive name -> String.equal name construct
    | _ -> false
    | exception Acc_parser.Acc_error _ -> false)
  | _ -> false

let stmt loc kind = { Ast.s_loc = loc; s_kind = kind }

let rec parse_stmts st ~stop =
  let rec go acc =
    skip_newlines st;
    if stop () || cur st = EOF then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  let loc = cur_loc st in
  match cur st with
  | OMP text -> parse_omp_stmt st loc text
  | ACC text -> parse_acc_stmt st loc text
  | IDENT "do" -> (
    match peek st 1 with
    | IDENT "while" ->
      advance st;
      advance st;
      expect st LPAREN;
      let cond = parse_expr st in
      expect st RPAREN;
      expect_end_of_stmt st;
      let body =
        parse_stmts st ~stop:(fun () ->
            match (cur st, peek st 1) with
            | IDENT "end", IDENT "do" -> true
            | IDENT "enddo", _ -> true
            | _ -> false)
      in
      (if accept_ident st "enddo" then ()
       else begin
         expect_ident st "end";
         expect_ident st "do"
       end);
      expect_end_of_stmt st;
      stmt loc (Ast.Do_while (cond, body))
    | _ ->
      advance st;
      stmt loc (Ast.Do (parse_do_tail st)))
  | IDENT "if" ->
    advance st;
    parse_if st loc
  | IDENT "call" ->
    advance st;
    let name = parse_name st in
    let args =
      if accept st LPAREN then begin
        if accept st RPAREN then []
        else
          let args = parse_expr_list st in
          expect st RPAREN;
          args
      end
      else []
    in
    expect_end_of_stmt st;
    stmt loc (Ast.Call (name, args))
  | IDENT "print" ->
    advance st;
    expect st STAR;
    let args =
      if accept st COMMA then parse_print_items st else []
    in
    expect_end_of_stmt st;
    stmt loc (Ast.Print args)
  | IDENT "write" ->
    (* write(*,*) items — list-directed output, same as print *)
    advance st;
    expect st LPAREN;
    expect st STAR;
    expect st COMMA;
    expect st STAR;
    expect st RPAREN;
    let args =
      match cur st with
      | NEWLINE | EOF -> []
      | _ -> parse_print_items st
    in
    expect_end_of_stmt st;
    stmt loc (Ast.Print args)
  | IDENT "exit" ->
    advance st;
    expect_end_of_stmt st;
    stmt loc Ast.Exit_stmt
  | IDENT "cycle" ->
    advance st;
    expect_end_of_stmt st;
    stmt loc Ast.Cycle_stmt
  | IDENT _ ->
    (* assignment: lvalue = expr *)
    let lhs = parse_primary st in
    (match lhs with
    | Ast.Var _ | Ast.Index _ -> ()
    | _ -> error st "expected assignment target");
    expect st ASSIGN;
    let rhs = parse_expr st in
    expect_end_of_stmt st;
    stmt loc (Ast.Assign (lhs, rhs))
  | tok -> error st (Fmt.str "unexpected %s" (string_of_token tok))

and parse_print_items st =
  (* print *, items — string literals are allowed and kept as variables
     of a pseudo kind; we only support expressions and strings. *)
  let parse_item () =
    match cur st with
    | STRING s ->
      advance st;
      (* Strings in print are represented as an intrinsic marker. *)
      Ast.Intrinsic ("__str", [ Ast.Var s ])
    | _ -> parse_expr st
  in
  let rec go acc =
    let e = parse_item () in
    if accept st COMMA then go (e :: acc) else List.rev (e :: acc)
  in
  go []

and parse_do_tail st =
  (* after the 'do' keyword: var = lb, ub [, step] NEWLINE body end do *)
  let var = parse_name st in
  expect st ASSIGN;
  let lb = parse_expr st in
  expect st COMMA;
  let ub = parse_expr st in
  let step = if accept st COMMA then Some (parse_expr st) else None in
  expect_end_of_stmt st;
  let body =
    parse_stmts st ~stop:(fun () ->
        match (cur st, peek st 1) with
        | IDENT "end", IDENT "do" -> true
        | IDENT "enddo", _ -> true
        | _ -> false)
  in
  (if accept_ident st "enddo" then ()
   else begin
     expect_ident st "end";
     expect_ident st "do"
   end);
  expect_end_of_stmt st;
  { Ast.do_var = var; do_lb = lb; do_ub = ub; do_step = step; do_body = body }

and parse_if st loc =
  expect st LPAREN;
  let cond = parse_expr st in
  expect st RPAREN;
  if accept_ident st "then" then begin
    expect_end_of_stmt st;
    let stop () =
      match (cur st, peek st 1) with
      | IDENT "else", _ -> true
      | IDENT "elseif", _ -> true
      | IDENT "end", IDENT "if" -> true
      | IDENT "endif", _ -> true
      | _ -> false
    in
    let then_body = parse_stmts st ~stop in
    let rec parse_tail arms =
      if accept_ident st "elseif" then parse_elseif arms
      else if accept_ident st "else" then
        if accept_ident st "if" then parse_elseif arms
        else begin
          expect_end_of_stmt st;
          let else_body = parse_stmts st ~stop in
          close_if ();
          (List.rev arms, else_body)
        end
      else begin
        close_if ();
        (List.rev arms, [])
      end
    and parse_elseif arms =
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      expect_ident st "then";
      expect_end_of_stmt st;
      let body = parse_stmts st ~stop in
      parse_tail ((c, body) :: arms)
    and close_if () =
      if accept_ident st "endif" then ()
      else begin
        expect_ident st "end";
        expect_ident st "if"
      end;
      expect_end_of_stmt st
    in
    let arms, else_body = parse_tail [] in
    stmt loc (Ast.If ((cond, then_body) :: arms, else_body))
  end
  else begin
    (* one-line if *)
    let body = parse_stmt st in
    stmt loc (Ast.If ([ (cond, [ body ]) ], []))
  end

and parse_omp_stmt st loc text =
  let directive =
    try Omp_parser.parse ~loc text
    with Omp_parser.Omp_error (msg, l) -> raise (Parse_error (msg, l))
  in
  advance st;
  (* past the OMP token *)
  skip_newlines st;
  match directive with
  | Omp_parser.Target { clauses; combined_loop = Some { c_simd } } ->
    let map_clauses, loop_clauses =
      Omp_parser.split_combined_clauses clauses
    in
    let loop = parse_do_stmt st in
    let construct =
      if c_simd then "target parallel do simd" else "target parallel do"
    in
    consume_optional_end st construct;
    stmt loc
      (Ast.Omp_target
         ( map_clauses,
           [
             stmt loc
               (Ast.Omp_parallel_do
                  {
                    pd_simd = c_simd;
                    pd_clauses = loop_clauses;
                    pd_loop = loop;
                    pd_loc = loc;
                  });
           ] ))
  | Omp_parser.Target { clauses; combined_loop = None } ->
    let body = parse_stmts st ~stop:(fun () -> at_omp_end st "target") in
    consume_end st "target" loc;
    stmt loc (Ast.Omp_target (clauses, body))
  | Omp_parser.Target_data clauses ->
    let body =
      parse_stmts st ~stop:(fun () -> at_omp_end st "target data")
    in
    consume_end st "target data" loc;
    stmt loc (Ast.Omp_target_data (clauses, body))
  | Omp_parser.Target_enter_data clauses ->
    stmt loc (Ast.Omp_target_enter_data clauses)
  | Omp_parser.Target_exit_data clauses ->
    stmt loc (Ast.Omp_target_exit_data clauses)
  | Omp_parser.Target_update clauses ->
    stmt loc (Ast.Omp_target_update clauses)
  | Omp_parser.Parallel_do { simd; clauses } ->
    let loop = parse_do_stmt st in
    consume_optional_end st
      (if simd then "parallel do simd" else "parallel do");
    stmt loc
      (Ast.Omp_parallel_do
         { pd_simd = simd; pd_clauses = clauses; pd_loop = loop; pd_loc = loc })
  | Omp_parser.Simd clauses ->
    let loop = parse_do_stmt st in
    consume_optional_end st "simd";
    stmt loc
      (Ast.Omp_parallel_do
         { pd_simd = true; pd_clauses = clauses; pd_loop = loop; pd_loc = loc })
  | Omp_parser.End_directive name ->
    raise (Parse_error ("unmatched !$omp end " ^ name, loc))

and parse_acc_stmt st loc text =
  let directive =
    try Acc_parser.parse ~loc text
    with Acc_parser.Acc_error (msg, l) -> raise (Parse_error (msg, l))
  in
  advance st;
  skip_newlines st;
  match directive with
  | Acc_parser.Parallel_loop clauses ->
    let loop = parse_do_stmt st in
    skip_newlines st;
    if at_acc_end st "parallel loop" || at_acc_end st "kernels loop" then begin
      advance st;
      skip_newlines st
    end;
    stmt loc
      (Ast.Acc_parallel_loop
         { apl_clauses = clauses; apl_loop = loop; apl_loc = loc })
  | Acc_parser.Data clauses ->
    let body = parse_stmts st ~stop:(fun () -> at_acc_end st "data") in
    skip_newlines st;
    if at_acc_end st "data" then begin
      advance st;
      skip_newlines st
    end
    else raise (Parse_error ("missing !$acc end data", loc));
    stmt loc (Ast.Acc_data (clauses, body))
  | Acc_parser.Enter_data clauses -> stmt loc (Ast.Acc_enter_data clauses)
  | Acc_parser.Exit_data clauses -> stmt loc (Ast.Acc_exit_data clauses)
  | Acc_parser.Update clauses -> stmt loc (Ast.Acc_update clauses)
  | Acc_parser.End_directive name ->
    raise (Parse_error ("unmatched !$acc end " ^ name, loc))

and parse_do_stmt st =
  skip_newlines st;
  match cur st with
  | IDENT "do" ->
    advance st;
    parse_do_tail st
  | _ -> error st "expected a do loop after OpenMP loop directive"

and consume_end st construct loc =
  skip_newlines st;
  if at_omp_end st construct then begin
    advance st;
    skip_newlines st
  end
  else raise (Parse_error ("missing !$omp end " ^ construct, loc))

and consume_optional_end st construct =
  skip_newlines st;
  (* 'end target parallel do' also accepts the shorter 'end target
     parallel do simd' mismatch being reported by at_omp_end. *)
  if at_omp_end st construct then begin
    advance st;
    skip_newlines st
  end

(* --- program units --- *)

let parse_unit_body st ~unit_end =
  skip_newlines st;
  let decls = ref [] in
  while
    skip_newlines st;
    is_decl_start st
  do
    decls := !decls @ parse_declaration st
  done;
  let body = parse_stmts st ~stop:unit_end in
  (!decls, body)

let parse_end_unit st keyword =
  expect_ident st "end";
  if accept_ident st keyword then begin
    match cur st with
    | IDENT _ ->
      advance st;
      expect_end_of_stmt st
    | _ -> expect_end_of_stmt st
  end
  else expect_end_of_stmt st

let unit_end st () =
  match cur st with
  | IDENT "end" -> (
    match peek st 1 with
    | NEWLINE | EOF -> true
    | IDENT ("program" | "subroutine" | "function") -> true
    | _ -> false)
  | _ -> false

let parse_program_unit st =
  skip_newlines st;
  let loc = cur_loc st in
  if accept_ident st "program" then begin
    let name = parse_name st in
    expect_end_of_stmt st;
    let decls, body = parse_unit_body st ~unit_end:(unit_end st) in
    parse_end_unit st "program";
    {
      Ast.u_kind = Ast.Main_program;
      u_name = name;
      u_params = [];
      u_decls = decls;
      u_body = body;
      u_loc = loc;
    }
  end
  else if accept_ident st "subroutine" then begin
    let name = parse_name st in
    let params =
      if accept st LPAREN then begin
        if accept st RPAREN then []
        else
          let rec go acc =
            let p = parse_name st in
            if accept st COMMA then go (p :: acc) else List.rev (p :: acc)
          in
          let ps = go [] in
          expect st RPAREN;
          ps
      end
      else []
    in
    expect_end_of_stmt st;
    let decls, body = parse_unit_body st ~unit_end:(unit_end st) in
    parse_end_unit st "subroutine";
    {
      Ast.u_kind = Ast.Subroutine;
      u_name = name;
      u_params = params;
      u_decls = decls;
      u_body = body;
      u_loc = loc;
    }
  end
  else
    match type_keyword st with
    | Some result_ty when peek st 1 = IDENT "function" ->
      advance st;
      expect_ident st "function";
      let name = parse_name st in
      expect st LPAREN;
      let params =
        if accept st RPAREN then []
        else
          let rec go acc =
            let p = parse_name st in
            if accept st COMMA then go (p :: acc) else List.rev (p :: acc)
          in
          let ps = go [] in
          expect st RPAREN;
          ps
      in
      expect_end_of_stmt st;
      let decls, body = parse_unit_body st ~unit_end:(unit_end st) in
      parse_end_unit st "function";
      {
        Ast.u_kind = Ast.Function result_ty;
        u_name = name;
        u_params = params;
        u_decls = decls;
        u_body = body;
        u_loc = loc;
      }
    | _ -> error st "expected program, subroutine or function"

let parse ?file source =
  let toks = Array.of_list (Src_lexer.tokenize ?file source) in
  let st = { toks; pos = 0 } in
  let rec go acc =
    skip_newlines st;
    if cur st = EOF then List.rev acc else go (parse_program_unit st :: acc)
  in
  go []
