(** Recursive-descent parser for the Fortran subset. Directive tokens from
    the lexer are parsed by {!Omp_parser} / {!Acc_parser}; this module
    pairs begin/end directives with the statements they enclose. *)

exception Parse_error of string * Ftn_diag.Loc.t
(** Message and source location. *)

val parse : ?file:string -> string -> Ast.program
(** [file] is recorded in every AST node's location. *)
