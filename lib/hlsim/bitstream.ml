(* The packaged result of the simulated Vitis flow: the xclbin equivalent.
   Carries the synthesised kernel designs that the host runtime programs
   onto the simulated device. *)

type kernel_design = {
  kd_name : string;
  kd_schedule : Schedule.kernel_schedule;
  kd_resources : Resources.report;
  kd_function : Ftn_ir.Op.t;  (** The kernel func.func for execution. *)
}

type t = {
  xclbin_name : string;
  backend : string;  (** Registry name of the backend that built this. *)
  device_name : string;
  model : Device_model.t;  (** Timing model of the target device. *)
  frontend : Resources.frontend;
  kernels : kernel_design list;
  build_log : string list;
}

let find_kernel t name =
  List.find_opt (fun k -> String.equal k.kd_name name) t.kernels

let total_resources t =
  match t.kernels with
  | [] -> None
  | k :: _ ->
    (* the shell is shared; kernel regions add up *)
    let kernel_sum =
      List.fold_left
        (fun acc k -> Resources.add acc k.kd_resources.Resources.kernel)
        Resources.zero t.kernels
    in
    Some (kernel_sum, k.kd_resources)
