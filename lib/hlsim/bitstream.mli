(** The packaged result of the simulated Vitis flow — the xclbin
    equivalent the host runtime programs onto the simulated device. *)

type kernel_design = {
  kd_name : string;
  kd_schedule : Schedule.kernel_schedule;
  kd_resources : Resources.report;
  kd_function : Ftn_ir.Op.t;  (** The kernel func.func, for execution. *)
}

type t = {
  xclbin_name : string;
  backend : string;  (** Registry name of the backend that built this. *)
  device_name : string;
  model : Device_model.t;  (** Timing model of the target device. *)
  frontend : Resources.frontend;
  kernels : kernel_design list;
  build_log : string list;
}

val find_kernel : t -> string -> kernel_design option

val total_resources : t -> (Resources.usage * Resources.report) option
(** Sum of kernel regions plus a representative report (the shell is
    shared); [None] for an empty bitstream. *)
