(* Bitstream (de)serialisation: the simulated xclbin. The container is a
   small sectioned text format holding the build metadata and the device
   module's kernels as printed IR; loading re-parses the IR and re-runs
   scheduling and resource estimation (both deterministic), so a loaded
   bitstream is indistinguishable from a freshly synthesised one.

   Since v2 the header carries the owning backend's registry name and the
   container format version. Every simulated binary container in the
   project — this one and any backend-specific format — starts with an
   `FTN-<FORMAT> v<N>` line, so [sniff] can recognise a foreign-but-valid
   container and [load] rejects it with {!Backend_mismatch} instead of
   misinterpreting the payload as a corrupt xclbin. *)

exception Format_error of string

exception
  Backend_mismatch of { expected : string; found : string; format : string }

let magic = "FTN-XCLBIN v2"
let format_name = "XCLBIN"
let format_version = 2

(* Any FTN container header: "FTN-<FORMAT> v<N>". *)
let sniff text =
  let first =
    match String.index_opt text '\n' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  let first = String.trim first in
  match String.split_on_char ' ' first with
  | [ head; ver ]
    when String.length head > 4
         && String.sub head 0 4 = "FTN-"
         && String.length ver > 1
         && ver.[0] = 'v' -> (
    let fmt = String.sub head 4 (String.length head - 4) in
    match int_of_string_opt (String.sub ver 1 (String.length ver - 1)) with
    | Some v -> Some (fmt, v)
    | None -> None)
  | _ -> None

let header_field lines p =
  let prefixed l =
    let l = String.trim l in
    if String.length l > String.length p && String.sub l 0 (String.length p) = p
    then Some (String.sub l (String.length p) (String.length l - String.length p))
    else None
  in
  List.find_map prefixed lines

(* Backend name recorded in any FTN container, if present. *)
let sniff_backend text =
  header_field (String.split_on_char '\n' text) "backend: "

let save (bs : Bitstream.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "backend: %s" bs.Bitstream.backend;
  line "name: %s" bs.Bitstream.xclbin_name;
  line "device: %s" bs.Bitstream.device_name;
  line "frontend: %s"
    (match bs.Bitstream.frontend with
    | Resources.Clang_hls -> "clang"
    | Resources.Mlir_flow -> "mlir");
  List.iter (fun l -> line "log: %s" l) bs.Bitstream.build_log;
  line "=== MODULE ===";
  let device_module =
    Ftn_ir.Op.module_op
      ~attrs:[ ("target", Ftn_ir.Attr.String "fpga") ]
      (List.map (fun k -> k.Bitstream.kd_function) bs.Bitstream.kernels)
  in
  Buffer.add_string buf (Ftn_ir.Printer.to_string device_module);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let save_file bs path =
  let oc = open_out_bin path in
  output_string oc (save bs);
  close_out oc

let load ?(expect_backend = "vitis") ~spec text =
  (match sniff text with
  | Some (fmt, ver) when fmt = format_name && ver = format_version -> ()
  | Some (fmt, ver) ->
    (* a valid FTN container owned by another backend (or another format
       revision): structured rejection, not a parse error *)
    let found =
      match sniff_backend text with
      | Some b -> b
      | None -> Fmt.str "%s v%d" fmt ver
    in
    raise
      (Backend_mismatch
         {
           expected = expect_backend;
           found;
           format = Fmt.str "FTN-%s v%d" fmt ver;
         })
  | None -> raise (Format_error "not a simulated xclbin (bad magic)"));
  let lines = String.split_on_char '\n' text in
  let field = header_field lines in
  (match field "backend: " with
  | Some b when b <> expect_backend ->
    raise
      (Backend_mismatch { expected = expect_backend; found = b; format = magic })
  | _ -> ());
  let name = Option.value ~default:"kernel.xclbin" (field "name: ") in
  let frontend =
    match field "frontend: " with
    | Some "clang" -> Resources.Clang_hls
    | _ -> Resources.Mlir_flow
  in
  let module_text =
    match String.index_opt text '=' with
    | Some _ -> (
      let marker = "=== MODULE ===" in
      let rec find i =
        if i + String.length marker > String.length text then
          raise (Format_error "missing module section")
        else if String.sub text i (String.length marker) = marker then
          String.sub text
            (i + String.length marker)
            (String.length text - i - String.length marker)
        else find (i + 1)
      in
      find 0)
    | None -> raise (Format_error "missing module section")
  in
  let device_module =
    try Ftn_ir.Ir_parser.parse_module module_text
    with Ftn_ir.Ir_parser.Parse_error (msg, pos) ->
      raise (Format_error (Fmt.str "bad kernel IR at offset %d: %s" pos msg))
  in
  Synth.synthesise ~frontend ~backend:expect_backend ~spec ~xclbin_name:name
    device_module

let load_file ?expect_backend ~spec path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  load ?expect_backend ~spec text
