(** Bitstream (de)serialisation — the simulated xclbin container. Saving
    writes build metadata plus the kernels as printed IR; loading re-parses
    and re-synthesises (deterministically), so a loaded bitstream behaves
    exactly like a fresh one.

    The v2 header embeds the owning backend's registry name and the
    container format version; [load] raises {!Backend_mismatch} when handed
    a valid FTN container belonging to another backend (or format
    revision), and {!Format_error} only for genuinely unreadable input. *)

exception Format_error of string

exception
  Backend_mismatch of { expected : string; found : string; format : string }

val magic : string
val format_name : string
val format_version : int

val sniff : string -> (string * int) option
(** Recognise any [FTN-<FORMAT> v<N>] container header: returns the format
    name and version, [None] if the text is not an FTN container. *)

val sniff_backend : string -> string option
(** The [backend:] header field of any FTN container, if present. *)

val save : Bitstream.t -> string
val save_file : Bitstream.t -> string -> unit

val load : ?expect_backend:string -> spec:Fpga_spec.t -> string -> Bitstream.t
(** [load ~spec text] re-synthesises the contained kernels against [spec].
    [expect_backend] (default ["vitis"]) is the registry name of the
    loading backend; a container stamped with a different backend raises
    {!Backend_mismatch}. *)

val load_file :
  ?expect_backend:string -> spec:Fpga_spec.t -> string -> Bitstream.t
