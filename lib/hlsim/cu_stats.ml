(* Per-compute-unit occupancy accounting for the simulated device.

   The simulated U280 instantiates one compute unit per kernel_design in
   the programmed bitstream. Each launch occupies its kernel's CU for the
   kernel's simulated duration; everything else on the device timeline
   (transfers, launch overhead, retry backoff) is idle time from the CU's
   point of view. The table is fed by the runtime executor as launches
   retire and frozen into a snapshot for reports. *)

type cu = {
  cu_kernel : string;
  mutable cu_launches : int;
  mutable cu_busy_s : float;  (* summed simulated kernel-execution time *)
  mutable cu_fallbacks : int;  (* launches that degraded to CPU *)
}

type t = {
  tbl : (string, cu) Hashtbl.t;
  mutable order : string list;  (* first-launch order, reversed *)
}

type snapshot = {
  kernel : string;
  launches : int;
  busy_s : float;
  fallbacks : int;
  occupancy : float;  (** busy_s / device-active window, in [0, 1]. *)
}

let create () = { tbl = Hashtbl.create 7; order = [] }

let cu_for t kernel =
  match Hashtbl.find_opt t.tbl kernel with
  | Some c -> c
  | None ->
    let c =
      { cu_kernel = kernel; cu_launches = 0; cu_busy_s = 0.0; cu_fallbacks = 0 }
    in
    Hashtbl.add t.tbl kernel c;
    t.order <- kernel :: t.order;
    c

let note_launch t ~kernel ~busy_s =
  let c = cu_for t kernel in
  c.cu_launches <- c.cu_launches + 1;
  c.cu_busy_s <- c.cu_busy_s +. busy_s

let note_fallback t ~kernel =
  let c = cu_for t kernel in
  c.cu_fallbacks <- c.cu_fallbacks + 1

(* [window_s] is the span of simulated time the device was active (first
   device op to last); occupancy is busy time over that window. *)
let snapshot t ~window_s =
  List.rev_map
    (fun kernel ->
      let c = Hashtbl.find t.tbl kernel in
      let occupancy =
        if window_s > 0.0 then Float.min 1.0 (c.cu_busy_s /. window_s) else 0.0
      in
      {
        kernel;
        launches = c.cu_launches;
        busy_s = c.cu_busy_s;
        fallbacks = c.cu_fallbacks;
        occupancy;
      })
    t.order

let pp_snapshot fmt s =
  Fmt.pf fmt "cu:%-16s %4d launches  busy %10.3f us  occupancy %5.1f%%"
    s.kernel s.launches (s.busy_s *. 1e6) (s.occupancy *. 100.);
  if s.fallbacks > 0 then Fmt.pf fmt "  (%d cpu fallbacks)" s.fallbacks
