(** Per-compute-unit occupancy accounting for the simulated device.

    One compute unit per kernel in the programmed bitstream; the runtime
    executor notes each retiring launch (and each CPU fallback) against
    its kernel's CU, and reports freeze the table into snapshots. *)

type t

type snapshot = {
  kernel : string;
  launches : int;
  busy_s : float;  (** Summed simulated kernel-execution time. *)
  fallbacks : int;  (** Launches that degraded to CPU. *)
  occupancy : float;  (** [busy_s] over the device-active window, 0..1. *)
}

val create : unit -> t

val note_launch : t -> kernel:string -> busy_s:float -> unit
val note_fallback : t -> kernel:string -> unit

val snapshot : t -> window_s:float -> snapshot list
(** Snapshots in first-launch order. [window_s] is the device-active
    simulated window used as the occupancy denominator (0 yields 0). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
