(* Backend-neutral device timing model. The executor charges every cost
   through this record — it never sees an Fpga_spec — so any backend that
   can price a kernel schedule against observed loop statistics can drive
   the runtime. The closures are built once, at synthesis time, and travel
   inside the bitstream: a kernel is always timed with the model of the
   device it was compiled for. *)

type t = {
  device_name : string;
  clock_mhz : float;
  kernel_time_s : Schedule.kernel_schedule -> Timing.loop_stats -> float;
      (** Wall time of one kernel execution given observed loop entry and
          iteration counts. *)
  transfer_time_s : bytes:int -> float;  (** One host<->device DMA. *)
  launch_overhead_s : float;  (** Fixed cost per kernel launch. *)
  alloc_overhead_s : float;  (** First allocation of a named buffer. *)
}

let of_fpga_spec (spec : Fpga_spec.t) =
  {
    device_name = spec.Fpga_spec.name;
    clock_mhz = spec.Fpga_spec.clock_mhz;
    kernel_time_s = (fun ks stats -> Timing.kernel_time_s spec ks stats);
    transfer_time_s = (fun ~bytes -> Timing.transfer_time_s spec ~bytes);
    launch_overhead_s = Timing.launch_overhead_s spec;
    alloc_overhead_s = Timing.alloc_overhead_s spec;
  }
