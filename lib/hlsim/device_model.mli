(** Backend-neutral device timing model. The executor charges kernel,
    transfer, launch and allocation costs exclusively through this record;
    it is built at synthesis time and carried inside the bitstream, so a
    kernel is always timed with the model of the device it was compiled
    for. *)

type t = {
  device_name : string;
  clock_mhz : float;
  kernel_time_s : Schedule.kernel_schedule -> Timing.loop_stats -> float;
  transfer_time_s : bytes:int -> float;
  launch_overhead_s : float;
  alloc_overhead_s : float;
}

val of_fpga_spec : Fpga_spec.t -> t
(** The Vitis/U280 model: wraps {!Timing} over the given spec. *)
