(* Design-space exploration over the simd unroll factor — the extension the
   paper names as future work ("design space exploration could be added in
   the future to automatically find the best combination of directives and
   their parameters").

   For a kernel loop the model predicts, per candidate unroll factor U:
     - throughput: cycles per original iteration (from the schedule rules),
     - cost: kernel LUT usage (from the resource estimator).
   The explorer returns the Pareto frontier and the smallest U achieving
   the best throughput within an optional LUT budget. *)

type candidate = {
  unroll : int;
  cycles_per_iteration : float;
  kernel_luts : int;
  within_budget : bool;
}

type result = {
  candidates : candidate list;  (** Ascending unroll. *)
  pareto : candidate list;
      (** No other candidate is faster with fewer LUTs. *)
  best : candidate option;
      (** Fastest within budget; smallest unroll breaks ties. *)
}

(* Re-derive a loop's cost under a different unroll factor using the same
   rules as Schedule.analyse_loop. *)
let cycles_with_unroll spec (l : Schedule.loop_info) unroll =
  let open Fpga_spec in
  if not l.Schedule.pipelined then l.Schedule.cycles_per_iteration
  else begin
    let busiest =
      List.fold_left (fun acc (_, r, w) -> max acc (r + w)) 0
        l.Schedule.port_accesses
    in
    let beat =
      if spec.burst_inference then spec.burst_beat_cycles
      else spec.axi_share_cycles
    in
    let serial = unroll * busiest * beat in
    let chain =
      if l.Schedule.rmw_port && not spec.burst_inference then
        spec.rmw_chain_cycles
      else 0
    in
    let ii_total = max (max serial chain) (unroll * l.Schedule.ii_directive) in
    float_of_int (max ii_total 1) /. float_of_int unroll
  end

let luts_with_unroll spec ~frontend (ks : Schedule.kernel_schedule)
    (l : Schedule.loop_info) unroll =
  (* replace the loop's unroll and re-estimate *)
  let rec patch (x : Schedule.loop_info) =
    if x.Schedule.loop_key = l.Schedule.loop_key then
      { x with Schedule.unroll }
    else { x with Schedule.nested = List.map patch x.Schedule.nested }
  in
  let ks' = { ks with Schedule.loops = List.map patch ks.Schedule.loops } in
  (Resources.estimate ~frontend spec ks').Resources.kernel.Resources.luts

(* Evaluate one candidate factor. Pure model arithmetic — safe to run on
   any domain; observability stays with the caller. *)
let evaluate spec ~frontend ?lut_budget ks l unroll =
  let kernel_luts = luts_with_unroll spec ~frontend ks l unroll in
  let within_budget =
    match lut_budget with Some b -> kernel_luts <= b | None -> true
  in
  {
    unroll;
    cycles_per_iteration = cycles_with_unroll spec l unroll;
    kernel_luts;
    within_budget;
  }

let explore ~spec ?(frontend = Resources.Mlir_flow)
    ?(factors = [ 1; 2; 4; 8; 10; 16; 32 ]) ?lut_budget ?(domains = 0) ks
    (l : Schedule.loop_info) =
  Ftn_obs.Span.with_span_sp ~name:"dse.explore"
    ~attrs:[ ("kernel", ks.Schedule.fn_name) ]
    (fun span ->
  let factors = Array.of_list (List.sort_uniq compare factors) in
  let nf = Array.length factors in
  let out = Array.make nf None in
  let eval_range lo hi =
    for i = lo to hi - 1 do
      out.(i) <- Some (evaluate spec ~frontend ?lut_budget ks l factors.(i))
    done
  in
  let d = max 1 (min domains nf) in
  (* Fan candidate evaluation across domains; results land in a
     factor-indexed array, so the merge is the ascending-unroll order of
     the input regardless of domain count or interleaving. *)
  if d <= 1 then eval_range 0 nf
  else begin
    let chunk = (nf + d - 1) / d in
    let workers =
      List.init (d - 1) (fun k ->
          let lo = (k + 1) * chunk in
          let hi = min nf (lo + chunk) in
          Domain.spawn (fun () -> eval_range lo hi))
    in
    eval_range 0 (min nf chunk);
    List.iter Domain.join workers;
    Ftn_obs.Span.set_attr span ~key:"domains" (string_of_int d)
  end;
  let candidates =
    Array.to_list out |> List.filter_map (fun c -> c)
  in
  let dominates d c =
    d.cycles_per_iteration <= c.cycles_per_iteration
    && d.kernel_luts <= c.kernel_luts
    && (d.cycles_per_iteration < c.cycles_per_iteration
       || d.kernel_luts < c.kernel_luts)
  in
  let pareto =
    List.filter
      (fun c -> not (List.exists (fun d -> dominates d c) candidates))
      candidates
  in
  let best =
    List.fold_left
      (fun acc c ->
        if not c.within_budget then acc
        else
          match acc with
          | None -> Some c
          | Some b ->
            if
              c.cycles_per_iteration < b.cycles_per_iteration -. 1e-9
              || (Float.abs (c.cycles_per_iteration -. b.cycles_per_iteration)
                  < 1e-9
                 && c.unroll < b.unroll)
            then Some c
            else acc)
      None candidates
  in
  Ftn_obs.Metrics.incr ~by:(List.length candidates) "dse.candidates";
  (match best with
  | Some b ->
    Ftn_obs.Metrics.set_gauge "dse.best_unroll" (float_of_int b.unroll);
    Ftn_obs.Span.set_attr span ~key:"best_unroll" (string_of_int b.unroll)
  | None -> ());
  Ftn_obs.Span.set_attr span ~key:"candidates"
    (string_of_int (List.length candidates));
  { candidates; pareto; best })

(* Convenience: explore the first pipelined loop of a kernel. *)
let explore_kernel ~spec ?frontend ?factors ?lut_budget ?domains ks =
  match
    List.find_opt
      (fun (l : Schedule.loop_info) -> l.Schedule.pipelined)
      (Schedule.flatten_loops ks.Schedule.loops)
  with
  | Some l -> Some (explore ~spec ?frontend ?factors ?lut_budget ?domains ks l)
  | None -> None

let pp_candidate fmt c =
  Fmt.pf fmt "unroll=%2d  %7.2f cycles/iter  %6d kernel LUTs%s" c.unroll
    c.cycles_per_iteration c.kernel_luts
    (if c.within_budget then "" else "  (over budget)")

let pp fmt r =
  List.iter
    (fun c ->
      let mark = if List.memq c r.pareto then "*" else " " in
      Fmt.pf fmt " %s %a@." mark pp_candidate c)
    r.candidates;
  match r.best with
  | Some b -> Fmt.pf fmt " best: %a@." pp_candidate b
  | None -> Fmt.pf fmt " best: none within budget@."
