(** Design-space exploration over the simd unroll factor (the extension
    the paper lists as future work): per candidate factor the model
    predicts cycles/iteration and kernel LUT cost; the explorer returns
    the Pareto frontier and the best point within an optional budget. *)

type candidate = {
  unroll : int;
  cycles_per_iteration : float;
  kernel_luts : int;
  within_budget : bool;
}

type result = {
  candidates : candidate list;  (** Ascending unroll factor. *)
  pareto : candidate list;  (** Non-dominated candidates. *)
  best : candidate option;
      (** Fastest within budget; smallest unroll breaks ties. *)
}

val explore :
  spec:Fpga_spec.t ->
  ?frontend:Resources.frontend ->
  ?factors:int list ->
  ?lut_budget:int ->
  ?domains:int ->
  Schedule.kernel_schedule ->
  Schedule.loop_info ->
  result

val explore_kernel :
  spec:Fpga_spec.t ->
  ?frontend:Resources.frontend ->
  ?factors:int list ->
  ?lut_budget:int ->
  ?domains:int ->
  Schedule.kernel_schedule ->
  result option
(** Explore the kernel's first pipelined loop; [None] if there is none.
    [domains > 1] fans candidate evaluation across that many OCaml
    domains; the result is merged in ascending-unroll order, identical to
    the sequential result for any domain count. *)

val pp_candidate : Format.formatter -> candidate -> unit
val pp : Format.formatter -> result -> unit
