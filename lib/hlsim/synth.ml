(* Simulated v++ flow: takes a device module at the hls-dialect level, runs
   scheduling and resource estimation per kernel, and packages the result
   as a bitstream the host runtime can program. The build log mirrors the
   stages a real Vitis build reports (HLS synthesis, link, place, route). *)

open Ftn_ir
open Ftn_dialects

exception Synthesis_error of string

let synthesise ?(frontend = Resources.Mlir_flow) ?(backend = "vitis") ?model
    ~spec ?(xclbin_name = "kernel.xclbin") device_module =
  let model =
    match model with Some m -> m | None -> Device_model.of_fpga_spec spec
  in
  Ftn_obs.Span.with_span ~name:"synth.vpp"
    ~attrs:[ ("xclbin", xclbin_name) ]
    (fun () ->
  if not (Op.is_module device_module) then
    raise (Synthesis_error "device code must be a builtin.module");
  let log = ref [] in
  let say fmt = Fmt.kstr (fun s -> log := s :: !log) fmt in
  say "v++ -t hw --platform xilinx_u280 (simulated)";
  let kernels =
    List.filter_map
      (fun op ->
        if Func_d.is_func op && Func_d.has_body op then begin
          let ks, res =
            Ftn_obs.Span.with_span_sp ~name:"synth.kernel" (fun sp ->
                let ks = Schedule.analyse_kernel spec op in
                let res = Resources.estimate ~frontend spec ks in
                Ftn_obs.Span.set_attr sp ~key:"kernel" ks.Schedule.fn_name;
                (ks, res))
          in
          Ftn_obs.Metrics.incr "synth.kernels";
          Ftn_obs.Metrics.set_gauge "synth.lut_pct" res.Resources.lut_pct;
          Ftn_obs.Metrics.set_gauge "synth.bram_pct" res.Resources.bram_pct;
          Ftn_obs.Metrics.set_gauge "synth.dsp_pct" res.Resources.dsp_pct;
          Ftn_obs.Log.infof "synth %s: lut %.2f%% bram %.2f%% dsp %.2f%%"
            ks.Schedule.fn_name res.Resources.lut_pct res.Resources.bram_pct
            res.Resources.dsp_pct;
          say "HLS synthesis: %s" ks.Schedule.fn_name;
          List.iter
            (fun (l : Schedule.loop_info) ->
              say
                "  loop@%d: II achieved %.0f cycles/iter (unroll %d%s)"
                l.Schedule.loop_key l.Schedule.cycles_per_iteration
                l.Schedule.unroll
                (if l.Schedule.rmw_port && l.Schedule.unroll = 1 then
                   ", serialised on unresolved m_axi RMW dependence"
                 else ""))
            (Schedule.flatten_loops ks.Schedule.loops);
          say "  resources: %s" (Fmt.str "%a" Resources.pp res);
          Some
            {
              Bitstream.kd_name = ks.Schedule.fn_name;
              kd_schedule = ks;
              kd_resources = res;
              kd_function = op;
            }
        end
        else None)
      (Op.module_body device_module)
  in
  if kernels = [] then
    raise (Synthesis_error "device module contains no kernel functions");
  say "link + place + route: ok";
  say "bitstream: %s" xclbin_name;
  {
    Bitstream.xclbin_name;
    backend;
    device_name = spec.Fpga_spec.name;
    model;
    frontend;
    kernels;
    build_log = List.rev !log;
  })
