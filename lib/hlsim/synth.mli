(** Simulated v++ flow: schedules and estimates every kernel function of a
    device module and packages the result as a {!Bitstream.t}. *)

exception Synthesis_error of string

val synthesise :
  ?frontend:Resources.frontend ->
  ?backend:string ->
  ?model:Device_model.t ->
  spec:Fpga_spec.t ->
  ?xclbin_name:string ->
  Ftn_ir.Op.t ->
  Bitstream.t
(** [synthesise ~spec device_module] runs the simulated HLS + link + place
    + route flow against [spec] — there is no default device; the spec
    always flows from the selected backend. [backend] stamps the registry
    name into the bitstream (default ["vitis"]); [model] overrides the
    timing model carried in the bitstream (default: the spec's Vitis
    model). Raises {!Synthesis_error} if the module is not a
    builtin.module or contains no kernel functions. *)
