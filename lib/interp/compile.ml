(* Closure-compiled execution engine.

   [compile_function] walks a func.func body once and produces a tree of
   [code : frame -> unit] closures: op-name dispatch, constant and
   attribute decoding, cmp-predicate resolution, loop-part destructuring,
   result arities and callee resolution are all paid at compile time. SSA
   values are renumbered into a per-function dense slot space so a frame
   is a plain [Rtval.t array] rather than the tree-walker's hashtable.

   The engine preserves [Tree]'s observable contract exactly:
   - [steps] is bumped once per executed op (including no-op terminators)
     before the op runs, and the [max_steps] error fires at the same op;
   - handlers still intercept ops before default semantics — ops whose
     name matches a handler's [domain] compile to a trampoline that tries
     the matching handlers and falls back to the compiled default;
   - [on_loop] fires for scf.for with the same [loop_key] (the induction
     value's id) and the same trip count;
   - f32 results round per operation, as in [Tree].

   Structurally malformed ops (wrong operand count, bad predicate,
   missing attribute) compile to a closure raising the tree-walker's
   error message when — and only when — the op would execute, so dead
   malformed code stays dead, as under the tree-walker.

   Compiled functions are cached per interpreter state, keyed by the
   func.func op's physical identity, so func.call sites and kernel
   relaunches reuse code. Compilation is lazy: a call site only forces
   its callee's compilation on first execution (this also handles
   recursion). *)

open Ftn_ir
open Ftn_dialects
module Span = Ftn_obs.Span
module Metrics = Ftn_obs.Metrics

type frame = Rtval.t array
type code = frame -> unit

let error = Tree.error

(* A closure raising [fmt] when executed — deferred so malformed ops only
   fail if reached, mirroring the tree-walker's runtime errors. *)
let raisef fmt =
  Fmt.kstr (fun s -> fun (_ : frame) -> raise (Tree.Interp_error s)) fmt

(* Compiled entry for one function: the op and its lazily-built closure. *)
type entry = {
  e_fn : Op.t;
  mutable e_call : (Rtval.t list -> Rtval.t list) option;
}

type cache = {
  mutable entries : (Op.t * entry) list;  (** Keyed by physical identity. *)
  scratch : Tree.frame;
      (** Frame handed to handler trampolines, with the intercepted op's
          operands bound. *)
}

type Tree.cache += Compiled of cache

let get_cache (st : Tree.state) =
  match st.Tree.exec_cache with
  | Compiled c -> c
  | _ ->
    let c = { entries = []; scratch = Tree.new_frame () } in
    st.Tree.exec_cache <- Compiled c;
    c

let entry_for cache fn =
  match List.assq_opt fn cache.entries with
  | Some e -> e
  | None ->
    let e = { e_fn = fn; e_call = None } in
    cache.entries <- (fn, e) :: cache.entries;
    e

(* Slot assignment: first reference wins a fresh dense index. Compilation
   visits defs and uses in program order, so a function's params, op
   results and block args all land in one contiguous slot space. *)
type ctx = {
  st : Tree.state;
  cache : cache;
  slots : (int, int) Hashtbl.t;
  mutable nslots : int;
}

let slot ctx v =
  let id = Value.id v in
  match Hashtbl.find_opt ctx.slots id with
  | Some s -> s
  | None ->
    let s = ctx.nslots in
    ctx.nslots <- s + 1;
    Hashtbl.add ctx.slots id s;
    s

let slot_array ctx vs = Array.of_list (List.map (slot ctx) vs)

(* Execute a compiled op sequence, accounting one step per op before it
   runs — exactly [Tree.exec_op]'s bump-then-check-then-execute order. *)
let run_seq (st : Tree.state) (codes : code array) (f : frame) =
  for i = 0 to Array.length codes - 1 do
    st.Tree.steps <- st.Tree.steps + 1;
    if st.Tree.steps > st.Tree.max_steps then error "step limit exceeded";
    (Array.unsafe_get codes i) f
  done

(* Parallel slot-to-slot copy. Reads all sources before writing (via a
   per-closure scratch buffer) so overlapping src/dst sets — a yield
   forwarding an iter arg — behave like the tree-walker's read-the-list-
   then-bind sequence. The scratch is safe to share across invocations:
   no interpreted code runs between its fill and drain. *)
let copy_slots ~src ~dst =
  let n = Array.length src in
  if Array.length dst <> n then
    invalid_arg "Compile.copy_slots: length mismatch";
  if n = 0 then fun (_ : frame) -> ()
  else if n = 1 then (
    let s = src.(0) and d = dst.(0) in
    fun f -> f.(d) <- f.(s))
  else
    let tmp = Array.make n Rtval.Unit in
    fun f ->
      for k = 0 to n - 1 do
        tmp.(k) <- f.(src.(k))
      done;
      for k = 0 to n - 1 do
        f.(dst.(k)) <- tmp.(k)
      done

(* Write a runtime result list into result slots, with the tree-walker's
   arity error. *)
let set_result_list op (dst : int array) (f : frame) rvs =
  let n = Array.length dst in
  let err () =
    error "%s produced %d values for %d results" (Op.name op)
      (List.length rvs) n
  in
  let rec go k = function
    | [] -> if k <> n then err ()
    | v :: rest ->
      if k >= n then err ()
      else begin
        f.(dst.(k)) <- v;
        go (k + 1) rest
      end
  in
  go 0 rvs

let rec force st cache entry =
  match entry.e_call with
  | Some c -> c
  | None ->
    let c = compile_function st cache entry.e_fn in
    entry.e_call <- Some c;
    c

and compile_function st cache fn =
  let fname = Option.value ~default:"?" (Func_d.func_name fn) in
  let sp_ref = ref None in
  let code =
    Span.with_span_sp ~name:"interp.compile" ~attrs:[ ("fn", fname) ]
      (fun sp ->
        sp_ref := Some sp;
        compile_fn_body st cache fn fname)
  in
  (match !sp_ref with
  | Some sp -> Metrics.observe "interp.compile_ms" (sp.Span.dur_s *. 1000.)
  | None -> ());
  Metrics.incr "interp.compiled_fns";
  code

and compile_fn_body st cache fn fname =
  let ctx = { st; cache; slots = Hashtbl.create 64; nslots = 0 } in
  let param_slots = slot_array ctx (Func_d.params fn) in
  let codes = compile_seq ctx (Func_d.body fn) in
  let nslots = ctx.nslots in
  let nparams = Array.length param_slots in
  fun args ->
    let f = Array.make nslots Rtval.Unit in
    let arity_err () =
      error "function %s called with %d arguments (expects %d)" fname
        (List.length args) nparams
    in
    let rec bind k = function
      | [] -> if k <> nparams then arity_err ()
      | v :: rest ->
        if k >= nparams then arity_err ()
        else begin
          f.(param_slots.(k)) <- v;
          bind (k + 1) rest
        end
    in
    bind 0 args;
    try
      run_seq st codes f;
      []
    with Tree.Return rvs -> rvs

and compile_seq ctx ops = Array.of_list (List.map (compile_op ctx) ops)

(* Handler interception: ops whose name falls in some handler's domain get
   a trampoline. The matching handlers are selected at compile time; at
   run time the trampoline evaluates the operands, binds them into the
   shared scratch tree-frame (handlers expect a [Tree.frame]) and tries
   the handlers in order, falling back to the compiled default. *)
and compile_op ctx op : code =
  let code = compile_op_dispatch ctx op in
  (* The profiling decision is paid at compile time: when enabled, the
     op's shared counter ref is resolved once and each execution is a
     single [incr]; when disabled the closure is untouched. Functions
     compiled while profiling was off stay uninstrumented (the cache is
     per interpreter state, which never outlives a run). *)
  if !Ftn_obs.Profile.on then begin
    let c = Ftn_obs.Profile.op_counter (Op.name op) in
    fun f ->
      incr c;
      code f
  end
  else code

and compile_op_dispatch ctx op : code =
  let base = compile_default ctx op in
  let name = Op.name op in
  match
    List.filter
      (fun h -> Tree.domain_matches h.Tree.h_domain name)
      ctx.st.Tree.handlers
  with
  | [] -> base
  | hs ->
    let operand_binds =
      List.map (fun v -> (Value.id v, slot ctx v)) (Op.operands op)
    in
    let result_slots = slot_array ctx (Op.results op) in
    let st = ctx.st in
    let scratch = ctx.cache.scratch in
    fun f ->
      let vals = List.map (fun (_, s) -> f.(s)) operand_binds in
      List.iter
        (fun (id, s) -> Hashtbl.replace scratch.Tree.vals id f.(s))
        operand_binds;
      let rec try_handlers = function
        | [] -> base f
        | h :: rest -> (
          match Tree.run_handler h st scratch op vals with
          | Some rvs -> set_result_list op result_slots f rvs
          | None -> try_handlers rest)
      in
      try_handlers hs

and compile_default ctx op : code =
  let name = Op.name op in
  let sl v = slot ctx v in
  let d1 () = sl (Op.result1 op) in
  let int_binop g =
    match Op.operands op with
    | [ a; b ] ->
      let a = sl a and b = sl b in
      let d = d1 () in
      fun f ->
        f.(d) <- Rtval.Int (g (Rtval.as_int f.(a)) (Rtval.as_int f.(b)))
    | _ -> raisef "%s expects two operands" name
  in
  (* andi/ori/xori act on booleans when both operands are booleans. *)
  let int_logic bool_g int_g =
    match Op.operands op with
    | [ a; b ] ->
      let a = sl a and b = sl b in
      let d = d1 () in
      fun f ->
        f.(d) <-
          (match (f.(a), f.(b)) with
          | Rtval.Bool x, Rtval.Bool y -> Rtval.Bool (bool_g x y)
          | x, y -> Rtval.Int (int_g (Rtval.as_int x) (Rtval.as_int y)))
    | _ -> raisef "%s expects two operands" name
  in
  (* Division operators check the divisor first, like the tree-walker. *)
  let int_div g msg =
    match Op.operands op with
    | [ a; b ] ->
      let a = sl a and b = sl b in
      let d = d1 () in
      fun f ->
        let y = Rtval.as_int f.(b) in
        if y = 0 then error "%s" msg
        else f.(d) <- Rtval.Int (g (Rtval.as_int f.(a)) y)
    | _ -> raisef "%s expects two operands" name
  in
  let float_binop g =
    match Op.operands op with
    | [ a; b ] ->
      let a = sl a and b = sl b in
      let d = d1 () in
      (* f32-typed arithmetic rounds to single precision per operation *)
      (match Value.ty (Op.result1 op) with
      | Types.F32 ->
        fun f ->
          f.(d) <-
            Rtval.Float
              (Rtval.round_to_elt Types.F32
                 (g (Rtval.as_float f.(a)) (Rtval.as_float f.(b))))
      | _ ->
        fun f ->
          f.(d) <- Rtval.Float (g (Rtval.as_float f.(a)) (Rtval.as_float f.(b))))
    | _ -> raisef "%s expects two operands" name
  in
  let nop : code = fun _ -> () in
  match name with
  | "arith.constant" -> (
    match Op.find_attr op "value" with
    | Some (Attr.Int (n, Types.I1)) ->
      let d = d1 () and rv = Rtval.Bool (n <> 0) in
      fun f -> f.(d) <- rv
    | Some (Attr.Int (n, _)) ->
      let d = d1 () and rv = Rtval.Int n in
      fun f -> f.(d) <- rv
    | Some (Attr.Float (x, _)) ->
      let d = d1 () and rv = Rtval.Float x in
      fun f -> f.(d) <- rv
    | Some (Attr.Bool b) ->
      let d = d1 () and rv = Rtval.Bool b in
      fun f -> f.(d) <- rv
    | _ -> raisef "arith.constant without a value")
  | "arith.addi" -> int_binop ( + )
  | "arith.subi" -> int_binop ( - )
  | "arith.muli" -> int_binop ( * )
  | "arith.divsi" -> int_div ( / ) "integer division by zero"
  | "arith.remsi" -> int_div (fun x y -> x mod y) "integer remainder by zero"
  | "arith.maxsi" -> int_binop max
  | "arith.minsi" -> int_binop min
  | "arith.andi" -> int_logic ( && ) ( land )
  | "arith.ori" -> int_logic ( || ) ( lor )
  | "arith.xori" -> int_logic ( <> ) ( lxor )
  | "arith.addf" -> float_binop ( +. )
  | "arith.subf" -> float_binop ( -. )
  | "arith.mulf" -> float_binop ( *. )
  | "arith.divf" -> float_binop ( /. )
  | "arith.maximumf" -> float_binop Float.max
  | "arith.minimumf" -> float_binop Float.min
  | "arith.negf" -> (
    match Op.operands op with
    | [ a ] ->
      let a = sl a in
      let d = d1 () in
      fun f -> f.(d) <- Rtval.Float (-.Rtval.as_float f.(a))
    | _ -> raisef "arith.negf expects one operand")
  | "arith.cmpi" -> (
    match (Op.operands op, Op.string_attr op "predicate") with
    | [ a; b ], Some pred_s -> (
      match Arith.int_pred_of_string pred_s with
      | Some pred ->
        let a = sl a and b = sl b in
        let d = d1 () in
        fun f ->
          f.(d) <-
            Rtval.Bool
              (Arith.eval_int_pred pred (Rtval.as_int f.(a))
                 (Rtval.as_int f.(b)))
      | None -> raisef "unknown cmpi predicate %s" pred_s)
    | _ -> raisef "malformed arith.cmpi")
  | "arith.cmpf" -> (
    match (Op.operands op, Op.string_attr op "predicate") with
    | [ a; b ], Some pred_s -> (
      match Arith.float_pred_of_string pred_s with
      | Some pred ->
        let a = sl a and b = sl b in
        let d = d1 () in
        fun f ->
          f.(d) <-
            Rtval.Bool
              (Arith.eval_float_pred pred (Rtval.as_float f.(a))
                 (Rtval.as_float f.(b)))
      | None -> raisef "unknown cmpf predicate %s" pred_s)
    | _ -> raisef "malformed arith.cmpf")
  | "arith.select" -> (
    match Op.operands op with
    | [ c; t; e ] ->
      let c = sl c and t = sl t and e = sl e in
      let d = d1 () in
      fun f -> f.(d) <- (if Rtval.as_bool f.(c) then f.(t) else f.(e))
    | _ -> raisef "arith.select expects three operands")
  | "arith.index_cast" | "arith.extsi" | "arith.trunci" | "arith.sitofp"
  | "arith.fptosi" | "arith.extf" | "arith.truncf" -> (
    match Op.operands op with
    | [ a ] -> (
      let a = sl a in
      let d = d1 () in
      match Value.ty (Op.result1 op) with
      | Types.F32 ->
        fun f ->
          f.(d) <-
            Rtval.Float (Rtval.round_to_elt Types.F32 (Rtval.as_float f.(a)))
      | Types.F64 -> fun f -> f.(d) <- Rtval.Float (Rtval.as_float f.(a))
      | Types.I1 -> fun f -> f.(d) <- Rtval.Bool (Rtval.as_bool f.(a))
      | _ -> fun f -> f.(d) <- Rtval.Int (Rtval.as_int f.(a)))
    | _ -> raisef "%s expects one operand" name)
  | "math.sqrt" | "math.exp" | "math.log" | "math.sin" | "math.cos"
  | "math.tanh" | "math.absf" -> (
    match Op.operands op with
    | [ a ] -> (
      match Math_d.unary_fn name with
      | Some g ->
        let a = sl a in
        let d = d1 () in
        fun f -> f.(d) <- Rtval.Float (g (Rtval.as_float f.(a)))
      | None -> raisef "cannot evaluate %s" name)
    | _ -> raisef "%s expects one operand" name)
  | "math.powf" -> (
    match Op.operands op with
    | [ a; b ] ->
      let a = sl a and b = sl b in
      let d = d1 () in
      fun f ->
        f.(d) <-
          Rtval.Float (Float.pow (Rtval.as_float f.(a)) (Rtval.as_float f.(b)))
    | _ -> raisef "math.powf expects two operands")
  | "memref.alloca" | "memref.alloc" -> (
    match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let dyn_slots = List.map sl (Op.operands op) in
      let d = sl (Op.result1 op) in
      let elt = mi.Types.elt and mspace = mi.Types.memory_space in
      fun f ->
        let dynamic = List.map (fun s -> Rtval.as_int f.(s)) dyn_slots in
        let shape = Tree.resolve_shape mi dynamic in
        f.(d) <- Rtval.Buf (Rtval.alloc_buffer ~memory_space:mspace elt shape)
    | _ -> raisef "allocation must produce a memref")
  | "memref.dealloc" -> nop
  | "memref.load" -> (
    match Op.operands op with
    | buf :: indices -> (
      let b = sl buf in
      let d = d1 () in
      match List.map sl indices with
      | [] -> fun f -> f.(d) <- Rtval.load (Rtval.as_buffer f.(b)) []
      | [ i ] ->
        fun f ->
          f.(d) <- Rtval.load (Rtval.as_buffer f.(b)) [ Rtval.as_int f.(i) ]
      | [ i; j ] ->
        fun f ->
          f.(d) <-
            Rtval.load (Rtval.as_buffer f.(b))
              [ Rtval.as_int f.(i); Rtval.as_int f.(j) ]
      | idx ->
        fun f ->
          f.(d) <-
            Rtval.load (Rtval.as_buffer f.(b))
              (List.map (fun s -> Rtval.as_int f.(s)) idx))
    | [] -> raisef "memref.load expects operands")
  | "memref.store" -> (
    match Op.operands op with
    | value :: buf :: indices -> (
      let v = sl value and b = sl buf in
      match List.map sl indices with
      | [] -> fun f -> Rtval.store (Rtval.as_buffer f.(b)) [] f.(v)
      | [ i ] ->
        fun f ->
          Rtval.store (Rtval.as_buffer f.(b)) [ Rtval.as_int f.(i) ] f.(v)
      | [ i; j ] ->
        fun f ->
          Rtval.store (Rtval.as_buffer f.(b))
            [ Rtval.as_int f.(i); Rtval.as_int f.(j) ]
            f.(v)
      | idx ->
        fun f ->
          Rtval.store (Rtval.as_buffer f.(b))
            (List.map (fun s -> Rtval.as_int f.(s)) idx)
            f.(v))
    | _ -> raisef "memref.store expects operands")
  | "memref.dim" -> (
    match Op.operands op with
    | [ buf; idx ] ->
      let b = sl buf and i = sl idx in
      let d = d1 () in
      fun f -> (
        let bv = Rtval.as_buffer f.(b) in
        match List.nth_opt bv.Rtval.shape (Rtval.as_int f.(i)) with
        | Some n -> f.(d) <- Rtval.Int n
        | None -> error "memref.dim out of range")
    | _ -> raisef "memref.dim expects two operands")
  | "memref.copy" -> (
    match Op.operands op with
    | [ src; dst ] ->
      let s = sl src and d = sl dst in
      fun f ->
        Rtval.copy_into ~src:(Rtval.as_buffer f.(s))
          ~dst:(Rtval.as_buffer f.(d))
    | _ -> raisef "memref.copy expects two operands")
  | "memref.dma_start" -> (
    match Op.operands op with
    | [ src; dst ] ->
      let s = sl src and d = sl dst in
      fun f ->
        Rtval.copy_into ~src:(Rtval.as_buffer f.(s))
          ~dst:(Rtval.as_buffer f.(d))
    | _ -> raisef "memref.dma_start expects two operands")
  | "memref.dma_wait" -> nop
  | "memref.cast" -> (
    match Op.operands op with
    | [ a ] ->
      let a = sl a in
      let d = d1 () in
      fun f -> f.(d) <- f.(a)
    | _ -> raisef "memref.cast expects one operand")
  | "scf.for" -> compile_for ctx op
  | "scf.if" -> compile_if ctx op
  | "scf.while" -> compile_while ctx op
  | "scf.yield" | "scf.condition" | "omp.yield" | "omp.terminator" -> nop
  | "func.call" | "fir.call" -> compile_call ctx op
  | "func.return" -> (
    match List.map sl (Op.operands op) with
    | [] -> fun _ -> raise (Tree.Return [])
    | srcs -> fun f -> raise (Tree.Return (List.map (fun s -> f.(s)) srcs)))
  | "func.func" -> nop
  | "builtin.module" -> nop
  | "builtin.unrealized_conversion_cast" -> (
    match Op.operands op with
    | [ a ] ->
      let a = sl a in
      let d = d1 () in
      fun f -> f.(d) <- f.(a)
    | _ -> raisef "unrealized cast expects one operand")
  | "omp.map_info" -> (
    match Op.operands op with
    | var :: _ ->
      let s = sl var in
      let d = d1 () in
      fun f -> f.(d) <- f.(s)
    | [] -> raisef "omp.map_info expects the variable operand")
  | "omp.bounds_info" ->
    let d = d1 () in
    fun f -> f.(d) <- Rtval.Int 0
  | "omp.target" -> compile_region_entry ctx op "malformed omp.target"
  | "omp.target_data" ->
    let body = compile_seq ctx (Op.region_body op 0) in
    let st = ctx.st in
    fun f -> run_seq st body f
  | "omp.target_enter_data" | "omp.target_exit_data" | "omp.target_update"
    ->
    nop
  | "omp.parallel_do" -> compile_parallel_do ctx op
  | "acc.copy_info" -> (
    match Op.operands op with
    | var :: _ ->
      let s = sl var in
      let d = d1 () in
      fun f -> f.(d) <- f.(s)
    | [] -> raisef "acc.copy_info expects the variable operand")
  | "acc.parallel" -> compile_region_entry ctx op "malformed acc.parallel"
  | "acc.data" ->
    let body = compile_seq ctx (Op.region_body op 0) in
    let st = ctx.st in
    fun f -> run_seq st body f
  | "acc.enter_data" | "acc.exit_data" | "acc.update" -> nop
  | "acc.loop" -> compile_acc_loop ctx op
  | "acc.yield" | "acc.terminator" -> nop
  | "hls.pipeline" | "hls.unroll" | "hls.interface" | "hls.array_partition"
  | "hls.dataflow" ->
    nop
  | "hls.axi_protocol" -> (
    match Op.operands op with
    | [ a ] ->
      let a = sl a in
      let d = d1 () in
      fun f -> f.(d) <- Rtval.Proto (Rtval.as_int f.(a))
    | _ -> raisef "hls.axi_protocol expects one operand")
  | "hls.stream_create" ->
    let d = d1 () in
    fun f -> f.(d) <- Rtval.StreamQ (Queue.create ())
  | "hls.stream_read" -> (
    match Op.operands op with
    | [ a ] ->
      let a = sl a in
      let d = d1 () in
      fun f -> (
        match f.(a) with
        | Rtval.StreamQ q ->
          if Queue.is_empty q then error "read on an empty hls.stream"
          else f.(d) <- Queue.pop q
        | _ -> error "hls.stream_read expects a stream")
    | _ -> raisef "hls.stream_read expects a stream")
  | "hls.stream_write" -> (
    match Op.operands op with
    | [ a; v ] ->
      let a = sl a and v = sl v in
      fun f -> (
        match f.(a) with
        | Rtval.StreamQ q -> Queue.push f.(v) q
        | _ -> error "hls.stream_write expects a stream and a value")
    | _ -> raisef "hls.stream_write expects a stream and a value")
  | other -> raisef "no semantics for operation %s" other

(* omp.target / acc.parallel: bind the region's block args from the op's
   operands, then run the body inline. *)
and compile_region_entry ctx op malformed : code =
  let blk = Op.region_block op 0 in
  if List.length blk.Op.args <> List.length (Op.operands op) then
    raisef "%s" malformed
  else begin
    let bind =
      copy_slots
        ~src:(slot_array ctx (Op.operands op))
        ~dst:(slot_array ctx blk.Op.args)
    in
    let body = compile_seq ctx blk.Op.body in
    let st = ctx.st in
    fun f ->
      bind f;
      run_seq st body f
  end

and compile_call ctx op : code =
  match Op.symbol_attr op "callee" with
  | None -> raisef "call without callee"
  | Some callee -> (
    match Tree.find_function ctx.st callee with
    | None -> raisef "call to unknown function %s" callee
    | Some fn ->
      let arg_slots = List.map (slot ctx) (Op.operands op) in
      let result_slots = slot_array ctx (Op.results op) in
      let entry = entry_for ctx.cache fn in
      let st = ctx.st and cache = ctx.cache in
      fun f ->
        let args = List.map (fun s -> f.(s)) arg_slots in
        let rvs = (force st cache entry) args in
        set_result_list op result_slots f rvs)

and compile_for ctx op : code =
  match Scf.for_parts op with
  | None -> raisef "malformed scf.for"
  | Some parts ->
    if
      List.length parts.Scf.iter_inits <> List.length parts.Scf.iter_args
      || List.length (Op.results op) <> List.length parts.Scf.iter_args
    then raisef "malformed scf.for"
    else begin
      let lb_s = slot ctx parts.Scf.lb in
      let ub_s = slot ctx parts.Scf.ub in
      let step_s = slot ctx parts.Scf.step in
      let init_slots = slot_array ctx parts.Scf.iter_inits in
      let ind_s = slot ctx parts.Scf.induction in
      let arg_slots = slot_array ctx parts.Scf.iter_args in
      let res_slots = slot_array ctx (Op.results op) in
      let body = compile_seq ctx parts.Scf.body in
      (* Iter values live in the block-arg slots across iterations: a
         trailing yield writes them back, results read them at exit. *)
      let yield_copy =
        match List.rev parts.Scf.body with
        | last :: _
          when Scf.is_yield last
               && List.length (Op.operands last) = Array.length arg_slots ->
          copy_slots ~src:(slot_array ctx (Op.operands last)) ~dst:arg_slots
        | _ -> fun _ -> ()
      in
      let init_copy = copy_slots ~src:init_slots ~dst:arg_slots in
      let res_copy = copy_slots ~src:arg_slots ~dst:res_slots in
      let ind_id = Value.id parts.Scf.induction in
      let st = ctx.st in
      fun f ->
        let lb = Rtval.as_int f.(lb_s) in
        let ub = Rtval.as_int f.(ub_s) in
        let step = Rtval.as_int f.(step_s) in
        if step <= 0 then error "scf.for requires a positive step";
        init_copy f;
        let i = ref lb in
        while !i < ub do
          f.(ind_s) <- Rtval.Int !i;
          run_seq st body f;
          yield_copy f;
          i := !i + step
        done;
        (match st.Tree.on_loop with
        | Some cb ->
          cb ~loop_key:ind_id ~iters:(max 0 ((ub - lb + step - 1) / step))
        | None -> ());
        res_copy f
    end

and compile_if ctx op : code =
  match Op.operands op with
  | [] -> raisef "malformed scf.if"
  | cond :: _ ->
    let c = slot ctx cond in
    let res_slots = slot_array ctx (Op.results op) in
    let compile_branch ops =
      let codes = compile_seq ctx ops in
      let after =
        match List.rev ops with
        | last :: _
          when Scf.is_yield last
               && List.length (Op.operands last) = Array.length res_slots ->
          copy_slots ~src:(slot_array ctx (Op.operands last)) ~dst:res_slots
        | _ ->
          if Array.length res_slots <> 0 then
            raisef "scf.if with results needs yields"
          else fun _ -> ()
      in
      (codes, after)
    in
    let then_codes, then_after = compile_branch (Op.region_body op 0) in
    let else_codes, else_after =
      compile_branch
        (if List.length (Op.regions op) > 1 then Op.region_body op 1 else [])
    in
    let st = ctx.st in
    fun f ->
      if Rtval.as_bool f.(c) then begin
        run_seq st then_codes f;
        then_after f
      end
      else begin
        run_seq st else_codes f;
        else_after f
      end

and compile_while ctx op : code =
  match Op.regions op with
  | [ [ before ]; [ after ] ] -> (
    let init_slots = slot_array ctx (Op.operands op) in
    let barg_slots = slot_array ctx before.Op.args in
    if Array.length barg_slots <> Array.length init_slots then
      raisef "malformed scf.while"
    else
      let bind_inits = copy_slots ~src:init_slots ~dst:barg_slots in
      let before_codes = compile_seq ctx before.Op.body in
      let res_slots = slot_array ctx (Op.results op) in
      let st = ctx.st in
      (* The tree-walker only discovers a malformed loop structure after
         running the before-region, so the error closures below execute it
         first — same steps, same side effects. *)
      match List.rev before.Op.body with
      | cond_op :: _ when String.equal (Op.name cond_op) "scf.condition"
        -> (
        match Op.operands cond_op with
        | c :: forwarded ->
          let c = slot ctx c in
          let fwd_slots = slot_array ctx forwarded in
          let aarg_slots = slot_array ctx after.Op.args in
          let after_codes = compile_seq ctx after.Op.body in
          if
            Array.length fwd_slots <> Array.length aarg_slots
            || Array.length fwd_slots <> Array.length res_slots
          then raisef "malformed scf.while"
          else
            let fwd_to_after = copy_slots ~src:fwd_slots ~dst:aarg_slots in
            let fwd_to_res = copy_slots ~src:fwd_slots ~dst:res_slots in
            let yield_to_bargs =
              match List.rev after.Op.body with
              | y :: _
                when Scf.is_yield y
                     && List.length (Op.operands y)
                        = Array.length barg_slots ->
                Some
                  (copy_slots
                     ~src:(slot_array ctx (Op.operands y))
                     ~dst:barg_slots)
              | _ -> None
            in
            fun f ->
              bind_inits f;
              let continue_ = ref true in
              while !continue_ do
                run_seq st before_codes f;
                if Rtval.as_bool f.(c) then begin
                  fwd_to_after f;
                  run_seq st after_codes f;
                  match yield_to_bargs with
                  | Some cp -> cp f
                  | None -> error "scf.while body must end in scf.yield"
                end
                else begin
                  continue_ := false;
                  fwd_to_res f
                end
              done
        | [] ->
          fun f ->
            bind_inits f;
            run_seq st before_codes f;
            error "scf.condition needs a condition")
      | _ ->
        fun f ->
          bind_inits f;
          run_seq st before_codes f;
          error "scf.while before-region must end in scf.condition")
  | _ -> raisef "malformed scf.while"

(* Shared n-dimensional loop nest for omp.parallel_do / acc.loop:
   inclusive upper bounds, all bounds resolved up-front (matching the
   tree-walker's evaluation order), induction variables optional past the
   block-arg count. *)
and compile_nd_loop ctx ~step_err bound_vals iv_vals body_ops : code =
  let bounds =
    Array.of_list
      (List.map
         (fun (lb, ub, step) -> (slot ctx lb, slot ctx ub, slot ctx step))
         bound_vals)
  in
  let ivs = slot_array ctx iv_vals in
  let body = compile_seq ctx body_ops in
  let st = ctx.st in
  let ndims = Array.length bounds in
  let rec mk k : (int * int * int) array -> frame -> unit =
    if k = ndims then fun _ f -> run_seq st body f
    else
      let inner = mk (k + 1) in
      if k < Array.length ivs then (
        let iv = ivs.(k) in
        fun b f ->
          let lb, ub, step = b.(k) in
          if step <= 0 then error "%s" step_err;
          let i = ref lb in
          while !i <= ub do
            f.(iv) <- Rtval.Int !i;
            inner b f;
            i := !i + step
          done)
      else
        fun b f ->
        let lb, ub, step = b.(k) in
        if step <= 0 then error "%s" step_err;
        let i = ref lb in
        while !i <= ub do
          inner b f;
          i := !i + step
        done
  in
  let runner = mk 0 in
  fun f ->
    let b =
      Array.map
        (fun (l, u, s) ->
          (Rtval.as_int f.(l), Rtval.as_int f.(u), Rtval.as_int f.(s)))
        bounds
    in
    runner b f

and compile_parallel_do ctx op : code =
  match Omp.loop_parts op with
  | None -> raisef "malformed omp.parallel_do"
  | Some parts ->
    let bound_vals =
      List.map2
        (fun (lb, ub) step -> (lb, ub, step))
        (List.combine parts.Omp.lbs parts.Omp.ubs)
        parts.Omp.steps
    in
    compile_nd_loop ctx ~step_err:"omp.parallel_do requires positive steps"
      bound_vals parts.Omp.ivs parts.Omp.loop_body

and compile_acc_loop ctx op : code =
  let collapse = Option.value ~default:1 (Op.int_attr op "collapse") in
  let blk = Op.region_block op 0 in
  let rec split i ops acc =
    if i = collapse then Some (List.rev acc)
    else
      match ops with
      | lb :: ub :: step :: rest -> split (i + 1) rest ((lb, ub, step) :: acc)
      | _ -> None
  in
  match split 0 (Op.operands op) [] with
  | None -> raisef "malformed acc.loop bounds"
  | Some bound_vals ->
    compile_nd_loop ctx ~step_err:"acc.loop requires positive steps"
      bound_vals blk.Op.args blk.Op.body

(* Public entry: run [fn] with [args] under the compiled engine, reusing
   the state's cache across calls and relaunches. *)
let call_function (st : Tree.state) fn args =
  let cache = get_cache st in
  let entry = entry_for cache fn in
  (match entry.e_call with
  | Some _ -> Metrics.incr "interp.compile_cache_hits"
  | None -> Metrics.incr "interp.compile_cache_misses");
  (force st cache entry) args
