(* Public interpreter facade: shared types re-exported from [Tree] plus
   engine dispatch between the tree-walking reference engine ([Tree]) and
   the closure-compiled engine ([Compile]). Both are referenced directly
   here so linking the facade always links both engines. *)

open Ftn_ir

exception Interp_error = Tree.Interp_error

type frame = Tree.frame

type domain = Tree.domain =
  | All
  | Names of string list

type engine = Tree.engine

type cache = Tree.cache = ..

type state = Tree.state = {
  modules : Op.t list;  (** Searched for function bodies, in order. *)
  handlers : handler list;
  mutable steps : int;  (** Executed op count. *)
  max_steps : int;
  mutable on_loop : (loop_key:int -> iters:int -> unit) option;
      (** Called after each scf.for completes with the induction variable's
          id and the trip count — the runtime's timing probe. *)
  engine : engine;
  mutable exec_cache : cache;
}

and handler = Tree.handler = {
  h_domain : domain;
  h_run : state -> frame -> Op.t -> Rtval.t list -> Rtval.t list option;
}

exception Return = Tree.Return

let handler = Tree.handler
let calls = Tree.calls_domain
let domain_matches = Tree.domain_matches
let default_engine = Tree.default_engine
let set_default_engine = Tree.set_default_engine
let make = Tree.make
let get = Tree.get
let set = Tree.set
let find_function = Tree.find_function
let main_function = Tree.main_function

let call_function state fn args =
  match state.engine with
  | `Tree -> Tree.call_function state fn args
  | `Compiled -> Compile.call_function state fn args

(* Run a function by name with the given arguments. *)
let run state ~entry ~args =
  match find_function state entry with
  | Some fn -> call_function state fn args
  | None -> Tree.error "entry function %s not found" entry
