(** IR interpreter: functionally executes modules at the core-dialect
    level.

    Default semantics cover arith, math, scf, memref and func, plus
    sequential OpenMP (omp.target executes inline, omp.parallel_do runs as
    an ordinary loop with Fortran's inclusive upper bound) so un-offloaded
    programs run as CPU references. hls directives are functional no-ops.
    device.* operations have no default semantics: the host runtime
    installs a {!handler} for them; handlers run before defaults, so
    embedders can also intercept DMA or external calls.

    Two execution engines share these semantics: [`Tree], the reference
    tree-walker ({!Tree}), and [`Compiled] (the default), which compiles
    each function body once into OCaml closures over dense slot frames
    ({!Compile}) — typically several times faster. The engines are
    observationally equivalent: same results, same [steps] counts, same
    handler and [on_loop] callbacks, same error messages on executed
    malformed ops. *)

exception Interp_error of string

type frame
(** Per-function-call value bindings. *)

type domain =
  | All  (** Consult the handler on every executed op. *)
  | Names of string list  (** Only on ops with one of these names. *)

type engine = [ `Tree | `Compiled ]

type cache = Tree.cache = ..
(** Engine-private per-state storage (the compiled engine's function
    cache); opaque to callers. *)

type state = {
  modules : Ftn_ir.Op.t list;  (** Searched for function bodies, in order. *)
  handlers : handler list;
  mutable steps : int;  (** Executed op count. *)
  max_steps : int;
  mutable on_loop : (loop_key:int -> iters:int -> unit) option;
      (** Called after each scf.for completes with the induction variable's
          id and the trip count — the runtime's timing probe. *)
  engine : engine;
  mutable exec_cache : cache;
}

and handler = {
  h_domain : domain;
  h_run :
    state -> frame -> Ftn_ir.Op.t -> Rtval.t list -> Rtval.t list option;
}
(** Receives the op and its evaluated operands; [Some results] handles the
    op, [None] defers to the next handler or the default semantics. The
    [h_domain] narrows which ops the handler is consulted for — the
    compiled engine only pays for interception on those ops. *)

exception Return of Rtval.t list

val handler :
  ?domain:domain ->
  (state -> frame -> Ftn_ir.Op.t -> Rtval.t list -> Rtval.t list option) ->
  handler
(** Build a handler; [domain] defaults to {!All}. *)

val calls : domain
(** The call ops ([func.call], [fir.call]) — the domain of intrinsic
    handlers. *)

val domain_matches : domain -> string -> bool

val default_engine : unit -> engine
val set_default_engine : engine -> unit
(** Engine used by {!make} when [?engine] is omitted; initially
    [`Compiled]. *)

val make :
  ?handlers:handler list ->
  ?max_steps:int ->
  ?engine:engine ->
  Ftn_ir.Op.t list ->
  state

val get : frame -> Ftn_ir.Value.t -> Rtval.t
val set : frame -> Ftn_ir.Value.t -> Rtval.t -> unit
val find_function : state -> string -> Ftn_ir.Op.t option

val call_function : state -> Ftn_ir.Op.t -> Rtval.t list -> Rtval.t list
(** Execute a func.func with the given arguments; returns its results. *)

val run : state -> entry:string -> args:Rtval.t list -> Rtval.t list
(** Resolve [entry] by symbol name and call it. *)

val main_function : Ftn_ir.Op.t -> Ftn_ir.Op.t option
(** The function carrying the frontend's [ftn.main] marker. *)
