(* Runtime-library intrinsics: the print routines the frontend lowers
   Fortran's print statement onto, and the type-conversion / stream helpers
   the paper's precompiled device runtime library provides. Output is
   captured in a buffer so tests and tools can inspect it. *)

open Ftn_ir

type sink = {
  buf : Buffer.t;
  mutable echo : bool;  (** Also write to stdout. *)
}

let make_sink ?(echo = false) () = { buf = Buffer.create 256; echo }

let output sink s =
  Buffer.add_string sink.buf s;
  if sink.echo then print_string s

let contents sink = Buffer.contents sink.buf
let clear sink = Buffer.clear sink.buf

let format_float x =
  if Float.is_integer x && Float.abs x < 1e10 then Fmt.str "%.6f" x
  else Fmt.str "%.6g" x

(* Handler for the ftn_print_* family. *)
let print_handler sink : Interp.handler =
  Interp.handler ~domain:Interp.calls @@ fun _state _frame op operands ->
  match Op.symbol_attr op "callee" with
  | Some "ftn_print_str" ->
    let text = Option.value ~default:"" (Op.string_attr op "text") in
    output sink (" " ^ text);
    Some []
  | Some "ftn_print_i32" -> (
    match operands with
    | [ v ] ->
      output sink (Fmt.str " %d" (Rtval.as_int v));
      Some []
    | _ -> None)
  | Some "ftn_print_i1" -> (
    match operands with
    | [ v ] ->
      output sink (if Rtval.as_bool v then " T" else " F");
      Some []
    | _ -> None)
  | Some ("ftn_print_f32" | "ftn_print_f64") -> (
    match operands with
    | [ v ] ->
      output sink (" " ^ format_float (Rtval.as_float v));
      Some []
    | _ -> None)
  | Some "ftn_print_newline" ->
    output sink "\n";
    Some []
  | _ -> None

(* Device runtime-library calls (type conversion, stream IO) referenced by
   generated device code; functional no-op equivalents. *)
let runtime_library_handler : Interp.handler =
  Interp.handler ~domain:Interp.calls @@ fun _state _frame op operands ->
  match Op.symbol_attr op "callee" with
  | Some "_hls_f32_to_f64" -> (
    match operands with
    | [ v ] -> Some [ Rtval.Float (Rtval.as_float v) ]
    | _ -> None)
  | Some "_hls_f64_to_f32" -> (
    match operands with
    | [ v ] -> Some [ Rtval.Float (Rtval.as_float v) ]
    | _ -> None)
  | Some "_hls_i32_to_f32" -> (
    match operands with
    | [ v ] -> Some [ Rtval.Float (float_of_int (Rtval.as_int v)) ]
    | _ -> None)
  | Some
      ( "_ssdm_op_SpecInterface" | "_ssdm_op_SpecPipeline"
      | "_ssdm_op_SpecUnroll" | "_ssdm_op_SpecArrayPartition"
      | "_ssdm_op_SpecDataflow" ) ->
    Some []
  | _ -> None
