(* Runtime values for the IR interpreter. Buffers model memrefs: typed,
   shaped, mutable storage shared by reference (so stores through one view
   are seen by every alias, as with real memory). *)

open Ftn_ir

type mem =
  | F of float array
  | I of int array

type buffer = {
  elt : Types.t;
  shape : int list;
  mem : mem;
  memory_space : int;
  label : string;  (* identifier for traces; "" when anonymous *)
}

type t =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Buf of buffer
  | Handle of int  (** Kernel handle. *)
  | Proto of int  (** hls.axi_protocol token. *)
  | StreamQ of t Queue.t  (** On-chip FIFO (hls.stream). *)

let buffer_size shape = List.fold_left ( * ) 1 shape

let alloc_buffer ?(memory_space = 0) ?(label = "") elt shape =
  let n = max 1 (buffer_size shape) in
  let mem =
    if Types.is_float elt then F (Array.make n 0.0) else I (Array.make n 0)
  in
  { elt; shape; mem; memory_space; label }

let buffer_len buf = buffer_size buf.shape

(* Row-major linear index. *)
let linearize shape indices =
  let rec go acc shape indices =
    match (shape, indices) with
    | [], [] -> acc
    | d :: shape, i :: indices ->
      if i < 0 || i >= d then
        invalid_arg
          (Fmt.str "index %d out of bounds for dimension of size %d" i d);
      go ((acc * d) + i) shape indices
    | _ -> invalid_arg "linearize: rank mismatch"
  in
  match (shape, indices) with
  | [], [] -> 0
  | d :: shape, i :: indices ->
    if i < 0 || i >= d then
      invalid_arg
        (Fmt.str "index %d out of bounds for dimension of size %d" i d);
    go i shape indices
  | _ -> invalid_arg "linearize: rank mismatch"

let load buf indices =
  let k = linearize buf.shape indices in
  match buf.mem with
  | F a -> Float a.(k)
  | I a -> if Types.equal buf.elt Types.I1 then Bool (a.(k) <> 0) else Int a.(k)

(* Fortran REAL stores round to single precision. *)
let round_to_elt elt x =
  match elt with
  | Ftn_ir.Types.F32 -> Int32.float_of_bits (Int32.bits_of_float x)
  | _ -> x

let store buf indices v =
  let k = linearize buf.shape indices in
  match (buf.mem, v) with
  | F a, Float x -> a.(k) <- round_to_elt buf.elt x
  | F a, Int n -> a.(k) <- float_of_int n
  | I a, Int n -> a.(k) <- n
  | I a, Bool b -> a.(k) <- (if b then 1 else 0)
  | I a, Float x -> a.(k) <- int_of_float x
  | _ -> invalid_arg "store: value/buffer type mismatch"

let copy_into ~src ~dst =
  match (src.mem, dst.mem) with
  | F a, F b -> Array.blit a 0 b 0 (min (Array.length a) (Array.length b))
  | I a, I b -> Array.blit a 0 b 0 (min (Array.length a) (Array.length b))
  | F a, I b ->
    for i = 0 to min (Array.length a) (Array.length b) - 1 do
      b.(i) <- int_of_float a.(i)
    done
  | I a, F b ->
    for i = 0 to min (Array.length a) (Array.length b) - 1 do
      b.(i) <- float_of_int a.(i)
    done

let byte_size buf = buffer_len buf * Types.byte_size buf.elt

let as_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | Float x -> int_of_float x
  | Unit | Buf _ | Handle _ | Proto _ | StreamQ _ -> invalid_arg "as_int"

let as_float = function
  | Float x -> x
  | Int n -> float_of_int n
  | Bool b -> if b then 1.0 else 0.0
  | Unit | Buf _ | Handle _ | Proto _ | StreamQ _ -> invalid_arg "as_float"

let as_bool = function
  | Bool b -> b
  | Int n -> n <> 0
  | Unit | Float _ | Buf _ | Handle _ | Proto _ | StreamQ _ ->
    invalid_arg "as_bool"

let as_buffer = function
  | Buf b -> b
  | Unit | Int _ | Float _ | Bool _ | Handle _ | Proto _ | StreamQ _ ->
    invalid_arg "as_buffer"

let float_buffer buf =
  match buf.mem with
  | F a -> a
  | I _ -> invalid_arg "float_buffer: integer buffer"

let int_buffer buf =
  match buf.mem with
  | I a -> a
  | F _ -> invalid_arg "int_buffer: float buffer"

let of_float_array ?(memory_space = 0) ?(label = "") ?shape elt a =
  let shape = match shape with Some s -> s | None -> [ Array.length a ] in
  { elt; shape; mem = F a; memory_space; label }

let of_int_array ?(memory_space = 0) ?(label = "") ?shape elt a =
  let shape = match shape with Some s -> s | None -> [ Array.length a ] in
  { elt; shape; mem = I a; memory_space; label }

let pp fmt = function
  | Unit -> Fmt.string fmt "unit"
  | Int n -> Fmt.int fmt n
  | Float x -> Fmt.float fmt x
  | Bool b -> Fmt.bool fmt b
  | Buf b ->
    Fmt.pf fmt "buffer<%a:%s>"
      (Fmt.list ~sep:(Fmt.any "x") Fmt.int)
      b.shape
      (Types.to_string b.elt)
  | Handle h -> Fmt.pf fmt "kernel#%d" h
  | Proto p -> Fmt.pf fmt "proto#%d" p
  | StreamQ q -> Fmt.pf fmt "stream<%d queued>" (Queue.length q)
