(** Runtime values for the IR interpreter. Buffers model memrefs: typed,
    shaped, mutable storage shared by reference (stores through one view
    are seen by all aliases). f32-elemented buffers round stored values to
    single precision, matching Fortran REAL semantics. *)

type mem =
  | F of float array
  | I of int array

type buffer = {
  elt : Ftn_ir.Types.t;
  shape : int list;
  mem : mem;
  memory_space : int;
  label : string;  (** Identifier shown in traces; [""] when anonymous. *)
}

type t =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Buf of buffer
  | Handle of int  (** Kernel handle. *)
  | Proto of int  (** hls.axi_protocol token. *)
  | StreamQ of t Queue.t  (** On-chip FIFO (hls.stream). *)

val alloc_buffer :
  ?memory_space:int -> ?label:string -> Ftn_ir.Types.t -> int list -> buffer
(** Zero-initialised buffer of the given element type and shape ([[]] for
    rank 0). *)

val buffer_size : int list -> int
val buffer_len : buffer -> int

val linearize : int list -> int list -> int
(** Row-major linear index; raises [Invalid_argument] when out of bounds
    or on rank mismatch. *)

val round_to_elt : Ftn_ir.Types.t -> float -> float
(** Round to the element type's precision (f32 rounds, others pass). *)

val load : buffer -> int list -> t
val store : buffer -> int list -> t -> unit

val copy_into : src:buffer -> dst:buffer -> unit
(** Element-wise copy with representation conversion, bounded by the
    shorter buffer. *)

val byte_size : buffer -> int
val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_buffer : t -> buffer
val float_buffer : buffer -> float array
val int_buffer : buffer -> int array
val of_float_array :
  ?memory_space:int -> ?label:string -> ?shape:int list ->
  Ftn_ir.Types.t -> float array -> buffer
val of_int_array :
  ?memory_space:int -> ?label:string -> ?shape:int list ->
  Ftn_ir.Types.t -> int array -> buffer
val pp : Format.formatter -> t -> unit
