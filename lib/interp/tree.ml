(* Tree-walking execution engine and the interpreter's shared types.

   This module holds everything both engines need — the interpreter
   [state], hashtable [frame]s, the [handler] protocol — plus the
   reference tree-walker: a direct recursive evaluator that re-dispatches
   on [Op.name] for every executed op. [Compile] builds the fast
   closure-compiled engine on top of these definitions, using the
   tree-walker's [exec_default] as the semantic fallback for ops it does
   not compile; [Interp] is the public facade that picks an engine.

   Default semantics cover arith, math, scf, memref, func and — so that
   un-offloaded Fortran can run as a CPU reference — sequential OpenMP
   (omp.target executes inline, omp.parallel_do runs as an ordinary loop).
   hls directives are no-ops for functional execution.

   device.* operations have no default semantics: the host runtime
   (Ftn_runtime) installs a handler for them. Handlers run before default
   semantics, so embedders can also intercept DMA transfers or external
   calls for bookkeeping. *)

open Ftn_ir
open Ftn_dialects

exception Interp_error of string

let error fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

type frame = {
  vals : (int, Rtval.t) Hashtbl.t;
}

(* Which op names a handler may intercept. Handlers declare their domain
   so the compiled engine can bake handler checks only into the ops that
   need them (and the tree-walker can skip the call for the rest). [All]
   preserves the historic behaviour of consulting the handler on every
   executed op. *)
type domain =
  | All
  | Names of string list

let calls_domain = Names [ "func.call"; "fir.call" ]

let domain_matches domain name =
  match domain with
  | All -> true
  | Names ns -> List.exists (String.equal name) ns

(* Which execution engine a state uses. [`Tree] is this module's
   reference walker; [`Compiled] is the closure-compiled engine in
   [Compile]. The tree-walker is retained as the differential-testing
   baseline, mirroring [Rewrite.Sweep]. *)
type engine = [ `Tree | `Compiled ]

(* Per-state engine scratch storage. The compiled engine hangs its
   function cache off this slot; the extensible type keeps the dependency
   pointing from [Compile] to here rather than the other way around. *)
type cache = ..
type cache += No_cache

type state = {
  modules : Op.t list;  (** Searched for func.func bodies, in order. *)
  handlers : handler list;
  mutable steps : int;  (** Executed op count (a crude work measure). *)
  max_steps : int;
  mutable on_loop : (loop_key:int -> iters:int -> unit) option;
      (** Called after each loop completes, keyed by the induction
          variable's id — used by the runtime to gather timing stats. *)
  engine : engine;
  mutable exec_cache : cache;
}

and handler = {
  h_domain : domain;
  h_run : state -> frame -> Op.t -> Rtval.t list -> Rtval.t list option;
}

let handler ?(domain = All) h_run = { h_domain = domain; h_run }

(* Invoke one handler on [op], attaching the op's source location to any
   structured runtime error that escapes without one: the runtime raises
   Fault.Error with an unknown location because only the interpreter
   knows which op was executing. Shared by both engines so errors carry
   the launching op's location regardless of how the module runs. *)
let run_handler h state frame op operand_values =
  try h.h_run state frame op operand_values
  with
  | Ftn_fault.Fault.Error (e, loc) when not (Ftn_diag.Loc.is_known loc) ->
    raise (Ftn_fault.Fault.Error (e, Op.loc op))

exception Return of Rtval.t list

let default_engine_ref : engine ref = ref `Compiled
let default_engine () = !default_engine_ref
let set_default_engine e = default_engine_ref := e

let make ?(handlers = []) ?(max_steps = 2_000_000_000) ?engine modules =
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  {
    modules;
    handlers;
    steps = 0;
    max_steps;
    on_loop = None;
    engine;
    exec_cache = No_cache;
  }

let new_frame () = { vals = Hashtbl.create 64 }

let get frame v =
  match Hashtbl.find_opt frame.vals (Value.id v) with
  | Some rv -> rv
  | None -> error "value %%%d is not bound" (Value.id v)

let set frame v rv = Hashtbl.replace frame.vals (Value.id v) rv

let set_results frame op rvs =
  try List.iter2 (set frame) (Op.results op) rvs
  with Invalid_argument _ ->
    error "%s produced %d values for %d results" (Op.name op)
      (List.length rvs)
      (List.length (Op.results op))

let find_function state name =
  List.find_map
    (fun m ->
      if Op.is_module m then
        match Op.find_function m name with
        | Some f when Func_d.has_body f -> Some f
        | _ -> None
      else None)
    state.modules

(* --- scalar operations --- *)

let lift_arith_int f a b = Rtval.Int (f (Rtval.as_int a) (Rtval.as_int b))
let lift_arith_float f a b = Rtval.Float (f (Rtval.as_float a) (Rtval.as_float b))

let eval_cast op v =
  let dst = Value.ty (Op.result1 op) in
  match dst with
  | Types.F32 -> Rtval.Float (Rtval.round_to_elt Types.F32 (Rtval.as_float v))
  | Types.F64 -> Rtval.Float (Rtval.as_float v)
  | Types.I1 -> Rtval.Bool (Rtval.as_bool v)
  | _ -> Rtval.Int (Rtval.as_int v)

(* --- op dispatch --- *)

let rec exec_op state frame op =
  state.steps <- state.steps + 1;
  if state.steps > state.max_steps then error "step limit exceeded";
  if !Ftn_obs.Profile.on then Ftn_obs.Profile.count_op (Op.name op);
  let operand_values = List.map (get frame) op.Op.operands in
  let handled =
    let name = Op.name op in
    let rec try_handlers = function
      | [] -> None
      | h :: rest -> (
        if not (domain_matches h.h_domain name) then try_handlers rest
        else
          match run_handler h state frame op operand_values with
          | Some rvs -> Some rvs
          | None -> try_handlers rest)
    in
    try_handlers state.handlers
  in
  match handled with
  | Some rvs -> set_results frame op rvs
  | None -> exec_default state frame op operand_values

and exec_default state frame op operand_values =
  let name = Op.name op in
  let operands () = operand_values in
  let ret1 rv = set frame (Op.result1 op) rv in
  match name with
  | "arith.constant" -> (
    match Op.find_attr op "value" with
    | Some (Attr.Int (n, Types.I1)) -> ret1 (Rtval.Bool (n <> 0))
    | Some (Attr.Int (n, _)) -> ret1 (Rtval.Int n)
    | Some (Attr.Float (x, _)) -> ret1 (Rtval.Float x)
    | Some (Attr.Bool b) -> ret1 (Rtval.Bool b)
    | _ -> error "arith.constant without a value")
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi"
  | "arith.remsi" | "arith.maxsi" | "arith.minsi" | "arith.andi"
  | "arith.ori" | "arith.xori" -> (
    match operands () with
    | [ a; b ] -> ret1 (eval_int_binop name a b)
    | _ -> error "%s expects two operands" name)
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.maximumf" | "arith.minimumf" -> (
    match operands () with
    | [ a; b ] ->
      (* f32-typed arithmetic rounds to single precision per operation *)
      let r = eval_float_binop name a b in
      let r =
        match (r, Value.ty (Op.result1 op)) with
        | Rtval.Float x, Types.F32 ->
          Rtval.Float (Rtval.round_to_elt Types.F32 x)
        | _ -> r
      in
      ret1 r
    | _ -> error "%s expects two operands" name)
  | "arith.negf" -> (
    match operands () with
    | [ a ] -> ret1 (Rtval.Float (-.Rtval.as_float a))
    | _ -> error "arith.negf expects one operand")
  | "arith.cmpi" -> (
    match (operands (), Op.string_attr op "predicate") with
    | [ a; b ], Some pred_s -> (
      match Arith.int_pred_of_string pred_s with
      | Some pred ->
        ret1
          (Rtval.Bool
             (Arith.eval_int_pred pred (Rtval.as_int a) (Rtval.as_int b)))
      | None -> error "unknown cmpi predicate %s" pred_s)
    | _ -> error "malformed arith.cmpi")
  | "arith.cmpf" -> (
    match (operands (), Op.string_attr op "predicate") with
    | [ a; b ], Some pred_s -> (
      match Arith.float_pred_of_string pred_s with
      | Some pred ->
        ret1
          (Rtval.Bool
             (Arith.eval_float_pred pred (Rtval.as_float a)
                (Rtval.as_float b)))
      | None -> error "unknown cmpf predicate %s" pred_s)
    | _ -> error "malformed arith.cmpf")
  | "arith.select" -> (
    match operands () with
    | [ c; t; f ] -> ret1 (if Rtval.as_bool c then t else f)
    | _ -> error "arith.select expects three operands")
  | "arith.index_cast" | "arith.extsi" | "arith.trunci" | "arith.sitofp"
  | "arith.fptosi" | "arith.extf" | "arith.truncf" -> (
    match operands () with
    | [ v ] -> ret1 (eval_cast op v)
    | _ -> error "%s expects one operand" name)
  | "math.sqrt" | "math.exp" | "math.log" | "math.sin" | "math.cos"
  | "math.tanh" | "math.absf" -> (
    match operands () with
    | [ v ] -> (
      match Math_d.eval_unary name (Rtval.as_float v) with
      | Some r -> ret1 (Rtval.Float r)
      | None -> error "cannot evaluate %s" name)
    | _ -> error "%s expects one operand" name)
  | "math.powf" -> (
    match operands () with
    | [ a; b ] ->
      ret1 (Rtval.Float (Float.pow (Rtval.as_float a) (Rtval.as_float b)))
    | _ -> error "math.powf expects two operands")
  | "memref.alloca" | "memref.alloc" -> (
    match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let dynamic = List.map Rtval.as_int (operands ()) in
      let shape = resolve_shape mi dynamic in
      ret1
        (Rtval.Buf
           (Rtval.alloc_buffer ~memory_space:mi.Types.memory_space
              mi.Types.elt shape))
    | _ -> error "allocation must produce a memref")
  | "memref.dealloc" -> ()
  | "memref.load" -> (
    match operands () with
    | buf :: indices ->
      ret1 (Rtval.load (Rtval.as_buffer buf) (List.map Rtval.as_int indices))
    | [] -> error "memref.load expects operands")
  | "memref.store" -> (
    match operands () with
    | value :: buf :: indices ->
      Rtval.store (Rtval.as_buffer buf) (List.map Rtval.as_int indices) value
    | _ -> error "memref.store expects operands")
  | "memref.dim" -> (
    match operands () with
    | [ buf; idx ] ->
      let b = Rtval.as_buffer buf in
      let i = Rtval.as_int idx in
      (match List.nth_opt b.Rtval.shape i with
      | Some d -> ret1 (Rtval.Int d)
      | None -> error "memref.dim out of range")
    | _ -> error "memref.dim expects two operands")
  | "memref.copy" -> (
    match operands () with
    | [ src; dst ] ->
      Rtval.copy_into ~src:(Rtval.as_buffer src) ~dst:(Rtval.as_buffer dst)
    | _ -> error "memref.copy expects two operands")
  | "memref.dma_start" -> (
    match operands () with
    | [ src; dst ] ->
      Rtval.copy_into ~src:(Rtval.as_buffer src) ~dst:(Rtval.as_buffer dst)
    | _ -> error "memref.dma_start expects two operands")
  | "memref.dma_wait" -> ()
  | "memref.cast" -> (
    match operands () with
    | [ v ] -> ret1 v
    | _ -> error "memref.cast expects one operand")
  | "scf.for" -> exec_for state frame op
  | "scf.if" -> exec_if state frame op
  | "scf.while" -> exec_while state frame op
  | "scf.yield" | "scf.condition" | "omp.yield" | "omp.terminator" -> ()
  | "func.call" | "fir.call" -> exec_call state frame op
  | "func.return" -> raise (Return (operands ()))
  | "func.func" -> ()
  | "builtin.module" -> ()
  | "builtin.unrealized_conversion_cast" -> (
    match operands () with
    | [ v ] -> ret1 v
    | _ -> error "unrealized cast expects one operand")
  (* sequential OpenMP semantics *)
  | "omp.map_info" -> (
    match Op.operands op with
    | var :: _ -> ret1 (get frame var)
    | [] -> error "omp.map_info expects the variable operand")
  | "omp.bounds_info" -> ret1 (Rtval.Int 0)
  | "omp.target" ->
    let blk = Op.region_block op 0 in
    List.iter2 (fun arg v -> set frame arg (get frame v)) blk.Op.args
      (Op.operands op);
    exec_ops state frame blk.Op.body
  | "omp.target_data" -> exec_ops state frame (Op.region_body op 0)
  | "omp.target_enter_data" | "omp.target_exit_data" | "omp.target_update"
    ->
    ()
  | "omp.parallel_do" -> exec_parallel_do state frame op
  (* sequential OpenACC semantics, mirroring the omp cases *)
  | "acc.copy_info" -> (
    match Op.operands op with
    | var :: _ -> ret1 (get frame var)
    | [] -> error "acc.copy_info expects the variable operand")
  | "acc.parallel" ->
    let blk = Op.region_block op 0 in
    List.iter2 (fun arg v -> set frame arg (get frame v)) blk.Op.args
      (Op.operands op);
    exec_ops state frame blk.Op.body
  | "acc.data" -> exec_ops state frame (Op.region_body op 0)
  | "acc.enter_data" | "acc.exit_data" | "acc.update" -> ()
  | "acc.loop" -> exec_acc_loop state frame op
  | "acc.yield" | "acc.terminator" -> ()
  (* hls directives are no-ops functionally *)
  | "hls.pipeline" | "hls.unroll" | "hls.interface" | "hls.array_partition"
  | "hls.dataflow" ->
    ()
  | "hls.axi_protocol" -> (
    match operands () with
    | [ v ] -> ret1 (Rtval.Proto (Rtval.as_int v))
    | _ -> error "hls.axi_protocol expects one operand")
  | "hls.stream_create" -> ret1 (Rtval.StreamQ (Queue.create ()))
  | "hls.stream_read" -> (
    match operands () with
    | [ Rtval.StreamQ q ] ->
      if Queue.is_empty q then error "read on an empty hls.stream"
      else ret1 (Queue.pop q)
    | _ -> error "hls.stream_read expects a stream")
  | "hls.stream_write" -> (
    match operands () with
    | [ Rtval.StreamQ q; v ] -> Queue.push v q
    | _ -> error "hls.stream_write expects a stream and a value")
  | other -> error "no semantics for operation %s" other

and eval_int_binop name a b =
  match name with
  | "arith.addi" -> lift_arith_int ( + ) a b
  | "arith.subi" -> lift_arith_int ( - ) a b
  | "arith.muli" -> lift_arith_int ( * ) a b
  | "arith.divsi" ->
    if Rtval.as_int b = 0 then error "integer division by zero"
    else lift_arith_int ( / ) a b
  | "arith.remsi" ->
    if Rtval.as_int b = 0 then error "integer remainder by zero"
    else lift_arith_int (fun x y -> x mod y) a b
  | "arith.maxsi" -> lift_arith_int max a b
  | "arith.minsi" -> lift_arith_int min a b
  | "arith.andi" -> (
    match (a, b) with
    | Rtval.Bool x, Rtval.Bool y -> Rtval.Bool (x && y)
    | _ -> lift_arith_int ( land ) a b)
  | "arith.ori" -> (
    match (a, b) with
    | Rtval.Bool x, Rtval.Bool y -> Rtval.Bool (x || y)
    | _ -> lift_arith_int ( lor ) a b)
  | "arith.xori" -> (
    match (a, b) with
    | Rtval.Bool x, Rtval.Bool y -> Rtval.Bool (x <> y)
    | _ -> lift_arith_int ( lxor ) a b)
  | _ -> error "unknown integer binop %s" name

and eval_float_binop name a b =
  match name with
  | "arith.addf" -> lift_arith_float ( +. ) a b
  | "arith.subf" -> lift_arith_float ( -. ) a b
  | "arith.mulf" -> lift_arith_float ( *. ) a b
  | "arith.divf" -> lift_arith_float ( /. ) a b
  | "arith.maximumf" -> lift_arith_float Float.max a b
  | "arith.minimumf" -> lift_arith_float Float.min a b
  | _ -> error "unknown float binop %s" name

and resolve_shape mi dynamic =
  let rec go shape dynamic =
    match shape with
    | [] -> []
    | Types.Static n :: rest -> n :: go rest dynamic
    | Types.Dynamic :: rest -> (
      match dynamic with
      | d :: dynamic -> d :: go rest dynamic
      | [] -> error "missing dynamic dimension operand")
  in
  go mi.Types.shape dynamic

and exec_for state frame op =
  match Scf.for_parts op with
  | None -> error "malformed scf.for"
  | Some parts ->
    let lb = Rtval.as_int (get frame parts.Scf.lb) in
    let ub = Rtval.as_int (get frame parts.Scf.ub) in
    let step = Rtval.as_int (get frame parts.Scf.step) in
    if step <= 0 then error "scf.for requires a positive step";
    let iters = ref (List.map (get frame) parts.Scf.iter_inits) in
    let i = ref lb in
    while !i < ub do
      set frame parts.Scf.induction (Rtval.Int !i);
      List.iter2 (set frame) parts.Scf.iter_args !iters;
      exec_ops state frame parts.Scf.body;
      (match List.rev parts.Scf.body with
      | last :: _ when Scf.is_yield last ->
        iters := List.map (get frame) (Op.operands last)
      | _ -> ());
      i := !i + step
    done;
    (match state.on_loop with
    | Some f ->
      f ~loop_key:(Value.id parts.Scf.induction)
        ~iters:(if step > 0 then max 0 ((ub - lb + step - 1) / step) else 0)
    | None -> ());
    List.iter2 (set frame) (Op.results op) !iters

and exec_if state frame op =
  let cond = Rtval.as_bool (get frame (List.hd (Op.operands op))) in
  let body =
    if cond then Op.region_body op 0
    else if List.length (Op.regions op) > 1 then Op.region_body op 1
    else []
  in
  exec_ops state frame body;
  match List.rev body with
  | last :: _ when Scf.is_yield last ->
    List.iter2 (set frame) (Op.results op)
      (List.map (get frame) (Op.operands last))
  | _ ->
    if Op.results op <> [] then error "scf.if with results needs yields"

and exec_while state frame op =
  match Op.regions op with
  | [ [ before ]; [ after ] ] ->
    let current = ref (List.map (get frame) (Op.operands op)) in
    let continue_ = ref true in
    let results = ref !current in
    while !continue_ do
      List.iter2 (set frame) before.Op.args !current;
      exec_ops state frame before.Op.body;
      (match List.rev before.Op.body with
      | cond_op :: _ when String.equal (Op.name cond_op) "scf.condition" -> (
        match Op.operands cond_op with
        | c :: forwarded ->
          let vals = List.map (get frame) forwarded in
          if Rtval.as_bool (get frame c) then begin
            List.iter2 (set frame) after.Op.args vals;
            exec_ops state frame after.Op.body;
            match List.rev after.Op.body with
            | y :: _ when Scf.is_yield y ->
              current := List.map (get frame) (Op.operands y)
            | _ -> error "scf.while body must end in scf.yield"
          end
          else begin
            continue_ := false;
            results := vals
          end
        | [] -> error "scf.condition needs a condition")
      | _ -> error "scf.while before-region must end in scf.condition")
    done;
    List.iter2 (set frame) (Op.results op) !results
  | _ -> error "malformed scf.while"

and exec_parallel_do state frame op =
  match Omp.loop_parts op with
  | None -> error "malformed omp.parallel_do"
  | Some parts ->
    (* Sequential execution with Fortran's inclusive upper bound. *)
    let bounds =
      List.map2
        (fun (lb, ub) step ->
          ( Rtval.as_int (get frame lb),
            Rtval.as_int (get frame ub),
            Rtval.as_int (get frame step) ))
        (List.combine parts.Omp.lbs parts.Omp.ubs)
        parts.Omp.steps
    in
    let rec loop dims ivs =
      match dims with
      | [] -> exec_ops state frame parts.Omp.loop_body
      | (lb, ub, step) :: rest ->
        if step <= 0 then error "omp.parallel_do requires positive steps";
        let i = ref lb in
        while !i <= ub do
          (match ivs with
          | iv :: _ -> set frame iv (Rtval.Int !i)
          | [] -> ());
          (* Collapsed bound dims can outnumber induction variables (only
             the verified form ties them together), so take the tail
             safely rather than List.tl. *)
          loop rest (match ivs with _ :: t -> t | [] -> []);
          i := !i + step
        done
    in
    loop bounds parts.Omp.ivs

and exec_acc_loop state frame op =
  (* same shape as omp.parallel_do: (lb, ub, step) per collapsed dim then
     reduction operands; inclusive upper bound *)
  let collapse = Option.value ~default:1 (Op.int_attr op "collapse") in
  let operands = Op.operands op in
  let blk = Op.region_block op 0 in
  let rec split i ops acc =
    if i = collapse then List.rev acc
    else
      match ops with
      | lb :: ub :: step :: rest -> split (i + 1) rest ((lb, ub, step) :: acc)
      | _ -> error "malformed acc.loop bounds"
  in
  let bounds =
    List.map
      (fun (lb, ub, step) ->
        ( Rtval.as_int (get frame lb),
          Rtval.as_int (get frame ub),
          Rtval.as_int (get frame step) ))
      (split 0 operands [])
  in
  let rec loop dims ivs =
    match dims with
    | [] -> exec_ops state frame blk.Op.body
    | (lb, ub, step) :: rest ->
      if step <= 0 then error "acc.loop requires positive steps";
      let i = ref lb in
      while !i <= ub do
        (match ivs with
        | iv :: _ -> set frame iv (Rtval.Int !i)
        | [] -> ());
        loop rest (match ivs with _ :: t -> t | [] -> []);
        i := !i + step
      done
  in
  loop bounds blk.Op.args

and exec_call state frame op =
  let callee =
    match Op.symbol_attr op "callee" with
    | Some c -> c
    | None -> error "call without callee"
  in
  let args = List.map (get frame) (Op.operands op) in
  match find_function state callee with
  | Some fn ->
    let results = call_function state fn args in
    set_results frame op results
  | None -> error "call to unknown function %s" callee

and call_function state fn args =
  let callee_frame = new_frame () in
  let params = Func_d.params fn in
  (try List.iter2 (set callee_frame) params args
   with Invalid_argument _ ->
     error "function %s called with %d arguments (expects %d)"
       (Option.value ~default:"?" (Func_d.func_name fn))
       (List.length args) (List.length params));
  try
    exec_ops state callee_frame (Func_d.body fn);
    []
  with Return rvs -> rvs

and exec_ops state frame ops = List.iter (exec_op state frame) ops

(* Find the Fortran main program in a module. *)
let main_function m =
  List.find_opt
    (fun op ->
      Func_d.is_func op
      && Op.bool_attr op "ftn.main" = Some true
      && Func_d.has_body op)
    (Op.module_body m)
