(* Dense, growable int-indexed side tables. The rewrite engine keys its
   def/use/substitution tables by SSA value id; ids are small and dense
   (Builder allocates them sequentially), so a flat array beats a
   hashtable on both lookup cost and allocation churn. Unset slots read
   back as the creation-time default; [set] grows the backing store by
   doubling. *)

type 'a t = {
  default : 'a;
  mutable data : 'a array;
}

let create ?(capacity = 64) default =
  { default; data = Array.make (max 1 capacity) default }

let ensure t i =
  let n = Array.length t.data in
  if i >= n then begin
    let n' = ref (n * 2) in
    while i >= !n' do
      n' := !n' * 2
    done;
    let d = Array.make !n' t.default in
    Array.blit t.data 0 d 0 n;
    t.data <- d
  end

let get t i = if i >= 0 && i < Array.length t.data then t.data.(i) else t.default

let set t i v =
  if i < 0 then invalid_arg "Arena.set: negative index";
  ensure t i;
  t.data.(i) <- v

let capacity t = Array.length t.data
