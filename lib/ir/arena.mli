(** Dense, growable int-indexed side tables keyed by SSA value id.
    Reads of never-set slots return the creation-time default; writes
    grow the backing array by doubling. Used by the worklist rewrite
    engine for its def/use/substitution tables, where value ids are
    small and dense and a flat array beats a hashtable. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create default] makes an empty table whose unset slots read as
    [default]. *)

val get : 'a t -> int -> 'a
(** Total: out-of-range (or never-set) indices return the default. *)

val set : 'a t -> int -> 'a -> unit
(** Grows the table as needed. Raises [Invalid_argument] on a negative
    index. *)

val capacity : 'a t -> int
(** Current backing-array length (for sizing diagnostics only). *)
