(* Attributes: compile-time constant data attached to operations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int * Types.t
  | Float of float * Types.t
  | String of string
  | Symbol of string
  | Type of Types.t
  | Array of t list
  | Dict of (string * t) list
  | Loc of Ftn_diag.Loc.t

let i32 n = Int (n, Types.I32)
let i64 n = Int (n, Types.I64)
let index n = Int (n, Types.Index)
let f32 x = Float (x, Types.F32)
let f64 x = Float (x, Types.F64)

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int (x, tx), Int (y, ty) -> x = y && Types.equal tx ty
  | Float (x, tx), Float (y, ty) -> x = y && Types.equal tx ty
  | String x, String y | Symbol x, Symbol y -> String.equal x y
  | Type x, Type y -> Types.equal x y
  | Array xs, Array ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Dict xs, Dict ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (kx, vx) (ky, vy) -> String.equal kx ky && equal vx vy)
         xs ys
  | Loc x, Loc y -> Ftn_diag.Loc.equal x y
  | ( Unit | Bool _ | Int _ | Float _ | String _ | Symbol _ | Type _
    | Array _ | Dict _ | Loc _ ), _ ->
    false

let as_int = function
  | Int (n, _) -> Some n
  | Unit | Bool _ | Float _ | String _ | Symbol _ | Type _ | Array _
  | Dict _ | Loc _ ->
    None

let as_float = function
  | Float (x, _) -> Some x
  | Unit | Bool _ | Int _ | String _ | Symbol _ | Type _ | Array _ | Dict _
  | Loc _ ->
    None

let as_string = function
  | String s -> Some s
  | Unit | Bool _ | Int _ | Float _ | Symbol _ | Type _ | Array _ | Dict _
  | Loc _ ->
    None

let as_symbol = function
  | Symbol s -> Some s
  | Unit | Bool _ | Int _ | Float _ | String _ | Type _ | Array _ | Dict _
  | Loc _ ->
    None

let as_bool = function
  | Bool b -> Some b
  | Unit | Int _ | Float _ | String _ | Symbol _ | Type _ | Array _
  | Dict _ | Loc _ ->
    None

let as_type = function
  | Type ty -> Some ty
  | Unit | Bool _ | Int _ | Float _ | String _ | Symbol _ | Array _
  | Dict _ | Loc _ ->
    None

let as_array = function
  | Array xs -> Some xs
  | Unit | Bool _ | Int _ | Float _ | String _ | Symbol _ | Type _ | Dict _
  | Loc _ ->
    None

let as_loc = function
  | Loc l -> Some l
  | Unit | Bool _ | Int _ | Float _ | String _ | Symbol _ | Type _
  | Array _ | Dict _ ->
    None

(* Escapes the minimal set needed for round-tripping string attributes. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Fmt.str "%.6e" x
  else Fmt.str "%h" x

let rec pp fmt = function
  | Unit -> Fmt.string fmt "unit"
  | Bool b -> Fmt.bool fmt b
  | Int (n, ty) -> Fmt.pf fmt "%d : %a" n Types.pp ty
  | Float (x, ty) -> Fmt.pf fmt "%s : %a" (float_repr x) Types.pp ty
  | String s -> Fmt.pf fmt "\"%s\"" (escape_string s)
  | Symbol s -> Fmt.pf fmt "@%s" s
  | Type ty -> Types.pp fmt ty
  | Array xs -> Fmt.pf fmt "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp) xs
  | Dict kvs ->
    let pp_kv fmt (k, v) = Fmt.pf fmt "%s = %a" k pp v in
    Fmt.pf fmt "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_kv) kvs
  | Loc l -> Fmt.pf fmt "loc(%a)" Ftn_diag.Loc.pp l

let to_string x =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  pp fmt x;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

