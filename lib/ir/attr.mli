(** Attributes: compile-time constant data attached to operations,
    mirroring MLIR's attribute system. *)

type t =
  | Unit
  | Bool of bool
  | Int of int * Types.t
  | Float of float * Types.t
  | String of string
  | Symbol of string  (** Symbol reference, printed [@name]. *)
  | Type of Types.t
  | Array of t list
  | Dict of (string * t) list
  | Loc of Ftn_diag.Loc.t
      (** Source location, printed [loc("f.f90":12:3)]. *)

val i32 : int -> t
val i64 : int -> t
val index : int -> t
val f32 : float -> t
val f64 : float -> t
val equal : t -> t -> bool

val as_int : t -> int option
val as_float : t -> float option
val as_string : t -> string option
val as_symbol : t -> string option
val as_bool : t -> bool option
val as_type : t -> Types.t option
val as_array : t -> t list option
val as_loc : t -> Ftn_diag.Loc.t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
