(* Parser for the generic-operation syntax emitted by Printer. A char-level
   recursive-descent parser: the type grammar (memref shapes like 100x?xf32)
   does not tokenise cleanly, so we work directly on the character stream.

   Values are reconstructed with the same integer ids that appear in the
   text, so [parse (print m)] yields a structurally identical module. *)

exception Parse_error of string * int

type state = {
  src : string;
  mutable pos : int;
}

let error st msg = raise (Parse_error (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some '/' when peek_at st 1 = Some '/' ->
    (* line comment *)
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws st
  | _ -> ()

let expect_char st c =
  skip_ws st;
  match peek st with
  | Some c' when c = c' -> advance st
  | Some c' -> error st (Fmt.str "expected '%c', found '%c'" c c')
  | None -> error st (Fmt.str "expected '%c', found end of input" c)

let eat_char st c =
  skip_ws st;
  match peek st with
  | Some c' when c = c' ->
    advance st;
    true
  | _ -> false

let expect_string st s =
  skip_ws st;
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s
  then st.pos <- st.pos + n
  else error st (Fmt.str "expected %S" s)

let looking_at st s =
  skip_ws st;
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let parse_ident st =
  skip_ws st;
  let start = st.pos in
  while
    match peek st with Some c when is_ident_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then error st "expected identifier";
  String.sub st.src start (st.pos - start)

let parse_int st =
  skip_ws st;
  let start = st.pos in
  if peek st = Some '-' then advance st;
  while match peek st with Some ('0' .. '9') -> true | _ -> false do
    advance st
  done;
  if st.pos = start then error st "expected integer";
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> error st (Fmt.str "integer literal out of range: %s" text)

(* Numeric literal: int or float. Handles decimal, scientific and OCaml/C99
   hex-float notation. Returns [`Int n] or [`Float x]. *)
let parse_number st =
  skip_ws st;
  let start = st.pos in
  if peek st = Some '-' then advance st;
  let is_hex = looking_at st "0x" || looking_at st "0X" in
  if is_hex then (
    advance st;
    advance st);
  let num_char c =
    match c with
    | '0' .. '9' | '.' -> true
    | 'e' | 'E' -> true
    | 'a' .. 'd' | 'f' | 'A' .. 'D' | 'F' -> is_hex
    | 'p' | 'P' -> is_hex
    | '+' | '-' ->
      (* sign of an exponent only *)
      st.pos > start
      && (match st.src.[st.pos - 1] with
         | 'e' | 'E' -> not is_hex
         | 'p' | 'P' -> is_hex
         | _ -> false)
    | 'x' | 'X' -> false
    | _ -> false
  in
  while match peek st with Some c when num_char c -> true | _ -> false do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if text = "" || text = "-" then error st "expected number";
  let is_float =
    is_hex
    || String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some x -> `Float x
    | None -> error st (Fmt.str "bad float literal: %s" text)
  else
    match int_of_string_opt text with
    | Some n -> `Int n
    | None -> error st (Fmt.str "integer literal out of range: %s" text)

let parse_string_lit st =
  expect_char st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some c -> Buffer.add_char buf c
      | None -> error st "unterminated string");
      advance st;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
    | None -> error st "unterminated string"
  in
  go ();
  Buffer.contents buf

(* Location body, after the opening ["loc("] has been consumed:
   "file":LINE:COL, optionally followed by [to :LINE:END_COL] for spans
   (MLIR's FileLineColRange form). *)
let parse_loc_body st =
  let file = parse_string_lit st in
  expect_char st ':';
  let line = parse_int st in
  expect_char st ':';
  let col = parse_int st in
  let end_col =
    if looking_at st "to" then begin
      expect_string st "to";
      expect_char st ':';
      let _line2 = parse_int st in
      expect_char st ':';
      parse_int st
    end
    else col
  in
  expect_char st ')';
  Ftn_diag.Loc.make ~end_col ~file ~line ~col ()

(* --- types --- *)

let rec parse_type st =
  skip_ws st;
  if eat_char st '(' then begin
    (* function type: (tys) -> (tys) or -> ty *)
    let args = parse_type_list_until st ')' in
    expect_string st "->";
    let results =
      if eat_char st '(' then parse_type_list_until st ')'
      else [ parse_type st ]
    in
    Types.Func (args, results)
  end
  else if looking_at st "!device.kernelhandle" then begin
    expect_string st "!device.kernelhandle";
    Types.Kernel_handle
  end
  else if looking_at st "!hls.axi_protocol" then begin
    expect_string st "!hls.axi_protocol";
    Types.Axi_protocol
  end
  else if looking_at st "!llvm.ptr" then begin
    expect_string st "!llvm.ptr";
    expect_char st '<';
    let elt = parse_type st in
    expect_char st '>';
    Types.Ptr elt
  end
  else if looking_at st "!hls.stream" then begin
    expect_string st "!hls.stream";
    expect_char st '<';
    let elt = parse_type st in
    expect_char st '>';
    Types.Stream elt
  end
  else
    let id = parse_ident st in
    match id with
    | "i1" -> Types.I1
    | "i8" -> Types.I8
    | "i16" -> Types.I16
    | "i32" -> Types.I32
    | "i64" -> Types.I64
    | "index" -> Types.Index
    | "f16" -> Types.F16
    | "f32" -> Types.F32
    | "f64" -> Types.F64
    | "vector" ->
      expect_char st '<';
      let n = parse_int st in
      expect_char st 'x';
      let elt = parse_type st in
      expect_char st '>';
      Types.Vector (n, elt)
    | "tuple" ->
      expect_char st '<';
      let tys = parse_type_list_until st '>' in
      Types.Tuple tys
    | "memref" ->
      expect_char st '<';
      let shape = parse_memref_dims st in
      let elt = parse_type st in
      let memory_space =
        if eat_char st ',' then begin
          let n = parse_int st in
          expect_char st ':';
          let _ = parse_ident st in
          n
        end
        else 0
      in
      expect_char st '>';
      Types.Memref { shape; elt; memory_space }
    | other -> error st (Fmt.str "unknown type %S" other)

and parse_type_list_until st close =
  skip_ws st;
  if peek st = Some close then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let ty = parse_type st in
      if eat_char st ',' then go (ty :: acc)
      else begin
        expect_char st close;
        List.rev (ty :: acc)
      end
    in
    go []

and parse_memref_dims st =
  (* dims are (INT|?) followed by 'x', repeated; stops when the next
     component is not a dimension (i.e. the element type). *)
  let rec go acc =
    skip_ws st;
    match peek st with
    | Some '?' when peek_at st 1 = Some 'x' ->
      advance st;
      advance st;
      go (Types.Dynamic :: acc)
    | Some ('0' .. '9') ->
      (* lookahead: digits then 'x' means a dimension *)
      let save = st.pos in
      let n = parse_int st in
      if peek st = Some 'x' then begin
        advance st;
        go (Types.Static n :: acc)
      end
      else begin
        st.pos <- save;
        List.rev acc
      end
    | _ -> List.rev acc
  in
  go []

(* --- attributes --- *)

let rec parse_attr st =
  skip_ws st;
  match peek st with
  | Some '"' -> Attr.String (parse_string_lit st)
  | Some '@' ->
    advance st;
    Attr.Symbol (parse_ident st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if eat_char st ']' then Attr.Array []
    else
      let rec go acc =
        let a = parse_attr st in
        if eat_char st ',' then go (a :: acc)
        else begin
          expect_char st ']';
          Attr.Array (List.rev (a :: acc))
        end
      in
      go []
  | Some '{' ->
    advance st;
    skip_ws st;
    if eat_char st '}' then Attr.Dict []
    else
      let rec go acc =
        let k = parse_ident st in
        expect_char st '=';
        let v = parse_attr st in
        if eat_char st ',' then go ((k, v) :: acc)
        else begin
          expect_char st '}';
          Attr.Dict (List.rev ((k, v) :: acc))
        end
      in
      go []
  | Some ('0' .. '9' | '-') ->
    (let n = parse_number st in
     skip_ws st;
     if peek st = Some ':' then begin
       advance st;
       let ty = parse_type st in
       match n with
       | `Int i -> Attr.Int (i, ty)
       | `Float x -> Attr.Float (x, ty)
     end
     else
       match n with
       | `Int i -> Attr.Int (i, Types.I64)
       | `Float x -> Attr.Float (x, Types.F64))
  | _ ->
    (* keyword or type attribute *)
    if looking_at st "true" then begin
      expect_string st "true";
      Attr.Bool true
    end
    else if looking_at st "false" then begin
      expect_string st "false";
      Attr.Bool false
    end
    else if looking_at st "unit" then begin
      expect_string st "unit";
      Attr.Unit
    end
    else if looking_at st "loc(" then begin
      expect_string st "loc(";
      Attr.Loc (parse_loc_body st)
    end
    else Attr.Type (parse_type st)

let parse_attr_dict st =
  (* <{k = v, ...}> *)
  expect_char st '<';
  expect_char st '{';
  skip_ws st;
  if eat_char st '}' then begin
    expect_char st '>';
    []
  end
  else
    let rec go acc =
      let k = parse_ident st in
      expect_char st '=';
      let v = parse_attr st in
      if eat_char st ',' then go ((k, v) :: acc)
      else begin
        expect_char st '}';
        expect_char st '>';
        List.rev ((k, v) :: acc)
      end
    in
    go []

(* --- values, operations --- *)

let parse_value_id st =
  expect_char st '%';
  parse_int st

let parse_value_id_list st =
  skip_ws st;
  if peek st <> Some '%' then []
  else
    let rec go acc =
      let id = parse_value_id st in
      if eat_char st ',' then go (id :: acc) else List.rev (id :: acc)
    in
    go []

let rec parse_op st =
  skip_ws st;
  let result_ids =
    if peek st = Some '%' then begin
      let ids = parse_value_id_list st in
      expect_char st '=';
      ids
    end
    else []
  in
  skip_ws st;
  let name = parse_string_lit st in
  expect_char st '(';
  let operand_ids =
    if eat_char st ')' then []
    else
      let ids = parse_value_id_list st in
      expect_char st ')';
      ids
  in
  skip_ws st;
  let attrs = if looking_at st "<{" then parse_attr_dict st else [] in
  skip_ws st;
  let regions =
    (* region list looks like "({ ... }, { ... })"; distinguish from the
       trailing ": (tys) -> (tys)" which starts with ':'. *)
    if peek st = Some '(' then begin
      advance st;
      let rec go acc =
        let r = parse_region st in
        if eat_char st ',' then go (r :: acc)
        else begin
          expect_char st ')';
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  expect_char st ':';
  expect_char st '(';
  let operand_tys = parse_type_list_until' st ')' in
  expect_string st "->";
  expect_char st '(';
  let result_tys = parse_type_list_until' st ')' in
  (* trailing source location, e.g. [... : (f32) -> (f32) loc("f.f90":3:7)] *)
  let attrs =
    if looking_at st "loc(" then begin
      expect_string st "loc(";
      ("loc", Attr.Loc (parse_loc_body st)) :: attrs
    end
    else attrs
  in
  let zip ids tys what =
    if List.length ids <> List.length tys then
      error st (Fmt.str "%s count mismatch in %s" what name);
    List.map2 Value.make ids tys
  in
  Op.make name
    ~operands:(zip operand_ids operand_tys "operand")
    ~results:(zip result_ids result_tys "result")
    ~attrs ~regions

and parse_type_list_until' st close =
  skip_ws st;
  if peek st = Some close then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let ty = parse_type st in
      if eat_char st ',' then go (ty :: acc)
      else begin
        expect_char st close;
        List.rev (ty :: acc)
      end
    in
    go []

and parse_region st =
  expect_char st '{';
  let rec blocks acc =
    skip_ws st;
    if peek st = Some '^' then begin
      advance st;
      let label = parse_ident st in
      expect_char st '(';
      let args =
        skip_ws st;
        if eat_char st ')' then []
        else
          let rec go acc =
            let id = parse_value_id st in
            expect_char st ':';
            let ty = parse_type st in
            let v = Value.make id ty in
            if eat_char st ',' then go (v :: acc)
            else begin
              expect_char st ')';
              List.rev (v :: acc)
            end
          in
          go []
      in
      expect_char st ':';
      let body = parse_ops_until st in
      blocks ({ Op.label; args; body } :: acc)
    end
    else begin
      expect_char st '}';
      List.rev acc
    end
  in
  blocks []

and parse_ops_until st =
  let rec go acc =
    skip_ws st;
    match peek st with
    | Some '}' | Some '^' | None -> List.rev acc
    | _ -> go (parse_op st :: acc)
  in
  go []

let parse_ops text =
  let st = { src = text; pos = 0 } in
  let ops = parse_ops_until st in
  skip_ws st;
  if st.pos <> String.length text then error st "trailing input";
  ops

let parse_module text =
  match parse_ops text with
  | [ op ] when Op.is_module op -> op
  | [ op ] -> Op.module_op [ op ]
  | ops -> Op.module_op ops

let parse_type_string text =
  let st = { src = text; pos = 0 } in
  let ty = parse_type st in
  skip_ws st;
  if st.pos <> String.length text then error st "trailing input";
  ty
