(* Operations, blocks and regions. The IR is a purely functional tree:
   transformations rebuild the parts they change. SSA use-def is implicit
   through Value identity. *)

type t = {
  name : string;
  operands : Value.t list;
  results : Value.t list;
  attrs : (string * Attr.t) list;
  regions : region list;
}

and block = {
  label : string;
  args : Value.t list;
  body : t list;
}

and region = block list

let make ?(operands = []) ?(results = []) ?(attrs = []) ?(regions = []) name
    =
  { name; operands; results; attrs; regions }

let name op = op.name
let operands op = op.operands
let results op = op.results
let attrs op = op.attrs
let regions op = op.regions

let dialect op =
  match String.index_opt op.name '.' with
  | Some i -> String.sub op.name 0 i
  | None -> op.name

let find_attr op key = List.assoc_opt key op.attrs
let has_attr op key = List.mem_assoc key op.attrs

let set_attr op key attr =
  { op with attrs = (key, attr) :: List.remove_assoc key op.attrs }

let remove_attr op key = { op with attrs = List.remove_assoc key op.attrs }

(* Source location, stored as the reserved "loc" attribute (printed in
   trailing [loc(...)] position by Printer rather than in the attr dict). *)
let loc op =
  match Option.bind (find_attr op "loc") Attr.as_loc with
  | Some l -> l
  | None -> Ftn_diag.Loc.unknown

let set_loc op l =
  if Ftn_diag.Loc.is_known l then
    { op with attrs = ("loc", Attr.Loc l) :: List.remove_assoc "loc" op.attrs }
  else op

let int_attr op key = Option.bind (find_attr op key) Attr.as_int
let string_attr op key = Option.bind (find_attr op key) Attr.as_string
let symbol_attr op key = Option.bind (find_attr op key) Attr.as_symbol
let bool_attr op key = Option.bind (find_attr op key) Attr.as_bool
let float_attr op key = Option.bind (find_attr op key) Attr.as_float

let operand op i = List.nth op.operands i
let operand_opt op i = List.nth_opt op.operands i
let result op i = List.nth op.results i

let result1 op =
  match op.results with
  | [ r ] -> r
  | _ -> invalid_arg (Fmt.str "Op.result1: %s has %d results" op.name
                        (List.length op.results))

let block ?(label = "bb0") ?(args = []) body = { label; args; body }
let region ?label ?args body = [ block ?label ?args body ]

(* A single-block region's body, the common case for structured control
   flow. Raises if the region has an unexpected shape. *)
let region_body op i =
  match List.nth_opt op.regions i with
  | Some [ b ] -> b.body
  | Some _ -> invalid_arg (Fmt.str "Op.region_body: %s region %d not single-block" op.name i)
  | None -> invalid_arg (Fmt.str "Op.region_body: %s has no region %d" op.name i)

let region_block op i =
  match List.nth_opt op.regions i with
  | Some [ b ] -> b
  | Some _ | None ->
    invalid_arg (Fmt.str "Op.region_block: %s bad region %d" op.name i)

(* Pre-order traversal over an op and everything nested inside it. *)
let rec walk f op =
  f op;
  List.iter (fun blocks -> List.iter (fun b -> List.iter (walk f) b.body) blocks)
    op.regions

let walk_ops f ops = List.iter (walk f) ops

let rec fold f acc op =
  let acc = f acc op in
  List.fold_left
    (fun acc blocks ->
      List.fold_left
        (fun acc b -> List.fold_left (fold f) acc b.body)
        acc blocks)
    acc op.regions

let exists pred op =
  let found = ref false in
  walk (fun o -> if pred o then found := true) op;
  !found

let count pred op = fold (fun n o -> if pred o then n + 1 else n) 0 op

let collect pred op =
  List.rev (fold (fun acc o -> if pred o then o :: acc else acc) [] op)

(* Rebuild an op bottom-up: [f] is applied to each op after its regions
   have been rebuilt. [f] returns a list so rewrites can drop (=[]) or
   expand (1->n) operations. *)
let rec rewrite_bottom_up f op =
  let regions =
    List.map
      (fun blocks ->
        List.map
          (fun b ->
            { b with body = List.concat_map (rewrite_bottom_up f) b.body })
          blocks)
      op.regions
  in
  f { op with regions }

(* Substitute values across an op tree (operands and nested ops). Block
   arguments and results are definitions, never substituted. *)
let rec substitute subst op =
  let sub_v v = match subst v with Some v' -> v' | None -> v in
  {
    op with
    operands = List.map sub_v op.operands;
    regions =
      List.map
        (fun blocks ->
          List.map
            (fun b -> { b with body = List.map (substitute subst) b.body })
            blocks)
        op.regions;
  }

let substitute_map map op =
  substitute (fun v -> Value.Map.find_opt v map) op

(* All values used (as operands) anywhere in the tree. *)
let uses op =
  fold
    (fun acc o -> List.fold_left (fun acc v -> Value.Set.add v acc) acc o.operands)
    Value.Set.empty op

(* All values defined (results and block args) anywhere in the tree. *)
let defs op =
  let acc = ref Value.Set.empty in
  walk
    (fun o ->
      List.iter (fun v -> acc := Value.Set.add v !acc) o.results;
      List.iter
        (fun blocks ->
          List.iter
            (fun b -> List.iter (fun v -> acc := Value.Set.add v !acc) b.args)
            blocks)
        o.regions)
    op;
  !acc

(* Values used within [op] that are defined outside it: the capture set
   needed when outlining a region into a function. *)
let free_values op = Value.Set.diff (uses op) (defs op)

let free_values_of_ops ops =
  let used =
    List.fold_left
      (fun acc o -> Value.Set.union acc (uses o))
      Value.Set.empty ops
  in
  let defined =
    List.fold_left
      (fun acc o -> Value.Set.union acc (defs o))
      Value.Set.empty ops
  in
  Value.Set.diff used defined

(* Module helpers: a module is a builtin.module op with one region. *)
let module_op ?(attrs = []) body =
  make "builtin.module" ~attrs ~regions:[ region body ]

let is_module op = String.equal op.name "builtin.module"

let module_body op =
  if not (is_module op) then invalid_arg "Op.module_body: not a module";
  region_body op 0

let with_module_body op body =
  if not (is_module op) then invalid_arg "Op.with_module_body: not a module";
  { op with regions = [ region body ] }

(* Canonical dense renumbering: every value defined in the tree (results
   and block args) is reassigned a fresh id in pre-order traversal
   position, starting at [start]. Operands defined inside the tree are
   remapped; free values keep their original ids. Returns the next free
   id, so callers can thread the counter across a sequence of trees
   (Pass.run_pipeline_parallel renumbers the merged module this way to
   make partitioned pipeline output independent of how fresh ids were
   allocated per partition). *)
let renumber ?(start = 0) op =
  let map = Hashtbl.create 256 in
  let next = ref start in
  let fresh v =
    let v' = Value.make !next (Value.ty v) in
    incr next;
    Hashtbl.replace map (Value.id v) v';
    v'
  in
  let lookup v =
    match Hashtbl.find_opt map (Value.id v) with Some v' -> v' | None -> v
  in
  let rec go op =
    let operands = List.map lookup op.operands in
    let results = List.map fresh op.results in
    let regions =
      List.map
        (fun blocks ->
          List.map
            (fun b ->
              let args = List.map fresh b.args in
              { b with args; body = List.map go b.body })
            blocks)
        op.regions
    in
    { op with operands; results; regions }
  in
  let op' = go op in
  (op', !next)

(* Find a func.func by its sym_name inside a module. *)
let find_function m fname =
  List.find_opt
    (fun o ->
      String.equal o.name "func.func"
      && (match symbol_attr o "sym_name" with
         | Some s -> String.equal s fname
         | None -> (match string_attr o "sym_name" with
                    | Some s -> String.equal s fname
                    | None -> false)))
    (module_body m)
