(** Operations, blocks and regions.

    The IR is a purely functional tree in MLIR's generic-operation shape:
    every operation has a dialect-qualified name, SSA operands/results,
    named attributes and nested regions. Transformations rebuild the parts
    of the tree they change; SSA use-def relations are implicit through
    {!Value} identity. *)

type t = {
  name : string;  (** Dialect-qualified, e.g. ["arith.addf"]. *)
  operands : Value.t list;
  results : Value.t list;
  attrs : (string * Attr.t) list;
  regions : region list;
}

and block = {
  label : string;
  args : Value.t list;
  body : t list;
}

and region = block list

val make :
  ?operands:Value.t list ->
  ?results:Value.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:region list ->
  string ->
  t

val name : t -> string
val operands : t -> Value.t list
val results : t -> Value.t list
val attrs : t -> (string * Attr.t) list
val regions : t -> region list

val dialect : t -> string
(** Prefix of the op name before the first ['.']. *)

val find_attr : t -> string -> Attr.t option
val has_attr : t -> string -> bool
val set_attr : t -> string -> Attr.t -> t
val remove_attr : t -> string -> t
val loc : t -> Ftn_diag.Loc.t
(** The op's source location ([Loc.unknown] if none attached). *)

val set_loc : t -> Ftn_diag.Loc.t -> t
(** Attach a source location (no-op for unknown locations). *)

val int_attr : t -> string -> int option
val string_attr : t -> string -> string option
val symbol_attr : t -> string -> string option
val bool_attr : t -> string -> bool option
val float_attr : t -> string -> float option

val operand : t -> int -> Value.t
val operand_opt : t -> int -> Value.t option
val result : t -> int -> Value.t

val result1 : t -> Value.t
(** The unique result; raises [Invalid_argument] if there is not exactly one. *)

val block : ?label:string -> ?args:Value.t list -> t list -> block
val region : ?label:string -> ?args:Value.t list -> t list -> region
(** Single-block region. *)

val region_body : t -> int -> t list
(** Body of the [i]-th region, which must be single-block. *)

val region_block : t -> int -> block

val walk : (t -> unit) -> t -> unit
(** Pre-order traversal of an op and all nested ops. *)

val walk_ops : (t -> unit) -> t list -> unit
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val exists : (t -> bool) -> t -> bool
val count : (t -> bool) -> t -> int
val collect : (t -> bool) -> t -> t list

val rewrite_bottom_up : (t -> t list) -> t -> t list
(** Rebuild bottom-up: the callback sees each op after its regions have been
    rewritten and may drop it ([[]]), keep it ([[op]]) or expand it. *)

val substitute : (Value.t -> Value.t option) -> t -> t
(** Replace operand uses throughout the tree. Definitions are untouched. *)

val substitute_map : Value.t Value.Map.t -> t -> t
val uses : t -> Value.Set.t
val defs : t -> Value.Set.t

val free_values : t -> Value.Set.t
(** Values used inside [op] but defined outside it — the capture set when
    outlining. *)

val free_values_of_ops : t list -> Value.Set.t

val renumber : ?start:int -> t -> t * int
(** Canonical dense renumbering: every value defined in the tree (results
    and block args) gets a fresh id in pre-order position starting at
    [start] (default 0); internal uses are remapped, free values keep
    their original ids (the caller must ensure those cannot collide with
    the fresh range). Returns the renumbered tree and the next free id.
    Two structurally identical trees renumber to byte-identical printed
    IR regardless of how their ids were originally allocated. *)

val module_op : ?attrs:(string * Attr.t) list -> t list -> t
(** Wrap ops into a [builtin.module]. *)

val is_module : t -> bool
val module_body : t -> t list
val with_module_body : t -> t list -> t

val find_function : t -> string -> t option
(** Find a [func.func] by symbol name in a module. *)
