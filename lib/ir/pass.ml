(* Pass manager: named module-to-module transformations with optional
   inter-pass verification, per-pass timing and IR dump hooks (the
   equivalent of mlir-opt's -pass-pipeline driver). Every pass execution
   is bracketed in an Ftn_obs wall-clock span; the stage_record list is a
   thin view over those spans, kept for existing consumers. *)

type t = {
  pass_name : string;
  run : Op.t -> Op.t;
}

type stage_record = {
  stage_name : string;
  elapsed_s : float;
  op_count : int;
}

let make pass_name run = { pass_name; run }
let name p = p.pass_name
let run p m = p.run m

let count_ops m = Op.count (fun _ -> true) m

let run_pipeline ?(verify_between = false) ?on_stage passes m =
  let records = ref [] in
  let notify stage_name elapsed_s m =
    let r = { stage_name; elapsed_s; op_count = count_ops m } in
    records := r :: !records;
    match on_stage with Some f -> f r m | None -> ()
  in
  notify "input" 0.0 m;
  let result =
    List.fold_left
      (fun m p ->
        let ops_before = count_ops m in
        let pass_span = ref None in
        let m' =
          Ftn_obs.Span.with_span_sp ~name:("pass." ^ p.pass_name)
            (fun sp ->
              pass_span := Some sp;
              p.run m)
        in
        (match !pass_span with
        | Some sp ->
          let ops_after = count_ops m' in
          Ftn_obs.Span.set_attr sp ~key:"ops_in" (string_of_int ops_before);
          Ftn_obs.Span.set_attr sp ~key:"ops_out" (string_of_int ops_after);
          if ops_after < ops_before then
            Ftn_obs.Metrics.incr ~by:(ops_before - ops_after)
              "passes.ops_removed";
          Ftn_obs.Log.debugf "pass %s: %d -> %d ops, %.3f ms" p.pass_name
            ops_before ops_after
            (sp.Ftn_obs.Span.dur_s *. 1e3)
        | None -> ());
        if verify_between then Verifier.verify_exn m';
        let elapsed =
          match !pass_span with
          | Some sp -> sp.Ftn_obs.Span.dur_s
          | None -> 0.0
        in
        notify p.pass_name elapsed m';
        m')
      m passes
  in
  (result, List.rev !records)

let run_pipeline_exn ?verify_between ?on_stage passes m =
  fst (run_pipeline ?verify_between ?on_stage passes m)

let pp_stage fmt r =
  Fmt.pf fmt "%-28s %6.2f ms  %5d ops" r.stage_name (r.elapsed_s *. 1000.)
    r.op_count
