(* Pass manager: named module-to-module transformations with optional
   inter-pass verification, per-pass timing and IR dump hooks (the
   equivalent of mlir-opt's -pass-pipeline driver). Every pass execution
   is bracketed in an Ftn_obs wall-clock span; the stage_record list is a
   thin view over those spans, kept for existing consumers. *)

type t = {
  pass_name : string;
  run : Op.t -> Op.t;
}

type stage_record = {
  stage_name : string;
  elapsed_s : float;
  op_count : int;
  alloc_bytes : float;
      (* OCaml heap allocated while the pass ran (Gc.allocated_bytes
         delta); 0 for the synthetic "input" record *)
}

let make pass_name run = { pass_name; run }
let name p = p.pass_name
let run p m = p.run m

let count_ops m = Op.count (fun _ -> true) m

(* Attach pass identity to any located diagnostics escaping [f], so the
   driver can report which pipeline stage tripped. *)
let with_pass_context context f =
  try f () with
  | Ftn_diag.Diag.Diag_failure ds ->
    raise
      (Ftn_diag.Diag.Diag_failure
         (List.map (fun d -> Ftn_diag.Diag.add_note d context) ds))
  | Invalid_argument msg | Failure msg ->
    (* legacy unlocated failures still gain pass context *)
    raise
      (Ftn_diag.Diag.Diag_failure
         [ Ftn_diag.Diag.add_note (Ftn_diag.Diag.error msg) context ])

let run_pipeline ?(verify_between = false) ?on_stage passes m =
  let records = ref [] in
  let notify stage_name elapsed_s op_count alloc_bytes m =
    let r = { stage_name; elapsed_s; op_count; alloc_bytes } in
    records := r :: !records;
    match on_stage with Some f -> f r m | None -> ()
  in
  let initial_count = count_ops m in
  notify "input" 0.0 initial_count 0.0 m;
  (* The op count of stage N's output is stage N+1's input: compute each
     count once and thread it through the fold. *)
  let result, _ =
    List.fold_left
      (fun (m, ops_before) p ->
        let pass_span = ref None in
        (* delta of the rewrite-driver counters across this pass: how many
           ops the driver examined and how many patterns fired on its
           behalf (0 for passes not built on Rewrite) *)
        let visited0 = Ftn_obs.Metrics.counter_value "rewrite.ops_visited" in
        let fired0 = Ftn_obs.Metrics.counter_value "rewrite.patterns_fired" in
        let alloc0 = Gc.allocated_bytes () in
        let m' =
          Ftn_obs.Span.with_span_sp ~name:("pass." ^ p.pass_name)
            (fun sp ->
              pass_span := Some sp;
              with_pass_context
                (Fmt.str "while running pass '%s'" p.pass_name)
                (fun () -> p.run m))
        in
        let ops_after = count_ops m' in
        let alloc_bytes = Gc.allocated_bytes () -. alloc0 in
        let visited =
          Ftn_obs.Metrics.counter_value "rewrite.ops_visited" - visited0
        in
        let fired =
          Ftn_obs.Metrics.counter_value "rewrite.patterns_fired" - fired0
        in
        (match !pass_span with
        | Some sp ->
          Ftn_obs.Span.set_attr sp ~key:"ops_in" (string_of_int ops_before);
          Ftn_obs.Span.set_attr sp ~key:"ops_out" (string_of_int ops_after);
          Ftn_obs.Span.set_attr sp ~key:"rewrite_ops_visited"
            (string_of_int visited);
          Ftn_obs.Span.set_attr sp ~key:"rewrite_patterns_fired"
            (string_of_int fired);
          Ftn_obs.Span.set_attr sp ~key:"alloc_bytes"
            (Printf.sprintf "%.0f" alloc_bytes);
          if !Ftn_obs.Profile.on then begin
            Ftn_obs.Metrics.observe
              ("pass." ^ p.pass_name ^ ".wall_ms")
              (sp.Ftn_obs.Span.dur_s *. 1e3);
            Ftn_obs.Metrics.observe
              ("pass." ^ p.pass_name ^ ".alloc_kb")
              (alloc_bytes /. 1024.)
          end;
          if ops_after < ops_before then
            Ftn_obs.Metrics.incr ~by:(ops_before - ops_after)
              "passes.ops_removed";
          Ftn_obs.Log.debugf
            "pass %s: %d -> %d ops, %.3f ms (%d rewrites over %d visits)"
            p.pass_name ops_before ops_after
            (sp.Ftn_obs.Span.dur_s *. 1e3)
            fired visited
        | None -> ());
        if verify_between then
          with_pass_context
            (Fmt.str "in IR verification after pass '%s'" p.pass_name)
            (fun () -> Verifier.verify_exn m');
        let elapsed =
          match !pass_span with
          | Some sp -> sp.Ftn_obs.Span.dur_s
          | None -> 0.0
        in
        notify p.pass_name elapsed ops_after alloc_bytes m';
        (m', ops_after))
      (m, initial_count) passes
  in
  (result, List.rev !records)

let run_pipeline_exn ?verify_between ?on_stage passes m =
  fst (run_pipeline ?verify_between ?on_stage passes m)

(* ---------------- domain-parallel pipeline execution ---------------- *)

(* A declaration-only symbol op: carries a sym_name and no region body.
   Per-partition pass runs may each materialise the same extern decl
   (e.g. hls intrinsic shims); the merge dedupes them by (op name,
   symbol) and floats them to the front, matching the decl-hoisting
   layout of the lowering passes. *)
let is_decl o =
  Op.has_attr o "sym_name"
  && List.for_all
       (fun blocks -> List.for_all (fun (b : Op.block) -> b.Op.body = []) blocks)
       (Op.regions o)

let decl_sym o =
  match Op.symbol_attr o "sym_name" with
  | Some s -> s
  | None -> Option.value ~default:"" (Op.string_attr o "sym_name")

(* Run [passes] over each top-level op of module [m] independently, fanned
   across [domains] OCaml domains, and merge the results in the original
   top-level order. Each unit is wrapped in its own single-op module (so
   module-scoped patterns still see a module parent); the merged module is
   canonically renumbered (Op.renumber), which makes the output a pure
   function of the input — byte-identical for 1, 2 or N domains, and equal
   to [Op.renumber] of the sequential pipeline's output for function-local
   passes. Falls back to [run_pipeline] when the input is not a module,
   has at most one top-level op, or has cross-unit value references. *)
let run_pipeline_parallel ?(verify_between = false) ?(domains = 1) passes m =
  let fallback () = run_pipeline ~verify_between passes m in
  if not (Op.is_module m) then fallback ()
  else
    let units = Array.of_list (Op.module_body m) in
    let n = Array.length units in
    if
      n <= 1
      || not
           (Array.for_all
              (fun u -> Value.Set.is_empty (Op.free_values u))
              units)
    then fallback ()
    else begin
      let shell = Op.with_module_body m [] in
      let n_passes = List.length passes in
      let results = Array.make n (Ok []) in
      let pass_wall = Array.make_matrix n n_passes 0.0 in
      let pass_ops = Array.make_matrix n n_passes 0 in
      let pass_alloc = Array.make_matrix n n_passes 0.0 in
      let work lo hi =
        for i = lo to hi - 1 do
          results.(i) <-
            (try
               let u = ref (Op.with_module_body shell [ units.(i) ]) in
               List.iteri
                 (fun j p ->
                   let t0 = Unix.gettimeofday () in
                   let alloc0 = Gc.allocated_bytes () in
                   let out =
                     with_pass_context
                       (Fmt.str "while running pass '%s'" p.pass_name)
                       (fun () -> p.run !u)
                   in
                   pass_wall.(i).(j) <- Unix.gettimeofday () -. t0;
                   pass_alloc.(i).(j) <- Gc.allocated_bytes () -. alloc0;
                   pass_ops.(i).(j) <- count_ops out;
                   if verify_between then
                     with_pass_context
                       (Fmt.str "in IR verification after pass '%s'"
                          p.pass_name)
                       (fun () -> Verifier.verify_exn out);
                   u := out)
                 passes;
               Ok (Op.module_body !u)
             with e -> Error e)
        done
      in
      let d = max 1 (min domains n) in
      let chunk = (n + d - 1) / d in
      Ftn_obs.Span.with_span
        ~attrs:
          [
            ("units", string_of_int n);
            ("domains", string_of_int d);
          ]
        ~name:"pass.pipeline_parallel"
        (fun () ->
          if d = 1 then work 0 n
          else begin
            let workers =
              List.init (d - 1) (fun k ->
                  let lo = (k + 1) * chunk in
                  let hi = min n (lo + chunk) in
                  Domain.spawn (fun () -> work lo hi))
            in
            work 0 (min n chunk);
            List.iter Domain.join workers
          end);
      (* deterministic error order: the first failing unit wins *)
      Array.iter (function Error e -> raise e | Ok _ -> ()) results;
      let seen = Hashtbl.create 16 in
      let decls = ref [] and rest = ref [] in
      Array.iter
        (function
          | Error _ -> ()
          | Ok ops ->
            List.iter
              (fun o ->
                if is_decl o then begin
                  let key = (Op.name o, decl_sym o) in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    decls := o :: !decls
                  end
                end
                else rest := o :: !rest)
              ops)
        results;
      let merged =
        Op.with_module_body shell (List.rev !decls @ List.rev !rest)
      in
      let merged, _ = Op.renumber merged in
      if verify_between then
        with_pass_context "in IR verification after parallel pipeline merge"
          (fun () -> Verifier.verify_exn merged);
      let sum_over_units a j =
        let s = ref 0.0 in
        for i = 0 to n - 1 do
          s := !s +. a.(i).(j)
        done;
        !s
      in
      let records =
        {
          stage_name = "input";
          elapsed_s = 0.0;
          op_count = count_ops m;
          alloc_bytes = 0.0;
        }
        :: List.mapi
             (fun j p ->
               let ops = ref 0 in
               for i = 0 to n - 1 do
                 ops := !ops + pass_ops.(i).(j)
               done;
               {
                 stage_name = p.pass_name;
                 elapsed_s = sum_over_units pass_wall j;
                 op_count = !ops;
                 alloc_bytes = sum_over_units pass_alloc j;
               })
             passes
      in
      (merged, records)
    end

let run_pipeline_parallel_exn ?verify_between ?domains passes m =
  fst (run_pipeline_parallel ?verify_between ?domains passes m)

let pp_stage fmt r =
  Fmt.pf fmt "%-28s %6.2f ms  %5d ops" r.stage_name (r.elapsed_s *. 1000.)
    r.op_count;
  if r.alloc_bytes > 0.0 then
    Fmt.pf fmt "  %8.1f kB" (r.alloc_bytes /. 1024.)
