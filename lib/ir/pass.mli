(** Pass manager: named module-to-module transformations with optional
    inter-pass verification, timing and IR inspection hooks. *)

type t

type stage_record = {
  stage_name : string;
  elapsed_s : float;
  op_count : int;
  alloc_bytes : float;
      (** OCaml heap allocated while the pass ran; 0 for the synthetic
          ["input"] record. *)
}

val make : string -> (Op.t -> Op.t) -> t
val name : t -> string
val run : t -> Op.t -> Op.t
val count_ops : Op.t -> int

val run_pipeline :
  ?verify_between:bool ->
  ?on_stage:(stage_record -> Op.t -> unit) ->
  t list ->
  Op.t ->
  Op.t * stage_record list
(** Run passes in order. The record list includes an initial ["input"]
    entry. [verify_between] runs {!Verifier.verify_exn} after each pass. *)

val run_pipeline_exn :
  ?verify_between:bool ->
  ?on_stage:(stage_record -> Op.t -> unit) ->
  t list ->
  Op.t ->
  Op.t

val pp_stage : Format.formatter -> stage_record -> unit
