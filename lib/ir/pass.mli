(** Pass manager: named module-to-module transformations with optional
    inter-pass verification, timing and IR inspection hooks. *)

type t

type stage_record = {
  stage_name : string;
  elapsed_s : float;
  op_count : int;
  alloc_bytes : float;
      (** OCaml heap allocated while the pass ran; 0 for the synthetic
          ["input"] record. *)
}

val make : string -> (Op.t -> Op.t) -> t
val name : t -> string
val run : t -> Op.t -> Op.t
val count_ops : Op.t -> int

val run_pipeline :
  ?verify_between:bool ->
  ?on_stage:(stage_record -> Op.t -> unit) ->
  t list ->
  Op.t ->
  Op.t * stage_record list
(** Run passes in order. The record list includes an initial ["input"]
    entry. [verify_between] runs {!Verifier.verify_exn} after each pass. *)

val run_pipeline_exn :
  ?verify_between:bool ->
  ?on_stage:(stage_record -> Op.t -> unit) ->
  t list ->
  Op.t ->
  Op.t

val run_pipeline_parallel :
  ?verify_between:bool ->
  ?domains:int ->
  t list ->
  Op.t ->
  Op.t * stage_record list
(** Run the pipeline over each top-level op of a module independently,
    fanned across [domains] OCaml domains (static contiguous chunks; the
    calling domain takes the first), then merge in the original top-level
    order, dedupe declaration-only symbol ops, and canonically renumber
    the merged module ({!Op.renumber}). The renumbering makes the output
    a pure function of the input module and pass list: byte-identical for
    any domain count, and — for function-local passes — equal to
    [Op.renumber] applied to the sequential {!run_pipeline} result.
    Requires passes that treat top-level ops independently (all lowering
    passes up to the module-reordering LLVM conversion qualify). Falls
    back to sequential {!run_pipeline} for non-modules, single-op modules
    and modules with cross-unit value references. Per-pass
    [stage_record]s report wall/alloc summed across units (CPU cost, not
    elapsed wall of the parallel section). The first failing unit's
    exception is re-raised, regardless of domain interleaving. *)

val run_pipeline_parallel_exn :
  ?verify_between:bool -> ?domains:int -> t list -> Op.t -> Op.t

val pp_stage : Format.formatter -> stage_record -> unit
