(* Textual IR output in MLIR's generic-operation syntax, e.g.

     %3 = "arith.addf"(%1, %2) <{fastmath = "contract"}> : (f32, f32) -> (f32)

   The output round-trips through Ir_parser. *)

let pp_value_list fmt vs = Fmt.list ~sep:(Fmt.any ", ") Value.pp fmt vs

let pp_type_list fmt tys =
  Fmt.pf fmt "(%a)" (Fmt.list ~sep:(Fmt.any ", ") Types.pp) tys

let pp_attrs fmt attrs =
  let pp_kv fmt (k, v) = Fmt.pf fmt "%s = %a" k Attr.pp v in
  Fmt.pf fmt " <{%a}>" (Fmt.list ~sep:(Fmt.any ", ") pp_kv) attrs

(* The "loc" attribute is pulled out of the <{...}> dict and printed in
   MLIR's trailing [loc(...)] position instead. *)
let is_loc_attr = function _, Attr.Loc _ -> true | _ -> false

let rec pp_op indent fmt op =
  let pad = String.make indent ' ' in
  Fmt.string fmt pad;
  (match op.Op.results with
  | [] -> ()
  | rs -> Fmt.pf fmt "%a = " pp_value_list rs);
  Fmt.pf fmt "\"%s\"(%a)" op.Op.name pp_value_list op.Op.operands;
  (match List.filter (fun a -> not (is_loc_attr a)) op.Op.attrs with
  | [] -> ()
  | attrs -> pp_attrs fmt attrs);
  (match op.Op.regions with
  | [] -> ()
  | regions ->
    Fmt.string fmt " (";
    List.iteri
      (fun i r ->
        if i > 0 then Fmt.string fmt ", ";
        pp_region indent fmt r)
      regions;
    Fmt.string fmt ")");
  Fmt.pf fmt " : %a -> %a"
    pp_type_list (List.map Value.ty op.Op.operands)
    pp_type_list (List.map Value.ty op.Op.results);
  let l = Op.loc op in
  if Ftn_diag.Loc.is_known l then Fmt.pf fmt " loc(%a)" Ftn_diag.Loc.pp l

and pp_region indent fmt blocks =
  Fmt.string fmt "{";
  List.iter
    (fun b ->
      Fmt.pf fmt "\n%s^%s(%a):"
        (String.make (indent + 1) ' ')
        b.Op.label
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp_typed)
        b.Op.args;
      List.iter
        (fun o -> Fmt.pf fmt "\n%a" (pp_op (indent + 2)) o)
        b.Op.body)
    blocks;
  Fmt.pf fmt "\n%s}" (String.make indent ' ')

let pp fmt op = pp_op 0 fmt op
let pp_ops fmt ops = Fmt.list ~sep:(Fmt.any "\n") (pp_op 0) fmt ops

(* Render without automatic line breaking: the break hints inside Fmt.list
   otherwise wrap mid-operation at the default 78-column margin. *)
let with_wide_formatter pp_f x =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  pp_f fmt x;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let to_string op = with_wide_formatter pp op
let ops_to_string ops = with_wide_formatter pp_ops ops
