(* Greedy pattern-rewrite driver, in the spirit of MLIR's
   applyPatternsAndFoldGreedily. A pattern either leaves an op alone or
   replaces it by a list of new ops plus a value substitution that redirects
   the old results. Patterns are applied bottom-up until fixpoint. *)

type outcome = {
  new_ops : Op.t list;
  replacements : (Value.t * Value.t) list;
      (* old result -> replacement value *)
}

type pattern = {
  pat_name : string;
  match_and_rewrite : Builder.t -> Op.t -> outcome option;
}

let pattern pat_name match_and_rewrite = { pat_name; match_and_rewrite }

let replace_with ?(replacements = []) new_ops = { new_ops; replacements }

let erase = { new_ops = []; replacements = [] }

(* One bottom-up sweep. Returns the rewritten body and whether anything
   changed. Substitutions are applied to the remainder of the enclosing
   block and propagate outward through the returned mapping. [on_fire]
   observes each pattern that fires (used for non-convergence reporting). *)
let apply_once ?(on_fire = fun _ -> ()) patterns builder top =
  let changed = ref false in
  (* Accumulated value substitution (old -> new), applied lazily. *)
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match Hashtbl.find_opt subst (Value.id v) with
    | Some v' -> resolve v'
    | None -> v
  in
  let rec rewrite_op op =
    let op =
      {
        op with
        Op.operands = List.map resolve op.Op.operands;
        regions =
          List.map
            (fun blocks ->
              List.map
                (fun b ->
                  { b with Op.body = List.concat_map rewrite_op b.Op.body })
                blocks)
            op.Op.regions;
      }
    in
    let rec try_patterns = function
      | [] -> [ op ]
      | p :: rest -> (
        let outcome =
          (* Attach rewrite-pattern context to any diagnostics escaping a
             pattern body. *)
          try p.match_and_rewrite builder op
          with Ftn_diag.Diag.Diag_failure ds ->
            raise
              (Ftn_diag.Diag.Diag_failure
                 (List.map
                    (fun d ->
                      Ftn_diag.Diag.add_note d
                        (Fmt.str "while applying rewrite pattern '%s' to '%s'"
                           p.pat_name op.Op.name))
                    ds))
        in
        match outcome with
        | Some { new_ops; replacements } ->
          changed := true;
          on_fire p.pat_name;
          List.iter
            (fun (old_v, new_v) ->
              Hashtbl.replace subst (Value.id old_v) new_v)
            replacements;
          (* New ops may still use stale values produced earlier in this
             sweep. *)
          List.map (Op.substitute (fun v ->
              let v' = resolve v in
              if Value.equal v v' then None else Some v')) new_ops
        | None -> try_patterns rest)
    in
    try_patterns patterns
  in
  let result =
    match rewrite_op top with
    | [ op ] -> op
    | _ -> invalid_arg "Rewrite.apply_once: top-level op was erased or split"
  in
  (* Apply any substitutions that were recorded after their uses were
     already emitted (e.g. a later op folded into an earlier value). *)
  let result =
    if Hashtbl.length subst = 0 then result
    else
      Op.substitute
        (fun v ->
          let v' = resolve v in
          if Value.equal v v' then None else Some v')
        result
  in
  (result, !changed)

let apply ?(max_iterations = 32) patterns top =
  let builder = Builder.for_op top in
  let last_fired = ref None in
  let on_fire name = last_fired := Some name in
  let rec go op n =
    if n = 0 then begin
      (* Only reached when the final sweep still changed something: the
         driver ran out of iterations before a fixpoint. *)
      Ftn_obs.Metrics.incr "rewrite.nonconverged";
      Ftn_diag.Diag_engine.warning Ftn_diag.Diag_engine.default
        (Fmt.str
           "rewrite did not converge after %d iterations (last pattern to \
            fire: %s)"
           max_iterations
           (Option.value ~default:"<none>" !last_fired));
      op
    end
    else
      let op', changed = apply_once ~on_fire patterns builder op in
      if changed then go op' (n - 1) else op'
  in
  go top max_iterations
