(* Greedy pattern-rewrite driver, in the spirit of MLIR's
   applyPatternsAndFoldGreedily. A pattern either leaves an op alone or
   replaces it by a list of new ops plus a value substitution that redirects
   the old results.

   Two engines share the pattern/fold/dead-op semantics:

   - Worklist (the default): the op tree is loaded once into a mutable node
     graph whose def/use/substitution side tables are dense arrays indexed
     by SSA value id (Arena), not hashtables. Patterns are indexed by root
     op name with the candidate list per root precomputed when the pattern
     set is compiled; a successful rewrite re-enqueues only the replacement
     ops, the users of redirected values and the producers feeding the
     erased op. Each node caches its materialised Op.t subtree; a mutation
     invalidates only the spine from the mutated node to the root, so
     repeat visits and the final export share every unchanged subtree
     instead of re-copying whole functions.

   - Sweep (the pre-worklist engine, kept for fixpoint-equivalence tests
     and as the bench baseline): rebuild the entire tree bottom-up until a
     whole sweep changes nothing.

   Value redirections go through a substitution table whose [resolve] is
   cycle-guarded (two patterns replacing each other's results raise a
   located diagnostic naming the second pattern, instead of spinning) and
   path-compressed (long chains are pointed directly at their root). *)

type outcome = {
  new_ops : Op.t list;
  replacements : (Value.t * Value.t) list;
      (* old result -> replacement value *)
}

type ctx = {
  ctx_builder : Builder.t;
  ctx_def_of : Value.t -> Op.t option;
  ctx_const_of : Value.t -> Attr.t option;
  ctx_parents : unit -> Op.t list;
}

let builder ctx = ctx.ctx_builder
let def_of ctx v = ctx.ctx_def_of v
let const_of ctx v = ctx.ctx_const_of v
let parents ctx = ctx.ctx_parents ()

type pattern = {
  pat_name : string;
  pat_roots : string list;
  match_and_rewrite : ctx -> Op.t -> outcome option;
}

let pattern ?(roots = []) pat_name match_and_rewrite =
  { pat_name; pat_roots = roots; match_and_rewrite }

let replace_with ?(replacements = []) new_ops = { new_ops; replacements }

let erase = { new_ops = []; replacements = [] }

type folded = To_value of Value.t | To_constant of Attr.t

type folder = ctx -> Op.t -> folded list option

type config = {
  max_iterations : int;
  fold : folder option;
  is_trivially_dead : Op.t -> bool;
}

let default_trivially_dead op =
  (match Op.dialect op with "arith" | "math" -> true | _ -> false)
  && Op.regions op = []

let default_config =
  { max_iterations = 32; fold = None; is_trivially_dead = default_trivially_dead }

type driver = Worklist | Sweep

let driver_ref = ref Worklist
let set_default_driver d = driver_ref := d
let default_driver () = !driver_ref

type stats = {
  ops_visited : int;
  patterns_fired : int;
  ops_folded : int;
  ops_erased : int;
  converged : bool;
}

(* The module wrapper op is not counted as a visit: per-function pass
   partitioning (Pass.run_pipeline_parallel) wraps each top-level op in
   its own module, and keeping wrapper visits out of the totals makes the
   rewrite metrics partition-invariant. *)
let counted name = not (String.equal name "builtin.module")

(* --- cycle-guarded, path-compressing substitution resolution --- *)

let cycle_error ~pat_name ~loc chain =
  raise
    (Ftn_diag.Diag.Diag_failure
       [
         Ftn_diag.Diag.error ~loc
           (Fmt.str
              "substitution cycle detected while applying rewrite pattern \
               '%s' (replacement chain: %s)"
              pat_name
              (String.concat " -> "
                 (List.rev_map (fun v -> Fmt.str "%%%d" (Value.id v)) chain)));
       ])

(* Follow [v] through [subst] to its root. Values revisited along the way
   mean two rewrites redirected each other's results: report the pattern
   that closed the loop. All traversed entries are re-pointed at the root
   so later lookups are O(1). *)
let resolve_tbl subst ~pat_name ~loc v =
  match Hashtbl.find_opt subst (Value.id v) with
  | None -> v
  | Some _ ->
    let rec follow visited v =
      match Hashtbl.find_opt subst (Value.id v) with
      | None -> (v, visited)
      | Some v' ->
        if List.exists (fun u -> Value.id u = Value.id v') (v :: visited) then
          cycle_error ~pat_name ~loc (v' :: v :: visited)
        else follow (v :: visited) v'
    in
    let root, visited = follow [] v in
    List.iter
      (fun u ->
        if Value.id u <> Value.id root then
          Hashtbl.replace subst (Value.id u) root)
      visited;
    root

(* Record [old -> repl], detecting the two-pattern cycle a->b, b->a at
   insertion time: if [repl] already resolves back to [old], the rewrite
   that introduced this replacement closed a loop. *)
let record_subst subst ~pat_name ~loc old_v repl =
  let root = resolve_tbl subst ~pat_name ~loc repl in
  if Value.id root = Value.id old_v then
    cycle_error ~pat_name ~loc [ root; repl; old_v ]
  else Hashtbl.replace subst (Value.id old_v) root;
  root

(* Arena-backed twins of the two functions above: same cycle guard and
   path compression, over a dense id-indexed union-find array instead of
   a hashtable. Used by the worklist engine. *)
let resolve_arena subst ~pat_name ~loc v =
  match Arena.get subst (Value.id v) with
  | None -> v
  | Some _ ->
    let rec follow visited v =
      match Arena.get subst (Value.id v) with
      | None -> (v, visited)
      | Some v' ->
        if List.exists (fun u -> Value.id u = Value.id v') (v :: visited) then
          cycle_error ~pat_name ~loc (v' :: v :: visited)
        else follow (v :: visited) v'
    in
    let root, visited = follow [] v in
    List.iter
      (fun u ->
        if Value.id u <> Value.id root then
          Arena.set subst (Value.id u) (Some root))
      visited;
    root

let record_subst_arena subst ~pat_name ~loc old_v repl =
  let root = resolve_arena subst ~pat_name ~loc repl in
  if Value.id root = Value.id old_v then
    cycle_error ~pat_name ~loc [ root; repl; old_v ]
  else Arena.set subst (Value.id old_v) (Some root);
  root

(* Constant materialisation reuses the folded op's result value, so folds
   need no value redirection and leave SSA ids untouched. *)
let constant_op result attr =
  Op.make "arith.constant" ~attrs:[ ("value", attr) ] ~results:[ result ]

let is_constant_like ~name ~operands ~regions ~results =
  ignore name;
  operands = [] && regions = [] && List.length results = 1

(* Pattern bodies re-raise located diagnostics with rewrite context. *)
let with_pattern_context p op f =
  try f () with
  | Ftn_diag.Diag.Diag_failure ds ->
    raise
      (Ftn_diag.Diag.Diag_failure
         (List.map
            (fun d ->
              Ftn_diag.Diag.add_note d
                (Fmt.str "while applying rewrite pattern '%s' to '%s'"
                   p.pat_name op.Op.name))
            ds))

let warn_nonconverged ~budget ~unit_name last_fired =
  Ftn_obs.Metrics.incr "rewrite.nonconverged";
  Ftn_diag.Diag_engine.warning Ftn_diag.Diag_engine.default
    (Fmt.str "rewrite did not converge after %d %s (last pattern to fire: %s)"
       budget unit_name
       (Option.value ~default:"<none>" last_fired))

(* --- per-pattern profiling --- *)

(* Firing counts and attributed wall time per pattern name, process-wide
   (patterns are shared across pass instances). Only populated while
   [Ftn_obs.Profile.on] — the timing calls would otherwise tax every
   match attempt of every compile. Guarded by a mutex: pass pipelines may
   run rewrites from several domains concurrently. *)
type pattern_stat = {
  mutable ps_attempts : int;
  mutable ps_fired : int;
  mutable ps_time_s : float;
}

let pattern_stats : (string, pattern_stat) Hashtbl.t = Hashtbl.create 32
let pattern_stats_mu = Mutex.create ()

(* callers hold [pattern_stats_mu] *)
let stat_for name =
  match Hashtbl.find_opt pattern_stats name with
  | Some s -> s
  | None ->
    let s = { ps_attempts = 0; ps_fired = 0; ps_time_s = 0.0 } in
    Hashtbl.replace pattern_stats name s;
    s

let reset_pattern_profile () =
  Mutex.protect pattern_stats_mu (fun () -> Hashtbl.reset pattern_stats)

let pattern_profile () =
  Mutex.protect pattern_stats_mu (fun () ->
      Hashtbl.fold
        (fun name s acc ->
          (name, s.ps_attempts, s.ps_fired, s.ps_time_s) :: acc)
        pattern_stats [])
  |> List.sort (fun (na, _, _, a) (nb, _, _, b) ->
         match Float.compare b a with 0 -> String.compare na nb | c -> c)

(* One pattern attempt, shared by both engines. *)
let run_pattern p ctx op =
  if not !Ftn_obs.Profile.on then
    with_pattern_context p op (fun () -> p.match_and_rewrite ctx op)
  else begin
    let t0 = Unix.gettimeofday () in
    let r = with_pattern_context p op (fun () -> p.match_and_rewrite ctx op) in
    let dt = Unix.gettimeofday () -. t0 in
    Mutex.protect pattern_stats_mu (fun () ->
        let st = stat_for p.pat_name in
        st.ps_attempts <- st.ps_attempts + 1;
        st.ps_time_s <- st.ps_time_s +. dt;
        match r with Some _ -> st.ps_fired <- st.ps_fired + 1 | None -> ());
    r
  end

let publish_stats st =
  if st.ops_visited > 0 then
    Ftn_obs.Metrics.incr ~by:st.ops_visited "rewrite.ops_visited";
  if st.patterns_fired > 0 then
    Ftn_obs.Metrics.incr ~by:st.patterns_fired "rewrite.patterns_fired";
  if st.ops_folded > 0 then
    Ftn_obs.Metrics.incr ~by:st.ops_folded "rewrite.ops_folded";
  if st.ops_erased > 0 then
    Ftn_obs.Metrics.incr ~by:st.ops_erased "rewrite.ops_erased"

(* Patterns indexed by root op name. Compiled once per pattern set (not
   once per [run]): each root's candidate array already has the wildcard
   patterns merged in at their original positions, so the per-visit
   lookup is a single hashtable probe with no allocation or sorting. *)
type compiled = {
  by_root : (string, pattern array) Hashtbl.t;
  wildcard_only : pattern array;
}

type index = compiled

let compile patterns =
  let rooted : (string, (int * pattern) list) Hashtbl.t = Hashtbl.create 16 in
  let wild = ref [] in
  List.iteri
    (fun i p ->
      match p.pat_roots with
      | [] -> wild := (i, p) :: !wild
      | roots ->
        List.iter
          (fun r ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt rooted r) in
            Hashtbl.replace rooted r ((i, p) :: prev))
          roots)
    patterns;
  let wild = List.rev !wild in
  let by_root = Hashtbl.create 16 in
  Hashtbl.iter
    (fun r rs ->
      let merged =
        List.merge
          (fun (i, _) (j, _) -> Int.compare i j)
          (List.rev rs) wild
      in
      Hashtbl.replace by_root r (Array.of_list (List.map snd merged)))
    rooted;
  { by_root; wildcard_only = Array.of_list (List.map snd wild) }

let candidates index name =
  match Hashtbl.find_opt index.by_root name with
  | Some a -> a
  | None -> index.wildcard_only

(* ===================== worklist engine ===================== *)

module Wl = struct
  type node = {
    nid : int;
    n_name : string;
    mutable n_operands : Value.t list;
    n_results : Value.t list;
    n_attrs : (string * Attr.t) list;
    mutable n_regions : nblock list list;
    n_parent : node option;
    n_block : nblock option;
    mutable n_live : bool;
    mutable n_queued : bool;
    mutable n_cached : Op.t option;
        (* materialised subtree; invariant: a node with no cache has no
           cached ancestor (materialising a node caches every
           descendant, and invalidation clears the whole spine up to
           the root) *)
  }

  and nblock = {
    nb_label : string;
    nb_args : Value.t list;
    mutable nb_body : node list;
  }

  type t = {
    eb : Builder.t;
    cfg : config;
    index : index;
    mutable next_nid : int;
    defs : node option Arena.t;  (* value id -> defining node *)
    uses : node list Arena.t;
        (* value id -> user nodes; lazily deleted (dead nodes linger and
           are filtered on read) *)
    subst : Value.t option Arena.t;  (* path-compressed union-find *)
    queue : node Queue.t;
    mutable root : node option;
    mutable cur : node option;  (* node being visited, for ctx_parents *)
    mutable visited : int;
    mutable fired : int;
    mutable folded : int;
    mutable erased : int;
    mutable last_fired : string option;
  }

  let create cfg index =
    {
      (* import reserves every value id it sees before any pattern runs,
         so no up-front Builder.for_op pre-walk is needed *)
      eb = Builder.create ();
      cfg;
      index;
      next_nid = 0;
      defs = Arena.create ~capacity:256 None;
      uses = Arena.create ~capacity:256 [];
      subst = Arena.create ~capacity:256 None;
      queue = Queue.create ();
      root = None;
      cur = None;
      visited = 0;
      fired = 0;
      folded = 0;
      erased = 0;
      last_fired = None;
    }

  let add_use e v n =
    let id = Value.id v in
    Arena.set e.uses id (n :: Arena.get e.uses id)

  let live_users e v =
    List.filter (fun n -> n.n_live) (Arena.get e.uses (Value.id v))

  let has_live_user e v =
    List.exists (fun n -> n.n_live) (Arena.get e.uses (Value.id v))

  let enqueue e n =
    if n.n_live && not n.n_queued then begin
      n.n_queued <- true;
      Queue.push n e.queue
    end

  (* Post-order (children first), matching the sweep engine's bottom-up
     visit order on the initial tree. *)
  let rec enqueue_tree e n =
    List.iter
      (fun blocks ->
        List.iter (fun nb -> List.iter (enqueue_tree e) nb.nb_body) blocks)
      n.n_regions;
    enqueue e n

  let resolve e v =
    resolve_arena e.subst ~pat_name:"<engine>" ~loc:Ftn_diag.Loc.unknown v

  (* Drop a node's cached materialisation and its ancestors' (theirs embed
     this subtree). Stops at the first uncached node: by the invariant its
     ancestors are uncached too. *)
  let rec invalidate n =
    match n.n_cached with
    | None -> ()
    | Some _ ->
      n.n_cached <- None;
      (match n.n_parent with Some p -> invalidate p | None -> ())

  let rec import e parent block (op : Op.t) =
    let operands = List.map (resolve e) op.Op.operands in
    let n =
      {
        nid = (e.next_nid <- e.next_nid + 1; e.next_nid);
        n_name = op.Op.name;
        n_operands = operands;
        n_results = op.Op.results;
        n_attrs = op.Op.attrs;
        n_regions = [];
        n_parent = parent;
        n_block = block;
        n_live = true;
        n_queued = false;
        n_cached = None;
      }
    in
    List.iter (fun r -> Arena.set e.defs (Value.id r) (Some n)) n.n_results;
    List.iter (fun v -> add_use e v n) operands;
    List.iter
      (fun v -> Builder.reserve_above e.eb (Value.id v))
      (n.n_results @ operands);
    n.n_regions <-
      List.map
        (fun blocks ->
          List.map
            (fun (b : Op.block) ->
              let nb =
                { nb_label = b.Op.label; nb_args = b.Op.args; nb_body = [] }
              in
              List.iter
                (fun v -> Builder.reserve_above e.eb (Value.id v))
                b.Op.args;
              nb.nb_body <-
                List.map (fun o -> import e (Some n) (Some nb) o) b.Op.body;
              nb)
            blocks)
        op.Op.regions;
    n

  (* Materialise a node's subtree, reusing every cached descendant. Cost
     is proportional to the invalidated spine, not the subtree size. *)
  let rec materialize n =
    match n.n_cached with
    | Some op -> op
    | None ->
      let op =
        {
          Op.name = n.n_name;
          operands = n.n_operands;
          results = n.n_results;
          attrs = n.n_attrs;
          regions =
            List.map
              (fun blocks ->
                List.map
                  (fun nb ->
                    {
                      Op.label = nb.nb_label;
                      args = nb.nb_args;
                      body = List.map materialize nb.nb_body;
                    })
                  blocks)
              n.n_regions;
        }
      in
      n.n_cached <- Some op;
      op

  (* Killing a node unregisters its defs; producers that just lost a user
     are re-enqueued so the driver can notice they became trivially dead
     (the use lists themselves are lazily deleted). *)
  let rec kill e n =
    if n.n_live then begin
      n.n_live <- false;
      List.iter
        (fun blocks -> List.iter (fun nb -> List.iter (kill e) nb.nb_body) blocks)
        n.n_regions;
      List.iter
        (fun v ->
          match Arena.get e.defs (Value.id v) with
          | Some d when d.n_live -> enqueue e d
          | _ -> ())
        n.n_operands;
      List.iter
        (fun r ->
          match Arena.get e.defs (Value.id r) with
          | Some d when d == n -> Arena.set e.defs (Value.id r) None
          | _ -> ())
        n.n_results
    end

  (* Replace [n] with [new_ops] in its containing block; enqueue the fresh
     nodes and the users of any result value a new op redefines in place. *)
  let splice e n new_ops =
    let old_results = n.n_results in
    match n.n_block with
    | None -> (
      match new_ops with
      | [ op ] ->
        kill e n;
        let n' = import e None None op in
        e.root <- Some n';
        enqueue_tree e n'
      | _ -> invalid_arg "Rewrite: top-level op was erased or split")
    | Some nb ->
      kill e n;
      (match n.n_parent with Some p -> invalidate p | None -> ());
      let news = List.map (import e n.n_parent (Some nb)) new_ops in
      nb.nb_body <-
        List.concat_map (fun m -> if m == n then news else [ m ]) nb.nb_body;
      List.iter (enqueue_tree e) news;
      List.iter
        (fun r ->
          match Arena.get e.defs (Value.id r) with
          | Some d when d.n_live -> List.iter (enqueue e) (live_users e r)
          | _ -> ())
        old_results

  (* Redirect every user of [old_v], eagerly: their operand lists are
     rewritten in place (invalidating their cached subtrees) and they are
     re-enqueued. *)
  let record_replacement e ~pat_name ~loc old_v repl =
    let root = record_subst_arena e.subst ~pat_name ~loc old_v repl in
    let users = live_users e old_v in
    Arena.set e.uses (Value.id old_v) [];
    List.iter
      (fun u ->
        u.n_operands <-
          List.map
            (fun v -> if Value.id v = Value.id old_v then root else v)
            u.n_operands;
        invalidate u;
        add_use e root u;
        enqueue e u)
      users

  let shallow n =
    {
      Op.name = n.n_name;
      operands = n.n_operands;
      results = n.n_results;
      attrs = n.n_attrs;
      regions = [];
    }

  (* One ctx serves the whole run; per-visit state lives in [e.cur]. *)
  let ctx_of e =
    let def_node v =
      let v = resolve e v in
      match Arena.get e.defs (Value.id v) with
      | Some d when d.n_live -> Some d
      | _ -> None
    in
    let rec up = function
      | None -> []
      | Some p -> shallow p :: up p.n_parent
    in
    {
      ctx_builder = e.eb;
      ctx_def_of = (fun v -> Option.map materialize (def_node v));
      ctx_const_of =
        (fun v ->
          match def_node v with
          | Some d
            when is_constant_like ~name:d.n_name ~operands:d.n_operands
                   ~regions:d.n_regions ~results:d.n_results ->
            List.assoc_opt "value" d.n_attrs
          | _ -> None);
      ctx_parents =
        (fun () ->
          match e.cur with None -> [] | Some n -> up n.n_parent);
    }

  let apply_fold e ctx n op folded =
    if List.length folded <> List.length n.n_results then
      invalid_arg
        (Fmt.str "Rewrite: fold of '%s' returned %d values for %d results"
           n.n_name (List.length folded) (List.length n.n_results));
    ignore ctx;
    let loc = Op.loc op in
    let pat_name = Fmt.str "fold(%s)" n.n_name in
    let const_ops =
      List.concat
        (List.map2
           (fun r f ->
             match f with
             | To_value v ->
               record_replacement e ~pat_name ~loc r v;
               []
             | To_constant a -> [ constant_op r a ])
           n.n_results folded)
    in
    e.folded <- e.folded + 1;
    splice e n const_ops

  let visit e ctx n =
    let op = lazy (materialize n) in
    let folded =
      match e.cfg.fold with
      | Some f when n.n_results <> [] -> (
        match f ctx (Lazy.force op) with
        | Some folded ->
          apply_fold e ctx n (Lazy.force op) folded;
          true
        | None -> false)
      | _ -> false
    in
    if (not folded) && n.n_live then begin
      let dead =
        List.for_all (fun r -> not (has_live_user e r)) n.n_results
        && n.n_parent <> None
        && e.cfg.is_trivially_dead (Lazy.force op)
      in
      if dead then begin
        e.erased <- e.erased + 1;
        splice e n []
      end
      else
        let ps = candidates e.index n.n_name in
        let rec go i =
          if i < Array.length ps then begin
            let p = ps.(i) in
            match run_pattern p ctx (Lazy.force op) with
            | None -> go (i + 1)
            | Some { new_ops; replacements } ->
              e.fired <- e.fired + 1;
              e.last_fired <- Some p.pat_name;
              let loc = Op.loc (Lazy.force op) in
              List.iter
                (fun (old_v, repl) ->
                  record_replacement e ~pat_name:p.pat_name ~loc old_v repl)
                replacements;
              splice e n new_ops
          end
        in
        go 0
    end

  let run cfg index top =
    let e = create cfg index in
    let root = import e None None top in
    e.root <- Some root;
    enqueue_tree e root;
    let initial = e.next_nid in
    let budget = cfg.max_iterations * (initial + 16) in
    let converged = ref true in
    let ctx = ctx_of e in
    (try
       while not (Queue.is_empty e.queue) do
         let n = Queue.pop e.queue in
         n.n_queued <- false;
         if n.n_live then begin
           if e.visited >= budget then begin
             converged := false;
             raise Exit
           end;
           if counted n.n_name then e.visited <- e.visited + 1;
           e.cur <- Some n;
           visit e ctx n
         end
       done
     with Exit -> warn_nonconverged ~budget ~unit_name:"op visits" e.last_fired);
    let result =
      match e.root with
      | Some r -> materialize r
      | None -> invalid_arg "Rewrite: lost the root op"
    in
    ( result,
      {
        ops_visited = e.visited;
        patterns_fired = e.fired;
        ops_folded = e.folded;
        ops_erased = e.erased;
        converged = !converged;
      } )
end

(* ===================== sweep engine ===================== *)

module Sw = struct
  (* One bottom-up sweep. Substitutions are applied to the remainder of the
     enclosing block and propagate outward through the returned mapping. *)
  type t = {
    eb : Builder.t;
    cfg : config;
    index : index;
    subst : (int, Value.t) Hashtbl.t;
    mutable defs : (int, Op.t) Hashtbl.t;  (* rebuilt each sweep *)
    mutable used : (int, int) Hashtbl.t;  (* value id -> use count, per sweep *)
    mutable visited : int;
    mutable fired : int;
    mutable folded : int;
    mutable erased : int;
    mutable last_fired : string option;
    mutable changed : bool;
    mutable parent_stack : Op.t list;  (* innermost first, shallow copies *)
  }

  let resolve e v =
    resolve_tbl e.subst ~pat_name:"<engine>" ~loc:Ftn_diag.Loc.unknown v

  let ctx_of e =
    let def_node v =
      let v = resolve e v in
      Hashtbl.find_opt e.defs (Value.id v)
    in
    {
      ctx_builder = e.eb;
      ctx_def_of = def_node;
      ctx_const_of =
        (fun v ->
          match def_node v with
          | Some op
            when is_constant_like ~name:(Op.name op) ~operands:op.Op.operands
                   ~regions:op.Op.regions ~results:op.Op.results ->
            Op.find_attr op "value"
          | _ -> None);
      ctx_parents = (fun () -> e.parent_stack);
    }

  let snapshot e top =
    let defs = Hashtbl.create 256 in
    let used = Hashtbl.create 256 in
    Op.walk
      (fun o ->
        List.iter (fun r -> Hashtbl.replace defs (Value.id r) o) o.Op.results;
        List.iter
          (fun v ->
            let v = resolve e v in
            Hashtbl.replace used (Value.id v)
              (1 + Option.value ~default:0 (Hashtbl.find_opt used (Value.id v))))
          o.Op.operands)
      top;
    e.defs <- defs;
    e.used <- used

  let unused e v = Hashtbl.find_opt e.used (Value.id v) = None

  let rec rewrite_op e ctx op =
    if counted op.Op.name then e.visited <- e.visited + 1;
    let op =
      { op with Op.operands = List.map (resolve e) op.Op.operands }
    in
    e.parent_stack <- { op with Op.regions = [] } :: e.parent_stack;
    let op =
      {
        op with
        Op.regions =
          List.map
            (fun blocks ->
              List.map
                (fun b ->
                  { b with Op.body = List.concat_map (rewrite_op e ctx) b.Op.body })
                blocks)
            op.Op.regions;
      }
    in
    e.parent_stack <- List.tl e.parent_stack;
    let folded =
      match e.cfg.fold with
      | Some f when op.Op.results <> [] -> (
        match f ctx op with
        | Some folded ->
          if List.length folded <> List.length op.Op.results then
            invalid_arg
              (Fmt.str
                 "Rewrite: fold of '%s' returned %d values for %d results"
                 op.Op.name (List.length folded)
                 (List.length op.Op.results));
          let loc = Op.loc op in
          let pat_name = Fmt.str "fold(%s)" op.Op.name in
          let const_ops =
            List.concat
              (List.map2
                 (fun r f ->
                   match f with
                   | To_value v ->
                     ignore (record_subst e.subst ~pat_name ~loc r v);
                     []
                   | To_constant a -> [ constant_op r a ])
                 op.Op.results folded)
          in
          e.folded <- e.folded + 1;
          e.changed <- true;
          Some const_ops
        | None -> None)
      | _ -> None
    in
    match folded with
    | Some ops -> ops
    | None ->
      if
        op.Op.results <> [] || e.cfg.is_trivially_dead op
      then begin
        if
          List.for_all (unused e) op.Op.results
          && (not (Op.is_module op))
          && e.cfg.is_trivially_dead op
        then begin
          e.erased <- e.erased + 1;
          e.changed <- true;
          []
        end
        else try_patterns e ctx op
      end
      else try_patterns e ctx op

  and try_patterns e ctx op =
    let ps = candidates e.index op.Op.name in
    let rec go i =
      if i >= Array.length ps then [ op ]
      else
        let p = ps.(i) in
        let outcome = run_pattern p ctx op in
        match outcome with
        | Some { new_ops; replacements } ->
          e.changed <- true;
          e.fired <- e.fired + 1;
          e.last_fired <- Some p.pat_name;
          let loc = Op.loc op in
          List.iter
            (fun (old_v, repl) ->
              ignore (record_subst e.subst ~pat_name:p.pat_name ~loc old_v repl))
            replacements;
          (* New ops may still use stale values produced earlier in this
             sweep. *)
          List.map
            (Op.substitute (fun v ->
                 let v' = resolve e v in
                 if Value.equal v v' then None else Some v'))
            new_ops
        | None -> go (i + 1)
    in
    go 0

  let sweep_once e top =
    e.changed <- false;
    snapshot e top;
    let ctx = ctx_of e in
    let result =
      match rewrite_op e ctx top with
      | [ op ] -> op
      | _ -> invalid_arg "Rewrite: top-level op was erased or split"
    in
    (* Apply any substitutions that were recorded after their uses were
       already emitted (e.g. a later op folded into an earlier value). *)
    let result =
      if Hashtbl.length e.subst = 0 then result
      else
        Op.substitute
          (fun v ->
            let v' = resolve e v in
            if Value.equal v v' then None else Some v')
          result
    in
    result

  let run cfg index top =
    let e =
      {
        eb = Builder.for_op top;
        cfg;
        index;
        subst = Hashtbl.create 64;
        defs = Hashtbl.create 0;
        used = Hashtbl.create 0;
        visited = 0;
        fired = 0;
        folded = 0;
        erased = 0;
        last_fired = None;
        changed = false;
        parent_stack = [];
      }
    in
    let converged = ref false in
    let rec go op n =
      if n = 0 then begin
        (* Only reached when the final sweep still changed something: the
           driver ran out of iterations before a fixpoint. *)
        warn_nonconverged ~budget:cfg.max_iterations ~unit_name:"iterations"
          e.last_fired;
        op
      end
      else
        let op' = sweep_once e op in
        if e.changed then go op' (n - 1)
        else begin
          converged := true;
          op'
        end
    in
    let result = go top cfg.max_iterations in
    ( result,
      {
        ops_visited = e.visited;
        patterns_fired = e.fired;
        ops_folded = e.folded;
        ops_erased = e.erased;
        converged = !converged;
      } )
end

let apply_compiled_with_stats ?driver ?(config = default_config)
    ?max_iterations compiled top =
  let config =
    match max_iterations with
    | Some n -> { config with max_iterations = n }
    | None -> config
  in
  let driver = Option.value ~default:(default_driver ()) driver in
  let result, st =
    match driver with
    | Worklist -> Wl.run config compiled top
    | Sweep -> Sw.run config compiled top
  in
  publish_stats st;
  (result, st)

let apply_compiled ?driver ?config ?max_iterations compiled top =
  fst (apply_compiled_with_stats ?driver ?config ?max_iterations compiled top)

let apply_with_stats ?driver ?config ?max_iterations patterns top =
  apply_compiled_with_stats ?driver ?config ?max_iterations
    (compile patterns) top

let apply ?driver ?config ?max_iterations patterns top =
  fst (apply_with_stats ?driver ?config ?max_iterations patterns top)
