(** Greedy pattern-rewrite driver (MLIR's [applyPatternsAndFoldGreedily]
    analogue). The default engine is worklist-driven: patterns are indexed
    by the op name they root at (with a wildcard bucket for root-agnostic
    patterns), and a successful rewrite only re-enqueues the ops that could
    have been affected — the replacement ops, the users of any redirected
    values, and the producers of operands the erased op was keeping alive.
    Constant folding (via a per-pass {!folder} hook) and trivially-dead-op
    elimination run as part of the driver.

    The pre-worklist sweep driver — rebuild the whole tree bottom-up until
    a sweep changes nothing — is kept as {!Sweep}, both as the reference
    for fixpoint-equivalence property tests and as the baseline the
    [BENCH_rewrite.json] scenario measures the worklist engine against. *)

type outcome = {
  new_ops : Op.t list;  (** Replacement ops (empty to erase). *)
  replacements : (Value.t * Value.t) list;
      (** Redirections: uses of the first value become the second. *)
}

(** Context handed to patterns and fold hooks. *)
type ctx

val builder : ctx -> Builder.t
(** Fresh-value allocator scoped to the module being rewritten. *)

val def_of : ctx -> Value.t -> Op.t option
(** The op currently defining [v] (after pending redirections), if any.
    Block arguments and erased ops yield [None]. *)

val const_of : ctx -> Value.t -> Attr.t option
(** The "value" attribute of the constant-like op defining [v]: an op with
    no operands, no regions, a single result and a "value" attribute
    ([arith.constant], [llvm.mlir.constant], ...). *)

val parents : ctx -> Op.t list
(** The ops enclosing the op currently being visited, innermost first
    (ending at the top op [apply] was called on). The returned ops are
    shallow: name, operands, results and attributes are faithful, but
    their regions are empty — enough to test enclosing op names and
    symbol attributes without paying for a deep copy. *)

type pattern = {
  pat_name : string;
  pat_roots : string list;
      (** Op names this pattern can fire on; [[]] = any op (wildcard). *)
  match_and_rewrite : ctx -> Op.t -> outcome option;
}

val pattern :
  ?roots:string list -> string -> (ctx -> Op.t -> outcome option) -> pattern

val replace_with :
  ?replacements:(Value.t * Value.t) list -> Op.t list -> outcome

val erase : outcome
(** Drop the op entirely (only valid for ops whose results are unused). *)

(** One folded result: redirect to an existing value, or materialise a
    constant op (which reuses the folded op's result value, so no
    redirection is needed). *)
type folded = To_value of Value.t | To_constant of Attr.t

type folder = ctx -> Op.t -> folded list option
(** Returns one {!folded} per result of the op, or [None] if the op does
    not fold. *)

type config = {
  max_iterations : int;
      (** Sweep driver: sweeps until fixpoint. Worklist driver: the visit
          budget is [max_iterations * (initial op count + 16)]. *)
  fold : folder option;
  is_trivially_dead : Op.t -> bool;
      (** Erase the op when this holds and none of its results are used.
          The default accepts region-free [arith]/[math] ops. *)
}

val default_config : config
(** [max_iterations = 32], no folder, pure-arith/math dead-op predicate. *)

type driver = Worklist | Sweep

val set_default_driver : driver -> unit
val default_driver : unit -> driver
(** Process-wide default ({!Worklist} initially); the bench harness flips
    it to compare engines over an unchanged pass pipeline. *)

type stats = {
  ops_visited : int;
      (** Ops examined (sweep: every op, every sweep). [builtin.module]
          wrapper ops are not counted, so totals are invariant under
          per-function module partitioning
          ({!Pass.run_pipeline_parallel}). *)
  patterns_fired : int;
  ops_folded : int;
  ops_erased : int;  (** Trivially-dead ops removed by the driver. *)
  converged : bool;
}

val pattern_profile : unit -> (string * int * int * float) list
(** Per-pattern profiling data — [(name, attempts, fired, seconds)] —
    accumulated process-wide while [Ftn_obs.Profile.on] is set, sorted by
    attributed time descending. Empty when profiling never ran.
    Mutex-guarded: safe to populate from concurrent domains. *)

val reset_pattern_profile : unit -> unit

(** A pattern set with its root-name candidate index precomputed.
    Compiling once at module-toplevel (for pattern sets that don't depend
    on per-run options) removes the per-[apply] index construction from
    the hot path; the per-visit candidate lookup is a single hashtable
    probe returning a prebuilt array. *)
type compiled

val compile : pattern list -> compiled
(** Relative pattern order is preserved; wildcard (rootless) patterns are
    merged into every root's candidate array at their original
    positions. *)

val apply_compiled :
  ?driver:driver ->
  ?config:config ->
  ?max_iterations:int ->
  compiled ->
  Op.t ->
  Op.t

val apply_compiled_with_stats :
  ?driver:driver ->
  ?config:config ->
  ?max_iterations:int ->
  compiled ->
  Op.t ->
  Op.t * stats

val apply :
  ?driver:driver ->
  ?config:config ->
  ?max_iterations:int ->
  pattern list ->
  Op.t ->
  Op.t

val apply_with_stats :
  ?driver:driver ->
  ?config:config ->
  ?max_iterations:int ->
  pattern list ->
  Op.t ->
  Op.t * stats
(** Both drivers bump the [rewrite.ops_visited], [rewrite.patterns_fired],
    [rewrite.ops_folded] and [rewrite.ops_erased] metrics counters, and on
    budget exhaustion [rewrite.nonconverged] plus a warning naming the last
    pattern that fired. A substitution cycle (two patterns redirecting each
    other's results) raises a located diagnostic naming the offending
    pattern instead of hanging. *)
