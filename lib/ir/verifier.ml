(* Structural IR verification:
     - every value has a single definition;
     - every use is dominated by its definition (sequential order within a
       block, or a definition in an enclosing region — standard MLIR
       visibility for structured control flow);
     - per-op checks from the dialect registry.

   Isolated-from-above ops (builtin.module, func.func, device.kernel_create)
   reset visibility: their regions may not reference outer values, except
   that kernel_create regions may use the op's own operands (they are
   re-bound as block args after outlining).

   Diagnostics are located (each carries the op's [loc] attribute when
   present) and collected rather than thrown one at a time. *)

let isolated_from_above name =
  List.mem name [ "builtin.module"; "func.func"; "device.kernel_create" ]

let verify ?(strict = false) top =
  let diags = ref [] in
  let add op message =
    diags :=
      Ftn_diag.Diag.error ~loc:(Op.loc op)
        (Fmt.str "'%s': %s" op.Op.name message)
      :: !diags
  in
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let define op v =
    if Hashtbl.mem defined (Value.id v) then
      add op (Fmt.str "value %%%d defined twice" (Value.id v))
    else Hashtbl.add defined (Value.id v) ()
  in
  (* [visible] is the set of value ids in scope. *)
  let rec check_op visible op =
    List.iter
      (fun v ->
        if not (Value.Set.mem v visible) then
          add op (Fmt.str "use of undefined value %%%d" (Value.id v)))
      op.Op.operands;
    List.iter (define op) op.Op.results;
    (match Dialect.lookup op.Op.name with
    | Some info -> (
      match info.Dialect.verify op with
      | Ok () -> ()
      | Error msg -> add op msg)
    | None -> if strict then add op "unregistered operation");
    let inner_visible =
      if isolated_from_above op.Op.name then
        if String.equal op.Op.name "device.kernel_create" then
          (* kernel_create regions may reference the op's own operands:
             they become block args of the outlined device function. *)
          List.fold_left
            (fun acc v -> Value.Set.add v acc)
            Value.Set.empty op.Op.operands
        else Value.Set.empty
      else
        List.fold_left
          (fun acc v -> Value.Set.add v acc)
          visible op.Op.operands
    in
    let inner_visible =
      List.fold_left
        (fun acc v -> Value.Set.add v acc)
        inner_visible op.Op.results
    in
    (* Blocks of a region are checked sequentially with definitions
       accumulating across blocks: precise for structured single-block
       regions, and lenient enough for CFG-form llvm.func regions (a full
       dominance analysis would reject nothing the emitter produces). *)
    List.iter
      (fun blocks ->
        ignore
          (List.fold_left
             (fun visible b ->
               List.iter (define op) b.Op.args;
               let visible =
                 List.fold_left
                   (fun acc v -> Value.Set.add v acc)
                   visible b.Op.args
               in
               List.fold_left
                 (fun visible o ->
                   check_op visible o;
                   List.fold_left
                     (fun acc v -> Value.Set.add v acc)
                     visible o.Op.results)
                 visible b.Op.body)
             inner_visible blocks))
      op.Op.regions
  in
  check_op Value.Set.empty top;
  List.rev !diags

let verify_exn ?strict top =
  match verify ?strict top with
  | [] -> ()
  | diags -> raise (Ftn_diag.Diag.Diag_failure diags)

let is_valid ?strict top = verify ?strict top = []
