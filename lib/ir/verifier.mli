(** Structural IR verification: single definitions, def-before-use with
    MLIR's enclosing-region visibility (isolated-from-above for
    [builtin.module] / [func.func] / [device.kernel_create], the latter
    seeing its own operands), and per-op checks registered in the
    {!Dialect} registry. *)

val verify : ?strict:bool -> Op.t -> Ftn_diag.Diag.t list
(** Returns all diagnostics, each located at the offending op's [loc]
    attribute when present; empty means valid. [strict] also flags
    unregistered operations. *)

val verify_exn : ?strict:bool -> Op.t -> unit
(** Raises {!Ftn_diag.Diag.Diag_failure} with the collected diagnostics if
    invalid. *)

val is_valid : ?strict:bool -> Op.t -> bool
