(* The evaluation benchmarks as Fortran+OpenMP source, following the
   paper's Listings 5 and 6: SAXPY offloaded with
   `target parallel do simd simdlen(10)`, and the SGESL back-substitution
   update loop offloaded per outer iteration with `target parallel do`
   (implicit device mappings, as in the paper's discussion of Listing 1).

   Sizes are spliced in as named constants, matching how the paper's
   experiments fix each problem size per bitstream build. *)

let saxpy ~n =
  Fmt.str
    {|program saxpy_bench
  implicit none
  integer, parameter :: n = %d
  real :: x(n), y(n)
  real :: a
  integer :: i

  a = 2.0
  do i = 1, n
    x(i) = real(i) * 0.5
    y(i) = real(n - i) * 0.25
  end do

  !$omp target parallel do simd simdlen(10) map(to:x) map(tofrom:y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
  !$omp end target parallel do simd

  print *, 'saxpy', y(1), y(n)
end program saxpy_bench
|}
    n

let sgesl ~n =
  Fmt.str
    {|program sgesl_bench
  implicit none
  integer, parameter :: n = %d
  real :: a(n), b(n)
  integer :: ipvt(n)
  real :: t
  integer :: i, j, k, l

  do i = 1, n
    a(i) = 0.001 * real(mod(i, 7) + 1)
    b(i) = real(mod(i, 13)) * 0.5
    ipvt(i) = i
  end do

  do k = 1, n - 1
    l = ipvt(k)
    t = b(l)
    if (l /= k) then
      b(l) = b(k)
      b(k) = t
    end if
    !$omp target parallel do
    do j = k + 1, n
      b(j) = b(j) + t * a(j)
    end do
    !$omp end target parallel do
  end do

  print *, 'sgesl', b(1), b(n)
end program sgesl_bench
|}
    n

(* A reduction benchmark exercising the round-robin n-copy rewrite. *)
let dot_product ~n ~simdlen =
  Fmt.str
    {|program dot_bench
  implicit none
  integer, parameter :: n = %d
  real :: x(n), y(n)
  real :: total
  integer :: i

  do i = 1, n
    x(i) = real(mod(i, 9)) * 0.125
    y(i) = real(mod(i, 5)) * 0.25
  end do

  total = 0.0
  !$omp target parallel do simd simdlen(%d) reduction(+:total)
  do i = 1, n
    total = total + x(i) * y(i)
  end do
  !$omp end target parallel do simd

  print *, 'dot', total
end program dot_bench
|}
    n simdlen

(* Nested data regions, the paper's Listing 1 shape. *)
let data_regions ~n =
  Fmt.str
    {|program data_regions
  implicit none
  integer, parameter :: n = %d
  real :: a(n), b(n)
  integer :: i

  do i = 1, n
    a(i) = 0.0
    b(i) = real(i)
  end do

  !$omp target data map(from:a)
  !$omp target map(to:b)
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
  !$omp end target
  !$omp end target data

  print *, 'regions', a(1), a(n)
end program data_regions
|}
    n

(* A many-kernel compile-time workload: [kernels] distinct offload
   regions over the same arrays, each with its own coefficient (and every
   other one a simd region), so kernel outlining produces [kernels]
   independent device functions — the shape the domain-parallel device
   pipelines fan out over. The regions chain through b, so the printed
   result checks all of them executed in order. *)
let many_kernels ~kernels ~n =
  let buf = Buffer.create (1024 + (kernels * 256)) in
  Buffer.add_string buf
    (Fmt.str
       {|program many_kernels
  implicit none
  integer, parameter :: n = %d
  real :: a(n), b(n)
  integer :: i

  do i = 1, n
    a(i) = real(mod(i, 11)) * 0.5
    b(i) = real(mod(i, 7)) * 0.25
  end do

|}
       n);
  for k = 1 to kernels do
    let coeff = 0.0625 *. float_of_int (((k - 1) mod 8) + 1) in
    if k mod 2 = 0 then
      Buffer.add_string buf
        (Fmt.str
           {|  !$omp target parallel do simd simdlen(10) map(to:a) map(tofrom:b)
  do i = 1, n
    b(i) = b(i) + %.4f * a(i)
  end do
  !$omp end target parallel do simd

|}
           coeff)
    else
      Buffer.add_string buf
        (Fmt.str
           {|  !$omp target parallel do
  do i = 1, n
    b(i) = b(i) + %.4f * a(i)
  end do
  !$omp end target parallel do

|}
           coeff)
  done;
  Buffer.add_string buf
    "  print *, 'many', b(1), b(n)\nend program many_kernels\n";
  Buffer.contents buf

(* 1-D heat-diffusion stencil: two offloaded sweeps per timestep inside
   one target data region — the multi-kernel, data-resident pattern the
   rewrite/fault/backend benches all share. *)
let stencil ~n ~steps =
  Fmt.str
    "program heat\n\
     implicit none\n\
     integer, parameter :: n = %d\n\
     integer, parameter :: steps = %d\n\
     real :: u(n), v(n)\n\
     integer :: i, t\n\
     do i = 1, n\n\
     u(i) = 0.0\n\
     v(i) = 0.0\n\
     end do\n\
     u(1) = 100.0\n\
     u(n) = 100.0\n\
     !$omp target data map(tofrom:u) map(alloc:v)\n\
     do t = 1, steps\n\
     !$omp target parallel do\n\
     do i = 2, n - 1\n\
     v(i) = u(i) + 0.25 * (u(i - 1) - 2.0 * u(i) + u(i + 1))\n\
     end do\n\
     !$omp end target parallel do\n\
     !$omp target parallel do\n\
     do i = 2, n - 1\n\
     u(i) = v(i)\n\
     end do\n\
     !$omp end target parallel do\n\
     end do\n\
     !$omp end target data\n\
     print *, 'u(2) =', u(2), ' u(n/2) =', u(n / 2)\n\
     end program heat\n"
    n steps
