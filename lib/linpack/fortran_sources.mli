(** The evaluation benchmarks as Fortran+OpenMP source (the paper's
    Listings 5 and 6 shapes), parameterised by problem size. *)

val saxpy : n:int -> string
(** SAXPY offloaded with [target parallel do simd simdlen(10)]. *)

val sgesl : n:int -> string
(** The SGESL update loop, offloaded per outer iteration with implicit
    device mappings. *)

val dot_product : n:int -> simdlen:int -> string
(** A reduction benchmark exercising the round-robin copy rewrite. *)

val data_regions : n:int -> string
(** Nested data regions, the paper's Listing 1 shape. *)

val many_kernels : kernels:int -> n:int -> string
(** [kernels] distinct offload regions over shared arrays (every other
    one a simd region), yielding that many independent device kernels —
    the compile-time workload for the domain-parallel pipelines. *)

val stencil : n:int -> steps:int -> string
(** 1-D heat-diffusion stencil: two kernels per timestep inside one
    target data region. *)
