(* Hand-written HLS baselines: the kernels a Vitis HLS programmer would
   write in C with pragmas, expressed at the hls-dialect level exactly as
   AMD's Clang frontend emits them, plus the hand-written host drivers
   (the OpenCL host program, driving the simulated device through the
   runtime's host API). Synthesised with frontend = Clang_hls so the
   backend's MAC pattern matcher sees Clang-shaped IR (Tables 3 and 4). *)

open Ftn_ir
open Ftn_dialects
open Ftn_interp
open Ftn_hlsim
open Ftn_runtime

(* --- kernel construction helpers --- *)

let m_axi_interface b arg bundle =
  let kind = Arith.const_i32 b (Hls.int_of_protocol Hls.M_axi) in
  let proto = Hls.axi_protocol b (Op.result1 kind) in
  [ kind; proto; Hls.interface ~arg ~protocol:(Op.result1 proto) ~bundle ]

let axilite_interface b arg =
  let kind = Arith.const_i32 b (Hls.int_of_protocol Hls.S_axilite) in
  let proto = Hls.axi_protocol b (Op.result1 kind) in
  [ kind; proto; Hls.interface ~arg ~protocol:(Op.result1 proto) ~bundle:"control" ]

(* void saxpy_hw(float *x, float *y, float a) — pipelined, unrolled x10. *)
let saxpy_device ~n =
  let b = Builder.create () in
  let arr_ty = Types.memref_static ~memory_space:1 [ n ] Types.F32 in
  let scalar_ty = Types.memref ~memory_space:1 [] Types.F32 in
  let x = Builder.fresh b arr_ty in
  let y = Builder.fresh b arr_ty in
  let a = Builder.fresh b scalar_ty in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let emit_get op =
    emit op;
    Op.result1 op
  in
  List.iter emit (m_axi_interface b x "gmem0");
  List.iter emit (m_axi_interface b y "gmem1");
  List.iter emit (axilite_interface b a);
  let zero = emit_get (Arith.const_index b 0) in
  let bound = emit_get (Arith.const_index b n) in
  let one = emit_get (Arith.const_index b 1) in
  let loop =
    Scf.for_ b ~lb:zero ~ub:bound ~step:one (fun i _ ->
        let body = ref [] in
        let put op = body := op :: !body in
        let put_get op =
          put op;
          Op.result1 op
        in
        let ii = put_get (Arith.const_i32 b 1) in
        put (Hls.pipeline ii);
        let factor = put_get (Arith.const_i32 b 10) in
        put (Hls.unroll factor);
        let av = put_get (Memref_d.load b a []) in
        let xi = put_get (Memref_d.load b x [ i ]) in
        let yi = put_get (Memref_d.load b y [ i ]) in
        let prod = put_get (Arith.mulf b ~fastmath:true av xi) in
        let sum = put_get (Arith.addf b ~fastmath:true yi prod) in
        put (Memref_d.store sum y [ i ]);
        put (Scf.yield ());
        List.rev !body)
  in
  emit loop;
  emit (Func_d.return ());
  let fn =
    Func_d.func ~sym_name:"saxpy_hw" ~args:[ x; y; a ] ~result_tys:[]
      (List.rev !ops)
  in
  Builtin.device_module [ fn ]

(* void sgesl_hw(float *b, float *a, float t, int k, int n):
     for (j = k; j < n; j++) b[j] += t * a[j];   // 0-based
   Pipelined, not unrolled: the Clang-shaped MAC is recognised by the
   backend and lands in DSPs. *)
let sgesl_device ~n:_ =
  let b = Builder.create () in
  let arr_ty = Types.memref_dynamic ~memory_space:1 1 Types.F32 in
  let f_ty = Types.memref ~memory_space:1 [] Types.F32 in
  let i_ty = Types.memref ~memory_space:1 [] Types.I32 in
  let bv = Builder.fresh b arr_ty in
  let av = Builder.fresh b arr_ty in
  let tv = Builder.fresh b f_ty in
  let kv = Builder.fresh b i_ty in
  let nv = Builder.fresh b i_ty in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let emit_get op =
    emit op;
    Op.result1 op
  in
  List.iter emit (m_axi_interface b bv "gmem0");
  List.iter emit (m_axi_interface b av "gmem1");
  List.iter emit (axilite_interface b tv);
  List.iter emit (axilite_interface b kv);
  List.iter emit (axilite_interface b nv);
  let t = emit_get (Memref_d.load b tv []) in
  let k32 = emit_get (Memref_d.load b kv []) in
  let n32 = emit_get (Memref_d.load b nv []) in
  let lb = emit_get (Arith.index_cast b k32 Types.Index) in
  let ub = emit_get (Arith.index_cast b n32 Types.Index) in
  let one = emit_get (Arith.const_index b 1) in
  let loop =
    Scf.for_ b ~lb ~ub ~step:one (fun j _ ->
        let body = ref [] in
        let put op = body := op :: !body in
        let put_get op =
          put op;
          Op.result1 op
        in
        let ii = put_get (Arith.const_i32 b 1) in
        put (Hls.pipeline ii);
        let bj = put_get (Memref_d.load b bv [ j ]) in
        let aj = put_get (Memref_d.load b av [ j ]) in
        let prod = put_get (Arith.mulf b ~fastmath:true t aj) in
        let sum = put_get (Arith.addf b ~fastmath:true bj prod) in
        put (Memref_d.store sum bv [ j ]);
        put (Scf.yield ());
        List.rev !body)
  in
  emit loop;
  emit (Func_d.return ());
  let fn =
    Func_d.func ~sym_name:"sgesl_hw"
      ~args:[ bv; av; tv; kv; nv ]
      ~result_tys:[] (List.rev !ops)
  in
  Builtin.device_module [ fn ]

(* A three-stage dataflow kernel (read -> scale -> write through on-chip
   FIFOs), the dataflow form the paper's Section 2 describes as what HLS
   programmers convert codes into. With [dataflow = true] the stages get
   the hls.dataflow directive and overlap; without it they run back to
   back — the comparison in examples/dataflow.exe. *)
let scale_dataflow_device ?(dataflow = true) ~n () =
  let b = Builder.create () in
  let arr_ty = Types.memref_static ~memory_space:1 [ n ] Types.F32 in
  let scalar_ty = Types.memref ~memory_space:1 [] Types.F32 in
  let x = Builder.fresh b arr_ty in
  let y = Builder.fresh b arr_ty in
  let a = Builder.fresh b scalar_ty in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let emit_get op =
    emit op;
    Op.result1 op
  in
  List.iter emit (m_axi_interface b x "gmem0");
  List.iter emit (m_axi_interface b y "gmem1");
  List.iter emit (axilite_interface b a);
  if dataflow then emit (Hls.dataflow ());
  let s1 = emit_get (Hls.stream_create b Types.F32) in
  let s2 = emit_get (Hls.stream_create b Types.F32) in
  let zero = emit_get (Arith.const_index b 0) in
  let bound = emit_get (Arith.const_index b n) in
  let one = emit_get (Arith.const_index b 1) in
  let stage make_body =
    Scf.for_ b ~lb:zero ~ub:bound ~step:one (fun i _ ->
        let body = ref [] in
        let put op = body := op :: !body in
        let put_get op =
          put op;
          Op.result1 op
        in
        let ii = put_get (Arith.const_i32 b 1) in
        put (Hls.pipeline ii);
        make_body put put_get i;
        put (Scf.yield ());
        List.rev !body)
  in
  emit
    (stage (fun put put_get i ->
         let v = put_get (Memref_d.load b x [ i ]) in
         put (Hls.stream_write ~stream:s1 ~value:v)));
  emit
    (stage (fun put put_get _ ->
         let v = put_get (Hls.stream_read b s1) in
         let av = put_get (Memref_d.load b a []) in
         let r = put_get (Arith.mulf b ~fastmath:true av v) in
         put (Hls.stream_write ~stream:s2 ~value:r)));
  emit
    (stage (fun put put_get i ->
         let r = put_get (Hls.stream_read b s2) in
         put (Memref_d.store r y [ i ])));
  emit (Func_d.return ());
  let fn =
    Func_d.func ~sym_name:"scale_dataflow" ~args:[ x; y; a ] ~result_tys:[]
      (List.rev !ops)
  in
  Builtin.device_module [ fn ]

type baseline_run = {
  result : Executor.result;
  bitstream : Bitstream.t;
  values : float array;  (** The output vector after the run. *)
}

(* Host driver for the dataflow kernel. *)
let run_scale_dataflow ?(spec = Fpga_spec.u280) ?(dataflow = true) ~n ~a ()
    =
  let device = scale_dataflow_device ~dataflow ~n () in
  let bitstream =
    Synth.synthesise ~frontend:Resources.Clang_hls ~spec
      ~xclbin_name:"scale.xclbin" device
  in
  let ctx = Executor.create_context bitstream in
  let x = Array.init n (fun i -> float_of_int (i + 1)) in
  let hx = Rtval.of_float_array Types.F32 x in
  let hy = Rtval.of_float_array Types.F32 (Array.make n 0.0) in
  let ha = Rtval.of_float_array ~shape:[] Types.F32 [| a |] in
  let dx =
    Executor.api_alloc ctx ~name:"x" ~memory_space:1 ~elt:Types.F32 ~shape:[ n ]
  in
  let dy =
    Executor.api_alloc ctx ~name:"y" ~memory_space:1 ~elt:Types.F32 ~shape:[ n ]
  in
  let da =
    Executor.api_alloc ctx ~name:"a" ~memory_space:1 ~elt:Types.F32 ~shape:[]
  in
  Executor.api_transfer ctx ~src:hx ~dst:dx;
  Executor.api_transfer ctx ~src:ha ~dst:da;
  Executor.api_launch ctx ~kernel:"scale_dataflow"
    [ Rtval.Buf dx; Rtval.Buf dy; Rtval.Buf da ];
  Executor.api_transfer ctx ~src:dy ~dst:hy;
  {
    result = Executor.result_of_context ctx;
    bitstream;
    values = Rtval.float_buffer hy;
  }

(* --- hand-written host drivers --- *)

let run_saxpy ?(spec = Fpga_spec.u280) ~n () =
  let device = saxpy_device ~n in
  let bitstream =
    Synth.synthesise ~frontend:Resources.Clang_hls ~spec
      ~xclbin_name:"saxpy_hw.xclbin" device
  in
  let ctx = Executor.create_context bitstream in
  let x, y = References.saxpy_inputs ~n in
  let hx = Rtval.of_float_array Types.F32 x in
  let hy = Rtval.of_float_array Types.F32 y in
  let ha = Rtval.of_float_array ~shape:[] Types.F32 [| 2.0 |] in
  let dx =
    Executor.api_alloc ctx ~name:"x" ~memory_space:1 ~elt:Types.F32
      ~shape:[ n ]
  in
  let dy =
    Executor.api_alloc ctx ~name:"y" ~memory_space:1 ~elt:Types.F32
      ~shape:[ n ]
  in
  let da =
    Executor.api_alloc ctx ~name:"a" ~memory_space:1 ~elt:Types.F32 ~shape:[]
  in
  Executor.api_transfer ctx ~src:hx ~dst:dx;
  Executor.api_transfer ctx ~src:hy ~dst:dy;
  Executor.api_transfer ctx ~src:ha ~dst:da;
  Executor.api_launch ctx ~kernel:"saxpy_hw"
    [ Rtval.Buf dx; Rtval.Buf dy; Rtval.Buf da ];
  Executor.api_transfer ctx ~src:dy ~dst:hy;
  {
    result = Executor.result_of_context ctx;
    bitstream;
    values = Rtval.float_buffer hy;
  }

let run_sgesl ?(spec = Fpga_spec.u280) ~n () =
  let device = sgesl_device ~n in
  let bitstream =
    Synth.synthesise ~frontend:Resources.Clang_hls ~spec
      ~xclbin_name:"sgesl_hw.xclbin" device
  in
  let ctx = Executor.create_context bitstream in
  let a, bvec, ipvt = References.sgesl_inputs ~n in
  let ha = Rtval.of_float_array Types.F32 a in
  let hb = Rtval.of_float_array Types.F32 bvec in
  let hb_arr = Rtval.float_buffer hb in
  let da =
    Executor.api_alloc ctx ~name:"a" ~memory_space:1 ~elt:Types.F32
      ~shape:[ n ]
  in
  let db =
    Executor.api_alloc ctx ~name:"b" ~memory_space:1 ~elt:Types.F32
      ~shape:[ n ]
  in
  let dt =
    Executor.api_alloc ctx ~name:"t" ~memory_space:1 ~elt:Types.F32 ~shape:[]
  in
  let dk =
    Executor.api_alloc ctx ~name:"k" ~memory_space:1 ~elt:Types.I32 ~shape:[]
  in
  let dn =
    Executor.api_alloc ctx ~name:"n" ~memory_space:1 ~elt:Types.I32 ~shape:[]
  in
  (* A hand-written host transfers the read-only matrix column and the
     loop bound once, outside the outer loop. *)
  Executor.api_transfer ctx ~src:ha ~dst:da;
  let hn = Rtval.of_int_array ~shape:[] Types.I32 [| n |] in
  Executor.api_transfer ctx ~src:hn ~dst:dn;
  for k = 1 to n - 1 do
    let l = ipvt.(k - 1) in
    let t = hb_arr.(l - 1) in
    if l <> k then begin
      hb_arr.(l - 1) <- hb_arr.(k - 1);
      hb_arr.(k - 1) <- t
    end;
    let ht = Rtval.of_float_array ~shape:[] Types.F32 [| t |] in
    let hk = Rtval.of_int_array ~shape:[] Types.I32 [| k |] in
    Executor.api_transfer ctx ~src:ht ~dst:dt;
    Executor.api_transfer ctx ~src:hk ~dst:dk;
    Executor.api_transfer ctx ~src:hb ~dst:db;
    Executor.api_launch ctx ~kernel:"sgesl_hw"
      [ Rtval.Buf db; Rtval.Buf da; Rtval.Buf dt; Rtval.Buf dk; Rtval.Buf dn ];
    Executor.api_transfer ctx ~src:db ~dst:hb
  done;
  {
    result = Executor.result_of_context ctx;
    bitstream;
    values = hb_arr;
  }
