(* Chrome trace-event exporter: renders a span collector (and optionally
   a metrics registry) as Perfetto/chrome://tracing-loadable JSON.

   Track layout (one process, one thread per track):
     tid 1   compile           wall-clock spans (passes, codegen, synth)
     tid 2   device.kernels    simulated kernel executions (no CU attr)
     tid 3   device.transfers  simulated h2d/d2h DMA
     tid 4   device.overhead   simulated allocation/launch overheads
     tid 10+ cu:<kernel>       one lane per compute unit: kernel spans
                               carrying a "kernel" attribute
   plus a "device.bytes_transferred" counter track fed by the cumulative
   bytes of each transfer span. Every lane gets "ph":"M" process_name /
   thread_name / thread_sort_index metadata so Perfetto shows readable
   names instead of bare pids/tids.

   Wall timestamps are normalised to the first wall span so traces are
   reproducible run-to-run up to durations; simulated timestamps are
   already relative to device-timeline zero. *)

let pid = 1
let compile_tid = 1
let kernel_tid = 2
let transfer_tid = 3
let overhead_tid = 4
let cu_base_tid = 10

(* One lane per distinct kernel (= per compute unit on the simulated
   device: the default Vitis link instantiates one CU per kernel),
   assigned in first-launch order. *)
let cu_assignment spans =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  let next = ref cu_base_tid in
  List.iter
    (fun (sp : Span.span) ->
      if sp.Span.clock = Span.Sim && Span.attr sp "track" = Some "kernel" then
        match Span.attr sp "kernel" with
        | Some k when not (Hashtbl.mem tbl k) ->
          Hashtbl.replace tbl k !next;
          order := (k, !next) :: !order;
          incr next
        | _ -> ())
    spans;
  (tbl, List.rev !order)

let tid_of ~cus (sp : Span.span) =
  match sp.Span.clock with
  | Span.Wall -> compile_tid
  | Span.Sim -> (
    match Span.attr sp "track" with
    | Some "kernel" -> (
      match Span.attr sp "kernel" with
      | Some k -> (
        match Hashtbl.find_opt cus k with
        | Some tid -> tid
        | None -> kernel_tid)
      | None -> kernel_tid)
    | Some "transfer" -> transfer_tid
    | _ -> overhead_tid)

let us t = t *. 1e6

let args_of_attrs attrs =
  List.rev_map (fun (k, v) -> (k, Json.String v)) attrs

let meta_event ~name ~tid ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let sort_event ~tid idx =
  Json.Obj
    [
      ("name", Json.String "thread_sort_index");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("sort_index", Json.Int idx) ]);
    ]

let metadata cu_order =
  let lane tid name =
    [ meta_event ~name:"thread_name" ~tid ~value:name; sort_event ~tid tid ]
  in
  [ meta_event ~name:"process_name" ~tid:0 ~value:"ftnc" ]
  @ lane compile_tid "compile"
  @ lane kernel_tid "device.kernels"
  @ lane transfer_tid "device.transfers"
  @ lane overhead_tid "device.overhead"
  @ List.concat_map (fun (k, tid) -> lane tid ("cu:" ^ k)) cu_order

let complete_event ~wall_zero ~cus (sp : Span.span) =
  let ts =
    match sp.Span.clock with
    | Span.Wall -> us (sp.Span.start_s -. wall_zero)
    | Span.Sim -> us sp.Span.start_s
  in
  Json.Obj
    [
      ("name", Json.String sp.Span.name);
      ("cat", Json.String (match sp.Span.clock with Span.Wall -> "wall" | Span.Sim -> "sim"));
      ("ph", Json.String "X");
      ("ts", Json.Float ts);
      ("dur", Json.Float (us sp.Span.dur_s));
      ("pid", Json.Int pid);
      ("tid", Json.Int (tid_of ~cus sp));
      ("args", Json.Obj (args_of_attrs sp.Span.attrs));
    ]

(* Cumulative bytes counter, sampled at the start of every transfer. *)
let counter_events spans =
  let total = ref 0 and h2d = ref 0 and d2h = ref 0 in
  List.filter_map
    (fun (sp : Span.span) ->
      match (sp.Span.clock, Span.attr sp "bytes") with
      | Span.Sim, Some b when Span.attr sp "track" = Some "transfer" ->
        let bytes = int_of_string_opt b |> Option.value ~default:0 in
        total := !total + bytes;
        (match Span.attr sp "direction" with
        | Some "d2h" -> d2h := !d2h + bytes
        | _ -> h2d := !h2d + bytes);
        Some
          (Json.Obj
             [
               ("name", Json.String "device.bytes_transferred");
               ("ph", Json.String "C");
               ("ts", Json.Float (us sp.Span.start_s));
               ("pid", Json.Int pid);
               ("args",
                Json.Obj
                  [
                    ("total", Json.Int !total);
                    ("h2d", Json.Int !h2d);
                    ("d2h", Json.Int !d2h);
                  ]);
             ])
      | _ -> None)
    spans

let to_json ?metrics collector =
  let spans = Span.spans collector in
  let cus, cu_order = cu_assignment spans in
  let wall_zero =
    List.fold_left
      (fun acc (sp : Span.span) ->
        match sp.Span.clock with
        | Span.Wall -> Float.min acc sp.Span.start_s
        | Span.Sim -> acc)
      infinity spans
  in
  let wall_zero = if Float.is_finite wall_zero then wall_zero else 0.0 in
  let events =
    metadata cu_order
    @ List.map (complete_event ~wall_zero ~cus) spans
    @ counter_events spans
  in
  let extra =
    match metrics with
    | Some registry -> [ ("metrics", Metrics.to_json ~registry ()) ]
    | None -> []
  in
  Json.Obj
    ([
       ("traceEvents", Json.List events);
       ("displayTimeUnit", Json.String "ms");
     ]
    @ extra)

let to_string ?metrics collector = Json.to_string (to_json ?metrics collector)

let write_file ?metrics collector path =
  Json.write_file path (to_json ?metrics collector)
