(** Chrome trace-event exporter: renders a span collector (and optionally
    a metrics registry, embedded under a top-level ["metrics"] key) as
    JSON loadable in Perfetto / chrome://tracing. Compile stages, kernel
    executions, transfers and overheads land on separate tracks, with a
    cumulative ["device.bytes_transferred"] counter track. Kernel spans
    carrying a ["kernel"] attribute additionally get one lane per
    compute unit (tid 10+, named ["cu:<kernel>"]); every lane is
    labelled with ["ph":"M"] process_name / thread_name /
    thread_sort_index metadata events so Perfetto shows readable names. *)

val to_json : ?metrics:Metrics.t -> Span.t -> Json.t
val to_string : ?metrics:Metrics.t -> Span.t -> string
val write_file : ?metrics:Metrics.t -> Span.t -> string -> unit
