(* Flight recorder: an always-on bounded ring buffer of recent runtime
   events (device ops, transfers, launches, retries, fallbacks). Cheap
   enough to leave recording unconditionally; when a fault escapes or a
   kernel degrades, the last entries are dumped alongside the structured
   error so the failure carries its own context.

   Locations are stored pre-rendered (a string, not a Loc.t): ftn_diag
   depends on this library, so the recorder cannot name diag types.

   The ring is a struct-of-arrays so [record] allocates nothing — the
   executor records one entry per device op, which puts this on the
   interpreter-benchmark hot path. Sequence numbers are not stored:
   the buffer always holds the latest [len] events, so they are the
   consecutive run ending at [seq]. *)

type entry = {
  seq : int;  (* monotonically increasing, never recycled *)
  cat : string;  (* "op" | "transfer" | "launch" | "fault" | ... *)
  msg : string;
  time_s : float;  (* simulated-timeline position, when known *)
  loc : string;  (* pre-rendered source location, "" if unknown *)
  device : int;  (* simulated device id; -1 when not device-bound *)
}

type t = {
  mutable cats : string array;
  mutable msgs : string array;
  mutable times : float array;  (* unboxed float storage *)
  mutable locs : string array;
  mutable devs : int array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable seq : int;
}

let create ?(capacity = 256) () =
  let capacity = max 1 capacity in
  {
    cats = Array.make capacity "";
    msgs = Array.make capacity "";
    times = Array.make capacity Float.nan;
    locs = Array.make capacity "";
    devs = Array.make capacity (-1);
    head = 0;
    len = 0;
    seq = 0;
  }

let default = create ()

let capacity ?(recorder = default) () = Array.length recorder.cats

let set_capacity ?(recorder = default) n =
  let n = max 1 n in
  if n <> Array.length recorder.cats then begin
    recorder.cats <- Array.make n "";
    recorder.msgs <- Array.make n "";
    recorder.times <- Array.make n Float.nan;
    recorder.locs <- Array.make n "";
    recorder.devs <- Array.make n (-1);
    recorder.head <- 0;
    recorder.len <- 0
  end

let clear ?(recorder = default) () =
  Array.fill recorder.cats 0 (Array.length recorder.cats) "";
  Array.fill recorder.msgs 0 (Array.length recorder.msgs) "";
  Array.fill recorder.locs 0 (Array.length recorder.locs) "";
  recorder.head <- 0;
  recorder.len <- 0;
  recorder.seq <- 0

let record ?(recorder = default) ?(time_s = Float.nan) ?(loc = "")
    ?(device = -1) ~cat msg =
  let r = recorder in
  r.seq <- r.seq + 1;
  let h = r.head in
  r.cats.(h) <- cat;
  r.msgs.(h) <- msg;
  r.times.(h) <- time_s;
  r.locs.(h) <- loc;
  r.devs.(h) <- device;
  r.head <- (if h + 1 = Array.length r.cats then 0 else h + 1);
  if r.len < Array.length r.cats then r.len <- r.len + 1

let recordf ?recorder ?time_s ?loc ?device ~cat fmt =
  Fmt.kstr (fun msg -> record ?recorder ?time_s ?loc ?device ~cat msg) fmt

(* Oldest first; seqs are the consecutive run ending at [r.seq]. *)
let entries ?(recorder = default) () =
  let r = recorder in
  let cap = Array.length r.cats in
  let start = (r.head - r.len + cap) mod cap in
  List.init r.len (fun i ->
      let j = (start + i) mod cap in
      {
        seq = r.seq - r.len + 1 + i;
        cat = r.cats.(j);
        msg = r.msgs.(j);
        time_s = r.times.(j);
        loc = r.locs.(j);
        device = r.devs.(j);
      })

let length ?(recorder = default) () = recorder.len

let dropped ?(recorder = default) () = recorder.seq - recorder.len

let pp_entry fmt (e : entry) =
  Fmt.pf fmt "#%-5d %-9s" e.seq e.cat;
  if not (Float.is_nan e.time_s) then Fmt.pf fmt " %10.3f us" (e.time_s *. 1e6)
  else Fmt.pf fmt " %13s" "";
  if e.device >= 0 then Fmt.pf fmt " d%d" e.device;
  Fmt.pf fmt "  %s" e.msg;
  if e.loc <> "" then Fmt.pf fmt "  @@ %s" e.loc

(* The last [limit] entries as indented lines, ready to append to an
   error message; "" when nothing was recorded. *)
let excerpt ?(recorder = default) ?(limit = 16) () =
  let es = entries ~recorder () in
  let n = List.length es in
  let es = if n > limit then List.filteri (fun i _ -> i >= n - limit) es else es in
  match es with
  | [] -> ""
  | es ->
    String.concat "\n" (List.map (fun e -> "  " ^ Fmt.str "%a" pp_entry e) es)
