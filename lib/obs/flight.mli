(** Flight recorder: an always-on bounded ring buffer of recent runtime
    events. The executor records device ops, transfers, launches,
    retries and fallbacks; when a fault escapes or a kernel degrades to
    the CPU, the tail of the ring is dumped alongside the structured
    error. All operations default to the process-wide {!default}
    recorder; tests pass a private [?recorder].

    Locations are pre-rendered strings — this library sits below
    [ftn_diag] and cannot mention [Loc.t]. *)

type entry = {
  seq : int;  (** Monotonic event number (never recycled). *)
  cat : string;  (** Event category: "op", "transfer", "launch", ... *)
  msg : string;
  time_s : float;  (** Simulated-timeline seconds; [nan] when unknown. *)
  loc : string;  (** Rendered source location; [""] when unknown. *)
  device : int;  (** Simulated device id; [-1] when not device-bound. *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 entries. *)

val default : t

val capacity : ?recorder:t -> unit -> int

val set_capacity : ?recorder:t -> int -> unit
(** Resize (clamped to >= 1). Discards buffered entries when the size
    actually changes; the sequence counter is preserved. *)

val clear : ?recorder:t -> unit -> unit

val record :
  ?recorder:t ->
  ?time_s:float ->
  ?loc:string ->
  ?device:int ->
  cat:string ->
  string ->
  unit

val recordf :
  ?recorder:t ->
  ?time_s:float ->
  ?loc:string ->
  ?device:int ->
  cat:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

val entries : ?recorder:t -> unit -> entry list
(** Oldest first; at most [capacity] entries. *)

val length : ?recorder:t -> unit -> int

val dropped : ?recorder:t -> unit -> int
(** Events recorded and since overwritten by the ring. *)

val pp_entry : Format.formatter -> entry -> unit

val excerpt : ?recorder:t -> ?limit:int -> unit -> string
(** The last [limit] (default 16) entries as indented lines, ready to
    append to an error message; [""] when nothing was recorded. *)
