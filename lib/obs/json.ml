(* Minimal JSON tree and serialiser — enough for metrics dumps and
   Chrome trace-event export without pulling in an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
    if not (Float.is_finite x) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

(* Indented variant for human-facing dumps. *)
let rec write_pretty buf indent = function
  | List (_ :: _ as xs) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        write_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  \"";
        escape buf k;
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | j -> write buf j

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 j;
  Buffer.contents buf

let write_file path j =
  let oc = open_out path in
  output_string oc (to_string j);
  output_char oc '\n';
  close_out oc
