(* Minimal JSON tree and serialiser — enough for metrics dumps and
   Chrome trace-event export without pulling in an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
    if not (Float.is_finite x) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

(* Indented variant for human-facing dumps. *)
let rec write_pretty buf indent = function
  | List (_ :: _ as xs) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        write_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  \"";
        escape buf k;
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | j -> write buf j

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 j;
  Buffer.contents buf

let write_file path j =
  let oc = open_out path in
  output_string oc (to_string j);
  output_char oc '\n';
  close_out oc

(* Recursive-descent parser for the same subset the serialiser emits;
   used by the round-trip property tests and by tools reading our own
   dumps back. Numbers containing '.', 'e' or 'E' parse as Float, the
   rest as Int (falling back to Float on int_of_string overflow). *)
exception Parse_fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_fail m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at offset %d, found '%c'" c !pos c'
    | None -> fail "expected '%c' at offset %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal at offset %d" !pos
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape at offset %d" !pos;
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "invalid \\u escape \\u%s" h
  in
  (* \uXXXX escapes decode to UTF-8 bytes. *)
  let add_utf8 buf c =
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          add_utf8 buf (hex4 ())
        | Some c -> fail "invalid escape '\\%c'" c
        | None -> fail "unterminated escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let floatish = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if floatish then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number %S at offset %d" text start
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "invalid number %S at offset %d" text start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> (
      match c with
      | '0' .. '9' | '-' -> parse_number ()
      | _ -> fail "unexpected character '%c' at offset %d" c !pos)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_fail m -> Error m
