(** Minimal JSON tree used by the metrics registry and the Chrome
    trace-event exporter. NaN/infinite floats serialise as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_string_pretty : t -> string
val write_file : string -> t -> unit

val parse : string -> (t, string) result
(** Parse the subset the serialiser emits (all of JSON minus exotic
    number forms). Numbers written with '.', 'e' or 'E' parse as
    {!Float}, the rest as {!Int}; [\uXXXX] escapes decode to UTF-8. *)

