(* Structured, leveled logger with a pluggable sink. The default sink
   writes "[level] message" lines to stderr; tests swap in a capturing
   sink. Messages below the active level are not even formatted. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let string_of_level = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type sink = level -> string -> unit

let stderr_sink : sink =
 fun level msg -> Fmt.epr "[%s] %s@." (string_of_level level) msg

(* Logging is off by default so library consumers (tests, benches) stay
   quiet unless the CLI or a test opts in. *)
let current_level = ref Error
let current_sink = ref stderr_sink

let set_level l = current_level := l
let level () = !current_level
let set_sink s = current_sink := s

let enabled l = severity l >= severity !current_level

let logf level fmt =
  if enabled level then Fmt.kstr (fun s -> !current_sink level s) fmt
  else Fmt.kstr (fun _ -> ()) fmt

let debugf fmt = logf Debug fmt
let infof fmt = logf Info fmt
let warnf fmt = logf Warn fmt
let errorf fmt = logf Error fmt

(* Run [f] with all messages at [level] and above captured instead of
   emitted; restores the previous sink and level on exit. *)
let with_capture ?(level = Debug) f =
  let saved_sink = !current_sink and saved_level = !current_level in
  let captured = ref [] in
  current_sink := (fun l m -> captured := (l, m) :: !captured);
  current_level := level;
  Fun.protect
    ~finally:(fun () ->
      current_sink := saved_sink;
      current_level := saved_level)
    (fun () ->
      let r = f () in
      (r, List.rev !captured))
