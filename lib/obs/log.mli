(** Structured, leveled logger with a pluggable sink (tests capture it,
    the CLI routes it to stderr). Default level is [Error] so libraries
    stay quiet unless a consumer opts in. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

val severity : level -> int
val string_of_level : level -> string
val level_of_string : string -> level option

type sink = level -> string -> unit

val stderr_sink : sink
val set_level : level -> unit
val level : unit -> level
val set_sink : sink -> unit
val enabled : level -> bool

val logf : level -> ('a, Format.formatter, unit, unit) format4 -> 'a
val debugf : ('a, Format.formatter, unit, unit) format4 -> 'a
val infof : ('a, Format.formatter, unit, unit) format4 -> 'a
val warnf : ('a, Format.formatter, unit, unit) format4 -> 'a
val errorf : ('a, Format.formatter, unit, unit) format4 -> 'a

val with_capture :
  ?level:level -> (unit -> 'a) -> 'a * (level * string) list
(** Run [f] with messages captured (at [level] and above, default all);
    restores the previous sink and level afterwards. *)
