(* Named metrics registry: counters (monotonic ints), gauges (last-set
   floats) and histograms. Every layer of the pipeline reports into the
   default registry; tests create private registries for isolation.

   Histograms are bucketed: log-scaled boundaries spanning 1e-9 .. 1e9
   (4 buckets per decade) plus an underflow and an overflow bucket, so a
   single layout covers nanosecond launch overheads and megabyte
   transfer sizes alike. Quantiles are estimated by linear interpolation
   within the bucket containing the requested rank, clamped to the
   observed min/max; histograms with identical layouts merge by bucket-
   wise addition. *)

let buckets_per_decade = 4
let min_exp = -9.0
let max_exp = 9.0

(* Finite bucket k (1-based within the finite range) has upper bound
   10^(min_exp + k/bpd); bucket 0 is the underflow bucket (v <= 1e-9,
   including zero and negatives) and the last is overflow (v > 1e9). *)
let n_finite =
  int_of_float ((max_exp -. min_exp) *. float_of_int buckets_per_decade)

let n_buckets = n_finite + 2

let bucket_upper k =
  if k >= n_buckets - 1 then infinity
  else 10.0 ** (min_exp +. (float_of_int k /. float_of_int buckets_per_decade))

let bucket_lower k =
  if k <= 0 then neg_infinity
  else
    10.0
    ** (min_exp +. (float_of_int (k - 1) /. float_of_int buckets_per_decade))

let bucket_index v =
  if Float.is_nan v then 0
  else if v <= bucket_upper 0 then 0
  else if v > bucket_upper (n_buckets - 2) then n_buckets - 1
  else
    let x = (Float.log10 v -. min_exp) *. float_of_int buckets_per_decade in
    (* ceil, so a value exactly on a boundary lands in the bucket whose
       upper bound it is (le semantics) *)
    let k = int_of_float (Float.ceil x) in
    if k < 1 then 1 else if k > n_buckets - 2 then n_buckets - 2 else k

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;  (* length n_buckets *)
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
      buckets : int array;
    }

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 32 }
let default = create ()

(* One process-wide lock guards every registry (mutations and reads):
   pass pipelines and DSE sweeps report from concurrent domains, and a
   lost counter increment would make parallel compiles observably differ
   from sequential ones. Contention is negligible — updates are a few
   machine instructions — and a single lock keeps [merge_into] trivially
   deadlock-free. *)
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

exception Kind_mismatch of string

let kind_error name =
  raise
    (Kind_mismatch
       (Printf.sprintf "metric %S already registered with another kind" name))

(* callers hold [mu] *)
let get_metric ?(registry = default) name make =
  match Hashtbl.find_opt registry.metrics name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry.metrics name m;
    m

let incr_unlocked ?registry ?(by = 1) name =
  match get_metric ?registry name (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | _ -> kind_error name

let incr ?registry ?by name = locked (fun () -> incr_unlocked ?registry ?by name)

let set_gauge_unlocked ?registry name v =
  match get_metric ?registry name (fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r := v
  | _ -> kind_error name

let set_gauge ?registry name v =
  locked (fun () -> set_gauge_unlocked ?registry name v)

let fresh_histogram () =
  {
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let observe ?registry name v =
  locked (fun () ->
      match
        get_metric ?registry name (fun () -> Histogram (fresh_histogram ()))
      with
      | Histogram h ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        h.min_v <- Float.min h.min_v v;
        h.max_v <- Float.max h.max_v v;
        let k = bucket_index v in
        h.buckets.(k) <- h.buckets.(k) + 1
      | _ -> kind_error name)

(* Merge [src] into [dst] bucket-wise: same layout by construction. *)
let merge_into ~src ~dst =
  locked (fun () ->
      Hashtbl.iter
        (fun name m ->
          match m with
          | Counter r -> incr_unlocked ~registry:dst ~by:!r name
          | Gauge r -> set_gauge_unlocked ~registry:dst name !r
          | Histogram h -> (
            match
              get_metric ~registry:dst name (fun () ->
                  Histogram (fresh_histogram ()))
            with
            | Histogram d ->
              d.count <- d.count + h.count;
              d.sum <- d.sum +. h.sum;
              d.min_v <- Float.min d.min_v h.min_v;
              d.max_v <- Float.max d.max_v h.max_v;
              Array.iteri
                (fun k n -> d.buckets.(k) <- d.buckets.(k) + n)
                h.buckets
            | _ -> kind_error name))
        src.metrics)

let freeze = function
  | Counter r -> Counter_v !r
  | Gauge r -> Gauge_v !r
  | Histogram h ->
    Histogram_v
      {
        count = h.count;
        sum = h.sum;
        min_v = h.min_v;
        max_v = h.max_v;
        buckets = Array.copy h.buckets;
      }

let find ?(registry = default) name =
  locked (fun () ->
      Option.map freeze (Hashtbl.find_opt registry.metrics name))

let counter_value ?registry name =
  match find ?registry name with Some (Counter_v n) -> n | _ -> 0

let snapshot ?(registry = default) () =
  locked (fun () ->
      Hashtbl.fold (fun k m acc -> (k, freeze m) :: acc) registry.metrics [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset ?(registry = default) () =
  locked (fun () -> Hashtbl.reset registry.metrics)

(* Quantile estimation: find the bucket holding rank q*count, then
   interpolate linearly inside it. The underflow/overflow buckets have no
   finite edge, so they borrow the observed min/max; every estimate is
   clamped to [min_v, max_v] (exact for single-bucket histograms). *)
let quantile_of ~count ~min_v ~max_v (buckets : int array) q =
  if count = 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int count in
    let k = ref 0 and cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + buckets.(i);
         if float_of_int !cum >= rank && buckets.(i) > 0 then begin
           k := i;
           raise Exit
         end
       done;
       (* rank 0 with leading empty buckets: fall back to the first
          populated bucket *)
       (try
          for i = 0 to n_buckets - 1 do
            if buckets.(i) > 0 then begin
              k := i;
              raise Exit
            end
          done
        with Exit -> ())
     with Exit -> ());
    let k = !k in
    let lo =
      let l = bucket_lower k in
      if Float.is_finite l then Float.max l min_v else min_v
    in
    let hi =
      let h = bucket_upper k in
      if Float.is_finite h then Float.min h max_v else max_v
    in
    let in_bucket = buckets.(k) in
    let below = ref 0 in
    for i = 0 to k - 1 do
      below := !below + buckets.(i)
    done;
    let frac =
      if in_bucket = 0 then 0.0
      else
        Float.max 0.0
          (Float.min 1.0 ((rank -. float_of_int !below) /. float_of_int in_bucket))
    in
    let v = lo +. ((hi -. lo) *. frac) in
    Some (Float.max min_v (Float.min max_v v))
  end

let quantile value q =
  match value with
  | Histogram_v { count; min_v; max_v; buckets; _ } ->
    quantile_of ~count ~min_v ~max_v buckets q
  | _ -> None

let histogram_quantile ?registry name q =
  match find ?registry name with
  | Some v -> quantile v q
  | None -> None

(* (upper_bound, count) per bucket, for exporters. *)
let histogram_buckets = function
  | Histogram_v { buckets; _ } ->
    Array.to_list (Array.mapi (fun k n -> (bucket_upper k, n)) buckets)
  | _ -> []

let pp_value fmt = function
  | Counter_v n -> Fmt.pf fmt "%d" n
  | Gauge_v v -> Fmt.pf fmt "%g" v
  | Histogram_v { count; sum; min_v; max_v; buckets } ->
    (* Empty histograms carry min_v = inf / max_v = -inf sentinels: omit
       every derived statistic rather than printing them. *)
    if count = 0 then Fmt.pf fmt "count=0"
    else
      let q p =
        match quantile_of ~count ~min_v ~max_v buckets p with
        | Some v -> v
        | None -> Float.nan
      in
      Fmt.pf fmt
        "count=%d sum=%g min=%g mean=%g max=%g p50=%.3g p90=%.3g p99=%.3g"
        count sum min_v
        (sum /. float_of_int count)
        max_v (q 0.5) (q 0.9) (q 0.99)

let pp fmt registry =
  Fmt.pf fmt "@[<v>%a@]"
    (Fmt.list (fun fmt (name, v) -> Fmt.pf fmt "%-28s %a" name pp_value v))
    (snapshot ~registry ())

let json_of_value = function
  | Counter_v n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge_v v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_v { count; sum; min_v; max_v; buckets } ->
    let base = [ ("type", Json.String "histogram"); ("count", Json.Int count) ] in
    if count = 0 then Json.Obj base
    else
      let q p =
        match quantile_of ~count ~min_v ~max_v buckets p with
        | Some v -> Json.Float v
        | None -> Json.Null
      in
      let populated =
        List.filter
          (fun (_, n) -> n > 0)
          (Array.to_list (Array.mapi (fun k n -> (bucket_upper k, n)) buckets))
      in
      Json.Obj
        (base
        @ [
            ("sum", Json.Float sum);
            ("min", Json.Float min_v);
            ("mean", Json.Float (sum /. float_of_int count));
            ("max", Json.Float max_v);
            ("p50", q 0.5);
            ("p90", q 0.9);
            ("p99", q 0.99);
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, n) ->
                     Json.Obj
                       [
                         ( "le",
                           if Float.is_finite le then Json.Float le
                           else Json.String "+Inf" );
                         ("count", Json.Int n);
                       ])
                   populated) );
          ])

let to_json ?(registry = default) () =
  Json.Obj
    (List.map (fun (name, v) -> (name, json_of_value v)) (snapshot ~registry ()))
