(* Named metrics registry: counters (monotonic ints), gauges (last-set
   floats) and histograms (count/sum/min/max summaries). Every layer of
   the pipeline reports into the default registry; tests create private
   registries for isolation. *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
    }

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 32 }
let default = create ()

exception Kind_mismatch of string

let kind_error name =
  raise
    (Kind_mismatch
       (Printf.sprintf "metric %S already registered with another kind" name))

let get_metric ?(registry = default) name make =
  match Hashtbl.find_opt registry.metrics name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry.metrics name m;
    m

let incr ?registry ?(by = 1) name =
  match get_metric ?registry name (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | _ -> kind_error name

let set_gauge ?registry name v =
  match get_metric ?registry name (fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r := v
  | _ -> kind_error name

let observe ?registry name v =
  let make () =
    Histogram { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }
  in
  match get_metric ?registry name make with
  | Histogram h ->
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    h.min_v <- Float.min h.min_v v;
    h.max_v <- Float.max h.max_v v
  | _ -> kind_error name

let freeze = function
  | Counter r -> Counter_v !r
  | Gauge r -> Gauge_v !r
  | Histogram h ->
    Histogram_v { count = h.count; sum = h.sum; min_v = h.min_v; max_v = h.max_v }

let find ?(registry = default) name =
  Option.map freeze (Hashtbl.find_opt registry.metrics name)

let counter_value ?registry name =
  match find ?registry name with Some (Counter_v n) -> n | _ -> 0

let snapshot ?(registry = default) () =
  Hashtbl.fold (fun k m acc -> (k, freeze m) :: acc) registry.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset ?(registry = default) () = Hashtbl.reset registry.metrics

let pp_value fmt = function
  | Counter_v n -> Fmt.pf fmt "%d" n
  | Gauge_v v -> Fmt.pf fmt "%g" v
  | Histogram_v { count; sum; min_v; max_v } ->
    if count = 0 then Fmt.pf fmt "count=0"
    else
      Fmt.pf fmt "count=%d sum=%g min=%g mean=%g max=%g" count sum min_v
        (sum /. float_of_int count)
        max_v

let pp fmt registry =
  Fmt.pf fmt "@[<v>%a@]"
    (Fmt.list (fun fmt (name, v) -> Fmt.pf fmt "%-28s %a" name pp_value v))
    (snapshot ~registry ())

let json_of_value = function
  | Counter_v n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge_v v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_v { count; sum; min_v; max_v } ->
    Json.Obj
      [
        ("type", Json.String "histogram");
        ("count", Json.Int count);
        ("sum", Json.Float sum);
        ("min", if count = 0 then Json.Null else Json.Float min_v);
        ("max", if count = 0 then Json.Null else Json.Float max_v);
      ]

let to_json ?(registry = default) () =
  Json.Obj
    (List.map (fun (name, v) -> (name, json_of_value v)) (snapshot ~registry ()))
