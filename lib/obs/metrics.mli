(** Named metrics registry: counters, gauges and bucketed histograms.
    All operations default to the process-wide {!default} registry;
    tests pass a private [?registry] for isolation. Metric names are
    dotted paths, e.g. ["passes.ops_removed"], ["device.bytes_h2d"].

    Histogram buckets are log-scaled (4 per decade over 1e-9 .. 1e9,
    plus underflow/overflow), shared across all histograms so registries
    merge bucket-wise; p50/p90/p99 are estimated by linear interpolation
    within the covering bucket, clamped to the observed min/max. *)

type t

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      min_v : float;  (** [infinity] while the histogram is empty. *)
      max_v : float;  (** [neg_infinity] while the histogram is empty. *)
      buckets : int array;
          (** Per-bucket observation counts; index [i] covers
              [(bucket_lower i, bucket_upper i]]. *)
    }

exception Kind_mismatch of string
(** Raised when a name is reused with a different metric kind. *)

val create : unit -> t
val default : t

val incr : ?registry:t -> ?by:int -> string -> unit
val set_gauge : ?registry:t -> string -> float -> unit
val observe : ?registry:t -> string -> float -> unit

val merge_into : src:t -> dst:t -> unit
(** Fold [src] into [dst]: counters add, gauges take [src]'s last value,
    histograms merge bucket-wise (identical layouts by construction). *)

val find : ?registry:t -> string -> value option

val counter_value : ?registry:t -> string -> int
(** 0 when absent or not a counter. *)

val quantile : value -> float -> float option
(** [quantile v q] estimates the [q]-quantile ([0..1]) of a histogram
    value; [None] for empty histograms and non-histograms. *)

val histogram_quantile : ?registry:t -> string -> float -> float option
(** {!find} + {!quantile} in one step. *)

val histogram_buckets : value -> (float * int) list
(** [(upper_bound, count)] per bucket, in increasing bound order; the
    final bound is [infinity]. Empty for non-histograms. *)

val bucket_upper : int -> float
(** Upper bound of bucket [i] of the shared layout ([infinity] for the
    overflow bucket). *)

val n_buckets : int

val snapshot : ?registry:t -> unit -> (string * value) list
(** Sorted by name. *)

val reset : ?registry:t -> unit -> unit

val pp_value : Format.formatter -> value -> unit
(** Empty histograms print as ["count=0"]: min/mean/max/quantiles are
    omitted rather than rendering the infinity sentinels. *)

val pp : Format.formatter -> t -> unit

val json_of_value : value -> Json.t
(** One metric value as JSON; see {!to_json} for the empty-histogram
    contract. *)

val to_json : ?registry:t -> unit -> Json.t
(** Histogram entries include sum/min/mean/max, p50/p90/p99 and the
    populated buckets; an empty histogram serialises as just
    [{"type":"histogram","count":0}] with the derived fields omitted. *)
