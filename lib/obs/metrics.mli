(** Named metrics registry: counters, gauges and histogram summaries.
    All operations default to the process-wide {!default} registry;
    tests pass a private [?registry] for isolation. Metric names are
    dotted paths, e.g. ["passes.ops_removed"], ["device.bytes_h2d"]. *)

type t

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
    }

exception Kind_mismatch of string
(** Raised when a name is reused with a different metric kind. *)

val create : unit -> t
val default : t

val incr : ?registry:t -> ?by:int -> string -> unit
val set_gauge : ?registry:t -> string -> float -> unit
val observe : ?registry:t -> string -> float -> unit

val find : ?registry:t -> string -> value option
val counter_value : ?registry:t -> string -> int
(** 0 when absent or not a counter. *)

val snapshot : ?registry:t -> unit -> (string * value) list
(** Sorted by name. *)

val reset : ?registry:t -> unit -> unit
val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
val to_json : ?registry:t -> unit -> Json.t
