(* OpenMetrics / Prometheus text exposition of a metrics registry.

   Counters gain the conventional [_total] suffix; histograms render as
   cumulative [_bucket{le="..."}] samples (only the populated buckets
   plus the mandatory +Inf bucket — the shared log-scaled layout has 74
   buckets and emitting empty ones would bury the signal), followed by
   [_sum] and [_count]. Metric names are sanitised to the
   [a-zA-Z_:][a-zA-Z0-9_:]* charset Prometheus requires; our dotted
   paths become underscore-separated. *)

let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char buf c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char buf '_';
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let float_repr x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let render ?(registry = Metrics.default) () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      match v with
      | Metrics.Counter_v n ->
        line "# TYPE %s counter" m;
        line "%s_total %d" m n
      | Metrics.Gauge_v x ->
        line "# TYPE %s gauge" m;
        line "%s %s" m (float_repr x)
      | Metrics.Histogram_v { count; sum; _ } ->
        line "# TYPE %s histogram" m;
        let cum = ref 0 in
        List.iter
          (fun (le, n) ->
            cum := !cum + n;
            if n > 0 && Float.is_finite le then
              line "%s_bucket{le=\"%s\"} %d" m (float_repr le) !cum)
          (Metrics.histogram_buckets v);
        line "%s_bucket{le=\"+Inf\"} %d" m count;
        line "%s_sum %s" m (float_repr sum);
        line "%s_count %d" m count)
    (Metrics.snapshot ~registry ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_file ?registry path =
  let oc = open_out path in
  output_string oc (render ?registry ());
  close_out oc
