(** OpenMetrics / Prometheus text exposition format for a metrics
    registry: [# TYPE] comments, [_total]-suffixed counters, cumulative
    [_bucket{le="..."}] histogram samples with [_sum]/[_count], and a
    terminating [# EOF]. *)

val sanitize : string -> string
(** Map a dotted metric path onto the Prometheus name charset
    ([a-zA-Z0-9_:], no leading digit). *)

val render : ?registry:Metrics.t -> unit -> string
val write_file : ?registry:Metrics.t -> string -> unit
