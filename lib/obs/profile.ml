(* Profiling master switch and per-op execution counters.

   [on] is a plain bool ref so hot loops (the interpreters, the rewrite
   engines) can gate their instrumentation on a single load; everything
   costlier — hashtable lookups, gettimeofday — happens only when a user
   asked for a profile (ftnc --profile, bench --profile). *)

let on = ref false

let set_enabled b = on := b
let enabled () = !on

let op_counts : (string, int ref) Hashtbl.t = Hashtbl.create 64

let op_counter name =
  match Hashtbl.find_opt op_counts name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace op_counts name r;
    r

(* Unconditional bump — callers gate on [!on] themselves so the tree
   interpreter pays only a branch when profiling is off. *)
let count_op name = incr (op_counter name)

let ops () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) op_counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_ops () = Hashtbl.fold (fun _ r acc -> acc + !r) op_counts 0

let top_ops n =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) op_counts []
  |> List.sort (fun (na, a) (nb, b) ->
         match Int.compare b a with 0 -> String.compare na nb | c -> c)
  |> List.filteri (fun i _ -> i < n)

let reset () = Hashtbl.reset op_counts
