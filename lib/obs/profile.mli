(** Profiling master switch and per-op execution counters.

    When [!on] is false (the default), all profiling instrumentation in
    the interpreters, the rewrite engines and the pass manager reduces
    to a single boolean load, keeping the ≤5% overhead budget trivially
    when profiling is off and honest when it is on. *)

val on : bool ref
(** Read directly in hot loops; set through {!set_enabled}. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val op_counter : string -> int ref
(** The shared execution counter for an op name (created on first use).
    The compiled interpreter engine resolves this once at closure-
    compile time and bumps the ref from the compiled code. *)

val count_op : string -> unit
(** Bump an op's counter (hashtable lookup — callers gate on [!on]). *)

val ops : unit -> (string * int) list
(** All counted ops, sorted by name. *)

val total_ops : unit -> int

val top_ops : int -> (string * int) list
(** The [n] most-executed ops, descending by count. *)

val reset : unit -> unit
