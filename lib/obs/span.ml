(* Hierarchical spans over two clocks. Wall-clock spans time real
   compiler work ([with_span] brackets a computation, nesting follows the
   dynamic call structure). Simulated spans place executor work on the
   simulated device timeline: the caller supplies start and duration, so
   a deterministic cost model produces a deterministic trace. Spans
   accumulate in a collector; the ambient collector is a process-wide
   default that any layer can swap out ([with_collector]) for isolation. *)

type clock =
  | Wall
  | Sim

type span = {
  id : int;
  parent : int option;
  name : string;
  clock : clock;
  start_s : float;
  mutable dur_s : float;
  mutable attrs : (string * string) list;
}

type t = {
  mutable spans : span list;  (** Reversed creation order. *)
  mutable stack : span list;  (** Open wall-clock spans, innermost first. *)
  mutable next_id : int;
}

let create () = { spans = []; stack = []; next_id = 0 }

(* The ambient collector is domain-local: spans from worker domains
   (parallel pass pipelines, DSE sweeps) land in per-domain collectors
   instead of racing on the main trace's mutable span list. *)
let ambient = Domain.DLS.new_key create
let current () = Domain.DLS.get ambient
let set_current c = Domain.DLS.set ambient c

let with_collector c f =
  let saved = current () in
  Domain.DLS.set ambient c;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let next_id c = c.next_id
let count c = c.next_id

let clear c =
  c.spans <- [];
  c.stack <- [];
  c.next_id <- 0

let spans c = List.rev c.spans

let set_attr sp ~key value =
  sp.attrs <- (key, value) :: List.remove_assoc key sp.attrs

let attr sp key = List.assoc_opt key sp.attrs

let fresh c ~parent ~name ~clock ~start_s ~dur_s ~attrs =
  let sp = { id = c.next_id; parent; name; clock; start_s; dur_s; attrs } in
  c.next_id <- c.next_id + 1;
  c.spans <- sp :: c.spans;
  sp

(* Bracket [f] in a wall-clock span. The span is passed to [f] so it can
   attach attributes computed during the work; it is closed (duration
   fixed) even when [f] raises. *)
let with_span_sp ?collector ?(attrs = []) ~name f =
  let c = match collector with Some c -> c | None -> current () in
  let parent = match c.stack with sp :: _ -> Some sp.id | [] -> None in
  let sp =
    fresh c ~parent ~name ~clock:Wall ~start_s:(Unix.gettimeofday ())
      ~dur_s:0.0 ~attrs
  in
  c.stack <- sp :: c.stack;
  Fun.protect
    ~finally:(fun () ->
      sp.dur_s <- Unix.gettimeofday () -. sp.start_s;
      c.stack <-
        (match c.stack with
        | top :: rest when top.id = sp.id -> rest
        | stack -> List.filter (fun s -> s.id <> sp.id) stack))
    (fun () -> f sp)

let with_span ?collector ?attrs ~name f =
  with_span_sp ?collector ?attrs ~name (fun _ -> f ())

(* Record a completed span on the simulated device timeline. *)
let record_sim ?collector ?(attrs = []) ?parent ~name ~start_s ~dur_s () =
  let c = match collector with Some c -> c | None -> current () in
  fresh c ~parent ~name ~clock:Sim ~start_s ~dur_s ~attrs

let pp_span fmt sp =
  let unit_, scale =
    match sp.clock with Wall -> ("ms", 1e3) | Sim -> ("us", 1e6)
  in
  Fmt.pf fmt "%s%-30s %8.3f %s%a"
    (match sp.parent with Some _ -> "  " | None -> "")
    sp.name (sp.dur_s *. scale) unit_
    (fun fmt attrs ->
      List.iter (fun (k, v) -> Fmt.pf fmt "  %s=%s" k v) (List.rev attrs))
    sp.attrs

let pp fmt c = Fmt.pf fmt "@[<v>%a@]" (Fmt.list pp_span) (spans c)
