(** Hierarchical spans over two clocks: real wall-clock time for compiler
    work and the simulated device timeline for executor work. Spans
    accumulate in a collector; most callers use the ambient one. *)

type clock =
  | Wall
  | Sim

type span = {
  id : int;  (** Creation order within the collector. *)
  parent : int option;
  name : string;
  clock : clock;
  start_s : float;
  mutable dur_s : float;
  mutable attrs : (string * string) list;
}

type t

val create : unit -> t

val current : unit -> t
(** The ambient collector all [?collector]-less calls record into. *)

val set_current : t -> unit

val with_collector : t -> (unit -> 'a) -> 'a
(** Make [c] ambient for the duration of [f]; restores on exit. *)

val next_id : t -> int
(** Id the next span will get — a watermark for slicing. *)

val count : t -> int
val clear : t -> unit

val spans : t -> span list
(** In creation order. *)

val set_attr : span -> key:string -> string -> unit
val attr : span -> string -> string option

val with_span_sp :
  ?collector:t ->
  ?attrs:(string * string) list ->
  name:string ->
  (span -> 'a) ->
  'a
(** Bracket [f] in a wall-clock span, passing the open span so [f] can
    attach attributes; nesting follows the dynamic call structure. The
    span is closed even when [f] raises. *)

val with_span :
  ?collector:t ->
  ?attrs:(string * string) list ->
  name:string ->
  (unit -> 'a) ->
  'a

val record_sim :
  ?collector:t ->
  ?attrs:(string * string) list ->
  ?parent:int ->
  name:string ->
  start_s:float ->
  dur_s:float ->
  unit ->
  span
(** Record a completed span on the simulated device timeline. *)

val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> t -> unit
