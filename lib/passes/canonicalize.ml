(* Canonicalisation: constant folding, common-subexpression elimination,
   store-to-load forwarding on scalar allocas (the paper's "simple
   canonicalisation to remove dependencies between loop iterations"), dead
   code and dead allocation elimination.

   Constant folding and dead-op elimination are driver hooks of the
   rewrite engine (Rewrite.config.fold / is_trivially_dead), so this pass
   is mostly configuration; CSE and store forwarding remain bespoke
   block-local sweeps (they need whole-block context a per-op pattern does
   not have). *)

open Ftn_ir
open Ftn_dialects

let pure_op op =
  match Op.dialect op with
  | "arith" | "math" -> true
  | _ ->
    List.mem (Op.name op)
      [ "memref.dim"; "omp.bounds_info"; "hls.axi_protocol" ]

(* --- constant folding + identity simplification (driver fold hook) --- *)

let folder ctx op =
  let int_of v =
    match Rewrite.const_of ctx v with
    | Some (Attr.Int (n, _)) -> Some n
    | _ -> None
  in
  let float_of v =
    match Rewrite.const_of ctx v with
    | Some (Attr.Float (x, _)) -> Some x
    | _ -> None
  in
  let name = Op.name op in
  let to_const a = Some [ Rewrite.To_constant a ] in
  let to_value v = Some [ Rewrite.To_value v ] in
  if Arith.is_constant op then None
  else if List.mem name Arith.int_binop_names then
    match Op.operands op with
    | [ x; y ] -> (
      let ty = Value.ty (Op.result1 op) in
      match (int_of x, int_of y) with
      | Some a, Some c -> (
        match Arith.fold_int_binop name a c with
        | Some r -> to_const (Attr.Int (r, ty))
        | None -> None)
      (* identities: x+0, x-0, x*1, x*0, x/1 (and commuted forms) *)
      | _, Some 0 when List.mem name [ "arith.addi"; "arith.subi" ] ->
        to_value x
      | Some 0, _ when String.equal name "arith.addi" -> to_value y
      | _, Some 1 when List.mem name [ "arith.muli"; "arith.divsi" ] ->
        to_value x
      | Some 1, _ when String.equal name "arith.muli" -> to_value y
      | _, Some 0 when String.equal name "arith.muli" ->
        to_const (Attr.Int (0, ty))
      | Some 0, _ when String.equal name "arith.muli" ->
        to_const (Attr.Int (0, ty))
      | _ -> None)
    | _ -> None
  else if List.mem name Arith.float_binop_names then
    match Op.operands op with
    | [ x; y ] -> (
      match (float_of x, float_of y) with
      | Some a, Some c -> (
        match Arith.fold_float_binop name a c with
        | Some r -> to_const (Attr.Float (r, Value.ty (Op.result1 op)))
        | None -> None)
      (* x*1.0 and x/1.0 are exact; x+0.0 is not (-0.0 + 0.0 = +0.0) *)
      | _, Some 1.0 when List.mem name [ "arith.mulf"; "arith.divf" ] ->
        to_value x
      | Some 1.0, _ when String.equal name "arith.mulf" -> to_value y
      | _ -> None)
    | _ -> None
  else if String.equal name "arith.cmpi" then
    match Op.operands op with
    | [ x; y ] -> (
      match (int_of x, int_of y, Op.string_attr op "predicate") with
      | Some a, Some c, Some pred_s -> (
        match Arith.int_pred_of_string pred_s with
        | Some pred ->
          let r = if Arith.eval_int_pred pred a c then 1 else 0 in
          to_const (Attr.Int (r, Types.I1))
        | None -> None)
      | _ -> None)
    | _ -> None
  else if String.equal name "arith.index_cast" then
    match Op.operands op with
    | [ x ] -> (
      match int_of x with
      | Some a -> to_const (Attr.Int (a, Value.ty (Op.result1 op)))
      | None -> None)
    | _ -> None
  else if String.equal name "arith.sitofp" then
    match Op.operands op with
    | [ x ] -> (
      match int_of x with
      | Some a ->
        to_const (Attr.Float (float_of_int a, Value.ty (Op.result1 op)))
      | None -> None)
    | _ -> None
  else if String.equal name "arith.select" then
    match Op.operands op with
    | [ c; t; f ] -> (
      match int_of c with
      | Some 1 -> to_value t
      | Some 0 -> to_value f
      | _ -> None)
    | _ -> None
  else None

(* --- dead code elimination (driver dead-op hook) --- *)

let has_side_effects op =
  match Op.name op with
  | "memref.store" | "memref.dealloc" | "memref.copy" | "memref.dma_start"
  | "memref.dma_wait" | "func.call" | "func.return" | "func.func"
  | "fir.call" | "fir.store" | "scf.yield" | "scf.condition"
  | "builtin.module" ->
    true
  | name when String.length name >= 4 && String.sub name 0 4 = "omp." -> true
  | name when String.length name >= 7 && String.sub name 0 7 = "device." ->
    not (String.equal name "device.lookup")
  | name when String.length name >= 4 && String.sub name 0 4 = "hls." ->
    not (String.equal name "hls.axi_protocol")
  | name when String.length name >= 5 && String.sub name 0 5 = "llvm." -> true
  | "scf.for" | "scf.if" | "scf.while" ->
    (* structured control flow is kept unless it has no side effects
       inside; keep conservatively *)
    true
  | _ -> false

let erasable op =
  (not (has_side_effects op))
  && (pure_op op
     || List.mem (Op.name op)
          [
            "memref.alloca"; "memref.alloc"; "memref.get_global";
            "device.lookup"; "hls.axi_protocol";
            "builtin.unrealized_conversion_cast";
          ])

let config =
  {
    Rewrite.default_config with
    Rewrite.fold = Some folder;
    is_trivially_dead = erasable;
  }

(* all canonicalize entry points drive the fold/DCE hooks with an empty
   pattern set: compile it once at toplevel *)
let no_patterns = Rewrite.compile []

let fold_constants m =
  Rewrite.apply_compiled
    ~config:{ config with Rewrite.is_trivially_dead = (fun _ -> false) }
    no_patterns m

let dce m =
  Rewrite.apply_compiled ~config:{ config with Rewrite.fold = None }
    no_patterns m

(* --- common subexpression elimination (per block, pure ops only) --- *)

let cse m =
  let rec walk_op op =
    {
      op with
      Op.regions =
        List.map
          (fun blocks -> List.map walk_block blocks)
          op.Op.regions;
    }
  and walk_block blk =
    let seen : (string, Value.t list) Hashtbl.t = Hashtbl.create 32 in
    let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
    let resolve v =
      match Hashtbl.find_opt subst (Value.id v) with
      | Some v' -> v'
      | None -> v
    in
    let key op =
      (* Source locations are metadata, not semantics: two ops that differ
         only in their "loc" attribute are still the same computation. *)
      let semantic_attrs =
        List.filter
          (fun (k, v) ->
            not (String.equal k "loc" && Option.is_some (Attr.as_loc v)))
          (Op.attrs op)
      in
      Fmt.str "%s(%a)%a" (Op.name op)
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.int)
        (List.map Value.id (Op.operands op))
        (Fmt.list ~sep:(Fmt.any ", ") (Fmt.pair Fmt.string Attr.pp))
        semantic_attrs
    in
    let body =
      List.concat_map
        (fun op ->
          let op =
            { op with Op.operands = List.map resolve op.Op.operands }
          in
          let op = walk_op op in
          if pure_op op && op.Op.regions = [] && Op.results op <> [] then begin
            let k = key op in
            match Hashtbl.find_opt seen k with
            | Some prior_results ->
              List.iter2
                (fun r p -> Hashtbl.replace subst (Value.id r) p)
                (Op.results op) prior_results;
              []
            | None ->
              Hashtbl.add seen k (Op.results op);
              [ op ]
          end
          else [ op ])
        blk.Op.body
    in
    (* a substitution may be recorded after some uses were emitted if ops
       are reordered; a second resolve sweep keeps everything consistent *)
    let body =
      List.map
        (fun op ->
          Op.substitute
            (fun v ->
              let v' = resolve v in
              if Value.equal v v' then None else Some v')
            op)
        body
    in
    { blk with Op.body }
  in
  walk_op m

(* --- store-to-load forwarding on rank-0 allocas --- *)

let is_scalar_alloca_ty v =
  match Value.ty v with
  | Types.Memref { shape = []; _ } -> true
  | _ -> false

let forward_stores m =
  (* Track, per block, the last value stored to each rank-0 memref that was
     produced by an alloca in this function. Any op with regions or a call
     invalidates everything (conservative). *)
  let allocas = ref Value.Set.empty in
  Op.walk
    (fun op ->
      if
        String.equal (Op.name op) "memref.alloca"
        && is_scalar_alloca_ty (Op.result1 op)
      then allocas := Value.Set.add (Op.result1 op) !allocas)
    m;
  let rec walk_op op =
    {
      op with
      Op.regions =
        List.map (fun blocks -> List.map walk_block blocks) op.Op.regions;
    }
  and walk_block blk =
    let last_store : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
    let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
    let resolve v =
      match Hashtbl.find_opt subst (Value.id v) with
      | Some v' -> v'
      | None -> v
    in
    let body =
      List.concat_map
        (fun op ->
          let op =
            { op with Op.operands = List.map resolve op.Op.operands }
          in
          match Op.name op with
          | "memref.store" -> (
            match Op.operands op with
            | [ value; mr ] when Value.Set.mem mr !allocas ->
              Hashtbl.replace last_store (Value.id mr) value;
              [ op ]
            | _ -> [ op ])
          | "memref.load" -> (
            match Op.operands op with
            | [ mr ] when Value.Set.mem mr !allocas -> (
              match Hashtbl.find_opt last_store (Value.id mr) with
              | Some value ->
                Hashtbl.replace subst (Value.id (Op.result1 op)) value;
                []
              | None -> [ op ])
            | _ -> [ op ])
          | "func.call" | "fir.call" ->
            Hashtbl.reset last_store;
            [ op ]
          | _ ->
            if op.Op.regions <> [] then begin
              let op = walk_op op in
              Hashtbl.reset last_store;
              [ op ]
            end
            else [ op ])
        blk.Op.body
    in
    { blk with Op.body }
  in
  walk_op m

(* Remove allocas whose only remaining uses are stores. *)
let dead_alloca_elimination m =
  let store_only = ref Value.Set.empty in
  Op.walk
    (fun op ->
      match Op.name op with
      | "memref.alloca" -> store_only := Value.Set.add (Op.result1 op) !store_only
      | _ -> ())
    m;
  (* memref.store's target position must not disqualify: disqualify uses
     except as the memref operand of a store *)
  let disqualified = ref Value.Set.empty in
  Op.walk
    (fun op ->
      match Op.name op with
      | "memref.store" -> (
        match Op.operands op with
        | value :: _mr :: indices ->
          disqualified := Value.Set.add value !disqualified;
          List.iter
            (fun v -> disqualified := Value.Set.add v !disqualified)
            indices
        | _ -> ())
      | _ ->
        List.iter
          (fun v -> disqualified := Value.Set.add v !disqualified)
          (Op.operands op))
    m;
  let dead = Value.Set.diff !store_only !disqualified in
  if Value.Set.is_empty dead then m
  else
    let rec walk_op op =
      let op =
        {
          op with
          Op.regions =
            List.map
              (fun blocks ->
                List.map
                  (fun blk ->
                    { blk with Op.body = List.concat_map walk_op blk.Op.body })
                  blocks)
              op.Op.regions;
        }
      in
      match Op.name op with
      | "memref.alloca" when Value.Set.mem (Op.result1 op) dead -> []
      | "memref.store" -> (
        match Op.operands op with
        | _ :: mr :: _ when Value.Set.mem mr dead -> []
        | _ -> [ op ])
      | _ -> [ op ]
    in
    match walk_op m with
    | [ m' ] -> m'
    | _ -> invalid_arg "dead_alloca_elimination: module vanished"

let simplify m = Rewrite.apply_compiled ~config no_patterns m

let run m =
  m |> simplify |> cse |> forward_stores |> simplify
  |> dead_alloca_elimination |> simplify

let pass = Pass.make "canonicalize" run
