(** Canonicalisation: constant folding, per-block CSE of pure ops,
    store-to-load forwarding on scalar allocas (the paper's "simple
    canonicalisation to remove dependencies between loop iterations"),
    dead-code and dead-allocation elimination. Folding and dead-op
    elimination are rewrite-driver hooks ({!config}); the individual
    sweeps are exposed for testing and ablation. *)

val folder : Ftn_ir.Rewrite.folder
(** Constant folding for arith ops (binops, cmpi, index_cast, sitofp,
    select) plus exact identity simplifications (x+0, x*1, x*0, x/1,
    x*1.0, x/1.0). *)

val config : Ftn_ir.Rewrite.config
(** Driver configuration: {!folder} plus dead-op elimination for pure
    ops ([arith]/[math], memref.dim, allocas, device.lookup, ...). *)

val fold_constants : Ftn_ir.Op.t -> Ftn_ir.Op.t
val cse : Ftn_ir.Op.t -> Ftn_ir.Op.t
val forward_stores : Ftn_ir.Op.t -> Ftn_ir.Op.t
val dce : Ftn_ir.Op.t -> Ftn_ir.Op.t
val dead_alloca_elimination : Ftn_ir.Op.t -> Ftn_ir.Op.t

val run : Ftn_ir.Op.t -> Ftn_ir.Op.t
(** All sweeps, in order, with a final DCE. *)

val pass : Ftn_ir.Pass.t
