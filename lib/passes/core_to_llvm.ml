(* Core dialects -> llvm dialect (the step mlir-opt performs in the paper's
   flow). Structured control flow is flattened into CFG form with block
   arguments as phi nodes; memrefs become pointers with explicit row-major
   index linearisation; index values widen to i64; math ops become libm
   calls. Applied to the device module before LLVM-IR emission. *)

open Ftn_ir
open Ftn_dialects

exception Unsupported of string

let rec convert_ty ty =
  match ty with
  | Types.Index -> Types.I64
  | Types.Memref { elt; _ } -> Types.Ptr (convert_ty elt)
  | Types.Func (args, results) ->
    Types.Func (List.map convert_ty args, List.map convert_ty results)
  | other -> other

type fctx = {
  b : Builder.t;
  vmap : (int, Value.t) Hashtbl.t;  (** old value id -> new value *)
  old_ty : (int, Types.t) Hashtbl.t;  (** old value id -> old type *)
  mutable finished : Op.block list;  (** completed blocks, reversed *)
  mutable cur_label : string;
  mutable cur_args : Value.t list;
  mutable cur_ops : Op.t list;  (** reversed *)
  mutable label_counter : int;
  mutable math_decls : (string * Types.t list * Types.t) list;
}

let fresh_label ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Fmt.str "%s%d" prefix ctx.label_counter

let emit ctx op = ctx.cur_ops <- op :: ctx.cur_ops

let emit_get ctx op =
  emit ctx op;
  Op.result1 op

(* Close the current block with terminator [term] (already emitted by the
   caller) and open a new one. *)
let start_block ctx label args =
  ctx.finished <-
    { Op.label = ctx.cur_label; args = ctx.cur_args; body = List.rev ctx.cur_ops }
    :: ctx.finished;
  ctx.cur_label <- label;
  ctx.cur_args <- args;
  ctx.cur_ops <- []

let map_value ctx v =
  match Hashtbl.find_opt ctx.vmap (Value.id v) with
  | Some v' -> v'
  | None ->
    raise
      (Unsupported (Fmt.str "value %%%d not mapped during llvm conversion" (Value.id v)))

let bind ctx old_v new_v =
  Hashtbl.replace ctx.vmap (Value.id old_v) new_v;
  Hashtbl.replace ctx.old_ty (Value.id old_v) (Value.ty old_v)

let fresh_for ctx old_v =
  let v = Builder.fresh ctx.b (convert_ty (Value.ty old_v)) in
  bind ctx old_v v;
  v

let const_i64 ctx n =
  emit_get ctx (Llvm_d.constant ctx.b (Attr.Int (n, Types.I64)) Types.I64)

(* Row-major linearisation of [indices] (new, i64) for the old memref type. *)
let linearize ctx old_mr_ty indices =
  match old_mr_ty with
  | Types.Memref { shape = []; _ } -> const_i64 ctx 0
  | Types.Memref { shape = [ _ ]; _ } -> (
    match indices with
    | [ i ] -> i
    | _ -> raise (Unsupported "rank mismatch in memref access"))
  | Types.Memref { shape; _ } ->
    let dims =
      List.map
        (function
          | Types.Static n -> n
          | Types.Dynamic ->
            raise
              (Unsupported
                 "dynamic multi-dimensional memrefs cannot be lowered to llvm"))
        shape
    in
    let rec go acc dims indices =
      match (dims, indices) with
      | [], [] -> acc
      | d :: dims, i :: indices ->
        let dv = const_i64 ctx d in
        let scaled = emit_get ctx (Llvm_d.binop ctx.b "mul" acc dv) in
        let acc = emit_get ctx (Llvm_d.binop ctx.b "add" scaled i) in
        go acc dims indices
      | _ -> raise (Unsupported "rank mismatch in memref access")
    in
    (match (dims, indices) with
    | _ :: rest_dims, first :: rest_idx -> go first rest_dims rest_idx
    | _ -> raise (Unsupported "rank mismatch in memref access"))
  | _ -> raise (Unsupported "memref access on non-memref value")

let math_callee ctx name ty =
  let base =
    match name with
    | "math.sqrt" -> "sqrt"
    | "math.exp" -> "exp"
    | "math.log" -> "log"
    | "math.sin" -> "sin"
    | "math.cos" -> "cos"
    | "math.tanh" -> "tanh"
    | "math.absf" -> "fabs"
    | "math.powf" -> "pow"
    | other -> raise (Unsupported ("math op " ^ other))
  in
  let callee, arg_ty =
    match ty with
    | Types.F32 -> (base ^ "f", Types.F32)
    | _ -> (base, Types.F64)
  in
  let arity = if String.equal base "pow" then 2 else 1 in
  let sig_ = (callee, List.init arity (fun _ -> arg_ty), arg_ty) in
  if not (List.mem sig_ ctx.math_decls) then
    ctx.math_decls <- sig_ :: ctx.math_decls;
  callee

let arith_to_llvm = function
  | "arith.addi" -> Some "add"
  | "arith.subi" -> Some "sub"
  | "arith.muli" -> Some "mul"
  | "arith.divsi" -> Some "sdiv"
  | "arith.remsi" -> Some "srem"
  | "arith.andi" -> Some "and"
  | "arith.ori" -> Some "or"
  | "arith.xori" -> Some "xor"
  | "arith.addf" -> Some "fadd"
  | "arith.subf" -> Some "fsub"
  | "arith.mulf" -> Some "fmul"
  | "arith.divf" -> Some "fdiv"
  | _ -> None

let rec emit_ops ctx ops = List.iter (emit_op ctx) ops

and emit_op ctx op =
  (* Attach the op's source location to unsupported-construct failures so
     the driver can point at the offending source line. *)
  try emit_op_raw ctx op
  with Unsupported msg when Ftn_diag.Loc.is_known (Op.loc op) ->
    raise
      (Ftn_diag.Diag.Diag_failure
         [
           Ftn_diag.Diag.error ~loc:(Op.loc op)
             (Fmt.str "in llvm conversion of '%s': %s" (Op.name op) msg);
         ])

and emit_op_raw ctx op =
  let name = Op.name op in
  let mapped () = List.map (map_value ctx) (Op.operands op) in
  match name with
  | "arith.constant" -> (
    let r = Op.result1 op in
    let value =
      match Op.find_attr op "value" with
      | Some (Attr.Int (n, Types.Index)) -> Attr.Int (n, Types.I64)
      | Some a -> a
      | None -> raise (Unsupported "constant without value")
    in
    match Llvm_d.constant ctx.b value (convert_ty (Value.ty r)) with
    | c ->
      emit ctx c;
      bind ctx r (Op.result1 c))
  | _ when arith_to_llvm name <> None -> (
    match (arith_to_llvm name, mapped ()) with
    | Some llname, [ a; c ] ->
      let r = emit_get ctx (Llvm_d.binop ctx.b llname a c) in
      bind ctx (Op.result1 op) r
    | _ -> raise (Unsupported name))
  | "arith.maxsi" | "arith.minsi" | "arith.maximumf" | "arith.minimumf" -> (
    match mapped () with
    | [ a; c ] ->
      let is_float = Types.is_float (Value.ty a) in
      let cmp =
        if is_float then
          Llvm_d.fcmp ctx.b
            (if name = "arith.maximumf" then "ogt" else "olt")
            a c
        else
          Llvm_d.icmp ctx.b
            (if name = "arith.maxsi" then "sgt" else "slt")
            a c
      in
      let cond = emit_get ctx cmp in
      let sel =
        Builder.op1 ctx.b "llvm.select" ~operands:[ cond; a; c ] (Value.ty a)
      in
      let r = emit_get ctx sel in
      bind ctx (Op.result1 op) r
    | _ -> raise (Unsupported name))
  | "arith.negf" -> (
    match mapped () with
    | [ a ] ->
      let r = emit_get ctx (Llvm_d.cast ctx.b "fneg" a (Value.ty a)) in
      bind ctx (Op.result1 op) r
    | _ -> raise (Unsupported name))
  | "arith.cmpi" | "arith.cmpf" -> (
    match mapped () with
    | [ a; c ] ->
      let pred = Option.value ~default:"eq" (Op.string_attr op "predicate") in
      let r =
        if name = "arith.cmpi" then emit_get ctx (Llvm_d.icmp ctx.b pred a c)
        else emit_get ctx (Llvm_d.fcmp ctx.b pred a c)
      in
      bind ctx (Op.result1 op) r
    | _ -> raise (Unsupported name))
  | "arith.select" -> (
    match mapped () with
    | [ c; t; f ] ->
      let sel =
        Builder.op1 ctx.b "llvm.select" ~operands:[ c; t; f ] (Value.ty t)
      in
      bind ctx (Op.result1 op) (emit_get ctx sel)
    | _ -> raise (Unsupported name))
  | "arith.index_cast" | "arith.extsi" | "arith.trunci" -> (
    match mapped () with
    | [ a ] ->
      let src_w = Types.bitwidth (Value.ty a) in
      let dst_ty = convert_ty (Value.ty (Op.result1 op)) in
      let dst_w = Types.bitwidth dst_ty in
      let r =
        if src_w = dst_w then a
        else if src_w < dst_w then
          emit_get ctx (Llvm_d.cast ctx.b "sext" a dst_ty)
        else emit_get ctx (Llvm_d.cast ctx.b "trunc" a dst_ty)
      in
      bind ctx (Op.result1 op) r
    | _ -> raise (Unsupported name))
  | "arith.sitofp" | "arith.fptosi" | "arith.extf" | "arith.truncf" -> (
    match mapped () with
    | [ a ] ->
      let dst_ty = convert_ty (Value.ty (Op.result1 op)) in
      let kind =
        match name with
        | "arith.sitofp" -> "sitofp"
        | "arith.fptosi" -> "fptosi"
        | "arith.extf" -> "fpext"
        | _ -> "fptrunc"
      in
      bind ctx (Op.result1 op) (emit_get ctx (Llvm_d.cast ctx.b kind a dst_ty))
    | _ -> raise (Unsupported name))
  | "memref.alloca" | "memref.alloc" -> (
    match Value.ty (Op.result1 op) with
    | Types.Memref mi ->
      let count =
        try Types.memref_num_elements mi
        with Invalid_argument _ ->
          raise (Unsupported "dynamic alloca on the device")
      in
      let n = const_i64 ctx (max count 1) in
      let r = emit_get ctx (Llvm_d.alloca ctx.b ~count:n (convert_ty mi.Types.elt)) in
      bind ctx (Op.result1 op) r
    | _ -> raise (Unsupported "alloca of non-memref"))
  | "memref.load" -> (
    match Op.operands op with
    | mr :: indices ->
      let base = map_value ctx mr in
      let idx = List.map (map_value ctx) indices in
      let linear = linearize ctx (Value.ty mr) idx in
      let elt_ty = convert_ty (Value.ty (Op.result1 op)) in
      let gep =
        emit_get ctx
          (Llvm_d.getelementptr ctx.b ~base ~indices:[ linear ] ~elem_ty:elt_ty)
      in
      bind ctx (Op.result1 op) (emit_get ctx (Llvm_d.load ctx.b gep elt_ty))
    | [] -> raise (Unsupported "memref.load without operands"))
  | "memref.store" -> (
    match Op.operands op with
    | value :: mr :: indices ->
      let v = map_value ctx value in
      let base = map_value ctx mr in
      let idx = List.map (map_value ctx) indices in
      let linear = linearize ctx (Value.ty mr) idx in
      let elt_ty = convert_ty (Value.ty value) in
      let gep =
        emit_get ctx
          (Llvm_d.getelementptr ctx.b ~base ~indices:[ linear ] ~elem_ty:elt_ty)
      in
      emit ctx (Llvm_d.store ~value:v ~ptr:gep)
    | _ -> raise (Unsupported "memref.store without operands"))
  | "math.sqrt" | "math.exp" | "math.log" | "math.sin" | "math.cos"
  | "math.tanh" | "math.absf" | "math.powf" -> (
    match mapped () with
    | args ->
      let ty = convert_ty (Value.ty (Op.result1 op)) in
      let callee = math_callee ctx name ty in
      let call = Llvm_d.call ctx.b ~callee ~operands:args ~result_tys:[ ty ] in
      emit ctx call;
      bind ctx (Op.result1 op) (Op.result1 call))
  | "func.call" ->
    let callee = Option.value ~default:"f" (Op.symbol_attr op "callee") in
    let call =
      Llvm_d.call ctx.b ~callee ~operands:(mapped ())
        ~result_tys:(List.map (fun r -> convert_ty (Value.ty r)) (Op.results op))
    in
    let call = { call with Op.attrs = call.Op.attrs @ List.remove_assoc "callee" (Op.attrs op) } in
    emit ctx call;
    List.iter2 (bind ctx) (Op.results op) (Op.results call)
  | "func.return" -> emit ctx (Llvm_d.return ~operands:(mapped ()) ())
  | "scf.for" -> emit_for ctx op
  | "scf.if" -> emit_if ctx op
  | "scf.yield" ->
    raise (Unsupported "unexpected scf.yield outside structured op")
  | other -> raise (Unsupported ("cannot lower " ^ other ^ " to llvm"))

and emit_for ctx op =
  match Scf.for_parts op with
  | None -> raise (Unsupported "malformed scf.for")
  | Some parts ->
    let lb = map_value ctx parts.Scf.lb in
    let ub = map_value ctx parts.Scf.ub in
    let step = map_value ctx parts.Scf.step in
    let inits = List.map (map_value ctx) parts.Scf.iter_inits in
    let cond_l = fresh_label ctx "for_cond" in
    let body_l = fresh_label ctx "for_body" in
    let exit_l = fresh_label ctx "for_exit" in
    emit ctx (Llvm_d.br ~dest:cond_l ~operands:(lb :: inits) ());
    (* condition block: args are iv + iter values *)
    let iv = Builder.fresh ctx.b Types.I64 in
    let iters =
      List.map (fun v -> Builder.fresh ctx.b (Value.ty v)) inits
    in
    start_block ctx cond_l (iv :: iters);
    bind ctx parts.Scf.induction iv;
    List.iter2 (bind ctx) parts.Scf.iter_args iters;
    let cmp = emit_get ctx (Llvm_d.icmp ctx.b "slt" iv ub) in
    emit ctx
      (Llvm_d.cond_br ~cond:cmp ~true_dest:body_l ~false_dest:exit_l ());
    start_block ctx body_l [];
    (* body ops; its scf.yield feeds the back edge *)
    let body, yield =
      let rec split acc = function
        | [ last ] when Scf.is_yield last -> (List.rev acc, Some last)
        | x :: rest -> split (x :: acc) rest
        | [] -> (List.rev acc, None)
      in
      split [] parts.Scf.body
    in
    emit_ops ctx body;
    let yielded =
      match yield with
      | Some y -> List.map (map_value ctx) (Op.operands y)
      | None -> []
    in
    let next = emit_get ctx (Llvm_d.binop ctx.b "add" iv step) in
    emit ctx (Llvm_d.br ~dest:cond_l ~operands:(next :: yielded) ());
    (* exit block: results are the iter values at loop end *)
    let result_args =
      List.map (fun r -> Builder.fresh ctx.b (convert_ty (Value.ty r))) (Op.results op)
    in
    (* pass iter values to exit block through its args *)
    start_block ctx exit_l result_args;
    List.iter2 (bind ctx) (Op.results op) result_args;
    (* patch: the cond_br above targets exit with no operands; when the loop
       carries values we must route them. Rebuild the condition block's
       terminator operands. *)
    if result_args <> [] then begin
      (* find the just-finished cond block and extend its cond_br *)
      match ctx.finished with
      | body_blk :: cond_blk :: rest when String.equal cond_blk.Op.label cond_l ->
        let fixed_body =
          List.map
            (fun o ->
              if Llvm_d.is_cond_br o then
                { o with Op.operands = Op.operands o @ iters }
              else o)
            cond_blk.Op.body
        in
        ctx.finished <- body_blk :: { cond_blk with Op.body = fixed_body } :: rest
      | _ -> ()
    end

and emit_if ctx op =
  let cond = map_value ctx (List.hd (Op.operands op)) in
  let then_l = fresh_label ctx "if_then" in
  let else_l = fresh_label ctx "if_else" in
  let merge_l = fresh_label ctx "if_merge" in
  let has_else = List.length (Op.regions op) > 1 in
  emit ctx
    (Llvm_d.cond_br ~cond ~true_dest:then_l
       ~false_dest:(if has_else then else_l else merge_l)
       ());
  let emit_branch label ops =
    start_block ctx label [];
    let body, yield =
      let rec split acc = function
        | [ last ] when Scf.is_yield last -> (List.rev acc, Some last)
        | x :: rest -> split (x :: acc) rest
        | [] -> (List.rev acc, None)
      in
      split [] ops
    in
    emit_ops ctx body;
    let yielded =
      match yield with
      | Some y -> List.map (map_value ctx) (Op.operands y)
      | None -> []
    in
    emit ctx (Llvm_d.br ~dest:merge_l ~operands:yielded ())
  in
  emit_branch then_l (Op.region_body op 0);
  if has_else then emit_branch else_l (Op.region_body op 1);
  let result_args =
    List.map
      (fun r -> Builder.fresh ctx.b (convert_ty (Value.ty r)))
      (Op.results op)
  in
  start_block ctx merge_l result_args;
  List.iter2 (bind ctx) (Op.results op) result_args

let convert_func b fn =
  match Op.regions fn with
  | [] ->
    (* declaration *)
    let fn_ty =
      match Func_d.func_type fn with
      | Some (args, results) ->
        Types.Func (List.map convert_ty args, List.map convert_ty results)
      | None -> Types.Func ([], [])
    in
    Llvm_d.func_decl
      ~sym_name:(Option.value ~default:"f" (Func_d.func_name fn))
      ~fn_ty ()
  | _ ->
    let params = Func_d.params fn in
    let ctx =
      {
        b;
        vmap = Hashtbl.create 64;
        old_ty = Hashtbl.create 64;
        finished = [];
        cur_label = "entry";
        cur_args = [];
        cur_ops = [];
        label_counter = 0;
        math_decls = [];
      }
    in
    let new_params = List.map (fresh_for ctx) params in
    ctx.cur_args <- new_params;
    emit_ops ctx (Func_d.body fn);
    (* flush the final block *)
    ctx.finished <-
      { Op.label = ctx.cur_label; args = ctx.cur_args; body = List.rev ctx.cur_ops }
      :: ctx.finished;
    let blocks = List.rev ctx.finished in
    let fn_ty =
      Types.Func (List.map Value.ty new_params, [])
    in
    let f =
      Llvm_d.func
        ~sym_name:(Option.value ~default:"f" (Func_d.func_name fn))
        ~blocks ~fn_ty ()
    in
    (* record math declarations on the op for the module pass to collect *)
    List.fold_left
      (fun f (callee, arg_tys, ret) ->
        Op.set_attr f ("math_decl_" ^ callee)
          (Attr.Type (Types.Func (arg_tys, [ ret ]))))
      f ctx.math_decls

(* Conversion applies to functions directly inside the module being
   lowered (matching mlir-opt's behaviour of leaving nested modules to
   their own pass applications). *)
let func_to_llvm =
  Rewrite.pattern ~roots:[ "func.func" ] "func-to-llvm" (fun ctx fn ->
      match Rewrite.parents ctx with
      | [ m ] when Op.is_module m ->
        Some (Rewrite.replace_with [ convert_func (Rewrite.builder ctx) fn ])
      | _ -> None)

(* the pattern set is options-independent: compile its root index once *)
let compiled = Rewrite.compile [ func_to_llvm ]

let run m =
  let m = Rewrite.apply_compiled compiled m in
  (* hoist math declarations recorded on converted functions, and restore
     the module layout: non-function ops, then declarations, then the
     converted functions *)
  let funcs, others =
    List.partition
      (fun o -> String.equal (Op.name o) "llvm.func")
      (Op.module_body m)
  in
  let decls = ref [] in
  let funcs =
    List.map
      (fun f ->
        let math_attrs =
          List.filter
            (fun (k, _) ->
              String.length k > 10 && String.sub k 0 10 = "math_decl_")
            (Op.attrs f)
        in
        List.iter
          (fun (k, v) ->
            let callee = String.sub k 10 (String.length k - 10) in
            match v with
            | Attr.Type fn_ty ->
              if
                not
                  (List.exists
                     (fun d -> Op.symbol_attr d "sym_name" = Some callee)
                     !decls)
              then decls := Llvm_d.func_decl ~sym_name:callee ~fn_ty () :: !decls
            | _ -> ())
          math_attrs;
        List.fold_left (fun f (k, _) -> Op.remove_attr f k) f math_attrs)
      funcs
  in
  Op.with_module_body m (others @ List.rev !decls @ funcs)

let pass = Pass.make "convert-to-llvm" run
