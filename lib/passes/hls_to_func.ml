(* "lower HLS to func call" (after Stencil-HMLS [20]): operations of the
   hls dialect become func.call operations on well-known intrinsic symbols.
   mlir-opt can then lower the module to the llvm dialect, and the AMD
   backend integration of [19] maps these calls onto Vitis HLS LLVM-IR
   primitives. The protocol token materialised by hls.axi_protocol folds
   into its integer kind operand. *)

open Ftn_ir
open Ftn_dialects

let spec_interface = "_ssdm_op_SpecInterface"
let spec_pipeline = "_ssdm_op_SpecPipeline"
let spec_unroll = "_ssdm_op_SpecUnroll"
let spec_array_partition = "_ssdm_op_SpecArrayPartition"
let spec_dataflow = "_ssdm_op_SpecDataflow"
let stream_read = "_hls_stream_read"
let stream_write = "_hls_stream_write"

let patterns used =
  let use name arg_tys =
    if not (List.mem_assoc name !used) then used := (name, arg_tys) :: !used
  in
  let to_call ?(keep_attrs = false) ?(keep_results = false) root callee
      arg_tys =
    Rewrite.pattern ~roots:[ root ] (root ^ "-to-call") (fun _ op ->
        use callee arg_tys;
        Some
          (Rewrite.replace_with
             [
               Op.make "func.call" ~operands:(Op.operands op)
                 ~results:(if keep_results then Op.results op else [])
                 ~attrs:
                   (("callee", Attr.Symbol callee)
                   :: (if keep_attrs then Op.attrs op else []));
             ]))
  in
  [
    (* the protocol token folds into its integer kind operand *)
    Rewrite.pattern ~roots:[ "hls.axi_protocol" ] "fold-axi-protocol"
      (fun _ op ->
        Some
          (Rewrite.replace_with
             ~replacements:[ (Op.result1 op, List.hd (Op.operands op)) ]
             []));
    to_call ~keep_attrs:true "hls.interface" spec_interface [];
    to_call "hls.pipeline" spec_pipeline [ Types.I32 ];
    to_call "hls.unroll" spec_unroll [ Types.I32 ];
    to_call ~keep_attrs:true "hls.array_partition" spec_array_partition [];
    Rewrite.pattern ~roots:[ "hls.dataflow" ] "hls.dataflow-to-call"
      (fun _ _ ->
        use spec_dataflow [];
        Some
          (Rewrite.replace_with
             [
               Op.make "func.call"
                 ~attrs:[ ("callee", Attr.Symbol spec_dataflow) ];
             ]));
    to_call ~keep_results:true "hls.stream_read" stream_read [];
    to_call "hls.stream_write" stream_write [];
  ]

let run m =
  let used = ref [] in
  let m' = Rewrite.apply (patterns used) m in
  if Op.is_module m' && !used <> [] then begin
    let decls =
      List.map
        (fun (name, arg_tys) ->
          Func_d.func_decl ~sym_name:name ~arg_tys ~result_tys:[] ())
        (List.rev !used)
    in
    Op.with_module_body m' (decls @ Op.module_body m')
  end
  else m'

let pass = Pass.make "lower-hls-to-func-call" run
