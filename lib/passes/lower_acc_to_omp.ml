(* OpenACC -> OpenMP lowering: converts the acc dialect onto the omp
   dialect so the whole existing device pipeline (data environment, kernel
   outlining, HLS loop lowering) applies unchanged — the composability
   benefit the paper's conclusions anticipate for the OpenACC dialect.

   The mapping is structural: acc.copy_info -> omp.map_info (copyin=to,
   copyout=from, copy=tofrom, create=alloc), acc.parallel -> omp.target,
   acc.loop -> omp.parallel_do (vector_length -> simd simdlen),
   acc.data/enter/exit/update -> the omp data constructs. *)

open Ftn_ir
open Ftn_dialects

let map_type_of_copy = function
  | Acc.Copyin -> Omp.To
  | Acc.Copyout -> Omp.From
  | Acc.Copy -> Omp.Tofrom
  | Acc.Create -> Omp.Alloc

(* Each conversion keeps the op's result values, so no value replacements
   are needed; the renamed op simply redefines them in place. Conversions
   that rebuild the attribute list re-stamp the source location afterwards
   so loc(...) survives the dialect switch. *)
let rename root convert =
  Rewrite.pattern ~roots:[ root ] ("lower-" ^ root) (fun _ op ->
      let relocate o = Op.set_loc o (Op.loc op) in
      Some (Rewrite.replace_with [ relocate (convert op) ]))

let patterns =
  [
    rename "acc.copy_info" (fun op ->
        let kind =
          Option.bind (Op.string_attr op "copy_kind") Acc.copy_kind_of_string
          |> Option.value ~default:Acc.Copy
        in
        {
          op with
          Op.name = "omp.map_info";
          attrs =
            [
              ( "var_name",
                Attr.String
                  (Option.value ~default:"" (Op.string_attr op "var_name")) );
              ( "map_type",
                Attr.String (Omp.string_of_map_type (map_type_of_copy kind)) );
              ( "implicit",
                Attr.Bool
                  (Option.value ~default:false (Op.bool_attr op "implicit")) );
            ];
        });
    rename "acc.parallel" (fun op ->
        { op with Op.name = "omp.target"; attrs = [] });
    rename "acc.loop" (fun op ->
        let vector_length = Op.int_attr op "vector_length" in
        let attrs =
          [
            ( "collapse",
              Attr.i32 (Option.value ~default:1 (Op.int_attr op "collapse")) );
            ("simd", Attr.Bool (vector_length <> None));
          ]
          @ (match vector_length with
            | Some k -> [ ("simdlen", Attr.i32 k) ]
            | None -> [])
          @
          match Op.find_attr op "reductions" with
          | Some r -> [ ("reductions", r) ]
          | None -> []
        in
        { op with Op.name = "omp.parallel_do"; attrs });
    rename "acc.data" (fun op ->
        { op with Op.name = "omp.target_data"; attrs = [] });
    rename "acc.enter_data" (fun op ->
        { op with Op.name = "omp.target_enter_data" });
    rename "acc.exit_data" (fun op ->
        { op with Op.name = "omp.target_exit_data" });
    rename "acc.update" (fun op ->
        let direction =
          Option.value ~default:"host" (Op.string_attr op "direction")
        in
        {
          op with
          Op.name = "omp.target_update";
          attrs =
            [
              ( "motion",
                Attr.String (if direction = "host" then "from" else "to") );
            ];
        });
    rename "acc.yield" (fun op -> { op with Op.name = "omp.yield" });
    rename "acc.terminator" (fun op -> { op with Op.name = "omp.terminator" });
  ]

(* the pattern set is options-independent: compile its root index once *)
let compiled = Rewrite.compile patterns

let run m = Rewrite.apply_compiled compiled m

let pass = Pass.make "lower-acc-to-omp" run
