(* "lower omp mapped data" (paper, Section 3): rewrites omp.map_info /
   omp.bounds_info and the data-region operations into device dialect
   operations plus DMA transfers.

   Every mapped identifier is tracked on the device by name in a memory
   space. Nested data regions and implicit `tofrom` maps are handled with
   the reference-counting scheme the paper describes: data_acquire
   increments a per-name counter, data_release decrements it, and
   data_check_exists (counter > 0) guards allocation, host-to-device copies
   on entry and device-to-host copies on exit, so an inner implicit map of
   an already-present variable transfers nothing.

   Shape of the emitted entry sequence per mapping (map type `to`/`tofrom`):

     %existed = device.data_check_exists {name}
     device.data_acquire {name}
     %dev = scf.if %existed -> memref<...,1> {
              %d = device.lookup {name} ; scf.yield %d
            } else {
              %d = device.alloc(sizes) {name} ; scf.yield %d
            }
     scf.if (not %existed) { memref.dma_start(%host -> %dev); memref.dma_wait }

   and on exit (map type `from`/`tofrom`):

     device.data_release {name}
     %still = device.data_check_exists {name}
     scf.if (not %still) { memref.dma_start(%dev -> %host); memref.dma_wait } *)

open Ftn_ir
open Ftn_dialects

type options = {
  memory_space : int;  (** First device memory space for mapped data (1 = HBM bank 0). *)
  hbm_banks : int;
      (** When > 1, distinct mapped identifiers are spread round-robin over
          this many consecutive memory spaces (the U280's separate HBM
          banks), so each kernel port gets its own bank's bandwidth. *)
}

let default_options = { memory_space = 1; hbm_banks = 1 }

type mapping = {
  host : Value.t;
  device : Value.t;
  parts : Omp.map_parts;
}

let device_memref_ty space ty =
  match ty with
  | Types.Memref mi -> Types.Memref { mi with memory_space = space }
  | _ -> invalid_arg "lower_omp_data: mapped variable must be a memref"

let copies_to parts =
  match parts.Omp.map_type with
  | Omp.To | Omp.Tofrom -> true
  | Omp.From | Omp.Alloc | Omp.Release | Omp.Delete -> false

let copies_from parts =
  match parts.Omp.map_type with
  | Omp.From | Omp.Tofrom -> true
  | Omp.To | Omp.Alloc | Omp.Release | Omp.Delete -> false

(* Entry sequence for one mapping; returns (ops, device memref value). *)
let emit_entry b ~memory_space (parts : Omp.map_parts) =
  let name = parts.Omp.var_name in
  let host = parts.Omp.var in
  let dev_ty = device_memref_ty memory_space (Value.ty host) in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let emit_get op =
    emit op;
    Op.result1 op
  in
  let existed = emit_get (Device.data_check_exists b ~name ~memory_space) in
  emit (Device.data_acquire ~name ~memory_space);
  (* dynamic sizes for the allocation come from the host memref *)
  let dynamic_sizes =
    match Value.ty host with
    | Types.Memref { shape; _ } ->
      List.concat
        (List.mapi
           (fun i d ->
             match d with
             | Types.Static _ -> []
             | Types.Dynamic ->
               let idx = emit_get (Arith.const_index b i) in
               [ emit_get (Memref_d.dim b host idx) ])
           shape)
    | _ -> []
  in
  let lookup_ops, lookup_v =
    let op = Device.lookup b ~name ~memory_space dev_ty in
    ([ op; Scf.yield ~operands:[ Op.result1 op ] () ], Op.result1 op)
  in
  ignore lookup_v;
  let alloc_ops =
    let op = Device.alloc b ~name ~memory_space ~dynamic_sizes dev_ty in
    [ op; Scf.yield ~operands:[ Op.result1 op ] () ]
  in
  let if_op =
    Scf.if_ b ~cond:existed ~result_tys:[ dev_ty ] ~then_ops:lookup_ops
      ~else_ops:alloc_ops ()
  in
  emit if_op;
  let dev = Op.result1 if_op in
  if copies_to parts then begin
    let one = emit_get (Arith.const_int b 1 Types.I1) in
    let fresh = emit_get (Arith.xori b existed one) in
    emit
      (Scf.if_ b ~cond:fresh
         ~then_ops:
           [
             Memref_d.dma_start ~src:host ~dst:dev ();
             Memref_d.dma_wait ();
             Scf.yield ();
           ]
         ())
  end;
  (List.rev !ops, dev)

(* Exit sequence for one mapping. *)
let emit_exit b ~memory_space (mapping : mapping) =
  let name = mapping.parts.Omp.var_name in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let emit_get op =
    emit op;
    Op.result1 op
  in
  emit (Device.data_release ~name ~memory_space);
  if copies_from mapping.parts then begin
    let still = emit_get (Device.data_check_exists b ~name ~memory_space) in
    let one = emit_get (Arith.const_int b 1 Types.I1) in
    let gone = emit_get (Arith.xori b still one) in
    emit
      (Scf.if_ b ~cond:gone
         ~then_ops:
           [
             Memref_d.dma_start ~src:mapping.device ~dst:mapping.host ();
             Memref_d.dma_wait ();
             Scf.yield ();
           ]
         ())
  end;
  List.rev !ops

(* Malformed input IR is a user-facing condition (hand-written IR fed to
   ftnc stages): report it as a located diagnostic on the consuming op. *)
let op_error op msg =
  raise
    (Ftn_diag.Diag.Diag_failure
       [
         Ftn_diag.Diag.error ~loc:(Op.loc op)
           (Fmt.str "'%s': %s" (Op.name op) msg);
       ])

(* An already-lowered mapped operand: a memref placed in a device memory
   space. Used to keep the omp.target pattern from re-firing on its own
   output (the op keeps its name; only the operands change). *)
let is_device_memref v =
  match Value.ty v with
  | Types.Memref { Types.memory_space; _ } -> memory_space > 0
  | _ -> false

let patterns options =
  (* Stable bank assignment: an identifier keeps its memory space across
     every construct in the program (SGESL remaps the same names on each
     outer iteration). *)
  let bank_table : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let space_of name =
    match Hashtbl.find_opt bank_table name with
    | Some s -> s
    | None ->
      let s =
        if options.hbm_banks <= 1 then options.memory_space
        else options.memory_space + (Hashtbl.length bank_table mod options.hbm_banks)
      in
      Hashtbl.replace bank_table name s;
      s
  in
  let parts_of ctx op v =
    match Rewrite.def_of ctx v with
    | Some mi when Omp.is_map_info mi -> (
      match Omp.map_parts mi with
      | Some p -> p
      | None -> op_error mi "malformed omp.map_info (missing var_name)")
    | Some _ | None ->
      op_error op "operand is not the result of an omp.map_info"
  in
  let entry_for ctx op v =
    let parts = parts_of ctx op v in
    let ops, dev =
      emit_entry (Rewrite.builder ctx)
        ~memory_space:(space_of parts.Omp.var_name) parts
    in
    (ops, { host = parts.Omp.var; device = dev; parts })
  in
  let exits ctx mappings =
    List.concat_map
      (fun mp ->
        emit_exit (Rewrite.builder ctx)
          ~memory_space:(space_of mp.parts.Omp.var_name) mp)
      mappings
  in
  [
    Rewrite.pattern ~roots:[ "omp.target_data" ] "lower-omp-target-data"
      (fun ctx op ->
        let mappings_entry = List.map (entry_for ctx op) (Op.operands op) in
        let entry_ops = List.concat_map fst mappings_entry in
        let mappings = List.map snd mappings_entry in
        let body =
          List.filter
            (fun o -> not (String.equal (Op.name o) "omp.terminator"))
            (Op.region_body op 0)
        in
        Some (Rewrite.replace_with (entry_ops @ body @ exits ctx mappings)));
    Rewrite.pattern ~roots:[ "omp.target_enter_data" ]
      "lower-omp-target-enter-data" (fun ctx op ->
        Some
          (Rewrite.replace_with
             (List.concat_map
                (fun v -> fst (entry_for ctx op v))
                (Op.operands op))));
    Rewrite.pattern ~roots:[ "omp.target_exit_data" ]
      "lower-omp-target-exit-data" (fun ctx op ->
        let b = Rewrite.builder ctx in
        let ops =
          List.concat_map
            (fun v ->
              let parts = parts_of ctx op v in
              let memory_space = space_of parts.Omp.var_name in
              (* releasing needs the device buffer for a potential copy-back *)
              let dev_ty =
                device_memref_ty memory_space (Value.ty parts.Omp.var)
              in
              let lookup =
                Device.lookup b ~name:parts.Omp.var_name ~memory_space dev_ty
              in
              lookup
              :: emit_exit b ~memory_space
                   { host = parts.Omp.var; device = Op.result1 lookup; parts })
            (Op.operands op)
        in
        Some (Rewrite.replace_with ops));
    Rewrite.pattern ~roots:[ "omp.target_update" ] "lower-omp-target-update"
      (fun ctx op ->
        let b = Rewrite.builder ctx in
        let motion =
          Option.value ~default:"from" (Op.string_attr op "motion")
        in
        let ops =
          List.concat_map
            (fun v ->
              let parts = parts_of ctx op v in
              let memory_space = space_of parts.Omp.var_name in
              let dev_ty =
                device_memref_ty memory_space (Value.ty parts.Omp.var)
              in
              let lookup =
                Device.lookup b ~name:parts.Omp.var_name ~memory_space dev_ty
              in
              let dev = Op.result1 lookup in
              let src, dst =
                if String.equal motion "from" then (dev, parts.Omp.var)
                else (parts.Omp.var, dev)
              in
              [ lookup; Memref_d.dma_start ~src ~dst (); Memref_d.dma_wait () ])
            (Op.operands op)
        in
        Some (Rewrite.replace_with ops));
    Rewrite.pattern ~roots:[ "omp.target" ] "lower-omp-target-map-operands"
      (fun ctx op ->
        (* Rewrite mapped operands into device memrefs: entry code before,
           exit code after, and the region's block arguments retyped to the
           device memory space. The op keeps its name, so skip targets with
           nothing to map or whose operands are already device memrefs. *)
        match Op.operands op with
        | [] -> None
        | operands when List.for_all is_device_memref operands -> None
        | operands ->
          let b = Rewrite.builder ctx in
          let mappings_entry = List.map (entry_for ctx op) operands in
          let entry_ops = List.concat_map fst mappings_entry in
          let mappings = List.map snd mappings_entry in
          let blk = Op.region_block op 0 in
          let arg_subst, new_args =
            List.fold_left2
              (fun (subst, args) old_arg mapping ->
                let new_arg = Builder.fresh b (Value.ty mapping.device) in
                (Value.Map.add old_arg new_arg subst, new_arg :: args))
              (Value.Map.empty, []) blk.Op.args mappings
          in
          let new_args = List.rev new_args in
          let new_body = List.map (Op.substitute_map arg_subst) blk.Op.body in
          let target =
            {
              op with
              Op.operands = List.map (fun mp -> mp.device) mappings;
              regions = [ [ { blk with Op.args = new_args; body = new_body } ] ];
            }
          in
          Some
            (Rewrite.replace_with (entry_ops @ [ target ] @ exits ctx mappings)));
  ]

(* map_info / bounds_info carry no behaviour of their own: once the data
   constructs consuming them are lowered they fall dead and the driver
   erases them (transfer granularity is whole-array). *)
let config =
  {
    Rewrite.default_config with
    Rewrite.is_trivially_dead =
      (fun op ->
        List.mem (Op.name op) [ "omp.map_info"; "omp.bounds_info" ]);
  }

let run ?(options = default_options) m =
  Rewrite.apply ~config (patterns options) m

let pass ?options () =
  Pass.make "lower-omp-mapped-data" (fun m -> run ?options m)
