(* "lower omp target region" (paper, Section 3): rewrites each omp.target
   into device.kernel_create / device.kernel_launch / device.kernel_wait,
   which map closely onto the OpenCL host API and give the flexibility to
   schedule kernels asynchronously.

   A second step outlines the kernel region into a func.func placed in a
   nested builtin.module carrying the attribute target = "fpga" (Listing 2
   of the paper); the kernel_create op is left with an empty region and a
   device_function symbol naming the outlined function. *)

open Ftn_ir
open Ftn_dialects

let kernel_counter = ref 0

let fresh_kernel_name enclosing =
  incr kernel_counter;
  Fmt.str "%s_kernel_%d" enclosing !kernel_counter

(* --- step 1: omp.target -> device.kernel_* --- *)

let target_to_kernel =
  Rewrite.pattern ~roots:[ "omp.target" ] "omp-target-to-kernel-ops"
    (fun ctx op ->
      let b = Rewrite.builder ctx in
      (* kernel names are derived from the enclosing function *)
      let enclosing =
        match List.find_opt Func_d.is_func (Rewrite.parents ctx) with
        | Some fn -> Option.value ~default:"kernel" (Func_d.func_name fn)
        | None -> "kernel"
      in
      let name = fresh_kernel_name enclosing in
      let blk = Op.region_block op 0 in
      (* strip the omp.terminator; the outlined function will return *)
      let body =
        List.filter
          (fun o -> not (String.equal (Op.name o) "omp.terminator"))
          blk.Op.body
      in
      (* The kernel ops inherit the omp.target's source location so
         runtime failures (and the flight recorder) point at the
         offloaded construct. *)
      let loc = Op.loc op in
      let create =
        Op.set_loc
          (Builder.op1 b "device.kernel_create" ~operands:(Op.operands op)
             ~attrs:[ ("device_function", Attr.Symbol name) ]
             ~regions:[ [ { blk with Op.body = body } ] ]
             Types.Kernel_handle)
          loc
      in
      let handle = Op.result1 create in
      Some
        (Rewrite.replace_with
           [
             create;
             Op.set_loc (Device.kernel_launch handle) loc;
             Op.set_loc (Device.kernel_wait handle) loc;
           ]))

(* the pattern set is options-independent: compile its root index once *)
let to_kernel_compiled = Rewrite.compile [ target_to_kernel ]

let to_kernel_ops m = Rewrite.apply_compiled to_kernel_compiled m

(* --- step 2: outline kernel regions into a device module --- *)

let outline_kernel device_funcs =
  Rewrite.pattern ~roots:[ "device.kernel_create" ] "outline-kernel-region"
    (fun ctx op ->
      match Op.regions op with
      | [ [ blk ] ] when blk.Op.body <> [] ->
        let b = Rewrite.builder ctx in
        let name =
          match Device.kernel_function op with
          | Some n -> n
          | None -> fresh_kernel_name "kernel"
        in
        (* Any free values used by the region beyond its block args become
           extra kernel arguments. *)
        let free =
          Value.Set.diff
            (Op.free_values_of_ops blk.Op.body)
            (Value.Set.of_list blk.Op.args)
        in
        let extra = Value.Set.elements free in
        let extra_args = List.map (fun v -> Builder.fresh b (Value.ty v)) extra in
        let subst =
          List.fold_left2
            (fun acc old_v new_v -> Value.Map.add old_v new_v acc)
            Value.Map.empty extra extra_args
        in
        let body =
          List.map (Op.substitute_map subst) blk.Op.body
          @ [ Func_d.return () ]
        in
        let fn =
          Func_d.func ~sym_name:name
            ~args:(blk.Op.args @ extra_args)
            ~result_tys:[] body
        in
        (* uniquify the outlined function's values *)
        let fn, _ = Builder.clone b fn in
        device_funcs := fn :: !device_funcs;
        Some
          (Rewrite.replace_with
             [
               {
                 op with
                 Op.operands = Op.operands op @ extra;
                 regions = [ Op.region [] ];
               };
             ])
      | _ -> None)

let outline m =
  let device_funcs = ref [] in
  let m' = Rewrite.apply [ outline_kernel device_funcs ] m in
  if !device_funcs = [] then m'
  else begin
    let device_module = Builtin.device_module (List.rev !device_funcs) in
    Op.with_module_body m' (Op.module_body m' @ [ device_module ])
  end

(* Kernel names must be a pure function of the input module, not of how
   many compiles this process ran before: reset the ordinal per run so
   repeated compiles (bench reps, identity checks) name kernels
   identically. *)
let run m =
  kernel_counter := 0;
  outline (to_kernel_ops m)

let pass = Pass.make "lower-omp-target-region" run
